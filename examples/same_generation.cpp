// The paper's running example: the nonlinear same-generation program
// (Examples 1-8). Builds a layered database, then answers the query under
// every strategy the paper defines, printing the per-strategy work so the
// Section 11 trade-offs are visible. Finally prints the counting program
// before and after the Section 8 semijoin optimization.

#include <cstdio>

#include "ast/printer.h"
#include "engine/query_engine.h"
#include "workload/generators.h"

int main() {
  using namespace magic;

  Workload w = MakeSameGenNonlinear(/*depth=*/8, /*width=*/6);
  std::printf("workload: %s (%zu base facts), query %s?\n\n", w.name.c_str(),
              w.db.TotalFacts(),
              LiteralToString(*w.universe, w.query.goal).c_str());

  std::printf("%-10s %8s %10s %10s %12s %9s\n", "strategy", "answers",
              "facts", "firings", "probes", "ms");
  for (Strategy strategy :
       {Strategy::kSemiNaiveBottomUp, Strategy::kMagic,
        Strategy::kSupplementaryMagic, Strategy::kCounting,
        Strategy::kSupplementaryCounting, Strategy::kCountingSemijoin,
        Strategy::kSupCountingSemijoin, Strategy::kTopDown}) {
    EngineOptions options;
    options.strategy = strategy;
    QueryAnswer answer = QueryEngine(options).Run(w.program, w.query, w.db);
    if (!answer.status.ok()) {
      std::printf("%-10s %s\n", StrategyName(strategy).c_str(),
                  answer.status.ToString().c_str());
      continue;
    }
    std::printf("%-10s %8zu %10zu %10llu %12llu %9.3f\n",
                StrategyName(strategy).c_str(), answer.tuples.size(),
                answer.total_facts,
                static_cast<unsigned long long>(answer.eval_stats.rule_firings),
                static_cast<unsigned long long>(answer.eval_stats.join_probes),
                answer.eval_stats.seconds * 1e3);
  }

  // Show the Section 6 counting rewrite and what Section 8 does to it.
  FullSipStrategy sip;
  auto adorned = Adorn(w.program, w.query, sip);
  auto counting = CountingRewrite(*adorned);
  if (counting.ok()) {
    std::printf("\ngeneralized counting (Example 6):\n%s",
                ProgramToString(counting->rewritten.program).c_str());
    SemijoinStats stats;
    auto optimized = ApplySemijoinOptimization(*counting, &stats);
    if (optimized.ok()) {
      std::printf("\nafter the semijoin optimization (Example 8; %d "
                  "literals deleted, %d argument positions dropped):\n%s",
                  stats.literals_deleted, stats.argument_positions_dropped,
                  ProgramToString(optimized->rewritten.program).c_str());
    }
  }
  return 0;
}
