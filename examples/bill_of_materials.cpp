// A classic deductive-database workload: bill-of-materials (transitive
// subpart explosion). Shows a multi-rule program with two recursive
// predicates and how the static safety analyses and the engine options
// compose; uses the counting strategy where it is safe and falls back to
// magic where the analysis warns.

#include <cstdio>

#include "analysis/safety.h"
#include "ast/parser.h"
#include "engine/query_engine.h"

namespace {

const char* kSource = R"(
  % part_of(P, Q): P is directly a component of Q (with redundancy).
  % subpart(P, Q): P appears somewhere inside Q.
  subpart(P, Q)  :- part_of(P, Q).
  subpart(P, Q)  :- part_of(P, R), subpart(R, Q).
  % shared(P, A, B): part P occurs in both assemblies A and B.
  shared(P, A, B) :- subpart(P, A), subpart(P, B).

  part_of(wheel, bike).     part_of(frame, bike).
  part_of(spoke, wheel).    part_of(rim, wheel).     part_of(hub, wheel).
  part_of(tube, frame).     part_of(fork, frame).
  part_of(bearing, hub).    part_of(bearing, fork).
  part_of(wheel, cart).     part_of(axle, cart).
  part_of(bearing, axle).
)";

}  // namespace

int main() {
  using namespace magic;
  auto parsed = ParseUnit(kSource);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    return 1;
  }
  Database db(parsed->program.universe());
  for (const Fact& fact : parsed->facts) {
    if (Status st = db.AddFact(fact); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
  }
  Universe& u = *parsed->program.universe();

  // Which parts sit inside a bike? Counting is safe here iff the part
  // hierarchy is acyclic — check statically, then enable the static guard.
  auto ask = [&](const std::string& text, Strategy strategy) {
    auto q = ParseUnit(text, parsed->program.universe());
    if (!q.ok() || !q->query.has_value()) return;
    EngineOptions options;
    options.strategy = strategy;
    options.static_safety_check = true;
    QueryAnswer answer =
        QueryEngine(options).Run(parsed->program, *q->query, db);
    if (answer.status.code() == StatusCode::kUnsafe) {
      // The Theorem 10.3 check is conservative (a cyclic argument position
      // flags the program even when the other positions bound the
      // recursion); fall back to magic sets, which Theorem 10.2 covers.
      std::printf("%-32s [%s] rejected by the static counting check; "
                  "falling back to magic sets\n",
                  text.c_str(), StrategyName(strategy).c_str());
      options.strategy = Strategy::kMagic;
      strategy = Strategy::kMagic;
      answer = QueryEngine(options).Run(parsed->program, *q->query, db);
    }
    std::printf("%-32s [%s] -> ", text.c_str(),
                StrategyName(strategy).c_str());
    if (!answer.status.ok()) {
      std::printf("%s\n", answer.status.ToString().c_str());
      return;
    }
    bool first = true;
    for (const auto& tuple : answer.tuples) {
      std::string row;
      for (TermId term : tuple) {
        if (!row.empty()) row += "/";
        row += u.TermToString(term);
      }
      std::printf("%s%s", first ? "" : ", ", row.empty() ? "yes" : row.c_str());
      first = false;
    }
    if (answer.tuples.empty()) std::printf("(none)");
    std::printf("\n");
    if (!answer.safety_note.empty()) {
      std::printf("%34s safety: %s\n", "", answer.safety_note.c_str());
    }
  };

  ask("?- subpart(X, bike).", Strategy::kMagic);
  ask("?- subpart(bearing, Q).", Strategy::kSupplementaryMagic);
  ask("?- subpart(X, cart).", Strategy::kCountingSemijoin);
  ask("?- shared(P, bike, cart).", Strategy::kMagic);
  return 0;
}
