// Graph analytics on a random DAG: reachability queries under different
// binding patterns and sip strategies, with the work each choice costs.
// This is the "restrict computation to tuples related to the query" story
// of the paper's introduction, measured.

#include <cstdio>

#include "engine/query_engine.h"
#include "workload/generators.h"

int main() {
  using namespace magic;

  Workload w = MakeAncestorRandom(/*nodes=*/300, /*edges=*/700, /*seed=*/42);
  Universe& u = *w.universe;
  std::printf("random DAG: 300 nodes, %zu edges; program: transitive "
              "closure anc over par.\n\n",
              w.db.TotalFacts());

  // Whole-relation query: nothing to restrict, rewriting buys nothing.
  {
    EngineOptions options;
    options.strategy = Strategy::kSemiNaiveBottomUp;
    QueryAnswer all = QueryEngine(options).Run(w.program, w.query, w.db);
    std::printf("full closure (semi-naive): %zu anc facts in %.2f ms\n",
                all.total_facts, all.eval_stats.seconds * 1e3);
  }

  // Point queries: magic explores only the reachable cone.
  std::printf("\n%-24s %10s %10s %9s\n", "query", "answers", "facts", "ms");
  for (const char* node : {"c0", "c100", "c250"}) {
    Query query;
    query.goal = w.query.goal;
    query.goal.args[0] = u.Constant(node);
    EngineOptions options;
    options.strategy = Strategy::kMagic;
    QueryAnswer answer = QueryEngine(options).Run(w.program, query, w.db);
    std::printf("anc(%-6s Y)            %10zu %10zu %9.2f\n",
                (std::string(node) + ",").c_str(), answer.tuples.size(),
                answer.total_facts, answer.eval_stats.seconds * 1e3);
  }

  // Sip strategies are evaluation plans: compare them on one query.
  std::printf("\nsip strategies on anc(c100, Y) under GMS:\n");
  std::printf("%-20s %10s %10s %12s\n", "sip", "answers", "facts", "probes");
  for (const char* sip : {"full", "chain", "head-only", "greedy"}) {
    Query query;
    query.goal = w.query.goal;
    query.goal.args[0] = u.Constant("c100");
    EngineOptions options;
    options.strategy = Strategy::kMagic;
    options.sip = sip;
    QueryAnswer answer = QueryEngine(options).Run(w.program, query, w.db);
    std::printf("%-20s %10zu %10zu %12llu\n", sip, answer.tuples.size(),
                answer.total_facts,
                static_cast<unsigned long long>(
                    answer.eval_stats.join_probes));
  }
  std::printf("\nsame answers under every sip; partial sips simply do more "
              "work (Lemma 9.3).\n");
  return 0;
}
