// A small genealogy application: several derived relations over one family
// database, multiple queries with different binding patterns, all answered
// through the magic-sets engine. Demonstrates that one program serves many
// query forms — each query gets its own adorned program and rewriting.

#include <cstdio>
#include <string>

#include "ast/parser.h"
#include "engine/query_engine.h"

namespace {

const char* kSource = R"(
  % Derived relations.
  parent(X,Y)    :- father(X,Y).
  parent(X,Y)    :- mother(X,Y).
  ancestor(X,Y)  :- parent(X,Y).
  ancestor(X,Y)  :- parent(X,Z), ancestor(Z,Y).
  sibling(X,Y)   :- parent(P,X), parent(P,Y).
  cousin(X,Y)    :- parent(P,X), parent(Q,Y), sibling(P,Q).
  sg(X,Y)        :- sibling(X,Y).
  sg(X,Y)        :- parent(P,X), sg(P,Q), parent(Q,Y).

  % The database: three generations.
  father(adam, beth).   mother(ada, beth).
  father(adam, bill).   mother(ada, bill).
  father(bill, cora).   mother(bea, cora).
  father(bob, carl).    mother(beth, carl).
  father(bob, cleo).    mother(beth, cleo).
  father(carl, dina).   mother(cora, dina).
  father(chad, dave).   mother(cleo, dave).
)";

void Ask(magic::QueryEngine& engine, const magic::ParsedUnit& unit,
         const magic::Database& db, const std::string& query_text) {
  using namespace magic;
  auto parsed = ParseUnit(query_text, unit.program.universe());
  if (!parsed.ok() || !parsed->query.has_value()) {
    std::fprintf(stderr, "bad query %s\n", query_text.c_str());
    return;
  }
  QueryAnswer answer = engine.Run(unit.program, *parsed->query, db);
  std::printf("%-28s", query_text.c_str());
  if (!answer.status.ok()) {
    std::printf(" -> %s\n", answer.status.ToString().c_str());
    return;
  }
  Universe& u = *unit.program.universe();
  std::string rendered;
  for (const auto& tuple : answer.tuples) {
    if (!rendered.empty()) rendered += ", ";
    std::string row;
    for (TermId term : tuple) {
      if (!row.empty()) row += "/";
      row += u.TermToString(term);
    }
    rendered += row.empty() ? "yes" : row;
  }
  if (answer.tuples.empty()) rendered = "(none)";
  std::printf(" -> %s   [%zu facts derived]\n", rendered.c_str(),
              answer.total_facts);
}

}  // namespace

int main() {
  using namespace magic;
  auto parsed = ParseUnit(kSource);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    return 1;
  }
  Database db(parsed->program.universe());
  for (const Fact& fact : parsed->facts) {
    if (Status st = db.AddFact(fact); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
  }

  EngineOptions options;
  options.strategy = Strategy::kSupplementaryMagic;
  QueryEngine engine(options);

  std::printf("genealogy over %zu base facts "
              "(strategy: generalized supplementary magic sets)\n\n",
              db.TotalFacts());
  ParsedUnit& unit = *parsed;
  Ask(engine, unit, db, "?- ancestor(adam, Y).");
  Ask(engine, unit, db, "?- ancestor(X, dina).");   // reversed binding
  Ask(engine, unit, db, "?- ancestor(adam, dina).");  // fully bound
  Ask(engine, unit, db, "?- sibling(carl, Y).");
  Ask(engine, unit, db, "?- cousin(dina, Y).");
  Ask(engine, unit, db, "?- sg(dina, Y).");
  Ask(engine, unit, db, "?- parent(X, carl).");
  return 0;
}
