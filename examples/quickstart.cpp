// Quickstart: parse a Datalog program, ask a query, and evaluate it with
// the generalized magic-sets rewriting — the paper's introduction example.
//
//   $ ./quickstart
//
// Shows the full pipeline: parse -> adorn -> rewrite -> evaluate -> answers,
// plus the rewritten program the engine actually ran.

#include <cstdio>

#include "ast/parser.h"
#include "engine/query_engine.h"

int main() {
  using namespace magic;

  // The ancestor program from Section 1, with a small family database.
  const char* source = R"(
    % Derived relation: anc(X, Y) <=> Y is an ancestor-descendant of X.
    anc(X, Y) :- par(X, Y).
    anc(X, Y) :- par(X, Z), anc(Z, Y).

    % The parenthood relation (EDB).
    par(john, mary).
    par(john, ken).
    par(mary, sue).
    par(sue, bob).
    par(alice, carol).   % unrelated family: never explored by magic
    par(carol, dave).

    ?- anc(john, Y).
  )";

  auto parsed = ParseUnit(source);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    return 1;
  }
  Database db(parsed->program.universe());
  for (const Fact& fact : parsed->facts) {
    Status st = db.AddFact(fact);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
  }

  EngineOptions options;
  options.strategy = Strategy::kMagic;  // Section 4's rewriting
  options.explain = true;
  QueryEngine engine(options);
  QueryAnswer answer = engine.Run(parsed->program, *parsed->query, db);
  if (!answer.status.ok()) {
    std::fprintf(stderr, "%s\n", answer.status.ToString().c_str());
    return 1;
  }

  std::printf("query: anc(john, Y)?\n\nrewritten program evaluated "
              "bottom-up (plus seed magic_anc_bf(john)):\n%s\n",
              answer.rewritten_text.c_str());
  std::printf("answers (%zu):\n", answer.tuples.size());
  Universe& u = *parsed->program.universe();
  for (const auto& tuple : answer.tuples) {
    std::printf("  Y = %s\n", u.TermToString(tuple[0]).c_str());
  }
  std::printf("\nderived %zu facts in %.3f ms — the alice/carol family was "
              "never touched.\n",
              answer.total_facts, answer.eval_stats.seconds * 1e3);
  return 0;
}
