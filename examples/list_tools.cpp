// Function symbols and safety: the appendix's list-reverse problem.
//
// Plain bottom-up evaluation of the reverse/append program is not even
// range restricted (append(V,[],[V]) would enumerate the whole Herbrand
// universe); the magic rewriting makes it safe, and the Section 10 binding
// graph proves termination: every cycle has positive length because the
// bound list argument shrinks by |V|+1 >= 2 on each recursive call.

#include <cstdio>

#include "analysis/binding_graph.h"
#include "analysis/safety.h"
#include "ast/printer.h"
#include "engine/query_engine.h"
#include "workload/generators.h"

int main() {
  using namespace magic;

  Workload w = MakeListReverse(10);
  Universe& u = *w.universe;
  std::printf("program:\n%s\nquery: %s?\n\n",
              ProgramToString(w.program).c_str(),
              LiteralToString(u, w.query.goal).c_str());

  // 1. The naive route fails fast.
  {
    EngineOptions options;
    options.strategy = Strategy::kSemiNaiveBottomUp;
    QueryAnswer answer = QueryEngine(options).Run(w.program, w.query, w.db);
    std::printf("semi-naive bottom-up: %s\n",
                answer.status.ToString().c_str());
  }

  // 2. The Section 10 analysis explains why magic is safe here.
  FullSipStrategy sip;
  auto adorned = Adorn(w.program, w.query, sip);
  SafetyReport report = CheckMagicSafety(*adorned);
  std::printf("\nstatic safety: %s\n  %s\n",
              SafetyVerdictName(report.verdict).c_str(),
              report.explanation.c_str());
  BindingGraph graph = BuildBindingGraph(*adorned);
  std::printf("binding-graph arcs (head bound-arg length minus body "
              "bound-arg length):\n");
  for (const BindingArc& arc : graph.arcs) {
    const PredicateInfo& from = u.predicates().info(graph.nodes[arc.from]);
    const PredicateInfo& to = u.predicates().info(graph.nodes[arc.to]);
    std::printf("  %-12s -> %-12s  length %s (lower bound %lld)\n",
                u.symbols().Name(from.name).c_str(),
                u.symbols().Name(to.name).c_str(),
                arc.length.ToString(u).c_str(),
                static_cast<long long>(arc.lower_bound.value_or(-1)));
  }

  // 3. Run it under the rewriting strategies.
  std::printf("\n%-10s %10s %10s %9s   reverse\n", "strategy", "answers",
              "facts", "ms");
  for (Strategy strategy :
       {Strategy::kMagic, Strategy::kSupplementaryMagic, Strategy::kCounting,
        Strategy::kTopDown}) {
    EngineOptions options;
    options.strategy = strategy;
    QueryAnswer answer = QueryEngine(options).Run(w.program, w.query, w.db);
    if (!answer.status.ok()) {
      std::printf("%-10s %s\n", StrategyName(strategy).c_str(),
                  answer.status.ToString().c_str());
      continue;
    }
    std::printf("%-10s %10zu %10zu %9.3f   %s\n",
                StrategyName(strategy).c_str(), answer.tuples.size(),
                answer.total_facts,
                (strategy == Strategy::kTopDown
                     ? answer.topdown_stats.seconds
                     : answer.eval_stats.seconds) * 1e3,
                answer.tuples.empty()
                    ? "-"
                    : u.TermToString(answer.tuples[0][0]).c_str());
  }
  return 0;
}
