#!/usr/bin/env sh
# End-to-end smoke test of the wire surface: starts magicdb-serve on an
# ephemeral port, drives it with magicdb-cli (PREPARE / QUERY / APPLY /
# STREAM / STATS / METRICS), checks row counts before and after a live
# write, validates the Prometheus text exposition and the JSON stats
# document, then sends SIGTERM and asserts a clean shutdown. Exercises the
# same binary+protocol pairing a user deploys, not the in-process test
# server.
#
#   scripts/serve_smoke.sh [serve-binary] [cli-binary]
#
# Exits non-zero (with the failing step on stderr) on any mismatch; CI
# runs this on the Release leg after ctest.
set -eu

SERVE=${1:-./build/magicdb-serve}
CLI=${2:-./build/magicdb-cli}

WORK=$(mktemp -d)
SERVER_PID=
cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
  printf 'serve_smoke: FAIL: %s\n' "$1" >&2
  [ -f "$WORK/serve.log" ] && sed 's/^/serve_smoke:   serve| /' \
    "$WORK/serve.log" >&2
  exit 1
}

cat > "$WORK/ancestor.dl" <<'EOF'
par(c0, c1).
par(c1, c2).
par(c2, c3).
anc(X, Y) :- par(X, Y).
anc(X, Y) :- par(X, Z), anc(Z, Y).
EOF

# Port 0 binds an ephemeral port; the server prints the endpoint it chose.
"$SERVE" --port 0 --stats "$WORK/ancestor.dl" > "$WORK/serve.log" 2>&1 &
SERVER_PID=$!

PORT=
tries=0
while [ -z "$PORT" ]; do
  PORT=$(sed -n 's/.*listening on [^:]*:\([0-9][0-9]*\).*/\1/p' \
         "$WORK/serve.log" 2>/dev/null || true)
  [ -n "$PORT" ] && break
  kill -0 "$SERVER_PID" 2>/dev/null || fail "server died during startup"
  tries=$((tries + 1))
  [ "$tries" -gt 100 ] && fail "server never printed its endpoint"
  sleep 0.1
done
printf 'serve_smoke: serving on port %s\n' "$PORT"

run() { "$CLI" --port "$PORT" "$@" 2>> "$WORK/cli.err"; }

# PREPARE round-trips (forms are per-session, so the prepared form dies
# with this connection; the reply fields are what we check here).
"$CLI" --port "$PORT" prepare anc "anc(c0, Y)" \
  2> "$WORK/prepare.head" > /dev/null || fail "prepare rejected"
grep -q 'adornment=bf' "$WORK/prepare.head" \
  || fail "prepare reply missing the adornment"

# One-shot QUERY (PREPARE + QUERY on one connection): anc(c0, Y) over a
# 4-node chain has 3 answers.
rows=$(run query "anc(c0, Y)" | wc -l)
[ "$rows" -eq 3 ] || fail "expected 3 rows before the write, got $rows"

# APPLY extends the chain; the next read must see the new edge (epoch
# fencing: no stale cache serve).
printf '+par(c3, c4).\n' | run apply > /dev/null || fail "apply rejected"
rows=$(run query "anc(c0, Y)" | wc -l)
[ "$rows" -eq 4 ] || fail "expected 4 rows after the write, got $rows"

# A row limit truncates and still exits 0 (truncation is a success).
rows=$(run query "anc(c0, Y)" limit=2 | wc -l) \
  || fail "limit=2 query exited non-zero"
[ "$rows" -eq 2 ] || fail "expected 2 limited rows, got $rows"

# STREAM delivers the same answers incrementally.
rows=$(run stream "anc(c0, Y)" | wc -l)
[ "$rows" -eq 4 ] || fail "expected 4 streamed rows, got $rows"

# STATS returns the JSON summary payload.
run stats | grep -q '{' || fail "stats payload missing"

# A profiled QUERY appends %-prefixed per-rule fixpoint profile lines.
# A cold seed: cache-served answers carry no profile (nothing evaluated).
run query "anc(c1, Y)" profile=1 > "$WORK/profiled.out" \
  || fail "profile=1 query rejected"
grep -q '^% .*evals=' "$WORK/profiled.out" \
  || fail "profile=1 reply missing the per-rule profile lines"

# METRICS scrapes the registry as Prometheus text exposition: typed
# metric families, counter totals, at least one latency histogram with
# cumulative le= buckets, and the per-rule fixpoint profile counters.
run metrics > "$WORK/metrics.prom" || fail "metrics scrape rejected"
grep -q '^# TYPE magicdb_queries_served counter' "$WORK/metrics.prom" \
  || fail "metrics exposition missing typed counter families"
grep -q '^magicdb_queries_served_total ' "$WORK/metrics.prom" \
  || fail "metrics exposition missing the served-queries counter"
grep -q '^# TYPE magicdb_form_latency_ns histogram' "$WORK/metrics.prom" \
  || fail "metrics exposition missing the form latency histogram type"
grep -q 'magicdb_form_latency_ns_bucket{.*le="' "$WORK/metrics.prom" \
  || fail "metrics exposition missing cumulative histogram buckets"
grep -q 'le="+Inf"' "$WORK/metrics.prom" \
  || fail "metrics exposition missing the +Inf bucket"
grep -q '^magicdb_rule_evals_total{' "$WORK/metrics.prom" \
  || fail "metrics exposition missing per-rule profile counters"

# METRICS json (and the STATS payload) must be one well-formed JSON
# document carrying the per-form histograms and fixpoint profiles.
run metrics json > "$WORK/metrics.json" || fail "metrics json rejected"
grep -q '"forms":' "$WORK/metrics.json" \
  || fail "metrics json missing the per-form array"
grep -q '"profile":' "$WORK/metrics.json" \
  || fail "metrics json missing the fixpoint profiles"
grep -q '"eval_latency":' "$WORK/metrics.json" \
  || fail "metrics json missing the per-form latency histograms"
if command -v python3 > /dev/null 2>&1; then
  python3 -c 'import json,sys; json.load(open(sys.argv[1]))' \
    "$WORK/metrics.json" || fail "metrics json does not parse"
  run stats > "$WORK/stats.json"
  python3 -c 'import json,sys; json.load(open(sys.argv[1]))' \
    "$WORK/stats.json" || fail "stats json does not parse"
fi

# A new predicate through the wire must be frozen out, naming the culprit.
if printf '+brand_new_rel(a, b).\n' | run apply > /dev/null; then
  fail "apply of an unknown predicate was accepted"
fi
grep -q 'brand_new_rel' "$WORK/cli.err" \
  || fail "freeze diagnostic does not name the predicate"

# SIGTERM: stop accepting, drain sessions, join, print the marker.
kill -TERM "$SERVER_PID"
status=0
wait "$SERVER_PID" || status=$?
SERVER_PID=
[ "$status" -eq 0 ] || fail "server exited $status on SIGTERM"
grep -q 'clean shutdown' "$WORK/serve.log" \
  || fail "missing clean-shutdown marker"

printf 'serve_smoke: PASS\n'
