#!/usr/bin/env sh
# Runs bench_throughput and appends one labelled JSON line per record to
# BENCH_throughput.json, building the cross-PR throughput trajectory the
# ROADMAP tracks. Each line is the bench's own record plus a "label" (git
# short SHA by default) and the machine's core count.
#
#   scripts/bench_trajectory.sh [bench-binary] [label] [output-file]
#
# Environment: THREADS (default 4), QUERIES (default 256), MODE (default
# all — includes the `repeat` zipfian cold/warm AnswerCache mode, whose
# repeat_cold/repeat_warm line pair records the memoization speedup, and
# the `strategy` mode, whose strategy_seminaive/strategy_topdown lines
# record non-rewriting handle QPS vs. threads — the win from removing the
# exclusive-locked fallback). Run from the repository root.
set -eu

BIN=${1:-./build/bench_throughput}
LABEL=${2:-$(git rev-parse --short HEAD 2>/dev/null || echo unlabelled)}
OUT=${3:-BENCH_throughput.json}
CORES=$(nproc 2>/dev/null || echo 1)

# Run to a temp file first so a bench failure fails this script (a pipe
# into `while read` would swallow the bench's exit status under POSIX sh).
TMP=$(mktemp)
trap 'rm -f "$TMP"' EXIT
"$BIN" --threads "${THREADS:-4}" --queries "${QUERIES:-256}" \
       --mode "${MODE:-all}" > "$TMP"

while IFS= read -r line; do
  printf '{"label":"%s","cores":%s,%s\n' "$LABEL" "$CORES" "${line#\{}" \
    >> "$OUT"
done < "$TMP"

tail -n 5 "$OUT"
