#!/usr/bin/env sh
# Runs bench_throughput and appends one labelled JSON line per record to
# BENCH_throughput.json, building the cross-PR throughput trajectory the
# ROADMAP tracks. Each line is the bench's own record plus a "label" (git
# short SHA by default) and the machine's core count.
#
#   scripts/bench_trajectory.sh [bench-binary] [label] [output-file]
#
# Environment: THREADS (default 4), QUERIES (default 256), MODE (default
# all — includes the `repeat` zipfian cold/warm AnswerCache mode, the
# `strategy` non-rewriting-handle mode, the `mutate` mode, whose line
# records read QPS while a writer thread mutates the EDB through the
# service's write seam, and the `serve` open-loop wire mode: requests
# arrive at a fixed rate RATE (default 1000/s) over real TCP connections
# to an in-process magicdb-serve, and the line records p50/p95/p99
# latency measured from each request's *scheduled* arrival, so queueing
# delay counts). MODE=eval_large runs the standalone million-fact
# single-stream fixpoint mode; LARGE_FACTS (default 1000000) sets its
# EDB size. Run from the repository root.
#
# The output file only ever grows by complete, validated records: the
# bench writes to a temp file, complete records are labelled into a
# staging file (a line that doesn't terminate in `}` — a bench crash
# mid-print — is dropped with a warning), the staging file is checked
# line-by-line as JSON, and only then appended to the output in one step.
# A bench failure still fails this script, but it can never leave a
# partial line corrupting the trajectory.
set -eu

BIN=${1:-./build/bench_throughput}
LABEL=${2:-$(git rev-parse --short HEAD 2>/dev/null || echo unlabelled)}
OUT=${3:-BENCH_throughput.json}
CORES=$(nproc 2>/dev/null || echo 1)

TMP=$(mktemp)
STAGE=$(mktemp)
trap 'rm -f "$TMP" "$STAGE"' EXIT

# Run to a temp file first, capturing the exit status (a pipe into
# `while read` would swallow it under POSIX sh; dying here would drop the
# records a partial run did complete).
bench_status=0
"$BIN" --threads "${THREADS:-4}" --queries "${QUERIES:-256}" \
       --mode "${MODE:-all}" --rate "${RATE:-1000}" \
       --large-facts "${LARGE_FACTS:-1000000}" > "$TMP" || bench_status=$?

while IFS= read -r line; do
  case $line in
    '{'*'}')
      printf '{"label":"%s","cores":%s,%s\n' "$LABEL" "$CORES" "${line#\{}" \
        >> "$STAGE"
      ;;
    *)
      printf 'bench_trajectory: dropping partial record: %s\n' "$line" >&2
      ;;
  esac
done < "$TMP"

# Every staged line must parse as JSON before it may reach $OUT.
if command -v python3 >/dev/null 2>&1; then
  python3 -c 'import json, sys
for n, line in enumerate(open(sys.argv[1]), 1):
    try:
        json.loads(line)
    except ValueError as e:
        raise SystemExit(f"bench_trajectory: bad JSON on staged line {n}: {e}")' "$STAGE"
fi

# One atomic append of the whole validated staging file.
cat "$STAGE" >> "$OUT"

tail -n 5 "$OUT"
exit "$bench_status"
