#!/usr/bin/env sh
# Runs clang-tidy (config: .clang-tidy) over every first-party translation
# unit in compile_commands.json. The gate is zero unsuppressed findings —
# WarningsAsErrors is '*' in the config, so any finding fails the run;
# deliberate exceptions are inline NOLINTs with a reason next to them.
#
#   scripts/run_clang_tidy.sh [build-dir]
#
# build-dir (default ./build) must have been configured with
# -DCMAKE_EXPORT_COMPILE_COMMANDS=ON. Degrades gracefully when clang-tidy
# is not installed (prints a notice and exits 0) so the script is safe to
# call from environments that only carry GCC; CI pins a leg where the
# tool is guaranteed present. Run from the repository root.
set -eu

BUILD_DIR=${1:-./build}
TIDY=${CLANG_TIDY:-clang-tidy}

if ! command -v "$TIDY" >/dev/null 2>&1; then
  echo "run_clang_tidy: $TIDY not found; skipping (install clang-tidy or set CLANG_TIDY)" >&2
  exit 0
fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "run_clang_tidy: $BUILD_DIR/compile_commands.json missing;" >&2
  echo "configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON first" >&2
  exit 2
fi

# First-party sources only: gtest/other third-party TUs that end up in the
# database are not ours to lint.
FILES=$(find src tools bench tests -name '*.cc' 2>/dev/null | sort)
if [ -z "$FILES" ]; then
  echo "run_clang_tidy: no sources found (run from the repository root)" >&2
  exit 2
fi

echo "run_clang_tidy: $(echo "$FILES" | wc -l) translation units, config $(pwd)/.clang-tidy"

STATUS=0
# xargs -P parallelizes across cores; clang-tidy exits nonzero on any
# finding because WarningsAsErrors is '*'.
JOBS=$(nproc 2>/dev/null || echo 4)
echo "$FILES" | xargs -P "$JOBS" -n 4 "$TIDY" -p "$BUILD_DIR" --quiet || STATUS=$?

if [ "$STATUS" -ne 0 ]; then
  echo "run_clang_tidy: findings above must be fixed or NOLINT'd with a reason" >&2
  exit 1
fi
echo "run_clang_tidy: clean"
