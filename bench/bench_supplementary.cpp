// Experiment E2 (Sections 4-5, Examples 4-5): GMS repeats the prefix joins
// of each rule in every magic rule and in the modified rule; GSMS stores
// them once in supplementary predicates. The join-probe counter makes the
// duplicated work visible; GSMS trades it for extra stored facts.

#include <cstdio>

#include "bench/bench_common.h"

namespace magic {
namespace bench {
namespace {

void CompareOn(const Workload& w) {
  PrintHeader("E2 " + w.name);
  RunRow gms = RunStrategy(w, Strategy::kMagic);
  RunRow gsms = RunStrategy(w, Strategy::kSupplementaryMagic);
  PrintRow(gms);
  PrintRow(gsms);
  if (gms.probes > 0) {
    std::printf("  -> duplicated-work ratio (GMS probes / GSMS probes): "
                "%.2fx; GSMS stores %+.0f facts (supplementaries) in "
                "exchange.\n",
                static_cast<double>(gms.probes) /
                    static_cast<double>(gsms.probes == 0 ? 1 : gsms.probes),
                static_cast<double>(gsms.facts) -
                    static_cast<double>(gms.facts));
  }
}

}  // namespace
}  // namespace bench
}  // namespace magic

int main() {
  std::printf("E2: GMS vs GSMS — eliminating duplicate prefix joins "
              "(Section 5)\n");
  using namespace magic;
  using namespace magic::bench;
  for (int depth : {6, 10, 14}) {
    CompareOn(MakeSameGenNonlinear(depth, 8));
  }
  for (int n : {256, 512}) {
    Workload w = MakeAncestorChain(n);
    CompareOn(w);
  }
  CompareOn(MakeSameGenNested(8, 8));
  return 0;
}
