// Experiment E7 (Appendix A): regenerates the paper's appendix — for each of
// the four benchmark problems, the adorned rule set and the rewritten
// programs under GMS, GSMS, GC, GSC, and the semijoin-optimized counting
// variants. The structural gold tests in tests/appendix_gold_test.cc (and
// the per-algorithm test suites) verify these against the paper line by
// line; this binary prints them for inspection.

#include <cstdio>

#include "ast/printer.h"
#include "bench/bench_common.h"

namespace magic {
namespace bench {
namespace {

struct Problem {
  const char* name;
  const char* text;
};

const Problem kProblems[] = {
    {"A.1(1) ancestor",
     R"(anc(X,Y) :- par(X,Y).
        anc(X,Y) :- par(X,Z), anc(Z,Y).
        ?- anc(john, Y).)"},
    {"A.1(2) nonlinear ancestor",
     R"(a(X,Y) :- p(X,Y).
        a(X,Y) :- a(X,Z), a(Z,Y).
        ?- a(john, Y).)"},
    {"A.1(3) nested same generation",
     R"(p(X,Y) :- b1(X,Y).
        p(X,Y) :- sg(X,Z1), p(Z1,Z2), b2(Z2,Y).
        sg(X,Y) :- flat(X,Y).
        sg(X,Y) :- up(X,Z1), sg(Z1,Z2), down(Z2,Y).
        ?- p(john, Y).)"},
    {"A.1(4) list reverse",
     R"(append(V, [], [V]).
        append(V, [W|X], [W|Y]) :- append(V, X, Y).
        reverse([], []).
        reverse([V|X], Y) :- reverse(X, Z), append(V, Z, Y).
        ?- reverse(list, Y).)"},
    {"Example 1 nonlinear same generation",
     R"(sg(X,Y) :- flat(X,Y).
        sg(X,Y) :- up(X,Z1), sg(Z1,Z2), flat(Z2,Z3), sg(Z3,Z4), down(Z4,Y).
        ?- sg(john, Y).)"},
};

void PrintProgram(const char* title, const Program& program) {
  std::printf("--- %s (%zu rules) ---\n%s", title, program.rules().size(),
              ProgramToString(program).c_str());
}

void Rewrite(const Problem& problem) {
  std::printf("\n================ %s ================\n", problem.name);
  auto parsed = ParseUnit(problem.text);
  if (!parsed.ok()) {
    std::printf("parse error: %s\n", parsed.status().ToString().c_str());
    return;
  }
  FullSipStrategy sip;
  auto adorned = Adorn(parsed->program, *parsed->query, sip);
  if (!adorned.ok()) {
    std::printf("adorn error: %s\n", adorned.status().ToString().c_str());
    return;
  }
  PrintProgram("adorned rule set (A.2)", adorned->program);

  auto gms = MagicSetsRewrite(*adorned);
  PrintProgram("generalized magic sets (A.3)", gms->program);

  auto gsms = SupplementaryMagicRewrite(*adorned);
  PrintProgram("generalized supplementary magic sets (A.4)", gsms->program);

  auto gc = CountingRewrite(*adorned);
  if (gc.ok()) {
    PrintProgram("generalized counting (A.5)", gc->rewritten.program);
    SemijoinStats stats;
    auto optimized = ApplySemijoinOptimization(*gc, &stats);
    if (optimized.ok()) {
      std::printf("--- + semijoin optimization (Section 8): %d block(s), %d "
                  "literal(s) deleted, %d argument position(s) dropped ---\n",
                  stats.blocks_optimized, stats.literals_deleted,
                  stats.argument_positions_dropped);
      std::printf("%s", ProgramToString(optimized->rewritten.program).c_str());
    }
  } else {
    std::printf("counting not applicable: %s\n",
                gc.status().ToString().c_str());
  }

  auto gsc = SupplementaryCountingRewrite(*adorned);
  if (gsc.ok()) {
    PrintProgram("generalized supplementary counting (A.6)",
                 gsc->rewritten.program);
    SemijoinStats stats;
    auto optimized = ApplySemijoinOptimization(*gsc, &stats);
    if (optimized.ok()) {
      std::printf("--- + semijoin optimization: %d block(s) ---\n",
                  stats.blocks_optimized);
      std::printf("%s", ProgramToString(optimized->rewritten.program).c_str());
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace magic

int main() {
  std::printf("E7: the appendix tables — rewritten programs for the four "
              "benchmark problems\n");
  for (const auto& problem : magic::bench::kProblems) {
    magic::bench::Rewrite(problem);
  }
  return 0;
}
