// Experiment E8 (Section 1.1 substrate ablation): naive vs semi-naive
// bottom-up evaluation, timed with google-benchmark. Naive re-derives every
// fact every round (quadratic blowup in rule firings on recursive
// workloads); semi-naive restricts each rule to the last round's deltas.

#include <benchmark/benchmark.h>

#include "core/magic_sets.h"
#include "eval/evaluator.h"
#include "workload/generators.h"

namespace magic {
namespace {

void RunEval(benchmark::State& state, const Workload& w, bool seminaive) {
  EvalOptions options;
  options.seminaive = seminaive;
  Evaluator evaluator(options);
  uint64_t firings = 0;
  for (auto _ : state) {
    EvalResult result = evaluator.Run(w.program, w.db);
    if (!result.status.ok()) {
      state.SkipWithError(result.status.ToString().c_str());
      return;
    }
    firings = result.stats.rule_firings;
    benchmark::DoNotOptimize(result.TotalFacts());
  }
  state.counters["firings"] = static_cast<double>(firings);
}

void BM_NaiveChain(benchmark::State& state) {
  Workload w = MakeAncestorChain(static_cast<int>(state.range(0)));
  RunEval(state, w, /*seminaive=*/false);
}
BENCHMARK(BM_NaiveChain)->Arg(32)->Arg(64)->Arg(128);

void BM_SemiNaiveChain(benchmark::State& state) {
  Workload w = MakeAncestorChain(static_cast<int>(state.range(0)));
  RunEval(state, w, /*seminaive=*/true);
}
BENCHMARK(BM_SemiNaiveChain)->Arg(32)->Arg(64)->Arg(128);

void BM_NaiveTree(benchmark::State& state) {
  Workload w = MakeAncestorTree(static_cast<int>(state.range(0)), 2);
  RunEval(state, w, /*seminaive=*/false);
}
BENCHMARK(BM_NaiveTree)->Arg(6)->Arg(8);

void BM_SemiNaiveTree(benchmark::State& state) {
  Workload w = MakeAncestorTree(static_cast<int>(state.range(0)), 2);
  RunEval(state, w, /*seminaive=*/true);
}
BENCHMARK(BM_SemiNaiveTree)->Arg(6)->Arg(8);

void BM_NaiveSameGen(benchmark::State& state) {
  Workload w = MakeSameGenNonlinear(static_cast<int>(state.range(0)), 4);
  RunEval(state, w, /*seminaive=*/false);
}
BENCHMARK(BM_NaiveSameGen)->Arg(4)->Arg(6);

void BM_SemiNaiveSameGen(benchmark::State& state) {
  Workload w = MakeSameGenNonlinear(static_cast<int>(state.range(0)), 4);
  RunEval(state, w, /*seminaive=*/true);
}
BENCHMARK(BM_SemiNaiveSameGen)->Arg(4)->Arg(6);

// Magic-rewritten evaluation end to end, as a timing reference for the
// other experiments' tables.
void BM_MagicChainQuery(benchmark::State& state) {
  Workload w = MakeAncestorChain(static_cast<int>(state.range(0)));
  FullSipStrategy sip;
  auto adorned = Adorn(w.program, w.query, sip);
  auto gms = MagicSetsRewrite(*adorned);
  std::vector<Fact> seeds = MakeSeeds(*gms, adorned->query, *w.universe);
  Evaluator evaluator;
  for (auto _ : state) {
    EvalResult result = evaluator.Run(gms->program, w.db, seeds);
    benchmark::DoNotOptimize(result.TotalFacts());
  }
}
BENCHMARK(BM_MagicChainQuery)->Arg(64)->Arg(128);

}  // namespace
}  // namespace magic

BENCHMARK_MAIN();
