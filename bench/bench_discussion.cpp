// Experiment E9 (Section 11): "for each of these strategies ... there is
// some set of rules and data such that it is the best strategy." A
// cross-table of all strategies over contrasting workloads, with a
// winner-by-facts and winner-by-time summary per workload.

#include <cstdio>

#include "bench/bench_common.h"

namespace magic {
namespace bench {
namespace {

void CrossTable(const Workload& w, const std::vector<Strategy>& strategies,
                uint64_t max_facts = 20'000'000) {
  PrintHeader("E9 " + w.name);
  std::string best_facts;
  std::string best_time;
  size_t min_facts = static_cast<size_t>(-1);
  double min_time = 1e300;
  for (Strategy strategy : strategies) {
    RunRow row = RunStrategy(w, strategy, "full", max_facts);
    PrintRow(row);
    if (row.status != "ok") continue;
    if (row.facts < min_facts) {
      min_facts = row.facts;
      best_facts = row.label;
    }
    if (row.ms < min_time) {
      min_time = row.ms;
      best_time = row.label;
    }
  }
  std::printf("  -> fewest facts: %s; fastest: %s\n", best_facts.c_str(),
              best_time.c_str());
}

}  // namespace
}  // namespace bench
}  // namespace magic

int main() {
  std::printf("E9: the Section 11 discussion — every strategy wins "
              "somewhere\n");
  using namespace magic;
  using namespace magic::bench;

  const std::vector<Strategy> all = {
      Strategy::kSemiNaiveBottomUp,    Strategy::kMagic,
      Strategy::kSupplementaryMagic,   Strategy::kCounting,
      Strategy::kSupplementaryCounting, Strategy::kCountingSemijoin,
      Strategy::kSupCountingSemijoin,  Strategy::kTopDown,
  };
  const std::vector<Strategy> no_counting = {
      Strategy::kSemiNaiveBottomUp, Strategy::kMagic,
      Strategy::kSupplementaryMagic, Strategy::kTopDown,
  };

  // Deep chain, whole relation relevant: plain semi-naive is competitive,
  // counting's narrow facts win on count.
  CrossTable(MakeAncestorChain(48), all);
  // Query deep inside a long chain: the rewriting strategies only touch the
  // suffix.
  {
    Workload w = MakeAncestorChain(400);
    w.query.goal.args[0] = w.universe->Constant("c350");
    CrossTable(w, no_counting);
  }
  // Unique-derivation same generation: counting + semijoin shines.
  CrossTable(MakeSameGenNonlinear(10, 6), all);
  // Cyclic data: counting diverges (budget), magic wins.
  CrossTable(MakeAncestorCycle(10), all, 30'000);
  // Function symbols: only the rewritings and top-down apply; semi-naive is
  // unsafe.
  CrossTable(MakeListReverse(24), {Strategy::kSemiNaiveBottomUp,
                                   Strategy::kMagic,
                                   Strategy::kSupplementaryMagic,
                                   Strategy::kCounting,
                                   Strategy::kSupCountingSemijoin,
                                   Strategy::kTopDown});
  return 0;
}
