#ifndef MAGIC_BENCH_BENCH_COMMON_H_
#define MAGIC_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>
#include <vector>

#include "engine/query_engine.h"
#include "workload/generators.h"

namespace magic {
namespace bench {

/// One measured row of an experiment table.
struct RunRow {
  std::string label;
  std::string status = "ok";
  size_t answers = 0;
  size_t facts = 0;       // total derived facts (relevant-fact metric)
  uint64_t firings = 0;   // rule firings (bottom-up)
  uint64_t probes = 0;    // join probes (duplicate-work metric)
  double ms = 0.0;
};

inline RunRow RunStrategy(const Workload& w, Strategy strategy,
                          const std::string& sip = "full",
                          uint64_t max_facts = 20'000'000) {
  EngineOptions options;
  options.strategy = strategy;
  options.sip = sip;
  options.eval.max_facts = max_facts;
  QueryEngine engine(options);
  QueryAnswer answer = engine.Run(w.program, w.query, w.db);
  RunRow row;
  row.label = StrategyName(strategy);
  if (!answer.status.ok()) {
    row.status = Status::CodeName(answer.status.code());
  }
  row.answers = answer.tuples.size();
  if (strategy == Strategy::kTopDown) {
    row.facts = answer.topdown_stats.answers;
    row.probes = 0;
    row.ms = answer.topdown_stats.seconds * 1e3;
  } else {
    row.facts = answer.total_facts;
    row.firings = answer.eval_stats.rule_firings;
    row.probes = answer.eval_stats.join_probes;
    row.ms = answer.eval_stats.seconds * 1e3;
  }
  return row;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("%-12s %-18s %10s %10s %10s %12s %9s\n", "strategy", "status",
              "answers", "facts", "firings", "probes", "ms");
}

inline void PrintRow(const RunRow& row) {
  std::printf("%-12s %-18s %10zu %10zu %10llu %12llu %9.2f\n",
              row.label.c_str(), row.status.c_str(), row.answers, row.facts,
              static_cast<unsigned long long>(row.firings),
              static_cast<unsigned long long>(row.probes), row.ms);
}

inline void Note(const std::string& text) {
  std::printf("  -> %s\n", text.c_str());
}

}  // namespace bench
}  // namespace magic

#endif  // MAGIC_BENCH_BENCH_COMMON_H_
