// Experiment E4 (Theorem 9.1): sip-optimality of generalized magic sets.
// The magic facts computed bottom-up equal the subqueries a top-down sip
// strategy (QSQR) must generate, and the adorned facts equal its answers —
// per adorned predicate, as sets.

#include <cstdio>

#include "bench/bench_common.h"
#include "eval/topdown.h"

namespace magic {
namespace bench {
namespace {

void Compare(const Workload& w) {
  FullSipStrategy sip;
  auto adorned = Adorn(w.program, w.query, sip);
  if (!adorned.ok()) {
    std::printf("  adorn failed: %s\n", adorned.status().ToString().c_str());
    return;
  }
  Universe& u = *w.universe;
  auto gms = MagicSetsRewrite(*adorned);
  EvalResult bottom_up = Evaluator().Run(
      gms->program, w.db, MakeSeeds(*gms, adorned->query, u));
  TopDownResult top_down = TopDownEngine().Run(*adorned, w.db);
  std::printf("\n--- %s ---\n", w.name.c_str());
  std::printf("%-14s %14s %16s %14s %16s %8s\n", "predicate", "magic facts",
              "topdown queries", "adorned facts", "topdown answers", "equal");
  for (const auto& [adorned_pred, magic_pred] : gms->magic_of) {
    size_t magic_count = bottom_up.FactCount(magic_pred);
    size_t query_count = top_down.queries.at(adorned_pred).size();
    size_t fact_count = bottom_up.FactCount(adorned_pred);
    size_t answer_count = top_down.answers.at(adorned_pred).size();
    bool equal = magic_count == query_count && fact_count == answer_count;
    const PredicateInfo& info = u.predicates().info(adorned_pred);
    std::printf("%-14s %14zu %16zu %14zu %16zu %8s\n",
                u.symbols().Name(info.name).c_str(), magic_count, query_count,
                fact_count, answer_count, equal ? "yes" : "NO");
  }
  std::printf("  bottom-up: %.2f ms, top-down: %.2f ms (same sips, same "
              "relevant facts; Theorem 9.1)\n",
              bottom_up.stats.seconds * 1e3, top_down.stats.seconds * 1e3);
}

}  // namespace
}  // namespace bench
}  // namespace magic

int main() {
  std::printf("E4: sip-optimality of GMS (Theorem 9.1) — bottom-up magic "
              "facts == top-down subqueries, adorned facts == answers\n");
  using namespace magic;
  using namespace magic::bench;
  for (uint32_t seed : {7u, 23u, 99u}) {
    Compare(MakeAncestorRandom(60, 140, seed));
  }
  Compare(MakeSameGenNonlinear(6, 5));
  Compare(MakeSameGenNested(5, 5));
  Compare(MakeListReverse(12));
  return 0;
}
