// Experiment E1 (Section 1 + Section 9 discussion): the ancestor query.
//
// Reproduces the paper's motivating observation: bottom-up evaluation of the
// original program computes the complete anc relation, while the rewritten
// (magic) program computes only the facts relevant to the query's constant.
// Also reproduces the Section 9 discussion of the n-vs-n^2 fact counts on a
// chain: magic computes the ancestor relationships of every ancestor (n^2/2
// facts), an oracle method would compute n.

#include <cstdio>

#include "bench/bench_common.h"

namespace magic {
namespace bench {
namespace {

void RelevanceTable() {
  // Query at 3/4 of the chain: only the tail quarter is relevant.
  for (int n : {128, 256, 512}) {
    Workload w = MakeAncestorChain(n);
    Universe& u = *w.universe;
    w.query.goal.args[0] = u.Constant("c" + std::to_string(3 * n / 4));
    PrintHeader("E1 ancestor chain n=" + std::to_string(n) +
                ", query anc(c" + std::to_string(3 * n / 4) + ", Y)");
    for (Strategy strategy :
         {Strategy::kNaiveBottomUp, Strategy::kSemiNaiveBottomUp,
          Strategy::kMagic, Strategy::kSupplementaryMagic,
          Strategy::kTopDown}) {
      PrintRow(RunStrategy(w, strategy));
    }
    Note("naive/semi-naive compute the full closure (~n^2/2 facts); the "
         "rewritten programs only explore the queried suffix (~(n/4)^2/2).");
  }

  for (int depth : {8, 10}) {
    Workload w = MakeAncestorTree(depth, 2);
    Universe& u = *w.universe;
    // Query one child of the root: half the tree is relevant.
    w.query.goal.args[0] = u.Constant("c1");
    PrintHeader("E1 ancestor binary tree depth=" + std::to_string(depth) +
                ", query anc(c1, Y)");
    for (Strategy strategy :
         {Strategy::kSemiNaiveBottomUp, Strategy::kMagic,
          Strategy::kSupplementaryMagic, Strategy::kTopDown}) {
      PrintRow(RunStrategy(w, strategy));
    }
    Note("magic explores exactly the queried subtree.");
  }
}

void NSquaredTable() {
  std::printf("\n=== E1/Section 9: magic computes n^2, an oracle computes n "
              "(chain, query at the root) ===\n");
  std::printf("%8s %12s %14s %14s %12s\n", "n", "answers(n)",
              "anc facts", "n(n+1)/2", "magic facts");
  for (int n : {32, 64, 128, 256}) {
    Workload w = MakeAncestorChain(n);
    EngineOptions options;
    options.strategy = Strategy::kMagic;
    QueryAnswer answer = QueryEngine(options).Run(w.program, w.query, w.db);
    // anc facts and magic facts from the totals: answers + magic.
    size_t anc_facts = 0;
    size_t magic_facts = 0;
    {
      FullSipStrategy sip;
      auto adorned = Adorn(w.program, w.query, sip);
      auto gms = MagicSetsRewrite(*adorned);
      EvalResult result = Evaluator().Run(
          gms->program, w.db, MakeSeeds(*gms, adorned->query, *w.universe));
      anc_facts = result.FactCount(gms->answer_pred);
      for (const auto& [pred, magic_pred] : gms->magic_of) {
        magic_facts += result.FactCount(magic_pred);
      }
    }
    std::printf("%8d %12zu %14zu %14d %12zu\n", n, answer.tuples.size(),
                anc_facts, (n - 1) * n / 2, magic_facts);
  }
  std::printf("  -> the anc facts follow the n^2/2 curve the paper "
              "describes: each ancestor's ancestors are computed; the magic "
              "set itself stays linear (one subquery per node).\n");
}

}  // namespace
}  // namespace bench
}  // namespace magic

int main() {
  std::printf("E1: ancestor — relevance restriction and the n^2 discussion\n");
  magic::bench::RelevanceTable();
  magic::bench::NSquaredTable();
  return 0;
}
