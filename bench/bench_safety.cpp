// Experiment E6 (Section 10): safety.
//   * Theorem 10.2 — magic over Datalog is safe; demonstrated on cyclic data
//     where the counting strategies diverge (budget-guarded).
//   * Theorem 10.1 — list reverse (function symbols) has positive
//     binding-graph cycles, so magic is safe; plain bottom-up is not even
//     range restricted.
//   * Theorem 10.3 — the nonlinear ancestor's argument graph has a
//     reachable cycle: counting is statically rejected.

#include <cstdio>

#include "analysis/safety.h"
#include "bench/bench_common.h"

namespace magic {
namespace bench {
namespace {

void StaticVerdicts() {
  struct Case {
    const char* name;
    const char* text;
  };
  const Case cases[] = {
      {"ancestor",
       "anc(X,Y) :- par(X,Y). anc(X,Y) :- par(X,Z), anc(Z,Y). "
       "?- anc(j, Y)."},
      {"nonlinear-ancestor",
       "a(X,Y) :- p(X,Y). a(X,Y) :- a(X,Z), a(Z,Y). ?- a(j, Y)."},
      {"same-generation",
       "sg(X,Y) :- flat(X,Y). sg(X,Y) :- up(X,Z1), sg(Z1,Z2), flat(Z2,Z3), "
       "sg(Z3,Z4), down(Z4,Y). ?- sg(j, Y)."},
      {"list-reverse",
       "append(V, [], [V]). append(V, [W|X], [W|Y]) :- append(V, X, Y). "
       "reverse([], []). reverse([V|X], Y) :- reverse(X, Z), "
       "append(V, Z, Y). ?- reverse([a,b], Y)."},
  };
  std::printf("\n=== E6 static safety verdicts (Theorems 10.1-10.3) ===\n");
  std::printf("%-20s | %-44s | %s\n", "program", "magic", "counting");
  for (const Case& c : cases) {
    auto parsed = ParseUnit(c.text);
    FullSipStrategy sip;
    auto adorned = Adorn(parsed->program, *parsed->query, sip);
    SafetyReport magic_report = CheckMagicSafety(*adorned);
    SafetyReport counting_report = CheckCountingSafety(*adorned);
    std::printf("%-20s | %-44s | %s\n", c.name,
                SafetyVerdictName(magic_report.verdict).c_str(),
                SafetyVerdictName(counting_report.verdict).c_str());
  }
}

void DynamicDivergence() {
  std::printf("\n=== E6 dynamic: cyclic data (par = 8-cycle) ===\n");
  Workload w = MakeAncestorCycle(8);
  PrintHeader("ancestor over a cycle, query anc(c0, Y)");
  PrintRow(RunStrategy(w, Strategy::kSemiNaiveBottomUp));
  PrintRow(RunStrategy(w, Strategy::kMagic));
  RunRow counting = RunStrategy(w, Strategy::kCounting, "full", 15'000);
  PrintRow(counting);
  Note("magic terminates on cyclic Datalog (Theorem 10.2); counting "
       "regenerates the same values at ever-deeper index levels until the "
       "fact budget stops it (Section 10).");
}

void ReverseSafety() {
  std::printf("\n=== E6 list reverse: unsafe naive vs safe magic "
              "(Corollary 9.2 / Theorem 10.1) ===\n");
  for (int n : {8, 32, 64}) {
    Workload w = MakeListReverse(n);
    PrintHeader("reverse of an " + std::to_string(n) + "-element list");
    PrintRow(RunStrategy(w, Strategy::kNaiveBottomUp));
    PrintRow(RunStrategy(w, Strategy::kMagic));
    PrintRow(RunStrategy(w, Strategy::kSupplementaryMagic));
    PrintRow(RunStrategy(w, Strategy::kTopDown));
  }
  Note("the original program is not range restricted (InvalidArgument); "
       "the rewritten programs evaluate ~n^2/2 append facts and finish.");
}

}  // namespace
}  // namespace bench
}  // namespace magic

int main() {
  std::printf("E6: safety (Section 10)\n");
  magic::bench::StaticVerdicts();
  magic::bench::DynamicDivergence();
  magic::bench::ReverseSafety();
  return 0;
}
