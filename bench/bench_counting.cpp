// Experiment E3 (Sections 6-8, Examples 6-8): the counting strategies with
// and without the semijoin optimization, against the magic strategies, on
// acyclic data with bounded index depth (counting's sweet spot). The
// semijoin optimization narrows the indexed predicates (bound arguments are
// dropped) and deletes joins replayed by the indices.

#include <cstdio>

#include "bench/bench_common.h"

namespace magic {
namespace bench {
namespace {

void CompareOn(const Workload& w) {
  PrintHeader("E3 " + w.name);
  for (Strategy strategy :
       {Strategy::kMagic, Strategy::kSupplementaryMagic, Strategy::kCounting,
        Strategy::kSupplementaryCounting, Strategy::kCountingSemijoin,
        Strategy::kSupCountingSemijoin}) {
    PrintRow(RunStrategy(w, strategy));
  }
}

}  // namespace
}  // namespace bench
}  // namespace magic

int main() {
  std::printf("E3: counting and the semijoin optimization (Sections 6-8)\n");
  using namespace magic;
  using namespace magic::bench;
  // Linear ancestor chains: counting indices encode the depth; the
  // semijoin-optimized program collapses to index-only propagation
  // (appendix A.5.1/A.6.1).
  for (int n : {24, 40}) {
    CompareOn(MakeAncestorChain(n));
  }
  // Same-generation grids: bounded derivation depth, unique-ish paths.
  for (int depth : {6, 10}) {
    CompareOn(MakeSameGenNonlinear(depth, 6));
  }
  CompareOn(MakeSameGenNested(8, 6));
  magic::bench::Note(
      "counting trades joins for index arithmetic; with the semijoin "
      "optimization the recursive rules carry fewer/narrower columns than "
      "the magic variants. Index depth is bounded by the data depth, so "
      "the K/H encodings stay within 64 bits on these workloads.");
  return 0;
}
