// Experiment E5 (Section 2.1, Lemma 9.3): full vs partial sips. The facts
// computed under the full sip (IV) are contained in those computed under the
// contained partial/chain sip (V); answers coincide. "Methods that use all
// the available information are more efficient."

#include <cstdio>

#include "bench/bench_common.h"

namespace magic {
namespace bench {
namespace {

void Compare(const Workload& w) {
  PrintHeader("E5 " + w.name);
  for (const char* sip : {"full", "chain", "head-only"}) {
    RunRow row = RunStrategy(w, Strategy::kMagic, sip);
    row.label = sip;
    PrintRow(row);
  }
  Note("identical answers; the partial sips pass less binding information "
       "and therefore compute supersets of the full sip's facts "
       "(Lemma 9.3).");
}

}  // namespace
}  // namespace bench
}  // namespace magic

int main() {
  std::printf("E5: full vs partial sips (Lemma 9.3)\n");
  using namespace magic;
  using namespace magic::bench;
  for (int depth : {6, 10}) {
    Compare(MakeSameGenNonlinear(depth, 8));
  }
  Compare(MakeSameGenNested(8, 8));
  for (int n : {128, 256}) {
    Workload w = MakeAncestorChain(n);
    Universe& u = *w.universe;
    w.query.goal.args[0] = u.Constant("c" + std::to_string(n / 2));
    Compare(w);
  }
  return 0;
}
