// bench_throughput — QPS of the concurrent QueryService vs. thread count.
//
//   bench_throughput [--threads N] [--queries M] [--workload NAME]
//
// Serves M queries (instances of one prepared form, constants cycling over
// the workload's nodes) through QueryService at thread counts 1, 2, 4, ...
// up to N, and emits one machine-readable JSON line per (workload, thread
// count) so successive PRs can track a BENCH_throughput.json trajectory:
//
//   {"bench":"throughput","workload":"ancestor_chain_256","threads":4,...}
//
// Workloads: `ancestor` (chain of 256), `samegen` (10x6 grid), or `all`
// (default). Indexes and the form cache are warmed before measuring so
// every thread count sees identical work.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "engine/query_service.h"
#include "util/stopwatch.h"
#include "workload/generators.h"

namespace {

using namespace magic;

struct BenchCase {
  std::string name;
  Workload workload;
  std::vector<Query> batch;
};

std::vector<Query> CycleInstances(const Workload& w,
                                  const std::vector<std::string>& nodes,
                                  size_t count) {
  std::vector<Query> batch;
  batch.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    Query query = w.query;
    query.goal.args[0] = w.universe->Constant(nodes[i % nodes.size()]);
    batch.push_back(std::move(query));
  }
  return batch;
}

BenchCase MakeAncestorCase(size_t queries) {
  constexpr int kChain = 256;
  BenchCase c{"ancestor_chain_" + std::to_string(kChain),
              MakeAncestorChain(kChain),
              {}};
  std::vector<std::string> nodes;
  for (int i = 0; i < kChain; i += 3) {
    nodes.push_back("c" + std::to_string(i));
  }
  c.batch = CycleInstances(c.workload, nodes, queries);
  return c;
}

BenchCase MakeSameGenCase(size_t queries) {
  constexpr int kDepth = 10;
  constexpr int kWidth = 6;
  BenchCase c{"samegen_grid_" + std::to_string(kDepth) + "x" +
                  std::to_string(kWidth),
              MakeSameGenNonlinear(kDepth, kWidth),
              {}};
  std::vector<std::string> nodes;
  for (int level = 0; level < kDepth / 2; ++level) {
    for (int column = 0; column < kWidth; ++column) {
      nodes.push_back("n" + std::to_string(level) + "_" +
                      std::to_string(column));
    }
  }
  c.batch = CycleInstances(c.workload, nodes, queries);
  return c;
}

void RunCase(const BenchCase& c, size_t max_threads) {
  // Warm up: build the EDB indexes and intern everything once so every
  // measured thread count does identical work.
  {
    QueryServiceOptions options;
    options.num_threads = 1;
    QueryService warmup(c.workload.program, c.workload.db, options);
    (void)warmup.AnswerBatch(c.batch);
  }
  for (size_t threads = 1; threads <= max_threads; threads *= 2) {
    QueryServiceOptions options;
    options.num_threads = threads;
    QueryService service(c.workload.program, c.workload.db, options);
    Stopwatch watch;
    std::vector<QueryAnswer> answers = service.AnswerBatch(c.batch);
    double seconds = watch.ElapsedSeconds();
    size_t total_answers = 0;
    size_t failures = 0;
    for (const QueryAnswer& answer : answers) {
      if (!answer.status.ok()) ++failures;
      total_answers += answer.tuples.size();
    }
    QueryService::Stats stats = service.stats();
    std::printf(
        "{\"bench\":\"throughput\",\"workload\":\"%s\",\"threads\":%zu,"
        "\"queries\":%zu,\"seconds\":%.6f,\"qps\":%.1f,\"answers\":%zu,"
        "\"failures\":%zu,\"forms_compiled\":%zu,\"cache_hits\":%zu}\n",
        c.name.c_str(), threads, c.batch.size(), seconds,
        static_cast<double>(c.batch.size()) / seconds, total_answers,
        failures, stats.forms_compiled, stats.cache_hits);
    std::fflush(stdout);
  }
}

}  // namespace

int main(int argc, char** argv) {
  size_t max_threads = 4;
  size_t queries = 256;
  std::string workload = "all";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      max_threads = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--queries") == 0 && i + 1 < argc) {
      queries = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--workload") == 0 && i + 1 < argc) {
      workload = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_throughput [--threads N] [--queries M] "
                   "[--workload ancestor|samegen|all]\n");
      return 2;
    }
  }
  if (max_threads == 0) max_threads = 1;
  if (workload != "ancestor" && workload != "samegen" && workload != "all") {
    std::fprintf(stderr, "bench_throughput: unknown workload \"%s\"\n",
                 workload.c_str());
    return 2;
  }
  if (workload == "ancestor" || workload == "all") {
    RunCase(MakeAncestorCase(queries), max_threads);
  }
  if (workload == "samegen" || workload == "all") {
    RunCase(MakeSameGenCase(queries), max_threads);
  }
  return 0;
}
