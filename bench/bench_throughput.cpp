// bench_throughput — QPS of the concurrent QueryService vs. thread count.
//
//   bench_throughput [--threads N] [--queries M] [--workload NAME]
//                    [--mode NAME]
//
// Serves M queries (instances of one prepared form, constants cycling over
// the workload's nodes) through QueryService at thread counts 1, 2, 4, ...
// up to N, and emits one machine-readable JSON line per (workload, mode,
// thread count) so successive PRs can track a BENCH_throughput.json
// trajectory (scripts/bench_trajectory.sh appends labelled lines):
//
//   {"bench":"throughput","workload":"ancestor_chain_256","mode":"batch",...}
//
// Modes exercise the serving API tiers:
//   batch   AnswerBatch over QueryRequests (request tier, form cache hit
//           per query)
//   handle  Prepare once + Submit(FormHandle, seed) (steady-state hot
//           path: no form-cache mutex)
//   limit1  Submit(handle) with row_limit=1 (early-terminated existence
//           queries; measures how much work the answer sink saves)
//   stream  Stream(handle) and drain each cursor in chunks of 32
//   repeat  a zipfian repeated-seed sequence served twice: once with the
//           AnswerCache disabled (repeat_cold line) and once against a
//           pre-filled cache (repeat_warm line) — the cross-query
//           memoization win on skewed real-world traffic. A third
//           repeat_warm_noobs line repeats the warm pass with the
//           observability plumbing disabled (options.obs.enabled=false),
//           pricing the tracing/histogram overhead on the hot path
//   strategy  non-rewriting strategies (seminaive, topdown) served as
//           prepared handles — one strategy_seminaive and one
//           strategy_topdown line per thread count. These used to run
//           under an exclusive lock (QPS flat in threads by design);
//           their thread scaling is the fallback-removal win. Capped at
//           16 queries: each instance evaluates the whole (adorned)
//           program, so the uncapped count would dominate the run.
//   mutate  read QPS under a background write mix: the usual seed
//           traffic is served (AnswerCache ON, default budget) while a
//           writer thread toggles a disconnected edge through
//           QueryService::ApplyWrites — each batch publishes a new MVCC
//           version (no drain; in-flight readers keep their pinned
//           snapshots) and retires cached answers keyed by the old
//           version, so the line prices live EDB mutation
//           (writes_applied/write_publish_ns ride in the stats fields and
//           publish_p95_ms is emitted as a mode-specific extra). The
//           database is restored afterwards, so later modes and thread
//           counts see the same EDB.
//   eval_large  single-stream fixpoint throughput on a million-fact EDB
//           (MakeAncestorLargeDag; --large-facts sets the size): one
//           thread, cache off, handle tier, queries issued one at a time,
//           seeds cycling over the DAG's tail region so magic sets confine
//           each evaluation to a bounded suffix of the huge relation. The
//           line adds edb_facts, derived facts, and facts_per_sec (derived
//           facts per second — the fixpoint engine's raw speed, visible
//           above serving noise). Not part of `all`: building the EDB
//           takes longer than every other mode combined.
//   serve   the wire: an in-process MagicServer on an ephemeral port,
//           max(2, threads) MagicClient connections, and an OPEN-LOOP
//           arrival schedule (request i is due at i/rate seconds; late
//           requests are not rescheduled, so queueing delay counts
//           against latency like it does for real clients). Emits the
//           usual qps plus rate/connections and p50/p95/p99 latency
//           percentiles measured from each request's scheduled arrival.
//           --rate sets the offered load (default 1000/s).
//
// Workloads: `ancestor` (chain of 256), `samegen` (10x6 grid), or `all`
// (default). Indexes and the form cache are warmed before measuring so
// every thread count sees identical work.
//
// The batch/handle/limit1/stream modes run with the AnswerCache DISABLED
// so they keep measuring the evaluation/serving paths they always did
// (and stay comparable across the BENCH_throughput.json trajectory);
// `repeat` is the mode that measures the cache. The repeat_warm line's
// stats counters aggregate the untimed fill pass plus the timed pass;
// its queries/seconds/qps/answers fields describe the timed pass only.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "engine/query_service.h"
#include "net/client.h"
#include "net/server.h"
#include "storage/write_batch.h"
#include "util/stopwatch.h"
#include "workload/generators.h"

namespace {

using namespace magic;

struct BenchCase {
  std::string name;
  Workload workload;
  std::vector<Query> batch;
};

std::vector<Query> CycleInstances(const Workload& w,
                                  const std::vector<std::string>& nodes,
                                  size_t count) {
  std::vector<Query> batch;
  batch.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    Query query = w.query;
    query.goal.args[0] = w.universe->Constant(nodes[i % nodes.size()]);
    batch.push_back(std::move(query));
  }
  return batch;
}

BenchCase MakeAncestorCase(size_t queries) {
  constexpr int kChain = 256;
  BenchCase c{"ancestor_chain_" + std::to_string(kChain),
              MakeAncestorChain(kChain),
              {}};
  std::vector<std::string> nodes;
  for (int i = 0; i < kChain; i += 3) {
    nodes.push_back("c" + std::to_string(i));
  }
  c.batch = CycleInstances(c.workload, nodes, queries);
  return c;
}

BenchCase MakeSameGenCase(size_t queries) {
  constexpr int kDepth = 10;
  constexpr int kWidth = 6;
  BenchCase c{"samegen_grid_" + std::to_string(kDepth) + "x" +
                  std::to_string(kWidth),
              MakeSameGenNonlinear(kDepth, kWidth),
              {}};
  std::vector<std::string> nodes;
  for (int level = 0; level < kDepth / 2; ++level) {
    for (int column = 0; column < kWidth; ++column) {
      nodes.push_back("n" + std::to_string(level) + "_" +
                      std::to_string(column));
    }
  }
  c.batch = CycleInstances(c.workload, nodes, queries);
  return c;
}

/// Wraps plain queries as request-tier QueryRequests (default strategy,
/// no limits) for AnswerBatch.
std::vector<QueryRequest> AsRequests(const std::vector<Query>& queries) {
  std::vector<QueryRequest> requests(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    requests[i].query = queries[i];
  }
  return requests;
}

/// The per-instance seed values of each batch query (the constants at the
/// bound positions), for the handle tier.
std::vector<std::vector<TermId>> SeedValues(const BenchCase& c) {
  const Universe& u = *c.workload.universe;
  std::vector<std::vector<TermId>> seeds;
  seeds.reserve(c.batch.size());
  for (const Query& query : c.batch) {
    std::vector<TermId> bound;
    for (TermId arg : query.goal.args) {
      if (u.terms().IsGround(arg)) bound.push_back(arg);
    }
    seeds.push_back(std::move(bound));
  }
  return seeds;
}

void EmitLine(const BenchCase& c, const char* mode, size_t threads,
              size_t queries, double seconds, size_t answers,
              size_t failures, const QueryService::Stats& stats,
              const std::string& extra = std::string()) {
  // Counter fields come from the one shared reporting path
  // (Stats::JsonFragment) so the bench never re-aggregates by hand.
  // `extra` is a mode-specific run of `"key":value,` pairs (the serve
  // mode's rate + arrival-anchored latency percentiles; the mutate mode's
  // publish_p95_ms). Unless an `extra` already carries its own latency
  // keys, p50/p95/p99 come from the service's own request-latency
  // histogram — the same cells METRICS scrapes.
  std::string latency;
  if (extra.find("\"p50_ms\"") == std::string::npos &&
      stats.request_latency.count > 0) {
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "\"p50_ms\":%.3f,\"p95_ms\":%.3f,\"p99_ms\":%.3f,",
                  stats.request_latency.Quantile(0.50) / 1e6,
                  stats.request_latency.Quantile(0.95) / 1e6,
                  stats.request_latency.Quantile(0.99) / 1e6);
    latency = buf;
  }
  std::printf(
      "{\"bench\":\"throughput\",\"workload\":\"%s\",\"mode\":\"%s\","
      "\"threads\":%zu,\"queries\":%zu,\"seconds\":%.6f,\"qps\":%.1f,"
      "\"answers\":%zu,\"failures\":%zu,%s%s%s}\n",
      c.name.c_str(), mode, threads, queries, seconds,
      static_cast<double>(queries) / seconds, answers, failures,
      extra.c_str(), latency.c_str(), stats.JsonFragment().c_str());
  std::fflush(stdout);
}

/// The p-th percentile (0 < p <= 1) of latencies, by rank; `sorted` must be
/// ascending and nonempty.
double Percentile(const std::vector<double>& sorted, double p) {
  size_t rank = static_cast<size_t>(p * static_cast<double>(sorted.size()));
  if (rank > 0) --rank;
  if (rank >= sorted.size()) rank = sorted.size() - 1;
  return sorted[rank];
}

/// A zipf(s=1)-distributed index sequence over `universe` items,
/// deterministic across runs — the skewed repeated-seed traffic the
/// `repeat` mode serves.
std::vector<size_t> ZipfIndices(size_t universe, size_t count) {
  std::vector<double> cdf(universe);
  double total = 0;
  for (size_t i = 0; i < universe; ++i) {
    total += 1.0 / static_cast<double>(i + 1);
    cdf[i] = total;
  }
  for (double& value : cdf) value /= total;
  std::vector<size_t> indices;
  indices.reserve(count);
  uint64_t rng = 0x9e3779b97f4a7c15ULL;
  for (size_t i = 0; i < count; ++i) {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    const double u =
        static_cast<double>(rng >> 11) * (1.0 / 9007199254740992.0);
    indices.push_back(static_cast<size_t>(
        std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin()));
  }
  return indices;
}

/// Submits every seed through the handle tier and drains the futures;
/// returns (answers, failures).
std::pair<size_t, size_t> ServeSeeds(
    QueryService& service, const QueryService::FormHandle& handle,
    const std::vector<std::vector<TermId>>& seeds) {
  std::vector<std::future<QueryAnswer>> futures;
  futures.reserve(seeds.size());
  for (const std::vector<TermId>& seed : seeds) {
    futures.push_back(service.Submit(handle, seed));
  }
  size_t answers = 0;
  size_t failures = 0;
  for (std::future<QueryAnswer>& future : futures) {
    QueryAnswer answer = future.get();
    if (!answer.status.ok()) ++failures;
    answers += answer.tuples.size();
  }
  return {answers, failures};
}

void RunCase(BenchCase& c, size_t max_threads, const std::string& mode,
             double rate) {
  // Warm up: build the EDB indexes and intern everything once so every
  // measured thread count does identical work.
  {
    QueryServiceOptions options;
    options.num_threads = 1;
    QueryService warmup(c.workload.program, c.workload.db, options);
    (void)warmup.AnswerBatch(AsRequests(c.batch));
  }
  std::vector<std::vector<TermId>> seeds = SeedValues(c);

  // The mutate mode's toggled edge: two fresh constants (interned now, at
  // a quiescent point — never while a service is live) on some arity-2
  // base relation of the workload. The nodes are disconnected from every
  // query seed, so answers are unchanged; only the epoch moves.
  const TermId mut_a = c.workload.universe->Constant("mut_a");
  const TermId mut_b = c.workload.universe->Constant("mut_b");
  PredId mutate_pred = 0;
  bool mutate_pred_found = false;
  for (const auto& [pred, rel] : c.workload.db.relations()) {
    if (rel->arity() == 2) {
      mutate_pred = pred;
      mutate_pred_found = true;
      break;
    }
  }
  for (size_t threads = 1; threads <= max_threads; threads *= 2) {
    QueryServiceOptions options;
    options.num_threads = threads;
    // Legacy modes measure the evaluation/serving paths, not the memo —
    // with the cache on, a cycling seed list turns them into hit
    // benchmarks after the first lap. `repeat` measures the cache.
    options.cache_bytes = 0;

    if (mode == "batch" || mode == "all") {
      QueryService service(c.workload.program, c.workload.db, options);
      std::vector<QueryRequest> requests = AsRequests(c.batch);
      Stopwatch watch;
      std::vector<QueryAnswer> answers = service.AnswerBatch(requests);
      double seconds = watch.ElapsedSeconds();
      size_t total_answers = 0;
      size_t failures = 0;
      for (const QueryAnswer& answer : answers) {
        if (!answer.status.ok()) ++failures;
        total_answers += answer.tuples.size();
      }
      EmitLine(c, "batch", threads, c.batch.size(), seconds, total_answers,
               failures, service.stats());
    }

    if (mode == "handle" || mode == "limit1" || mode == "all") {
      for (const char* tier : {"handle", "limit1"}) {
        if (mode != "all" && mode != tier) continue;
        QueryService service(c.workload.program, c.workload.db, options);
        QueryRequest exemplar;
        exemplar.query = c.workload.query;
        auto handle = service.Prepare(exemplar);
        if (!handle.ok()) {
          std::fprintf(stderr, "bench_throughput: %s\n",
                       handle.status().ToString().c_str());
          return;
        }
        QueryLimits limits;
        if (std::strcmp(tier, "limit1") == 0) limits.row_limit = 1;
        Stopwatch watch;
        std::vector<std::future<QueryAnswer>> futures;
        futures.reserve(seeds.size());
        for (const std::vector<TermId>& seed : seeds) {
          futures.push_back(service.Submit(*handle, seed, limits));
        }
        size_t total_answers = 0;
        size_t failures = 0;
        for (std::future<QueryAnswer>& future : futures) {
          QueryAnswer answer = future.get();
          if (!answer.status.ok()) ++failures;
          total_answers += answer.tuples.size();
        }
        double seconds = watch.ElapsedSeconds();
        EmitLine(c, tier, threads, seeds.size(), seconds, total_answers,
                 failures, service.stats());
      }
    }

    if (mode == "repeat" || mode == "all") {
      // A zipfian repeated-seed sequence over the workload's distinct
      // seeds: the traffic shape where cross-query memoization pays.
      std::vector<std::vector<TermId>> distinct;
      for (const std::vector<TermId>& seed : seeds) {
        if (!distinct.empty() && seed == distinct.front()) break;  // wrapped
        distinct.push_back(seed);
      }
      std::vector<std::vector<TermId>> traffic;
      traffic.reserve(seeds.size());
      for (size_t index : ZipfIndices(distinct.size(), seeds.size())) {
        traffic.push_back(distinct[index]);
      }

      for (const char* phase :
           {"repeat_cold", "repeat_warm", "repeat_warm_noobs"}) {
        const bool warm = std::strncmp(phase, "repeat_warm", 11) == 0;
        QueryServiceOptions phase_options = options;
        if (warm) phase_options.cache_bytes = QueryServiceOptions{}.cache_bytes;
        // The noobs phase is the warm pass with observability off: the
        // delta between the two warm lines is the obs overhead (the
        // acceptance budget is within 5% on repeat_warm QPS).
        if (std::strcmp(phase, "repeat_warm_noobs") == 0) {
          phase_options.obs.enabled = false;
        }
        QueryService service(c.workload.program, c.workload.db,
                             phase_options);
        QueryRequest exemplar;
        exemplar.query = c.workload.query;
        auto handle = service.Prepare(exemplar);
        if (!handle.ok()) {
          std::fprintf(stderr, "bench_throughput: %s\n",
                       handle.status().ToString().c_str());
          return;
        }
        // Warm phase: one untimed pass fills the cache, a second untimed
        // pass brings the hit path itself to steady state (the first
        // post-cold phase otherwise pays the cold run's heap/CPU-cache
        // wreckage and the warm-vs-noobs comparison measures phase order,
        // not observability), and the timed pass then serves the same
        // skewed sequence from the warm cache.
        if (warm) {
          (void)ServeSeeds(service, *handle, traffic);
          (void)ServeSeeds(service, *handle, traffic);
        }
        // The warm passes serve in microseconds, so one pass over the
        // traffic is scheduler-noise territory; timing several passes
        // makes the warm-vs-noobs delta (the obs overhead budget)
        // measurable. QPS stays per-query, so lines remain comparable.
        const size_t timed_passes = warm ? 8 : 1;
        size_t total_answers = 0;
        size_t failures = 0;
        Stopwatch watch;
        for (size_t pass = 0; pass < timed_passes; ++pass) {
          auto [answers, failed] = ServeSeeds(service, *handle, traffic);
          total_answers += answers;
          failures += failed;
        }
        double seconds = watch.ElapsedSeconds();
        EmitLine(c, phase, threads, traffic.size() * timed_passes, seconds,
                 total_answers, failures, service.stats());
      }
    }

    if (mode == "strategy" || mode == "all") {
      const size_t strategy_queries = std::min<size_t>(seeds.size(), 16);
      const std::vector<std::vector<TermId>> subset(
          seeds.begin(),
          seeds.begin() + static_cast<ptrdiff_t>(strategy_queries));
      for (Strategy strategy :
           {Strategy::kSemiNaiveBottomUp, Strategy::kTopDown}) {
        QueryService service(c.workload.program, c.workload.db, options);
        QueryRequest exemplar;
        exemplar.query = c.workload.query;
        exemplar.strategy = strategy;
        auto handle = service.Prepare(exemplar);
        if (!handle.ok()) {
          std::fprintf(stderr, "bench_throughput: %s\n",
                       handle.status().ToString().c_str());
          return;
        }
        Stopwatch watch;
        auto [total_answers, failures] = ServeSeeds(service, *handle, subset);
        double seconds = watch.ElapsedSeconds();
        const std::string tier = "strategy_" + StrategyName(strategy);
        EmitLine(c, tier.c_str(), threads, subset.size(), seconds,
                 total_answers, failures, service.stats());
      }
    }

    if ((mode == "mutate" || mode == "all") && mutate_pred_found) {
      // Reads under a write mix: cache ON (the default budget) so the
      // line prices what live traffic would feel — warm hits until a
      // publish retires them by version, refills after. No drain: reader
      // QPS should stay near repeat_warm because writers never block
      // readers.
      QueryServiceOptions mutate_options = options;
      mutate_options.cache_bytes = QueryServiceOptions{}.cache_bytes;
      QueryService service(c.workload.program, c.workload.db,
                           mutate_options);
      QueryRequest exemplar;
      exemplar.query = c.workload.query;
      auto handle = service.Prepare(exemplar);
      if (!handle.ok()) {
        std::fprintf(stderr, "bench_throughput: %s\n",
                     handle.status().ToString().c_str());
        return;
      }
      std::atomic<bool> stop{false};
      std::thread writer([&] {
        bool present = false;
        while (!stop.load(std::memory_order_relaxed)) {
          WriteBatch batch;
          if (present) {
            batch.Retract(mutate_pred, {mut_a, mut_b});
          } else {
            batch.Insert(mutate_pred, {mut_a, mut_b});
          }
          if (service.ApplyWrites(batch).ok()) present = !present;
          // Throttle so cache refills can land between publishes — this
          // is a write *mix*, not a write flood.
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
        if (present) {
          WriteBatch undo;
          undo.Retract(mutate_pred, {mut_a, mut_b});
          (void)service.ApplyWrites(undo);  // restore the baseline EDB
        }
      });
      Stopwatch watch;
      auto [total_answers, failures] = ServeSeeds(service, *handle, seeds);
      double seconds = watch.ElapsedSeconds();
      stop.store(true, std::memory_order_relaxed);
      writer.join();
      // Writer-side tail latency rides along: p95 of the per-batch
      // build+publish histogram (queue wait excluded). Independent of the
      // longest in-flight fixpoint — that independence is the MVCC win
      // this line exists to keep honest.
      const QueryService::Stats stats = service.stats();
      char extra[64];
      std::snprintf(extra, sizeof(extra), "\"publish_p95_ms\":%.3f,",
                    stats.write_publish.Quantile(0.95) / 1e6);
      EmitLine(c, "mutate", threads, seeds.size(), seconds, total_answers,
               failures, stats, extra);
    }

    if (mode == "serve" || mode == "all") {
      // Whole-stack line: parse + seed interning + evaluation + framing,
      // through real sockets, under an open-loop arrival schedule.
      QueryService service(c.workload.program, c.workload.db, options);
      net::ServerOptions server_options;
      server_options.port = 0;
      net::MagicServer server(c.workload.universe, c.workload.program,
                              &service, server_options);
      if (Status st = server.Start(); !st.ok()) {
        std::fprintf(stderr, "bench_throughput: %s\n", st.ToString().c_str());
        return;
      }
      const Universe& u = *c.workload.universe;
      std::string query_text =
          u.symbols().Name(u.predicates().info(c.workload.query.goal.pred).name);
      query_text += "(";
      for (size_t i = 0; i < c.workload.query.goal.args.size(); ++i) {
        if (i > 0) query_text += ", ";
        query_text += u.TermToString(c.workload.query.goal.args[i]);
      }
      query_text += ")";
      std::vector<std::string> seed_tokens;
      seed_tokens.reserve(seeds.size());
      for (const std::vector<TermId>& seed : seeds) {
        std::string tokens;
        for (size_t j = 0; j < seed.size(); ++j) {
          if (j > 0) tokens += ' ';
          tokens += u.TermToString(seed[j]);
        }
        seed_tokens.push_back(std::move(tokens));
      }

      const size_t connections = std::max<size_t>(2, threads);
      std::vector<double> latency_ms(seed_tokens.size(), 0.0);
      std::atomic<size_t> total_answers{0};
      std::atomic<size_t> failures{0};
      const auto start = std::chrono::steady_clock::now();
      std::vector<std::thread> clients;
      clients.reserve(connections);
      for (size_t k = 0; k < connections; ++k) {
        clients.emplace_back([&, k] {
          auto conn = net::MagicClient::Connect(server.host(), server.port());
          size_t assigned = 0;
          for (size_t i = k; i < seed_tokens.size(); i += connections) {
            ++assigned;
          }
          if (!conn.ok()) {
            failures.fetch_add(assigned, std::memory_order_relaxed);
            return;
          }
          net::MagicClient client = std::move(*conn);
          auto prepared = client.Call("PREPARE bench " + query_text);
          if (!prepared.ok() || !prepared->ok()) {
            failures.fetch_add(assigned, std::memory_order_relaxed);
            return;
          }
          for (size_t i = k; i < seed_tokens.size(); i += connections) {
            // Open loop: request i is due at i/rate seconds after start,
            // regardless of how long earlier requests took. Sleeping past
            // a due point just means the latency sample includes the
            // queueing delay — exactly what a real client would feel.
            const auto due =
                start + std::chrono::duration_cast<
                            std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(
                                static_cast<double>(i) / rate));
            std::this_thread::sleep_until(due);
            auto reply = client.Call("QUERY bench " + seed_tokens[i]);
            const auto done = std::chrono::steady_clock::now();
            latency_ms[i] =
                std::chrono::duration<double, std::milli>(done - due).count();
            if (!reply.ok()) {
              // Transport failure: the connection is dead; everything
              // still assigned to it fails too.
              size_t rest = 0;
              for (size_t j = i; j < seed_tokens.size(); j += connections) {
                ++rest;
              }
              failures.fetch_add(rest, std::memory_order_relaxed);
              return;
            }
            if (!reply->ok()) {
              failures.fetch_add(1, std::memory_order_relaxed);
            } else {
              total_answers.fetch_add(reply->lines.size(),
                                      std::memory_order_relaxed);
            }
          }
        });
      }
      for (std::thread& t : clients) t.join();
      const double seconds = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - start)
                                 .count();
      server.Stop();

      std::vector<double> sorted = latency_ms;
      std::sort(sorted.begin(), sorted.end());
      char extra[192];
      std::snprintf(extra, sizeof(extra),
                    "\"rate\":%.1f,\"connections\":%zu,\"p50_ms\":%.3f,"
                    "\"p95_ms\":%.3f,\"p99_ms\":%.3f,",
                    rate, connections, Percentile(sorted, 0.50),
                    Percentile(sorted, 0.95), Percentile(sorted, 0.99));
      EmitLine(c, "serve", threads, seed_tokens.size(), seconds,
               total_answers.load(), failures.load(), service.stats(), extra);
    }

    if (mode == "stream" || mode == "all") {
      QueryService service(c.workload.program, c.workload.db, options);
      QueryRequest exemplar;
      exemplar.query = c.workload.query;
      auto handle = service.Prepare(exemplar);
      if (!handle.ok()) {
        std::fprintf(stderr, "bench_throughput: %s\n",
                     handle.status().ToString().c_str());
        return;
      }
      Stopwatch watch;
      std::vector<AnswerCursor> cursors;
      cursors.reserve(seeds.size());
      for (const std::vector<TermId>& seed : seeds) {
        cursors.push_back(service.Stream(*handle, seed));
      }
      size_t total_answers = 0;
      size_t failures = 0;
      std::vector<std::vector<TermId>> chunk;
      for (AnswerCursor& cursor : cursors) {
        while (cursor.Next(32, &chunk)) total_answers += chunk.size();
        if (!cursor.Finish().status.ok()) ++failures;
      }
      double seconds = watch.ElapsedSeconds();
      EmitLine(c, "stream", threads, seeds.size(), seconds, total_answers,
               failures, service.stats());
    }
  }
}

void RunEvalLarge(size_t queries, size_t large_facts) {
  constexpr int kSpan = 16;
  constexpr int kTail = 512;  // seeds come from the last kTail nodes
  const int nodes =
      std::max<int>(2, static_cast<int>(large_facts / 8));  // ~8 edges/node
  BenchCase c{"ancestor_large_dag_" + std::to_string(large_facts),
              MakeAncestorLargeDag(nodes, static_cast<int>(large_facts),
                                   kSpan, /*seed=*/0x5eed),
              {}};
  const int tail = std::min(nodes - 1, kTail);
  std::vector<std::string> tail_nodes;
  tail_nodes.reserve(static_cast<size_t>(tail));
  for (int i = nodes - 1 - tail; i < nodes - 1; ++i) {
    tail_nodes.push_back("c" + std::to_string(i));
  }
  c.batch = CycleInstances(c.workload, tail_nodes, queries);
  std::vector<std::vector<TermId>> seeds = SeedValues(c);

  // Single stream, cache off: this line prices the fixpoint itself, not
  // the pool or the memo.
  QueryServiceOptions options;
  options.num_threads = 1;
  options.cache_bytes = 0;
  QueryService service(c.workload.program, c.workload.db, options);
  QueryRequest exemplar;
  exemplar.query = c.workload.query;
  auto handle = service.Prepare(exemplar);
  if (!handle.ok()) {
    std::fprintf(stderr, "bench_throughput: %s\n",
                 handle.status().ToString().c_str());
    return;
  }
  // Warm once: the first probe builds the million-row par index; every
  // measured query then pays probes, not builds.
  (void)service.Submit(*handle, seeds[0]).get();

  size_t total_answers = 0;
  size_t failures = 0;
  uint64_t derived_facts = 0;
  Stopwatch watch;
  for (const std::vector<TermId>& seed : seeds) {
    QueryAnswer answer = service.Submit(*handle, seed).get();
    if (!answer.status.ok()) ++failures;
    total_answers += answer.tuples.size();
    derived_facts += answer.eval_stats.new_facts;
  }
  const double seconds = watch.ElapsedSeconds();
  char extra[160];
  std::snprintf(extra, sizeof(extra),
                "\"edb_facts\":%zu,\"facts\":%llu,\"facts_per_sec\":%.0f,",
                c.workload.db.TotalFacts(),
                static_cast<unsigned long long>(derived_facts),
                static_cast<double>(derived_facts) / seconds);
  EmitLine(c, "eval_large", 1, seeds.size(), seconds, total_answers,
           failures, service.stats(), extra);
}

}  // namespace

int main(int argc, char** argv) {
  size_t max_threads = 4;
  size_t queries = 256;
  std::string workload = "all";
  std::string mode = "all";
  double rate = 1000.0;
  size_t large_facts = 1'000'000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      max_threads = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--queries") == 0 && i + 1 < argc) {
      queries = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--workload") == 0 && i + 1 < argc) {
      workload = argv[++i];
    } else if (std::strcmp(argv[i], "--mode") == 0 && i + 1 < argc) {
      mode = argv[++i];
    } else if (std::strcmp(argv[i], "--rate") == 0 && i + 1 < argc) {
      rate = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--large-facts") == 0 && i + 1 < argc) {
      large_facts = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::fprintf(
          stderr,
          "usage: bench_throughput [--threads N] [--queries M] "
          "[--workload ancestor|samegen|all] "
          "[--mode batch|handle|limit1|stream|repeat|strategy|mutate|serve|"
          "eval_large|all] [--rate QPS] [--large-facts N]\n");
      return 2;
    }
  }
  if (max_threads == 0) max_threads = 1;
  if (rate <= 0) rate = 1000.0;
  if (large_facts < 1000) large_facts = 1000;
  if (workload != "ancestor" && workload != "samegen" && workload != "all") {
    std::fprintf(stderr, "bench_throughput: unknown workload \"%s\"\n",
                 workload.c_str());
    return 2;
  }
  if (mode != "batch" && mode != "handle" && mode != "limit1" &&
      mode != "stream" && mode != "repeat" && mode != "strategy" &&
      mode != "mutate" && mode != "serve" && mode != "eval_large" &&
      mode != "all") {
    std::fprintf(stderr, "bench_throughput: unknown mode \"%s\"\n",
                 mode.c_str());
    return 2;
  }
  if (mode == "eval_large") {
    // Its own workload and a single thread count: not part of `all`, so
    // the legacy modes' lines stay byte-comparable across the trajectory.
    RunEvalLarge(queries, large_facts);
    return 0;
  }
  if (workload == "ancestor" || workload == "all") {
    BenchCase c = MakeAncestorCase(queries);
    RunCase(c, max_threads, mode, rate);
  }
  if (workload == "samegen" || workload == "all") {
    BenchCase c = MakeSameGenCase(queries);
    RunCase(c, max_threads, mode, rate);
  }
  return 0;
}
