#ifndef MAGIC_WORKLOAD_GENERATORS_H_
#define MAGIC_WORKLOAD_GENERATORS_H_

#include <memory>
#include <string>

#include "ast/parser.h"
#include "storage/database.h"

namespace magic {

/// A ready-to-run benchmark scenario: program, database, and query over one
/// shared Universe. These are the four appendix problems plus data shapes
/// for the measured experiments.
struct Workload {
  std::shared_ptr<Universe> universe;
  Program program;
  Database db;
  Query query;
  std::string name;
};

/// anc(X,Y) :- par(X,Y);  anc(X,Y) :- par(X,Z), anc(Z,Y).
/// Data: par chain c0 -> c1 -> ... -> c_{n-1}. Query anc(c0, Y).
Workload MakeAncestorChain(int n);

/// Same program; par is a complete `fanout`-ary tree of the given depth,
/// query at the root.
Workload MakeAncestorTree(int depth, int fanout);

/// Same program; par is a random DAG (edges i->j with i<j). Query node 0.
Workload MakeAncestorRandom(int nodes, int edges, uint32_t seed);

/// Million-fact-scale ancestor workload: par is a backbone chain
/// c0 -> c1 -> ... -> c_{nodes-1} plus random forward edges i -> j with
/// j - i in [1, span] until the relation holds `edges` distinct facts
/// (span-bounded so per-seed closures stay proportional to the distance
/// from the seed to the tail, not to the whole graph). The backbone makes
/// reachability exact: anc(c_k, Y) holds for precisely the nodes after k.
/// Query anc(c_{nodes-1}, Y); benches cycle seeds over the tail region so
/// magic sets confine each evaluation to a bounded suffix of a huge EDB.
Workload MakeAncestorLargeDag(int nodes, int edges, int span, uint32_t seed);

/// Same program; par is a single directed cycle (divergence scenario for
/// the counting strategies). Query anc(c0, Y).
Workload MakeAncestorCycle(int n);

/// Nonlinear ancestor (appendix A.1(2)): a(X,Y) :- p(X,Y);
/// a(X,Y) :- a(X,Z), a(Z,Y). Chain data, query a(c0, Y).
Workload MakeNonlinearAncestorChain(int n);

/// The running example: nonlinear same generation over up/flat/down.
/// Data: a grid of `depth` levels x `width` columns; `up`/`down` connect a
/// node to the node above/below in its column, `flat` runs left-to-right
/// within each level (acyclic, bounded recursion depth = level). Query
/// sg(bottom-left node, Y).
Workload MakeSameGenNonlinear(int depth, int width);

/// Same grid data (plus b1/b2 edges along each level) for the nested
/// same-generation program (appendix A.1(3)). Query p(bottom-left, Y).
Workload MakeSameGenNested(int depth, int width);

/// List reverse (appendix A.1(4)) with a list of n constants; query
/// reverse([c0,...,c_{n-1}], Y). Exercises function symbols.
Workload MakeListReverse(int n);

}  // namespace magic

#endif  // MAGIC_WORKLOAD_GENERATORS_H_
