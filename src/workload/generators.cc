#include "workload/generators.h"

#include <random>
#include <string>

#include "util/check.h"

namespace magic {

namespace {

constexpr const char kAncestorProgram[] = R"(
  anc(X,Y) :- par(X,Y).
  anc(X,Y) :- par(X,Z), anc(Z,Y).
)";

constexpr const char kNonlinearAncestorProgram[] = R"(
  a(X,Y) :- p(X,Y).
  a(X,Y) :- a(X,Z), a(Z,Y).
)";

constexpr const char kSameGenNonlinearProgram[] = R"(
  sg(X,Y) :- flat(X,Y).
  sg(X,Y) :- up(X,Z1), sg(Z1,Z2), flat(Z2,Z3), sg(Z3,Z4), down(Z4,Y).
)";

constexpr const char kSameGenNestedProgram[] = R"(
  p(X,Y) :- b1(X,Y).
  p(X,Y) :- sg(X,Z1), p(Z1,Z2), b2(Z2,Y).
  sg(X,Y) :- flat(X,Y).
  sg(X,Y) :- up(X,Z1), sg(Z1,Z2), down(Z2,Y).
)";

constexpr const char kListReverseProgram[] = R"(
  append(V, [], [V]).
  append(V, [W|X], [W|Y]) :- append(V, X, Y).
  reverse([], []).
  reverse([V|X], Y) :- reverse(X, Z), append(V, Z, Y).
)";

Workload FromText(const std::string& name, const std::string& text) {
  auto universe = std::make_shared<Universe>();
  Result<ParsedUnit> parsed = ParseUnit(text, universe);
  MAGIC_CHECK_MSG(parsed.ok(), parsed.status().ToString());
  Workload w{universe, std::move(parsed->program), Database(universe),
             Query{}, name};
  for (const Fact& fact : parsed->facts) {
    Status st = w.db.AddFact(fact);
    MAGIC_CHECK_MSG(st.ok(), st.ToString());
  }
  if (parsed->query.has_value()) w.query = *parsed->query;
  return w;
}

PredId PredOf(const Universe& u, const std::string& name, uint32_t arity) {
  std::optional<SymbolId> sym = u.symbols().Find(name);
  MAGIC_CHECK_MSG(sym.has_value(), "unknown predicate " + name);
  std::optional<PredId> pred = u.predicates().Find(*sym, arity);
  MAGIC_CHECK_MSG(pred.has_value(), "unknown predicate " + name);
  return *pred;
}

TermId Node(Universe& u, const std::string& prefix, int i) {
  return u.Constant(prefix + std::to_string(i));
}

void AddEdge(Workload* w, PredId pred, TermId from, TermId to) {
  Status st = w->db.AddFact(pred, {from, to});
  MAGIC_CHECK_MSG(st.ok(), st.ToString());
}

void SetQuery(Workload* w, const std::string& pred_name, TermId bound) {
  Universe& u = *w->universe;
  PredId pred = PredOf(u, pred_name, 2);
  w->query.goal.pred = pred;
  w->query.goal.args = {bound, u.FreshVariable("Ans")};
}

}  // namespace

Workload MakeAncestorChain(int n) {
  Workload w = FromText("ancestor-chain-" + std::to_string(n),
                        kAncestorProgram);
  Universe& u = *w.universe;
  PredId par = PredOf(u, "par", 2);
  for (int i = 0; i + 1 < n; ++i) {
    AddEdge(&w, par, Node(u, "c", i), Node(u, "c", i + 1));
  }
  SetQuery(&w, "anc", Node(u, "c", 0));
  return w;
}

Workload MakeAncestorTree(int depth, int fanout) {
  Workload w = FromText("ancestor-tree-d" + std::to_string(depth) + "-f" +
                            std::to_string(fanout),
                        kAncestorProgram);
  Universe& u = *w.universe;
  PredId par = PredOf(u, "par", 2);
  // Heap layout: node i has children i*fanout+1 .. i*fanout+fanout.
  int total = 1;
  int level_size = 1;
  for (int d = 0; d < depth; ++d) {
    level_size *= fanout;
    total += level_size;
  }
  for (int i = 0; i < total; ++i) {
    for (int c = 1; c <= fanout; ++c) {
      int child = i * fanout + c;
      if (child >= total) break;
      AddEdge(&w, par, Node(u, "c", i), Node(u, "c", child));
    }
  }
  SetQuery(&w, "anc", Node(u, "c", 0));
  return w;
}

Workload MakeAncestorRandom(int nodes, int edges, uint32_t seed) {
  Workload w = FromText("ancestor-random-n" + std::to_string(nodes) + "-e" +
                            std::to_string(edges),
                        kAncestorProgram);
  Universe& u = *w.universe;
  PredId par = PredOf(u, "par", 2);
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> pick(0, nodes - 1);
  for (int e = 0; e < edges; ++e) {
    int a = pick(rng);
    int b = pick(rng);
    if (a == b) continue;
    if (a > b) std::swap(a, b);  // acyclic: edges ascend
    AddEdge(&w, par, Node(u, "c", a), Node(u, "c", b));
  }
  SetQuery(&w, "anc", Node(u, "c", 0));
  return w;
}

Workload MakeAncestorLargeDag(int nodes, int edges, int span, uint32_t seed) {
  MAGIC_CHECK(nodes >= 2 && span >= 1 && edges >= nodes - 1);
  Workload w = FromText("ancestor-large-dag-n" + std::to_string(nodes) +
                            "-e" + std::to_string(edges),
                        kAncestorProgram);
  Universe& u = *w.universe;
  PredId par = PredOf(u, "par", 2);
  // Intern the node constants once, in order; edge generation below then
  // never touches the symbol table's string path.
  std::vector<TermId> node_ids;
  node_ids.reserve(static_cast<size_t>(nodes));
  for (int i = 0; i < nodes; ++i) node_ids.push_back(Node(u, "c", i));
  Relation& rel = w.db.GetOrCreate(par);
  auto add = [&](int a, int b) {
    const TermId edge[2] = {node_ids[a], node_ids[b]};
    return rel.Insert(edge);
  };
  int added = 0;
  for (int i = 0; i + 1 < nodes; ++i) {
    if (add(i, i + 1)) ++added;
  }
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> src(0, nodes - 2);
  std::uniform_int_distribution<int> hop(1, span);
  while (added < edges) {
    const int a = src(rng);
    const int b = std::min(nodes - 1, a + hop(rng));
    if (add(a, b)) ++added;
  }
  SetQuery(&w, "anc", node_ids[static_cast<size_t>(nodes) - 1]);
  return w;
}

Workload MakeAncestorCycle(int n) {
  Workload w =
      FromText("ancestor-cycle-" + std::to_string(n), kAncestorProgram);
  Universe& u = *w.universe;
  PredId par = PredOf(u, "par", 2);
  for (int i = 0; i < n; ++i) {
    AddEdge(&w, par, Node(u, "c", i), Node(u, "c", (i + 1) % n));
  }
  SetQuery(&w, "anc", Node(u, "c", 0));
  return w;
}

Workload MakeNonlinearAncestorChain(int n) {
  Workload w = FromText("nonlinear-ancestor-chain-" + std::to_string(n),
                        kNonlinearAncestorProgram);
  Universe& u = *w.universe;
  PredId par = PredOf(u, "p", 2);
  for (int i = 0; i + 1 < n; ++i) {
    AddEdge(&w, par, Node(u, "c", i), Node(u, "c", i + 1));
  }
  SetQuery(&w, "a", Node(u, "c", 0));
  return w;
}

namespace {

/// Grid node name n<level>_<column>.
TermId GridNode(Universe& u, int level, int column) {
  std::string name = "n";
  name += std::to_string(level);
  name += '_';
  name += std::to_string(column);
  return u.Constant(name);
}

void FillGrid(Workload* w, int depth, int width, bool nested_extras) {
  Universe& u = *w->universe;
  PredId up = PredOf(u, "up", 2);
  PredId down = PredOf(u, "down", 2);
  PredId flat = PredOf(u, "flat", 2);
  for (int l = 0; l < depth; ++l) {
    for (int c = 0; c < width; ++c) {
      if (l + 1 < depth) {
        AddEdge(w, up, GridNode(u, l + 1, c), GridNode(u, l, c));
        AddEdge(w, down, GridNode(u, l, c), GridNode(u, l + 1, c));
      }
      if (c + 1 < width) {
        AddEdge(w, flat, GridNode(u, l, c), GridNode(u, l, c + 1));
      }
    }
  }
  if (nested_extras) {
    PredId b1 = PredOf(u, "b1", 2);
    PredId b2 = PredOf(u, "b2", 2);
    for (int l = 0; l < depth; ++l) {
      for (int c = 0; c + 1 < width; ++c) {
        AddEdge(w, b1, GridNode(u, l, c), GridNode(u, l, c + 1));
        AddEdge(w, b2, GridNode(u, l, c), GridNode(u, l, c + 1));
      }
    }
  }
}

}  // namespace

Workload MakeSameGenNonlinear(int depth, int width) {
  Workload w = FromText("samegen-nonlinear-d" + std::to_string(depth) + "-w" +
                            std::to_string(width),
                        kSameGenNonlinearProgram);
  FillGrid(&w, depth, width, /*nested_extras=*/false);
  SetQuery(&w, "sg", GridNode(*w.universe, depth - 1, 0));
  return w;
}

Workload MakeSameGenNested(int depth, int width) {
  Workload w = FromText("samegen-nested-d" + std::to_string(depth) + "-w" +
                            std::to_string(width),
                        kSameGenNestedProgram);
  FillGrid(&w, depth, width, /*nested_extras=*/true);
  SetQuery(&w, "p", GridNode(*w.universe, depth - 1, 0));
  return w;
}

Workload MakeListReverse(int n) {
  Workload w =
      FromText("list-reverse-" + std::to_string(n), kListReverseProgram);
  Universe& u = *w.universe;
  std::vector<TermId> items;
  for (int i = 0; i < n; ++i) items.push_back(Node(u, "c", i));
  PredId reverse = PredOf(u, "reverse", 2);
  w.query.goal.pred = reverse;
  w.query.goal.args = {u.MakeList(items), u.FreshVariable("Ans")};
  return w;
}

}  // namespace magic
