#ifndef MAGIC_UTIL_CHECK_H_
#define MAGIC_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <string>

namespace magic {
namespace internal {

/// Prints a fatal-check failure and aborts. Used by the MAGIC_CHECK macros;
/// never returns.
[[noreturn]] inline void CheckFail(const char* expr, const char* file, int line,
                                   const std::string& msg = "") {
  std::fprintf(stderr, "MAGIC_CHECK failed: %s at %s:%d %s\n", expr, file, line,
               msg.c_str());
  std::abort();
}

}  // namespace internal
}  // namespace magic

/// Internal invariant check. Unlike Status, a MAGIC_CHECK failure indicates a
/// bug in this library, not bad user input, so it aborts.
#define MAGIC_CHECK(cond)                                          \
  do {                                                             \
    if (!(cond)) {                                                 \
      ::magic::internal::CheckFail(#cond, __FILE__, __LINE__);     \
    }                                                              \
  } while (0)

#define MAGIC_CHECK_MSG(cond, msg)                                   \
  do {                                                               \
    if (!(cond)) {                                                   \
      ::magic::internal::CheckFail(#cond, __FILE__, __LINE__, (msg)); \
    }                                                                \
  } while (0)

#endif  // MAGIC_UTIL_CHECK_H_
