#ifndef MAGIC_UTIL_STATUS_H_
#define MAGIC_UTIL_STATUS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "util/check.h"

namespace magic {

/// Error categories used across the library. Mirrors the RocksDB/Arrow
/// convention of a lightweight status object instead of exceptions.
enum class StatusCode {
  kOk,
  kInvalidArgument,    // malformed input (parse errors, bad sips, bad arity)
  kNotFound,           // missing predicate/relation
  kFailedPrecondition, // operation not valid in current state
  kResourceExhausted,  // evaluation hit a fact/iteration budget
  kDeadlineExceeded,   // a per-request deadline expired mid-evaluation
  kCancelled,          // a per-request cancellation token was set
  kUnsafe,             // static analysis proved or failed to prove safety
  kUnimplemented,
  kInternal,
};

/// A success-or-error result for fallible operations.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Unsafe(std::string msg) {
    return Status(StatusCode::kUnsafe, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  /// Builds a Status of any code (OK for kOk, dropping the message). The
  /// named factories above are preferred in code that knows its error
  /// class; this one exists for table-driven mappings — reconstructing a
  /// Status from a wire code is the canonical use.
  static Status FromCode(StatusCode code, std::string msg) {
    if (code == StatusCode::kOk) return Status();
    return Status(code, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return CodeName(code_) + ": " + message_;
  }

  static std::string CodeName(StatusCode code) {
    switch (code) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "InvalidArgument";
      case StatusCode::kNotFound: return "NotFound";
      case StatusCode::kFailedPrecondition: return "FailedPrecondition";
      case StatusCode::kResourceExhausted: return "ResourceExhausted";
      case StatusCode::kDeadlineExceeded: return "DeadlineExceeded";
      case StatusCode::kCancelled: return "Cancelled";
      case StatusCode::kUnsafe: return "Unsafe";
      case StatusCode::kUnimplemented: return "Unimplemented";
      case StatusCode::kInternal: return "Internal";
    }
    return "Unknown";
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// How one request ended, beyond its Status: the truncation/limit outcomes
/// keep status OK or carry a matching non-OK code (kDeadlineExceeded /
/// kCancelled), while kError covers every other non-OK status. Lives here —
/// not in the engine — because it is one axis of the unified
/// outcome <-> wire-code <-> exit-code table below, which every surface
/// (in-process API, magicdb exit statuses, the TCP wire protocol) shares.
enum class AnswerStatus {
  kOk,                // complete answer set
  kError,             // see QueryAnswer::status
  kTruncated,         // QueryLimits::row_limit reached; tuples are a prefix
  kDeadlineExceeded,  // deadline expired mid-run; tuples are a prefix
  kCancelled,         // cancellation token set; tuples are a prefix
  kOverloaded,        // rejected by admission control; never evaluated
};

inline std::string AnswerStatusName(AnswerStatus status) {
  switch (status) {
    case AnswerStatus::kOk: return "ok";
    case AnswerStatus::kError: return "error";
    case AnswerStatus::kTruncated: return "truncated";
    case AnswerStatus::kDeadlineExceeded: return "deadline-exceeded";
    case AnswerStatus::kCancelled: return "cancelled";
    case AnswerStatus::kOverloaded: return "overloaded";
  }
  return "?";
}

/// The single request-outcome vocabulary shared by every serving surface.
/// A WireCode is what crosses the process boundary: the first token of
/// every response frame of the line protocol is its name, and the exit
/// status of magicdb's batch/REPL/client modes is its exit code. There is
/// exactly one table (kWireCodeTable); the server, the client, and the CLI
/// all read it, so the three surfaces cannot drift apart.
enum class WireCode : uint8_t {
  kOk = 0,
  kTruncated,          // success: a row limit (or sink) stopped the answer
  kDeadlineExceeded,   // per-request deadline expired (queued or mid-run)
  kCancelled,          // per-request cancellation token fired
  kOverloaded,         // shed by admission control; never evaluated
  kInvalidArgument,    // malformed request (parse error, bad seed arity…)
  kNotFound,           // unknown predicate / unknown session handle
  kFailedPrecondition, // not valid in this state (frozen predicate table,
                       // writes on a read-only service…)
  kResourceExhausted,  // evaluation hit a fact/iteration budget
  kUnsafe,             // static analysis refused the strategy
  kUnimplemented,
  kInternal,
  kProtocol,           // framing violation (oversized/torn frame); the
                       // connection is not recoverable
};

/// One row of the unified table: the wire token, the process exit code,
/// and the Status code a client reconstructs. Exit-code contract: 0 =
/// success (including truncation-by-limit, which magicdb has always
/// treated as success), 1 = internal error, 2 = usage (reserved for the
/// CLIs' own argument errors), 3 = the request was bad, 4 = deadline,
/// 5 = cancelled, 6 = overload / resource budget, 7 = protocol violation.
struct WireCodeRow {
  WireCode wire;
  const char* name;
  int exit_code;
  StatusCode status;
};

inline constexpr WireCodeRow kWireCodeTable[] = {
    {WireCode::kOk, "Ok", 0, StatusCode::kOk},
    {WireCode::kTruncated, "Truncated", 0, StatusCode::kOk},
    {WireCode::kDeadlineExceeded, "DeadlineExceeded", 4,
     StatusCode::kDeadlineExceeded},
    {WireCode::kCancelled, "Cancelled", 5, StatusCode::kCancelled},
    {WireCode::kOverloaded, "Overloaded", 6, StatusCode::kResourceExhausted},
    {WireCode::kInvalidArgument, "InvalidArgument", 3,
     StatusCode::kInvalidArgument},
    {WireCode::kNotFound, "NotFound", 3, StatusCode::kNotFound},
    {WireCode::kFailedPrecondition, "FailedPrecondition", 3,
     StatusCode::kFailedPrecondition},
    {WireCode::kResourceExhausted, "ResourceExhausted", 6,
     StatusCode::kResourceExhausted},
    {WireCode::kUnsafe, "Unsafe", 3, StatusCode::kUnsafe},
    {WireCode::kUnimplemented, "Unimplemented", 3, StatusCode::kUnimplemented},
    {WireCode::kInternal, "Internal", 1, StatusCode::kInternal},
    {WireCode::kProtocol, "Protocol", 7, StatusCode::kInvalidArgument},
};

inline constexpr const WireCodeRow& WireCodeInfo(WireCode code) {
  return kWireCodeTable[static_cast<size_t>(code)];
}
inline constexpr const char* WireCodeName(WireCode code) {
  return WireCodeInfo(code).name;
}
inline constexpr int ExitCodeFor(WireCode code) {
  return WireCodeInfo(code).exit_code;
}
/// The Status a client reconstructs for a received code (kOk/kTruncated
/// both mean "status OK": truncation is a successful outcome).
inline Status StatusFromWire(WireCode code, std::string msg) {
  return Status::FromCode(WireCodeInfo(code).status, std::move(msg));
}
/// Inverse of WireCodeName (the client side of the wire). Linear scan over
/// the one table; response parsing is never a hot path.
inline std::optional<WireCode> WireCodeFromName(std::string_view name) {
  for (const WireCodeRow& row : kWireCodeTable) {
    if (name == row.name) return row.wire;
  }
  return std::nullopt;
}

/// Maps a plain Status onto the wire — used for request-level failures that
/// never produced an answer (parse errors, APPLY rejections, …).
inline constexpr WireCode ToWireCode(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return WireCode::kOk;
    case StatusCode::kInvalidArgument: return WireCode::kInvalidArgument;
    case StatusCode::kNotFound: return WireCode::kNotFound;
    case StatusCode::kFailedPrecondition: return WireCode::kFailedPrecondition;
    case StatusCode::kResourceExhausted: return WireCode::kResourceExhausted;
    case StatusCode::kDeadlineExceeded: return WireCode::kDeadlineExceeded;
    case StatusCode::kCancelled: return WireCode::kCancelled;
    case StatusCode::kUnsafe: return WireCode::kUnsafe;
    case StatusCode::kUnimplemented: return WireCode::kUnimplemented;
    case StatusCode::kInternal: return WireCode::kInternal;
  }
  return WireCode::kInternal;
}

/// Maps a request outcome (QueryAnswer::outcome + its status) onto the
/// wire. The outcome wins where it refines the status; kError defers to
/// the status code. This is THE funnel every reporter uses — magicdb's
/// batch exit statuses, the REPL, the server, the client — replacing the
/// per-surface hand mapping that used to exist.
inline constexpr WireCode ToWireCode(AnswerStatus outcome, StatusCode code) {
  switch (outcome) {
    case AnswerStatus::kOk: return WireCode::kOk;
    case AnswerStatus::kTruncated: return WireCode::kTruncated;
    case AnswerStatus::kDeadlineExceeded: return WireCode::kDeadlineExceeded;
    case AnswerStatus::kCancelled: return WireCode::kCancelled;
    case AnswerStatus::kOverloaded: return WireCode::kOverloaded;
    case AnswerStatus::kError:
      // A kError outcome with an OK status would be a bug; surface it as
      // internal rather than success.
      return code == StatusCode::kOk ? WireCode::kInternal : ToWireCode(code);
  }
  return WireCode::kInternal;
}

/// Holds either a value of type T or an error Status.
template <typename T>
class Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design, like
  // absl::StatusOr.
  Result(T value) : value_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {
    MAGIC_CHECK_MSG(!status_.ok(), "Result constructed from OK status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    MAGIC_CHECK_MSG(ok(), status_.ToString());
    return *value_;
  }
  T& value() & {
    MAGIC_CHECK_MSG(ok(), status_.ToString());
    return *value_;
  }
  T&& value() && {
    MAGIC_CHECK_MSG(ok(), status_.ToString());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

/// Propagates an error Status from a fallible expression.
#define MAGIC_RETURN_IF_ERROR(expr)              \
  do {                                           \
    ::magic::Status _st = (expr);                \
    if (!_st.ok()) return _st;                   \
  } while (0)

}  // namespace magic

#endif  // MAGIC_UTIL_STATUS_H_
