#ifndef MAGIC_UTIL_STATUS_H_
#define MAGIC_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "util/check.h"

namespace magic {

/// Error categories used across the library. Mirrors the RocksDB/Arrow
/// convention of a lightweight status object instead of exceptions.
enum class StatusCode {
  kOk,
  kInvalidArgument,    // malformed input (parse errors, bad sips, bad arity)
  kNotFound,           // missing predicate/relation
  kFailedPrecondition, // operation not valid in current state
  kResourceExhausted,  // evaluation hit a fact/iteration budget
  kDeadlineExceeded,   // a per-request deadline expired mid-evaluation
  kCancelled,          // a per-request cancellation token was set
  kUnsafe,             // static analysis proved or failed to prove safety
  kUnimplemented,
  kInternal,
};

/// A success-or-error result for fallible operations.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Unsafe(std::string msg) {
    return Status(StatusCode::kUnsafe, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return CodeName(code_) + ": " + message_;
  }

  static std::string CodeName(StatusCode code) {
    switch (code) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "InvalidArgument";
      case StatusCode::kNotFound: return "NotFound";
      case StatusCode::kFailedPrecondition: return "FailedPrecondition";
      case StatusCode::kResourceExhausted: return "ResourceExhausted";
      case StatusCode::kDeadlineExceeded: return "DeadlineExceeded";
      case StatusCode::kCancelled: return "Cancelled";
      case StatusCode::kUnsafe: return "Unsafe";
      case StatusCode::kUnimplemented: return "Unimplemented";
      case StatusCode::kInternal: return "Internal";
    }
    return "Unknown";
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Holds either a value of type T or an error Status.
template <typename T>
class Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design, like
  // absl::StatusOr.
  Result(T value) : value_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {
    MAGIC_CHECK_MSG(!status_.ok(), "Result constructed from OK status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    MAGIC_CHECK_MSG(ok(), status_.ToString());
    return *value_;
  }
  T& value() & {
    MAGIC_CHECK_MSG(ok(), status_.ToString());
    return *value_;
  }
  T&& value() && {
    MAGIC_CHECK_MSG(ok(), status_.ToString());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

/// Propagates an error Status from a fallible expression.
#define MAGIC_RETURN_IF_ERROR(expr)              \
  do {                                           \
    ::magic::Status _st = (expr);                \
    if (!_st.ok()) return _st;                   \
  } while (0)

}  // namespace magic

#endif  // MAGIC_UTIL_STATUS_H_
