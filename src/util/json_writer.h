#ifndef MAGIC_UTIL_JSON_WRITER_H_
#define MAGIC_UTIL_JSON_WRITER_H_

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace magic {

/// Escapes `text` for use inside a JSON string literal (quotes not
/// included). Handles the two mandatory escapes plus control characters;
/// everything else passes through byte-for-byte (the protocol is UTF-8
/// end to end).
inline std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Minimal append-only JSON builder: automatic comma insertion, proper
/// string escaping, no intermediate tree. This is the one serializer
/// behind Stats::JsonFragment / Stats::Json and the bench output — the
/// hand-rolled printf splicing it replaced produced invalid JSON the
/// moment a form name contained a quote.
///
/// Usage is push-down: Begin/End pairs must nest correctly and every
/// object member starts with Key(). The writer does not validate nesting
/// (it is an internal tool, misuse is a bug caught by the JSON parsers in
/// CI), it only tracks where commas go.
///
/// Fragment mode: a writer used without an outer BeginObject emits
/// `"k":v,"k2":v2` pairs — the historical JsonFragment contract, spliced
/// into a caller-provided object.
class JsonWriter {
 public:
  JsonWriter() { stack_.push_back(false); }

  std::string& str() { return out_; }
  const std::string& str() const { return out_; }

  JsonWriter& BeginObject() {
    Comma();
    out_ += '{';
    stack_.push_back(false);
    return *this;
  }
  JsonWriter& EndObject() {
    stack_.pop_back();
    out_ += '}';
    return *this;
  }
  JsonWriter& BeginArray() {
    Comma();
    out_ += '[';
    stack_.push_back(false);
    return *this;
  }
  JsonWriter& EndArray() {
    stack_.pop_back();
    out_ += ']';
    return *this;
  }

  /// Object member key; the next value call is its value (no comma
  /// between key and value).
  JsonWriter& Key(std::string_view key) {
    Comma();
    out_ += '"';
    out_ += JsonEscape(key);
    out_ += "\":";
    pending_value_ = true;
    return *this;
  }

  JsonWriter& String(std::string_view value) {
    Comma();
    out_ += '"';
    out_ += JsonEscape(value);
    out_ += '"';
    return *this;
  }
  JsonWriter& Uint(uint64_t value) {
    Comma();
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
    out_ += buf;
    return *this;
  }
  JsonWriter& Int(int64_t value) {
    Comma();
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRId64, value);
    out_ += buf;
    return *this;
  }
  /// %.6g keeps latencies readable without drowning the line in digits.
  JsonWriter& Double(double value) {
    Comma();
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    out_ += buf;
    return *this;
  }
  JsonWriter& Bool(bool value) {
    Comma();
    out_ += value ? "true" : "false";
    return *this;
  }

 private:
  void Comma() {
    if (pending_value_) {
      pending_value_ = false;  // value following its Key: no comma
      return;
    }
    if (stack_.back()) out_ += ',';
    stack_.back() = true;
  }

  std::string out_;
  std::vector<bool> stack_;  // per nesting level: "already has an element"
  bool pending_value_ = false;
};

}  // namespace magic

#endif  // MAGIC_UTIL_JSON_WRITER_H_
