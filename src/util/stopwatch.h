#ifndef MAGIC_UTIL_STOPWATCH_H_
#define MAGIC_UTIL_STOPWATCH_H_

#include <chrono>

namespace magic {

/// Wall-clock stopwatch used by benchmarks and evaluation statistics.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace magic

#endif  // MAGIC_UTIL_STOPWATCH_H_
