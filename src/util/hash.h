#ifndef MAGIC_UTIL_HASH_H_
#define MAGIC_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>

namespace magic {

/// Mixes `value` into `seed` (boost::hash_combine-style, 64-bit constants).
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  seed ^= value + 0x9e3779b97f4a7c15ULL + (seed << 12) + (seed >> 4);
  return seed;
}

/// Hashes a contiguous range of integral ids.
template <typename It>
uint64_t HashRange(It begin, It end, uint64_t seed = 0xcbf29ce484222325ULL) {
  for (It it = begin; it != end; ++it) {
    seed = HashCombine(seed, static_cast<uint64_t>(*it));
  }
  return seed;
}

}  // namespace magic

#endif  // MAGIC_UTIL_HASH_H_
