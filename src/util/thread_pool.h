#ifndef MAGIC_UTIL_THREAD_POOL_H_
#define MAGIC_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <utility>
#include <vector>

#include "util/annotated_mutex.h"

namespace magic {

/// A fixed-size thread pool with one shared FIFO queue — deliberately the
/// simplest thing that serves concurrent queries. Query evaluations are
/// coarse-grained (milliseconds), so a single lock around the queue is
/// nowhere near contended enough to justify work stealing.
///
/// Tasks must not throw. Submitting from multiple threads is safe; the
/// destructor drains the queue (runs every task already submitted) before
/// joining the workers.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads) {
    if (num_threads == 0) num_threads = 1;
    workers_.reserve(num_threads);
    for (size_t i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() EXCLUDES(mutex_) {
    {
      MutexLock lock(mutex_);
      stopping_ = true;
    }
    wake_.notify_all();
    for (std::thread& worker : workers_) worker.join();
  }

  size_t size() const { return workers_.size(); }

  void Submit(std::function<void()> task) EXCLUDES(mutex_) {
    {
      MutexLock lock(mutex_);
      queue_.push_back(std::move(task));
    }
    wake_.notify_one();
  }

 private:
  void WorkerLoop() EXCLUDES(mutex_) {
    for (;;) {
      std::function<void()> task;
      {
        MutexLock lock(mutex_);
        // An explicit wait loop (not the predicate overload): the analysis
        // treats a predicate lambda as a separate, unannotated function, so
        // the guarded reads live in this annotated scope instead. The wait
        // releases/reacquires through the guard's lock()/unlock(), which
        // keeps the rank checker's held-stack accurate across the block.
        while (!stopping_ && queue_.empty()) wake_.wait(lock);
        if (queue_.empty()) return;  // stopping_ and drained
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
    }
  }

  Mutex mutex_{lock_rank::kPool};
  std::condition_variable_any wake_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mutex_);
  bool stopping_ GUARDED_BY(mutex_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace magic

#endif  // MAGIC_UTIL_THREAD_POOL_H_
