#ifndef MAGIC_UTIL_ANNOTATED_MUTEX_H_
#define MAGIC_UTIL_ANNOTATED_MUTEX_H_

#include <mutex>
#include <shared_mutex>

/// The machine-checked half of this codebase's concurrency contract.
///
/// Two independent checkers live here, covering each other's blind spots:
///
///   1. Clang Thread Safety Analysis (static). The CAPABILITY-annotated
///      Mutex/SharedMutex wrappers plus the GUARDED_BY/REQUIRES/EXCLUDES
///      macro set below let the compiler prove, per function, that every
///      guarded field is touched only under its mutex and that helpers are
///      called with exactly the locks their contract names. CI builds with
///      `-Werror=thread-safety` on Clang, so a violation is a build
///      failure, not a review comment. On GCC (which has no such analysis)
///      every macro expands to nothing and the wrappers are plain inline
///      forwarders — zero overhead, zero behavior change.
///
///   2. A runtime lock-rank checker (dynamic, Debug builds only). Static
///      analysis is per-function: it cannot see that thread A acquires
///      serve->form while thread B acquires form->serve three call frames
///      apart. The rank checker can. Every annotated mutex carries a small
///      integer rank (see lock_rank below); a thread-local stack records
///      what the current thread holds, and acquiring a mutex whose rank is
///      not strictly greater than every held rank aborts with a
///      "lock-rank violation" report — BEFORE blocking, so the bug
///      surfaces as a crash with both lock names in hand instead of a
///      deadlock in production. Compiled out entirely under NDEBUG
///      (Release/RelWithDebInfo), so the serving hot path pays nothing.
///
/// The rank order encodes the ROADMAP invariant directly. Readers take no
/// service-wide lock at all (they pin an MVCC database version with one
/// atomic load); what remains ranked is
///
///   sessions (60) -> inflight (200) -> form (300)
///     -> commit (340) -> version-resync (360) || data plane (>= 400)
///
/// with two refinements the prose contract always had but nothing
/// enforced:
///
///   * "The write path takes no service-tier lock" — the commit tier
///     (kCommit, kVersionResync) ranks ABOVE inflight and form, so a
///     writer that tried to touch dispatch state while holding its commit
///     ticket mutex would abort by rank descent. SharedMutex additionally
///     supports an exclusive-nest floor (acquisitions below the floor
///     abort while the mutex is held exclusively) for seams that need a
///     hard tier wall; the feature is rank-table-independent and covered
///     by a synthetic death test.
///   * "Overlay tables lock strictly overlay -> base" — overlay
///     symbol/predicate tables take a rank a step BELOW their base's, so
///     the reverse order (base held, overlay wanted) aborts.
namespace magic {

namespace lock_rank {

/// Ranks ascend along the sanctioned acquisition order; a thread may only
/// acquire strictly upward. Gaps are deliberate room for future tiers.
inline constexpr int kServerSessions = 60;  // net::MagicServer session map
inline constexpr int kInflight = 200;       // QueryService::inflight_mutex_
inline constexpr int kForm = 300;           // QueryService::form_mutex_
/// The MVCC write tier: the FIFO commit ticket lock and the version
/// chain's resync lock. Both rank above the dispatch tier (a writer never
/// touches inflight/form state) and below the data plane (a committing
/// writer clones relations and rebuilds their indices, so it takes
/// kRelationIndex and symbol-table locks underneath).
inline constexpr int kCommit = 340;         // QueryService::commit_mutex_
inline constexpr int kVersionResync = 360;  // VersionChain::resync_mutex_
/// SharedMutex exclusive-nest floor boundary: a seam constructed with this
/// floor confines its exclusive holder to the data plane (>= 400). No
/// production mutex currently uses it — the MVCC write path has no
/// stop-the-world seam left — but the checker feature stays, tested
/// synthetically, for the next tier wall that needs it.
inline constexpr int kExclusiveNestFloor = 400;
/// Root symbol/predicate tables. An overlay's tables sit kOverlayStep
/// below their base's rank, so the legal order is overlay -> base and the
/// reverse aborts. Overlays nest at most a few deep before compilation
/// would collide with kExclusiveNestFloor — far beyond anything the plan
/// pipeline builds.
inline constexpr int kSymbolRoot = 450;
inline constexpr int kOverlayStep = 10;
inline constexpr int kRelationIndex = 500;  // Relation::index_mutex_
inline constexpr int kTermArena = 520;      // TermArena::mutex_
inline constexpr int kCacheShard = 560;     // AnswerCache::Shard::mutex
inline constexpr int kPool = 600;           // ThreadPool::mutex_
inline constexpr int kCursor = 640;         // AnswerCursor::State::mutex
/// Observability locks are leaves above the whole data plane: metric
/// registration and slow-query recording may happen from any request-path
/// or write-seam frame (both ranks sit above kExclusiveNestFloor, so they
/// stay legal under the exclusively held serve seam), and nothing ranked
/// is ever acquired under them.
inline constexpr int kMetrics = 860;        // obs::MetricsRegistry::mutex_
inline constexpr int kSlowLog = 870;        // obs::SlowQueryLog::mutex_
/// Default for mutexes outside the documented order: they may be taken
/// under anything but must be leaves (nothing ranked is taken under them).
inline constexpr int kLeaf = 900;

}  // namespace lock_rank

}  // namespace magic

// --- Clang Thread Safety Analysis attribute macros ---------------------------
//
// The standard macro set from the Clang documentation
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html), expanding to
// nothing on compilers without the analysis (GCC). Unprefixed on purpose:
// these are the names the contract (and every reader of absl/LLVM-style
// code) already knows.

#if defined(__clang__)
#define MAGIC_TSA_ATTRIBUTE__(x) __attribute__((x))
#else
#define MAGIC_TSA_ATTRIBUTE__(x)  // no-op: GCC has no thread safety analysis
#endif

#ifndef CAPABILITY
#define CAPABILITY(x) MAGIC_TSA_ATTRIBUTE__(capability(x))
#endif
#ifndef SCOPED_CAPABILITY
#define SCOPED_CAPABILITY MAGIC_TSA_ATTRIBUTE__(scoped_lockable)
#endif
#ifndef GUARDED_BY
#define GUARDED_BY(x) MAGIC_TSA_ATTRIBUTE__(guarded_by(x))
#endif
#ifndef PT_GUARDED_BY
#define PT_GUARDED_BY(x) MAGIC_TSA_ATTRIBUTE__(pt_guarded_by(x))
#endif
#ifndef REQUIRES
#define REQUIRES(...) \
  MAGIC_TSA_ATTRIBUTE__(requires_capability(__VA_ARGS__))
#endif
#ifndef REQUIRES_SHARED
#define REQUIRES_SHARED(...) \
  MAGIC_TSA_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))
#endif
#ifndef ACQUIRE
#define ACQUIRE(...) \
  MAGIC_TSA_ATTRIBUTE__(acquire_capability(__VA_ARGS__))
#endif
#ifndef ACQUIRE_SHARED
#define ACQUIRE_SHARED(...) \
  MAGIC_TSA_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))
#endif
#ifndef RELEASE
#define RELEASE(...) \
  MAGIC_TSA_ATTRIBUTE__(release_capability(__VA_ARGS__))
#endif
#ifndef RELEASE_SHARED
#define RELEASE_SHARED(...) \
  MAGIC_TSA_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))
#endif
#ifndef RELEASE_GENERIC
#define RELEASE_GENERIC(...) \
  MAGIC_TSA_ATTRIBUTE__(release_generic_capability(__VA_ARGS__))
#endif
#ifndef TRY_ACQUIRE
#define TRY_ACQUIRE(...) \
  MAGIC_TSA_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))
#endif
#ifndef TRY_ACQUIRE_SHARED
#define TRY_ACQUIRE_SHARED(...) \
  MAGIC_TSA_ATTRIBUTE__(try_acquire_shared_capability(__VA_ARGS__))
#endif
#ifndef EXCLUDES
#define EXCLUDES(...) MAGIC_TSA_ATTRIBUTE__(locks_excluded(__VA_ARGS__))
#endif
#ifndef ASSERT_CAPABILITY
#define ASSERT_CAPABILITY(x) MAGIC_TSA_ATTRIBUTE__(assert_capability(x))
#endif
#ifndef RETURN_CAPABILITY
#define RETURN_CAPABILITY(x) MAGIC_TSA_ATTRIBUTE__(lock_returned(x))
#endif
#ifndef NO_THREAD_SAFETY_ANALYSIS
#define NO_THREAD_SAFETY_ANALYSIS \
  MAGIC_TSA_ATTRIBUTE__(no_thread_safety_analysis)
#endif

// --- Runtime lock-rank checker (Debug builds) --------------------------------

#if !defined(NDEBUG) && !defined(MAGIC_NO_LOCK_RANK_CHECKS)
#define MAGIC_LOCK_RANK_CHECKS 1
#endif

#ifdef MAGIC_LOCK_RANK_CHECKS
#include <cstdio>
#include <cstdlib>
#endif

namespace magic {
namespace lock_rank_detail {

#ifdef MAGIC_LOCK_RANK_CHECKS

/// Per-thread record of held annotated locks. A fixed array: the deepest
/// sanctioned chain is 6 locks, and a thread holding 32 ranked locks is a
/// bug all by itself.
struct HeldLock {
  const void* mutex = nullptr;
  int rank = 0;
  bool exclusive = false;
  int exclusive_nest_floor = 0;  // 0 = no floor
};

struct ThreadLockStack {
  static constexpr int kMaxDepth = 32;
  HeldLock held[kMaxDepth];
  int depth = 0;
};

inline ThreadLockStack& Stack() {
  thread_local ThreadLockStack stack;
  return stack;
}

[[noreturn]] inline void Fail(const char* what, int new_rank, int held_rank) {
  std::fprintf(stderr,
               "lock-rank violation: %s (acquiring rank %d while holding "
               "rank %d)\n",
               what, new_rank, held_rank);
  std::abort();
}

/// Order check + record. Runs BEFORE the underlying lock call blocks, so a
/// violating acquisition aborts with a report instead of deadlocking.
inline void OnAcquire(const void* mutex, int rank, bool exclusive,
                      int exclusive_nest_floor) {
  ThreadLockStack& stack = Stack();
  for (int i = 0; i < stack.depth; ++i) {
    const HeldLock& held = stack.held[i];
    if (held.mutex == mutex) {
      Fail("recursive acquisition of a mutex this thread already holds",
           rank, held.rank);
    }
    if (rank <= held.rank) {
      Fail("acquisition out of rank order", rank, held.rank);
    }
    if (held.exclusive && held.exclusive_nest_floor != 0 &&
        rank < held.exclusive_nest_floor) {
      Fail("below-floor acquisition under an exclusively held seam "
           "(exclusive holder -> data plane only)",
           rank, held.rank);
    }
  }
  if (stack.depth >= ThreadLockStack::kMaxDepth) {
    Fail("lock stack overflow", rank, -1);
  }
  stack.held[stack.depth++] =
      HeldLock{mutex, rank, exclusive, exclusive_nest_floor};
}

/// Releases need not be LIFO (guards of different scopes may interleave),
/// so the entry is found by pointer, searching newest-first.
inline void OnRelease(const void* mutex) {
  ThreadLockStack& stack = Stack();
  for (int i = stack.depth - 1; i >= 0; --i) {
    if (stack.held[i].mutex != mutex) continue;
    for (int j = i; j + 1 < stack.depth; ++j) {
      stack.held[j] = stack.held[j + 1];
    }
    --stack.depth;
    return;
  }
  std::fprintf(stderr,
               "lock-rank violation: releasing a mutex this thread does "
               "not hold\n");
  std::abort();
}

#else  // !MAGIC_LOCK_RANK_CHECKS

inline void OnAcquire(const void*, int, bool, int) {}
inline void OnRelease(const void*) {}

#endif  // MAGIC_LOCK_RANK_CHECKS

}  // namespace lock_rank_detail

// --- Annotated mutex types ---------------------------------------------------

/// std::mutex with a Thread Safety capability and a lock rank. The lowercase
/// lock/unlock/try_lock aliases satisfy the standard Lockable concept so the
/// type composes with std::condition_variable_any.
class CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(int rank = lock_rank::kLeaf) : rank_(rank) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() {
    lock_rank_detail::OnAcquire(this, rank_, /*exclusive=*/true, 0);
    mu_.lock();
  }
  bool TryLock() TRY_ACQUIRE(true) {
    // Try-locks cannot deadlock, but this codebase's contract holds them
    // to the same order — an out-of-order try is a latent design bug even
    // when it happens to fail benignly, so the check runs here too.
    lock_rank_detail::OnAcquire(this, rank_, /*exclusive=*/true, 0);
    if (mu_.try_lock()) return true;
    lock_rank_detail::OnRelease(this);
    return false;
  }
  void Unlock() RELEASE() {
    mu_.unlock();
    lock_rank_detail::OnRelease(this);
  }

  void lock() ACQUIRE() { Lock(); }
  void unlock() RELEASE() { Unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return TryLock(); }

  int rank() const { return rank_; }

 private:
  std::mutex mu_;
  const int rank_;
};

/// std::shared_mutex with a Thread Safety capability, a lock rank, and an
/// optional exclusive-nest floor: while held exclusively, this thread may
/// only acquire locks ranked at or above the floor. This is how a seam's
/// "exclusive holder touches nothing in the service tier" rule becomes a
/// runtime abort instead of a comment.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  explicit SharedMutex(int rank = lock_rank::kLeaf,
                       int exclusive_nest_floor = 0)
      : rank_(rank), exclusive_nest_floor_(exclusive_nest_floor) {}
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() {
    lock_rank_detail::OnAcquire(this, rank_, /*exclusive=*/true,
                                exclusive_nest_floor_);
    mu_.lock();
  }
  void Unlock() RELEASE() {
    mu_.unlock();
    lock_rank_detail::OnRelease(this);
  }
  void LockShared() ACQUIRE_SHARED() {
    lock_rank_detail::OnAcquire(this, rank_, /*exclusive=*/false, 0);
    mu_.lock_shared();
  }
  void UnlockShared() RELEASE_SHARED() {
    mu_.unlock_shared();
    lock_rank_detail::OnRelease(this);
  }

  int rank() const { return rank_; }

 private:
  std::shared_mutex mu_;
  const int rank_;
  const int exclusive_nest_floor_;
};

// --- Scoped guards -----------------------------------------------------------

/// RAII exclusive lock on a Mutex. The lowercase lock/unlock pair makes the
/// guard itself a Lockable, which is what std::condition_variable_any::wait
/// needs — a wait releases and reacquires through the guard, so the rank
/// checker sees both transitions.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE_GENERIC() { mu_.Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void lock() ACQUIRE() { mu_.Lock(); }
  void unlock() RELEASE() { mu_.Unlock(); }

 private:
  Mutex& mu_;
};

/// RAII shared (reader) lock on a SharedMutex.
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderMutexLock() RELEASE_GENERIC() { mu_.UnlockShared(); }
  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII exclusive (writer) lock on a SharedMutex.
class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterMutexLock() RELEASE_GENERIC() { mu_.Unlock(); }
  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

}  // namespace magic

#endif  // MAGIC_UTIL_ANNOTATED_MUTEX_H_
