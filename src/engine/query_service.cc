#include "engine/query_service.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <thread>
#include <utility>

#include "util/check.h"
#include "util/hash.h"
#include "util/stopwatch.h"

namespace magic {

// --- AnswerCursor ------------------------------------------------------------

AnswerCursor::~AnswerCursor() {
  // Dropping an unfinished cursor cancels its evaluation; the worker holds
  // its own reference to the state, so nothing dangles.
  if (state_ != nullptr) Cancel();
}

AnswerCursor& AnswerCursor::operator=(AnswerCursor&& other) noexcept {
  if (this != &other) {
    if (state_ != nullptr) Cancel();
    state_ = std::move(other.state_);
  }
  return *this;
}

bool AnswerCursor::Next(size_t max_rows, std::vector<std::vector<TermId>>* out) {
  out->clear();
  if (state_ == nullptr) return false;
  if (max_rows == 0) max_rows = 1;
  MutexLock lock(state_->mutex);
  // Explicit wait loops throughout (not the predicate overload): the
  // analysis treats a predicate lambda as a separate, unannotated
  // function, so the guarded reads belong in this annotated scope.
  while (!state_->done && state_->buffer.empty()) state_->ready.wait(lock);
  while (!state_->buffer.empty() && out->size() < max_rows) {
    out->push_back(std::move(state_->buffer.front()));
    state_->buffer.pop_front();
  }
  return !out->empty();
}

const QueryAnswer& AnswerCursor::Finish() {
  MAGIC_CHECK_MSG(state_ != nullptr, "Finish() on an empty AnswerCursor");
  MutexLock lock(state_->mutex);
  while (!state_->done) state_->ready.wait(lock);
  // Safe to hand out past the unlock: done == true means the worker has
  // completed and will never touch `final` again.
  return state_->final;
}

void AnswerCursor::Cancel() {
  if (state_ != nullptr && state_->cancel != nullptr) {
    state_->cancel->store(true, std::memory_order_relaxed);
  }
}

// --- QueryService ------------------------------------------------------------

const Adornment& QueryService::FormHandle::adornment() const {
  return cached_->form->adornment();
}

size_t QueryService::FormHandle::bound_arity() const {
  return cached_->form->bound_arity();
}

size_t QueryService::FormKeyHash::operator()(const FormKey& key) const {
  uint64_t h = HashCombine(key.pred, key.bound_mask);
  h = HashCombine(h, static_cast<uint64_t>(key.strategy));
  return HashCombine(h, std::hash<std::string>{}(key.sip));
}

size_t QueryService::InflightKeyHash::operator()(
    const InflightKey& key) const {
  uint64_t h = reinterpret_cast<uintptr_t>(key.form);
  for (TermId term : key.seed) h = HashCombine(h, term);
  return h;
}

namespace {

/// The bound-position bitmask of a query instance: bit i set iff argument i
/// is ground. Two instances with equal masks share a query form.
uint64_t BoundMask(const Universe& u, const Query& query) {
  uint64_t mask = 0;
  for (size_t i = 0; i < query.goal.args.size(); ++i) {
    if (u.terms().IsGround(query.goal.args[i])) mask |= uint64_t{1} << i;
  }
  return mask;
}

/// The AnswerCache tag of a compiled form: its stable address. Forms live
/// as long as the service (and so does the cache), so tags never alias.
uintptr_t CacheTag(const PreparedQueryForm* form) {
  return reinterpret_cast<uintptr_t>(form);
}

/// Subsumption filter: selects the tuples of a fully-free form's answer
/// set (columns = all argument positions, sorted lexicographically) that
/// match `bound_values` at `bound_positions`, projected onto the free
/// positions. The selection of a sorted, deduplicated set is itself
/// sorted and deduplicated: rows agree on every bound column, so the
/// first differing column is a kept one — order and distinctness survive
/// the projection.
AnswerCache::Tuples FilterSubsumed(const AnswerCache::Tuples& all,
                                   const std::vector<int>& bound_positions,
                                   const std::vector<TermId>& bound_values) {
  AnswerCache::Tuples out;
  for (const std::vector<TermId>& tuple : all) {
    bool match = true;
    for (size_t k = 0; k < bound_positions.size(); ++k) {
      if (tuple[bound_positions[k]] != bound_values[k]) {
        match = false;
        break;
      }
    }
    if (!match) continue;
    std::vector<TermId> projected;
    projected.reserve(tuple.size() - bound_positions.size());
    size_t k = 0;
    for (size_t i = 0; i < tuple.size(); ++i) {
      if (k < bound_positions.size() &&
          static_cast<int>(i) == bound_positions[k]) {
        ++k;
        continue;
      }
      projected.push_back(tuple[i]);
    }
    out.push_back(std::move(projected));
  }
  return out;
}

}  // namespace

QueryService::QueryService(const Program& program, const Database& db,
                           QueryServiceOptions options)
    : program_(program),
      db_(db),
      options_(std::move(options)),
      cache_(AnswerCacheOptions{.max_bytes = options_.cache_bytes}),
      pool_(options_.num_threads != 0 ? options_.num_threads
                                      : std::thread::hardware_concurrency()) {}

QueryService::QueryService(const Program& program, Database& db,
                           QueryServiceOptions options)
    : QueryService(program, static_cast<const Database&>(db),
                   std::move(options)) {
  mutable_db_ = &db;
}

QueryService::~QueryService() = default;

QueryService::FormKey QueryService::MakeKey(const QueryRequest& request) const {
  FormKey key;
  key.pred = request.query.goal.pred;
  key.bound_mask = BoundMask(*program_.universe(), request.query);
  key.strategy = request.strategy.value_or(options_.engine.strategy);
  // naive/semi-naive plans take no sip; normalizing the key keeps one plan
  // per binding pattern instead of one per (irrelevant) sip name.
  const bool sipless = key.strategy == Strategy::kNaiveBottomUp ||
                       key.strategy == Strategy::kSemiNaiveBottomUp;
  key.sip = sipless ? std::string() : request.sip.value_or(options_.engine.sip);
  return key;
}

QueryService::CachedForm* QueryService::GetOrCompile(
    const QueryRequest& request, const FormKey& key) {
  MutexLock lock(form_mutex_);
  auto it = forms_.find(key);
  if (it != forms_.end()) {
    ++form_cache_hits_;
    return &it->second;
  }
  EngineOptions engine_options = options_.engine;
  engine_options.strategy = key.strategy;
  if (!key.sip.empty()) engine_options.sip = key.sip;
  // Compilation writes only into the plan's Universe overlay (the shared
  // base is frozen underneath it), so in-flight evaluations keep running;
  // only concurrent compiles serialize here.
  Result<PreparedQueryForm> form =
      PreparedQueryForm::Prepare(program_, request.query, engine_options);
  CachedForm& cached = forms_[key];
  cached.key = key;
  const Universe& u = *program_.universe();
  cached.pred_name = u.symbols().Name(u.predicates().info(key.pred).name);
  cached.strategy = StrategyName(key.strategy);
  cached.sip = key.sip;
  if (!form.ok()) {
    cached.error = form.status();
    return &cached;
  }
  ++forms_compiled_;
  cached.form = std::make_unique<PreparedQueryForm>(std::move(*form));
  return &cached;
}

bool QueryService::Admit(bool enforce_admission) {
  size_t prev = pending_.fetch_add(1, std::memory_order_relaxed);
  if (enforce_admission && options_.max_pending != 0 &&
      prev >= options_.max_pending) {
    pending_.fetch_sub(1, std::memory_order_relaxed);
    overloaded_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

QueryAnswer QueryService::OverloadedAnswer() const {
  QueryAnswer answer;
  answer.status = Status::ResourceExhausted(
      "submission queue is full (max_pending=" +
      std::to_string(options_.max_pending) + ")");
  answer.outcome = AnswerStatus::kOverloaded;
  return answer;
}

QueryAnswer QueryService::DeadlineShedAnswer() const {
  QueryAnswer answer;
  answer.status = Status::DeadlineExceeded(
      "deadline expired while queued; evaluation never started");
  answer.outcome = AnswerStatus::kDeadlineExceeded;
  return answer;
}

bool QueryService::TryServeCached(CachedForm* cached,
                                  const std::vector<TermId>& bound_values,
                                  uint64_t epoch, const QueryLimits& limits,
                                  const AnswerSink& sink,
                                  const Completion& done) {
  // Instances with a malformed seed must flow to Answer() for its error
  // reporting; they can never have been cached (fills follow successful
  // evaluations only).
  if (bound_values.size() != cached->form->bound_arity()) return false;
  std::shared_ptr<const AnswerCache::Tuples> tuples =
      cache_.Get(CacheTag(cached->form.get()), bound_values, epoch);
  // Write-seam fence. Workers probe with an epoch read under the shared
  // serve lock (a writer holds it exclusive, so this re-check is
  // vacuously true for them), but the inline path is lock-free: a batch
  // could have applied entirely between the caller's epoch load and this
  // probe. Re-check before serving the hit — and before the subsumption
  // filter below spends O(answer set) producing a fill a racing write
  // already orphaned — and fall through to dispatch instead, whose
  // worker waits out the writer and re-probes at the new epoch. A write
  // landing after this check is fine: the request was in flight before
  // the write's quiescent point, so the answer linearizes before it.
  if (db_.epoch() != epoch) return false;
  bool subsumed = false;
  if (tuples == nullptr && options_.cache_subsumption &&
      !bound_values.empty()) {
    // Subsumption fast path: a complete fully-free answer set of the same
    // (pred, strategy, sip) serves any bound instance by filtering. The
    // filtered result is promoted to an exact entry so the next repeat of
    // this seed skips the filter too.
    if (CachedForm* free_form = FindFreeSibling(cached)) {
      if (auto all = cache_.Get(CacheTag(free_form->form.get()), {}, epoch)) {
        auto filtered = std::make_shared<AnswerCache::Tuples>(FilterSubsumed(
            *all, cached->form->bound_positions(), bound_values));
        cache_.Put(CacheTag(cached->form.get()), bound_values, epoch,
                   filtered);
        tuples = std::move(filtered);
        subsumed = true;
      }
    }
  }
  if (tuples == nullptr) return false;
  ServeHit(cached, std::move(tuples), limits, sink, done, subsumed);
  return true;
}

void QueryService::ServeHit(CachedForm* cached,
                            std::shared_ptr<const AnswerCache::Tuples> tuples,
                            const QueryLimits& limits, const AnswerSink& sink,
                            const Completion& done, bool subsumed) {
  QueryAnswer answer;
  answer.from_cache = true;
  answer.strategy_name = cached->strategy;
  const size_t total = tuples->size();
  size_t serve = total;
  // Mirror the evaluated path's outcome exactly: AnswerCollector marks
  // kTruncated the moment row_limit answers are reached, including when
  // the limit equals the answer count — cache temperature must not change
  // what a client observes.
  const bool limit_hit = limits.row_limit != 0 && total >= limits.row_limit;
  if (limit_hit) serve = static_cast<size_t>(limits.row_limit);
  bool sink_stopped = false;
  if (sink) {
    for (size_t i = 0; i < serve; ++i) {
      if (!sink((*tuples)[i])) {
        serve = i + 1;
        sink_stopped = true;
        break;
      }
    }
  } else {
    answer.tuples.assign(tuples->begin(),
                         tuples->begin() + static_cast<ptrdiff_t>(serve));
  }
  answer.outcome = (limit_hit || sink_stopped) ? AnswerStatus::kTruncated
                                               : AnswerStatus::kOk;

  FormCounters& counters = cached->counters;
  counters.queries.fetch_add(1, std::memory_order_relaxed);
  counters.rows.fetch_add(serve, std::memory_order_relaxed);
  if (answer.outcome == AnswerStatus::kTruncated) {
    counters.truncated.fetch_add(1, std::memory_order_relaxed);
  }
  // eval_micros deliberately untouched: no evaluation ran.
  queries_served_.fetch_add(1, std::memory_order_relaxed);
  answers_from_cache_.fetch_add(1, std::memory_order_relaxed);
  if (subsumed) answers_subsumed_.fetch_add(1, std::memory_order_relaxed);
  done(std::move(answer));
}

QueryService::CachedForm* QueryService::FindFreeSibling(CachedForm* cached) {
  if (CachedForm* memo = cached->free_sibling.load(std::memory_order_acquire)) {
    return memo;
  }
  FormKey key = cached->key;
  key.bound_mask = 0;
  CachedForm* found = nullptr;
  // try_lock, not lock: a compile in progress holds form_mutex_ for the
  // whole adorn+rewrite, and evaluating workers reach here on every
  // second-chance miss — skipping the subsumption fast path once is
  // cheaper than serializing the pool behind the compile. (Raw
  // TryLock/Unlock rather than a scoped guard: the analysis follows the
  // TRY_ACQUIRE branch precisely, where a maybe-owning guard defeats it.)
  if (!form_mutex_.TryLock()) return nullptr;
  auto it = forms_.find(key);
  // bound_mask == 0 is necessary but not sufficient: a repeated-variable
  // or non-ground-compound exemplar (anc(X,X), p(f(X),Y)) also has no
  // bound positions yet caches a *restricted* answer set that must never
  // subsume a bound instance.
  if (it != forms_.end() && it->second.form != nullptr &&
      it->second.form->fully_free()) {
    found = &it->second;
  }
  form_mutex_.Unlock();
  // Only positive results are memoized: the sibling may be Prepared later,
  // so a miss must keep re-checking. Forms are never erased, so a found
  // pointer stays valid for the service's lifetime.
  if (found != nullptr) {
    cached->free_sibling.store(found, std::memory_order_release);
  }
  return found;
}

void QueryService::ReleaseInflight(CachedForm* cached,
                                   const std::vector<TermId>& bound_values) {
  std::vector<std::function<void()>> waiters;
  {
    MutexLock lock(inflight_mutex_);
    auto it = inflight_.find(InflightKey{cached, bound_values});
    if (it != inflight_.end()) {
      waiters = std::move(it->second);
      inflight_.erase(it);
    }
  }
  // Re-dispatch outside the lock: a waiter either hits the cache the
  // leader just filled (served inline here) or becomes the next leader
  // (its evaluation goes back through the pool). A re-dispatched waiter
  // that finds a new leader in the table simply parks again — progress is
  // guaranteed because some request always holds the leader slot.
  for (std::function<void()>& waiter : waiters) waiter();
}

void QueryService::DispatchForm(
    CachedForm* cached, std::vector<TermId> bound_values, QueryLimits limits,
    AnswerSink sink, bool enforce_admission, Completion done,
    std::optional<std::chrono::steady_clock::time_point> admitted_at) {
  // The deadline anchor survives coalescing round-trips: a parked
  // duplicate re-enters here with its original `admitted_at`, so park
  // time counts against the deadline exactly like queue time does. The
  // check runs BEFORE the cache probe: an expired request is shed whether
  // the answer would have been warm or cold — cache temperature must not
  // turn a kDeadlineExceeded into a kOk.
  const auto admitted = admitted_at.value_or(std::chrono::steady_clock::now());
  if (limits.deadline.has_value() &&
      std::chrono::steady_clock::now() >= admitted + *limits.deadline) {
    deadline_shed_.fetch_add(1, std::memory_order_relaxed);
    queries_served_.fetch_add(1, std::memory_order_relaxed);
    done(DeadlineShedAnswer());
    return;
  }

  // The inline probe's epoch read is lock-free, so it can race an
  // ApplyWrites; TryServeCached re-checks the epoch before serving a hit
  // (see the fence there). The worker path below re-reads the epoch under
  // the shared serve lock instead, where it is pinned.
  const uint64_t epoch = cache_.enabled() ? db_.epoch() : 0;
  if (cache_.enabled() &&
      TryServeCached(cached, bound_values, epoch, limits, sink, done)) {
    return;  // warm hit: completed inline, nothing dispatched
  }

  if (!Admit(enforce_admission)) {
    done(OverloadedAnswer());
    return;
  }

  // Request coalescing: a miss identical to an in-flight (form, seed)
  // evaluation parks behind it instead of evaluating again; the leader's
  // fill serves it. Needs the cache (that is the handoff medium) and a
  // well-formed seed (malformed ones just flow to Answer()'s error path).
  // Parking happens *after* Admit: a parked duplicate is
  // submitted-but-not-finished work, so it holds its admission slot while
  // it waits (max_pending backpressure keeps seeing it) and gives the
  // slot back when its re-dispatch goes around again.
  const bool coalescing = options_.coalesce_requests && cache_.enabled() &&
                          bound_values.size() == cached->form->bound_arity();
  if (coalescing) {
    MutexLock lock(inflight_mutex_);
    auto [it, inserted] =
        inflight_.try_emplace(InflightKey{cached, bound_values});
    if (!inserted) {
      coalesced_.fetch_add(1, std::memory_order_relaxed);
      it->second.push_back(
          [this, cached, bound_values = std::move(bound_values),
           limits = std::move(limits), sink = std::move(sink),
           done = std::move(done), admitted]() mutable {
            // Return the parked slot, then go around again with the
            // original anchor. enforce_admission=false: this request was
            // already admitted once and must not be rejected late.
            pending_.fetch_sub(1, std::memory_order_relaxed);
            DispatchForm(cached, std::move(bound_values), std::move(limits),
                         std::move(sink), /*enforce_admission=*/false,
                         std::move(done), admitted);
          });
      return;
    }
    // Inserted: this request is the leader and must ReleaseInflight on
    // every completion path below.
  }
  pool_.Submit([this, cached, coalescing,
                bound_values = std::move(bound_values),
                limits = std::move(limits), sink = std::move(sink),
                done = std::move(done), admitted]() mutable {
    ReaderMutexLock serving(serve_mutex_);
    // Epoch re-read under the serve lock: an in-band writer holds it
    // exclusive, so from here to completion the value is pinned — the
    // second-chance probe and the fill below are keyed by the epoch of
    // the data this evaluation actually reads, even when the request was
    // dispatched before a write and evaluated after it.
    const uint64_t epoch = cache_.enabled() ? db_.epoch() : 0;
    // Deadline-aware dispatch: a request whose deadline expired while it
    // sat in the pool queue (or waited out a write drain) completes
    // immediately — the client is gone; entering the fixpoint would burn
    // a worker on an unwanted answer.
    if (limits.deadline.has_value() &&
        std::chrono::steady_clock::now() >= admitted + *limits.deadline) {
      deadline_shed_.fetch_add(1, std::memory_order_relaxed);
      queries_served_.fetch_add(1, std::memory_order_relaxed);
      if (coalescing) ReleaseInflight(cached, bound_values);
      pending_.fetch_sub(1, std::memory_order_relaxed);
      done(DeadlineShedAnswer());
      return;
    }
    // Second chance: a fill that completed while this request sat in the
    // pool queue serves it now — a concurrent batch of repeated seeds
    // evaluates once, not once per repeat. The full probe (including the
    // subsumption sibling lookup) is safe here: form_mutex_ nests inside
    // the serve lock now that compilation doesn't take serve_mutex_.
    if (cache_.enabled() &&
        TryServeCached(cached, bound_values, epoch, limits, sink, done)) {
      if (coalescing) ReleaseInflight(cached, bound_values);
      pending_.fetch_sub(1, std::memory_order_relaxed);
      return;
    }
    Stopwatch watch;
    // Streamed answers leave tuples empty (the AnswerSink contract), so
    // count emitted rows through a wrapper for the per-form stats — and,
    // when the cache wants a fill, keep a copy of what streamed by.
    size_t streamed = 0;
    const bool collect = cache_.enabled() && static_cast<bool>(sink);
    std::vector<std::vector<TermId>> collected;
    AnswerSink counted;
    if (sink) {
      counted = [&](const std::vector<TermId>& tuple) {
        ++streamed;
        if (collect) collected.push_back(tuple);
        return sink(tuple);
      };
    }
    QueryAnswer answer = cached->form->Answer(bound_values, db_, limits,
                                              counted, admitted);
    FormCounters& counters = cached->counters;
    counters.queries.fetch_add(1, std::memory_order_relaxed);
    counters.rows.fetch_add(answer.tuples.size() + streamed,
                            std::memory_order_relaxed);
    if (answer.outcome == AnswerStatus::kTruncated) {
      counters.truncated.fetch_add(1, std::memory_order_relaxed);
    }
    counters.eval_micros.fetch_add(
        static_cast<uint64_t>(watch.ElapsedSeconds() * 1e6),
        std::memory_order_relaxed);
    // Fill on bounded-clean completions only: kOk means the fixpoint ran
    // to completion under no truncating limit, so the tuple set is the
    // full answer. Sink-fed runs are re-sorted to the canonical order
    // (sinks see derivation order).
    if (cache_.enabled() && answer.status.ok() &&
        answer.outcome == AnswerStatus::kOk) {
      auto tuples = std::make_shared<AnswerCache::Tuples>();
      if (collect) {
        std::sort(collected.begin(), collected.end());
        *tuples = std::move(collected);
      } else {
        *tuples = answer.tuples;
      }
      cache_.Put(CacheTag(cached->form.get()), bound_values, epoch,
                 std::move(tuples));
    }
    // Unpark duplicates only after the fill above, so they hit it.
    if (coalescing) ReleaseInflight(cached, bound_values);
    queries_served_.fetch_add(1, std::memory_order_relaxed);
    pending_.fetch_sub(1, std::memory_order_relaxed);
    done(std::move(answer));
  });
}

void QueryService::Dispatch(const QueryRequest& request, AnswerSink sink,
                            bool enforce_admission, Completion done) {
  // Base-predicate queries are direct selections over the EDB; any strategy
  // serves them without compilation.
  if (!program_.IsHeadPredicate(request.query.goal.pred)) {
    if (!Admit(enforce_admission)) {
      done(OverloadedAnswer());
      return;
    }
    const auto admitted = std::chrono::steady_clock::now();
    pool_.Submit([this, query = request.query, limits = request.limits,
                  sink = std::move(sink), done = std::move(done), admitted] {
      ReaderMutexLock serving(serve_mutex_);
      if (limits.deadline.has_value() &&
          std::chrono::steady_clock::now() >= admitted + *limits.deadline) {
        deadline_shed_.fetch_add(1, std::memory_order_relaxed);
        queries_served_.fetch_add(1, std::memory_order_relaxed);
        pending_.fetch_sub(1, std::memory_order_relaxed);
        done(DeadlineShedAnswer());
        return;
      }
      QueryEngine engine(options_.engine);
      QueryAnswer answer = engine.Run(program_, query, db_, limits, sink,
                                      admitted);
      queries_served_.fetch_add(1, std::memory_order_relaxed);
      pending_.fetch_sub(1, std::memory_order_relaxed);
      done(std::move(answer));
    });
    return;
  }

  // Every derived-predicate strategy — rewriting or not — resolves to a
  // compiled plan; there is no exclusive-locked fallback path anymore.
  const FormKey key = MakeKey(request);
  CachedForm* cached = GetOrCompile(request, key);
  if (cached->form == nullptr) {
    QueryAnswer answer;
    answer.status = cached->error;
    answer.outcome = AnswerStatus::kError;
    answer.strategy_name = StrategyName(key.strategy);
    queries_served_.fetch_add(1, std::memory_order_relaxed);
    done(std::move(answer));
    return;
  }

  std::vector<TermId> bound_values;
  for (size_t i = 0; i < request.query.goal.args.size(); ++i) {
    if (key.bound_mask & (uint64_t{1} << i)) {
      bound_values.push_back(request.query.goal.args[i]);
    }
  }
  DispatchForm(cached, std::move(bound_values), request.limits,
               std::move(sink), enforce_admission, std::move(done));
}

Result<QueryService::FormHandle> QueryService::Prepare(
    const QueryRequest& request) {
  if (!program_.IsHeadPredicate(request.query.goal.pred)) {
    return Status::InvalidArgument(
        "base-predicate queries need no preparation; use Submit/Answer "
        "directly");
  }
  CachedForm* cached = GetOrCompile(request, MakeKey(request));
  if (cached->form == nullptr) return cached->error;
  FormHandle handle;
  handle.cached_ = cached;
  return handle;
}

std::future<QueryAnswer> QueryService::SubmitImpl(const QueryRequest& request,
                                                  bool enforce_admission) {
  auto promise = std::make_shared<std::promise<QueryAnswer>>();
  std::future<QueryAnswer> future = promise->get_future();
  Dispatch(request, {}, enforce_admission,
           [promise](QueryAnswer answer) {
             promise->set_value(std::move(answer));
           });
  return future;
}

std::future<QueryAnswer> QueryService::SubmitImpl(
    const FormHandle& handle, std::vector<TermId> bound_values,
    QueryLimits limits, bool enforce_admission) {
  auto promise = std::make_shared<std::promise<QueryAnswer>>();
  std::future<QueryAnswer> future = promise->get_future();
  if (!handle.valid()) {
    QueryAnswer answer;
    answer.status = Status::InvalidArgument("invalid form handle");
    answer.outcome = AnswerStatus::kError;
    promise->set_value(std::move(answer));
    return future;
  }
  DispatchForm(handle.cached_, std::move(bound_values), std::move(limits),
               {}, enforce_admission, [promise](QueryAnswer answer) {
                 promise->set_value(std::move(answer));
               });
  return future;
}

std::future<QueryAnswer> QueryService::Submit(const QueryRequest& request) {
  return SubmitImpl(request, /*enforce_admission=*/false);
}

std::future<QueryAnswer> QueryService::Submit(
    const FormHandle& handle, std::vector<TermId> bound_values,
    QueryLimits limits) {
  return SubmitImpl(handle, std::move(bound_values), std::move(limits),
                    /*enforce_admission=*/false);
}

std::future<QueryAnswer> QueryService::TrySubmit(const QueryRequest& request) {
  return SubmitImpl(request, /*enforce_admission=*/true);
}

std::future<QueryAnswer> QueryService::TrySubmit(
    const FormHandle& handle, std::vector<TermId> bound_values,
    QueryLimits limits) {
  return SubmitImpl(handle, std::move(bound_values), std::move(limits),
                    /*enforce_admission=*/true);
}

QueryAnswer QueryService::Answer(const QueryRequest& request) {
  return Submit(request).get();
}

QueryAnswer QueryService::Answer(const FormHandle& handle,
                                 std::vector<TermId> bound_values,
                                 QueryLimits limits) {
  return Submit(handle, std::move(bound_values), std::move(limits)).get();
}

std::shared_ptr<AnswerCursor::State> QueryService::MakeStreamState(
    QueryLimits* limits, AnswerSink* sink, Completion* done) {
  auto state = std::make_shared<AnswerCursor::State>();
  if (limits->cancel == nullptr) {
    limits->cancel = std::make_shared<std::atomic<bool>>(false);
  }
  state->cancel = limits->cancel;
  *sink = [state](const std::vector<TermId>& tuple) {
    {
      MutexLock lock(state->mutex);
      state->buffer.push_back(tuple);
    }
    state->ready.notify_all();
    return true;
  };
  *done = [state](QueryAnswer answer) {
    // Sink-fed answers arrive with empty tuples (the AnswerSink contract:
    // everything was streamed); the clear covers inline error paths that
    // never evaluated.
    answer.tuples.clear();
    {
      MutexLock lock(state->mutex);
      state->final = std::move(answer);
      state->done = true;
    }
    state->ready.notify_all();
  };
  return state;
}

AnswerCursor QueryService::Stream(const QueryRequest& request) {
  QueryRequest streamed = request;
  AnswerSink sink;
  Completion done;
  auto state = MakeStreamState(&streamed.limits, &sink, &done);
  Dispatch(streamed, std::move(sink), /*enforce_admission=*/false,
           std::move(done));
  return AnswerCursor(std::move(state));
}

AnswerCursor QueryService::Stream(const FormHandle& handle,
                                  std::vector<TermId> bound_values,
                                  QueryLimits limits) {
  AnswerSink sink;
  Completion done;
  auto state = MakeStreamState(&limits, &sink, &done);
  if (!handle.valid()) {
    QueryAnswer answer;
    answer.status = Status::InvalidArgument("invalid form handle");
    answer.outcome = AnswerStatus::kError;
    done(std::move(answer));
    return AnswerCursor(std::move(state));
  }
  DispatchForm(handle.cached_, std::move(bound_values), std::move(limits),
               std::move(sink), /*enforce_admission=*/false, std::move(done));
  return AnswerCursor(std::move(state));
}

std::vector<QueryAnswer> QueryService::AnswerBatch(
    const std::vector<QueryRequest>& batch) {
  std::vector<std::future<QueryAnswer>> futures;
  futures.reserve(batch.size());
  for (const QueryRequest& request : batch) {
    futures.push_back(Submit(request));
  }
  std::vector<QueryAnswer> answers;
  answers.reserve(batch.size());
  for (std::future<QueryAnswer>& future : futures) {
    answers.push_back(future.get());
  }
  return answers;
}

Result<WriteResult> QueryService::ApplyWrites(const WriteBatch& batch) {
  if (mutable_db_ == nullptr) {
    return Status::FailedPrecondition(
        "service was constructed over a const Database; in-band writes "
        "need the mutable-Database constructor");
  }
  // Validate before draining: a malformed batch must never stall serving.
  MAGIC_RETURN_IF_ERROR(batch.Validate(*program_.universe()));
  Stopwatch drain;
  // The drain: exclusive acquisition waits for every in-flight evaluation
  // (workers hold the lock shared for the whole fixpoint) and holds off
  // new worker dispatch until release. Inline warm hits stay lock-free;
  // the epoch fence in TryServeCached keeps them out of the write window.
  WriterMutexLock quiesce(serve_mutex_);
  write_drain_ns_.fetch_add(
      static_cast<uint64_t>(drain.ElapsedSeconds() * 1e9),
      std::memory_order_relaxed);
  // Single-threaded application under the seam (validated above, so the
  // drained window pays no second pass); per-relation epoch bumps and
  // probe-index rebuilds happen in the storage layer. Holding the seam
  // exclusive takes no further *service* lock — only the storage layer's
  // own table/index mutexes while applying — so a writer can never
  // deadlock against dispatch or compilation. The Debug rank checker
  // enforces exactly this via serve_mutex_'s exclusive-nest floor.
  WriteResult result = mutable_db_->ApplyValidated(batch);
  writes_applied_.fetch_add(1, std::memory_order_relaxed);
  return result;
}

QueryService::Stats::Totals QueryService::Stats::totals() const {
  Totals totals;
  for (const FormStats& form : forms) {
    totals.queries += form.queries;
    totals.rows += form.rows;
    totals.truncated += form.truncated;
    totals.eval_micros += form.eval_micros;
  }
  return totals;
}

std::string QueryService::Stats::Summary() const {
  const Totals all = totals();
  char buffer[640];
  std::snprintf(
      buffer, sizeof(buffer),
      "%zu form(s) compiled, %zu form-cache hit(s); answer cache: "
      "%" PRIu64 " hit(s), %" PRIu64 " miss(es), %zu served from cache "
      "(%zu subsumed), %" PRIu64 " eviction(s), %zu/%zu byte(s); "
      "served %zu (%zu coalesced, %zu deadline-shed, %zu overloaded); "
      "%zu write batch(es) applied (drain %.3f ms); "
      "form rows %" PRIu64 " (%" PRIu64 " truncated)",
      forms_compiled, form_cache_hits, answer_cache.hits,
      answer_cache.misses, answers_from_cache, answers_subsumed,
      answer_cache.evictions, answer_cache.bytes, answer_cache.max_bytes,
      queries_served, coalesced, deadline_shed, overloaded, writes_applied,
      static_cast<double>(write_drain_ns) / 1e6, all.rows, all.truncated);
  return buffer;
}

std::string QueryService::Stats::JsonFragment() const {
  const Totals all = totals();
  char buffer[640];
  std::snprintf(
      buffer, sizeof(buffer),
      "\"forms_compiled\":%zu,\"form_cache_hits\":%zu,"
      "\"answer_hits\":%" PRIu64 ",\"answer_misses\":%" PRIu64
      ",\"answers_from_cache\":%zu,\"answers_subsumed\":%zu,"
      "\"coalesced\":%zu,\"deadline_shed\":%zu,"
      "\"writes_applied\":%zu,\"write_drain_ns\":%" PRIu64
      ",\"answer_evictions\":%" PRIu64 ",\"answer_bytes\":%zu,"
      "\"form_rows\":%" PRIu64 ",\"form_truncated\":%" PRIu64,
      forms_compiled, form_cache_hits, answer_cache.hits,
      answer_cache.misses, answers_from_cache, answers_subsumed, coalesced,
      deadline_shed, writes_applied, write_drain_ns, answer_cache.evictions,
      answer_cache.bytes, all.rows, all.truncated);
  return buffer;
}

QueryService::Stats QueryService::stats() const {
  MutexLock lock(form_mutex_);
  Stats stats;
  stats.forms_compiled = forms_compiled_;
  stats.form_cache_hits = form_cache_hits_;
  stats.queries_served = queries_served_.load(std::memory_order_relaxed);
  stats.overloaded = overloaded_.load(std::memory_order_relaxed);
  stats.answers_from_cache =
      answers_from_cache_.load(std::memory_order_relaxed);
  stats.answers_subsumed = answers_subsumed_.load(std::memory_order_relaxed);
  stats.coalesced = coalesced_.load(std::memory_order_relaxed);
  stats.deadline_shed = deadline_shed_.load(std::memory_order_relaxed);
  stats.writes_applied = writes_applied_.load(std::memory_order_relaxed);
  stats.write_drain_ns = write_drain_ns_.load(std::memory_order_relaxed);
  stats.answer_cache = cache_.stats();
  for (const auto& [key, cached] : forms_) {
    if (cached.form == nullptr) continue;
    Stats::FormStats form_stats;
    form_stats.pred = cached.pred_name;
    form_stats.adornment = cached.form->adornment().ToString();
    form_stats.strategy = cached.strategy;
    form_stats.sip = cached.sip;
    form_stats.queries =
        cached.counters.queries.load(std::memory_order_relaxed);
    form_stats.rows = cached.counters.rows.load(std::memory_order_relaxed);
    form_stats.truncated =
        cached.counters.truncated.load(std::memory_order_relaxed);
    form_stats.eval_micros =
        cached.counters.eval_micros.load(std::memory_order_relaxed);
    stats.forms.push_back(std::move(form_stats));
  }
  return stats;
}

}  // namespace magic
