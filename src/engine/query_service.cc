#include "engine/query_service.h"

#include <thread>
#include <utility>

#include "util/check.h"
#include "util/hash.h"
#include "util/stopwatch.h"

namespace magic {

// --- AnswerCursor ------------------------------------------------------------

AnswerCursor::~AnswerCursor() {
  // Dropping an unfinished cursor cancels its evaluation; the worker holds
  // its own reference to the state, so nothing dangles.
  if (state_ != nullptr) Cancel();
}

AnswerCursor& AnswerCursor::operator=(AnswerCursor&& other) noexcept {
  if (this != &other) {
    if (state_ != nullptr) Cancel();
    state_ = std::move(other.state_);
  }
  return *this;
}

bool AnswerCursor::Next(size_t max_rows, std::vector<std::vector<TermId>>* out) {
  out->clear();
  if (state_ == nullptr) return false;
  if (max_rows == 0) max_rows = 1;
  std::unique_lock<std::mutex> lock(state_->mutex);
  state_->ready.wait(lock,
                     [&] { return state_->done || !state_->buffer.empty(); });
  while (!state_->buffer.empty() && out->size() < max_rows) {
    out->push_back(std::move(state_->buffer.front()));
    state_->buffer.pop_front();
  }
  return !out->empty();
}

const QueryAnswer& AnswerCursor::Finish() {
  MAGIC_CHECK_MSG(state_ != nullptr, "Finish() on an empty AnswerCursor");
  std::unique_lock<std::mutex> lock(state_->mutex);
  state_->ready.wait(lock, [&] { return state_->done; });
  return state_->final;
}

void AnswerCursor::Cancel() {
  if (state_ != nullptr && state_->cancel != nullptr) {
    state_->cancel->store(true, std::memory_order_relaxed);
  }
}

// --- QueryService ------------------------------------------------------------

size_t QueryService::FormKeyHash::operator()(const FormKey& key) const {
  uint64_t h = HashCombine(key.pred, key.bound_mask);
  h = HashCombine(h, static_cast<uint64_t>(key.strategy));
  return HashCombine(h, std::hash<std::string>{}(key.sip));
}

namespace {

/// The bound-position bitmask of a query instance: bit i set iff argument i
/// is ground. Two instances with equal masks share a query form.
uint64_t BoundMask(const Universe& u, const Query& query) {
  uint64_t mask = 0;
  for (size_t i = 0; i < query.goal.args.size(); ++i) {
    if (u.terms().IsGround(query.goal.args[i])) mask |= uint64_t{1} << i;
  }
  return mask;
}

}  // namespace

QueryService::QueryService(const Program& program, const Database& db,
                           QueryServiceOptions options)
    : program_(program),
      db_(db),
      options_(std::move(options)),
      pool_(options_.num_threads != 0 ? options_.num_threads
                                      : std::thread::hardware_concurrency()) {}

QueryService::~QueryService() = default;

QueryService::FormKey QueryService::MakeKey(const QueryRequest& request) const {
  FormKey key;
  key.pred = request.query.goal.pred;
  key.bound_mask = BoundMask(*program_.universe(), request.query);
  key.strategy = request.strategy.value_or(options_.engine.strategy);
  key.sip = request.sip.value_or(options_.engine.sip);
  return key;
}

QueryService::CachedForm* QueryService::GetOrCompile(
    const QueryRequest& request, const FormKey& key) {
  std::lock_guard<std::mutex> lock(form_mutex_);
  auto it = forms_.find(key);
  if (it != forms_.end()) {
    ++cache_hits_;
    return &it->second;
  }
  EngineOptions engine_options = options_.engine;
  engine_options.strategy = key.strategy;
  engine_options.sip = key.sip;
  Result<PreparedQueryForm> form = [&] {
    // Compilation interns symbols and declares adorned/magic predicates in
    // the shared Universe; exclude all in-flight evaluations while it runs.
    std::unique_lock<std::shared_mutex> exclusive(serve_mutex_);
    return PreparedQueryForm::Prepare(program_, request.query, engine_options);
  }();
  CachedForm& cached = forms_[key];
  const Universe& u = *program_.universe();
  cached.pred_name = u.symbols().Name(u.predicates().info(key.pred).name);
  cached.strategy = StrategyName(key.strategy);
  cached.sip = key.sip;
  if (!form.ok()) {
    cached.error = form.status();
    return &cached;
  }
  ++forms_compiled_;
  cached.form = std::make_unique<PreparedQueryForm>(std::move(*form));
  return &cached;
}

bool QueryService::Admit(bool enforce_admission) {
  size_t prev = pending_.fetch_add(1, std::memory_order_relaxed);
  if (enforce_admission && options_.max_pending != 0 &&
      prev >= options_.max_pending) {
    pending_.fetch_sub(1, std::memory_order_relaxed);
    overloaded_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

QueryAnswer QueryService::OverloadedAnswer() const {
  QueryAnswer answer;
  answer.status = Status::ResourceExhausted(
      "submission queue is full (max_pending=" +
      std::to_string(options_.max_pending) + ")");
  answer.outcome = AnswerStatus::kOverloaded;
  return answer;
}

void QueryService::DispatchForm(const PreparedQueryForm* form,
                                FormCounters* counters,
                                std::vector<TermId> bound_values,
                                QueryLimits limits, AnswerSink sink,
                                bool enforce_admission, Completion done) {
  if (!Admit(enforce_admission)) {
    done(OverloadedAnswer());
    return;
  }
  const auto admitted = std::chrono::steady_clock::now();
  pool_.Submit([this, form, counters, bound_values = std::move(bound_values),
                limits = std::move(limits), sink = std::move(sink),
                done = std::move(done), admitted] {
    std::shared_lock<std::shared_mutex> serving(serve_mutex_);
    Stopwatch watch;
    // Streamed answers leave tuples empty (the AnswerSink contract), so
    // count emitted rows through a wrapper for the per-form stats.
    size_t streamed = 0;
    AnswerSink counted;
    if (sink) {
      counted = [&](const std::vector<TermId>& tuple) {
        ++streamed;
        return sink(tuple);
      };
    }
    QueryAnswer answer = form->Answer(bound_values, db_, limits, counted,
                                      admitted);
    if (counters != nullptr) {
      counters->queries.fetch_add(1, std::memory_order_relaxed);
      counters->rows.fetch_add(answer.tuples.size() + streamed,
                               std::memory_order_relaxed);
      if (answer.outcome == AnswerStatus::kTruncated) {
        counters->truncated.fetch_add(1, std::memory_order_relaxed);
      }
      counters->eval_micros.fetch_add(
          static_cast<uint64_t>(watch.ElapsedSeconds() * 1e6),
          std::memory_order_relaxed);
    }
    queries_served_.fetch_add(1, std::memory_order_relaxed);
    pending_.fetch_sub(1, std::memory_order_relaxed);
    done(std::move(answer));
  });
}

void QueryService::Dispatch(const QueryRequest& request, AnswerSink sink,
                            bool enforce_admission, Completion done) {
  // Base-predicate queries are direct selections over the EDB; any strategy
  // serves them without compilation.
  if (!program_.IsHeadPredicate(request.query.goal.pred)) {
    if (!Admit(enforce_admission)) {
      done(OverloadedAnswer());
      return;
    }
    const auto admitted = std::chrono::steady_clock::now();
    pool_.Submit([this, query = request.query, limits = request.limits,
                  sink = std::move(sink), done = std::move(done), admitted] {
      std::shared_lock<std::shared_mutex> serving(serve_mutex_);
      QueryEngine engine(options_.engine);
      QueryAnswer answer = engine.Run(program_, query, db_, limits, sink,
                                      admitted);
      queries_served_.fetch_add(1, std::memory_order_relaxed);
      pending_.fetch_sub(1, std::memory_order_relaxed);
      done(std::move(answer));
    });
    return;
  }

  const Strategy strategy =
      request.strategy.value_or(options_.engine.strategy);
  if (!IsRewritingStrategy(strategy)) {
    // Non-rewriting fallback: these strategies evaluate the original
    // program (top-down additionally adorns it, mutating the Universe), so
    // they run under the exclusive lock, serialized against everything.
    if (!Admit(enforce_admission)) {
      done(OverloadedAnswer());
      return;
    }
    EngineOptions engine_options = options_.engine;
    engine_options.strategy = strategy;
    engine_options.sip = request.sip.value_or(options_.engine.sip);
    const auto admitted = std::chrono::steady_clock::now();
    pool_.Submit([this, query = request.query, limits = request.limits,
                  engine_options, sink = std::move(sink),
                  done = std::move(done), admitted] {
      std::unique_lock<std::shared_mutex> exclusive(serve_mutex_);
      QueryEngine engine(engine_options);
      QueryAnswer answer = engine.Run(program_, query, db_, limits, sink,
                                      admitted);
      fallback_served_.fetch_add(1, std::memory_order_relaxed);
      queries_served_.fetch_add(1, std::memory_order_relaxed);
      pending_.fetch_sub(1, std::memory_order_relaxed);
      done(std::move(answer));
    });
    return;
  }

  const FormKey key = MakeKey(request);
  CachedForm* cached = GetOrCompile(request, key);
  if (cached->form == nullptr) {
    QueryAnswer answer;
    answer.status = cached->error;
    answer.outcome = AnswerStatus::kError;
    answer.strategy_name = StrategyName(key.strategy);
    queries_served_.fetch_add(1, std::memory_order_relaxed);
    done(std::move(answer));
    return;
  }

  std::vector<TermId> bound_values;
  for (size_t i = 0; i < request.query.goal.args.size(); ++i) {
    if (key.bound_mask & (uint64_t{1} << i)) {
      bound_values.push_back(request.query.goal.args[i]);
    }
  }
  DispatchForm(cached->form.get(), &cached->counters, std::move(bound_values),
               request.limits, std::move(sink), enforce_admission,
               std::move(done));
}

Result<QueryService::FormHandle> QueryService::Prepare(
    const QueryRequest& request) {
  if (!program_.IsHeadPredicate(request.query.goal.pred)) {
    return Status::InvalidArgument(
        "base-predicate queries need no preparation; use Submit/Answer "
        "directly");
  }
  const Strategy strategy =
      request.strategy.value_or(options_.engine.strategy);
  if (!IsRewritingStrategy(strategy)) {
    return Status::InvalidArgument(
        "only rewriting strategies compile to form handles (got " +
        StrategyName(strategy) +
        "); Submit serves non-rewriting strategies via the exclusive "
        "fallback");
  }
  CachedForm* cached = GetOrCompile(request, MakeKey(request));
  if (cached->form == nullptr) return cached->error;
  FormHandle handle;
  handle.form_ = cached->form.get();
  handle.counters_ = &cached->counters;
  return handle;
}

std::future<QueryAnswer> QueryService::SubmitImpl(const QueryRequest& request,
                                                  bool enforce_admission) {
  auto promise = std::make_shared<std::promise<QueryAnswer>>();
  std::future<QueryAnswer> future = promise->get_future();
  Dispatch(request, {}, enforce_admission,
           [promise](QueryAnswer answer) {
             promise->set_value(std::move(answer));
           });
  return future;
}

std::future<QueryAnswer> QueryService::SubmitImpl(
    const FormHandle& handle, std::vector<TermId> bound_values,
    QueryLimits limits, bool enforce_admission) {
  auto promise = std::make_shared<std::promise<QueryAnswer>>();
  std::future<QueryAnswer> future = promise->get_future();
  if (!handle.valid()) {
    QueryAnswer answer;
    answer.status = Status::InvalidArgument("invalid form handle");
    answer.outcome = AnswerStatus::kError;
    promise->set_value(std::move(answer));
    return future;
  }
  DispatchForm(handle.form_, handle.counters_, std::move(bound_values),
               std::move(limits), {}, enforce_admission,
               [promise](QueryAnswer answer) {
                 promise->set_value(std::move(answer));
               });
  return future;
}

std::future<QueryAnswer> QueryService::Submit(const QueryRequest& request) {
  return SubmitImpl(request, /*enforce_admission=*/false);
}

std::future<QueryAnswer> QueryService::Submit(
    const FormHandle& handle, std::vector<TermId> bound_values,
    QueryLimits limits) {
  return SubmitImpl(handle, std::move(bound_values), std::move(limits),
                    /*enforce_admission=*/false);
}

std::future<QueryAnswer> QueryService::TrySubmit(const QueryRequest& request) {
  return SubmitImpl(request, /*enforce_admission=*/true);
}

std::future<QueryAnswer> QueryService::TrySubmit(
    const FormHandle& handle, std::vector<TermId> bound_values,
    QueryLimits limits) {
  return SubmitImpl(handle, std::move(bound_values), std::move(limits),
                    /*enforce_admission=*/true);
}

QueryAnswer QueryService::Answer(const Query& query) {
  QueryRequest request;
  request.query = query;
  return Submit(request).get();
}

QueryAnswer QueryService::Answer(const FormHandle& handle,
                                 std::vector<TermId> bound_values,
                                 QueryLimits limits) {
  return Submit(handle, std::move(bound_values), std::move(limits)).get();
}

std::shared_ptr<AnswerCursor::State> QueryService::MakeStreamState(
    QueryLimits* limits, AnswerSink* sink, Completion* done) {
  auto state = std::make_shared<AnswerCursor::State>();
  if (limits->cancel == nullptr) {
    limits->cancel = std::make_shared<std::atomic<bool>>(false);
  }
  state->cancel = limits->cancel;
  *sink = [state](const std::vector<TermId>& tuple) {
    {
      std::lock_guard<std::mutex> lock(state->mutex);
      state->buffer.push_back(tuple);
    }
    state->ready.notify_all();
    return true;
  };
  *done = [state](QueryAnswer answer) {
    // Sink-fed answers arrive with empty tuples (the AnswerSink contract:
    // everything was streamed); the clear covers inline error paths that
    // never evaluated.
    answer.tuples.clear();
    {
      std::lock_guard<std::mutex> lock(state->mutex);
      state->final = std::move(answer);
      state->done = true;
    }
    state->ready.notify_all();
  };
  return state;
}

AnswerCursor QueryService::Stream(const QueryRequest& request) {
  QueryRequest streamed = request;
  AnswerSink sink;
  Completion done;
  auto state = MakeStreamState(&streamed.limits, &sink, &done);
  Dispatch(streamed, std::move(sink), /*enforce_admission=*/false,
           std::move(done));
  return AnswerCursor(std::move(state));
}

AnswerCursor QueryService::Stream(const FormHandle& handle,
                                  std::vector<TermId> bound_values,
                                  QueryLimits limits) {
  AnswerSink sink;
  Completion done;
  auto state = MakeStreamState(&limits, &sink, &done);
  if (!handle.valid()) {
    QueryAnswer answer;
    answer.status = Status::InvalidArgument("invalid form handle");
    answer.outcome = AnswerStatus::kError;
    done(std::move(answer));
    return AnswerCursor(std::move(state));
  }
  DispatchForm(handle.form_, handle.counters_, std::move(bound_values),
               std::move(limits), std::move(sink),
               /*enforce_admission=*/false, std::move(done));
  return AnswerCursor(std::move(state));
}

std::vector<QueryAnswer> QueryService::AnswerBatch(
    const std::vector<QueryRequest>& batch) {
  std::vector<std::future<QueryAnswer>> futures;
  futures.reserve(batch.size());
  for (const QueryRequest& request : batch) {
    futures.push_back(Submit(request));
  }
  std::vector<QueryAnswer> answers;
  answers.reserve(batch.size());
  for (std::future<QueryAnswer>& future : futures) {
    answers.push_back(future.get());
  }
  return answers;
}

std::vector<QueryAnswer> QueryService::AnswerBatch(
    const std::vector<Query>& queries) {
  std::vector<QueryRequest> batch(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) batch[i].query = queries[i];
  return AnswerBatch(batch);
}

QueryService::Stats QueryService::stats() const {
  std::lock_guard<std::mutex> lock(form_mutex_);
  Stats stats;
  stats.forms_compiled = forms_compiled_;
  stats.cache_hits = cache_hits_;
  stats.queries_served = queries_served_.load(std::memory_order_relaxed);
  stats.overloaded = overloaded_.load(std::memory_order_relaxed);
  stats.fallback_served = fallback_served_.load(std::memory_order_relaxed);
  for (const auto& [key, cached] : forms_) {
    if (cached.form == nullptr) continue;
    Stats::FormStats form_stats;
    form_stats.pred = cached.pred_name;
    form_stats.adornment = cached.form->adornment().ToString();
    form_stats.strategy = cached.strategy;
    form_stats.sip = cached.sip;
    form_stats.queries =
        cached.counters.queries.load(std::memory_order_relaxed);
    form_stats.rows = cached.counters.rows.load(std::memory_order_relaxed);
    form_stats.truncated =
        cached.counters.truncated.load(std::memory_order_relaxed);
    form_stats.eval_micros =
        cached.counters.eval_micros.load(std::memory_order_relaxed);
    stats.forms.push_back(std::move(form_stats));
  }
  return stats;
}

}  // namespace magic
