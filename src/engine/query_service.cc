#include "engine/query_service.h"

#include <thread>
#include <utility>

#include "util/hash.h"

namespace magic {

size_t QueryService::FormKeyHash::operator()(const FormKey& key) const {
  uint64_t h = HashCombine(key.pred, key.bound_mask);
  h = HashCombine(h, static_cast<uint64_t>(key.strategy));
  return HashCombine(h, std::hash<std::string>{}(key.sip));
}

namespace {

/// The bound-position bitmask of a query instance: bit i set iff argument i
/// is ground. Two instances with equal masks share a query form.
uint64_t BoundMask(const Universe& u, const Query& query) {
  uint64_t mask = 0;
  for (size_t i = 0; i < query.goal.args.size(); ++i) {
    if (u.terms().IsGround(query.goal.args[i])) mask |= uint64_t{1} << i;
  }
  return mask;
}

}  // namespace

QueryService::QueryService(const Program& program, const Database& db,
                           QueryServiceOptions options)
    : program_(program),
      db_(db),
      options_(std::move(options)),
      pool_(options_.num_threads != 0 ? options_.num_threads
                                      : std::thread::hardware_concurrency()) {}

QueryService::~QueryService() = default;

const PreparedQueryForm* QueryService::GetOrCompile(
    const QueryRequest& request, const FormKey& key, Status* error) {
  std::lock_guard<std::mutex> lock(form_mutex_);
  auto it = forms_.find(key);
  if (it != forms_.end()) {
    ++cache_hits_;
    *error = it->second.error;
    return it->second.form.get();
  }
  EngineOptions engine_options = options_.engine;
  engine_options.strategy = key.strategy;
  engine_options.sip = key.sip;
  Result<PreparedQueryForm> form = [&] {
    // Compilation interns symbols and declares adorned/magic predicates in
    // the shared Universe; exclude all in-flight evaluations while it runs.
    std::unique_lock<std::shared_mutex> exclusive(serve_mutex_);
    return PreparedQueryForm::Prepare(program_, request.query, engine_options);
  }();
  CachedForm& cached = forms_[key];
  if (!form.ok()) {
    cached.error = form.status();
    *error = cached.error;
    return nullptr;
  }
  ++forms_compiled_;
  cached.form = std::make_unique<PreparedQueryForm>(std::move(*form));
  return cached.form.get();
}

std::future<QueryAnswer> QueryService::Submit(const QueryRequest& request) {
  auto promise = std::make_shared<std::promise<QueryAnswer>>();
  std::future<QueryAnswer> future = promise->get_future();
  const Universe& u = *program_.universe();

  // Base-predicate queries are direct selections over the EDB; any strategy
  // serves them without compilation.
  if (!program_.IsHeadPredicate(request.query.goal.pred)) {
    Query query = request.query;
    pool_.Submit([this, query, promise] {
      std::shared_lock<std::shared_mutex> serving(serve_mutex_);
      QueryEngine engine(options_.engine);
      QueryAnswer answer = engine.Run(program_, query, db_);
      queries_served_.fetch_add(1, std::memory_order_relaxed);
      promise->set_value(std::move(answer));
    });
    return future;
  }

  FormKey key;
  key.pred = request.query.goal.pred;
  key.bound_mask = BoundMask(u, request.query);
  key.strategy = request.strategy.value_or(options_.engine.strategy);
  key.sip = request.sip.value_or(options_.engine.sip);

  Status error;
  const PreparedQueryForm* form = GetOrCompile(request, key, &error);
  if (form == nullptr) {
    QueryAnswer answer;
    answer.status = error;
    answer.strategy_name = StrategyName(key.strategy);
    queries_served_.fetch_add(1, std::memory_order_relaxed);
    promise->set_value(std::move(answer));
    return future;
  }

  std::vector<TermId> bound_values;
  for (size_t i = 0; i < request.query.goal.args.size(); ++i) {
    if (key.bound_mask & (uint64_t{1} << i)) {
      bound_values.push_back(request.query.goal.args[i]);
    }
  }

  pool_.Submit([this, form, bound_values = std::move(bound_values), promise] {
    std::shared_lock<std::shared_mutex> serving(serve_mutex_);
    QueryAnswer answer = form->Answer(bound_values, db_);
    queries_served_.fetch_add(1, std::memory_order_relaxed);
    promise->set_value(std::move(answer));
  });
  return future;
}

QueryAnswer QueryService::Answer(const Query& query) {
  QueryRequest request;
  request.query = query;
  return Submit(request).get();
}

std::vector<QueryAnswer> QueryService::AnswerBatch(
    const std::vector<QueryRequest>& batch) {
  std::vector<std::future<QueryAnswer>> futures;
  futures.reserve(batch.size());
  for (const QueryRequest& request : batch) {
    futures.push_back(Submit(request));
  }
  std::vector<QueryAnswer> answers;
  answers.reserve(batch.size());
  for (std::future<QueryAnswer>& future : futures) {
    answers.push_back(future.get());
  }
  return answers;
}

std::vector<QueryAnswer> QueryService::AnswerBatch(
    const std::vector<Query>& queries) {
  std::vector<QueryRequest> batch(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) batch[i].query = queries[i];
  return AnswerBatch(batch);
}

QueryService::Stats QueryService::stats() const {
  std::lock_guard<std::mutex> lock(form_mutex_);
  Stats stats;
  stats.forms_compiled = forms_compiled_;
  stats.cache_hits = cache_hits_;
  stats.queries_served = queries_served_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace magic
