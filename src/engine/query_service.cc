#include "engine/query_service.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <thread>
#include <utility>

#include "util/check.h"
#include "util/hash.h"
#include "util/json_writer.h"
#include "util/stopwatch.h"

namespace magic {

// --- AnswerCursor ------------------------------------------------------------

AnswerCursor::~AnswerCursor() {
  // Dropping an unfinished cursor cancels its evaluation; the worker holds
  // its own reference to the state, so nothing dangles.
  if (state_ != nullptr) Cancel();
}

AnswerCursor& AnswerCursor::operator=(AnswerCursor&& other) noexcept {
  if (this != &other) {
    if (state_ != nullptr) Cancel();
    state_ = std::move(other.state_);
  }
  return *this;
}

bool AnswerCursor::Next(size_t max_rows, std::vector<std::vector<TermId>>* out) {
  out->clear();
  if (state_ == nullptr) return false;
  if (max_rows == 0) max_rows = 1;
  MutexLock lock(state_->mutex);
  // Explicit wait loops throughout (not the predicate overload): the
  // analysis treats a predicate lambda as a separate, unannotated
  // function, so the guarded reads belong in this annotated scope.
  while (!state_->done && state_->buffer.empty()) state_->ready.wait(lock);
  while (!state_->buffer.empty() && out->size() < max_rows) {
    out->push_back(std::move(state_->buffer.front()));
    state_->buffer.pop_front();
  }
  return !out->empty();
}

const QueryAnswer& AnswerCursor::Finish() {
  MAGIC_CHECK_MSG(state_ != nullptr, "Finish() on an empty AnswerCursor");
  MutexLock lock(state_->mutex);
  while (!state_->done) state_->ready.wait(lock);
  // Safe to hand out past the unlock: done == true means the worker has
  // completed and will never touch `final` again.
  return state_->final;
}

void AnswerCursor::Cancel() {
  if (state_ != nullptr && state_->cancel != nullptr) {
    state_->cancel->store(true, std::memory_order_relaxed);
  }
}

// --- QueryService ------------------------------------------------------------

const Adornment& QueryService::FormHandle::adornment() const {
  return cached_->form->adornment();
}

size_t QueryService::FormHandle::bound_arity() const {
  return cached_->form->bound_arity();
}

size_t QueryService::FormKeyHash::operator()(const FormKey& key) const {
  uint64_t h = HashCombine(key.pred, key.bound_mask);
  h = HashCombine(h, static_cast<uint64_t>(key.strategy));
  return HashCombine(h, std::hash<std::string>{}(key.sip));
}

size_t QueryService::InflightKeyHash::operator()(
    const InflightKey& key) const {
  uint64_t h = reinterpret_cast<uintptr_t>(key.form);
  for (TermId term : key.seed) h = HashCombine(h, term);
  return h;
}

namespace {

/// The bound-position bitmask of a query instance: bit i set iff argument i
/// is ground. Two instances with equal masks share a query form.
uint64_t BoundMask(const Universe& u, const Query& query) {
  uint64_t mask = 0;
  for (size_t i = 0; i < query.goal.args.size(); ++i) {
    if (u.terms().IsGround(query.goal.args[i])) mask |= uint64_t{1} << i;
  }
  return mask;
}

/// The AnswerCache tag of a compiled form: its stable address. Forms live
/// as long as the service (and so does the cache), so tags never alias.
uintptr_t CacheTag(const PreparedQueryForm* form) {
  return reinterpret_cast<uintptr_t>(form);
}

/// Subsumption filter: selects the tuples of a fully-free form's answer
/// set (columns = all argument positions, sorted lexicographically) that
/// match `bound_values` at `bound_positions`, projected onto the free
/// positions. The selection of a sorted, deduplicated set is itself
/// sorted and deduplicated: rows agree on every bound column, so the
/// first differing column is a kept one — order and distinctness survive
/// the projection.
AnswerCache::Tuples FilterSubsumed(const AnswerCache::Tuples& all,
                                   const std::vector<int>& bound_positions,
                                   const std::vector<TermId>& bound_values) {
  AnswerCache::Tuples out;
  for (const std::vector<TermId>& tuple : all) {
    bool match = true;
    for (size_t k = 0; k < bound_positions.size(); ++k) {
      if (tuple[bound_positions[k]] != bound_values[k]) {
        match = false;
        break;
      }
    }
    if (!match) continue;
    std::vector<TermId> projected;
    projected.reserve(tuple.size() - bound_positions.size());
    size_t k = 0;
    for (size_t i = 0; i < tuple.size(); ++i) {
      if (k < bound_positions.size() &&
          static_cast<int>(i) == bound_positions[k]) {
        ++k;
        continue;
      }
      projected.push_back(tuple[i]);
    }
    out.push_back(std::move(projected));
  }
  return out;
}

/// Nanoseconds-since-epoch of a steady_clock time point, on the same
/// clock obs::Trace::NowNs() reads — so span and latency arithmetic can
/// mix deadline anchors with trace timestamps.
uint64_t ToNs(std::chrono::steady_clock::time_point tp) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          tp.time_since_epoch())
          .count());
}

/// Renders a bound-value seed for the slow-query log ("c3", "a b", ...).
std::string SeedToString(const Universe& u, const std::vector<TermId>& seed) {
  std::string out;
  for (TermId term : seed) {
    if (!out.empty()) out += ' ';
    out += u.TermToString(term);
  }
  return out;
}

}  // namespace

QueryService::QueryService(const Program& program, const Database& db,
                           QueryServiceOptions options)
    : program_(program),
      db_(db),
      options_(std::move(options)),
      versions_(db_),
      slow_log_(options_.obs.slow_query_capacity),
      cache_(AnswerCacheOptions{.max_bytes = options_.cache_bytes}),
      pool_(options_.num_threads != 0 ? options_.num_threads
                                      : std::thread::hardware_concurrency()) {
  // Service-wide instruments, registered once; the hot path only touches
  // the returned cells (relaxed atomic adds — no registry lock).
  forms_compiled_ = metrics_.GetCounter(
      "magicdb_forms_compiled", {}, "Query forms compiled (per form key)");
  form_cache_hits_ = metrics_.GetCounter(
      "magicdb_form_cache_hits", {},
      "Request-tier lookups that found an already-compiled form");
  queries_served_ = metrics_.GetCounter(
      "magicdb_queries_served", {},
      "Requests completed (evaluated, cache-served, or shed)");
  overloaded_ = metrics_.GetCounter(
      "magicdb_overloaded", {},
      "TrySubmit rejections by admission control");
  answers_from_cache_ = metrics_.GetCounter(
      "magicdb_answers_from_cache", {},
      "Requests served from the AnswerCache without evaluation");
  answers_subsumed_ = metrics_.GetCounter(
      "magicdb_answers_subsumed", {},
      "Cache serves produced by filtering a fully-free cached answer set");
  coalesced_ = metrics_.GetCounter(
      "magicdb_coalesced", {},
      "Duplicate in-flight (form, seed) requests parked behind a leader");
  deadline_shed_ = metrics_.GetCounter(
      "magicdb_deadline_shed", {},
      "Requests shed because their deadline expired before evaluation");
  writes_applied_ = metrics_.GetCounter(
      "magicdb_writes_applied", {},
      "Write batches applied through ApplyWrites");
  request_latency_ = metrics_.GetHistogram(
      "magicdb_request_latency_ns", {},
      "End-to-end request latency, admission to completion");
  write_publish_ = metrics_.GetHistogram(
      "magicdb_write_publish_ns", {},
      "Per-batch version build+publish time (ticket redeemed -> "
      "published); excludes commit-queue wait");
  compile_latency_ = metrics_.GetHistogram(
      "magicdb_compile_latency_ns", {},
      "Form compilation time (adorn + rewrite), paid once per form");
  writes_queued_gauge_ = metrics_.GetGauge(
      "magicdb_writes_queued", {},
      "Writers waiting for their FIFO commit ticket (live)");
  pending_gauge_ = metrics_.GetGauge(
      "magicdb_pending_requests", {},
      "Requests submitted but not yet completed (refreshed at scrape)");
  cache_entries_gauge_ = metrics_.GetGauge(
      "magicdb_answer_cache_entries", {},
      "AnswerCache resident entries (refreshed at scrape)");
  cache_bytes_gauge_ = metrics_.GetGauge(
      "magicdb_answer_cache_bytes", {},
      "AnswerCache resident bytes (refreshed at scrape)");
  versions_live_gauge_ = metrics_.GetGauge(
      "magicdb_db_versions_live", {},
      "Database versions alive: the head plus reader-pinned older ones "
      "(refreshed at scrape)");
  versions_pinned_gauge_ = metrics_.GetGauge(
      "magicdb_db_versions_pinned", {},
      "Retired-from-head versions kept alive only by reader pins "
      "(refreshed at scrape)");
}

QueryService::QueryService(const Program& program, Database& db,
                           QueryServiceOptions options)
    : QueryService(program, static_cast<const Database&>(db),
                   std::move(options)) {
  mutable_db_ = &db;
}

QueryService::~QueryService() = default;

QueryService::FormKey QueryService::MakeKey(const QueryRequest& request) const {
  FormKey key;
  key.pred = request.query.goal.pred;
  key.bound_mask = BoundMask(*program_.universe(), request.query);
  key.strategy = request.strategy.value_or(options_.engine.strategy);
  // naive/semi-naive plans take no sip; normalizing the key keeps one plan
  // per binding pattern instead of one per (irrelevant) sip name.
  const bool sipless = key.strategy == Strategy::kNaiveBottomUp ||
                       key.strategy == Strategy::kSemiNaiveBottomUp;
  key.sip = sipless ? std::string() : request.sip.value_or(options_.engine.sip);
  return key;
}

QueryService::CachedForm* QueryService::GetOrCompile(
    const QueryRequest& request, const FormKey& key, bool* compiled) {
  if (compiled != nullptr) *compiled = false;
  MutexLock lock(form_mutex_);
  auto it = forms_.find(key);
  if (it != forms_.end()) {
    form_cache_hits_->Add();
    return &it->second;
  }
  EngineOptions engine_options = options_.engine;
  engine_options.strategy = key.strategy;
  if (!key.sip.empty()) engine_options.sip = key.sip;
  // Compilation writes only into the plan's Universe overlay (the shared
  // base is frozen underneath it), so in-flight evaluations keep running;
  // only concurrent compiles serialize here.
  Result<PreparedQueryForm> form =
      PreparedQueryForm::Prepare(program_, request.query, engine_options);
  CachedForm& cached = forms_[key];
  cached.key = key;
  const Universe& u = *program_.universe();
  cached.pred_name = u.symbols().Name(u.predicates().info(key.pred).name);
  cached.strategy = StrategyName(key.strategy);
  cached.sip = key.sip;
  if (!form.ok()) {
    cached.error = form.status();
    return &cached;
  }
  forms_compiled_->Add();
  if (compiled != nullptr) *compiled = true;
  cached.form = std::make_unique<PreparedQueryForm>(std::move(*form));

  // Register the form's instruments while we still hold form_mutex_ (the
  // metrics mutex ranks above it, so the nesting is legal). One-time cost
  // per form; the serving paths only Add()/Record() through the pointers.
  cached.form_label =
      cached.pred_name + "/" + cached.form->adornment().ToString();
  obs::MetricsRegistry::Labels form_labels{{"form", cached.form_label},
                                           {"strategy", cached.strategy}};
  cached.queries = metrics_.GetCounter(
      "magicdb_form_queries", form_labels,
      "Instances served per compiled form (evaluated or cache-served)");
  cached.rows = metrics_.GetCounter("magicdb_form_rows", form_labels,
                                    "Answer tuples returned per form");
  cached.truncated =
      metrics_.GetCounter("magicdb_form_truncated", form_labels,
                          "Instances stopped by a row limit");
  obs::MetricsRegistry::Labels eval_labels = form_labels;
  eval_labels.emplace_back("stage", "eval");
  obs::MetricsRegistry::Labels inline_labels = form_labels;
  inline_labels.emplace_back("stage", "cache_inline");
  cached.eval_latency = metrics_.GetHistogram(
      "magicdb_form_latency_ns", eval_labels,
      "Per-instance serving latency by stage (eval vs cache_inline)");
  cached.inline_latency = metrics_.GetHistogram(
      "magicdb_form_latency_ns", inline_labels,
      "Per-instance serving latency by stage (eval vs cache_inline)");
  const std::vector<std::string>& rule_labels =
      cached.form->plan().rule_labels;
  cached.rule_counters.reserve(rule_labels.size());
  for (size_t i = 0; i < rule_labels.size(); ++i) {
    // Rules are labelled by index (the full rule text lives in the stats
    // JSON profile — too long and too free-form for a label value).
    obs::MetricsRegistry::Labels labels{{"form", cached.form_label},
                                        {"rule", std::to_string(i)}};
    RuleCounters rc;
    rc.evals = metrics_.GetCounter(
        "magicdb_rule_evals", labels,
        "Fixpoint rule evaluations (semi-naive: one per delta position "
        "per iteration; top-down: subquery rule attempts)");
    rc.firings = metrics_.GetCounter("magicdb_rule_firings", labels,
                                     "Complete body matches of the rule");
    rc.new_facts = metrics_.GetCounter(
        "magicdb_rule_new_facts", labels,
        "Facts the rule derived that were new to its head relation");
    rc.duplicate_facts = metrics_.GetCounter(
        "magicdb_rule_duplicate_facts", labels,
        "Facts the rule re-derived (already present)");
    rc.join_probes = metrics_.GetCounter(
        "magicdb_rule_join_probes", labels,
        "Join candidate rows probed while evaluating the rule");
    rc.delta_rows = metrics_.GetCounter(
        "magicdb_rule_delta_rows", labels,
        "Delta-window rows joined against (semi-naive) or subqueries "
        "generated (top-down)");
    cached.rule_counters.push_back(rc);
  }
  return &cached;
}

bool QueryService::Admit(bool enforce_admission) {
  size_t prev = pending_.fetch_add(1, std::memory_order_relaxed);
  if (enforce_admission && options_.max_pending != 0 &&
      prev >= options_.max_pending) {
    pending_.fetch_sub(1, std::memory_order_relaxed);
    overloaded_->Add();
    return false;
  }
  return true;
}

QueryAnswer QueryService::OverloadedAnswer() const {
  QueryAnswer answer;
  answer.status = Status::ResourceExhausted(
      "submission queue is full (max_pending=" +
      std::to_string(options_.max_pending) + ")");
  answer.outcome = AnswerStatus::kOverloaded;
  return answer;
}

QueryAnswer QueryService::DeadlineShedAnswer() const {
  QueryAnswer answer;
  answer.status = Status::DeadlineExceeded(
      "deadline expired while queued; evaluation never started");
  answer.outcome = AnswerStatus::kDeadlineExceeded;
  return answer;
}

bool QueryService::TryServeCached(CachedForm* cached,
                                  const std::vector<TermId>& bound_values,
                                  uint64_t version, const QueryLimits& limits,
                                  const AnswerSink& sink,
                                  const Completion& done) {
  // Instances with a malformed seed must flow to Answer() for its error
  // reporting; they can never have been cached (fills follow successful
  // evaluations only).
  if (bound_values.size() != cached->form->bound_arity()) return false;
  // No write fence is needed around the probe (the pre-MVCC design
  // re-checked the epoch here): a hit keyed at version V is the complete
  // answer for V, and serving it while version V+1 publishes concurrently
  // is linearizable — the request overlapped the write. Post-write reads
  // are still never stale, because a publish happens-before ApplyWrites
  // returns, so a request submitted after the write probes at >= V+1 and
  // misses every older entry.
  std::shared_ptr<const AnswerCache::Tuples> tuples =
      cache_.Get(CacheTag(cached->form.get()), bound_values, version);
  bool subsumed = false;
  if (tuples == nullptr && options_.cache_subsumption &&
      !bound_values.empty()) {
    // Subsumption fast path: a complete fully-free answer set of the same
    // (pred, strategy, sip) serves any bound instance by filtering. The
    // filtered result is promoted to an exact entry so the next repeat of
    // this seed skips the filter too.
    if (CachedForm* free_form = FindFreeSibling(cached)) {
      if (auto all =
              cache_.Get(CacheTag(free_form->form.get()), {}, version)) {
        auto filtered = std::make_shared<AnswerCache::Tuples>(FilterSubsumed(
            *all, cached->form->bound_positions(), bound_values));
        cache_.Put(CacheTag(cached->form.get()), bound_values, version,
                   filtered);
        tuples = std::move(filtered);
        subsumed = true;
      }
    }
  }
  if (tuples == nullptr) return false;
  ServeHit(cached, std::move(tuples), limits, sink, done, subsumed);
  return true;
}

void QueryService::ServeHit(CachedForm* cached,
                            std::shared_ptr<const AnswerCache::Tuples> tuples,
                            const QueryLimits& limits, const AnswerSink& sink,
                            const Completion& done, bool subsumed) {
  QueryAnswer answer;
  answer.from_cache = true;
  answer.strategy_name = cached->strategy;
  const size_t total = tuples->size();
  size_t serve = total;
  // Mirror the evaluated path's outcome exactly: AnswerCollector marks
  // kTruncated the moment row_limit answers are reached, including when
  // the limit equals the answer count — cache temperature must not change
  // what a client observes.
  const bool limit_hit = limits.row_limit != 0 && total >= limits.row_limit;
  if (limit_hit) serve = static_cast<size_t>(limits.row_limit);
  bool sink_stopped = false;
  if (sink) {
    for (size_t i = 0; i < serve; ++i) {
      if (!sink((*tuples)[i])) {
        serve = i + 1;
        sink_stopped = true;
        break;
      }
    }
  } else {
    answer.tuples.assign(tuples->begin(),
                         tuples->begin() + static_cast<ptrdiff_t>(serve));
  }
  answer.outcome = (limit_hit || sink_stopped) ? AnswerStatus::kTruncated
                                               : AnswerStatus::kOk;

  cached->queries->Add();
  cached->rows->Add(serve);
  if (answer.outcome == AnswerStatus::kTruncated) {
    cached->truncated->Add();
  }
  // eval latency deliberately untouched: no evaluation ran. The caller
  // records this serve into the form's distinct `cache_inline` histogram
  // instead (it owns the request's latency anchor), so warm hits never
  // dilute eval-stage latency.
  queries_served_->Add();
  answers_from_cache_->Add();
  if (subsumed) answers_subsumed_->Add();
  done(std::move(answer));
}

QueryService::CachedForm* QueryService::FindFreeSibling(CachedForm* cached) {
  if (CachedForm* memo = cached->free_sibling.load(std::memory_order_acquire)) {
    return memo;
  }
  FormKey key = cached->key;
  key.bound_mask = 0;
  CachedForm* found = nullptr;
  // try_lock, not lock: a compile in progress holds form_mutex_ for the
  // whole adorn+rewrite, and evaluating workers reach here on every
  // second-chance miss — skipping the subsumption fast path once is
  // cheaper than serializing the pool behind the compile. (Raw
  // TryLock/Unlock rather than a scoped guard: the analysis follows the
  // TRY_ACQUIRE branch precisely, where a maybe-owning guard defeats it.)
  if (!form_mutex_.TryLock()) return nullptr;
  auto it = forms_.find(key);
  // bound_mask == 0 is necessary but not sufficient: a repeated-variable
  // or non-ground-compound exemplar (anc(X,X), p(f(X),Y)) also has no
  // bound positions yet caches a *restricted* answer set that must never
  // subsume a bound instance.
  if (it != forms_.end() && it->second.form != nullptr &&
      it->second.form->fully_free()) {
    found = &it->second;
  }
  form_mutex_.Unlock();
  // Only positive results are memoized: the sibling may be Prepared later,
  // so a miss must keep re-checking. Forms are never erased, so a found
  // pointer stays valid for the service's lifetime.
  if (found != nullptr) {
    cached->free_sibling.store(found, std::memory_order_release);
  }
  return found;
}

void QueryService::ReleaseInflight(CachedForm* cached,
                                   const std::vector<TermId>& bound_values) {
  std::vector<std::function<void()>> waiters;
  {
    MutexLock lock(inflight_mutex_);
    auto it = inflight_.find(InflightKey{cached, bound_values});
    if (it != inflight_.end()) {
      waiters = std::move(it->second);
      inflight_.erase(it);
    }
  }
  // Re-dispatch outside the lock: a waiter either hits the cache the
  // leader just filled (served inline here) or becomes the next leader
  // (its evaluation goes back through the pool). A re-dispatched waiter
  // that finds a new leader in the table simply parks again — progress is
  // guaranteed because some request always holds the leader slot.
  for (std::function<void()>& waiter : waiters) waiter();
}

void QueryService::DispatchForm(
    CachedForm* cached, std::vector<TermId> bound_values, QueryLimits limits,
    AnswerSink sink, bool enforce_admission, Completion done,
    std::optional<std::chrono::steady_clock::time_point> admitted_at,
    obs::Span compile_span) {
  // The deadline anchor survives coalescing round-trips: a parked
  // duplicate re-enters here with its original `admitted_at`, so park
  // time counts against the deadline exactly like queue time does. The
  // check runs BEFORE the cache probe: an expired request is shed whether
  // the answer would have been warm or cold — cache temperature must not
  // turn a kDeadlineExceeded into a kOk.
  const auto admitted = admitted_at.value_or(std::chrono::steady_clock::now());
  if (limits.deadline.has_value() &&
      std::chrono::steady_clock::now() >= admitted + *limits.deadline) {
    deadline_shed_->Add();
    queries_served_->Add();
    done(DeadlineShedAnswer());
    return;
  }
  // Latency is measured from the admission anchor (same clock as the
  // trace spans), so queue wait and coalescing park time count toward the
  // recorded latency exactly as they count against the deadline.
  const bool obs_on = options_.obs.enabled;
  const uint64_t t_anchor = obs_on ? ToNs(admitted) : 0;

  // The inline probe keys by the current version number — one lock-free
  // counter load, no pin, no shared_ptr traffic. Racing a publish is fine:
  // a hit at version V is V's complete answer (see TryServeCached), and a
  // miss just flows to the worker path, which pins a full snapshot.
  const uint64_t probe_start = obs_on ? obs::Trace::NowNs() : 0;
  const uint64_t version = cache_.enabled() ? versions_.current_version() : 0;
  if (cache_.enabled() &&
      TryServeCached(cached, bound_values, version, limits, sink, done)) {
    // Warm hit: completed inline — no worker, no admission slot, and no
    // Trace allocation. Two histogram cells record it, under the form's
    // distinct `cache_inline` stage.
    if (obs_on) {
      const uint64_t now = obs::Trace::NowNs();
      cached->inline_latency->Record(now - t_anchor);
      request_latency_->Record(now - t_anchor);
    }
    return;
  }
  const uint64_t probe_end = obs_on ? obs::Trace::NowNs() : 0;

  if (!Admit(enforce_admission)) {
    done(OverloadedAnswer());
    return;
  }

  // Request coalescing: a miss identical to an in-flight (form, seed)
  // evaluation parks behind it instead of evaluating again; the leader's
  // fill serves it. Needs the cache (that is the handoff medium) and a
  // well-formed seed (malformed ones just flow to Answer()'s error path).
  // Parking happens *after* Admit: a parked duplicate is
  // submitted-but-not-finished work, so it holds its admission slot while
  // it waits (max_pending backpressure keeps seeing it) and gives the
  // slot back when its re-dispatch goes around again.
  const bool coalescing = options_.coalesce_requests && cache_.enabled() &&
                          bound_values.size() == cached->form->bound_arity();
  if (coalescing) {
    MutexLock lock(inflight_mutex_);
    auto [it, inserted] =
        inflight_.try_emplace(InflightKey{cached, bound_values});
    if (!inserted) {
      coalesced_->Add();
      it->second.push_back(
          [this, cached, bound_values = std::move(bound_values),
           limits = std::move(limits), sink = std::move(sink),
           done = std::move(done), admitted, compile_span]() mutable {
            // Return the parked slot, then go around again with the
            // original anchor. enforce_admission=false: this request was
            // already admitted once and must not be rejected late.
            pending_.fetch_sub(1, std::memory_order_relaxed);
            DispatchForm(cached, std::move(bound_values), std::move(limits),
                         std::move(sink), /*enforce_admission=*/false,
                         std::move(done), admitted, compile_span);
          });
      return;
    }
    // Inserted: this request is the leader and must ReleaseInflight on
    // every completion path below.
  }
  // Cold path: the request will occupy a worker, so a per-request Trace
  // is worth its one small allocation. Spans recorded so far: admission
  // (anchor -> probe) and the inline cache probe; the compile span rides
  // in from the request tier when this request actually compiled.
  std::shared_ptr<obs::Trace> trace;
  uint64_t t_submit = 0;
  if (obs_on) {
    trace = std::make_shared<obs::Trace>();
    trace->Record(obs::Stage::kAdmit, t_anchor, probe_start);
    if (compile_span.end_ns != 0) {
      trace->Record(obs::Stage::kCompile, compile_span.start_ns,
                    compile_span.end_ns);
    }
    trace->Record(obs::Stage::kCacheProbe, probe_start, probe_end);
    t_submit = obs::Trace::NowNs();
  }
  pool_.Submit([this, cached, coalescing,
                bound_values = std::move(bound_values),
                limits = std::move(limits), sink = std::move(sink),
                done = std::move(done), admitted, trace = std::move(trace),
                t_anchor, t_submit]() mutable {
    // Pin a snapshot for the whole evaluation: one atomic load, never
    // blocks a writer, and the snapshot's relations can never mutate out
    // from under the fixpoint (writers clone-on-write instead). The
    // second-chance probe and the fill below are keyed by the pinned
    // version — the version of the data this evaluation actually reads —
    // even when the request was dispatched before a write and evaluated
    // after it.
    const std::shared_ptr<const DatabaseVersion> pinned = versions_.Pin();
    if (trace != nullptr) {
      trace->Record(obs::Stage::kQueueWait, t_submit, obs::Trace::NowNs());
    }
    const uint64_t version = cache_.enabled() ? pinned->version() : 0;
    // Deadline-aware dispatch: a request whose deadline expired while it
    // sat in the pool queue completes immediately — the client is gone;
    // entering the fixpoint would burn a worker on an unwanted answer.
    if (limits.deadline.has_value() &&
        std::chrono::steady_clock::now() >= admitted + *limits.deadline) {
      deadline_shed_->Add();
      queries_served_->Add();
      if (coalescing) ReleaseInflight(cached, bound_values);
      pending_.fetch_sub(1, std::memory_order_relaxed);
      done(DeadlineShedAnswer());
      return;
    }
    // Second chance: a fill that completed while this request sat in the
    // pool queue serves it now — a concurrent batch of repeated seeds
    // evaluates once, not once per repeat. The full probe (including the
    // subsumption sibling lookup) takes only form_mutex_ and the cache
    // shard locks; a pin holds no lock at all.
    if (cache_.enabled() &&
        TryServeCached(cached, bound_values, version, limits, sink, done)) {
      if (trace != nullptr) {
        // Served by a leader's fill while queued: latency-wise this is a
        // cache serve, so it records as cache_inline, not eval.
        const uint64_t now = obs::Trace::NowNs();
        cached->inline_latency->Record(now - t_anchor);
        request_latency_->Record(now - t_anchor);
      }
      if (coalescing) ReleaseInflight(cached, bound_values);
      pending_.fetch_sub(1, std::memory_order_relaxed);
      return;
    }
    // Hand the trace to the engine: the fixpoint span is recorded inside
    // Evaluator/TopDownEngine (they own the evaluation interval).
    limits.trace = trace.get();
    Stopwatch watch;
    // Streamed answers leave tuples empty (the AnswerSink contract), so
    // count emitted rows through a wrapper for the per-form stats — and,
    // when the cache wants a fill, keep a copy of what streamed by.
    size_t streamed = 0;
    uint64_t stream_first = 0;
    const bool collect = cache_.enabled() && static_cast<bool>(sink);
    std::vector<std::vector<TermId>> collected;
    AnswerSink counted;
    if (sink) {
      counted = [&](const std::vector<TermId>& tuple) {
        ++streamed;
        if (trace != nullptr && stream_first == 0) {
          stream_first = obs::Trace::NowNs();
        }
        if (collect) collected.push_back(tuple);
        return sink(tuple);
      };
    }
    QueryAnswer answer = cached->form->Answer(bound_values, pinned->db(),
                                              limits, counted, admitted);
    const uint64_t eval_ns =
        static_cast<uint64_t>(watch.ElapsedSeconds() * 1e9);
    cached->queries->Add();
    cached->rows->Add(answer.tuples.size() + streamed);
    if (answer.outcome == AnswerStatus::kTruncated) {
      cached->truncated->Add();
    }
    // Always recorded (the Stopwatch reads predate observability and the
    // record is three relaxed adds): eval latency feeds eval_micros in
    // Stats even when the optional obs half is off.
    cached->eval_latency->Record(eval_ns);
    // Accumulate this run's per-rule fixpoint profile into the form's
    // registry counters (skipping zero deltas keeps quiet rules free).
    const size_t rules =
        std::min(answer.profile.size(), cached->rule_counters.size());
    for (size_t i = 0; i < rules; ++i) {
      const RuleProfile& p = answer.profile[i].counts;
      RuleCounters& rc = cached->rule_counters[i];
      if (p.evals != 0) rc.evals->Add(p.evals);
      if (p.firings != 0) rc.firings->Add(p.firings);
      if (p.new_facts != 0) rc.new_facts->Add(p.new_facts);
      if (p.duplicate_facts != 0) rc.duplicate_facts->Add(p.duplicate_facts);
      if (p.join_probes != 0) rc.join_probes->Add(p.join_probes);
      if (p.delta_rows != 0) rc.delta_rows->Add(p.delta_rows);
    }
    // Fill on bounded-clean completions only: kOk means the fixpoint ran
    // to completion under no truncating limit, so the tuple set is the
    // full answer. Sink-fed runs are re-sorted to the canonical order
    // (sinks see derivation order).
    if (cache_.enabled() && answer.status.ok() &&
        answer.outcome == AnswerStatus::kOk) {
      auto tuples = std::make_shared<AnswerCache::Tuples>();
      if (collect) {
        std::sort(collected.begin(), collected.end());
        *tuples = std::move(collected);
      } else {
        *tuples = answer.tuples;
      }
      cache_.Put(CacheTag(cached->form.get()), bound_values, version,
                 std::move(tuples));
    }
    // Unpark duplicates only after the fill above, so they hit it.
    if (coalescing) ReleaseInflight(cached, bound_values);
    queries_served_->Add();
    if (trace != nullptr) {
      const uint64_t t_done = obs::Trace::NowNs();
      if (stream_first != 0) {
        trace->Record(obs::Stage::kStream, stream_first, t_done);
      }
      const uint64_t total = t_done - t_anchor;
      request_latency_->Record(total);
      if (total >= options_.obs.slow_query_ns) {
        obs::SlowQuery slow;
        slow.form = cached->form_label;
        slow.seed = SeedToString(*program_.universe(), bound_values);
        slow.total_ns = total;
        slow.spans = trace->spans();
        slow_log_.Record(std::move(slow));
      }
    }
    pending_.fetch_sub(1, std::memory_order_relaxed);
    done(std::move(answer));
  });
}

void QueryService::Dispatch(const QueryRequest& request, AnswerSink sink,
                            bool enforce_admission, Completion done) {
  // Base-predicate queries are direct selections over the EDB; any strategy
  // serves them without compilation.
  if (!program_.IsHeadPredicate(request.query.goal.pred)) {
    if (!Admit(enforce_admission)) {
      done(OverloadedAnswer());
      return;
    }
    const auto admitted = std::chrono::steady_clock::now();
    pool_.Submit([this, query = request.query, limits = request.limits,
                  sink = std::move(sink), done = std::move(done), admitted] {
      const std::shared_ptr<const DatabaseVersion> pinned = versions_.Pin();
      if (limits.deadline.has_value() &&
          std::chrono::steady_clock::now() >= admitted + *limits.deadline) {
        deadline_shed_->Add();
        queries_served_->Add();
        pending_.fetch_sub(1, std::memory_order_relaxed);
        done(DeadlineShedAnswer());
        return;
      }
      QueryEngine engine(options_.engine);
      QueryAnswer answer = engine.Run(program_, query, pinned->db(), limits,
                                      sink, admitted);
      queries_served_->Add();
      if (options_.obs.enabled) {
        request_latency_->Record(obs::Trace::NowNs() - ToNs(admitted));
      }
      pending_.fetch_sub(1, std::memory_order_relaxed);
      done(std::move(answer));
    });
    return;
  }

  // Every derived-predicate strategy — rewriting or not — resolves to a
  // compiled plan; there is no exclusive-locked fallback path anymore.
  const FormKey key = MakeKey(request);
  bool compiled = false;
  const uint64_t compile_start =
      options_.obs.enabled ? obs::Trace::NowNs() : 0;
  CachedForm* cached = GetOrCompile(request, key, &compiled);
  obs::Span compile_span{};
  if (compiled && options_.obs.enabled) {
    compile_span =
        obs::Span{obs::Stage::kCompile, compile_start, obs::Trace::NowNs()};
    compile_latency_->Record(compile_span.end_ns - compile_span.start_ns);
  }
  if (cached->form == nullptr) {
    QueryAnswer answer;
    answer.status = cached->error;
    answer.outcome = AnswerStatus::kError;
    answer.strategy_name = StrategyName(key.strategy);
    queries_served_->Add();
    done(std::move(answer));
    return;
  }

  std::vector<TermId> bound_values;
  for (size_t i = 0; i < request.query.goal.args.size(); ++i) {
    if (key.bound_mask & (uint64_t{1} << i)) {
      bound_values.push_back(request.query.goal.args[i]);
    }
  }
  DispatchForm(cached, std::move(bound_values), request.limits,
               std::move(sink), enforce_admission, std::move(done),
               std::nullopt, compile_span);
}

Result<QueryService::FormHandle> QueryService::Prepare(
    const QueryRequest& request) {
  if (!program_.IsHeadPredicate(request.query.goal.pred)) {
    return Status::InvalidArgument(
        "base-predicate queries need no preparation; use Submit/Answer "
        "directly");
  }
  CachedForm* cached = GetOrCompile(request, MakeKey(request));
  if (cached->form == nullptr) return cached->error;
  FormHandle handle;
  handle.cached_ = cached;
  return handle;
}

std::future<QueryAnswer> QueryService::SubmitImpl(const QueryRequest& request,
                                                  bool enforce_admission) {
  auto promise = std::make_shared<std::promise<QueryAnswer>>();
  std::future<QueryAnswer> future = promise->get_future();
  Dispatch(request, {}, enforce_admission,
           [promise](QueryAnswer answer) {
             promise->set_value(std::move(answer));
           });
  return future;
}

std::future<QueryAnswer> QueryService::SubmitImpl(
    const FormHandle& handle, std::vector<TermId> bound_values,
    QueryLimits limits, bool enforce_admission) {
  auto promise = std::make_shared<std::promise<QueryAnswer>>();
  std::future<QueryAnswer> future = promise->get_future();
  if (!handle.valid()) {
    QueryAnswer answer;
    answer.status = Status::InvalidArgument("invalid form handle");
    answer.outcome = AnswerStatus::kError;
    promise->set_value(std::move(answer));
    return future;
  }
  DispatchForm(handle.cached_, std::move(bound_values), std::move(limits),
               {}, enforce_admission, [promise](QueryAnswer answer) {
                 promise->set_value(std::move(answer));
               });
  return future;
}

std::future<QueryAnswer> QueryService::Submit(const QueryRequest& request) {
  return SubmitImpl(request, /*enforce_admission=*/false);
}

std::future<QueryAnswer> QueryService::Submit(
    const FormHandle& handle, std::vector<TermId> bound_values,
    QueryLimits limits) {
  return SubmitImpl(handle, std::move(bound_values), std::move(limits),
                    /*enforce_admission=*/false);
}

std::future<QueryAnswer> QueryService::TrySubmit(const QueryRequest& request) {
  return SubmitImpl(request, /*enforce_admission=*/true);
}

std::future<QueryAnswer> QueryService::TrySubmit(
    const FormHandle& handle, std::vector<TermId> bound_values,
    QueryLimits limits) {
  return SubmitImpl(handle, std::move(bound_values), std::move(limits),
                    /*enforce_admission=*/true);
}

QueryAnswer QueryService::Answer(const QueryRequest& request) {
  return Submit(request).get();
}

QueryAnswer QueryService::Answer(const FormHandle& handle,
                                 std::vector<TermId> bound_values,
                                 QueryLimits limits) {
  return Submit(handle, std::move(bound_values), std::move(limits)).get();
}

std::shared_ptr<AnswerCursor::State> QueryService::MakeStreamState(
    QueryLimits* limits, AnswerSink* sink, Completion* done) {
  auto state = std::make_shared<AnswerCursor::State>();
  if (limits->cancel == nullptr) {
    limits->cancel = std::make_shared<std::atomic<bool>>(false);
  }
  state->cancel = limits->cancel;
  *sink = [state](const std::vector<TermId>& tuple) {
    {
      MutexLock lock(state->mutex);
      state->buffer.push_back(tuple);
    }
    state->ready.notify_all();
    return true;
  };
  *done = [state](QueryAnswer answer) {
    // Sink-fed answers arrive with empty tuples (the AnswerSink contract:
    // everything was streamed); the clear covers inline error paths that
    // never evaluated.
    answer.tuples.clear();
    {
      MutexLock lock(state->mutex);
      state->final = std::move(answer);
      state->done = true;
    }
    state->ready.notify_all();
  };
  return state;
}

AnswerCursor QueryService::Stream(const QueryRequest& request) {
  QueryRequest streamed = request;
  AnswerSink sink;
  Completion done;
  auto state = MakeStreamState(&streamed.limits, &sink, &done);
  Dispatch(streamed, std::move(sink), /*enforce_admission=*/false,
           std::move(done));
  return AnswerCursor(std::move(state));
}

AnswerCursor QueryService::Stream(const FormHandle& handle,
                                  std::vector<TermId> bound_values,
                                  QueryLimits limits) {
  AnswerSink sink;
  Completion done;
  auto state = MakeStreamState(&limits, &sink, &done);
  if (!handle.valid()) {
    QueryAnswer answer;
    answer.status = Status::InvalidArgument("invalid form handle");
    answer.outcome = AnswerStatus::kError;
    done(std::move(answer));
    return AnswerCursor(std::move(state));
  }
  DispatchForm(handle.cached_, std::move(bound_values), std::move(limits),
               std::move(sink), /*enforce_admission=*/false, std::move(done));
  return AnswerCursor(std::move(state));
}

std::vector<QueryAnswer> QueryService::AnswerBatch(
    const std::vector<QueryRequest>& batch) {
  std::vector<std::future<QueryAnswer>> futures;
  futures.reserve(batch.size());
  for (const QueryRequest& request : batch) {
    futures.push_back(Submit(request));
  }
  std::vector<QueryAnswer> answers;
  answers.reserve(batch.size());
  for (std::future<QueryAnswer>& future : futures) {
    answers.push_back(future.get());
  }
  return answers;
}

Result<WriteResult> QueryService::ApplyWrites(const WriteBatch& batch) {
  if (mutable_db_ == nullptr) {
    return Status::FailedPrecondition(
        "service was constructed over a const Database; in-band writes "
        "need the mutable-Database constructor");
  }
  // Validate before queueing: a malformed batch must never hold a commit
  // ticket (or even enqueue behind one).
  MAGIC_RETURN_IF_ERROR(batch.Validate(*program_.universe()));
  // Multi-writer FIFO fairness: each writer takes a ticket under
  // commit_mutex_ and commits strictly in ticket order. The commit itself
  // runs OUTSIDE the mutex — the ticket already guarantees exclusion — so
  // the gauge and the wait below measure pure queueing, never the
  // predecessor's publish work under a held lock.
  uint64_t ticket;
  {
    MutexLock lock(commit_mutex_);
    ticket = commit_next_ticket_++;
    writes_queued_gauge_->Add(1);
    while (ticket != commit_serving_) commit_turn_.wait(lock);
    writes_queued_gauge_->Add(-1);
  }
  // Build version N+1 and publish it with one release store. No drain:
  // in-flight fixpoints keep their pinned snapshots (the storage layer
  // clones any relation a snapshot still shares before mutating it), so
  // publish latency is independent of the longest-running evaluation.
  Stopwatch publish;
  WriteResult result = versions_.Commit(*mutable_db_, batch);
  write_publish_->Record(
      static_cast<uint64_t>(publish.ElapsedSeconds() * 1e9));
  writes_applied_->Add();
  {
    MutexLock lock(commit_mutex_);
    ++commit_serving_;
  }
  commit_turn_.notify_all();
  return result;
}

QueryService::Stats::Totals QueryService::Stats::totals() const {
  Totals totals;
  for (const FormStats& form : forms) {
    totals.queries += form.queries;
    totals.rows += form.rows;
    totals.truncated += form.truncated;
    totals.eval_micros += form.eval_micros;
  }
  return totals;
}

std::string QueryService::Stats::Summary() const {
  const Totals all = totals();
  char buffer[768];
  std::snprintf(
      buffer, sizeof(buffer),
      "%zu form(s) compiled, %zu form-cache hit(s); answer cache: "
      "%" PRIu64 " hit(s), %" PRIu64 " miss(es), %zu served from cache "
      "(%zu subsumed), %" PRIu64 " eviction(s), %zu/%zu byte(s); "
      "served %zu (%zu coalesced, %zu deadline-shed, %zu overloaded); "
      "latency p50/p99 %.3f/%.3f ms over %" PRIu64 " request(s); "
      "%zu write batch(es) applied (publish %.3f ms); "
      "form rows %" PRIu64 " (%" PRIu64 " truncated); %zu slow quer(ies)",
      forms_compiled, form_cache_hits, answer_cache.hits,
      answer_cache.misses, answers_from_cache, answers_subsumed,
      answer_cache.evictions, answer_cache.bytes, answer_cache.max_bytes,
      queries_served, coalesced, deadline_shed, overloaded,
      request_latency.Quantile(0.5) / 1e6,
      request_latency.Quantile(0.99) / 1e6, request_latency.count,
      writes_applied, static_cast<double>(write_publish.sum) / 1e6, all.rows,
      all.truncated, slow_queries.size());
  return buffer;
}

namespace {

/// The flat counters both JSON shapes share. Key names are the historical
/// JsonFragment contract the bench trajectory lines parse;
/// `write_publish_ns` is the build+publish *sum* (it replaced the retired
/// `write_drain_ns` when writes stopped draining readers) even though the
/// full distribution now rides in Json()'s histogram object.
void WriteFragmentKeys(const QueryService::Stats& stats, JsonWriter& w) {
  const QueryService::Stats::Totals all = stats.totals();
  w.Key("forms_compiled").Uint(stats.forms_compiled);
  w.Key("form_cache_hits").Uint(stats.form_cache_hits);
  w.Key("answer_hits").Uint(stats.answer_cache.hits);
  w.Key("answer_misses").Uint(stats.answer_cache.misses);
  w.Key("answers_from_cache").Uint(stats.answers_from_cache);
  w.Key("answers_subsumed").Uint(stats.answers_subsumed);
  w.Key("coalesced").Uint(stats.coalesced);
  w.Key("deadline_shed").Uint(stats.deadline_shed);
  w.Key("writes_applied").Uint(stats.writes_applied);
  w.Key("write_publish_ns").Uint(stats.write_publish.sum);
  w.Key("versions_published").Uint(stats.versions_published);
  w.Key("answer_evictions").Uint(stats.answer_cache.evictions);
  w.Key("answer_bytes").Uint(stats.answer_cache.bytes);
  w.Key("form_rows").Uint(all.rows);
  w.Key("form_truncated").Uint(all.truncated);
}

void WriteHistogramJson(const obs::HistogramSnapshot& h, JsonWriter& w) {
  w.BeginObject();
  w.Key("count").Uint(h.count);
  w.Key("sum_ns").Uint(h.sum);
  w.Key("p50_ns").Double(h.Quantile(0.5));
  w.Key("p95_ns").Double(h.Quantile(0.95));
  w.Key("p99_ns").Double(h.Quantile(0.99));
  w.EndObject();
}

}  // namespace

std::string QueryService::Stats::JsonFragment() const {
  JsonWriter w;  // fragment mode: no outer braces
  WriteFragmentKeys(*this, w);
  return w.str();
}

std::string QueryService::Stats::Json() const {
  JsonWriter w;
  w.BeginObject();
  WriteFragmentKeys(*this, w);
  w.Key("queries_served").Uint(queries_served);
  w.Key("overloaded").Uint(overloaded);
  w.Key("pending").Uint(pending);
  w.Key("request_latency");
  WriteHistogramJson(request_latency, w);
  w.Key("write_publish");
  WriteHistogramJson(write_publish, w);
  w.Key("forms").BeginArray();
  for (const FormStats& form : forms) {
    w.BeginObject();
    w.Key("pred").String(form.pred);
    w.Key("adornment").String(form.adornment);
    w.Key("strategy").String(form.strategy);
    w.Key("sip").String(form.sip);
    w.Key("queries").Uint(form.queries);
    w.Key("rows").Uint(form.rows);
    w.Key("truncated").Uint(form.truncated);
    w.Key("eval_micros").Uint(form.eval_micros);
    w.Key("eval_latency");
    WriteHistogramJson(form.eval_latency, w);
    w.Key("cache_inline_latency");
    WriteHistogramJson(form.inline_latency, w);
    w.Key("profile").BeginArray();
    for (const RuleProfileEntry& entry : form.profile) {
      w.BeginObject();
      w.Key("rule").String(entry.rule);
      w.Key("evals").Uint(entry.counts.evals);
      w.Key("firings").Uint(entry.counts.firings);
      w.Key("new_facts").Uint(entry.counts.new_facts);
      w.Key("duplicate_facts").Uint(entry.counts.duplicate_facts);
      w.Key("join_probes").Uint(entry.counts.join_probes);
      w.Key("delta_rows").Uint(entry.counts.delta_rows);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.Key("slow_queries").BeginArray();
  for (const obs::SlowQuery& slow : slow_queries) {
    w.BeginObject();
    w.Key("form").String(slow.form);
    w.Key("seed").String(slow.seed);
    w.Key("total_ns").Uint(slow.total_ns);
    w.Key("sequence").Uint(slow.sequence);
    w.Key("spans").BeginArray();
    for (const obs::Span& span : slow.spans) {
      w.BeginObject();
      w.Key("stage").String(obs::StageName(span.stage));
      w.Key("start_ns").Uint(span.start_ns);
      w.Key("end_ns").Uint(span.end_ns);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

QueryService::Stats QueryService::stats() const {
  Stats stats;
  stats.forms_compiled = static_cast<size_t>(forms_compiled_->value());
  stats.form_cache_hits = static_cast<size_t>(form_cache_hits_->value());
  stats.queries_served = static_cast<size_t>(queries_served_->value());
  stats.overloaded = static_cast<size_t>(overloaded_->value());
  stats.answers_from_cache =
      static_cast<size_t>(answers_from_cache_->value());
  stats.answers_subsumed = static_cast<size_t>(answers_subsumed_->value());
  stats.coalesced = static_cast<size_t>(coalesced_->value());
  stats.deadline_shed = static_cast<size_t>(deadline_shed_->value());
  stats.writes_applied = static_cast<size_t>(writes_applied_->value());
  stats.pending = pending_.load(std::memory_order_relaxed);
  stats.write_publish = write_publish_->Snapshot();
  stats.versions_published = static_cast<size_t>(versions_.versions_published());
  stats.versions_retired = static_cast<size_t>(versions_.versions_retired());
  stats.writes_queued = static_cast<size_t>(writes_queued_gauge_->value());
  stats.request_latency = request_latency_->Snapshot();
  stats.answer_cache = cache_.stats();
  stats.slow_queries = slow_log_.Snapshot();
  MutexLock lock(form_mutex_);
  for (const auto& [key, cached] : forms_) {
    if (cached.form == nullptr) continue;
    Stats::FormStats form_stats;
    form_stats.pred = cached.pred_name;
    form_stats.adornment = cached.form->adornment().ToString();
    form_stats.strategy = cached.strategy;
    form_stats.sip = cached.sip;
    form_stats.queries = cached.queries->value();
    form_stats.rows = cached.rows->value();
    form_stats.truncated = cached.truncated->value();
    form_stats.eval_latency = cached.eval_latency->Snapshot();
    form_stats.inline_latency = cached.inline_latency->Snapshot();
    form_stats.eval_micros = form_stats.eval_latency.sum / 1000;
    const std::vector<std::string>& rule_labels =
        cached.form->plan().rule_labels;
    form_stats.profile.reserve(cached.rule_counters.size());
    for (size_t i = 0; i < cached.rule_counters.size(); ++i) {
      const RuleCounters& rc = cached.rule_counters[i];
      RuleProfile counts;
      counts.evals = rc.evals->value();
      counts.firings = rc.firings->value();
      counts.new_facts = rc.new_facts->value();
      counts.duplicate_facts = rc.duplicate_facts->value();
      counts.join_probes = rc.join_probes->value();
      counts.delta_rows = rc.delta_rows->value();
      form_stats.profile.push_back(RuleProfileEntry{
          i < rule_labels.size() ? rule_labels[i] : std::string(), counts});
    }
    stats.forms.push_back(std::move(form_stats));
  }
  return stats;
}

std::string QueryService::MetricsText() const {
  // Refresh the scrape-time mirrors, then render everything the registry
  // holds — service counters, latency histograms, per-form and per-rule
  // counters — through the one exposition path.
  pending_gauge_->Set(
      static_cast<int64_t>(pending_.load(std::memory_order_relaxed)));
  const AnswerCache::Stats cache_stats = cache_.stats();
  cache_entries_gauge_->Set(static_cast<int64_t>(cache_stats.entries));
  cache_bytes_gauge_->Set(static_cast<int64_t>(cache_stats.bytes));
  const uint64_t live = versions_.versions_live();
  versions_live_gauge_->Set(static_cast<int64_t>(live));
  // Pinned = live minus the chain head itself (which is always alive).
  versions_pinned_gauge_->Set(live > 0 ? static_cast<int64_t>(live - 1) : 0);
  return metrics_.PrometheusText();
}

}  // namespace magic
