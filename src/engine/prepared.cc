#include "engine/prepared.h"

namespace magic {

Result<PreparedQueryForm> PreparedQueryForm::Prepare(
    const Program& program, const Query& exemplar,
    const EngineOptions& options) {
  Result<std::shared_ptr<const CompiledPlan>> plan =
      CompiledPlan::Compile(program, exemplar, options);
  if (!plan.ok()) return plan.status();
  PreparedQueryForm form;
  form.plan_ = std::move(*plan);
  return form;
}

QueryAnswer PreparedQueryForm::Answer(const std::vector<TermId>& bound_values,
                                      const Database& db) const {
  return plan_->Answer(bound_values, db, QueryLimits{});
}

QueryAnswer PreparedQueryForm::Answer(
    const std::vector<TermId>& bound_values, const Database& db,
    const QueryLimits& limits, const AnswerSink& sink,
    std::optional<std::chrono::steady_clock::time_point> admitted) const {
  return plan_->Answer(bound_values, db, limits, sink, admitted);
}

}  // namespace magic
