#include "engine/prepared.h"

#include "util/check.h"

namespace magic {

Result<PreparedQueryForm> PreparedQueryForm::Prepare(
    const Program& program, const Query& exemplar,
    const EngineOptions& options) {
  if (!IsRewritingStrategy(options.strategy)) {
    return Status::InvalidArgument(
        "PreparedQueryForm requires a rewriting strategy (got " +
        StrategyName(options.strategy) + ")");
  }
  std::unique_ptr<SipStrategy> sip = MakeSipStrategy(options.sip);
  if (sip == nullptr) {
    return Status::InvalidArgument("unknown sip strategy: " + options.sip);
  }
  Result<AdornedProgram> adorned = Adorn(program, exemplar, *sip);
  if (!adorned.ok()) return adorned.status();
  Result<RewrittenProgram> rewritten =
      QueryEngine::Rewrite(*adorned, options.strategy, options.guard_mode);
  if (!rewritten.ok()) return rewritten.status();

  PreparedQueryForm form;
  form.universe_ = program.universe();
  form.exemplar_ = exemplar;
  form.adornment_ = adorned->query_adornment;
  for (size_t i = 0; i < exemplar.goal.args.size(); ++i) {
    if (form.adornment_.bound(i)) {
      form.bound_positions_.push_back(static_cast<int>(i));
    }
  }
  form.rewritten_ = std::move(*rewritten);
  form.eval_options_ = options.eval;
  return form;
}

bool PreparedQueryForm::fully_free() const {
  if (!bound_positions_.empty()) return false;
  const auto& args = exemplar_.goal.args;
  for (size_t i = 0; i < args.size(); ++i) {
    if (universe_->terms().Get(args[i]).kind != TermKind::kVariable) {
      return false;
    }
    for (size_t j = 0; j < i; ++j) {
      if (args[j] == args[i]) return false;  // repeated variable
    }
  }
  return true;
}

QueryAnswer PreparedQueryForm::Answer(const std::vector<TermId>& bound_values,
                                      const Database& db) const {
  return Answer(bound_values, db, QueryLimits{});
}

QueryAnswer PreparedQueryForm::Answer(
    const std::vector<TermId>& bound_values, const Database& db,
    const QueryLimits& limits, const AnswerSink& sink,
    std::optional<std::chrono::steady_clock::time_point> admitted) const {
  QueryAnswer answer;
  answer.strategy_name = rewritten_.strategy_name;
  if (bound_values.size() != bound_positions_.size()) {
    answer.status = Status::InvalidArgument(
        "query form " + adornment_.ToString() + " takes " +
        std::to_string(bound_positions_.size()) + " bound value(s), got " +
        std::to_string(bound_values.size()));
    answer.outcome = AnswerStatus::kError;
    return answer;
  }
  Universe& u = *universe_;
  Query instance = exemplar_;
  for (size_t i = 0; i < bound_values.size(); ++i) {
    if (!u.terms().IsGround(bound_values[i])) {
      answer.status =
          Status::InvalidArgument("bound values must be ground terms");
      answer.outcome = AnswerStatus::kError;
      return answer;
    }
    instance.goal.args[bound_positions_[i]] = bound_values[i];
  }
  std::vector<Fact> seeds = MakeSeeds(rewritten_, instance, u);
  EvalOptions eval_options = eval_options_;
  if (limits.max_facts.has_value()) eval_options.max_facts = *limits.max_facts;
  Evaluator evaluator(eval_options);

  const bool controlled = limits.NeedsControl() || static_cast<bool>(sink);
  if (!controlled) {
    EvalResult result = evaluator.Run(rewritten_.program, db, seeds);
    answer.status = result.status;
    answer.eval_stats = result.stats;
    answer.total_facts = result.TotalFacts();
    answer.tuples = ExtractAnswers(u, rewritten_, instance, result);
    answer.outcome = ClassifyOutcome(result.stop_reason, answer.status);
    return answer;
  }

  // Bounded/streaming path: filter and project answer rows as they are
  // derived, so the fixpoint aborts the moment the caller has enough.
  AnswerProjector projector =
      AnswerProjector::ForRewritten(u, rewritten_, instance);
  AnswerCollector collector(limits.row_limit, sink ? &sink : nullptr);
  EvalControl control;
  control.sink_pred = rewritten_.answer_pred;
  control.on_fact = MakeAnswerHook(projector, collector);
  if (limits.deadline.has_value()) {
    control.deadline =
        admitted.value_or(std::chrono::steady_clock::now()) + *limits.deadline;
  }
  if (limits.cancel != nullptr) control.cancel = limits.cancel.get();

  EvalResult result = evaluator.Run(rewritten_.program, db, seeds, &control);
  answer.status = result.status;
  answer.eval_stats = result.stats;
  answer.total_facts = result.TotalFacts();
  if (!sink) answer.tuples = collector.TakeSorted();
  answer.outcome = ClassifyOutcome(result.stop_reason, answer.status);
  return answer;
}

}  // namespace magic
