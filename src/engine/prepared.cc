#include "engine/prepared.h"

#include "util/check.h"

namespace magic {

Result<PreparedQueryForm> PreparedQueryForm::Prepare(
    const Program& program, const Query& exemplar,
    const EngineOptions& options) {
  switch (options.strategy) {
    case Strategy::kMagic:
    case Strategy::kSupplementaryMagic:
    case Strategy::kCounting:
    case Strategy::kSupplementaryCounting:
    case Strategy::kCountingSemijoin:
    case Strategy::kSupCountingSemijoin:
      break;
    default:
      return Status::InvalidArgument(
          "PreparedQueryForm requires a rewriting strategy (got " +
          StrategyName(options.strategy) + ")");
  }
  std::unique_ptr<SipStrategy> sip = MakeSipStrategy(options.sip);
  if (sip == nullptr) {
    return Status::InvalidArgument("unknown sip strategy: " + options.sip);
  }
  Result<AdornedProgram> adorned = Adorn(program, exemplar, *sip);
  if (!adorned.ok()) return adorned.status();
  Result<RewrittenProgram> rewritten =
      QueryEngine::Rewrite(*adorned, options.strategy, options.guard_mode);
  if (!rewritten.ok()) return rewritten.status();

  PreparedQueryForm form;
  form.universe_ = program.universe();
  form.exemplar_ = exemplar;
  form.adornment_ = adorned->query_adornment;
  for (size_t i = 0; i < exemplar.goal.args.size(); ++i) {
    if (form.adornment_.bound(i)) {
      form.bound_positions_.push_back(static_cast<int>(i));
    }
  }
  form.rewritten_ = std::move(*rewritten);
  form.eval_options_ = options.eval;
  return form;
}

QueryAnswer PreparedQueryForm::Answer(const std::vector<TermId>& bound_values,
                                      const Database& db) const {
  QueryAnswer answer;
  answer.strategy_name = rewritten_.strategy_name;
  if (bound_values.size() != bound_positions_.size()) {
    answer.status = Status::InvalidArgument(
        "query form " + adornment_.ToString() + " takes " +
        std::to_string(bound_positions_.size()) + " bound value(s), got " +
        std::to_string(bound_values.size()));
    return answer;
  }
  Universe& u = *universe_;
  Query instance = exemplar_;
  for (size_t i = 0; i < bound_values.size(); ++i) {
    if (!u.terms().IsGround(bound_values[i])) {
      answer.status =
          Status::InvalidArgument("bound values must be ground terms");
      return answer;
    }
    instance.goal.args[bound_positions_[i]] = bound_values[i];
  }
  std::vector<Fact> seeds = MakeSeeds(rewritten_, instance, u);
  Evaluator evaluator(eval_options_);
  EvalResult result = evaluator.Run(rewritten_.program, db, seeds);
  answer.status = result.status;
  answer.eval_stats = result.stats;
  answer.total_facts = result.TotalFacts();
  answer.tuples = ExtractAnswers(u, rewritten_, instance, result);
  return answer;
}

}  // namespace magic
