#include "engine/compiled_plan.h"

#include <algorithm>

#include "ast/printer.h"
#include "util/check.h"

namespace magic {

namespace {

/// True when every goal argument is a distinct plain variable. A repeated
/// variable (p(X,X)) or a non-ground compound (p(f(X),Y)) also has zero
/// bound positions, yet restricts the answer set — so "fully free" is a
/// property of the exemplar's shape, not of bound_arity() == 0.
bool ComputeFullyFree(const Universe& u, const Query& exemplar,
                      const std::vector<int>& bound_positions) {
  if (!bound_positions.empty()) return false;
  const auto& args = exemplar.goal.args;
  for (size_t i = 0; i < args.size(); ++i) {
    if (u.terms().Get(args[i]).kind != TermKind::kVariable) return false;
    for (size_t j = 0; j < i; ++j) {
      if (args[j] == args[i]) return false;  // repeated variable
    }
  }
  return true;
}

/// Pairs the compile-time rule labels with one run's per-rule counters.
void FillPlanProfile(const std::vector<std::string>& labels,
                     const std::vector<RuleProfile>& profiles,
                     QueryAnswer* answer) {
  const size_t n = std::min(labels.size(), profiles.size());
  answer->profile.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    answer->profile.push_back(RuleProfileEntry{labels[i], profiles[i]});
  }
}

}  // namespace

Result<std::shared_ptr<const CompiledPlan>> CompiledPlan::Compile(
    const Program& program, const Query& exemplar,
    const EngineOptions& options) {
  if (exemplar.goal.pred == kInvalidPred) {
    return Status::InvalidArgument("query has no predicate");
  }
  if (!program.IsHeadPredicate(exemplar.goal.pred)) {
    return Status::InvalidArgument(
        "query predicate is not derived by the program; base-predicate "
        "queries are answered directly from the database");
  }

  auto plan = std::make_shared<CompiledPlan>();
  // All compilation output (adorned/magic/supplementary predicate
  // declarations, mangled symbol names, fresh variables) lands in this
  // overlay; the base universe underneath is frozen and shared.
  plan->universe =
      std::make_shared<Universe>(std::shared_ptr<const Universe>(
          program.universe()));
  plan->strategy = options.strategy;
  plan->exemplar = exemplar;
  plan->eval_options = options.eval;

  // The input rules re-bound to the plan universe: every id they carry is a
  // base id, which the overlay resolves identically.
  Program plan_program(plan->universe);
  plan_program.rules() = program.rules();

  const Universe& u = *plan->universe;
  switch (options.strategy) {
    case Strategy::kNaiveBottomUp:
    case Strategy::kSemiNaiveBottomUp: {
      plan->adornment = QueryAdornment(u, exemplar);
      plan->eval_options.seminaive =
          options.strategy == Strategy::kSemiNaiveBottomUp;
      plan->original = std::move(plan_program);
      break;
    }
    case Strategy::kTopDown: {
      std::unique_ptr<SipStrategy> sip = MakeSipStrategy(options.sip);
      if (sip == nullptr) {
        return Status::InvalidArgument("unknown sip strategy: " + options.sip);
      }
      Result<AdornedProgram> adorned = Adorn(plan_program, exemplar, *sip);
      if (!adorned.ok()) return adorned.status();
      plan->adornment = adorned->query_adornment;
      plan->adorned = std::move(*adorned);
      break;
    }
    default: {
      std::unique_ptr<SipStrategy> sip = MakeSipStrategy(options.sip);
      if (sip == nullptr) {
        return Status::InvalidArgument("unknown sip strategy: " + options.sip);
      }
      Result<AdornedProgram> adorned = Adorn(plan_program, exemplar, *sip);
      if (!adorned.ok()) return adorned.status();
      Result<RewrittenProgram> rewritten = QueryEngine::Rewrite(
          *adorned, options.strategy, options.guard_mode);
      if (!rewritten.ok()) return rewritten.status();
      plan->adornment = adorned->query_adornment;
      plan->rewritten = std::move(*rewritten);
      break;
    }
  }

  for (size_t i = 0; i < exemplar.goal.args.size(); ++i) {
    if (plan->adornment.bound(i)) {
      plan->bound_positions.push_back(static_cast<int>(i));
    }
  }
  plan->fully_free = ComputeFullyFree(u, exemplar, plan->bound_positions);

  // Print the evaluated program's rules once, at compile time, so the
  // per-request profile path never touches the printer.
  const Program& evaluated = plan->original.has_value() ? *plan->original
                             : plan->adorned.has_value()
                                 ? plan->adorned->program
                                 : plan->rewritten.program;
  plan->rule_labels.reserve(evaluated.rules().size());
  for (const Rule& rule : evaluated.rules()) {
    plan->rule_labels.push_back(RuleToString(u, rule));
  }

  // Bottom-up strategies: compile the evaluated program's join programs
  // once, here, so Answer() never re-analyzes rules. Seed predicates are
  // known at compile time (the rewrite's seed template), which is what
  // lets literal IDB/EDB classification be static. Provenance-tracking
  // plans keep the interpreter (it owns the match-trace machinery).
  if (!plan->eval_options.track_provenance &&
      options.strategy != Strategy::kTopDown) {
    std::vector<PredId> seed_preds;
    if (!plan->original.has_value() && plan->rewritten.seed.has_value()) {
      seed_preds.push_back(plan->rewritten.seed->pred);
    }
    const Program& bottom_up =
        plan->original.has_value() ? *plan->original : plan->rewritten.program;
    plan->join_program = std::make_shared<const JoinProgram>(
        JoinProgram::Compile(bottom_up, seed_preds));
  }
  return std::shared_ptr<const CompiledPlan>(std::move(plan));
}

QueryAnswer CompiledPlan::Answer(
    const std::vector<TermId>& bound_values, const Database& db,
    const QueryLimits& limits, const AnswerSink& sink,
    std::optional<std::chrono::steady_clock::time_point> admitted) const {
  QueryAnswer answer;
  answer.strategy_name = IsRewritingStrategy(strategy)
                             ? rewritten.strategy_name
                             : StrategyName(strategy);
  if (bound_values.size() != bound_positions.size()) {
    answer.status = Status::InvalidArgument(
        "query form " + adornment.ToString() + " takes " +
        std::to_string(bound_positions.size()) + " bound value(s), got " +
        std::to_string(bound_values.size()));
    answer.outcome = AnswerStatus::kError;
    return answer;
  }
  const Universe& u = *universe;
  // Per-request scratch: the instance query and everything derived from it.
  Query instance = exemplar;
  for (size_t i = 0; i < bound_values.size(); ++i) {
    if (!u.terms().IsGround(bound_values[i])) {
      answer.status =
          Status::InvalidArgument("bound values must be ground terms");
      answer.outcome = AnswerStatus::kError;
      return answer;
    }
    instance.goal.args[static_cast<size_t>(bound_positions[i])] =
        bound_values[i];
  }

  EvalOptions instance_options = eval_options;
  if (limits.max_facts.has_value()) {
    instance_options.max_facts = *limits.max_facts;
  }
  // `hooked` = the evaluation streams answers through the collector hook
  // (limits that stop early, or a sink). `controlled` additionally covers
  // trace-only requests: they need the EvalControl carrier for the
  // fixpoint span, but keep the hook-free extraction path — tracing must
  // not change how answers are produced.
  const bool hooked = limits.row_limit != 0 || limits.deadline.has_value() ||
                      limits.cancel != nullptr || static_cast<bool>(sink);
  const bool controlled = hooked || limits.trace != nullptr;
  AnswerCollector collector(limits.row_limit, sink ? &sink : nullptr);
  EvalControl control;
  if (limits.deadline.has_value()) {
    control.deadline =
        admitted.value_or(std::chrono::steady_clock::now()) + *limits.deadline;
  }
  if (limits.cancel != nullptr) control.cancel = limits.cancel.get();
  control.trace = limits.trace;

  switch (strategy) {
    case Strategy::kNaiveBottomUp:
    case Strategy::kSemiNaiveBottomUp: {
      AnswerProjector projector = AnswerProjector::ForDirect(u, instance);
      if (hooked) {
        control.sink_pred = instance.goal.pred;
        control.on_fact = MakeAnswerHook(projector, collector);
      }
      Evaluator evaluator(instance_options);
      EvalResult result =
          join_program != nullptr
              ? evaluator.Run(*join_program, u, db, {},
                              controlled ? &control : nullptr)
              : evaluator.Run(*original, db, {},
                              controlled ? &control : nullptr);
      answer.status = result.status;
      answer.eval_stats = result.stats;
      answer.total_facts = result.TotalFacts();
      if (hooked) {
        if (!sink) answer.tuples = collector.TakeSorted();
      } else {
        auto it = result.idb.find(instance.goal.pred);
        answer.tuples = ExtractDirectAnswers(
            u, instance, it == result.idb.end() ? nullptr : &it->second);
      }
      answer.outcome = ClassifyOutcome(result.stop_reason, answer.status);
      FillPlanProfile(rule_labels, result.rule_profiles, &answer);
      return answer;
    }
    case Strategy::kTopDown: {
      AnswerProjector projector = AnswerProjector::ForDirect(u, instance);
      if (hooked) {
        control.sink_pred = adorned->query_pred;
        control.on_fact = MakeAnswerHook(projector, collector);
      }
      TopDownEngine engine(instance_options);
      TopDownResult result =
          engine.Run(*adorned, instance, db, controlled ? &control : nullptr);
      answer.status = result.status;
      answer.topdown_stats = result.stats;
      answer.total_facts = result.stats.answers;
      if (hooked) {
        if (!sink) answer.tuples = collector.TakeSorted();
      } else {
        std::vector<int> free_positions = QueryFreePositions(u, instance);
        for (const std::vector<TermId>& row :
             result.QueryAnswers(u, instance, adorned->query_pred)) {
          std::vector<TermId> tuple;
          for (int p : free_positions) tuple.push_back(row[p]);
          answer.tuples.push_back(std::move(tuple));
        }
        std::sort(answer.tuples.begin(), answer.tuples.end());
        answer.tuples.erase(
            std::unique(answer.tuples.begin(), answer.tuples.end()),
            answer.tuples.end());
      }
      answer.outcome = ClassifyOutcome(result.stop_reason, answer.status);
      FillPlanProfile(rule_labels, result.rule_profiles, &answer);
      return answer;
    }
    default:
      break;  // rewriting strategies, below
  }

  std::vector<Fact> seeds = MakeSeeds(rewritten, instance, u);
  Evaluator evaluator(instance_options);
  auto run_rewritten = [&](const EvalControl* ctl) {
    return join_program != nullptr
               ? evaluator.Run(*join_program, u, db, seeds, ctl)
               : evaluator.Run(rewritten.program, db, seeds, ctl);
  };
  if (!controlled) {
    EvalResult result = run_rewritten(nullptr);
    answer.status = result.status;
    answer.eval_stats = result.stats;
    answer.total_facts = result.TotalFacts();
    answer.tuples = ExtractAnswers(u, rewritten, instance, result);
    answer.outcome = ClassifyOutcome(result.stop_reason, answer.status);
    FillPlanProfile(rule_labels, result.rule_profiles, &answer);
    return answer;
  }

  // Bounded/streaming path: filter and project answer rows as they are
  // derived, so the fixpoint aborts the moment the caller has enough.
  // (Trace-only controlled runs skip the hook and extract afterwards.)
  AnswerProjector projector =
      AnswerProjector::ForRewritten(u, rewritten, instance);
  if (hooked) {
    control.sink_pred = rewritten.answer_pred;
    control.on_fact = MakeAnswerHook(projector, collector);
  }
  EvalResult result = run_rewritten(&control);
  answer.status = result.status;
  answer.eval_stats = result.stats;
  answer.total_facts = result.TotalFacts();
  if (hooked) {
    if (!sink) answer.tuples = collector.TakeSorted();
  } else {
    answer.tuples = ExtractAnswers(u, rewritten, instance, result);
  }
  answer.outcome = ClassifyOutcome(result.stop_reason, answer.status);
  FillPlanProfile(rule_labels, result.rule_profiles, &answer);
  return answer;
}

}  // namespace magic
