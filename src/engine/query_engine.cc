#include "engine/query_engine.h"

#include <algorithm>
#include <set>

#include "ast/printer.h"
#include "util/check.h"

namespace magic {

namespace {

/// Single source of truth for strategy names; the CLI parses with
/// StrategyFromName against this same table.
constexpr std::pair<Strategy, const char*> kStrategyNames[] = {
    {Strategy::kNaiveBottomUp, "naive"},
    {Strategy::kSemiNaiveBottomUp, "seminaive"},
    {Strategy::kMagic, "gms"},
    {Strategy::kSupplementaryMagic, "gsms"},
    {Strategy::kCounting, "gc"},
    {Strategy::kSupplementaryCounting, "gsc"},
    {Strategy::kCountingSemijoin, "gc+sj"},
    {Strategy::kSupCountingSemijoin, "gsc+sj"},
    {Strategy::kTopDown, "topdown"},
};

}  // namespace

std::string StrategyName(Strategy strategy) {
  for (const auto& [value, name] : kStrategyNames) {
    if (value == strategy) return name;
  }
  return "?";
}

std::optional<Strategy> StrategyFromName(const std::string& name) {
  for (const auto& [value, table_name] : kStrategyNames) {
    if (name == table_name) return value;
  }
  return std::nullopt;
}

std::span<const std::pair<Strategy, const char*>> StrategyNames() {
  return kStrategyNames;
}

bool IsRewritingStrategy(Strategy strategy) {
  switch (strategy) {
    case Strategy::kMagic:
    case Strategy::kSupplementaryMagic:
    case Strategy::kCounting:
    case Strategy::kSupplementaryCounting:
    case Strategy::kCountingSemijoin:
    case Strategy::kSupCountingSemijoin:
      return true;
    default:
      return false;
  }
}

AnswerStatus ClassifyOutcome(StopReason stop, const Status& status) {
  switch (stop) {
    case StopReason::kSink: return AnswerStatus::kTruncated;
    case StopReason::kDeadline: return AnswerStatus::kDeadlineExceeded;
    case StopReason::kCancelled: return AnswerStatus::kCancelled;
    case StopReason::kNone: break;
  }
  return status.ok() ? AnswerStatus::kOk : AnswerStatus::kError;
}

namespace {

std::vector<std::vector<TermId>> SortedUnique(
    std::vector<std::vector<TermId>> tuples) {
  std::sort(tuples.begin(), tuples.end());
  tuples.erase(std::unique(tuples.begin(), tuples.end()), tuples.end());
  return tuples;
}

/// Pairs each per-rule profile with the rule's text from the program the
/// engine evaluated (not the user's source program — the rewritten rules
/// are the ones whose cost is being attributed).
void FillProfile(const Universe& u, const Program& evaluated,
                 const std::vector<RuleProfile>& profiles,
                 QueryAnswer* answer) {
  answer->profile.reserve(profiles.size());
  for (size_t i = 0; i < profiles.size(); ++i) {
    answer->profile.push_back(
        RuleProfileEntry{RuleToString(u, evaluated.rules()[i]), profiles[i]});
  }
}

}  // namespace

AnswerProjector AnswerProjector::ForRewritten(
    const Universe& u, const RewrittenProgram& rewritten, const Query& query) {
  AnswerProjector p;
  TermId zero = u.Integer(0);
  for (uint32_t f = 0; f < rewritten.answer_index_fields; ++f) {
    p.required_.emplace_back(static_cast<int>(f), zero);
  }
  for (size_t pos = 0; pos < query.goal.args.size(); ++pos) {
    int col = rewritten.answer_positions[pos];
    if (u.terms().IsGround(query.goal.args[pos])) {
      // The semijoin optimization may have dropped this bound column.
      if (col >= 0) p.bound_checks_.emplace_back(col, query.goal.args[pos]);
    } else {
      MAGIC_CHECK_MSG(col >= 0, "free query positions are never dropped");
      p.free_columns_.push_back(col);
    }
  }
  return p;
}

AnswerProjector AnswerProjector::ForDirect(const Universe& u,
                                           const Query& query) {
  AnswerProjector p;
  for (size_t pos = 0; pos < query.goal.args.size(); ++pos) {
    if (u.terms().IsGround(query.goal.args[pos])) {
      p.bound_checks_.emplace_back(static_cast<int>(pos),
                                   query.goal.args[pos]);
    } else {
      p.free_columns_.push_back(static_cast<int>(pos));
    }
  }
  return p;
}

bool AnswerProjector::Project(std::span<const TermId> tuple,
                              std::vector<TermId>* out) const {
  for (const auto& [col, term] : required_) {
    if (tuple[col] != term) return false;
  }
  for (const auto& [col, term] : bound_checks_) {
    if (tuple[col] != term) return false;
  }
  out->clear();
  for (int col : free_columns_) out->push_back(tuple[col]);
  return true;
}

bool AnswerCollector::Accept(std::vector<TermId> tuple) {
  if (truncated_) return false;
  auto [it, inserted] = seen_.insert(std::move(tuple));
  if (!inserted) return true;
  if (sink_ != nullptr && *sink_ && !(*sink_)(*it)) {
    truncated_ = true;
    return false;
  }
  if (row_limit_ != 0 && seen_.size() >= row_limit_) {
    truncated_ = true;
    return false;
  }
  return true;
}

std::function<bool(std::span<const TermId>)> MakeAnswerHook(
    const AnswerProjector& projector, AnswerCollector& collector) {
  return [&projector, &collector,
          projected = std::vector<TermId>()](
             std::span<const TermId> row) mutable {
    if (!projector.Project(row, &projected)) return true;
    return collector.Accept(projected);
  };
}

std::vector<std::vector<TermId>> AnswerCollector::TakeSorted() {
  // std::set of vectors iterates in lexicographic order — exactly the
  // sorted/deduplicated order ExtractAnswers produces after the fact.
  std::vector<std::vector<TermId>> out;
  out.reserve(seen_.size());
  for (auto it = seen_.begin(); it != seen_.end();) {
    out.push_back(std::move(seen_.extract(it++).value()));
  }
  return out;
}

std::vector<std::vector<TermId>> ExtractAnswers(
    const Universe& u, const RewrittenProgram& rewritten, const Query& query,
    const EvalResult& eval) {
  std::vector<std::vector<TermId>> out;
  auto it = eval.idb.find(rewritten.answer_pred);
  if (it == eval.idb.end()) return out;
  const Relation& rel = it->second;
  AnswerProjector projector =
      AnswerProjector::ForRewritten(u, rewritten, query);
  std::vector<TermId> projected;
  for (size_t row = 0; row < rel.size(); ++row) {
    if (projector.Project(rel.Row(row), &projected)) {
      out.push_back(projected);
    }
  }
  return SortedUnique(std::move(out));
}

std::vector<std::vector<TermId>> ExtractDirectAnswers(const Universe& u,
                                                      const Query& query,
                                                      const Relation* rel) {
  std::vector<std::vector<TermId>> out;
  if (rel == nullptr) return out;
  AnswerProjector projector = AnswerProjector::ForDirect(u, query);
  std::vector<TermId> projected;
  for (size_t row = 0; row < rel->size(); ++row) {
    if (projector.Project(rel->Row(row), &projected)) {
      out.push_back(projected);
    }
  }
  return SortedUnique(std::move(out));
}

Result<RewrittenProgram> QueryEngine::Rewrite(const AdornedProgram& adorned,
                                              Strategy strategy,
                                              GuardMode guard_mode) {
  switch (strategy) {
    case Strategy::kMagic: {
      MagicOptions options;
      options.guard_mode = guard_mode;
      return MagicSetsRewrite(adorned, options);
    }
    case Strategy::kSupplementaryMagic: {
      return SupplementaryMagicRewrite(adorned);
    }
    case Strategy::kCounting:
    case Strategy::kCountingSemijoin: {
      CountingOptions options;
      options.guard_mode = guard_mode;
      Result<CountingProgram> counting = CountingRewrite(adorned, options);
      if (!counting.ok()) return counting.status();
      if (strategy == Strategy::kCounting) {
        return counting->rewritten;
      }
      Result<CountingProgram> optimized =
          ApplySemijoinOptimization(*counting);
      if (!optimized.ok()) return optimized.status();
      return optimized->rewritten;
    }
    case Strategy::kSupplementaryCounting:
    case Strategy::kSupCountingSemijoin: {
      Result<CountingProgram> counting =
          SupplementaryCountingRewrite(adorned);
      if (!counting.ok()) return counting.status();
      if (strategy == Strategy::kSupplementaryCounting) {
        return counting->rewritten;
      }
      Result<CountingProgram> optimized =
          ApplySemijoinOptimization(*counting);
      if (!optimized.ok()) return optimized.status();
      return optimized->rewritten;
    }
    default:
      return Status::InvalidArgument(
          "strategy is not a rewriting strategy: " + StrategyName(strategy));
  }
}

QueryAnswer QueryEngine::Run(const Program& program, const Query& query,
                             const Database& db) const {
  return Run(program, query, db, QueryLimits{});
}

QueryAnswer QueryEngine::Run(
    const Program& program, const Query& query, const Database& db,
    const QueryLimits& limits, const AnswerSink& sink,
    std::optional<std::chrono::steady_clock::time_point> admitted) const {
  QueryAnswer answer;
  answer.strategy_name = StrategyName(options_.strategy);
  Universe& u = *program.universe();

  // When any bound or sink is active, evaluation runs under an EvalControl
  // whose on_fact hook filters/projects answer rows as they are derived;
  // otherwise the legacy extract-after-fixpoint path runs unchanged.
  const bool controlled = limits.NeedsControl() || static_cast<bool>(sink);
  AnswerCollector collector(limits.row_limit, sink ? &sink : nullptr);
  EvalControl control;
  if (limits.deadline.has_value()) {
    control.deadline =
        admitted.value_or(std::chrono::steady_clock::now()) + *limits.deadline;
  }
  if (limits.cancel != nullptr) control.cancel = limits.cancel.get();
  control.trace = limits.trace;
  EvalOptions eval_options = options_.eval;
  if (limits.max_facts.has_value()) eval_options.max_facts = *limits.max_facts;

  // Base-predicate queries are direct selections (any strategy).
  if (!program.IsHeadPredicate(query.goal.pred)) {
    answer.status = Status::OK();
    if (!controlled) {
      answer.tuples = ExtractDirectAnswers(u, query, db.Find(query.goal.pred));
      return answer;
    }
    const Relation* rel = db.Find(query.goal.pred);
    AnswerProjector projector = AnswerProjector::ForDirect(u, query);
    auto accept = MakeAnswerHook(projector, collector);
    StopReason stop = PollEvalControl(&control);
    for (size_t row = 0;
         stop == StopReason::kNone && rel != nullptr && row < rel->size();
         ++row) {
      if ((row & 0xFFF) == 0xFFF) stop = PollEvalControl(&control);
      if (stop == StopReason::kNone && !accept(rel->Row(row))) {
        stop = StopReason::kSink;
      }
    }
    if (!sink) answer.tuples = collector.TakeSorted();
    if (stop == StopReason::kDeadline) {
      answer.status = Status::DeadlineExceeded("selection deadline exceeded");
    } else if (stop == StopReason::kCancelled) {
      answer.status = Status::Cancelled("selection cancelled");
    }
    answer.outcome = ClassifyOutcome(stop, answer.status);
    return answer;
  }

  if (options_.strategy == Strategy::kNaiveBottomUp ||
      options_.strategy == Strategy::kSemiNaiveBottomUp) {
    eval_options.seminaive =
        options_.strategy == Strategy::kSemiNaiveBottomUp;
    AnswerProjector projector = AnswerProjector::ForDirect(u, query);
    if (controlled) {
      control.sink_pred = query.goal.pred;
      control.on_fact = MakeAnswerHook(projector, collector);
    }
    Evaluator evaluator(eval_options);
    EvalResult result =
        evaluator.Run(program, db, {}, controlled ? &control : nullptr);
    answer.status = result.status;
    answer.eval_stats = result.stats;
    answer.total_facts = result.TotalFacts();
    if (controlled) {
      if (!sink) answer.tuples = collector.TakeSorted();
    } else {
      auto it = result.idb.find(query.goal.pred);
      answer.tuples = ExtractDirectAnswers(
          u, query, it == result.idb.end() ? nullptr : &it->second);
    }
    answer.outcome = ClassifyOutcome(result.stop_reason, answer.status);
    FillProfile(u, program, result.rule_profiles, &answer);
    if (options_.explain) {
      answer.rewritten_text = ProgramToString(program);
    }
    return answer;
  }

  // All remaining strategies start from the adorned program.
  std::unique_ptr<SipStrategy> sip_strategy = MakeSipStrategy(options_.sip);
  if (sip_strategy == nullptr) {
    answer.status =
        Status::InvalidArgument("unknown sip strategy: " + options_.sip);
    answer.outcome = AnswerStatus::kError;
    return answer;
  }
  Result<AdornedProgram> adorned = Adorn(program, query, *sip_strategy);
  if (!adorned.ok()) {
    answer.status = adorned.status();
    answer.outcome = AnswerStatus::kError;
    return answer;
  }

  if (options_.static_safety_check) {
    bool counting = options_.strategy == Strategy::kCounting ||
                    options_.strategy == Strategy::kSupplementaryCounting ||
                    options_.strategy == Strategy::kCountingSemijoin ||
                    options_.strategy == Strategy::kSupCountingSemijoin;
    SafetyReport report = counting ? CheckCountingSafety(*adorned)
                                   : CheckMagicSafety(*adorned);
    answer.safety_note = SafetyVerdictName(report.verdict) + ": " +
                         report.explanation;
    if (report.verdict == SafetyVerdict::kUnsafeCountingCycle) {
      answer.status = Status::Unsafe(answer.safety_note);
      answer.outcome = AnswerStatus::kError;
      return answer;
    }
  }

  if (options_.strategy == Strategy::kTopDown) {
    AnswerProjector projector =
        AnswerProjector::ForDirect(u, adorned->query);
    if (controlled) {
      control.sink_pred = adorned->query_pred;
      control.on_fact = MakeAnswerHook(projector, collector);
    }
    TopDownEngine engine(eval_options);
    TopDownResult result =
        engine.Run(*adorned, db, controlled ? &control : nullptr);
    answer.status = result.status;
    answer.topdown_stats = result.stats;
    answer.total_facts = result.stats.answers;
    if (controlled) {
      if (!sink) answer.tuples = collector.TakeSorted();
    } else {
      std::vector<int> free_positions = QueryFreePositions(u, query);
      for (const std::vector<TermId>& row :
           result.QueryAnswers(u, *adorned, adorned->query_pred)) {
        std::vector<TermId> tuple;
        for (int p : free_positions) tuple.push_back(row[p]);
        answer.tuples.push_back(std::move(tuple));
      }
      answer.tuples = SortedUnique(std::move(answer.tuples));
    }
    answer.outcome = ClassifyOutcome(result.stop_reason, answer.status);
    FillProfile(u, adorned->program, result.rule_profiles, &answer);
    if (options_.explain) {
      answer.rewritten_text = ProgramToString(adorned->program);
    }
    return answer;
  }

  Result<RewrittenProgram> rewritten =
      Rewrite(*adorned, options_.strategy, options_.guard_mode);
  if (!rewritten.ok()) {
    answer.status = rewritten.status();
    answer.outcome = AnswerStatus::kError;
    return answer;
  }
  std::vector<Fact> seeds = MakeSeeds(*rewritten, query, u);
  AnswerProjector projector =
      AnswerProjector::ForRewritten(u, *rewritten, query);
  if (controlled) {
    control.sink_pred = rewritten->answer_pred;
    control.on_fact = MakeAnswerHook(projector, collector);
  }
  Evaluator evaluator(eval_options);
  EvalResult result = evaluator.Run(rewritten->program, db, seeds,
                                    controlled ? &control : nullptr);
  answer.status = result.status;
  answer.eval_stats = result.stats;
  answer.total_facts = result.TotalFacts();
  if (controlled) {
    if (!sink) answer.tuples = collector.TakeSorted();
  } else {
    answer.tuples = ExtractAnswers(u, *rewritten, query, result);
  }
  answer.outcome = ClassifyOutcome(result.stop_reason, answer.status);
  FillProfile(u, rewritten->program, result.rule_profiles, &answer);
  if (options_.explain) {
    answer.rewritten_text = ProgramToString(rewritten->program);
  }
  return answer;
}

}  // namespace magic
