#include "engine/query_engine.h"

#include <algorithm>
#include <set>

#include "ast/printer.h"
#include "util/check.h"

namespace magic {

std::string StrategyName(Strategy strategy) {
  switch (strategy) {
    case Strategy::kNaiveBottomUp: return "naive";
    case Strategy::kSemiNaiveBottomUp: return "seminaive";
    case Strategy::kMagic: return "gms";
    case Strategy::kSupplementaryMagic: return "gsms";
    case Strategy::kCounting: return "gc";
    case Strategy::kSupplementaryCounting: return "gsc";
    case Strategy::kCountingSemijoin: return "gc+sj";
    case Strategy::kSupCountingSemijoin: return "gsc+sj";
    case Strategy::kTopDown: return "topdown";
  }
  return "?";
}

namespace {

std::vector<std::vector<TermId>> SortedUnique(
    std::vector<std::vector<TermId>> tuples) {
  std::sort(tuples.begin(), tuples.end());
  tuples.erase(std::unique(tuples.begin(), tuples.end()), tuples.end());
  return tuples;
}

/// Answers from a direct (non-rewritten) evaluation: select rows of the
/// query predicate matching the bound constants, project free positions.
std::vector<std::vector<TermId>> ExtractDirect(Universe& u,
                                               const Query& query,
                                               const Relation* rel) {
  std::vector<std::vector<TermId>> out;
  if (rel == nullptr) return out;
  std::vector<int> free_positions = QueryFreePositions(u, query);
  for (size_t row = 0; row < rel->size(); ++row) {
    std::span<const TermId> tuple = rel->Row(row);
    bool match = true;
    for (size_t a = 0; a < query.goal.args.size(); ++a) {
      if (u.terms().IsGround(query.goal.args[a]) &&
          tuple[a] != query.goal.args[a]) {
        match = false;
        break;
      }
    }
    if (!match) continue;
    std::vector<TermId> answer;
    for (int p : free_positions) answer.push_back(tuple[p]);
    out.push_back(std::move(answer));
  }
  return SortedUnique(std::move(out));
}

}  // namespace

std::vector<std::vector<TermId>> ExtractAnswers(
    Universe& u, const RewrittenProgram& rewritten, const Query& query,
    const EvalResult& eval) {
  std::vector<std::vector<TermId>> out;
  auto it = eval.idb.find(rewritten.answer_pred);
  if (it == eval.idb.end()) return out;
  const Relation& rel = it->second;
  TermId zero = u.Integer(0);
  std::vector<int> free_positions = QueryFreePositions(u, query);
  for (size_t row = 0; row < rel.size(); ++row) {
    std::span<const TermId> tuple = rel.Row(row);
    bool match = true;
    for (uint32_t f = 0; f < rewritten.answer_index_fields; ++f) {
      if (tuple[f] != zero) {
        match = false;
        break;
      }
    }
    if (!match) continue;
    for (size_t p = 0; p < query.goal.args.size() && match; ++p) {
      if (!u.terms().IsGround(query.goal.args[p])) continue;
      int col = rewritten.answer_positions[p];
      if (col >= 0 && tuple[col] != query.goal.args[p]) match = false;
    }
    if (!match) continue;
    std::vector<TermId> answer;
    bool complete = true;
    for (int p : free_positions) {
      int col = rewritten.answer_positions[p];
      MAGIC_CHECK_MSG(col >= 0, "free query positions are never dropped");
      answer.push_back(tuple[col]);
      (void)complete;
    }
    out.push_back(std::move(answer));
  }
  return SortedUnique(std::move(out));
}

Result<RewrittenProgram> QueryEngine::Rewrite(const AdornedProgram& adorned,
                                              Strategy strategy,
                                              GuardMode guard_mode) {
  switch (strategy) {
    case Strategy::kMagic: {
      MagicOptions options;
      options.guard_mode = guard_mode;
      return MagicSetsRewrite(adorned, options);
    }
    case Strategy::kSupplementaryMagic: {
      return SupplementaryMagicRewrite(adorned);
    }
    case Strategy::kCounting:
    case Strategy::kCountingSemijoin: {
      CountingOptions options;
      options.guard_mode = guard_mode;
      Result<CountingProgram> counting = CountingRewrite(adorned, options);
      if (!counting.ok()) return counting.status();
      if (strategy == Strategy::kCounting) {
        return counting->rewritten;
      }
      Result<CountingProgram> optimized =
          ApplySemijoinOptimization(*counting);
      if (!optimized.ok()) return optimized.status();
      return optimized->rewritten;
    }
    case Strategy::kSupplementaryCounting:
    case Strategy::kSupCountingSemijoin: {
      Result<CountingProgram> counting =
          SupplementaryCountingRewrite(adorned);
      if (!counting.ok()) return counting.status();
      if (strategy == Strategy::kSupplementaryCounting) {
        return counting->rewritten;
      }
      Result<CountingProgram> optimized =
          ApplySemijoinOptimization(*counting);
      if (!optimized.ok()) return optimized.status();
      return optimized->rewritten;
    }
    default:
      return Status::InvalidArgument(
          "strategy is not a rewriting strategy: " + StrategyName(strategy));
  }
}

QueryAnswer QueryEngine::Run(const Program& program, const Query& query,
                             const Database& db) const {
  QueryAnswer answer;
  answer.strategy_name = StrategyName(options_.strategy);
  Universe& u = *program.universe();

  // Base-predicate queries are direct selections (any strategy).
  if (!program.IsHeadPredicate(query.goal.pred)) {
    answer.tuples = ExtractDirect(u, query, db.Find(query.goal.pred));
    answer.status = Status::OK();
    return answer;
  }

  if (options_.strategy == Strategy::kNaiveBottomUp ||
      options_.strategy == Strategy::kSemiNaiveBottomUp) {
    EvalOptions eval_options = options_.eval;
    eval_options.seminaive =
        options_.strategy == Strategy::kSemiNaiveBottomUp;
    Evaluator evaluator(eval_options);
    EvalResult result = evaluator.Run(program, db);
    answer.status = result.status;
    answer.eval_stats = result.stats;
    answer.total_facts = result.TotalFacts();
    auto it = result.idb.find(query.goal.pred);
    answer.tuples = ExtractDirect(
        u, query, it == result.idb.end() ? nullptr : &it->second);
    if (options_.explain) {
      answer.rewritten_text = ProgramToString(program);
    }
    return answer;
  }

  // All remaining strategies start from the adorned program.
  std::unique_ptr<SipStrategy> sip = MakeSipStrategy(options_.sip);
  if (sip == nullptr) {
    answer.status =
        Status::InvalidArgument("unknown sip strategy: " + options_.sip);
    return answer;
  }
  Result<AdornedProgram> adorned = Adorn(program, query, *sip);
  if (!adorned.ok()) {
    answer.status = adorned.status();
    return answer;
  }

  if (options_.static_safety_check) {
    bool counting = options_.strategy == Strategy::kCounting ||
                    options_.strategy == Strategy::kSupplementaryCounting ||
                    options_.strategy == Strategy::kCountingSemijoin ||
                    options_.strategy == Strategy::kSupCountingSemijoin;
    SafetyReport report = counting ? CheckCountingSafety(*adorned)
                                   : CheckMagicSafety(*adorned);
    answer.safety_note = SafetyVerdictName(report.verdict) + ": " +
                         report.explanation;
    if (report.verdict == SafetyVerdict::kUnsafeCountingCycle) {
      answer.status = Status::Unsafe(answer.safety_note);
      return answer;
    }
  }

  if (options_.strategy == Strategy::kTopDown) {
    TopDownEngine engine(options_.eval);
    TopDownResult result = engine.Run(*adorned, db);
    answer.status = result.status;
    answer.topdown_stats = result.stats;
    answer.total_facts = result.stats.answers;
    std::vector<int> free_positions = QueryFreePositions(u, query);
    for (const std::vector<TermId>& row :
         result.QueryAnswers(u, *adorned, adorned->query_pred)) {
      std::vector<TermId> tuple;
      for (int p : free_positions) tuple.push_back(row[p]);
      answer.tuples.push_back(std::move(tuple));
    }
    answer.tuples = SortedUnique(std::move(answer.tuples));
    if (options_.explain) {
      answer.rewritten_text = ProgramToString(adorned->program);
    }
    return answer;
  }

  Result<RewrittenProgram> rewritten =
      Rewrite(*adorned, options_.strategy, options_.guard_mode);
  if (!rewritten.ok()) {
    answer.status = rewritten.status();
    return answer;
  }
  std::vector<Fact> seeds = MakeSeeds(*rewritten, query, u);
  Evaluator evaluator(options_.eval);
  EvalResult result = evaluator.Run(rewritten->program, db, seeds);
  answer.status = result.status;
  answer.eval_stats = result.stats;
  answer.total_facts = result.TotalFacts();
  answer.tuples = ExtractAnswers(u, *rewritten, query, result);
  if (options_.explain) {
    answer.rewritten_text = ProgramToString(rewritten->program);
  }
  return answer;
}

}  // namespace magic
