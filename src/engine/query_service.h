#ifndef MAGIC_ENGINE_QUERY_SERVICE_H_
#define MAGIC_ENGINE_QUERY_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cache/answer_cache.h"
#include "engine/prepared.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/database.h"
#include "storage/db_version.h"
#include "storage/write_batch.h"
#include "util/annotated_mutex.h"
#include "util/thread_pool.h"

namespace magic {

/// One query plus optional per-request overrides of the service defaults
/// and per-request resource bounds.
struct QueryRequest {
  Query query;
  std::optional<Strategy> strategy;
  std::optional<std::string> sip;
  QueryLimits limits;
};

struct QueryServiceOptions {
  /// Worker threads; 0 means std::thread::hardware_concurrency().
  size_t num_threads = 0;
  /// Admission control: maximum requests submitted-but-not-finished before
  /// TrySubmit answers kOverloaded. 0 = unbounded (TrySubmit never
  /// rejects). Plain Submit always queues regardless.
  size_t max_pending = 0;
  /// Byte budget of the cross-query AnswerCache (memoized completed
  /// answers keyed by form, seed, and database epoch). 0 disables
  /// memoization entirely. Warm hits are served inline on the calling
  /// thread — no worker, no admission slot.
  size_t cache_bytes = size_t{64} << 20;
  /// Subsumption fast path: when the exact (form, seed) entry misses but
  /// the same predicate's fully-free form has a cached complete answer
  /// set for the current epoch, serve the bound instance by filtering it
  /// (and promote the filtered result to an exact entry).
  bool cache_subsumption = true;
  /// Request coalescing: when an identical (form, seed) instance is
  /// already evaluating, park the duplicate until the first evaluation
  /// fills the AnswerCache instead of evaluating it again. Requires the
  /// cache (a parked request is served from the leader's fill); with
  /// cache_bytes = 0 coalescing is off regardless.
  bool coalesce_requests = true;
  /// Defaults for requests that don't override strategy/sip; `eval` and
  /// `guard_mode` always come from here.
  EngineOptions engine;
  /// Latency/trace recording knobs. Counters and fixpoint profiles are
  /// always on; `obs.enabled` gates the clock reads (histograms, spans)
  /// and the slow-query ring.
  obs::ObservabilityOptions obs;
};

/// A pull-based stream over one query's answers, fed by the evaluator's
/// answer sink while the fixpoint is still running. Tuples arrive in
/// derivation order, deduplicated but NOT sorted (sorting requires the full
/// set). Move-only; dropping an unfinished cursor cancels its evaluation.
///
/// Next() may be called from one consumer thread; Cancel() from any thread.
class AnswerCursor {
 public:
  AnswerCursor() = default;
  ~AnswerCursor();
  AnswerCursor(AnswerCursor&&) = default;
  /// Cancels the stream currently held (if any) before taking `other`'s,
  /// so reassigning a cursor variable never leaks a running evaluation.
  AnswerCursor& operator=(AnswerCursor&& other) noexcept;
  AnswerCursor(const AnswerCursor&) = delete;
  AnswerCursor& operator=(const AnswerCursor&) = delete;

  /// Pulls up to `max_rows` (>= 1) more tuples into `*out` (cleared first),
  /// blocking until at least one is available or evaluation completes.
  /// Returns false — with `*out` empty — once the stream is exhausted.
  bool Next(size_t max_rows, std::vector<std::vector<TermId>>* out);

  /// Blocks until evaluation completes and returns the final answer
  /// (status/outcome/eval stats). Its `tuples` are empty: they were
  /// streamed through Next().
  const QueryAnswer& Finish();

  /// Requests cooperative cancellation; the evaluation stops at its next
  /// control poll and Finish() reports kCancelled.
  void Cancel();

 private:
  friend class QueryService;
  struct State {
    Mutex mutex{lock_rank::kCursor};
    /// _any variant: it waits on the annotated MutexLock guard itself, so
    /// the rank checker and the static analysis both see the release/
    /// reacquire pair a wait performs.
    std::condition_variable_any ready;
    std::deque<std::vector<TermId>> buffer GUARDED_BY(mutex);
    bool done GUARDED_BY(mutex) = false;
    QueryAnswer final GUARDED_BY(mutex);
    std::shared_ptr<std::atomic<bool>> cancel;
  };
  explicit AnswerCursor(std::shared_ptr<State> state)
      : state_(std::move(state)) {}

  std::shared_ptr<State> state_;
};

/// Serves many concurrent queries against one shared Database, versioned
/// through an MVCC chain: every evaluation runs against an immutable
/// pinned snapshot while writers publish new versions without waiting.
///
/// The paper's compile-once/query-many reading of magic sets (Section 4's
/// query forms) is the seam this exploits: each distinct query form —
/// (predicate, adornment, strategy, sip) — is compiled exactly once via
/// PreparedQueryForm::Prepare and cached, and every instance of the form is
/// just a per-query seed over the same compiled plan. This now holds for
/// *every* strategy: naive/semi-naive/top-down compile to plans too (the
/// plan is the original/adorned program plus the instance machinery), so
/// there is no exclusive-locked fallback path — all strategies serve in
/// parallel against pinned snapshots. Per-query seeds are independent
/// (Drabent, arXiv:1012.2299), so instances evaluate concurrently on a
/// fixed thread pool without re-running the transformation — and can stop
/// early (row limits, deadlines, cancellation) without affecting any other
/// instance.
///
/// Two tiers of API:
///   * Request tier: Submit/TrySubmit/Answer/AnswerBatch/Stream take a
///     QueryRequest, resolve its form through the cache (one mutex
///     round-trip), compiling on the calling thread if needed.
///   * Handle tier: Prepare returns a FormHandle; the Submit/TrySubmit/
///     Answer/Stream overloads taking a handle skip form hashing and the
///     cache mutex entirely — the steady-state hot path is one version
///     pin (an atomic load) plus pool dispatch.
///
/// Both tiers sit behind the cross-query AnswerCache: a completed clean
/// answer (outcome kOk) is memoized under (form, seed, database version),
/// and a repeated seed is then served inline on the calling thread — no
/// worker, no admission slot. Any net EDB write publishes a new version
/// and makes every earlier entry unreachable, so alternating write/serve
/// phases never see stale answers. Truncated, deadline-expired, cancelled,
/// and failed answers are never cached; base-predicate requests bypass the
/// cache. Two requests for an identical (form, seed) miss that are in
/// flight at once coalesce: the first evaluates and fills, the duplicate
/// parks and is served from the fill (see coalesce_requests).
///
/// The EDB is not frozen for the service's lifetime: ApplyWrites is the
/// sanctioned in-band mutation point, and it never waits for readers. It
/// takes a FIFO commit ticket (writers serialize among themselves, in
/// arrival order), builds the next database version off to the side —
/// every relation still shared with a pinned snapshot is cloned before it
/// is mutated — and publishes it with a single atomic store. In-flight
/// evaluations keep their pinned version to completion; there is no drain
/// and no stop-the-world window, so writer publish latency is independent
/// of the longest-running fixpoint. Correctness rides on the paper's
/// equivalence being per database instance (Bancilhon et al. §4; Drabent,
/// arXiv:1012.2299): the compiled plans never depend on the EDB contents,
/// so each evaluation is a pure function of the version it pinned — a
/// dispatch concurrent with a commit legally sees version N or N+1, never
/// a torn mix.
///
/// Concurrency contract:
///   * The Program must outlive the service and must not be mutated while
///     it exists; the Database must outlive it too, and may be mutated
///     ONLY through ApplyWrites (in-band) or at externally synchronized
///     quiescent points (no requests in flight) — the latter remains
///     allowed but discouraged now that the in-band path exists. Either
///     way the next request observes the new version and re-evaluates
///     (quiescent-point writes are picked up by the version chain's
///     resync on the next dispatch).
///   * All public methods may be called from any number of threads.
///     Writers never block readers; readers never block writers. Writers
///     serialize FIFO on the commit ticket.
///   * Form compilation — including top-down adornment and the rewrites'
///     declarations — writes only into the plan's own Universe overlay
///     (the base Universe is frozen underneath it), so compiling needs no
///     universe lock and runs concurrently with all in-flight evaluation,
///     serialized only on the form-cache mutex.
///   * The request path takes NO service-wide lock: a worker pins the
///     current DatabaseVersion (one atomic load) and evaluates against
///     that immutable snapshot. ApplyWrites holds commit_mutex_ only to
///     take/redeem its ticket and touches no dispatch state while
///     committing — machine-checked: it is EXCLUDES(commit_mutex_,
///     form_mutex_, inflight_mutex_), and the commit tier ranks above
///     form/inflight in the Debug rank checker (util/annotated_mutex.h),
///     so the reverse nesting aborts.
///   * Workers key every AnswerCache fill to the version they pinned —
///     by construction the data they actually read. The lock-free inline
///     hit path probes at the chain's current version number; serving a
///     hit concurrent with a publish is linearizable (the read overlapped
///     the write), and post-write reads are fresh because publish
///     happens-before ApplyWrites returns.
///   * Worker-side term interning (the matcher's affine/compound
///     construction) is safe because TermArena is internally synchronized.
///   * Answer sinks and cursor buffers are touched only by the evaluating
///     worker and the consumer, under the cursor's own mutex.
///   * Lock order: inflight_mutex_ -> form_mutex_ -> commit tier
///     (commit_mutex_, then the version chain's resync mutex) -> data
///     plane (symbol/relation-index/cache-shard) -> pool/cursor
///     internals. The order is encoded as lock ranks
///     (util/annotated_mutex.h) and asserted on every acquisition in
///     Debug builds.
class QueryService {
 private:
  struct CachedForm;

 public:
  /// An opaque, copyable reference to one compiled query form. Valid for
  /// the lifetime of the service that returned it; handles are stable
  /// across cache growth and shareable between threads.
  class FormHandle {
   public:
    FormHandle() = default;
    bool valid() const { return cached_ != nullptr; }
    /// The adornment of the compiled form (e.g. "bf").
    const Adornment& adornment() const;
    /// Number of bound values an instance of this form takes.
    size_t bound_arity() const;

   private:
    friend class QueryService;
    CachedForm* cached_ = nullptr;
  };

  QueryService(const Program& program, const Database& db,
               QueryServiceOptions options = {});
  /// Same service over a database the caller lets it mutate: ApplyWrites
  /// becomes available. (With the const overload above, ApplyWrites
  /// reports FailedPrecondition — a read-only service cannot write.)
  QueryService(const Program& program, Database& db,
               QueryServiceOptions options = {});
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Compiles (or fetches from the cache) the query form of
  /// `request.query`'s binding pattern and returns a stable handle to it.
  /// Requires a derived-predicate query (base-predicate queries need no
  /// preparation; Submit serves them directly). Every strategy compiles —
  /// naive/semi-naive/top-down handles serve against pinned snapshots
  /// like the rewriting ones.
  Result<FormHandle> Prepare(const QueryRequest& request);

  /// Enqueues one query; the future resolves when a worker has evaluated
  /// it. Compilation of a not-yet-cached form happens on the calling
  /// thread. `request.limits` are enforced during evaluation; the deadline
  /// is anchored here, so queue wait counts against it (a request whose
  /// deadline expires before a worker picks it up completes
  /// kDeadlineExceeded without entering the fixpoint).
  std::future<QueryAnswer> Submit(const QueryRequest& request);

  /// Handle hot path: evaluates one instance of a prepared form. Skips the
  /// form cache entirely. `bound_values` are the constants for the form's
  /// bound positions, in position order.
  std::future<QueryAnswer> Submit(const FormHandle& handle,
                                  std::vector<TermId> bound_values,
                                  QueryLimits limits = {});

  /// Admission-controlled variants: when options.max_pending > 0 and that
  /// many requests are in flight, the future resolves immediately with
  /// outcome kOverloaded (status ResourceExhausted) instead of queueing.
  std::future<QueryAnswer> TrySubmit(const QueryRequest& request);
  std::future<QueryAnswer> TrySubmit(const FormHandle& handle,
                                     std::vector<TermId> bound_values,
                                     QueryLimits limits = {});

  /// Answers one request synchronously. (The old pre-handle
  /// `Answer(const Query&)` shim is gone: callers build a QueryRequest —
  /// which is where limits/strategy overrides belong — or use the handle
  /// tier below. Both funnel through the same SubmitImpl.)
  QueryAnswer Answer(const QueryRequest& request);
  QueryAnswer Answer(const FormHandle& handle,
                     std::vector<TermId> bound_values,
                     QueryLimits limits = {});

  /// Streams one query's answers in chunks while it evaluates, instead of
  /// materializing the full sorted answer set first. If `limits.cancel` is
  /// null a token is created so the cursor can cancel its evaluation.
  AnswerCursor Stream(const QueryRequest& request);
  AnswerCursor Stream(const FormHandle& handle,
                      std::vector<TermId> bound_values,
                      QueryLimits limits = {});

  /// Answers a batch; answers are returned in input order. Queries of the
  /// batch evaluate concurrently across the pool.
  std::vector<QueryAnswer> AnswerBatch(const std::vector<QueryRequest>& batch);

  /// The in-band EDB write path: validates `batch` (declared arities,
  /// groundness — rejected batches never queue), takes a FIFO commit
  /// ticket (concurrent writers commit in arrival order; a burst cannot
  /// starve one session — queue depth is the `magicdb_writes_queued`
  /// gauge), then builds and publishes the next database version: each
  /// relation still shared with a pinned snapshot is cloned before
  /// mutation, each NET-mutated relation's epoch bumps exactly once, its
  /// probe indices are rebuilt, and iff anything net-changed the new
  /// version is published with one atomic store. In-flight evaluations
  /// are never waited on and keep their pinned snapshots; AnswerCache
  /// entries keyed to older versions become unreachable at publish, and a
  /// no-op batch (duplicate-only, or net-zero including Clear-then-
  /// identical-reinsert) publishes nothing and invalidates nothing.
  /// Callable from any thread, including concurrently with Submit/Answer/
  /// Stream. Requires the mutable-Database constructor.
  ///
  /// EXCLUDES names the dispatch tier plus the ticket lock: ApplyWrites
  /// must enter with none of them held, and the committing writer touches
  /// no dispatch state (commit ranks above form/inflight, so the reverse
  /// nesting aborts in the Debug rank checker).
  Result<WriteResult> ApplyWrites(const WriteBatch& batch)
      EXCLUDES(commit_mutex_, form_mutex_, inflight_mutex_);

  /// Serving counters, snapshotted from the metrics registry — the ONE
  /// aggregation path every reporter (magicdb --stats, STATS/METRICS wire
  /// verbs, benches) reads. Naming contract: `form_cache_hits` counts
  /// request-tier lookups that found an already-compiled form;
  /// `answer_cache` holds the raw AnswerCache counters (exact hits/
  /// misses/evictions/bytes); `answers_from_cache` counts requests
  /// answered without evaluation (including subsumed ones), and every
  /// such request still counts in `queries_served` and its form's
  /// FormStats.
  struct Stats {
    size_t forms_compiled = 0;
    size_t form_cache_hits = 0;
    size_t queries_served = 0;
    /// TrySubmit rejections (never evaluated, not counted as served).
    size_t overloaded = 0;
    /// Requests served from the AnswerCache (no evaluation ran).
    size_t answers_from_cache = 0;
    /// Of those, requests served by filtering a fully-free cached entry.
    size_t answers_subsumed = 0;
    /// Duplicate (form, seed) misses parked behind an in-flight identical
    /// evaluation instead of evaluating again (request coalescing).
    size_t coalesced = 0;
    /// Queued requests whose deadline had already expired when a worker
    /// picked them up (or at dispatch, including inline warm hits);
    /// completed kDeadlineExceeded without evaluating.
    size_t deadline_shed = 0;
    /// Write batches applied through ApplyWrites (validation failures and
    /// read-only-service rejections excluded).
    size_t writes_applied = 0;
    /// Requests submitted but not yet completed at snapshot time.
    size_t pending = 0;
    /// Database versions published by the MVCC chain (the initial
    /// snapshot counts; no-op batches publish nothing).
    size_t versions_published = 0;
    /// Versions fully retired (last pin dropped, snapshot freed).
    size_t versions_retired = 0;
    /// Writers queued for their FIFO commit ticket at snapshot time.
    size_t writes_queued = 0;
    /// Per-batch version build+publish time (ns, commit ticket redeemed
    /// -> version published) — a histogram, so publish tails are visible.
    /// Excludes ticket-queue wait; independent of in-flight fixpoints by
    /// construction (there is no drain).
    obs::HistogramSnapshot write_publish;
    /// End-to-end request latency (ns, admission anchor -> completion)
    /// across every served request: inline warm hits and evaluated ones.
    obs::HistogramSnapshot request_latency;
    /// Raw cross-query answer-cache counters.
    AnswerCache::Stats answer_cache;
    /// The slow-query ring at snapshot time, oldest first.
    std::vector<obs::SlowQuery> slow_queries;

    /// Per-form serving counters, one entry per successfully compiled
    /// form. `queries` counts instances that produced an answer from the
    /// form (evaluated or cache-served); requests that never reached it —
    /// deadline-shed and overloaded ones — are excluded here and appear
    /// only in the service-wide deadline_shed/overloaded counters, so
    /// per-form latency/row ratios stay ratios over real answers.
    struct FormStats {
      std::string pred;       // predicate name
      std::string adornment;  // e.g. "bf"
      std::string strategy;
      std::string sip;
      uint64_t queries = 0;    // instances served (evaluated or cached)
      uint64_t rows = 0;       // answer tuples returned
      uint64_t truncated = 0;  // instances stopped by a row limit
      uint64_t eval_micros = 0;  // total evaluation wall time (= sum of
                                 // eval_latency, for the legacy reporters)
      /// Per-evaluated-instance latency (ns, fixpoint + extraction).
      obs::HistogramSnapshot eval_latency;
      /// Per-inline-cache-hit latency (ns) — the `cache_inline` stage.
      obs::HistogramSnapshot inline_latency;
      /// Accumulated fixpoint profile of the form's compiled program:
      /// one entry per evaluated rule, summed over every instance.
      std::vector<RuleProfileEntry> profile;
    };
    std::vector<FormStats> forms;

    /// Cache-wide aggregation of the per-form counters.
    struct Totals {
      uint64_t queries = 0;
      uint64_t rows = 0;
      uint64_t truncated = 0;
      uint64_t eval_micros = 0;
    };
    Totals totals() const;

    /// One-line human-readable counter summary (magicdb --stats).
    std::string Summary() const;

    /// Comma-separated `"key":value` pairs (no braces) for splicing into
    /// a JSON record — the benches' reporting path.
    std::string JsonFragment() const;

    /// The full stats document as one JSON object: the fragment's
    /// counters plus latency quantiles, per-form histograms/profiles,
    /// and the slow-query ring (the `STATS json` wire reply).
    std::string Json() const;
  };
  Stats stats() const EXCLUDES(form_mutex_);

  /// Prometheus-style text exposition of every registered instrument
  /// (service counters, latency histograms, per-form and per-rule
  /// counters), with the scrape-time mirrors (pending depth, answer-cache
  /// occupancy) refreshed first. The METRICS wire verb serves this.
  std::string MetricsText() const;

  /// The service's metrics registry. Exposed so embedders can register
  /// their own instruments into the same scrape (ROADMAP invariant: one
  /// registry per serving process, one aggregation path).
  obs::MetricsRegistry& metrics() { return metrics_; }

  size_t num_threads() const { return pool_.size(); }

 private:
  struct FormKey {
    PredId pred = 0;
    uint64_t bound_mask = 0;
    Strategy strategy = Strategy::kSupplementaryMagic;
    std::string sip;
    bool operator==(const FormKey&) const = default;
  };
  struct FormKeyHash {
    size_t operator()(const FormKey& key) const;
  };

  /// One rule's registry-backed profile counters (instrument pointers are
  /// stable for the registry's lifetime; workers Add() lock-free).
  struct RuleCounters {
    obs::Counter* evals = nullptr;
    obs::Counter* firings = nullptr;
    obs::Counter* new_facts = nullptr;
    obs::Counter* duplicate_facts = nullptr;
    obs::Counter* join_probes = nullptr;
    obs::Counter* delta_rows = nullptr;
  };

  /// A compilation outcome. Failures are cached too (they are
  /// deterministic per form key), so a stream of unpreparable requests
  /// pays the compile once, not per request. Lives at a stable address
  /// (unordered_map nodes don't move), so FormHandles can point into it.
  /// The per-form instruments below are registered once at compile time
  /// (never for failed compiles) and written lock-free on the hot path.
  struct CachedForm {
    std::unique_ptr<PreparedQueryForm> form;  // null when compilation failed
    Status error;
    FormKey key;            // the form-cache key this entry lives under
    /// Memoized FindFreeSibling result (null until one is found; set-once,
    /// benign race — both writers store the same pointer).
    std::atomic<CachedForm*> free_sibling{nullptr};
    std::string pred_name;  // static labels for Stats::FormStats
    std::string strategy;
    std::string sip;
    std::string form_label;  // "pred/adornment", the metric `form` label
    obs::Counter* queries = nullptr;
    obs::Counter* rows = nullptr;
    obs::Counter* truncated = nullptr;
    /// Latency of evaluated instances (stage="eval") and of inline cache
    /// hits (stage="cache_inline") — two cells of one labelled histogram
    /// family, so a scrape separates real fixpoint time from memo serves.
    obs::Histogram* eval_latency = nullptr;
    obs::Histogram* inline_latency = nullptr;
    /// Indexed like the plan's rule_labels; accumulates every instance's
    /// per-rule fixpoint profile.
    std::vector<RuleCounters> rule_counters;
  };

  using Completion = std::function<void(QueryAnswer)>;

  /// Key of the in-flight coalescing table: one evaluating instance.
  struct InflightKey {
    CachedForm* form = nullptr;
    std::vector<TermId> seed;
    bool operator==(const InflightKey&) const = default;
  };
  struct InflightKeyHash {
    size_t operator()(const InflightKey& key) const;
  };

  FormKey MakeKey(const QueryRequest& request) const;

  /// Looks up or compiles the form for `request`. Never returns null; a
  /// compilation failure is a CachedForm with a null `form`. Compilation
  /// writes only into the plan's Universe overlay, so this holds only
  /// form_mutex_ — no universe/serve lock (the metrics mutex it takes to
  /// register the form's instruments ranks above form_mutex_, a legal
  /// nesting). `*compiled` (optional) reports whether this call actually
  /// compiled, so the request tier can attach a compile span.
  CachedForm* GetOrCompile(const QueryRequest& request, const FormKey& key,
                           bool* compiled = nullptr) EXCLUDES(form_mutex_);

  /// Reserves one admission slot. Returns false (and leaves no slot taken)
  /// when `enforce_admission` and the bounded queue is full.
  bool Admit(bool enforce_admission);
  QueryAnswer OverloadedAnswer() const;
  QueryAnswer DeadlineShedAnswer() const;

  /// Resolves `request` on the calling thread (form cache, base-predicate
  /// routing) and dispatches its evaluation; `done` is invoked exactly once
  /// with the final answer — inline for compile errors, admission
  /// rejections, and answer-cache hits, from a worker otherwise.
  void Dispatch(const QueryRequest& request, AnswerSink sink,
                bool enforce_admission, Completion done);

  /// The handle hot path: an answer-cache probe, then (on a miss) pool
  /// dispatch — the worker pins the current database version and
  /// evaluates against that snapshot; clean complete answers fill the
  /// cache on the way out. Identical in-flight misses coalesce here:
  /// a duplicate is admitted first (it holds an admission slot while
  /// parked, so max_pending backpressure sees it), then parks behind the
  /// leader. `admitted_at` is the request's original admission anchor —
  /// a parked duplicate passes it through its re-dispatch, so its
  /// deadline keeps counting queue *and* park time and is shed, never
  /// re-anchored, when it expires.
  /// `compile_span` (end_ns != 0 when present) is the request-tier
  /// compile interval, recorded into the trace when one is allocated.
  void DispatchForm(CachedForm* cached, std::vector<TermId> bound_values,
                    QueryLimits limits, AnswerSink sink,
                    bool enforce_admission, Completion done,
                    std::optional<std::chrono::steady_clock::time_point>
                        admitted_at = std::nullopt,
                    obs::Span compile_span = {})
      EXCLUDES(form_mutex_, inflight_mutex_);

  /// Serves `cached`'s instance from the AnswerCache when possible
  /// (exact-key hit, or the fully-free subsumption fast path). `version`
  /// is the database version the caller probes under: workers pass the
  /// version they pinned at dispatch, the inline path passes the chain's
  /// lock-free current version number. No fence is needed in either case
  /// — a hit keyed at version V is the complete answer for V, and serving
  /// it while V+1 publishes concurrently is linearizable (the request
  /// overlapped the write). Returns true when `done` was invoked —
  /// inline, on the calling thread, with no worker or admission slot
  /// involved.
  bool TryServeCached(CachedForm* cached,
                      const std::vector<TermId>& bound_values,
                      uint64_t version, const QueryLimits& limits,
                      const AnswerSink& sink, const Completion& done)
      EXCLUDES(form_mutex_);

  /// Completes a request from a cached tuple set: applies the row limit,
  /// feeds the sink (streaming) or materializes `tuples` (unary), and
  /// updates the per-form and service counters.
  void ServeHit(CachedForm* cached,
                std::shared_ptr<const AnswerCache::Tuples> tuples,
                const QueryLimits& limits, const AnswerSink& sink,
                const Completion& done, bool subsumed);

  /// The compiled genuinely fully-free sibling of `cached` (same
  /// predicate, strategy, and sip; every goal argument a distinct
  /// variable), or null if none was ever compiled. A found sibling is
  /// memoized on `cached` (forms_ entries are never erased, so the
  /// pointer stays valid), so steady-state probes skip form_mutex_. The
  /// un-memoized probe only try-locks form_mutex_: subsumption is an
  /// optimization, and stalling an evaluating worker behind an in-flight
  /// compilation (which holds form_mutex_ for the whole adorn+rewrite)
  /// would cost more than skipping the fast path once.
  CachedForm* FindFreeSibling(CachedForm* cached) EXCLUDES(form_mutex_);

  /// Leader-side exit of the coalescing table: unregisters the in-flight
  /// (form, seed) entry and re-dispatches every parked duplicate (each
  /// re-probes the cache, which the leader just filled on the clean path).
  void ReleaseInflight(CachedForm* cached,
                       const std::vector<TermId>& bound_values)
      EXCLUDES(inflight_mutex_);

  std::future<QueryAnswer> SubmitImpl(const QueryRequest& request,
                                      bool enforce_admission);
  std::future<QueryAnswer> SubmitImpl(const FormHandle& handle,
                                      std::vector<TermId> bound_values,
                                      QueryLimits limits,
                                      bool enforce_admission);

  /// Builds the shared cursor state plus the sink/completion pair that
  /// feeds it, injecting a cancellation token into `*limits` if absent.
  static std::shared_ptr<AnswerCursor::State> MakeStreamState(
      QueryLimits* limits, AnswerSink* sink, Completion* done);

  const Program& program_;
  const Database& db_;
  /// Non-null iff the service was constructed over a mutable Database;
  /// ApplyWrites is the only code that writes through it, serialized by
  /// the FIFO commit ticket (pinned snapshot readers need no exclusion —
  /// shared relations are cloned before mutation).
  Database* mutable_db_ = nullptr;
  QueryServiceOptions options_;

  /// The MVCC spine over db_: readers pin the head version at dispatch,
  /// ApplyWrites commits and publishes through it. Declared before pool_
  /// so it outlives workers still holding pins at teardown.
  VersionChain versions_;

  /// FIFO writer fairness: tickets are issued and redeemed under this
  /// mutex; the commit itself (clone + apply + publish) runs OUTSIDE it —
  /// exclusion among writers is the ticket, so an arriving writer queues
  /// behind the running one in strict arrival order (no barging). Ranked
  /// above form/inflight: a committing writer touches no dispatch state.
  Mutex commit_mutex_{lock_rank::kCommit};
  std::condition_variable_any commit_turn_;
  uint64_t commit_next_ticket_ GUARDED_BY(commit_mutex_) = 0;
  uint64_t commit_serving_ GUARDED_BY(commit_mutex_) = 0;

  /// Guards forms_. Nests inside inflight_mutex_ never — see the lock
  /// order above.
  mutable Mutex form_mutex_{lock_rank::kForm};
  std::unordered_map<FormKey, CachedForm, FormKeyHash> forms_
      GUARDED_BY(form_mutex_);

  /// The one metrics surface: every service counter/histogram below is an
  /// instrument registered here, so Stats, the STATS wire verb, and the
  /// METRICS exposition all read the same cells — there is no second
  /// aggregation path. Declared before the instrument pointers (they are
  /// registered from it in the constructor) and before pool_ (workers
  /// write instruments until the pool drains in ~QueryService).
  mutable obs::MetricsRegistry metrics_;
  obs::SlowQueryLog slow_log_;

  // Registry-owned counters; pointers are stable for the service's life.
  obs::Counter* forms_compiled_ = nullptr;
  obs::Counter* form_cache_hits_ = nullptr;
  obs::Counter* queries_served_ = nullptr;
  obs::Counter* overloaded_ = nullptr;
  obs::Counter* answers_from_cache_ = nullptr;
  obs::Counter* answers_subsumed_ = nullptr;
  obs::Counter* coalesced_ = nullptr;
  obs::Counter* deadline_shed_ = nullptr;
  obs::Counter* writes_applied_ = nullptr;
  /// End-to-end latency of every served request (inline hits included).
  obs::Histogram* request_latency_ = nullptr;
  /// Per-batch version build+publish time (ticket redeemed -> published).
  obs::Histogram* write_publish_ = nullptr;
  /// Request-tier form compilation time.
  obs::Histogram* compile_latency_ = nullptr;
  /// Live queue depth of writers waiting for their commit ticket
  /// (maintained on the write path: +1 on arrival, -1 on redemption).
  obs::Gauge* writes_queued_gauge_ = nullptr;
  /// Scrape-time mirrors (refreshed by MetricsText/stats, not hot-path).
  obs::Gauge* pending_gauge_ = nullptr;
  obs::Gauge* cache_entries_gauge_ = nullptr;
  obs::Gauge* cache_bytes_gauge_ = nullptr;
  /// Versions alive (head + reader-pinned) and pinned-only (alive minus
  /// the head), mirrored at scrape time from the chain's counters.
  obs::Gauge* versions_live_gauge_ = nullptr;
  obs::Gauge* versions_pinned_gauge_ = nullptr;

  /// Requests submitted but not yet completed (admission-control depth).
  /// Stays a raw atomic: Admit's fetch_add is also the admission check,
  /// which a monotonic counter cannot express.
  std::atomic<size_t> pending_{0};

  /// In-flight evaluations keyed by (form, seed); the mapped value holds
  /// the parked duplicates' re-dispatch closures.
  Mutex inflight_mutex_{lock_rank::kInflight};
  std::unordered_map<InflightKey, std::vector<std::function<void()>>,
                     InflightKeyHash>
      inflight_ GUARDED_BY(inflight_mutex_);

  /// Cross-query answer memo; internally synchronized (lock-free hit
  /// path), so it sits outside the serve/form lock order entirely.
  AnswerCache cache_;

  ThreadPool pool_;
};

}  // namespace magic

#endif  // MAGIC_ENGINE_QUERY_SERVICE_H_
