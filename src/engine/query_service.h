#ifndef MAGIC_ENGINE_QUERY_SERVICE_H_
#define MAGIC_ENGINE_QUERY_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cache/answer_cache.h"
#include "engine/prepared.h"
#include "storage/database.h"
#include "util/thread_pool.h"

namespace magic {

/// One query plus optional per-request overrides of the service defaults
/// and per-request resource bounds.
struct QueryRequest {
  Query query;
  std::optional<Strategy> strategy;
  std::optional<std::string> sip;
  QueryLimits limits;
};

struct QueryServiceOptions {
  /// Worker threads; 0 means std::thread::hardware_concurrency().
  size_t num_threads = 0;
  /// Admission control: maximum requests submitted-but-not-finished before
  /// TrySubmit answers kOverloaded. 0 = unbounded (TrySubmit never
  /// rejects). Plain Submit always queues regardless.
  size_t max_pending = 0;
  /// Byte budget of the cross-query AnswerCache (memoized completed
  /// answers keyed by form, seed, and database epoch). 0 disables
  /// memoization entirely. Warm hits are served inline on the calling
  /// thread — no universe lock, no worker, no admission slot.
  size_t cache_bytes = size_t{64} << 20;
  /// Subsumption fast path: when the exact (form, seed) entry misses but
  /// the same predicate's fully-free form has a cached complete answer
  /// set for the current epoch, serve the bound instance by filtering it
  /// (and promote the filtered result to an exact entry).
  bool cache_subsumption = true;
  /// Defaults for requests that don't override strategy/sip; `eval` and
  /// `guard_mode` always come from here.
  EngineOptions engine;
};

/// A pull-based stream over one query's answers, fed by the evaluator's
/// answer sink while the fixpoint is still running. Tuples arrive in
/// derivation order, deduplicated but NOT sorted (sorting requires the full
/// set). Move-only; dropping an unfinished cursor cancels its evaluation.
///
/// Next() may be called from one consumer thread; Cancel() from any thread.
class AnswerCursor {
 public:
  AnswerCursor() = default;
  ~AnswerCursor();
  AnswerCursor(AnswerCursor&&) = default;
  /// Cancels the stream currently held (if any) before taking `other`'s,
  /// so reassigning a cursor variable never leaks a running evaluation.
  AnswerCursor& operator=(AnswerCursor&& other) noexcept;
  AnswerCursor(const AnswerCursor&) = delete;
  AnswerCursor& operator=(const AnswerCursor&) = delete;

  /// Pulls up to `max_rows` (>= 1) more tuples into `*out` (cleared first),
  /// blocking until at least one is available or evaluation completes.
  /// Returns false — with `*out` empty — once the stream is exhausted.
  bool Next(size_t max_rows, std::vector<std::vector<TermId>>* out);

  /// Blocks until evaluation completes and returns the final answer
  /// (status/outcome/eval stats). Its `tuples` are empty: they were
  /// streamed through Next().
  const QueryAnswer& Finish();

  /// Requests cooperative cancellation; the evaluation stops at its next
  /// control poll and Finish() reports kCancelled.
  void Cancel();

 private:
  friend class QueryService;
  struct State {
    std::mutex mutex;
    std::condition_variable ready;
    std::deque<std::vector<TermId>> buffer;
    bool done = false;
    QueryAnswer final;
    std::shared_ptr<std::atomic<bool>> cancel;
  };
  explicit AnswerCursor(std::shared_ptr<State> state)
      : state_(std::move(state)) {}

  std::shared_ptr<State> state_;
};

/// Serves many concurrent queries against one shared read-only Database.
///
/// The paper's compile-once/query-many reading of magic sets (Section 4's
/// query forms) is the seam this exploits: each distinct query form —
/// (predicate, adornment, strategy, sip) — is compiled exactly once via
/// PreparedQueryForm::Prepare and cached, and every instance of the form is
/// just a per-query seed over the same rewritten program. Per-query seeds
/// are independent (Drabent, arXiv:1012.2299), so instances evaluate
/// concurrently on a fixed thread pool without re-running the
/// transformation — and can stop early (row limits, deadlines,
/// cancellation) without affecting any other instance.
///
/// Two tiers of API:
///   * Request tier: Submit/TrySubmit/Answer/AnswerBatch/Stream take a
///     QueryRequest, resolve its form through the cache (one mutex
///     round-trip), compiling on the calling thread if needed.
///   * Handle tier: Prepare returns a FormHandle; the Submit/TrySubmit/
///     Answer/Stream overloads taking a handle skip form hashing and the
///     cache mutex entirely — the steady-state hot path is one shared-lock
///     acquire plus pool dispatch.
///
/// Both tiers sit behind the cross-query AnswerCache: a completed clean
/// answer (outcome kOk) is memoized under (form, seed, database epoch),
/// and a repeated seed is then served inline on the calling thread — no
/// universe lock, no worker, no admission slot. Any EDB write advances
/// Database::epoch() and makes every earlier entry unreachable, so
/// alternating write/serve phases never see stale answers. Truncated,
/// deadline-expired, cancelled, and failed answers are never cached;
/// base-predicate and non-rewriting-fallback requests bypass the cache.
///
/// Concurrency contract:
///   * The Program and Database must outlive the service and must not be
///     mutated while queries are in flight. Between requests (any
///     externally synchronized quiescent point) EDB writes are fine: the
///     next request observes the new epoch and re-evaluates.
///   * All public methods may be called from any number of threads.
///   * Form compilation mutates the shared Universe (it interns symbols and
///     declares adorned/magic predicates), so it runs under an exclusive
///     lock that excludes all concurrent evaluation; cached forms are
///     served under a shared lock. Steady-state traffic therefore runs
///     fully in parallel, limited only by the pool size.
///   * Non-rewriting strategies (naive/semi-naive/top-down) have no
///     compiled form; their requests evaluate under the exclusive lock
///     (top-down adornment mutates the Universe), serialized with respect
///     to everything else. A compatibility path, not a fast path.
///   * Worker-side term interning (the matcher's affine/compound
///     construction) is safe because TermArena is internally synchronized.
///   * Answer sinks and cursor buffers are touched only by the evaluating
///     worker and the consumer, under the cursor's own mutex.
class QueryService {
 private:
  struct CachedForm;

 public:
  /// An opaque, copyable reference to one compiled query form. Valid for
  /// the lifetime of the service that returned it; handles are stable
  /// across cache growth and shareable between threads.
  class FormHandle {
   public:
    FormHandle() = default;
    bool valid() const { return cached_ != nullptr; }
    /// The adornment of the compiled form (e.g. "bf").
    const Adornment& adornment() const;
    /// Number of bound values an instance of this form takes.
    size_t bound_arity() const;

   private:
    friend class QueryService;
    CachedForm* cached_ = nullptr;
  };

  QueryService(const Program& program, const Database& db,
               QueryServiceOptions options = {});
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Compiles (or fetches from the cache) the query form of
  /// `request.query`'s binding pattern and returns a stable handle to it.
  /// Requires a derived-predicate query and a rewriting strategy:
  /// base-predicate queries need no preparation, and the non-rewriting
  /// strategies have no compiled artifact (Submit serves both).
  Result<FormHandle> Prepare(const QueryRequest& request);

  /// Enqueues one query; the future resolves when a worker has evaluated
  /// it. Compilation of a not-yet-cached form happens on the calling
  /// thread. `request.limits` are enforced during evaluation; the deadline
  /// is anchored here, so queue wait counts against it.
  std::future<QueryAnswer> Submit(const QueryRequest& request);

  /// Handle hot path: evaluates one instance of a prepared form. Skips the
  /// form cache entirely. `bound_values` are the constants for the form's
  /// bound positions, in position order.
  std::future<QueryAnswer> Submit(const FormHandle& handle,
                                  std::vector<TermId> bound_values,
                                  QueryLimits limits = {});

  /// Admission-controlled variants: when options.max_pending > 0 and that
  /// many requests are in flight, the future resolves immediately with
  /// outcome kOverloaded (status ResourceExhausted) instead of queueing.
  std::future<QueryAnswer> TrySubmit(const QueryRequest& request);
  std::future<QueryAnswer> TrySubmit(const FormHandle& handle,
                                     std::vector<TermId> bound_values,
                                     QueryLimits limits = {});

  /// Answers one query synchronously.
  QueryAnswer Answer(const Query& query);
  QueryAnswer Answer(const FormHandle& handle,
                     std::vector<TermId> bound_values,
                     QueryLimits limits = {});

  /// Streams one query's answers in chunks while it evaluates, instead of
  /// materializing the full sorted answer set first. If `limits.cancel` is
  /// null a token is created so the cursor can cancel its evaluation.
  AnswerCursor Stream(const QueryRequest& request);
  AnswerCursor Stream(const FormHandle& handle,
                      std::vector<TermId> bound_values,
                      QueryLimits limits = {});

  /// Answers a batch; answers are returned in input order. Queries of the
  /// batch evaluate concurrently across the pool.
  std::vector<QueryAnswer> AnswerBatch(const std::vector<QueryRequest>& batch);
  std::vector<QueryAnswer> AnswerBatch(const std::vector<Query>& queries);

  /// Serving counters. Naming contract (the one reporting path magicdb
  /// and the benches share): `form_cache_hits` counts request-tier
  /// lookups that found an already-compiled form; `answer_cache` holds
  /// the raw AnswerCache counters (exact hits/misses/evictions/bytes);
  /// `answers_from_cache` counts requests answered without evaluation
  /// (including subsumed ones), and every such request still counts in
  /// `queries_served` and its form's FormStats.
  struct Stats {
    size_t forms_compiled = 0;
    size_t form_cache_hits = 0;
    size_t queries_served = 0;
    /// TrySubmit rejections (never evaluated, not counted as served).
    size_t overloaded = 0;
    /// Requests served via the exclusive-locked non-rewriting fallback.
    size_t fallback_served = 0;
    /// Requests served from the AnswerCache (no evaluation ran).
    size_t answers_from_cache = 0;
    /// Of those, requests served by filtering a fully-free cached entry.
    size_t answers_subsumed = 0;
    /// Raw cross-query answer-cache counters.
    AnswerCache::Stats answer_cache;

    /// Per-form serving counters, one entry per successfully compiled form.
    struct FormStats {
      std::string pred;       // predicate name
      std::string adornment;  // e.g. "bf"
      std::string strategy;
      std::string sip;
      uint64_t queries = 0;    // instances served (evaluated or cached)
      uint64_t rows = 0;       // answer tuples returned
      uint64_t truncated = 0;  // instances stopped by a row limit
      uint64_t eval_micros = 0;  // total evaluation wall time
    };
    std::vector<FormStats> forms;

    /// Cache-wide aggregation of the per-form counters — the single
    /// aggregation path every reporter (magicdb --stats, benches) uses.
    struct Totals {
      uint64_t queries = 0;
      uint64_t rows = 0;
      uint64_t truncated = 0;
      uint64_t eval_micros = 0;
    };
    Totals totals() const;

    /// One-line human-readable counter summary (magicdb --stats).
    std::string Summary() const;

    /// Comma-separated `"key":value` pairs (no braces) for splicing into
    /// a JSON record — the benches' reporting path.
    std::string JsonFragment() const;
  };
  Stats stats() const;

  size_t num_threads() const { return pool_.size(); }

 private:
  struct FormKey {
    PredId pred = 0;
    uint64_t bound_mask = 0;
    Strategy strategy = Strategy::kSupplementaryMagic;
    std::string sip;
    bool operator==(const FormKey&) const = default;
  };
  struct FormKeyHash {
    size_t operator()(const FormKey& key) const;
  };

  /// Per-form serving counters, written lock-free by workers.
  struct FormCounters {
    std::atomic<uint64_t> queries{0};
    std::atomic<uint64_t> rows{0};
    std::atomic<uint64_t> truncated{0};
    std::atomic<uint64_t> eval_micros{0};
  };

  /// A compilation outcome. Failures are cached too (they are
  /// deterministic per form key), so a stream of unpreparable requests
  /// pays the exclusive compile lock once, not per request. Lives at a
  /// stable address (unordered_map nodes don't move), so FormHandles can
  /// point into it.
  struct CachedForm {
    std::unique_ptr<PreparedQueryForm> form;  // null when compilation failed
    Status error;
    FormKey key;            // the form-cache key this entry lives under
    /// Memoized FindFreeSibling result (null until one is found; set-once,
    /// benign race — both writers store the same pointer).
    std::atomic<CachedForm*> free_sibling{nullptr};
    std::string pred_name;  // static labels for Stats::FormStats
    std::string strategy;
    std::string sip;
    FormCounters counters;
  };

  using Completion = std::function<void(QueryAnswer)>;

  FormKey MakeKey(const QueryRequest& request) const;

  /// Looks up or compiles the form for `request`. Never returns null; a
  /// compilation failure is a CachedForm with a null `form`.
  CachedForm* GetOrCompile(const QueryRequest& request, const FormKey& key);

  /// Reserves one admission slot. Returns false (and leaves no slot taken)
  /// when `enforce_admission` and the bounded queue is full.
  bool Admit(bool enforce_admission);
  QueryAnswer OverloadedAnswer() const;

  /// Resolves `request` on the calling thread (form cache, fallback
  /// routing) and dispatches its evaluation; `done` is invoked exactly once
  /// with the final answer — inline for compile errors, admission
  /// rejections, and answer-cache hits, from a worker otherwise.
  void Dispatch(const QueryRequest& request, AnswerSink sink,
                bool enforce_admission, Completion done);

  /// The handle hot path: an answer-cache probe, then (on a miss) one
  /// shared-lock acquire plus pool dispatch; clean complete answers fill
  /// the cache on the way out.
  void DispatchForm(CachedForm* cached, std::vector<TermId> bound_values,
                    QueryLimits limits, AnswerSink sink,
                    bool enforce_admission, Completion done);

  /// Serves `cached`'s instance from the AnswerCache when possible
  /// (exact-key hit, or the fully-free subsumption fast path). `epoch` is
  /// the database epoch read once per request — writes only happen at
  /// quiescent points, so it cannot move while the request is in flight.
  /// Returns true when `done` was invoked — inline, on the calling
  /// thread, with no universe lock, worker, or admission slot involved.
  bool TryServeCached(CachedForm* cached,
                      const std::vector<TermId>& bound_values, uint64_t epoch,
                      const QueryLimits& limits, const AnswerSink& sink,
                      const Completion& done);

  /// Completes a request from a cached tuple set: applies the row limit,
  /// feeds the sink (streaming) or materializes `tuples` (unary), and
  /// updates the per-form and service counters.
  void ServeHit(CachedForm* cached,
                std::shared_ptr<const AnswerCache::Tuples> tuples,
                const QueryLimits& limits, const AnswerSink& sink,
                const Completion& done, bool subsumed);

  /// The compiled genuinely fully-free sibling of `cached` (same
  /// predicate, strategy, and sip; every goal argument a distinct
  /// variable), or null if none was ever compiled. A found sibling is
  /// memoized on `cached` (forms_ entries are never erased, so the
  /// pointer stays valid), so steady-state probes skip form_mutex_.
  CachedForm* FindFreeSibling(CachedForm* cached);

  std::future<QueryAnswer> SubmitImpl(const QueryRequest& request,
                                      bool enforce_admission);
  std::future<QueryAnswer> SubmitImpl(const FormHandle& handle,
                                      std::vector<TermId> bound_values,
                                      QueryLimits limits,
                                      bool enforce_admission);

  /// Builds the shared cursor state plus the sink/completion pair that
  /// feeds it, injecting a cancellation token into `*limits` if absent.
  static std::shared_ptr<AnswerCursor::State> MakeStreamState(
      QueryLimits* limits, AnswerSink* sink, Completion* done);

  const Program& program_;
  const Database& db_;
  QueryServiceOptions options_;

  /// Exclusive = universe-mutating compilation and the non-rewriting
  /// fallback; shared = prepared-form and base-predicate evaluation.
  std::shared_mutex serve_mutex_;

  /// Lock order: form_mutex_ may be held while acquiring serve_mutex_
  /// (compilation); workers hold serve_mutex_ shared and never touch
  /// form_mutex_, so the order cannot cycle.
  mutable std::mutex form_mutex_;  // guards forms_ and the compile counters
  std::unordered_map<FormKey, CachedForm, FormKeyHash> forms_;
  size_t forms_compiled_ = 0;
  size_t form_cache_hits_ = 0;
  std::atomic<size_t> queries_served_{0};
  std::atomic<size_t> fallback_served_{0};
  std::atomic<size_t> overloaded_{0};
  std::atomic<size_t> answers_from_cache_{0};
  std::atomic<size_t> answers_subsumed_{0};
  /// Requests submitted but not yet completed (admission-control depth).
  std::atomic<size_t> pending_{0};

  /// Cross-query answer memo; internally synchronized (lock-free hit
  /// path), so it sits outside the serve/form lock order entirely.
  AnswerCache cache_;

  ThreadPool pool_;
};

}  // namespace magic

#endif  // MAGIC_ENGINE_QUERY_SERVICE_H_
