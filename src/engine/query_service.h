#ifndef MAGIC_ENGINE_QUERY_SERVICE_H_
#define MAGIC_ENGINE_QUERY_SERVICE_H_

#include <atomic>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/prepared.h"
#include "storage/database.h"
#include "util/thread_pool.h"

namespace magic {

/// One query plus optional per-request overrides of the service defaults.
struct QueryRequest {
  Query query;
  std::optional<Strategy> strategy;
  std::optional<std::string> sip;
};

struct QueryServiceOptions {
  /// Worker threads; 0 means std::thread::hardware_concurrency().
  size_t num_threads = 0;
  /// Defaults for requests that don't override strategy/sip; `eval` and
  /// `guard_mode` always come from here.
  EngineOptions engine;
};

/// Serves many concurrent queries against one shared read-only Database.
///
/// The paper's compile-once/query-many reading of magic sets (Section 4's
/// query forms) is the seam this exploits: each distinct query form —
/// (predicate, adornment, strategy, sip) — is compiled exactly once via
/// PreparedQueryForm::Prepare and cached, and every instance of the form is
/// just a per-query seed over the same rewritten program. Per-query seeds
/// are independent (Drabent, arXiv:1012.2299), so instances evaluate
/// concurrently on a fixed thread pool without re-running the
/// transformation.
///
/// Concurrency contract:
///   * The Program and Database must outlive the service and must not be
///     mutated while it is serving.
///   * Submit/Answer/AnswerBatch may be called from any number of threads.
///   * Form compilation mutates the shared Universe (it interns symbols and
///     declares adorned/magic predicates), so it runs under an exclusive
///     lock that excludes all concurrent evaluation; cached forms are
///     served under a shared lock. Steady-state traffic therefore runs
///     fully in parallel, limited only by the pool size.
///   * Worker-side term interning (the matcher's affine/compound
///     construction) is safe because TermArena is internally synchronized.
class QueryService {
 public:
  QueryService(const Program& program, const Database& db,
               QueryServiceOptions options = {});
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Enqueues one query; the future resolves when a worker has evaluated
  /// it. Compilation of a not-yet-cached form happens on the calling
  /// thread.
  std::future<QueryAnswer> Submit(const QueryRequest& request);

  /// Answers one query synchronously.
  QueryAnswer Answer(const Query& query);

  /// Answers a batch; answers are returned in input order. Queries of the
  /// batch evaluate concurrently across the pool.
  std::vector<QueryAnswer> AnswerBatch(const std::vector<QueryRequest>& batch);
  std::vector<QueryAnswer> AnswerBatch(const std::vector<Query>& queries);

  struct Stats {
    size_t forms_compiled = 0;
    size_t cache_hits = 0;
    size_t queries_served = 0;
  };
  Stats stats() const;

  size_t num_threads() const { return pool_.size(); }

 private:
  struct FormKey {
    PredId pred = 0;
    uint64_t bound_mask = 0;
    Strategy strategy = Strategy::kSupplementaryMagic;
    std::string sip;
    bool operator==(const FormKey&) const = default;
  };
  struct FormKeyHash {
    size_t operator()(const FormKey& key) const;
  };

  /// A compilation outcome. Failures are cached too (they are
  /// deterministic per form key), so a stream of unpreparable requests
  /// pays the exclusive compile lock once, not per request.
  struct CachedForm {
    std::unique_ptr<PreparedQueryForm> form;  // null when compilation failed
    Status error;
  };

  /// Looks up or compiles the form for `request`. Returns nullptr with
  /// `*error` set when the query cannot be prepared.
  const PreparedQueryForm* GetOrCompile(const QueryRequest& request,
                                        const FormKey& key, Status* error);

  const Program& program_;
  const Database& db_;
  QueryServiceOptions options_;

  /// Exclusive = universe-mutating compilation; shared = evaluation.
  std::shared_mutex serve_mutex_;

  /// Lock order: form_mutex_ may be held while acquiring serve_mutex_
  /// (compilation); workers hold serve_mutex_ shared and never touch
  /// form_mutex_, so the order cannot cycle.
  mutable std::mutex form_mutex_;  // guards forms_ and the compile counters
  std::unordered_map<FormKey, CachedForm, FormKeyHash> forms_;
  size_t forms_compiled_ = 0;
  size_t cache_hits_ = 0;
  std::atomic<size_t> queries_served_{0};

  ThreadPool pool_;
};

}  // namespace magic

#endif  // MAGIC_ENGINE_QUERY_SERVICE_H_
