#ifndef MAGIC_ENGINE_QUERY_ENGINE_H_
#define MAGIC_ENGINE_QUERY_ENGINE_H_

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "analysis/safety.h"
#include "core/counting.h"
#include "core/magic_sets.h"
#include "core/semijoin.h"
#include "core/sup_counting.h"
#include "core/supplementary.h"
#include "eval/evaluator.h"
#include "eval/topdown.h"
#include "util/status.h"

namespace magic {

/// Every query evaluation strategy the library implements. The rewriting
/// strategies are the paper's contribution; the others are the substrate
/// baselines it argues against/with.
enum class Strategy {
  kNaiveBottomUp,          // Section 1's strawman
  kSemiNaiveBottomUp,      // delta-driven bottom-up on the original program
  kMagic,                  // Section 4 (GMS)
  kSupplementaryMagic,     // Section 5 (GSMS)
  kCounting,               // Section 6 (GC)
  kSupplementaryCounting,  // Section 7 (GSC)
  kCountingSemijoin,       // GC + Section 8 optimizations
  kSupCountingSemijoin,    // GSC + Section 8 optimizations
  kTopDown,                // QSQR-style sip strategy (Section 9's baseline)
};

std::string StrategyName(Strategy strategy);

/// Inverse of StrategyName; both read one shared name table, so the CLI and
/// the library cannot drift apart. Returns nullopt for unknown names.
std::optional<Strategy> StrategyFromName(const std::string& name);

/// The canonical (strategy, name) table, for CLI help text and iteration.
std::span<const std::pair<Strategy, const char*>> StrategyNames();

/// True for the strategies that compile a query form (adorn + rewrite);
/// naive/semi-naive/top-down evaluate the original program instead.
bool IsRewritingStrategy(Strategy strategy);

struct EngineOptions {
  Strategy strategy = Strategy::kSupplementaryMagic;
  /// Sip strategy name, resolved by MakeSipStrategy: "full", "chain",
  /// "head-only", "empty", "greedy".
  std::string sip = "full";
  GuardMode guard_mode = GuardMode::kProp42;
  EvalOptions eval;
  /// Run the Section 10 static checks first and refuse strategies the
  /// analysis proves divergent (counting with a cyclic argument graph).
  bool static_safety_check = false;
  /// Attach the rewritten program's text to the answer (for explain output).
  bool explain = false;
};

/// Per-request resource bounds. A default-constructed QueryLimits means
/// "run to fixpoint", which is what the legacy Answer/Run entry points do.
struct QueryLimits {
  /// Stop after this many distinct answer tuples (0 = unlimited). Hitting
  /// the limit is not an error: the answer's status stays OK and its
  /// outcome becomes kTruncated.
  uint64_t row_limit = 0;
  /// Wall-clock evaluation budget, anchored when the request is admitted
  /// (so queue wait counts against it in QueryService).
  std::optional<std::chrono::milliseconds> deadline;
  /// Per-request override of EvalOptions::max_facts.
  std::optional<uint64_t> max_facts;
  /// Cooperative cancellation: set to true (from any thread) to abort the
  /// evaluation; the answer's outcome becomes kCancelled.
  std::shared_ptr<std::atomic<bool>> cancel;
  /// Internal observability hook (set by QueryService, not by clients):
  /// when non-null the evaluation records its fixpoint span here. Borrowed
  /// for the duration of the run; single-request ownership.
  obs::Trace* trace = nullptr;

  /// True when any bound requires the evaluation-time control hook.
  bool NeedsControl() const {
    return row_limit != 0 || deadline.has_value() || cancel != nullptr ||
           trace != nullptr;
  }
};

// AnswerStatus (how one request ended, beyond its Status) lives in
// util/status.h now: it is one axis of the unified
// outcome <-> wire-code <-> exit-code table every serving surface shares.

/// Streaming hook: called once per distinct answer tuple (projected onto
/// the query's free positions), in derivation order, from the evaluating
/// thread. Return false to stop evaluation early (outcome kTruncated).
/// When a request supplies a sink, the answer's `tuples` are left empty —
/// the tuples went to the sink; materializing a second sorted copy would
/// defeat the point of streaming.
using AnswerSink = std::function<bool(const std::vector<TermId>&)>;

/// One rule's slice of a fixpoint profile, with the rule rendered in the
/// program the engine actually evaluated (the rewritten/adorned program
/// for those strategies — the per-rule evidence of what the rewrite paid).
struct RuleProfileEntry {
  std::string rule;
  RuleProfile counts;
};

/// The result of answering one query.
struct QueryAnswer {
  Status status;
  /// How the request ended; refines `status` with the limit outcomes.
  AnswerStatus outcome = AnswerStatus::kOk;
  /// True when the answer was served from the cross-query AnswerCache
  /// without any evaluation; `eval_stats`/`total_facts` are zero then (no
  /// fixpoint ran), which keeps "work done" metrics honest.
  bool from_cache = false;
  /// Answer tuples over the query's free positions, sorted and deduplicated.
  std::vector<std::vector<TermId>> tuples;
  /// Bottom-up statistics (empty for the top-down strategy).
  EvalStats eval_stats;
  /// Top-down statistics (kTopDown only).
  TopDownStats topdown_stats;
  /// Total facts in the evaluated program's IDB (relevant-fact metric).
  size_t total_facts = 0;
  /// Per-rule fixpoint profile of the evaluated program (empty for
  /// base-predicate selections and cache hits).
  std::vector<RuleProfileEntry> profile;
  /// The rewritten program, printed, when EngineOptions::explain is set.
  std::string rewritten_text;
  std::string safety_note;
  std::string strategy_name;

  bool truncated() const { return outcome == AnswerStatus::kTruncated; }
};

/// One-stop facade: validate -> adorn -> rewrite -> (safety-check) ->
/// evaluate -> extract answers.
class QueryEngine {
 public:
  explicit QueryEngine(EngineOptions options = {}) : options_(options) {}

  QueryAnswer Run(const Program& program, const Query& query,
                  const Database& db) const;

  /// Resource-bounded run: enforces `limits` during evaluation (all
  /// strategies, including naive/semi-naive/top-down) and streams each
  /// distinct answer to `sink` as it is derived. `admitted` anchors the
  /// deadline (defaults to entry time).
  QueryAnswer Run(const Program& program, const Query& query,
                  const Database& db, const QueryLimits& limits,
                  const AnswerSink& sink = {},
                  std::optional<std::chrono::steady_clock::time_point>
                      admitted = std::nullopt) const;

  /// Rewrites an adorned program under any of the rewriting strategies
  /// (exposed for tests and benchmarks that inspect the programs).
  static Result<RewrittenProgram> Rewrite(const AdornedProgram& adorned,
                                          Strategy strategy,
                                          GuardMode guard_mode);

 private:
  EngineOptions options_;
};

/// Selects/projects the answers to `query` out of an evaluation of
/// `rewritten` (rows of the answer predicate whose index fields are zero and
/// whose surviving bound columns match the query constants, projected onto
/// the free positions).
std::vector<std::vector<TermId>> ExtractAnswers(
    const Universe& u, const RewrittenProgram& rewritten, const Query& query,
    const EvalResult& eval);

/// Answers from a direct (non-rewritten) evaluation: selects rows of the
/// query predicate matching the bound constants and projects the free
/// positions (sorted, deduplicated). Used by the naive/semi-naive/top-down
/// compiled plans and by base-predicate selections.
std::vector<std::vector<TermId>> ExtractDirectAnswers(const Universe& u,
                                                      const Query& query,
                                                      const Relation* rel);

/// The row filter + projection behind ExtractAnswers, reusable one row at a
/// time so answer sinks can stream during evaluation instead of scanning
/// after it: decides whether one stored tuple belongs to `query`'s instance
/// and projects it onto the query's free positions.
class AnswerProjector {
 public:
  /// Rows of `rewritten.answer_pred` (index fields must be zero, surviving
  /// bound columns must match the instance constants).
  static AnswerProjector ForRewritten(const Universe& u,
                                      const RewrittenProgram& rewritten,
                                      const Query& query);
  /// Rows of the query predicate itself (direct evaluation / top-down
  /// answer tables): bound positions must match the instance constants.
  static AnswerProjector ForDirect(const Universe& u, const Query& query);

  /// Returns true and fills `*out` (cleared first) when `tuple` is an
  /// answer row of this instance.
  bool Project(std::span<const TermId> tuple,
               std::vector<TermId>* out) const;

 private:
  AnswerProjector() = default;

  /// Leading columns that must equal a specific term (a counting rewrite's
  /// index fields, pinned to the seed's level 0).
  std::vector<std::pair<int, TermId>> required_;
  /// (column, constant) checks for the instance's bound arguments.
  std::vector<std::pair<int, TermId>> bound_checks_;
  /// Columns of the stored tuple holding the query's free positions.
  std::vector<int> free_columns_;
};

/// Accumulates distinct projected answers during one evaluation: dedups,
/// enforces QueryLimits::row_limit, and forwards each new tuple to an
/// optional user sink. Accept() is the EvalControl::on_fact payload.
class AnswerCollector {
 public:
  AnswerCollector(uint64_t row_limit, const AnswerSink* sink)
      : row_limit_(row_limit), sink_(sink) {}

  /// Returns false when evaluation should stop (row limit reached, or the
  /// user sink asked to stop).
  bool Accept(std::vector<TermId> tuple);

  bool truncated() const { return truncated_; }
  size_t size() const { return seen_.size(); }

  /// The collected answers; std::set iteration order is already the sorted
  /// order ExtractAnswers produces.
  std::vector<std::vector<TermId>> TakeSorted();

 private:
  uint64_t row_limit_;
  const AnswerSink* sink_;
  std::set<std::vector<TermId>> seen_;
  bool truncated_ = false;
};

/// Builds the EvalControl::on_fact hook that filters rows through
/// `projector` and accumulates the projections in `collector`. Both are
/// captured by reference and must outlive the evaluation.
std::function<bool(std::span<const TermId>)> MakeAnswerHook(
    const AnswerProjector& projector, AnswerCollector& collector);

/// Maps an evaluation's stop reason (plus whether the collector hit its row
/// limit) onto the answer-level outcome classification.
AnswerStatus ClassifyOutcome(StopReason stop, const Status& status);

}  // namespace magic

#endif  // MAGIC_ENGINE_QUERY_ENGINE_H_
