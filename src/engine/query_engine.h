#ifndef MAGIC_ENGINE_QUERY_ENGINE_H_
#define MAGIC_ENGINE_QUERY_ENGINE_H_

#include <string>
#include <vector>

#include "analysis/safety.h"
#include "core/counting.h"
#include "core/magic_sets.h"
#include "core/semijoin.h"
#include "core/sup_counting.h"
#include "core/supplementary.h"
#include "eval/evaluator.h"
#include "eval/topdown.h"

namespace magic {

/// Every query evaluation strategy the library implements. The rewriting
/// strategies are the paper's contribution; the others are the substrate
/// baselines it argues against/with.
enum class Strategy {
  kNaiveBottomUp,          // Section 1's strawman
  kSemiNaiveBottomUp,      // delta-driven bottom-up on the original program
  kMagic,                  // Section 4 (GMS)
  kSupplementaryMagic,     // Section 5 (GSMS)
  kCounting,               // Section 6 (GC)
  kSupplementaryCounting,  // Section 7 (GSC)
  kCountingSemijoin,       // GC + Section 8 optimizations
  kSupCountingSemijoin,    // GSC + Section 8 optimizations
  kTopDown,                // QSQR-style sip strategy (Section 9's baseline)
};

std::string StrategyName(Strategy strategy);

struct EngineOptions {
  Strategy strategy = Strategy::kSupplementaryMagic;
  /// Sip strategy name, resolved by MakeSipStrategy: "full", "chain",
  /// "head-only", "empty", "greedy".
  std::string sip = "full";
  GuardMode guard_mode = GuardMode::kProp42;
  EvalOptions eval;
  /// Run the Section 10 static checks first and refuse strategies the
  /// analysis proves divergent (counting with a cyclic argument graph).
  bool static_safety_check = false;
  /// Attach the rewritten program's text to the answer (for explain output).
  bool explain = false;
};

/// The result of answering one query.
struct QueryAnswer {
  Status status;
  /// Answer tuples over the query's free positions, sorted and deduplicated.
  std::vector<std::vector<TermId>> tuples;
  /// Bottom-up statistics (empty for the top-down strategy).
  EvalStats eval_stats;
  /// Top-down statistics (kTopDown only).
  TopDownStats topdown_stats;
  /// Total facts in the evaluated program's IDB (relevant-fact metric).
  size_t total_facts = 0;
  /// The rewritten program, printed, when EngineOptions::explain is set.
  std::string rewritten_text;
  std::string safety_note;
  std::string strategy_name;
};

/// One-stop facade: validate -> adorn -> rewrite -> (safety-check) ->
/// evaluate -> extract answers.
class QueryEngine {
 public:
  explicit QueryEngine(EngineOptions options = {}) : options_(options) {}

  QueryAnswer Run(const Program& program, const Query& query,
                  const Database& db) const;

  /// Rewrites an adorned program under any of the rewriting strategies
  /// (exposed for tests and benchmarks that inspect the programs).
  static Result<RewrittenProgram> Rewrite(const AdornedProgram& adorned,
                                          Strategy strategy,
                                          GuardMode guard_mode);

 private:
  EngineOptions options_;
};

/// Selects/projects the answers to `query` out of an evaluation of
/// `rewritten` (rows of the answer predicate whose index fields are zero and
/// whose surviving bound columns match the query constants, projected onto
/// the free positions).
std::vector<std::vector<TermId>> ExtractAnswers(
    Universe& u, const RewrittenProgram& rewritten, const Query& query,
    const EvalResult& eval);

}  // namespace magic

#endif  // MAGIC_ENGINE_QUERY_ENGINE_H_
