#ifndef MAGIC_ENGINE_COMPILED_PLAN_H_
#define MAGIC_ENGINE_COMPILED_PLAN_H_

#include <memory>
#include <optional>
#include <vector>

#include "engine/query_engine.h"
#include "eval/join_program.h"

namespace magic {

/// The immutable compile-time artifact of one query form under one
/// strategy — for *every* strategy, including the non-rewriting ones.
///
/// Drabent's correctness proof (arXiv:1012.2299) treats the transformed
/// program as a pure function of (program, query form); this struct is that
/// function's value. Compile() runs all universe-mutating work — top-down
/// adornment and the rewrites' symbol/predicate declarations — exactly once,
/// into a plan-local Universe overlay (`universe`): the base Universe is
/// frozen underneath it, adorned/magic predicates live only in the overlay,
/// and term ids stay comparable with the EDB because the overlay shares the
/// base's internally synchronized TermArena.
///
/// Everything here is immutable after Compile(), so Answer() is const,
/// side-effect-free on shared state, and concurrently callable for every
/// strategy — which is what lets a serving layer run naive/semi-naive/
/// top-down instances under the same shared lock as the rewriting ones.
struct CompiledPlan {
  /// The plan's Universe overlay (frozen base + plan-local extension
  /// tables). Every artifact below resolves its symbol/predicate ids
  /// through this universe.
  std::shared_ptr<Universe> universe;
  Strategy strategy = Strategy::kSupplementaryMagic;
  /// The exemplar whose binding pattern was compiled; Answer() instantiates
  /// its bound positions per request.
  Query exemplar;
  Adornment adornment;
  /// Bound argument positions, ascending; Answer()'s `bound_values` pair up
  /// with these.
  std::vector<int> bound_positions;
  /// True when every exemplar argument is a distinct plain variable (the
  /// precondition of the serving layer's subsumption fast path).
  bool fully_free = false;
  EvalOptions eval_options;

  // Exactly one artifact is populated, by strategy family:
  /// Rewriting strategies: the rewritten program P^mg/P^c/... evaluated
  /// bottom-up from a per-instance seed.
  RewrittenProgram rewritten;
  /// kTopDown: the adorned program evaluated QSQR-style, seeded from the
  /// instance's bound arguments.
  std::optional<AdornedProgram> adorned;
  /// kNaiveBottomUp / kSemiNaiveBottomUp: the original program, rebound to
  /// the plan universe, evaluated to fixpoint and filtered per instance.
  std::optional<Program> original;
  /// The evaluated program's rules, printed once at compile time; indexed
  /// like the engines' per-rule profiles, so Answer() can attach labelled
  /// fixpoint profiles without re-rendering rules per request.
  std::vector<std::string> rule_labels;
  /// Bottom-up strategies (original and rewritten programs): the evaluated
  /// program's rules compiled once into slot-addressed join programs, so
  /// per-request evaluation skips both rule analysis and the interpretive
  /// per-row term walk (eval/join_program.h). Null for kTopDown and for
  /// provenance-tracking plans, which Answer() routes to the interpreter.
  std::shared_ptr<const JoinProgram> join_program;

  /// Compiles the query form of `exemplar` (its binding pattern; the
  /// constants are ignored) under `options.strategy`. Accepts every
  /// strategy; rejects base-predicate queries (they need no plan).
  static Result<std::shared_ptr<const CompiledPlan>> Compile(
      const Program& program, const Query& exemplar,
      const EngineOptions& options);

  /// Evaluates one instance of the form. `bound_values` are the constants
  /// for `bound_positions`, in order. All per-request state (the instance
  /// query, projector, collector, evaluation tables) is scratch local to
  /// this call; the plan itself is never written, so any number of Answer
  /// calls may run concurrently against one plan.
  QueryAnswer Answer(const std::vector<TermId>& bound_values,
                     const Database& db, const QueryLimits& limits,
                     const AnswerSink& sink = {},
                     std::optional<std::chrono::steady_clock::time_point>
                         admitted = std::nullopt) const;
};

}  // namespace magic

#endif  // MAGIC_ENGINE_COMPILED_PLAN_H_
