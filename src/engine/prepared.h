#ifndef MAGIC_ENGINE_PREPARED_H_
#define MAGIC_ENGINE_PREPARED_H_

#include "engine/compiled_plan.h"

namespace magic {

/// A compiled query form (paper, Section 4): "If we choose a different
/// query with the same query form, then the same magic predicates, magic
/// predicate-definitions, and modified rules will result, but the seed will
/// be specific to the query."
///
/// Prepare() compiles the binding pattern of an exemplar query once — for
/// *any* strategy — into an immutable CompiledPlan whose universe overlay
/// holds everything compilation declared; Answer() then serves any instance
/// of the form by instantiating only the seed. Because the plan (and the
/// base Universe underneath it) is never written after Prepare, Answer is
/// concurrently callable for every strategy, including top-down (whose
/// adornment used to mutate the shared Universe at request time).
class PreparedQueryForm {
 public:
  /// Compiles the query form of `exemplar` (its binding pattern; the actual
  /// constants are ignored) under `options.strategy`. All strategies are
  /// accepted; base-predicate queries are rejected (they need no plan).
  static Result<PreparedQueryForm> Prepare(const Program& program,
                                           const Query& exemplar,
                                           const EngineOptions& options = {});

  /// Answers one instance: `bound_values` are the constants for the bound
  /// positions of the form, in position order.
  QueryAnswer Answer(const std::vector<TermId>& bound_values,
                     const Database& db) const;

  /// Resource-bounded instance: enforces `limits` during the evaluation
  /// (it aborts as soon as the row limit, deadline, or cancellation fires)
  /// and streams each distinct answer tuple to `sink` as it is derived.
  /// `admitted` anchors the deadline (defaults to entry time) so a serving
  /// layer can charge queue wait against it.
  QueryAnswer Answer(const std::vector<TermId>& bound_values,
                     const Database& db, const QueryLimits& limits,
                     const AnswerSink& sink = {},
                     std::optional<std::chrono::steady_clock::time_point>
                         admitted = std::nullopt) const;

  /// The adornment of the compiled form (e.g. "bf").
  const Adornment& adornment() const { return plan_->adornment; }

  /// The queried predicate.
  PredId pred() const { return plan_->exemplar.goal.pred; }

  /// The compiled strategy.
  Strategy strategy() const { return plan_->strategy; }

  /// Number of bound positions, i.e. the arity of Answer's `bound_values`.
  size_t bound_arity() const { return plan_->bound_positions.size(); }

  /// The bound argument positions, ascending; `bound_values` pair up with
  /// these. The complement (the free positions, ascending) is the column
  /// order of answer tuples — which is what lets a serving layer filter a
  /// fully-free form's cached answers down to any bound instance.
  const std::vector<int>& bound_positions() const {
    return plan_->bound_positions;
  }

  /// True when every goal argument is a distinct plain variable. Only then
  /// is the form's answer set the complete relation over all argument
  /// positions: a repeated variable (p(X,X)) or a non-ground compound
  /// (p(f(X),Y)) also has zero bound positions, yet restricts the answers
  /// — so the serving layer's subsumption fast path must check this, not
  /// just bound_arity() == 0.
  bool fully_free() const { return plan_->fully_free; }

  /// The rewritten program evaluated for every instance (rewriting
  /// strategies only; empty for naive/semi-naive/top-down plans).
  const RewrittenProgram& rewritten() const { return plan_->rewritten; }

  /// The underlying immutable plan (shared, never written after Prepare).
  const CompiledPlan& plan() const { return *plan_; }

 private:
  PreparedQueryForm() = default;

  std::shared_ptr<const CompiledPlan> plan_;
};

}  // namespace magic

#endif  // MAGIC_ENGINE_PREPARED_H_
