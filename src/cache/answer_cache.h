#ifndef MAGIC_CACHE_ANSWER_CACHE_H_
#define MAGIC_CACHE_ANSWER_CACHE_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "ast/term.h"
#include "util/annotated_mutex.h"

namespace magic {

struct AnswerCacheOptions {
  /// Total byte budget across all shards (answers + key/entry overhead,
  /// estimated). An entry whose own footprint exceeds the per-shard share
  /// is not cached at all. 0 disables the cache (Get always misses, Put is
  /// a no-op).
  size_t max_bytes = size_t{64} << 20;
  /// Shard count, rounded up to a power of two. More shards mean less
  /// writer contention and smaller copy-on-write tables, at the cost of a
  /// coarser (per-shard) LRU horizon.
  size_t shards = 16;
};

/// A concurrent, sharded memo of completed query answers, keyed by
/// (form tag, seed tuple, database version).
///
/// The magic transformation specializes evaluation to a query's binding
/// seed, so a serving workload with repeated seeds recomputes identical
/// magic/IDB facts per request; this cache short-circuits that repetition.
/// The caller supplies an opaque `tag` naming the compiled query form (the
/// serving layer uses the PreparedQueryForm address) and the MVCC
/// `version` of the database snapshot the answer was computed against
/// (the serving layer uses VersionChain version numbers). Versions make
/// invalidation free: any net EDB write publishes a new version, so every
/// entry filled against an older snapshot becomes unreachable — no flush,
/// no sweep, no lock on the write path. Stale entries stop being touched
/// and age out of the byte-budgeted LRU.
///
/// Concurrency contract:
///   * Get is lock-free: a reader registers itself in a per-shard active
///     counter (two atomic RMWs), loads the shard's atomically published
///     immutable table snapshot, and copies out one shared_ptr — it never
///     blocks on a writer and never takes a mutex. LRU recency is an
///     atomic timestamp on the entry, stamped on hit.
///   * Put serializes on the shard mutex. It copies the shard's table
///     (copy-on-write), inserts, evicts least-recently-used entries while
///     over the shard's byte share, and publishes the new snapshot with a
///     seq_cst store. Retired snapshots are reclaimed once the reader
///     counter has been observed at zero after the retirement — a reader
///     registered later can only see the newer table (quiescent-state
///     reclamation). The check is opportunistic per Put; if sustained
///     reader traffic keeps losing it the race, the writer yield-waits
///     for a quiescent instant once a small retired-list bound is
///     exceeded, so memory stays bounded by the live table, a few
///     retired snapshots, and whatever in-flight readers pin.
///   * Answer payloads are immutable and shared_ptr-owned; a tuple set
///     returned by Get stays valid after the entry is evicted.
class AnswerCache {
 public:
  using Tuples = std::vector<std::vector<TermId>>;

  explicit AnswerCache(AnswerCacheOptions options = {});
  ~AnswerCache();

  AnswerCache(const AnswerCache&) = delete;
  AnswerCache& operator=(const AnswerCache&) = delete;

  bool enabled() const { return options_.max_bytes != 0; }

  /// Returns the cached answer for (tag, seed, version), or null on a miss.
  /// Lock-free; stamps the entry's recency on a hit.
  std::shared_ptr<const Tuples> Get(uintptr_t tag,
                                    std::span<const TermId> seed,
                                    uint64_t version) const;

  /// Caches `tuples` for (tag, seed, version). First writer wins: if the key
  /// is already present (two threads missed and evaluated concurrently)
  /// the existing entry is kept. Oversized answers are dropped.
  void Put(uintptr_t tag, std::vector<TermId> seed, uint64_t version,
           std::shared_ptr<const Tuples> tuples);

  /// Drops every entry (counters are kept).
  void Clear();

  /// Point-in-time counters. `hits`/`misses` count Get outcomes;
  /// `inserts`/`evictions`/`rejected_oversize` count Put outcomes; `bytes`
  /// and `entries` describe current occupancy.
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t inserts = 0;
    uint64_t evictions = 0;
    uint64_t rejected_oversize = 0;
    size_t entries = 0;
    size_t bytes = 0;
    size_t max_bytes = 0;
  };
  Stats stats() const;

 private:
  struct Key {
    uintptr_t tag = 0;
    uint64_t version = 0;
    std::vector<TermId> seed;
  };
  /// Borrowed view of a Key, so the lock-free Get never allocates.
  struct KeyView {
    uintptr_t tag = 0;
    uint64_t version = 0;
    std::span<const TermId> seed;
  };
  static size_t HashOf(uintptr_t tag, uint64_t version,
                       std::span<const TermId> seed);
  struct KeyHash {
    using is_transparent = void;
    size_t operator()(const Key& key) const {
      return HashOf(key.tag, key.version, key.seed);
    }
    size_t operator()(const KeyView& key) const {
      return HashOf(key.tag, key.version, key.seed);
    }
  };
  struct KeyEqual {
    using is_transparent = void;
    static bool Eq(uintptr_t tag, uint64_t version,
                   std::span<const TermId> seed, const Key& key) {
      return key.tag == tag && key.version == version &&
             std::equal(seed.begin(), seed.end(), key.seed.begin(),
                        key.seed.end());
    }
    bool operator()(const Key& a, const Key& b) const {
      return Eq(a.tag, a.version, a.seed, b);
    }
    bool operator()(const KeyView& a, const Key& b) const {
      return Eq(a.tag, a.version, a.seed, b);
    }
    bool operator()(const Key& a, const KeyView& b) const {
      return Eq(b.tag, b.version, b.seed, a);
    }
  };

  struct Entry {
    std::shared_ptr<const Tuples> tuples;
    size_t bytes = 0;
    /// LRU recency: the cache-global tick at the last hit/insert. Written
    /// lock-free from the hit path, read by the evictor under the shard
    /// mutex — monotonicity is approximate and that is fine for LRU.
    mutable std::atomic<uint64_t> last_used{0};
  };

  /// Immutable once published; replaced wholesale by each Put.
  using Table =
      std::unordered_map<Key, std::shared_ptr<Entry>, KeyHash, KeyEqual>;

  struct Shard {
    /// Seq_cst publication point of the current table (null = empty). The
    /// seq_cst pairing with `active_readers` is what lets the writer prove
    /// a quiescent point: it stores the new table, then reads the counter;
    /// any reader it misses registered after the store and therefore loads
    /// the new table, never a retired one.
    std::atomic<const Table*> table{nullptr};
    std::atomic<int64_t> active_readers{0};

    /// Writer-side state. Shard mutexes are leaves of the data plane:
    /// nothing ranked is ever taken under one.
    Mutex mutex{lock_rank::kCacheShard};
    std::unique_ptr<const Table> current_owner GUARDED_BY(mutex);
    std::vector<std::unique_ptr<const Table>> retired GUARDED_BY(mutex);
    size_t bytes GUARDED_BY(mutex) = 0;

    /// Occupancy mirrors for stats(), updated under mutex, read anywhere.
    std::atomic<size_t> bytes_published{0};
    std::atomic<size_t> entries_published{0};
  };

  /// Shard selection uses the upper half of the hash so it stays
  /// uncorrelated with the table's bucket index (which consumes the low
  /// bits) while still addressing every shard for any sane shard count.
  /// The shift is half the operand width, so it is well-defined (and
  /// non-degenerate) even where size_t is 32 bits.
  Shard& ShardFor(size_t hash) const {
    constexpr int kHalf = std::numeric_limits<size_t>::digits / 2;
    return shards_[(hash >> kHalf) & shard_mask_];
  }
  /// Publishes `next` as `shard`'s table and reclaims retired tables if
  /// the shard is quiescent. Caller holds the shard mutex.
  static void PublishTable(Shard& shard, std::unique_ptr<const Table> next)
      REQUIRES(shard.mutex);

  static size_t EntryBytes(const Key& key, const Tuples& tuples);

  AnswerCacheOptions options_;
  size_t shard_mask_ = 0;
  size_t shard_budget_ = 0;  // max_bytes / shard count
  mutable std::unique_ptr<Shard[]> shards_;
  mutable std::atomic<uint64_t> tick_{0};

  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> inserts_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> rejected_oversize_{0};
};

}  // namespace magic

#endif  // MAGIC_CACHE_ANSWER_CACHE_H_
