#include "cache/answer_cache.h"

#include <bit>
#include <thread>
#include <utility>

#include "util/hash.h"

namespace magic {

size_t AnswerCache::HashOf(uintptr_t tag, uint64_t version,
                           std::span<const TermId> seed) {
  uint64_t h = HashCombine(static_cast<uint64_t>(tag), version);
  return static_cast<size_t>(HashRange(seed.begin(), seed.end(), h));
}

AnswerCache::AnswerCache(AnswerCacheOptions options)
    : options_(options) {
  size_t shards = std::bit_ceil(options_.shards == 0 ? 1 : options_.shards);
  shard_mask_ = shards - 1;
  shard_budget_ = options_.max_bytes / shards;
  shards_ = std::make_unique<Shard[]>(shards);
}

AnswerCache::~AnswerCache() = default;

std::shared_ptr<const AnswerCache::Tuples> AnswerCache::Get(
    uintptr_t tag, std::span<const TermId> seed, uint64_t version) const {
  if (!enabled()) return nullptr;
  const size_t hash = HashOf(tag, version, seed);
  Shard& shard = ShardFor(hash);
  std::shared_ptr<const Tuples> result;

  // Reader registration (quiescent-state reclamation): the seq_cst
  // fetch_add/table-load pair mirrors Put's seq_cst table-store/counter-
  // load. Either the writer's counter read sees this reader (and defers
  // reclaiming the table it retired), or this reader's table load is
  // ordered after the writer's store and sees the new table — never a
  // reclaimed one.
  shard.active_readers.fetch_add(1, std::memory_order_seq_cst);
  if (const Table* table = shard.table.load(std::memory_order_seq_cst)) {
    auto it = table->find(KeyView{tag, version, seed});
    if (it != table->end()) {
      it->second->last_used.store(
          tick_.fetch_add(1, std::memory_order_relaxed),
          std::memory_order_relaxed);
      result = it->second->tuples;  // pins the payload past eviction
    }
  }
  shard.active_readers.fetch_sub(1, std::memory_order_seq_cst);

  (result ? hits_ : misses_).fetch_add(1, std::memory_order_relaxed);
  return result;
}

size_t AnswerCache::EntryBytes(const Key& key, const Tuples& tuples) {
  // An estimate, not an exact malloc audit: payload words plus container
  // and hash-node overheads. Consistent over- vs under-counting matters
  // more than precision — the budget is advisory sizing, not an OS limit.
  constexpr size_t kNodeOverhead = 64;  // unordered_map node + bucket share
  size_t bytes = kNodeOverhead + sizeof(Key) + sizeof(Entry) +
                 sizeof(std::shared_ptr<Entry>) +
                 key.seed.capacity() * sizeof(TermId) + sizeof(Tuples) +
                 tuples.capacity() * sizeof(std::vector<TermId>);
  for (const std::vector<TermId>& tuple : tuples) {
    bytes += tuple.capacity() * sizeof(TermId);
  }
  return bytes;
}

void AnswerCache::PublishTable(Shard& shard,
                               std::unique_ptr<const Table> next) {
  shard.table.store(next.get(), std::memory_order_seq_cst);
  if (shard.current_owner != nullptr) {
    shard.retired.push_back(std::move(shard.current_owner));
  }
  shard.current_owner = std::move(next);
  // Quiescent point: every reader this load misses registered after the
  // store above, so it can only hold the just-published table; everything
  // retired earlier is unreachable and safe to free. A single opportunistic
  // check usually suffices (reader sections are a handful of instructions),
  // but under sustained reader traffic it can keep losing the race — so
  // once the retired list has grown past a small bound, yield-wait for a
  // genuinely quiescent instant instead of letting one retired table per
  // Put pile up. Readers never take this mutex, so they drain freely.
  constexpr size_t kRetiredSoftLimit = 8;
  if (shard.active_readers.load(std::memory_order_seq_cst) == 0) {
    shard.retired.clear();
  } else if (shard.retired.size() > kRetiredSoftLimit) {
    while (shard.active_readers.load(std::memory_order_seq_cst) != 0) {
      std::this_thread::yield();
    }
    shard.retired.clear();
  }
}

void AnswerCache::Put(uintptr_t tag, std::vector<TermId> seed, uint64_t version,
                      std::shared_ptr<const Tuples> tuples) {
  if (!enabled() || tuples == nullptr) return;
  Key key{tag, version, std::move(seed)};
  const size_t hash = HashOf(key.tag, key.version, key.seed);
  const size_t bytes = EntryBytes(key, *tuples);
  if (bytes > shard_budget_) {
    rejected_oversize_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Shard& shard = ShardFor(hash);
  MutexLock lock(shard.mutex);

  // Copy-on-write: the published table is immutable, so build the next
  // snapshot from it. O(entries per shard) per insert — the cache is for
  // hit-dominated workloads, where Put is the rare path.
  auto next = std::make_unique<Table>(
      shard.current_owner != nullptr ? *shard.current_owner : Table{});
  auto entry = std::make_shared<Entry>();
  entry->tuples = std::move(tuples);
  entry->bytes = bytes;
  entry->last_used.store(tick_.fetch_add(1, std::memory_order_relaxed),
                         std::memory_order_relaxed);
  auto [it, inserted] = next->try_emplace(std::move(key), std::move(entry));
  if (!inserted) return;  // first writer wins; concurrent miss-fill race
  shard.bytes += bytes;
  inserts_.fetch_add(1, std::memory_order_relaxed);

  // Byte-budgeted LRU: evict stalest entries until back under the shard's
  // share. Ticks are unique, so while more than one entry remains the
  // just-inserted entry (highest tick) is never the minimum.
  while (shard.bytes > shard_budget_ && next->size() > 1) {
    auto victim = next->end();
    uint64_t oldest = 0;
    for (auto cur = next->begin(); cur != next->end(); ++cur) {
      uint64_t used = cur->second->last_used.load(std::memory_order_relaxed);
      if (victim == next->end() || used < oldest) {
        victim = cur;
        oldest = used;
      }
    }
    shard.bytes -= victim->second->bytes;
    next->erase(victim);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }

  shard.bytes_published.store(shard.bytes, std::memory_order_relaxed);
  shard.entries_published.store(next->size(), std::memory_order_relaxed);
  PublishTable(shard, std::move(next));
}

void AnswerCache::Clear() {
  if (!enabled()) return;
  for (size_t i = 0; i <= shard_mask_; ++i) {
    Shard& shard = shards_[i];
    MutexLock lock(shard.mutex);
    shard.bytes = 0;
    shard.bytes_published.store(0, std::memory_order_relaxed);
    shard.entries_published.store(0, std::memory_order_relaxed);
    PublishTable(shard, nullptr);
  }
}

AnswerCache::Stats AnswerCache::stats() const {
  Stats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.inserts = inserts_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.rejected_oversize =
      rejected_oversize_.load(std::memory_order_relaxed);
  stats.max_bytes = options_.max_bytes;
  for (size_t i = 0; i <= shard_mask_; ++i) {
    stats.bytes += shards_[i].bytes_published.load(std::memory_order_relaxed);
    stats.entries +=
        shards_[i].entries_published.load(std::memory_order_relaxed);
  }
  return stats;
}

}  // namespace magic
