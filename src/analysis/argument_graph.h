#ifndef MAGIC_ANALYSIS_ARGUMENT_GRAPH_H_
#define MAGIC_ANALYSIS_ARGUMENT_GRAPH_H_

#include <string>
#include <vector>

#include "core/adorn.h"

namespace magic {

/// The argument graph of Theorem 10.3: nodes are (adorned predicate, bound
/// argument position) pairs; there is an edge when a variable occupies bound
/// argument m of a rule's head and bound argument n of a body occurrence.
/// A cycle reachable from the query's node means the counting strategies
/// regenerate the corresponding counting fact with ever-growing indices and
/// therefore do not terminate, regardless of the data.
struct ArgumentGraph {
  struct Node {
    PredId pred = kInvalidPred;
    int position = 0;
  };
  std::vector<Node> nodes;
  std::vector<std::vector<int>> edges;  // adjacency
  std::vector<int> roots;               // the query predicate's bound nodes

  int IndexOf(PredId pred, int position) const {
    for (size_t i = 0; i < nodes.size(); ++i) {
      if (nodes[i].pred == pred && nodes[i].position == position) {
        return static_cast<int>(i);
      }
    }
    return -1;
  }
};

ArgumentGraph BuildArgumentGraph(const AdornedProgram& adorned);

/// True if some cycle of the argument graph is reachable from a root; a
/// description of one offending node is appended to `witness`.
bool HasReachableCycle(const ArgumentGraph& graph, const Universe& u,
                       std::vector<std::string>* witness);

}  // namespace magic

#endif  // MAGIC_ANALYSIS_ARGUMENT_GRAPH_H_
