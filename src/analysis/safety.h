#ifndef MAGIC_ANALYSIS_SAFETY_H_
#define MAGIC_ANALYSIS_SAFETY_H_

#include <string>
#include <vector>

#include "core/adorn.h"

namespace magic {

enum class SafetyVerdict {
  /// Theorem 10.2: Datalog (no function symbols) + magic sets terminates.
  kSafeDatalog,
  /// Theorem 10.1: every binding-graph cycle has positive length.
  kSafePositiveCycles,
  /// Theorem 10.3 applies: counting regenerates facts with growing indices.
  kUnsafeCountingCycle,
  /// Counting over an acyclic argument graph: terminates unless the *data*
  /// contains cycles (a dynamic property the static check cannot rule out).
  kSafeIfDataAcyclic,
  /// The sufficient conditions do not apply; nothing is claimed.
  kUnknown,
};

std::string SafetyVerdictName(SafetyVerdict verdict);

struct SafetyReport {
  SafetyVerdict verdict = SafetyVerdict::kUnknown;
  std::string explanation;
  std::vector<std::string> witness;

  bool IsSafe() const {
    return verdict == SafetyVerdict::kSafeDatalog ||
           verdict == SafetyVerdict::kSafePositiveCycles;
  }
};

/// True if any rule of the program uses a compound term.
bool ProgramHasFunctionSymbols(const Program& program);

/// Safety of bottom-up evaluation of the magic-sets rewriting for this
/// adorned program (Theorems 10.1 and 10.2).
SafetyReport CheckMagicSafety(const AdornedProgram& adorned);

/// Safety of the counting rewritings (Theorem 10.3 plus the cyclic-data
/// caveat).
SafetyReport CheckCountingSafety(const AdornedProgram& adorned);

}  // namespace magic

#endif  // MAGIC_ANALYSIS_SAFETY_H_
