#include "analysis/dependency_graph.h"

#include <algorithm>

namespace magic {

DependencyGraph::DependencyGraph(const Program& program) {
  preds_ = program.AllPredicates();
  std::sort(preds_.begin(), preds_.end());
  const size_t n = preds_.size();
  reach_.assign(n, std::vector<bool>(n, false));
  for (const Rule& rule : program.rules()) {
    int h = IndexOf(rule.head.pred);
    for (const Literal& lit : rule.body) {
      int b = IndexOf(lit.pred);
      if (h >= 0 && b >= 0) reach_[h][b] = true;
    }
  }
  for (size_t k = 0; k < n; ++k) {
    for (size_t i = 0; i < n; ++i) {
      if (!reach_[i][k]) continue;
      for (size_t j = 0; j < n; ++j) {
        if (reach_[k][j]) reach_[i][j] = true;
      }
    }
  }
  std::vector<bool> used(n, false);
  for (size_t i = 0; i < n; ++i) {
    if (used[i]) continue;
    std::vector<int> scc = {static_cast<int>(i)};
    used[i] = true;
    for (size_t j = i + 1; j < n; ++j) {
      if (!used[j] && reach_[i][j] && reach_[j][i]) {
        scc.push_back(static_cast<int>(j));
        used[j] = true;
      }
    }
    sccs_.push_back(std::move(scc));
  }
}

int DependencyGraph::IndexOf(PredId pred) const {
  auto it = std::lower_bound(preds_.begin(), preds_.end(), pred);
  if (it == preds_.end() || *it != pred) return -1;
  return static_cast<int>(it - preds_.begin());
}

bool DependencyGraph::IsRecursive(PredId pred) const {
  int i = IndexOf(pred);
  return i >= 0 && reach_[i][i];
}

bool DependencyGraph::DependsOn(PredId a, PredId b) const {
  int i = IndexOf(a);
  int j = IndexOf(b);
  return i >= 0 && j >= 0 && reach_[i][j];
}

}  // namespace magic
