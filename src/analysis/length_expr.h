#ifndef MAGIC_ANALYSIS_LENGTH_EXPR_H_
#define MAGIC_ANALYSIS_LENGTH_EXPR_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "ast/universe.h"

namespace magic {

/// A symbolic term length (paper, Section 10): |t| = 1 for a constant,
/// |f(t1..tn)| = 1 + sum |ti|, and |X| for a variable is unknown except
/// that |X| >= 1. A LengthExpr is a linear combination of variable lengths
/// plus a constant.
struct LengthExpr {
  std::map<SymbolId, int64_t> coeff;
  int64_t constant = 0;

  static LengthExpr OfTerm(const Universe& u, TermId term);

  LengthExpr& operator+=(const LengthExpr& other);
  LengthExpr& operator-=(const LengthExpr& other);

  /// The greatest lower bound given |v| >= 1 for every variable, or nullopt
  /// when a negative coefficient makes the expression unbounded below
  /// (variable lengths are unbounded above).
  std::optional<int64_t> LowerBound() const;

  std::string ToString(const Universe& u) const;
};

}  // namespace magic

#endif  // MAGIC_ANALYSIS_LENGTH_EXPR_H_
