#ifndef MAGIC_ANALYSIS_BINDING_GRAPH_H_
#define MAGIC_ANALYSIS_BINDING_GRAPH_H_

#include <optional>
#include <vector>

#include "analysis/length_expr.h"
#include "core/adorn.h"

namespace magic {

/// One arc of the binding graph (paper, Section 10): from the head's adorned
/// predicate to a bound-adorned body occurrence, weighted by the symbolic
/// difference between the total length of the head's bound arguments and the
/// total length of the occurrence's bound arguments.
struct BindingArc {
  int from = 0;  // node index
  int to = 0;
  int rule = 0;        // adorned rule index
  int occurrence = 0;  // body occurrence
  LengthExpr length;
  /// LowerBound() of `length` under |v| >= 1; nullopt = unbounded below.
  std::optional<int64_t> lower_bound;
};

/// The binding graph of an adorned program; nodes are the adorned derived
/// predicates, the root is the adorned query predicate.
struct BindingGraph {
  std::vector<PredId> nodes;
  std::vector<BindingArc> arcs;
  int root = -1;

  int IndexOf(PredId pred) const {
    for (size_t i = 0; i < nodes.size(); ++i) {
      if (nodes[i] == pred) return static_cast<int>(i);
    }
    return -1;
  }
};

BindingGraph BuildBindingGraph(const AdornedProgram& adorned);

/// Theorem 10.1's premise: is every cycle of the binding graph of positive
/// length? Returns nullopt ("cannot tell") when some cycle crosses an arc
/// with an unbounded-below length; otherwise true/false. On false/unknown a
/// description of the offending cycle is appended to `witness`.
std::optional<bool> AllCyclesPositive(const BindingGraph& graph,
                                      const Universe& u,
                                      std::vector<std::string>* witness);

}  // namespace magic

#endif  // MAGIC_ANALYSIS_BINDING_GRAPH_H_
