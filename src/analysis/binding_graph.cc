#include "analysis/binding_graph.h"

#include "core/rewrite_common.h"

namespace magic {

BindingGraph BuildBindingGraph(const AdornedProgram& adorned) {
  const Universe& u = *adorned.program.universe();
  BindingGraph graph;
  graph.nodes = adorned.program.HeadPredicates();
  graph.root = graph.IndexOf(adorned.query_pred);

  for (size_t ri = 0; ri < adorned.program.rules().size(); ++ri) {
    const Rule& rule = adorned.program.rules()[ri];
    int from = graph.IndexOf(rule.head.pred);
    if (from < 0) continue;
    const Adornment& head_ad = PredAdornment(u, rule.head.pred);
    LengthExpr head_len;
    for (TermId arg : BoundArgs(rule.head, head_ad)) {
      head_len += LengthExpr::OfTerm(u, arg);
    }
    for (size_t occ = 0; occ < rule.body.size(); ++occ) {
      const Literal& lit = rule.body[occ];
      if (!IsBoundAdorned(u, lit.pred)) continue;
      int to = graph.IndexOf(lit.pred);
      if (to < 0) continue;
      BindingArc arc;
      arc.from = from;
      arc.to = to;
      arc.rule = static_cast<int>(ri);
      arc.occurrence = static_cast<int>(occ);
      arc.length = head_len;
      LengthExpr body_len;
      for (TermId arg : BoundArgs(lit, PredAdornment(u, lit.pred))) {
        body_len += LengthExpr::OfTerm(u, arg);
      }
      arc.length -= body_len;
      arc.lower_bound = arc.length.LowerBound();
      graph.arcs.push_back(std::move(arc));
    }
  }
  return graph;
}

std::optional<bool> AllCyclesPositive(const BindingGraph& graph,
                                      const Universe& u,
                                      std::vector<std::string>* witness) {
  const size_t n = graph.nodes.size();
  auto describe = [&](const BindingArc& arc) {
    const PredicateInfo& f = u.predicates().info(graph.nodes[arc.from]);
    const PredicateInfo& t = u.predicates().info(graph.nodes[arc.to]);
    return u.symbols().Name(f.name) + " -> " + u.symbols().Name(t.name) +
           " (rule " + std::to_string(arc.rule + 1) + ", length " +
           arc.length.ToString(u) + ")";
  };

  // Reachability for "is this arc on a cycle".
  std::vector<std::vector<bool>> reach(n, std::vector<bool>(n, false));
  for (const BindingArc& arc : graph.arcs) {
    reach[arc.from][arc.to] = true;
  }
  for (size_t k = 0; k < n; ++k) {
    for (size_t i = 0; i < n; ++i) {
      if (!reach[i][k]) continue;
      for (size_t j = 0; j < n; ++j) {
        if (reach[k][j]) reach[i][j] = true;
      }
    }
  }

  for (const BindingArc& arc : graph.arcs) {
    bool on_cycle = reach[arc.to][arc.from] ||
                    (arc.from == arc.to);
    if (on_cycle && !arc.lower_bound.has_value()) {
      if (witness != nullptr) {
        witness->push_back("arc with unbounded-below length on a cycle: " +
                           describe(arc));
      }
      return std::nullopt;
    }
  }

  // Scaled Bellman-Ford: a cycle with (original) weight <= 0 exists iff the
  // graph with weights w*V - 1 has a negative cycle (V bounds cycle length:
  // if sum(w) <= 0 then V*sum(w) - len < 0; if sum(w) >= 1 then
  // V*sum(w) - len >= V - len >= 0).
  const int64_t kScale = static_cast<int64_t>(n) + 1;
  std::vector<int64_t> dist(n, 0);  // virtual source at distance 0 to all
  int relaxed_arc = -1;
  for (size_t pass = 0; pass <= n; ++pass) {
    relaxed_arc = -1;
    for (size_t a = 0; a < graph.arcs.size(); ++a) {
      const BindingArc& arc = graph.arcs[a];
      if (!arc.lower_bound.has_value()) continue;  // not on any cycle
      int64_t w = *arc.lower_bound * kScale - 1;
      if (dist[arc.from] + w < dist[arc.to]) {
        dist[arc.to] = dist[arc.from] + w;
        relaxed_arc = static_cast<int>(a);
      }
    }
    if (relaxed_arc == -1) break;
  }
  if (relaxed_arc != -1) {
    if (witness != nullptr) {
      witness->push_back("non-positive cycle through arc: " +
                         describe(graph.arcs[relaxed_arc]));
    }
    return false;
  }
  return true;
}

}  // namespace magic
