#include "analysis/length_expr.h"

namespace magic {

namespace {

void Accumulate(const Universe& u, TermId term, int64_t sign,
                LengthExpr* expr) {
  const TermData& data = u.terms().Get(term);
  switch (data.kind) {
    case TermKind::kConstant:
    case TermKind::kInteger:
      expr->constant += sign;
      return;
    case TermKind::kVariable:
      expr->coeff[data.symbol] += sign;
      return;
    case TermKind::kCompound:
      expr->constant += sign;
      for (TermId child : data.children) Accumulate(u, child, sign, expr);
      return;
    case TermKind::kAffine:
      // Counting indices never appear in the adorned programs the binding
      // graph is built over; treat defensively as unit length.
      expr->constant += sign;
      return;
  }
}

}  // namespace

LengthExpr LengthExpr::OfTerm(const Universe& u, TermId term) {
  LengthExpr expr;
  Accumulate(u, term, 1, &expr);
  return expr;
}

LengthExpr& LengthExpr::operator+=(const LengthExpr& other) {
  constant += other.constant;
  for (const auto& [v, c] : other.coeff) {
    coeff[v] += c;
    if (coeff[v] == 0) coeff.erase(v);
  }
  return *this;
}

LengthExpr& LengthExpr::operator-=(const LengthExpr& other) {
  constant -= other.constant;
  for (const auto& [v, c] : other.coeff) {
    coeff[v] -= c;
    if (coeff[v] == 0) coeff.erase(v);
  }
  return *this;
}

std::optional<int64_t> LengthExpr::LowerBound() const {
  int64_t bound = constant;
  for (const auto& [v, c] : coeff) {
    if (c < 0) return std::nullopt;
    bound += c;  // |v| >= 1
  }
  return bound;
}

std::string LengthExpr::ToString(const Universe& u) const {
  std::string out;
  for (const auto& [v, c] : coeff) {
    if (!out.empty()) out += " + ";
    if (c != 1) out += std::to_string(c) + "*";
    out += "|" + u.symbols().Name(v) + "|";
  }
  if (constant != 0 || out.empty()) {
    if (!out.empty()) out += " + ";
    out += std::to_string(constant);
  }
  return out;
}

}  // namespace magic
