#include "analysis/safety.h"

#include "analysis/argument_graph.h"
#include "analysis/binding_graph.h"

namespace magic {

namespace {

bool TermHasFunctionSymbol(const Universe& u, TermId term) {
  const TermData& data = u.terms().Get(term);
  if (data.kind == TermKind::kCompound) return true;
  for (TermId child : data.children) {
    if (TermHasFunctionSymbol(u, child)) return true;
  }
  return false;
}

}  // namespace

std::string SafetyVerdictName(SafetyVerdict verdict) {
  switch (verdict) {
    case SafetyVerdict::kSafeDatalog: return "safe (Datalog, Thm 10.2)";
    case SafetyVerdict::kSafePositiveCycles:
      return "safe (positive binding-graph cycles, Thm 10.1)";
    case SafetyVerdict::kUnsafeCountingCycle:
      return "unsafe (cyclic reachable argument graph, Thm 10.3)";
    case SafetyVerdict::kSafeIfDataAcyclic:
      return "safe if the data is acyclic (counting caveat, Sec 10)";
    case SafetyVerdict::kUnknown: return "unknown";
  }
  return "unknown";
}

bool ProgramHasFunctionSymbols(const Program& program) {
  const Universe& u = *program.universe();
  for (const Rule& rule : program.rules()) {
    for (TermId arg : rule.head.args) {
      if (TermHasFunctionSymbol(u, arg)) return true;
    }
    for (const Literal& lit : rule.body) {
      for (TermId arg : lit.args) {
        if (TermHasFunctionSymbol(u, arg)) return true;
      }
    }
  }
  return false;
}

SafetyReport CheckMagicSafety(const AdornedProgram& adorned) {
  SafetyReport report;
  const Universe& u = *adorned.program.universe();
  if (!ProgramHasFunctionSymbols(adorned.program)) {
    report.verdict = SafetyVerdict::kSafeDatalog;
    report.explanation =
        "Datalog program: the Herbrand universe of query constants and "
        "database constants is finite, so the magic-sets strategies are "
        "safe (Theorem 10.2)";
    return report;
  }
  BindingGraph graph = BuildBindingGraph(adorned);
  std::optional<bool> positive =
      AllCyclesPositive(graph, u, &report.witness);
  if (positive.has_value() && *positive) {
    report.verdict = SafetyVerdict::kSafePositiveCycles;
    report.explanation =
        "every cycle of the binding graph has positive length, so bound "
        "arguments shrink along recursion and bottom-up evaluation of the "
        "rewritten program terminates (Theorem 10.1)";
  } else {
    report.verdict = SafetyVerdict::kUnknown;
    report.explanation =
        "the positive-cycle condition of Theorem 10.1 could not be "
        "established; termination is not guaranteed by the static check";
  }
  return report;
}

SafetyReport CheckCountingSafety(const AdornedProgram& adorned) {
  SafetyReport report;
  const Universe& u = *adorned.program.universe();
  if (!ProgramHasFunctionSymbols(adorned.program)) {
    // Theorem 10.3 is stated for Datalog: values cannot shrink, so a cycle
    // of bound argument positions regenerates the same value at ever-higher
    // index levels.
    ArgumentGraph graph = BuildArgumentGraph(adorned);
    if (HasReachableCycle(graph, u, &report.witness)) {
      report.verdict = SafetyVerdict::kUnsafeCountingCycle;
      report.explanation =
          "the argument graph has a cycle reachable from the query, so the "
          "counting strategies regenerate the query's counting fact with "
          "monotonically increasing indices and do not terminate "
          "(Theorem 10.3)";
      return report;
    }
    report.verdict = SafetyVerdict::kSafeIfDataAcyclic;
    report.explanation =
        "acyclic argument graph: counting terminates on acyclic data, but "
        "cyclic data can still produce the same value at unboundedly many "
        "index levels (Section 10)";
    return report;
  }
  // With function symbols, Theorem 10.1 applies: positive binding-graph
  // cycles mean the bound arguments shrink along recursion, which bounds
  // the recursion depth and hence the counting indices (list reverse is the
  // appendix's example: its argument positions recur but with strictly
  // shorter terms).
  BindingGraph bgraph = BuildBindingGraph(adorned);
  std::optional<bool> positive =
      AllCyclesPositive(bgraph, u, &report.witness);
  if (positive.has_value() && *positive) {
    report.verdict = SafetyVerdict::kSafePositiveCycles;
    report.explanation =
        "every binding-graph cycle has positive length, which bounds the "
        "recursion depth and hence the counting indices (Theorem 10.1)";
  } else {
    report.verdict = SafetyVerdict::kUnknown;
    report.explanation =
        "no sufficient condition for counting termination applies";
  }
  return report;
}

}  // namespace magic
