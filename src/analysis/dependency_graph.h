#ifndef MAGIC_ANALYSIS_DEPENDENCY_GRAPH_H_
#define MAGIC_ANALYSIS_DEPENDENCY_GRAPH_H_

#include <vector>

#include "ast/program.h"

namespace magic {

/// The predicate dependency graph of a program (head depends on body) with
/// its strongly connected components. Used for recursion detection, the
/// semijoin optimization's blocks, and reporting.
class DependencyGraph {
 public:
  explicit DependencyGraph(const Program& program);

  const std::vector<PredId>& preds() const { return preds_; }

  int IndexOf(PredId pred) const;

  /// SCCs in some order; each is a list of predicate indices.
  const std::vector<std::vector<int>>& sccs() const { return sccs_; }

  /// True if `pred` is part of a dependency cycle (mutual or self recursion).
  bool IsRecursive(PredId pred) const;

  /// True if `a` depends (transitively) on `b`.
  bool DependsOn(PredId a, PredId b) const;

 private:
  std::vector<PredId> preds_;
  std::vector<std::vector<bool>> reach_;
  std::vector<std::vector<int>> sccs_;
};

}  // namespace magic

#endif  // MAGIC_ANALYSIS_DEPENDENCY_GRAPH_H_
