#include "analysis/argument_graph.h"

#include "core/rewrite_common.h"

namespace magic {

ArgumentGraph BuildArgumentGraph(const AdornedProgram& adorned) {
  const Universe& u = *adorned.program.universe();
  ArgumentGraph graph;

  // Nodes: bound positions of every adorned derived predicate.
  for (PredId pred : adorned.program.HeadPredicates()) {
    const Adornment& a = PredAdornment(u, pred);
    for (size_t p = 0; p < a.size(); ++p) {
      if (a.bound(p)) {
        graph.nodes.push_back(ArgumentGraph::Node{pred, static_cast<int>(p)});
      }
    }
  }
  graph.edges.assign(graph.nodes.size(), {});
  for (size_t i = 0; i < graph.nodes.size(); ++i) {
    if (graph.nodes[i].pred == adorned.query_pred) {
      graph.roots.push_back(static_cast<int>(i));
    }
  }

  for (const Rule& rule : adorned.program.rules()) {
    const Adornment& head_ad = PredAdornment(u, rule.head.pred);
    for (size_t hp = 0; hp < rule.head.args.size(); ++hp) {
      if (hp >= head_ad.size() || !head_ad.bound(hp)) continue;
      int from = graph.IndexOf(rule.head.pred, static_cast<int>(hp));
      if (from < 0) continue;
      std::vector<SymbolId> head_vars;
      u.terms().AppendVariables(rule.head.args[hp], &head_vars);
      for (const Literal& lit : rule.body) {
        if (!IsBoundAdorned(u, lit.pred)) continue;
        const Adornment& body_ad = PredAdornment(u, lit.pred);
        for (size_t bp = 0; bp < lit.args.size(); ++bp) {
          if (bp >= body_ad.size() || !body_ad.bound(bp)) continue;
          bool shares = false;
          for (SymbolId v : head_vars) {
            if (u.terms().ContainsVariable(lit.args[bp], v)) {
              shares = true;
              break;
            }
          }
          if (!shares) continue;
          int to = graph.IndexOf(lit.pred, static_cast<int>(bp));
          if (to >= 0) graph.edges[from].push_back(to);
        }
      }
    }
  }
  return graph;
}

bool HasReachableCycle(const ArgumentGraph& graph, const Universe& u,
                       std::vector<std::string>* witness) {
  const size_t n = graph.nodes.size();
  std::vector<std::vector<bool>> reach(n, std::vector<bool>(n, false));
  for (size_t i = 0; i < n; ++i) {
    for (int j : graph.edges[i]) reach[i][j] = true;
  }
  for (size_t k = 0; k < n; ++k) {
    for (size_t i = 0; i < n; ++i) {
      if (!reach[i][k]) continue;
      for (size_t j = 0; j < n; ++j) {
        if (reach[k][j]) reach[i][j] = true;
      }
    }
  }
  for (size_t i = 0; i < n; ++i) {
    if (!reach[i][i]) continue;  // not on a cycle
    bool reachable = false;
    for (int root : graph.roots) {
      if (static_cast<size_t>(root) == i || reach[root][i]) {
        reachable = true;
        break;
      }
    }
    if (reachable) {
      if (witness != nullptr) {
        const PredicateInfo& info = u.predicates().info(graph.nodes[i].pred);
        witness->push_back(
            "cyclic reachable argument-graph node: " +
            u.symbols().Name(info.name) + " argument " +
            std::to_string(graph.nodes[i].position + 1));
      }
      return true;
    }
  }
  return false;
}

}  // namespace magic
