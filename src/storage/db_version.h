#ifndef MAGIC_STORAGE_DB_VERSION_H_
#define MAGIC_STORAGE_DB_VERSION_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "storage/database.h"
#include "util/annotated_mutex.h"

namespace magic {

/// One immutable published database version. Holds a structural-sharing
/// Database snapshot (a map of shared_ptr<Relation> slots — relations are
/// shared with the base until the base copy-on-writes them), the version
/// number readers and the AnswerCache key by, and the base epoch the
/// snapshot was taken at. Readers pin one of these for a whole evaluation;
/// nothing in it ever mutates, so no read-side lock exists. Retirement is
/// the shared_ptr refcount itself — when the last pin (or the chain head)
/// drops, the destructor reports the retirement and the relations the
/// snapshot was the last owner of are freed.
class DatabaseVersion {
 public:
  DatabaseVersion(const Database& snapshot, uint64_t version,
                  uint64_t base_epoch, std::atomic<uint64_t>* retired)
      : db_(snapshot),
        version_(version),
        base_epoch_(base_epoch),
        retired_(retired) {}
  ~DatabaseVersion() {
    if (retired_ != nullptr) {
      retired_->fetch_add(1, std::memory_order_acq_rel);
    }
  }
  DatabaseVersion(const DatabaseVersion&) = delete;
  DatabaseVersion& operator=(const DatabaseVersion&) = delete;

  const Database& db() const { return db_; }
  uint64_t version() const { return version_; }
  /// Base Database::epoch() at snapshot time; the chain compares this
  /// against the live counter to detect out-of-band mutation.
  uint64_t base_epoch() const { return base_epoch_; }

 private:
  const Database db_;
  const uint64_t version_;
  const uint64_t base_epoch_;
  std::atomic<uint64_t>* const retired_;
};

/// The MVCC spine: an atomically published chain of DatabaseVersions over
/// one mutable base Database.
///
///   * Readers call Pin() at dispatch — one atomic shared_ptr load on the
///     steady state — and evaluate against the pinned version's Database
///     for as long as they like. A pin never blocks a writer and a writer
///     never invalidates a pin.
///   * Writers call Commit(): the batch is applied to the base (shared
///     relations are cloned before mutation, so every pinned snapshot
///     keeps its exact tuple sets), and iff the base net-changed, version
///     N+1 is published with a single release store. No drain, no waiting
///     on in-flight fixpoints; a no-op batch publishes nothing and cached
///     answers stay warm.
///   * Out-of-band writes (test code mutating the base directly at a
///     quiescent point, no Commit involved) are detected by comparing the
///     base epoch against the head's fill epoch; the next Pin()
///     resynchronizes by publishing a fresh snapshot under resync_mutex_.
///
/// The commit/publish protocol and why a reader can never observe a torn
/// version: Commit sets `commit_active_` (release) BEFORE mutating the
/// base and clears it AFTER publishing the new head. A reader whose
/// epoch check fails therefore distinguishes two cases: if the flag is
/// set, a commit is mid-flight and the current head — version N of the
/// N-or-N+1 guarantee — is returned untouched (the read linearizes before
/// the write); if the flag is clear, the mutation is complete (epoch
/// bumps happen-before the flag transitions) and the resync path takes
/// resync_mutex_ — which Commit holds across its whole mutate+publish
/// window — so the snapshot it copies is always of a fully settled base.
class VersionChain {
 public:
  /// Publishes version 1 as a snapshot of `base` now. The base must
  /// outlive the chain; mutations after construction must go through
  /// Commit (or be quiescent-point writes per the contract above).
  explicit VersionChain(const Database& base);

  /// The current version for this evaluation: one acquire load, plus an
  /// epoch cross-check that triggers resync only after out-of-band writes.
  std::shared_ptr<const DatabaseVersion> Pin() const;

  /// Current version number for the warm-hit inline probe: two plain
  /// atomic loads on the steady state (the libstdc++ atomic<shared_ptr>
  /// load takes a spinlock, so the hot path avoids pinning). Performs the
  /// same epoch cross-check as Pin() so a cache probe after an
  /// out-of-band quiescent write keys at the resynced version, never the
  /// stale one.
  uint64_t current_version() const;

  /// Applies a pre-validated batch to `base` (which must be the base this
  /// chain was constructed over) and publishes the next version iff the
  /// batch net-changed it. The caller serializes Commit calls
  /// (QueryService's FIFO ticket does); concurrent Pin()s need nothing.
  WriteResult Commit(Database& base, const WriteBatch& batch);

  /// Versions published so far, including the constructor's version 1.
  uint64_t versions_published() const {
    return published_.load(std::memory_order_acquire);
  }
  /// Versions fully retired (destroyed after their last pin dropped).
  uint64_t versions_retired() const {
    return retired_.load(std::memory_order_acquire);
  }
  /// Versions still alive: the head plus any older versions kept alive
  /// only by reader pins.
  uint64_t versions_live() const {
    return versions_published() - versions_retired();
  }

 private:
  const Database& base_;
  /// Retirement counter, written from DatabaseVersion destructors; must
  /// outlive head_ (declared first => destroyed last).
  mutable std::atomic<uint64_t> retired_{0};
  mutable std::atomic<uint64_t> published_{0};
  mutable std::atomic<uint64_t> version_{0};
  /// Mirror of head_->base_epoch() readable without loading the head
  /// shared_ptr; lets current_version() run the Pin() epoch cross-check
  /// with plain atomics.
  mutable std::atomic<uint64_t> head_epoch_{0};
  std::atomic<bool> commit_active_{false};
  /// Serializes resync snapshots against the Commit mutate+publish window.
  mutable Mutex resync_mutex_{lock_rank::kVersionResync};
  mutable std::atomic<std::shared_ptr<const DatabaseVersion>> head_;
};

}  // namespace magic

#endif  // MAGIC_STORAGE_DB_VERSION_H_
