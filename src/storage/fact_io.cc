#include "storage/fact_io.h"

#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace magic {

namespace {

bool LooksLikeInteger(const std::string& field) {
  if (field.empty()) return false;
  size_t start = field[0] == '-' ? 1 : 0;
  if (start == field.size()) return false;
  for (size_t i = start; i < field.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(field[i]))) return false;
  }
  return true;
}

}  // namespace

Status LoadFactsFile(PredId pred, const std::string& path, Database* db) {
  Universe& u = db->u();
  const PredicateInfo& info = u.predicates().info(pred);
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open fact file: " + path);
  }
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    std::vector<TermId> tuple;
    std::stringstream ss(line);
    std::string field;
    while (std::getline(ss, field, '\t')) {
      tuple.push_back(LooksLikeInteger(field)
                          ? u.Integer(std::stoll(field))
                          : u.Constant(field));
    }
    if (tuple.size() != info.arity) {
      return Status::InvalidArgument(
          path + ":" + std::to_string(line_number) + ": expected " +
          std::to_string(info.arity) + " fields, got " +
          std::to_string(tuple.size()));
    }
    MAGIC_RETURN_IF_ERROR(db->AddFact(pred, std::move(tuple)));
  }
  return Status::OK();
}

Status LoadFactsDirectory(const Program& program, const std::string& dir,
                          Database* db) {
  namespace fs = std::filesystem;
  Universe& u = db->u();
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    return Status::NotFound("not a directory: " + dir);
  }
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    fs::path path = entry.path();
    if (path.extension() != ".facts") continue;
    std::string name = path.stem().string();
    std::optional<SymbolId> sym = u.symbols().Find(name);
    std::optional<PredId> pred;
    if (sym.has_value()) {
      // Arity comes from the program's declaration; try every declared
      // arity for this name (in practice one).
      for (uint32_t arity = 0; arity <= 8 && !pred.has_value(); ++arity) {
        pred = u.predicates().Find(*sym, arity);
      }
    }
    if (!pred.has_value()) {
      return Status::InvalidArgument(
          "fact file " + path.string() +
          " does not match any predicate of the program");
    }
    if (program.IsHeadPredicate(*pred)) {
      return Status::InvalidArgument(
          "fact file " + path.string() +
          " targets a derived predicate; facts belong to base relations");
    }
    MAGIC_RETURN_IF_ERROR(LoadFactsFile(*pred, path.string(), db));
  }
  return Status::OK();
}

Status WriteFactsFile(const Universe& u, const Relation& relation,
                      const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::InvalidArgument("cannot open for writing: " + path);
  }
  for (size_t row = 0; row < relation.size(); ++row) {
    std::span<const TermId> tuple = relation.Row(row);
    for (size_t i = 0; i < tuple.size(); ++i) {
      if (i > 0) out << '\t';
      out << u.TermToString(tuple[i]);
    }
    out << '\n';
  }
  return Status::OK();
}

}  // namespace magic
