#ifndef MAGIC_STORAGE_RELATION_H_
#define MAGIC_STORAGE_RELATION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "ast/term.h"
#include "util/annotated_mutex.h"

namespace magic {

/// A set of ground tuples of fixed arity, stored flat and append-only.
///
/// Append-only storage gives the semi-naive evaluator its deltas for free:
/// the delta of an iteration is a row range [prev_size, cur_size), so no
/// separate delta relations are materialized.
///
/// Point lookups build hash indices lazily, one per bound-column mask, and
/// extend them incrementally as rows are appended (the iterator-invalidation
/// hazards of rebuilding mid-fixpoint are avoided by the watermark design).
///
/// Concurrency contract: `Insert` (and any other mutation of the row data)
/// requires exclusive access — rows are written single-threaded, e.g. while
/// loading an EDB or inside one evaluator's fixpoint. Once the rows are
/// quiescent, all const members including `Probe` are safe to call from any
/// number of threads concurrently: the lazy per-mask index build that Probe
/// performs under `const` runs behind a mutex, and an index is published
/// into an immutable snapshot table (atomic pointer, release/acquire) only
/// once it is fully built for the current row count. Steady-state probes
/// are therefore a single acquire load with no read-side lock at all —
/// this is what lets QueryService serve many queries against one shared
/// Relation without the probe hot path contending on anything. Under the
/// MVCC write path a relation shared with a pinned DatabaseVersion is
/// never mutated at all: Database copy-on-writes it (the copy constructor
/// below), so "exclusive access" for mutation means exclusive access to
/// the writer's private clone.
class Relation {
 public:
  explicit Relation(uint32_t arity) : arity_(arity) {}

  /// Copy-on-write clone: copies the tuple set, the dedup map, and the
  /// epoch value, and seeds an empty index per mask the source had built
  /// (published immediately, rows_built = 0, so the first probe on the
  /// clone rebuilds lazily instead of paying the build up front for masks
  /// the workload may never touch again). Safe to call while other
  /// threads probe the SOURCE (its index set is read under its mutex);
  /// the clone itself is invisible to them until the caller publishes it.
  Relation(const Relation& other);
  Relation& operator=(const Relation&) = delete;

  uint32_t arity() const { return arity_; }
  size_t size() const { return arity_ == 0 ? zero_ary_count_ : data_.size() / arity_; }

  /// Monotonically increasing mutation epoch: bumped by every mutation that
  /// changes the tuple set (an Insert of a new tuple, a Retract of a
  /// present one, a Clear of a non-empty relation), never by a no-op
  /// mutation (duplicate insert, retract of an absent tuple, clear when
  /// already empty) or by reads. Cross-query caches key their entries by
  /// the epoch observed at fill time, so any write makes stale entries
  /// unreachable without a flush — and a no-op write spuriously
  /// invalidating every entry would be a bug, which is why the no-op cases
  /// are epoch-silent. Reading the epoch is always safe; the writes it
  /// observes follow the class's mutation contract (exclusive access), so
  /// an epoch read racing a write is the caller's existing bug, not a new
  /// one.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// RAII epoch deferral for batch application: while one is alive, the
  /// relation's mutations record that the tuple set changed instead of
  /// bumping the epoch per call, and the destructor advances the epoch
  /// exactly once iff any mutation occurred. This is how an applied
  /// WriteBatch bumps each mutated relation's epoch once, not once per
  /// tuple. Requires the same exclusive access as the mutations it wraps;
  /// batches must not nest.
  class EpochBatch {
   public:
    explicit EpochBatch(Relation& rel) : rel_(rel) {
      rel_.epoch_deferred_ = true;
      rel_.deferred_dirty_ = false;
    }
    ~EpochBatch() {
      rel_.epoch_deferred_ = false;
      if (rel_.deferred_dirty_) rel_.BumpEpoch();
    }
    EpochBatch(const EpochBatch&) = delete;
    EpochBatch& operator=(const EpochBatch&) = delete;

    /// Cancels the owed bump. For the caller that can prove the batch's
    /// NET effect on the tuple set is zero (every transient change was
    /// undone within the batch — e.g. an insert of an absent tuple
    /// followed by its retract): readers can never observe intermediate
    /// states (the batch runs under exclusive access), so to them no
    /// mutation happened and no invalidation is owed.
    void DiscardPendingBump() { rel_.deferred_dirty_ = false; }

   private:
    Relation& rel_;
  };

  /// Mirrors every epoch bump into `counter` (Database's O(1) aggregate
  /// epoch). The counter must outlive the relation; pass null to unbind.
  void BindEpochCounter(std::atomic<uint64_t>* counter) {
    aggregate_epoch_ = counter;
  }

  /// Inserts a tuple; returns true if it was new.
  bool Insert(std::span<const TermId> tuple);

  /// Removes one tuple; returns true if it was present (and bumps the
  /// epoch), false for an absent tuple (no epoch movement). Removal is
  /// swap-with-last (row order is not semantic at rest), so the call is
  /// O(arity + bucket) — a batch of K retracts costs O(K), plus one
  /// index rebuild per relation afterwards: retraction breaks the
  /// append-only watermark design, so the per-mask indices are marked
  /// invalidated and rebuilt from scratch (lazily on the next probe, or
  /// eagerly via RebuildIndexes). Requires exclusive access, like Insert.
  bool Retract(std::span<const TermId> tuple);

  /// Removes every tuple (and all indices). A no-op on an already-empty
  /// relation — the tuple set is unchanged, so the mutation epoch must not
  /// move (a spurious bump would invalidate every cached answer for no
  /// reason). Requires exclusive access, like Insert.
  void Clear();

  /// Rebuilds every previously-built per-mask index up to the current row
  /// count and leaves the snapshot table published, so the first probe
  /// after a mutation batch pays no build. Intended for the write seam
  /// (called while the writer still holds exclusive access); a no-op when
  /// no index was ever built.
  void RebuildIndexes();

  bool Contains(std::span<const TermId> tuple) const;

  /// Returns the row index of `tuple`, or nullopt if absent.
  std::optional<uint32_t> FindRow(std::span<const TermId> tuple) const;

  std::span<const TermId> Row(size_t row) const {
    return std::span<const TermId>(data_.data() + row * arity_, arity_);
  }

  /// Appends to `out` the rows in [from_row, to_row) whose columns selected
  /// by `mask` (bit i = column i) equal `key[k]` for the k-th set bit.
  /// Builds/extends the index for `mask` on demand.
  void Probe(uint64_t mask, std::span<const TermId> key, size_t from_row,
             size_t to_row, std::vector<uint32_t>* out) const;

  /// Allocation-free probe: yields the row indices Probe would produce,
  /// one Next() at a time, with no output vector. The cursor borrows the
  /// relation, the key storage, and (for mask != 0) the index bucket it
  /// iterates, so it is only valid while none of those move: rows and
  /// indices of *this relation for this mask* must not grow while the
  /// cursor is live (appending to a different relation, or building a
  /// different mask's index, is fine — Index objects are stable once
  /// created). The compiled join loop guarantees this by routing
  /// self-recursive literals (whose relation grows mid-rule) through the
  /// copy-out Probe instead.
  class Cursor {
   public:
    /// Sentinel returned when the cursor is exhausted.
    static constexpr uint32_t kDone = 0xFFFFFFFFu;

    /// Next matching row index in ascending order, or kDone.
    uint32_t Next() {
      if (bucket_ == nullptr) {  // scan path (mask == 0)
        if (pos_ >= end_) return kDone;
        return static_cast<uint32_t>(pos_++);
      }
      while (pos_ < end_) {
        const uint32_t row = (*bucket_)[pos_++];
        if (row >= to_) return kDone;  // bucket rows ascend: nothing further
        if (rel_->RowMatchesKey(mask_, key_, row)) return row;
      }
      return kDone;
    }

   private:
    friend class Relation;
    const Relation* rel_ = nullptr;
    const std::vector<uint32_t>* bucket_ = nullptr;  // null => scan path
    size_t pos_ = 0;   // scan: next row; bucket: next bucket position
    size_t end_ = 0;   // scan: to_row; bucket: bucket size
    size_t to_ = 0;    // bucket path: exclusive row bound
    uint64_t mask_ = 0;
    const TermId* key_ = nullptr;  // borrowed; caller keeps it alive
  };

  /// Opens a cursor over the rows Probe(mask, key, from_row, to_row, ...)
  /// would return. Builds/extends the index for `mask` on demand (same
  /// ensure logic as Probe); the steady-state open is one acquire load, a
  /// hash, and a bucket find — no allocation. `key` is borrowed and must
  /// outlive the cursor.
  Cursor OpenProbe(uint64_t mask, std::span<const TermId> key,
                   size_t from_row, size_t to_row) const;

  /// All row indices in [from_row, to_row) (scan path, mask == 0).
  static constexpr uint64_t kNoMask = 0;

 private:
  /// rows_built value marking an index whose buckets hold stale row ids
  /// (set by Retract); ExtendIndex sees it as "built > rows" and rebuilds
  /// from scratch. Can never equal a real row count, so the lock-free
  /// fast path always rejects an invalidated index.
  static constexpr size_t kIndexInvalidated = ~size_t{0};

  struct Index {
    std::unordered_map<uint64_t, std::vector<uint32_t>> buckets;
    /// Release-stored after the bucket writes of a build; the lock-free
    /// fast path acquires it, so seeing rows_built == size() proves the
    /// buckets for those rows are fully visible. A reader seeing a stale
    /// value (including kIndexInvalidated) falls through to the
    /// mutex-guarded build path.
    std::atomic<size_t> rows_built{0};
  };

  /// Immutable snapshot of the indices built so far; a handful of (mask,
  /// index) pairs, so lookup is a scan. Republished (never mutated) when a
  /// new mask's index is built; retired snapshots are kept alive for
  /// readers still holding the old pointer.
  struct IndexTable {
    std::vector<std::pair<uint64_t, const Index*>> entries;
  };

  uint64_t KeyHashForRow(uint64_t mask, size_t row) const;
  void ExtendIndex(uint64_t mask, Index* index) const REQUIRES(index_mutex_);
  void ProbeIndex(const Index& index, std::span<const TermId> key,
                  uint64_t mask, size_t from_row, size_t to_row,
                  std::vector<uint32_t>* out) const;
  /// Returns the index for `mask`, built up to the current row count
  /// (lock-free when already current; mutex-guarded build otherwise).
  const Index* EnsureIndex(uint64_t mask) const;

  /// True when the columns of `row` selected by `mask` equal `key` (k-th
  /// set bit -> key[k]). Inline: this is the per-row check on the
  /// cursor hot path.
  bool RowMatchesKey(uint64_t mask, const TermId* key, size_t row) const {
    const TermId* r = data_.data() + row * arity_;
    size_t k = 0;
    for (uint32_t i = 0; i < arity_; ++i) {
      if (mask & (uint64_t{1} << i)) {
        if (r[i] != key[k++]) return false;
      }
    }
    return true;
  }

  /// Bumps the mutation epoch (and the bound aggregate, if any); under an
  /// EpochBatch it only records that a bump is owed.
  void BumpEpoch() {
    if (epoch_deferred_) {
      deferred_dirty_ = true;
      return;
    }
    epoch_.fetch_add(1, std::memory_order_acq_rel);
    if (aggregate_epoch_ != nullptr) {
      aggregate_epoch_->fetch_add(1, std::memory_order_acq_rel);
    }
  }

  uint32_t arity_;
  std::atomic<uint64_t> epoch_{0};
  std::atomic<uint64_t>* aggregate_epoch_ = nullptr;
  /// EpochBatch state; plain bools are fine because mutation (and so
  /// deferral) already requires exclusive access.
  bool epoch_deferred_ = false;
  bool deferred_dirty_ = false;
  std::vector<TermId> data_;
  size_t zero_ary_count_ = 0;  // 0-ary relations hold at most one tuple
  std::unordered_map<uint64_t, std::vector<uint32_t>> dedup_;

  mutable std::atomic<const IndexTable*> index_table_{nullptr};
  /// Guards the two owners below. A data-plane lock: legal under the
  /// exclusive serve seam (ApplyWrites rebuilds indices through it) as
  /// well as under any shared-side evaluation lock.
  mutable Mutex index_mutex_{lock_rank::kRelationIndex};
  mutable std::unordered_map<uint64_t, std::unique_ptr<Index>> indices_
      GUARDED_BY(index_mutex_);
  mutable std::vector<std::unique_ptr<IndexTable>> table_owner_
      GUARDED_BY(index_mutex_);
};

}  // namespace magic

#endif  // MAGIC_STORAGE_RELATION_H_
