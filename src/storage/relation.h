#ifndef MAGIC_STORAGE_RELATION_H_
#define MAGIC_STORAGE_RELATION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "ast/term.h"

namespace magic {

/// A set of ground tuples of fixed arity, stored flat and append-only.
///
/// Append-only storage gives the semi-naive evaluator its deltas for free:
/// the delta of an iteration is a row range [prev_size, cur_size), so no
/// separate delta relations are materialized.
///
/// Point lookups build hash indices lazily, one per bound-column mask, and
/// extend them incrementally as rows are appended (the iterator-invalidation
/// hazards of rebuilding mid-fixpoint are avoided by the watermark design).
///
/// Concurrency contract: `Insert` (and any other mutation of the row data)
/// requires exclusive access — rows are written single-threaded, e.g. while
/// loading an EDB or inside one evaluator's fixpoint. Once the rows are
/// quiescent, all const members including `Probe` are safe to call from any
/// number of threads concurrently: the lazy per-mask index build that Probe
/// performs under `const` runs behind a mutex, and an index is published
/// into an immutable snapshot table (atomic pointer, release/acquire) only
/// once it is fully built for the current row count. Steady-state probes
/// are therefore a single acquire load with no read-side lock at all —
/// this is what lets QueryService serve many queries against one shared
/// read-only Database without the probe hot path contending on anything.
class Relation {
 public:
  explicit Relation(uint32_t arity) : arity_(arity) {}

  uint32_t arity() const { return arity_; }
  size_t size() const { return arity_ == 0 ? zero_ary_count_ : data_.size() / arity_; }

  /// Monotonically increasing mutation epoch: bumped by every mutation that
  /// changes the tuple set (an Insert of a new tuple, a Clear), never by a
  /// duplicate insert or by reads. Cross-query caches key their entries by
  /// the epoch observed at fill time, so any write makes stale entries
  /// unreachable without a flush. Reading the epoch is always safe; the
  /// writes it observes follow the class's mutation contract (exclusive
  /// access), so an epoch read racing a write is the caller's existing bug,
  /// not a new one.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// Mirrors every epoch bump into `counter` (Database's O(1) aggregate
  /// epoch). The counter must outlive the relation; pass null to unbind.
  void BindEpochCounter(std::atomic<uint64_t>* counter) {
    aggregate_epoch_ = counter;
  }

  /// Inserts a tuple; returns true if it was new.
  bool Insert(std::span<const TermId> tuple);

  /// Removes every tuple (and all indices); bumps the mutation epoch even
  /// when already empty, so callers can use it as an explicit invalidation
  /// point. Requires exclusive access, like Insert.
  void Clear();

  bool Contains(std::span<const TermId> tuple) const;

  /// Returns the row index of `tuple`, or nullopt if absent.
  std::optional<uint32_t> FindRow(std::span<const TermId> tuple) const;

  std::span<const TermId> Row(size_t row) const {
    return std::span<const TermId>(data_.data() + row * arity_, arity_);
  }

  /// Appends to `out` the rows in [from_row, to_row) whose columns selected
  /// by `mask` (bit i = column i) equal `key[k]` for the k-th set bit.
  /// Builds/extends the index for `mask` on demand.
  void Probe(uint64_t mask, std::span<const TermId> key, size_t from_row,
             size_t to_row, std::vector<uint32_t>* out) const;

  /// All row indices in [from_row, to_row) (scan path, mask == 0).
  static constexpr uint64_t kNoMask = 0;

 private:
  struct Index {
    std::unordered_map<uint64_t, std::vector<uint32_t>> buckets;
    /// Release-stored after the bucket writes of a build; the lock-free
    /// fast path acquires it, so seeing rows_built == size() proves the
    /// buckets for those rows are fully visible. A reader seeing a stale
    /// value falls through to the mutex-guarded build path.
    std::atomic<size_t> rows_built{0};
  };

  /// Immutable snapshot of the indices built so far; a handful of (mask,
  /// index) pairs, so lookup is a scan. Republished (never mutated) when a
  /// new mask's index is built; retired snapshots are kept alive for
  /// readers still holding the old pointer.
  struct IndexTable {
    std::vector<std::pair<uint64_t, const Index*>> entries;
  };

  uint64_t KeyHashForRow(uint64_t mask, size_t row) const;
  void ExtendIndex(uint64_t mask, Index* index) const;
  void ProbeIndex(const Index& index, std::span<const TermId> key,
                  uint64_t mask, size_t from_row, size_t to_row,
                  std::vector<uint32_t>* out) const;

  /// Bumps the mutation epoch (and the bound aggregate, if any).
  void BumpEpoch() {
    epoch_.fetch_add(1, std::memory_order_acq_rel);
    if (aggregate_epoch_ != nullptr) {
      aggregate_epoch_->fetch_add(1, std::memory_order_acq_rel);
    }
  }

  uint32_t arity_;
  std::atomic<uint64_t> epoch_{0};
  std::atomic<uint64_t>* aggregate_epoch_ = nullptr;
  std::vector<TermId> data_;
  size_t zero_ary_count_ = 0;  // 0-ary relations hold at most one tuple
  std::unordered_map<uint64_t, std::vector<uint32_t>> dedup_;

  mutable std::atomic<const IndexTable*> index_table_{nullptr};
  mutable std::mutex index_mutex_;  // guards the two owners below
  mutable std::unordered_map<uint64_t, std::unique_ptr<Index>> indices_;
  mutable std::vector<std::unique_ptr<IndexTable>> table_owner_;
};

}  // namespace magic

#endif  // MAGIC_STORAGE_RELATION_H_
