#ifndef MAGIC_STORAGE_DATABASE_H_
#define MAGIC_STORAGE_DATABASE_H_

#include <atomic>
#include <memory>
#include <unordered_map>

#include "ast/program.h"
#include "storage/relation.h"
#include "storage/write_batch.h"
#include "util/status.h"

namespace magic {

/// The extensional database D: a finite set of finite relations over a
/// Universe shared with the programs evaluated against it.
///
/// Relations live behind shared_ptr slots, which makes copying a Database
/// an O(#relations) structural-sharing snapshot: the copy shares every
/// Relation object (and the epoch counter) with the original. Mutation is
/// copy-on-write — GetOrCreate and ApplyValidated clone a relation whose
/// slot is shared before touching it — so a snapshot taken before a write
/// keeps observing the exact pre-write tuple sets forever. This is the
/// storage half of the MVCC serving design: VersionChain publishes these
/// snapshots as immutable DatabaseVersions that readers pin for the whole
/// evaluation while writers mutate the base without waiting for them.
class Database {
 public:
  explicit Database(std::shared_ptr<Universe> universe)
      : universe_(std::move(universe)) {}

  /// Structural-sharing snapshot (see class comment). The copy shares the
  /// epoch counter with the source, so each relation's bound aggregate
  /// pointer stays valid no matter which of the two dies first.
  Database(const Database&) = default;
  Database& operator=(const Database&) = delete;

  const std::shared_ptr<Universe>& universe() const { return universe_; }
  Universe& u() const { return *universe_; }

  /// Adds a ground fact; rejects non-ground or wrong-arity tuples.
  /// Returns OK for duplicates (idempotent insert).
  Status AddFact(const Fact& fact);

  /// Convenience: add p(args...) built from constants by name.
  Status AddFact(PredId pred, std::vector<TermId> args);

  /// Removes every fact of `pred` (a no-op when the relation was never
  /// created or is already empty — either way the fact set is unchanged,
  /// so the epoch stays put). Requires exclusive access, like AddFact.
  void Clear(PredId pred);

  /// Applies one write batch: ops in insertion order, the mutation epoch
  /// bumped exactly once per relation whose tuple set NET-changed — a
  /// duplicate-only batch moves no epoch, and neither does one whose
  /// transient changes cancel out (an insert of an absent tuple followed
  /// by its retract, or a Clear followed by reinsertion of the identical
  /// content); snapshots never see intermediate states, so no invalidation
  /// is owed. Touched relations' probe indices are rebuilt before
  /// returning so the first post-write probe pays no build. Returns what
  /// changed, or the batch's validation error with nothing applied.
  /// Requires exclusive access over the whole call, like AddFact —
  /// QueryService::ApplyWrites provides that with its FIFO commit ticket;
  /// pinned snapshot readers need no exclusion at all because every
  /// shared relation is cloned before it is mutated.
  Result<WriteResult> Apply(const WriteBatch& batch);

  /// Apply without re-validating: the caller vouches that
  /// `batch.Validate(*universe())` passed (QueryService::ApplyWrites runs
  /// the check before queueing for its commit ticket, so the serialized
  /// window pays no second pass over the batch). Applying an unvalidated
  /// batch is a checked error on arity mismatches and undefined on the
  /// rest.
  WriteResult ApplyValidated(const WriteBatch& batch);

  /// The database's monotonically increasing mutation epoch. Every
  /// relation handed out by GetOrCreate is bound to one shared counter
  /// (heap-owned and shared across snapshots, so its address survives both
  /// Database moves and copies), so *any* EDB write — including one made
  /// directly through a GetOrCreate reference — advances it in O(1), and
  /// reading it is a single atomic load. VersionChain compares this
  /// counter against its head version's fill epoch to detect writes that
  /// bypassed Commit (quiescent-point test mutations) and resynchronize.
  uint64_t epoch() const {
    return epoch_counter_->load(std::memory_order_acquire);
  }

  /// Mutable access to one relation, cloning it first when the slot is
  /// shared with a snapshot (copy-on-write) so the snapshot's view never
  /// changes. The reference is stable until the next COW of the same
  /// pred; don't hold it across snapshot creation if you mean to mutate.
  Relation& GetOrCreate(PredId pred);
  const Relation* Find(PredId pred) const;

  size_t FactCount(PredId pred) const {
    const Relation* r = Find(pred);
    return r == nullptr ? 0 : r->size();
  }
  size_t TotalFacts() const;

  const std::unordered_map<PredId, std::shared_ptr<Relation>>& relations()
      const {
    return relations_;
  }

 private:
  std::shared_ptr<Universe> universe_;
  std::unordered_map<PredId, std::shared_ptr<Relation>> relations_;
  std::shared_ptr<std::atomic<uint64_t>> epoch_counter_ =
      std::make_shared<std::atomic<uint64_t>>(0);
};

}  // namespace magic

#endif  // MAGIC_STORAGE_DATABASE_H_
