#ifndef MAGIC_STORAGE_DATABASE_H_
#define MAGIC_STORAGE_DATABASE_H_

#include <memory>
#include <unordered_map>

#include "ast/program.h"
#include "storage/relation.h"
#include "util/status.h"

namespace magic {

/// The extensional database D: a finite set of finite relations over a
/// Universe shared with the programs evaluated against it.
class Database {
 public:
  explicit Database(std::shared_ptr<Universe> universe)
      : universe_(std::move(universe)) {}

  const std::shared_ptr<Universe>& universe() const { return universe_; }
  Universe& u() const { return *universe_; }

  /// Adds a ground fact; rejects non-ground or wrong-arity tuples.
  /// Returns OK for duplicates (idempotent insert).
  Status AddFact(const Fact& fact);

  /// Convenience: add p(args...) built from constants by name.
  Status AddFact(PredId pred, std::vector<TermId> args);

  Relation& GetOrCreate(PredId pred);
  const Relation* Find(PredId pred) const;

  size_t FactCount(PredId pred) const {
    const Relation* r = Find(pred);
    return r == nullptr ? 0 : r->size();
  }
  size_t TotalFacts() const;

  const std::unordered_map<PredId, Relation>& relations() const {
    return relations_;
  }

 private:
  std::shared_ptr<Universe> universe_;
  std::unordered_map<PredId, Relation> relations_;
};

}  // namespace magic

#endif  // MAGIC_STORAGE_DATABASE_H_
