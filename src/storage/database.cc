#include "storage/database.h"

#include <unordered_set>

#include "util/hash.h"

namespace magic {

Status Database::AddFact(const Fact& fact) {
  const PredicateInfo& info = universe_->predicates().info(fact.pred);
  if (fact.args.size() != info.arity) {
    return Status::InvalidArgument(
        "fact arity mismatch for predicate '" +
        universe_->symbols().Name(info.name) + "'");
  }
  for (TermId arg : fact.args) {
    if (!universe_->terms().IsGround(arg)) {
      return Status::InvalidArgument("facts must be ground: " +
                                     universe_->TermToString(arg));
    }
  }
  GetOrCreate(fact.pred).Insert(fact.args);
  return Status::OK();
}

Status Database::AddFact(PredId pred, std::vector<TermId> args) {
  return AddFact(Fact{pred, std::move(args)});
}

void Database::Clear(PredId pred) {
  auto it = relations_.find(pred);
  if (it == relations_.end() || it->second->size() == 0) return;
  // GetOrCreate COWs the slot if a snapshot shares it, so the snapshot
  // keeps its tuples while this database forgets them.
  GetOrCreate(pred).Clear();
}

Result<WriteResult> Database::Apply(const WriteBatch& batch) {
  MAGIC_RETURN_IF_ERROR(batch.Validate(*universe_));
  return ApplyValidated(batch);
}

WriteResult Database::ApplyValidated(const WriteBatch& batch) {
  WriteResult result;
  // One epoch-deferral guard per touched relation: however many ops land
  // on it, its epoch moves by exactly one iff the tuple set NET-changed.
  // Net accounting: set semantics make every successful insert/retract of
  // one tuple alternate (+1/-1), so a relation whose per-tuple nets are
  // all zero ends the batch with the exact tuple set it started with. A
  // relation that was non-empty-cleared loses the per-tuple bookkeeping,
  // so it is force-cloned up front and its final tuple set is compared
  // against the pre-batch clone instead — a Clear followed by reinsertion
  // of the identical content is net-zero too. Snapshots never see the
  // transient states (shared relations are cloned before mutation), so a
  // net-zero relation's epoch must not move and its warm cached answers
  // stay live.
  struct TupleHash {
    size_t operator()(const std::vector<TermId>& tuple) const {
      return HashRange(tuple.begin(), tuple.end());
    }
  };
  struct PredState {
    /// Pre-batch slot value. Null when the pred had no relation before the
    /// batch (pre-batch content: empty). Non-null iff the slot was cloned,
    /// in which case this keeps the original (and its warm indices) alive
    /// for the content comparison and the net-zero restore below.
    std::shared_ptr<Relation> original;
    Relation* rel = nullptr;
    std::unique_ptr<Relation::EpochBatch> guard;
    uint64_t epoch_before = 0;
    std::unordered_map<std::vector<TermId>, int, TupleHash> net;
    bool cleared = false;
  };
  // Preds a Clear op lands on are force-cloned even when their slot is
  // unshared: the clone preserves the pre-batch tuple set for the
  // identical-content comparison in the finalize loop.
  std::unordered_set<PredId> clear_preds;
  for (const WriteBatch::Op& op : batch.ops()) {
    if (op.kind == WriteBatch::OpKind::kClear) clear_preds.insert(op.pred);
  }
  std::unordered_map<PredId, PredState> touched;
  for (const WriteBatch::Op& op : batch.ops()) {
    PredState& state = touched[op.pred];
    if (state.rel == nullptr) {
      // First touch: establish the batch's mutable relation object once —
      // COW if a snapshot shares the slot, force-clone for Clear preds —
      // BEFORE the epoch guard binds to it.
      auto it = relations_.find(op.pred);
      if (it == relations_.end()) {
        uint32_t arity = universe_->predicates().info(op.pred).arity;
        it = relations_
                 .emplace(op.pred, std::make_shared<Relation>(arity))
                 .first;
        it->second->BindEpochCounter(epoch_counter_.get());
      } else if (it->second.use_count() > 1 || clear_preds.contains(op.pred)) {
        state.original = it->second;
        it->second = std::make_shared<Relation>(*state.original);
      }
      state.rel = it->second.get();
      state.epoch_before = state.rel->epoch();
      state.guard = std::make_unique<Relation::EpochBatch>(*state.rel);
    }
    Relation& rel = *state.rel;
    switch (op.kind) {
      case WriteBatch::OpKind::kInsert:
        if (rel.Insert(op.tuple)) {
          ++result.inserted;
          ++state.net[op.tuple];
        }
        break;
      case WriteBatch::OpKind::kRetract:
        if (rel.Retract(op.tuple)) {
          ++result.retracted;
          --state.net[op.tuple];
        }
        break;
      case WriteBatch::OpKind::kClear:
        if (rel.size() != 0) {
          ++result.cleared;
          state.cleared = true;
        }
        rel.Clear();
        break;
    }
  }
  for (auto& [pred, state] : touched) {
    Relation& rel = *state.rel;
    bool net_zero;
    if (!state.cleared) {
      net_zero = true;
      for (const auto& [tuple, net] : state.net) {
        if (net != 0) {
          net_zero = false;
          break;
        }
      }
    } else {
      // Identical-content test against the pre-batch clone: equal
      // cardinality plus every final row present in the original means
      // equal sets (both are duplicate-free).
      const Relation* original = state.original.get();
      const size_t original_size = original == nullptr ? 0 : original->size();
      net_zero = rel.size() == original_size;
      if (net_zero && original != nullptr) {
        for (size_t row = 0; row < rel.size() && net_zero; ++row) {
          if (!original->Contains(rel.Row(row))) net_zero = false;
        }
      }
    }
    if (net_zero) {
      state.guard->DiscardPendingBump();
      state.guard.reset();
      if (state.original != nullptr) {
        // The batch's scratch clone changed nothing: drop it and restore
        // the pre-batch object, whose probe indices are still warm.
        relations_[pred] = std::move(state.original);
      } else {
        // Transient retracts may have invalidated the in-place indices,
        // and the promise is that the first post-write probe pays no
        // build.
        rel.RebuildIndexes();
      }
      continue;
    }
    state.guard.reset();  // bump, exactly once
    if (rel.epoch() != state.epoch_before) ++result.relations_mutated;
    rel.RebuildIndexes();
  }
  return result;
}

Relation& Database::GetOrCreate(PredId pred) {
  auto it = relations_.find(pred);
  if (it == relations_.end()) {
    uint32_t arity = universe_->predicates().info(pred).arity;
    it = relations_.emplace(pred, std::make_shared<Relation>(arity)).first;
    // Every relation reports its mutations into the database-wide epoch,
    // so writes made directly through this reference are observed in O(1).
    it->second->BindEpochCounter(epoch_counter_.get());
    return *it->second;
  }
  std::shared_ptr<Relation>& slot = it->second;
  if (slot.use_count() > 1) {
    // Copy-on-write: a snapshot shares this relation, so mutations through
    // the returned reference must land on a private clone. (The aggregate
    // epoch pointer carries over — snapshots share the counter.)
    slot = std::make_shared<Relation>(*slot);
  }
  return *slot;
}

const Relation* Database::Find(PredId pred) const {
  auto it = relations_.find(pred);
  return it == relations_.end() ? nullptr : it->second.get();
}

size_t Database::TotalFacts() const {
  size_t total = 0;
  for (const auto& [pred, rel] : relations_) total += rel->size();
  return total;
}

}  // namespace magic
