#include "storage/database.h"

#include "util/hash.h"

namespace magic {

Status Database::AddFact(const Fact& fact) {
  const PredicateInfo& info = universe_->predicates().info(fact.pred);
  if (fact.args.size() != info.arity) {
    return Status::InvalidArgument(
        "fact arity mismatch for predicate '" +
        universe_->symbols().Name(info.name) + "'");
  }
  for (TermId arg : fact.args) {
    if (!universe_->terms().IsGround(arg)) {
      return Status::InvalidArgument("facts must be ground: " +
                                     universe_->TermToString(arg));
    }
  }
  GetOrCreate(fact.pred).Insert(fact.args);
  return Status::OK();
}

Status Database::AddFact(PredId pred, std::vector<TermId> args) {
  return AddFact(Fact{pred, std::move(args)});
}

void Database::Clear(PredId pred) {
  auto it = relations_.find(pred);
  if (it != relations_.end()) it->second.Clear();
}

Result<WriteResult> Database::Apply(const WriteBatch& batch) {
  MAGIC_RETURN_IF_ERROR(batch.Validate(*universe_));
  return ApplyValidated(batch);
}

WriteResult Database::ApplyValidated(const WriteBatch& batch) {
  WriteResult result;
  // One epoch-deferral guard per touched relation: however many ops land
  // on it, its epoch moves by exactly one iff the tuple set NET-changed.
  // Net accounting: set semantics make every successful insert/retract of
  // one tuple alternate (+1/-1), so a relation whose per-tuple nets are
  // all zero — and that was never non-empty-cleared — ends the batch with
  // the exact tuple set it started with; readers never saw the transient
  // states (the batch runs under exclusive access), so its epoch must not
  // move and its warm cached answers stay live.
  struct TupleHash {
    size_t operator()(const std::vector<TermId>& tuple) const {
      return HashRange(tuple.begin(), tuple.end());
    }
  };
  struct PredState {
    std::unique_ptr<Relation::EpochBatch> guard;
    uint64_t epoch_before = 0;
    std::unordered_map<std::vector<TermId>, int, TupleHash> net;
    bool cleared = false;
  };
  std::unordered_map<PredId, PredState> touched;
  for (const WriteBatch::Op& op : batch.ops()) {
    Relation& rel = GetOrCreate(op.pred);
    PredState& state = touched[op.pred];
    if (state.guard == nullptr) {
      state.epoch_before = rel.epoch();
      state.guard = std::make_unique<Relation::EpochBatch>(rel);
    }
    switch (op.kind) {
      case WriteBatch::OpKind::kInsert:
        if (rel.Insert(op.tuple)) {
          ++result.inserted;
          ++state.net[op.tuple];
        }
        break;
      case WriteBatch::OpKind::kRetract:
        if (rel.Retract(op.tuple)) {
          ++result.retracted;
          --state.net[op.tuple];
        }
        break;
      case WriteBatch::OpKind::kClear:
        if (rel.size() != 0) {
          ++result.cleared;
          state.cleared = true;
        }
        rel.Clear();
        break;
    }
  }
  for (auto& [pred, state] : touched) {
    Relation& rel = GetOrCreate(pred);
    if (!state.cleared) {
      bool net_zero = true;
      for (const auto& [tuple, net] : state.net) {
        if (net != 0) {
          net_zero = false;
          break;
        }
      }
      if (net_zero) state.guard->DiscardPendingBump();
    }
    state.guard.reset();  // bump (or not), exactly once
    if (rel.epoch() != state.epoch_before) ++result.relations_mutated;
    // Rebuild even when the net was zero: a transient retract still
    // invalidated the probe indices, and the promise is that the first
    // post-write probe pays no build.
    rel.RebuildIndexes();
  }
  return result;
}

Relation& Database::GetOrCreate(PredId pred) {
  auto it = relations_.find(pred);
  if (it != relations_.end()) return it->second;
  uint32_t arity = universe_->predicates().info(pred).arity;
  Relation& relation = relations_.try_emplace(pred, arity).first->second;
  // Every relation reports its mutations into the database-wide epoch, so
  // writes made directly through this reference are observed in O(1).
  relation.BindEpochCounter(epoch_counter_.get());
  return relation;
}

const Relation* Database::Find(PredId pred) const {
  auto it = relations_.find(pred);
  return it == relations_.end() ? nullptr : &it->second;
}

size_t Database::TotalFacts() const {
  size_t total = 0;
  for (const auto& [pred, rel] : relations_) total += rel.size();
  return total;
}

}  // namespace magic
