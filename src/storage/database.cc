#include "storage/database.h"

namespace magic {

Status Database::AddFact(const Fact& fact) {
  const PredicateInfo& info = universe_->predicates().info(fact.pred);
  if (fact.args.size() != info.arity) {
    return Status::InvalidArgument(
        "fact arity mismatch for predicate '" +
        universe_->symbols().Name(info.name) + "'");
  }
  for (TermId arg : fact.args) {
    if (!universe_->terms().IsGround(arg)) {
      return Status::InvalidArgument("facts must be ground: " +
                                     universe_->TermToString(arg));
    }
  }
  GetOrCreate(fact.pred).Insert(fact.args);
  return Status::OK();
}

Status Database::AddFact(PredId pred, std::vector<TermId> args) {
  return AddFact(Fact{pred, std::move(args)});
}

void Database::Clear(PredId pred) {
  auto it = relations_.find(pred);
  if (it != relations_.end()) it->second.Clear();
}

Relation& Database::GetOrCreate(PredId pred) {
  auto it = relations_.find(pred);
  if (it != relations_.end()) return it->second;
  uint32_t arity = universe_->predicates().info(pred).arity;
  Relation& relation = relations_.try_emplace(pred, arity).first->second;
  // Every relation reports its mutations into the database-wide epoch, so
  // writes made directly through this reference are observed in O(1).
  relation.BindEpochCounter(epoch_counter_.get());
  return relation;
}

const Relation* Database::Find(PredId pred) const {
  auto it = relations_.find(pred);
  return it == relations_.end() ? nullptr : &it->second;
}

size_t Database::TotalFacts() const {
  size_t total = 0;
  for (const auto& [pred, rel] : relations_) total += rel.size();
  return total;
}

}  // namespace magic
