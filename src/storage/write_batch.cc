#include "storage/write_batch.h"

#include <string>

namespace magic {

Status WriteBatch::Validate(const Universe& u) const {
  for (const Op& op : ops_) {
    if (op.pred >= u.predicates().size()) {
      return Status::InvalidArgument("write batch names undeclared predicate id " +
                                     std::to_string(op.pred));
    }
    const PredicateInfo& info = u.predicates().info(op.pred);
    if (op.kind == OpKind::kClear) continue;
    if (op.tuple.size() != info.arity) {
      return Status::InvalidArgument(
          "write batch arity mismatch for '" + u.symbols().Name(info.name) +
          "': got " + std::to_string(op.tuple.size()) + ", declared " +
          std::to_string(info.arity));
    }
    for (TermId term : op.tuple) {
      if (!u.terms().IsGround(term)) {
        return Status::InvalidArgument("write batch tuples must be ground: " +
                                       u.TermToString(term));
      }
    }
  }
  return Status::OK();
}

}  // namespace magic
