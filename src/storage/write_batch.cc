#include "storage/write_batch.h"

#include <string>

#include "ast/parser.h"
#include "ast/program.h"

namespace magic {

Status ParseMutationLine(const std::string& text,
                         const std::shared_ptr<Universe>& universe,
                         WriteBatch* batch) {
  bool retract = false;
  size_t start = 0;
  if (!text.empty() && (text[start] == '+' || text[start] == '-')) {
    retract = text[start] == '-';
    ++start;
  }
  std::string fact_text = text.substr(start);
  size_t last = fact_text.find_last_not_of(" \t\r");
  if (last == std::string::npos) {
    return Status::InvalidArgument("empty mutation");
  }
  fact_text.resize(last + 1);
  if (fact_text.back() != '.') fact_text += '.';
  auto parsed = ParseUnit(fact_text, universe);
  if (!parsed.ok()) return parsed.status();
  if (parsed->facts.empty() || !parsed->program.rules().empty() ||
      parsed->query.has_value()) {
    return Status::InvalidArgument("not a ground fact: " + text);
  }
  for (const Fact& fact : parsed->facts) {
    if (retract) {
      batch->Retract(fact.pred, fact.args);
    } else {
      batch->Insert(fact.pred, fact.args);
    }
  }
  return Status::OK();
}

Status CheckFrozenPredicate(const Universe& u, PredId pred,
                            size_t frozen_preds) {
  if (pred < frozen_preds) return Status::OK();
  const PredicateInfo& info = u.predicates().info(pred);
  return Status::FailedPrecondition(
      "predicate '" + u.symbols().Name(info.name) + "/" +
      std::to_string(info.arity) +
      "' was declared after serving started; the live service's predicate "
      "table is frozen (new constants are fine, new relation names need a "
      "restart)");
}

Status CheckFrozenPredicates(const Universe& u, const WriteBatch& batch,
                             size_t frozen_preds) {
  for (const WriteBatch::Op& op : batch.ops()) {
    if (Status st = CheckFrozenPredicate(u, op.pred, frozen_preds); !st.ok()) {
      return st;
    }
  }
  return Status::OK();
}

Status WriteBatch::Validate(const Universe& u) const {
  for (const Op& op : ops_) {
    if (op.pred >= u.predicates().size()) {
      return Status::InvalidArgument("write batch names undeclared predicate id " +
                                     std::to_string(op.pred));
    }
    const PredicateInfo& info = u.predicates().info(op.pred);
    if (op.kind == OpKind::kClear) continue;
    if (op.tuple.size() != info.arity) {
      return Status::InvalidArgument(
          "write batch arity mismatch for '" + u.symbols().Name(info.name) +
          "': got " + std::to_string(op.tuple.size()) + ", declared " +
          std::to_string(info.arity));
    }
    for (TermId term : op.tuple) {
      if (!u.terms().IsGround(term)) {
        return Status::InvalidArgument("write batch tuples must be ground: " +
                                       u.TermToString(term));
      }
    }
  }
  return Status::OK();
}

}  // namespace magic
