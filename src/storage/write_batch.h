#ifndef MAGIC_STORAGE_WRITE_BATCH_H_
#define MAGIC_STORAGE_WRITE_BATCH_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ast/universe.h"
#include "util/status.h"

namespace magic {

/// An ordered group of EDB mutations — inserts, retracts, and per-predicate
/// clears — applied as one unit at a quiescent point. The batch itself is a
/// plain value: building one performs no validation and touches no storage,
/// so batches can be assembled on any thread and shipped to the writer.
///
/// Application (Database::Apply, or QueryService::ApplyWrites for the
/// in-band path) is atomic with respect to readers: either the whole batch
/// is visible or none of it. Ops apply in insertion order, so a batch may
/// retract a tuple it inserted earlier (net no-op) or re-insert after a
/// clear. Set semantics make most orders commute; order only matters
/// between ops touching the same tuple or a clear of the same predicate.
class WriteBatch {
 public:
  enum class OpKind : uint8_t {
    kInsert,   // add a tuple (duplicate = no-op)
    kRetract,  // remove a tuple (absent = no-op)
    kClear,    // remove every tuple of the predicate (empty = no-op)
  };
  struct Op {
    OpKind kind = OpKind::kInsert;
    PredId pred = 0;
    std::vector<TermId> tuple;  // empty for kClear
  };

  void Insert(PredId pred, std::vector<TermId> tuple) {
    ops_.push_back(Op{OpKind::kInsert, pred, std::move(tuple)});
  }
  void Retract(PredId pred, std::vector<TermId> tuple) {
    ops_.push_back(Op{OpKind::kRetract, pred, std::move(tuple)});
  }
  void Clear(PredId pred) { ops_.push_back(Op{OpKind::kClear, pred, {}}); }

  const std::vector<Op>& ops() const { return ops_; }
  bool empty() const { return ops_.empty(); }
  size_t size() const { return ops_.size(); }

  /// Checks every op against `u`'s declarations: the predicate id must be
  /// declared, insert/retract tuples must match its declared arity, and
  /// every term must be ground. Validation is separate from application so
  /// a malformed batch can be rejected before any ticket or lock is taken.
  Status Validate(const Universe& u) const;

 private:
  std::vector<Op> ops_;
};

/// Parses one mutation line — "+fact." inserts, "-fact." retracts, a bare
/// "fact." inserts — into `*batch`. A missing trailing period is
/// tolerated. Parsing interns into `universe` (new constants are safe at
/// any time on a root universe — the interning tables are internally
/// synchronized — and a new predicate *declaration* is permanent but
/// rejected by CheckFrozenPredicates below before it can be served).
/// Shared by the magicdb REPL, the apply-file loader, and the wire APPLY
/// verb, so all three accept the same grammar and emit the same errors.
Status ParseMutationLine(const std::string& text,
                         const std::shared_ptr<Universe>& universe,
                         WriteBatch* batch);

/// The serving-surface predicate freeze: compiled plans overlay the base
/// predicate table, so a predicate declared after serving started must not
/// be served — its numeric id range collides with live plan overlays
/// through the shared Database. `frozen_preds` is the predicate-table size
/// captured when serving started; any op naming a predicate at or above it
/// fails FailedPrecondition with a message naming the predicate, e.g.
/// "predicate 'flight/2' was declared after serving started". Enforcement
/// is by id range, NOT by detecting table growth: a stray declaration is
/// permanent (and harmless while unused), so the same line resubmitted
/// must still be rejected.
Status CheckFrozenPredicate(const Universe& u, PredId pred,
                            size_t frozen_preds);
Status CheckFrozenPredicates(const Universe& u, const WriteBatch& batch,
                             size_t frozen_preds);

/// What one applied batch changed. `relations_mutated` counts relations
/// whose tuple set actually changed (each had its mutation epoch bumped
/// exactly once); a duplicate-only batch reports zero everywhere and moves
/// no epoch, so warm cache entries stay live.
struct WriteResult {
  size_t inserted = 0;   // tuples that were new
  size_t retracted = 0;  // tuples that were present
  size_t cleared = 0;    // non-empty relations cleared
  size_t relations_mutated = 0;
};

}  // namespace magic

#endif  // MAGIC_STORAGE_WRITE_BATCH_H_
