#include "storage/relation.h"

#include <algorithm>

#include "util/check.h"
#include "util/hash.h"

namespace magic {

Relation::Relation(const Relation& other)
    : arity_(other.arity_),
      epoch_(other.epoch_.load(std::memory_order_acquire)),
      aggregate_epoch_(other.aggregate_epoch_),
      data_(other.data_),
      zero_ary_count_(other.zero_ary_count_),
      dedup_(other.dedup_) {
  // Copy the source's built-mask set under its lock — pinned readers may
  // be adding masks via EnsureIndex concurrently. Only the mask keys are
  // taken; the Index objects themselves stay with the source (their
  // buckets would be stale against our future mutations anyway).
  std::vector<uint64_t> masks;
  {
    MutexLock source_lock(other.index_mutex_);
    masks.reserve(other.indices_.size());
    for (const auto& [mask, index] : other.indices_) masks.push_back(mask);
  }
  if (masks.empty()) return;
  // Seed an empty, unbuilt index per mask and publish the table now:
  // EnsureIndex's fast path sees rows_built != size() and falls through
  // to the build, so the first probe per mask pays one lazy rebuild and
  // every later probe is lock-free again.
  MutexLock lock(index_mutex_);
  auto table = std::make_unique<IndexTable>();
  table->entries.reserve(masks.size());
  for (uint64_t mask : masks) {
    auto [it, inserted] = indices_.try_emplace(mask);
    if (inserted) it->second = std::make_unique<Index>();
    table->entries.emplace_back(mask, it->second.get());
  }
  index_table_.store(table.get(), std::memory_order_release);
  table_owner_.push_back(std::move(table));
}

bool Relation::Insert(std::span<const TermId> tuple) {
  MAGIC_CHECK(tuple.size() == arity_);
  if (arity_ == 0) {
    if (zero_ary_count_ > 0) return false;
    zero_ary_count_ = 1;
    BumpEpoch();
    return true;
  }
  uint64_t h = HashRange(tuple.begin(), tuple.end());
  std::vector<uint32_t>& bucket = dedup_[h];
  for (uint32_t row : bucket) {
    std::span<const TermId> existing = Row(row);
    bool equal = true;
    for (uint32_t i = 0; i < arity_; ++i) {
      if (existing[i] != tuple[i]) {
        equal = false;
        break;
      }
    }
    if (equal) return false;
  }
  uint32_t row = static_cast<uint32_t>(size());
  data_.insert(data_.end(), tuple.begin(), tuple.end());
  bucket.push_back(row);
  BumpEpoch();
  return true;
}

namespace {

/// Drops one value from a dedup bucket (present by construction).
void EraseFromBucket(std::vector<uint32_t>* bucket, uint32_t value) {
  for (size_t i = 0; i < bucket->size(); ++i) {
    if ((*bucket)[i] == value) {
      (*bucket)[i] = bucket->back();
      bucket->pop_back();
      return;
    }
  }
}

}  // namespace

bool Relation::Retract(std::span<const TermId> tuple) {
  MAGIC_CHECK(tuple.size() == arity_);
  if (arity_ == 0) {
    if (zero_ary_count_ == 0) return false;
    zero_ary_count_ = 0;
    BumpEpoch();
    return true;
  }
  std::optional<uint32_t> row = FindRow(tuple);
  if (!row.has_value()) return false;
  // Swap-with-last removal: only the moved row changes id, so the dedup
  // map is patched in O(1) instead of rebuilt — a batch retracting K
  // tuples costs O(K), not O(K * rows). Row order is not semantic for a
  // quiescent EDB (it is a set; semi-naive delta windows only matter
  // inside a fixpoint, never across the write seam).
  const uint32_t last = static_cast<uint32_t>(size()) - 1;
  auto bucket_it = dedup_.find(HashRange(tuple.begin(), tuple.end()));
  EraseFromBucket(&bucket_it->second, *row);
  // Drop emptied buckets: under insert/retract churn the map must track
  // live tuples, not lifetime-total distinct ones. (If the moved row
  // hashes here too, the bucket still holds its id and stays.)
  if (bucket_it->second.empty()) dedup_.erase(bucket_it);
  if (*row != last) {
    std::span<const TermId> moved = Row(last);
    uint64_t moved_hash = HashRange(moved.begin(), moved.end());
    std::copy(moved.begin(), moved.end(),
              data_.begin() + static_cast<ptrdiff_t>(*row) * arity_);
    std::vector<uint32_t>& bucket = dedup_[moved_hash];
    for (uint32_t& id : bucket) {
      if (id == last) {
        id = *row;
        break;
      }
    }
  }
  data_.resize(static_cast<size_t>(last) * arity_);
  // The per-mask indices hold stale ids for the moved row; mark each for
  // a from-scratch rebuild (one flag store per index — the bucket clear
  // itself happens once, inside the next ExtendIndex). The sentinel can
  // never equal size(), so the lock-free fast path rejects the index
  // until it is rebuilt, lazily on the next probe or via RebuildIndexes.
  {
    MutexLock lock(index_mutex_);
    for (auto& [mask, index] : indices_) {
      index->rows_built.store(kIndexInvalidated, std::memory_order_release);
    }
  }
  BumpEpoch();
  return true;
}

void Relation::Clear() {
  if (size() == 0) return;  // tuple set unchanged: no spurious invalidation
  data_.clear();
  zero_ary_count_ = 0;
  dedup_.clear();
  // Drop all indices: the watermark design only supports appends, so a
  // truncation must start index state from scratch. Exclusive access means
  // no probe is in flight, so the retired snapshots can go too (they point
  // into indices_).
  MutexLock lock(index_mutex_);
  index_table_.store(nullptr, std::memory_order_release);
  indices_.clear();
  table_owner_.clear();
  BumpEpoch();
}

void Relation::RebuildIndexes() {
  MutexLock lock(index_mutex_);
  for (auto& [mask, index] : indices_) ExtendIndex(mask, index.get());
}

bool Relation::Contains(std::span<const TermId> tuple) const {
  return FindRow(tuple).has_value();
}

std::optional<uint32_t> Relation::FindRow(
    std::span<const TermId> tuple) const {
  MAGIC_CHECK(tuple.size() == arity_);
  if (arity_ == 0) {
    if (zero_ary_count_ > 0) return 0u;
    return std::nullopt;
  }
  auto it = dedup_.find(HashRange(tuple.begin(), tuple.end()));
  if (it == dedup_.end()) return std::nullopt;
  for (uint32_t row : it->second) {
    std::span<const TermId> existing = Row(row);
    bool equal = true;
    for (uint32_t i = 0; i < arity_; ++i) {
      if (existing[i] != tuple[i]) {
        equal = false;
        break;
      }
    }
    if (equal) return row;
  }
  return std::nullopt;
}

uint64_t Relation::KeyHashForRow(uint64_t mask, size_t row) const {
  uint64_t h = 0xcbf29ce484222325ULL;
  std::span<const TermId> r = Row(row);
  for (uint32_t i = 0; i < arity_; ++i) {
    if (mask & (uint64_t{1} << i)) h = HashCombine(h, r[i]);
  }
  return h;
}

void Relation::ExtendIndex(uint64_t mask, Index* index) const {
  size_t rows = size();
  size_t built = index->rows_built.load(std::memory_order_relaxed);
  if (built > rows) {
    // Invalidated by a retraction (or shrunk past the watermark): the
    // existing buckets hold stale ids, so rebuild from scratch.
    index->buckets.clear();
    built = 0;
  }
  for (size_t row = built; row < rows; ++row) {
    index->buckets[KeyHashForRow(mask, row)].push_back(
        static_cast<uint32_t>(row));
  }
  index->rows_built.store(rows, std::memory_order_release);
}

const Relation::Index* Relation::EnsureIndex(uint64_t mask) const {
  // Fast path: an index published in the snapshot table was fully built
  // for some row count; while the rows are quiescent (the only state in
  // which concurrent probes are allowed) it stays current, so the hot path
  // is one acquire load and no lock.
  if (const IndexTable* table =
          index_table_.load(std::memory_order_acquire)) {
    for (const auto& [entry_mask, index] : table->entries) {
      if (entry_mask != mask) continue;
      if (index->rows_built.load(std::memory_order_acquire) == size()) {
        return index;
      }
      break;
    }
  }
  // Slow path (first probe for this mask, or rows appended since the last
  // build — both single-threaded situations per the class contract, except
  // for the one-time concurrent build race, which the mutex settles).
  MutexLock lock(index_mutex_);
  auto [it, inserted] = indices_.try_emplace(mask);
  if (inserted) it->second = std::make_unique<Index>();
  Index* index = it->second.get();
  ExtendIndex(mask, index);
  if (inserted) {
    auto grown = std::make_unique<IndexTable>();
    if (const IndexTable* current =
            index_table_.load(std::memory_order_relaxed)) {
      grown->entries = current->entries;
    }
    grown->entries.emplace_back(mask, index);
    index_table_.store(grown.get(), std::memory_order_release);
    table_owner_.push_back(std::move(grown));
  }
  return index;
}

void Relation::Probe(uint64_t mask, std::span<const TermId> key,
                     size_t from_row, size_t to_row,
                     std::vector<uint32_t>* out) const {
  MAGIC_CHECK(to_row <= size());
  if (mask == kNoMask) {
    for (size_t row = from_row; row < to_row; ++row) {
      out->push_back(static_cast<uint32_t>(row));
    }
    return;
  }
  ProbeIndex(*EnsureIndex(mask), key, mask, from_row, to_row, out);
}

Relation::Cursor Relation::OpenProbe(uint64_t mask,
                                     std::span<const TermId> key,
                                     size_t from_row, size_t to_row) const {
  MAGIC_CHECK(to_row <= size());
  Cursor c;
  c.rel_ = this;
  if (mask == kNoMask) {
    c.pos_ = from_row;
    c.end_ = to_row;
    return c;
  }
  const Index* index = EnsureIndex(mask);
  uint64_t h = HashRange(key.begin(), key.end());
  auto it = index->buckets.find(h);
  if (it == index->buckets.end()) return c;  // empty scan: pos_ == end_ == 0
  const std::vector<uint32_t>& bucket = it->second;
  // Bucket rows ascend, so the window's start is a binary search and its
  // end is the Next() early-out at to_.
  c.bucket_ = &bucket;
  c.pos_ = static_cast<size_t>(
      std::lower_bound(bucket.begin(), bucket.end(),
                       static_cast<uint32_t>(from_row)) -
      bucket.begin());
  c.end_ = bucket.size();
  c.to_ = to_row;
  c.mask_ = mask;
  c.key_ = key.data();
  return c;
}

void Relation::ProbeIndex(const Index& index, std::span<const TermId> key,
                          uint64_t mask, size_t from_row, size_t to_row,
                          std::vector<uint32_t>* out) const {
  uint64_t h = HashRange(key.begin(), key.end());
  auto it = index.buckets.find(h);
  if (it == index.buckets.end()) return;
  // Bucket rows are in ascending order; verify key equality per row (the
  // bucket is keyed by hash only).
  for (uint32_t row : it->second) {
    if (row < from_row) continue;
    if (row >= to_row) break;
    std::span<const TermId> r = Row(row);
    bool equal = true;
    size_t k = 0;
    for (uint32_t i = 0; i < arity_; ++i) {
      if (mask & (uint64_t{1} << i)) {
        if (r[i] != key[k++]) {
          equal = false;
          break;
        }
      }
    }
    if (equal) out->push_back(row);
  }
}

}  // namespace magic
