#ifndef MAGIC_STORAGE_FACT_IO_H_
#define MAGIC_STORAGE_FACT_IO_H_

#include <string>

#include "storage/database.h"

namespace magic {

/// Loads tab-separated fact files into a database, one file per relation
/// (the convention popularized by Soufflé): `<dir>/<pred>.facts` holds one
/// tuple per line, fields separated by tabs. Fields consisting solely of
/// digits (with optional leading '-') load as integers; everything else as
/// constants. The predicate must already be declared (by the program); its
/// arity fixes the expected field count.
///
/// Only files matching declared base predicates are loaded; unknown files
/// are reported in the error message.
Status LoadFactsDirectory(const Program& program, const std::string& dir,
                          Database* db);

/// Loads one fact file for `pred`.
Status LoadFactsFile(PredId pred, const std::string& path, Database* db);

/// Writes a relation as a tab-separated fact file (inverse of the loader;
/// terms are rendered with the printer, so lists/compounds round-trip only
/// if unambiguous — intended for flat Datalog relations).
Status WriteFactsFile(const Universe& u, const Relation& relation,
                      const std::string& path);

}  // namespace magic

#endif  // MAGIC_STORAGE_FACT_IO_H_
