#include "storage/db_version.h"

namespace magic {

VersionChain::VersionChain(const Database& base) : base_(base) {
  MutexLock lock(resync_mutex_);
  auto v1 = std::make_shared<const DatabaseVersion>(base_, /*version=*/1,
                                                    base_.epoch(), &retired_);
  head_.store(std::move(v1), std::memory_order_release);
  version_.store(1, std::memory_order_release);
  head_epoch_.store(base_.epoch(), std::memory_order_release);
  published_.store(1, std::memory_order_release);
}

uint64_t VersionChain::current_version() const {
  const uint64_t v = version_.load(std::memory_order_acquire);
  if (base_.epoch() == head_epoch_.load(std::memory_order_acquire) ||
      commit_active_.load(std::memory_order_acquire)) {
    // Steady state, or a mid-flight commit (in which case v — version N of
    // the N-or-N+1 guarantee — is exactly right to probe at).
    return v;
  }
  // Out-of-band quiescent write: let Pin() publish the resynced snapshot
  // so the probe (and the fill it may lead to) keys at the fresh version.
  return Pin()->version();
}

std::shared_ptr<const DatabaseVersion> VersionChain::Pin() const {
  std::shared_ptr<const DatabaseVersion> head =
      head_.load(std::memory_order_acquire);
  const uint64_t epoch = base_.epoch();
  if (epoch == head->base_epoch()) return head;
  // The base moved past the head. During an in-band Commit this is the
  // benign publication window — the epoch advances before the new head
  // lands — and serving the current head is exactly the "version N" half
  // of the N-or-N+1 guarantee: the read linearizes before the write.
  // (Seeing the bumped epoch synchronizes with Commit's acq_rel bump,
  // which the release store of the flag happens-before, so the flag load
  // below cannot miss a mid-flight commit.)
  if (commit_active_.load(std::memory_order_acquire)) return head;
  // Out-of-band write at a quiescent point (no Commit ran): publish a
  // fresh snapshot. The mutex excludes Commit's whole mutate+publish
  // window, so the base is settled while we copy it; the recheck handles
  // having lost the race to another resync or a commit that started
  // while we waited for the lock.
  MutexLock lock(resync_mutex_);
  head = head_.load(std::memory_order_acquire);
  const uint64_t settled = base_.epoch();
  if (settled == head->base_epoch() ||
      commit_active_.load(std::memory_order_acquire)) {
    return head;
  }
  auto fresh = std::make_shared<const DatabaseVersion>(
      base_, head->version() + 1, settled, &retired_);
  head_.store(fresh, std::memory_order_release);
  version_.store(fresh->version(), std::memory_order_release);
  head_epoch_.store(settled, std::memory_order_release);
  published_.fetch_add(1, std::memory_order_acq_rel);
  return fresh;
}

WriteResult VersionChain::Commit(Database& base, const WriteBatch& batch) {
  // The flag must be visible before any base mutation: a reader that
  // observes a mid-commit epoch then takes the "serve current head"
  // branch instead of snapshotting a half-mutated base.
  commit_active_.store(true, std::memory_order_release);
  WriteResult result;
  {
    MutexLock lock(resync_mutex_);
    result = base.ApplyValidated(batch);
    std::shared_ptr<const DatabaseVersion> head =
        head_.load(std::memory_order_acquire);
    const uint64_t epoch = base.epoch();
    if (epoch != head->base_epoch()) {
      // Net change: publish version N+1. Readers pinned to N keep their
      // snapshot (its relations were cloned out from under them, never
      // mutated); new dispatches see N+1 from here on.
      auto next = std::make_shared<const DatabaseVersion>(
          base, head->version() + 1, epoch, &retired_);
      const uint64_t next_version = next->version();
      head_.store(std::move(next), std::memory_order_release);
      version_.store(next_version, std::memory_order_release);
      head_epoch_.store(epoch, std::memory_order_release);
      published_.fetch_add(1, std::memory_order_acq_rel);
    }
    // else: no-op batch — nothing to publish, cached answers stay warm.
  }
  commit_active_.store(false, std::memory_order_release);
  return result;
}

}  // namespace magic
