#ifndef MAGIC_NET_CLIENT_H_
#define MAGIC_NET_CLIENT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "net/wire.h"
#include "util/status.h"

namespace magic {
namespace net {

/// Client side of the magicdb line protocol: one connection, synchronous
/// request/response. Used by magicdb-cli, the serve bench mode, and the
/// protocol tests; deliberately thin — it frames requests, parses the
/// response head token through the one WireCode table, and leaves payload
/// interpretation to the caller.
class MagicClient {
 public:
  /// What one response frame (or a STREAM's final frame) said. `code`
  /// comes from the frame's first token via WireCodeFromName; `head` is
  /// the rest of the first line (message text or `key=value` fields);
  /// `lines` are the payload lines after the first (answer tuples, the
  /// STATS JSON line).
  struct Reply {
    WireCode code = WireCode::kInternal;
    std::string head;
    std::vector<std::string> lines;

    bool ok() const {
      return code == WireCode::kOk || code == WireCode::kTruncated;
    }
    /// The Status this reply maps to through the shared table.
    Status ToStatus() const { return StatusFromWire(code, head); }
    /// The process exit code this reply maps to through the shared table.
    int exit_code() const { return ExitCodeFor(code); }
  };

  MagicClient() = default;
  ~MagicClient();
  MagicClient(MagicClient&& other) noexcept;
  MagicClient& operator=(MagicClient&& other) noexcept;
  MagicClient(const MagicClient&) = delete;
  MagicClient& operator=(const MagicClient&) = delete;

  static Result<MagicClient> Connect(const std::string& host, uint16_t port);

  /// One request frame in, one response frame out. A transport failure
  /// (server gone, torn frame) is a non-OK Result; a *protocol-level*
  /// error is an OK Result whose Reply carries the error code.
  Result<Reply> Call(const std::string& request);

  /// Sends a STREAM request: `on_row` sees each `*` row frame (prefix
  /// stripped) as it arrives; returning false abandons the stream by
  /// closing the connection (the server cancels the evaluation). Returns
  /// the final status frame, or code kCancelled when abandoned.
  Result<Reply> Stream(const std::string& request,
                       const std::function<bool(const std::string&)>& on_row);

  void Close();
  bool connected() const { return fd_ >= 0; }
  /// The raw socket, for tests that poke malformed bytes at the server.
  int fd() const { return fd_; }

 private:
  explicit MagicClient(int fd) : fd_(fd) {}

  int fd_ = -1;
};

/// Parses one response frame into a Reply (exposed for tests). An
/// unrecognized head token yields code kProtocol.
MagicClient::Reply ParseReply(const std::string& frame);

}  // namespace net
}  // namespace magic

#endif  // MAGIC_NET_CLIENT_H_
