#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace magic {
namespace net {

MagicServer::MagicServer(std::shared_ptr<Universe> universe,
                         const Program& program, QueryService* service,
                         ServerOptions options)
    : options_(std::move(options)) {
  ctx_.universe = std::move(universe);
  ctx_.program = &program;
  ctx_.service = service;
  // "Serving started" is now: predicates declared from here on are above
  // the freeze line and every session rejects requests that use them.
  ctx_.frozen_preds = ctx_.universe->predicates().size();
  ctx_.max_request_frame = options_.max_request_frame;
}

MagicServer::~MagicServer() { Stop(); }

Status MagicServer::Start() {
  if (started_) return Status::FailedPrecondition("server already started");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal("socket: " + ErrnoMessage(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad listen host: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status st = Status::Internal("bind " + options_.host + ":" +
                                 std::to_string(options_.port) + ": " +
                                 ErrnoMessage(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  if (::listen(listen_fd_, 64) < 0) {
    Status st = Status::Internal("listen: " + ErrnoMessage(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  }
  started_ = true;
  accept_thread_ = std::thread(&MagicServer::AcceptLoop, this);
  return Status::OK();
}

void MagicServer::Stop() {
  if (!started_) return;
  stopping_.store(true);
  // Wake the accept loop: shutdown makes the pending poll/accept fail
  // immediately (close alone would race a concurrent accept on the fd).
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  // Unblock every session parked in recv, then join. Sessions close their
  // own fd when they return, so the fd stays valid until the join.
  {
    MutexLock lock(sessions_mutex_);
    for (auto& [id, conn] : sessions_) {
      if (!conn.finished) ::shutdown(conn.fd, SHUT_RDWR);
    }
  }
  while (true) {
    std::thread thread;
    {
      MutexLock lock(sessions_mutex_);
      auto it = sessions_.begin();
      if (it == sessions_.end()) break;
      thread = std::move(it->second.thread);
      sessions_.erase(it);
    }
    if (thread.joinable()) thread.join();
  }
  started_ = false;
  stopping_.store(false);
}

void MagicServer::AcceptLoop() {
  while (!stopping_.load()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    int ready = ::poll(&pfd, 1, /*timeout_ms=*/200);
    if (stopping_.load()) return;
    ReapFinished();
    if (ready <= 0) continue;
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (stopping_.load()) return;
      continue;
    }
    if (active_.load() >= options_.max_connections) {
      WriteFrame(fd, std::string(WireCodeName(WireCode::kOverloaded)) +
                         " too many connections");
      ::close(fd);
      continue;
    }
    active_.fetch_add(1);
    uint64_t id;
    {
      MutexLock lock(sessions_mutex_);
      id = next_session_id_++;
      sessions_[id].fd = fd;
    }
    std::thread thread(&MagicServer::RunSession, this, id, fd);
    {
      MutexLock lock(sessions_mutex_);
      sessions_[id].thread = std::move(thread);
    }
  }
}

void MagicServer::RunSession(uint64_t id, int fd) {
  Session session(fd, &ctx_);
  session.Run();
  active_.fetch_sub(1);
  // close + finished flip together under the lock, so Stop() never
  // shutdown()s an fd number the kernel may have already reused.
  MutexLock lock(sessions_mutex_);
  ::close(fd);
  auto it = sessions_.find(id);
  if (it != sessions_.end()) it->second.finished = true;
}

void MagicServer::ReapFinished() {
  std::vector<std::thread> done;
  {
    MutexLock lock(sessions_mutex_);
    for (auto it = sessions_.begin(); it != sessions_.end();) {
      if (it->second.finished && it->second.thread.joinable()) {
        done.push_back(std::move(it->second.thread));
        it = sessions_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (std::thread& thread : done) thread.join();
}

}  // namespace net
}  // namespace magic
