#include "net/session.h"

#include <cstdlib>
#include <optional>
#include <sstream>
#include <utility>

#include "ast/parser.h"
#include "ast/program.h"
#include "storage/write_batch.h"

namespace magic {
namespace net {

namespace {

/// Splits one line on spaces/tabs (runs collapse; no quoting — seeds and
/// names are space-free by grammar).
std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string token;
  while (in >> token) tokens.push_back(std::move(token));
  return tokens;
}

bool IsOptionToken(const std::string& token, const char* key,
                   std::string* value) {
  std::string prefix = std::string(key) + "=";
  if (token.rfind(prefix, 0) != 0) return false;
  *value = token.substr(prefix.size());
  return true;
}

/// Request-level options a QUERY/STREAM/PREPARE may trail with. Consumes
/// matching tokens from the back of `tokens`; unknown `key=value`-shaped
/// tokens are left in place (they may be a legitimate seed like `f(x=1)` —
/// the seed parser owns rejecting them).
struct RequestOptions {
  QueryLimits limits;
  std::optional<Strategy> strategy;
  std::optional<std::string> sip;
  bool profile = false;  // append per-rule fixpoint profile lines
  std::string error;  // nonempty = malformed option value

  static RequestOptions Consume(std::vector<std::string>* tokens) {
    RequestOptions opts;
    while (!tokens->empty()) {
      const std::string& token = tokens->back();
      std::string value;
      if (IsOptionToken(token, "limit", &value)) {
        char* end = nullptr;
        opts.limits.row_limit = std::strtoull(value.c_str(), &end, 10);
        if (value.empty() || *end != '\0') {
          opts.error = "bad limit= value: " + value;
        }
      } else if (IsOptionToken(token, "deadline_ms", &value)) {
        char* end = nullptr;
        unsigned long long ms = std::strtoull(value.c_str(), &end, 10);
        if (value.empty() || *end != '\0') {
          opts.error = "bad deadline_ms= value: " + value;
        } else {
          opts.limits.deadline = std::chrono::milliseconds(ms);
        }
      } else if (IsOptionToken(token, "strategy", &value)) {
        opts.strategy = StrategyFromName(value);
        if (!opts.strategy.has_value()) {
          opts.error = "unknown strategy: " + value;
        }
      } else if (IsOptionToken(token, "sip", &value)) {
        opts.sip = value;
      } else if (IsOptionToken(token, "profile", &value)) {
        if (value == "1") {
          opts.profile = true;
        } else if (value == "0") {
          opts.profile = false;
        } else {
          opts.error = "bad profile= value: " + value + " (want 0 or 1)";
        }
      } else {
        break;
      }
      tokens->pop_back();
      if (!opts.error.empty()) break;
    }
    return opts;
  }
};

/// Renders one answer tuple, tab-separated.
std::string RenderTuple(const Universe& u, const std::vector<TermId>& tuple) {
  std::string row;
  for (TermId term : tuple) {
    if (!row.empty()) row += "\t";
    row += u.TermToString(term);
  }
  return row;
}

/// The head line every answer response starts with.
std::string AnswerHead(WireCode code, size_t rows, AnswerStatus outcome,
                       bool cached) {
  std::string head = WireCodeName(code);
  head += " rows=" + std::to_string(rows);
  head += " outcome=" + AnswerStatusName(outcome);
  head += cached ? " cached=1" : " cached=0";
  return head;
}

/// One `%`-prefixed line per rule of the evaluated program, carrying this
/// run's fixpoint profile. Cache-served answers ran no fixpoint and have an
/// empty profile, so they append nothing.
void AppendProfileLines(const QueryAnswer& answer, std::string* out) {
  for (size_t i = 0; i < answer.profile.size(); ++i) {
    const RuleProfile& c = answer.profile[i].counts;
    *out += "\n% " + std::to_string(i) +
            " evals=" + std::to_string(c.evals) +
            " firings=" + std::to_string(c.firings) +
            " new_facts=" + std::to_string(c.new_facts) +
            " duplicate_facts=" + std::to_string(c.duplicate_facts) +
            " join_probes=" + std::to_string(c.join_probes) +
            " delta_rows=" + std::to_string(c.delta_rows) +
            " rule=" + answer.profile[i].rule;
  }
}

}  // namespace

void Session::Run() {
  std::string request;
  while (true) {
    FrameResult result = ReadFrame(fd_, ctx_->max_request_frame, &request);
    switch (result) {
      case FrameResult::kOk:
        break;
      case FrameResult::kEof:
        return;  // clean disconnect on a frame boundary
      case FrameResult::kOversized:
        // The length prefix itself is hostile; after answering there is no
        // way back onto a frame boundary, so the connection ends here.
        Reply(WireCode::kProtocol,
              "request frame exceeds " +
                  std::to_string(ctx_->max_request_frame) + " bytes");
        return;
      case FrameResult::kTorn:
      case FrameResult::kError:
        return;  // peer vanished mid-frame; nobody is listening for a reply
    }
    if (!HandleFrame(request)) return;
  }
}

bool Session::HandleFrame(const std::string& request) {
  size_t eol = request.find('\n');
  std::string first_line =
      eol == std::string::npos ? request : request.substr(0, eol);
  std::string payload =
      eol == std::string::npos ? std::string() : request.substr(eol + 1);
  std::vector<std::string> tokens = Tokenize(first_line);
  if (tokens.empty()) {
    return Reply(WireCode::kInvalidArgument, "empty request");
  }
  std::string verb = tokens.front();
  tokens.erase(tokens.begin());
  if (verb == "PREPARE") return HandlePrepare(tokens);
  if (verb == "QUERY") return HandleQuery(tokens, /*streaming=*/false);
  if (verb == "STREAM") return HandleQuery(tokens, /*streaming=*/true);
  if (verb == "APPLY") return HandleApply(payload);
  if (verb == "STATS") return HandleStats();
  if (verb == "METRICS") return HandleMetrics(tokens);
  if (verb == "CLOSE") {
    Reply(WireCode::kOk, "bye");
    return false;
  }
  return Reply(WireCode::kInvalidArgument, "unknown verb '" + verb + "'");
}

bool Session::HandlePrepare(const std::vector<std::string>& args) {
  std::vector<std::string> tokens = args;
  RequestOptions opts = RequestOptions::Consume(&tokens);
  if (!opts.error.empty()) {
    return Reply(WireCode::kInvalidArgument, opts.error);
  }
  if (tokens.size() < 2) {
    return Reply(WireCode::kInvalidArgument,
                 "usage: PREPARE <name> <query> [strategy=S] [sip=S]");
  }
  std::string name = tokens.front();
  std::string text;
  for (size_t i = 1; i < tokens.size(); ++i) {
    if (!text.empty()) text += " ";
    text += tokens[i];
  }
  if (text.rfind("?-", 0) != 0) text = "?- " + text;
  size_t last = text.find_last_not_of(" \t");
  text.resize(last + 1);
  if (text.back() != '.') text += '.';

  auto parsed = ParseUnit(text, ctx_->universe);
  if (!parsed.ok()) {
    return Reply(WireCode::kInvalidArgument, parsed.status().message());
  }
  if (!parsed->query.has_value() || !parsed->facts.empty() ||
      !parsed->program.rules().empty()) {
    return Reply(WireCode::kInvalidArgument, "not a query: " + text);
  }
  const Universe& u = *ctx_->universe;
  // The freeze check runs before Prepare: a query naming a brand-new
  // predicate just declared it (harmlessly — nothing serves it), and the
  // rejection must name the predicate so the client knows which one.
  if (Status st = CheckFrozenPredicate(u, parsed->query->goal.pred,
                                       ctx_->frozen_preds);
      !st.ok()) {
    return Reply(ToWireCode(st.code()), st.message());
  }

  PreparedEntry entry;
  entry.query = *parsed->query;
  entry.strategy = opts.strategy;
  entry.sip = opts.sip;
  const std::vector<TermId>& goal_args = entry.query.goal.args;
  for (size_t i = 0; i < goal_args.size(); ++i) {
    if (u.terms().IsGround(goal_args[i])) {
      entry.bound_positions.push_back(static_cast<int>(i));
    }
  }

  QueryRequest request;
  request.query = entry.query;
  request.strategy = opts.strategy;
  request.sip = opts.sip;
  const PredicateInfo& info = u.predicates().info(entry.query.goal.pred);
  if (info.kind == PredKind::kBase) {
    // Base predicates need no compiled form; QUERY/STREAM on this entry
    // serve through the request tier (entry.handle stays invalid).
  } else {
    Result<QueryService::FormHandle> prepared =
        ctx_->service->Prepare(request);
    if (!prepared.ok()) {
      return Reply(ToWireCode(prepared.status().code()),
                   prepared.status().message());
    }
    entry.handle = *prepared;
  }
  std::string adornment;
  for (size_t i = 0; i < goal_args.size(); ++i) {
    adornment += u.terms().IsGround(goal_args[i]) ? 'b' : 'f';
  }
  size_t bound = entry.bound_positions.size();
  forms_[name] = std::move(entry);
  return Reply(WireCode::kOk, "form=" + name + " adornment=" + adornment +
                                  " bound=" + std::to_string(bound));
}

bool Session::HandleQuery(const std::vector<std::string>& args,
                          bool streaming) {
  std::vector<std::string> tokens = args;
  RequestOptions opts = RequestOptions::Consume(&tokens);
  if (!opts.error.empty()) {
    return Reply(WireCode::kInvalidArgument, opts.error);
  }
  if (tokens.empty()) {
    return Reply(WireCode::kInvalidArgument,
                 std::string("usage: ") + (streaming ? "STREAM" : "QUERY") +
                     " <name> [seed...] [limit=N] [deadline_ms=N] "
                     "[profile=1]");
  }
  std::string name = tokens.front();
  auto it = forms_.find(name);
  if (it == forms_.end()) {
    return Reply(WireCode::kNotFound,
                 "unknown form '" + name + "' (PREPARE it first)");
  }
  PreparedEntry& entry = it->second;
  Universe& u = *ctx_->universe;

  // Seeds: one ground term per bound position, or none to reuse the
  // PREPARE text's constants. Each seed parses through the real term
  // grammar by wrapping it as a fact of a scratch predicate — so integers,
  // atoms, lists, and compounds all work — into the root universe (new
  // constants are fine; the scratch predicate sits above the freeze line
  // and is never served).
  std::vector<TermId> seeds;
  if (tokens.size() > 1) {
    if (tokens.size() - 1 != entry.bound_positions.size()) {
      return Reply(WireCode::kInvalidArgument,
                   "form '" + name + "' takes " +
                       std::to_string(entry.bound_positions.size()) +
                       " seed(s), got " + std::to_string(tokens.size() - 1));
    }
    for (size_t i = 1; i < tokens.size(); ++i) {
      auto wrapped =
          ParseUnit("magicdb_wire_seed(" + tokens[i] + ").", ctx_->universe);
      if (!wrapped.ok() || wrapped->facts.size() != 1 ||
          !u.terms().IsGround(wrapped->facts[0].args[0])) {
        return Reply(WireCode::kInvalidArgument,
                     "bad seed '" + tokens[i] + "': not a ground term");
      }
      seeds.push_back(wrapped->facts[0].args[0]);
    }
  } else {
    for (int pos : entry.bound_positions) {
      seeds.push_back(entry.query.goal.args[pos]);
    }
  }

  // Request path: the handle hot path for compiled forms, the request
  // tier for base predicates (seeds substituted into the goal).
  auto run_request_tier = [&]() {
    QueryRequest request;
    request.query = entry.query;
    for (size_t i = 0; i < entry.bound_positions.size(); ++i) {
      request.query.goal.args[entry.bound_positions[i]] = seeds[i];
    }
    request.strategy = entry.strategy;
    request.sip = entry.sip;
    request.limits = opts.limits;
    return request;
  };

  std::vector<int> free_positions = QueryFreePositions(u, entry.query);

  if (!streaming) {
    QueryAnswer answer =
        entry.handle.valid()
            ? ctx_->service->Answer(entry.handle, std::move(seeds),
                                    opts.limits)
            : ctx_->service->Answer(run_request_tier());
    WireCode code = ToWireCode(answer.outcome, answer.status.code());
    if (!answer.status.ok()) {
      return Reply(code, answer.status.message());
    }
    std::string response = AnswerHead(code, answer.tuples.size(),
                                      answer.outcome, answer.from_cache);
    if (free_positions.empty()) {
      response += answer.tuples.empty() ? "\nfalse" : "\ntrue";
    } else {
      for (const auto& tuple : answer.tuples) {
        response += "\n" + RenderTuple(u, tuple);
      }
    }
    if (opts.profile) AppendProfileLines(answer, &response);
    return WriteFrame(fd_, response);
  }

  AnswerCursor cursor =
      entry.handle.valid()
          ? ctx_->service->Stream(entry.handle, std::move(seeds), opts.limits)
          : ctx_->service->Stream(run_request_tier());
  constexpr size_t kChunk = 64;
  std::vector<std::vector<TermId>> chunk;
  size_t rows = 0;
  while (cursor.Next(kChunk, &chunk)) {
    rows += chunk.size();
    if (free_positions.empty()) continue;  // boolean: count only
    for (const auto& tuple : chunk) {
      if (!WriteFrame(fd_, "*" + RenderTuple(u, tuple))) {
        // Client vanished mid-stream: cancel the evaluation so the worker
        // stops deriving rows nobody reads, then end the session (Finish
        // joins the evaluation, releasing its admission slot).
        cursor.Cancel();
        cursor.Finish();
        return false;
      }
    }
  }
  const QueryAnswer& final_answer = cursor.Finish();
  WireCode code =
      ToWireCode(final_answer.outcome, final_answer.status.code());
  if (!final_answer.status.ok()) {
    return Reply(code, final_answer.status.message());
  }
  std::string head = AnswerHead(code, rows, final_answer.outcome,
                                final_answer.from_cache);
  if (free_positions.empty()) head += rows == 0 ? "\nfalse" : "\ntrue";
  if (opts.profile) AppendProfileLines(final_answer, &head);
  return WriteFrame(fd_, head);
}

bool Session::HandleApply(const std::string& payload) {
  WriteBatch batch;
  std::istringstream in(payload);
  std::string line;
  size_t mutation_lines = 0;
  while (std::getline(in, line)) {
    size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos || line[start] == '%') continue;
    ++mutation_lines;
    if (Status st =
            ParseMutationLine(line.substr(start), ctx_->universe, &batch);
        !st.ok()) {
      return Reply(ToWireCode(st.code()),
                   "bad mutation \"" + line + "\": " + st.message());
    }
  }
  if (mutation_lines == 0) {
    return Reply(WireCode::kInvalidArgument,
                 "APPLY needs mutation lines (one per line after the verb)");
  }
  // Same freeze check as the REPL: a mutation naming a predicate declared
  // after serving started is rejected with the predicate's name.
  if (Status st = CheckFrozenPredicates(*ctx_->universe, batch,
                                        ctx_->frozen_preds);
      !st.ok()) {
    return Reply(ToWireCode(st.code()), st.message());
  }
  Result<WriteResult> applied = ctx_->service->ApplyWrites(batch);
  if (!applied.ok()) {
    return Reply(ToWireCode(applied.status().code()),
                 applied.status().message());
  }
  return Reply(WireCode::kOk,
               "inserted=" + std::to_string(applied->inserted) +
                   " retracted=" + std::to_string(applied->retracted) +
                   " cleared=" + std::to_string(applied->cleared) +
                   " mutated=" + std::to_string(applied->relations_mutated));
}

bool Session::HandleStats() {
  QueryService::Stats stats = ctx_->service->stats();
  return Reply(WireCode::kOk, stats.Summary() + "\n" + stats.Json());
}

bool Session::HandleMetrics(const std::vector<std::string>& args) {
  if (args.size() == 1 && args[0] == "json") {
    return Reply(WireCode::kOk,
                 "format=json\n" + ctx_->service->stats().Json());
  }
  if (!args.empty()) {
    return Reply(WireCode::kInvalidArgument, "usage: METRICS [json]");
  }
  return Reply(WireCode::kOk,
               "format=prometheus\n" + ctx_->service->MetricsText());
}

bool Session::Reply(WireCode code, const std::string& text) {
  std::string frame = WireCodeName(code);
  if (!text.empty()) {
    frame += " ";
    frame += text;
  }
  return WriteFrame(fd_, frame);
}

}  // namespace net
}  // namespace magic
