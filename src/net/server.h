#ifndef MAGIC_NET_SERVER_H_
#define MAGIC_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/session.h"
#include "util/annotated_mutex.h"

namespace magic {
namespace net {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read the real one back via port().
  uint16_t port = 0;
  /// Connection-level admission: accepts beyond this answer one
  /// `Overloaded` frame and close. (Request-level admission is the
  /// service's max_pending; this bound is about socket/thread fan-in.)
  size_t max_connections = 64;
  size_t max_request_frame = kMaxRequestFrame;
};

/// The TCP serving surface: accepts connections on one listener and runs
/// each as a Session on its own thread (connections are long-lived and
/// bounded by max_connections, so thread-per-connection is the right
/// simplicity/latency trade here — the heavy lifting is already pooled
/// inside QueryService).
///
/// Lifecycle: construct over a live QueryService, Start() binds/listens
/// and spawns the accept loop, Stop() (idempotent; the destructor calls
/// it) shuts the listener down, unblocks every in-flight session read,
/// and joins all threads — in-flight evaluations finish through the
/// cursor drain, so Stop never leaks a worker.
class MagicServer {
 public:
  /// `universe` is the root universe sessions parse against; `program`,
  /// `service`, and the universe must outlive the server. The predicate
  /// freeze line is captured here (constructor time = "serving started").
  MagicServer(std::shared_ptr<Universe> universe, const Program& program,
              QueryService* service, ServerOptions options = {});
  ~MagicServer();

  MagicServer(const MagicServer&) = delete;
  MagicServer& operator=(const MagicServer&) = delete;

  /// Binds, listens, and starts accepting. On success port() is the real
  /// (possibly ephemeral) port.
  Status Start();

  uint16_t port() const { return port_; }
  const std::string& host() const { return options_.host; }

  /// Stops accepting, disconnects every session, joins all threads.
  void Stop() EXCLUDES(sessions_mutex_);

  /// Connections currently being served (tests and the overload path).
  size_t active_connections() const { return active_.load(); }

 private:
  void AcceptLoop() EXCLUDES(sessions_mutex_);
  void RunSession(uint64_t id, int fd) EXCLUDES(sessions_mutex_);
  /// Joins session threads that have finished (called from the accept
  /// loop so a long-lived server does not accumulate dead threads).
  void ReapFinished() EXCLUDES(sessions_mutex_);

  ServeContext ctx_;
  ServerOptions options_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  bool started_ = false;
  std::thread accept_thread_;

  /// Ranked below the whole service tier: a session thread finishing
  /// holds this while a request of its own may still be draining, and the
  /// server must never hold it while entering QueryService.
  Mutex sessions_mutex_{lock_rank::kServerSessions};
  struct Conn {
    int fd = -1;
    std::thread thread;
    bool finished = false;
  };
  std::unordered_map<uint64_t, Conn> sessions_ GUARDED_BY(sessions_mutex_);
  uint64_t next_session_id_ GUARDED_BY(sessions_mutex_) = 0;
  std::atomic<size_t> active_{0};
};

}  // namespace net
}  // namespace magic

#endif  // MAGIC_NET_SERVER_H_
