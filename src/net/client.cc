#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <optional>
#include <sstream>
#include <utility>

namespace magic {
namespace net {

MagicClient::~MagicClient() { Close(); }

MagicClient::MagicClient(MagicClient&& other) noexcept : fd_(other.fd_) {
  other.fd_ = -1;
}

MagicClient& MagicClient::operator=(MagicClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Result<MagicClient> MagicClient::Connect(const std::string& host,
                                         uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal("socket: " + ErrnoMessage(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status st = Status::Internal("connect " + host + ":" +
                                 std::to_string(port) + ": " +
                                 ErrnoMessage(errno));
    ::close(fd);
    return st;
  }
  return MagicClient(fd);
}

MagicClient::Reply ParseReply(const std::string& frame) {
  MagicClient::Reply reply;
  std::istringstream in(frame);
  std::string first_line;
  std::getline(in, first_line);
  size_t space = first_line.find(' ');
  std::string token =
      space == std::string::npos ? first_line : first_line.substr(0, space);
  if (std::optional<WireCode> code = WireCodeFromName(token)) {
    reply.code = *code;
    reply.head =
        space == std::string::npos ? std::string() : first_line.substr(space + 1);
  } else {
    reply.code = WireCode::kProtocol;
    reply.head = "unparseable response head: " + first_line;
  }
  std::string line;
  while (std::getline(in, line)) reply.lines.push_back(std::move(line));
  return reply;
}

Result<MagicClient::Reply> MagicClient::Call(const std::string& request) {
  if (fd_ < 0) return Status::FailedPrecondition("client not connected");
  if (!WriteFrame(fd_, request)) {
    return Status::Internal("connection lost while sending request");
  }
  std::string frame;
  FrameResult result = ReadFrame(fd_, kMaxReplyFrame, &frame);
  if (result != FrameResult::kOk) {
    return Status::Internal("connection lost while reading response");
  }
  return ParseReply(frame);
}

Result<MagicClient::Reply> MagicClient::Stream(
    const std::string& request,
    const std::function<bool(const std::string&)>& on_row) {
  if (fd_ < 0) return Status::FailedPrecondition("client not connected");
  if (!WriteFrame(fd_, request)) {
    return Status::Internal("connection lost while sending request");
  }
  std::string frame;
  while (true) {
    FrameResult result = ReadFrame(fd_, kMaxReplyFrame, &frame);
    if (result != FrameResult::kOk) {
      return Status::Internal("connection lost mid-stream");
    }
    if (!frame.empty() && frame[0] == '*') {
      if (!on_row(frame.substr(1))) {
        // Consumer abandoned the stream: hang up so the server cancels
        // the evaluation instead of deriving rows nobody reads.
        Close();
        Reply reply;
        reply.code = WireCode::kCancelled;
        reply.head = "stream abandoned by consumer";
        return reply;
      }
      continue;
    }
    return ParseReply(frame);
  }
}

void MagicClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace net
}  // namespace magic
