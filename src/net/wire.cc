#include "net/wire.h"

#include <sys/socket.h>

#include <cerrno>
#include <cstring>

namespace magic {
namespace net {

namespace {

/// Receives exactly `len` bytes. Returns len on success, 0 on clean EOF
/// before any byte, -1 on error, and a short count on EOF mid-read.
ssize_t RecvAll(int fd, char* buf, size_t len) {
  size_t got = 0;
  while (got < len) {
    ssize_t n = ::recv(fd, buf + got, len - got, 0);
    if (n > 0) {
      got += static_cast<size_t>(n);
      continue;
    }
    if (n == 0) return static_cast<ssize_t>(got);  // EOF
    if (errno == EINTR) continue;
    return -1;
  }
  return static_cast<ssize_t>(got);
}

bool SendAll(int fd, const char* buf, size_t len) {
  size_t sent = 0;
  while (sent < len) {
    ssize_t n = ::send(fd, buf + sent, len - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

}  // namespace

FrameResult ReadFrame(int fd, size_t max_payload, std::string* out) {
  char header[4];
  ssize_t n = RecvAll(fd, header, sizeof(header));
  if (n == 0) return FrameResult::kEof;
  if (n < 0) return FrameResult::kError;
  if (n < 4) return FrameResult::kTorn;
  uint32_t len = (static_cast<uint32_t>(static_cast<unsigned char>(header[0]))
                  << 24) |
                 (static_cast<uint32_t>(static_cast<unsigned char>(header[1]))
                  << 16) |
                 (static_cast<uint32_t>(static_cast<unsigned char>(header[2]))
                  << 8) |
                 static_cast<uint32_t>(static_cast<unsigned char>(header[3]));
  if (len > max_payload) return FrameResult::kOversized;
  out->resize(len);
  if (len == 0) return FrameResult::kOk;
  n = RecvAll(fd, out->data(), len);
  if (n < 0) return FrameResult::kError;
  if (static_cast<size_t>(n) < len) return FrameResult::kTorn;
  return FrameResult::kOk;
}

bool WriteFrame(int fd, std::string_view payload) {
  uint32_t len = static_cast<uint32_t>(payload.size());
  char header[4] = {static_cast<char>(len >> 24), static_cast<char>(len >> 16),
                    static_cast<char>(len >> 8), static_cast<char>(len)};
  if (!SendAll(fd, header, sizeof(header))) return false;
  return SendAll(fd, payload.data(), payload.size());
}

namespace {

// strerror_r has two signatures: GNU returns char* (possibly a static
// string, ignoring buf), XSI returns int (filling buf). Overload dispatch
// normalizes both without a feature-test-macro #if maze; only one overload
// is instantiated per platform, hence maybe_unused.
[[maybe_unused]] const char* StrerrorResult(const char* result, const char*) {
  return result;
}
[[maybe_unused]] const char* StrerrorResult(int result, const char* buf) {
  return result == 0 ? buf : "unknown error";
}

}  // namespace

std::string ErrnoMessage(int err) {
  char buf[128] = "unknown error";
  return StrerrorResult(::strerror_r(err, buf, sizeof(buf)), buf);
}

}  // namespace net
}  // namespace magic
