#ifndef MAGIC_NET_WIRE_H_
#define MAGIC_NET_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace magic {
namespace net {

/// The magicdb line protocol, frame layer.
///
/// Every message — request or response — is one *frame*: a 4-byte
/// big-endian payload length followed by that many bytes of UTF-8 text.
/// Requests are single frames; most responses are too. The exceptions are
/// STREAM (any number of `*`-prefixed row frames, then one final status
/// frame) — see Session for the verb grammar.
///
/// The first whitespace-delimited token of every response frame's first
/// line is a WireCode name from util/status.h's kWireCodeTable. That is
/// the whole error model: the server, the CLI, and the batch tool all map
/// outcomes through that one table, so a client turns any response into
/// an exit code without a per-surface switch.

/// Hard ceiling on *request* frames the server will read; a longer length
/// prefix is a protocol error and closes the connection (the peer is
/// either hostile or not speaking this protocol — resynchronizing inside
/// the stream is not possible once framing is untrusted).
inline constexpr size_t kMaxRequestFrame = size_t{4} << 20;  // 4 MiB

/// Ceiling on frames the *client* will read. Replies carry whole answer
/// sets, so this is deliberately roomy.
inline constexpr size_t kMaxReplyFrame = size_t{256} << 20;

enum class FrameResult {
  kOk,         // *out holds one complete payload
  kEof,        // clean end of stream on a frame boundary
  kTorn,       // peer vanished mid-frame (header or payload cut short)
  kOversized,  // length prefix exceeds the caller's maximum
  kError,      // transport error (errno-level)
};

/// Reads one frame, blocking. On kOversized no payload bytes have been
/// consumed (the caller must close the connection — the stream can no
/// longer be trusted to be on a frame boundary).
FrameResult ReadFrame(int fd, size_t max_payload, std::string* out);

/// Writes one frame (header + payload), handling short writes. Returns
/// false on any transport error, including a peer that hung up (EPIPE is
/// suppressed via MSG_NOSIGNAL; it reports as false, not a signal).
bool WriteFrame(int fd, std::string_view payload);

/// Thread-safe strerror for status messages: std::strerror formats into a
/// shared static buffer (clang-tidy concurrency-mt-unsafe), and this layer
/// fails from many session threads at once. Formats via strerror_r into a
/// local buffer instead.
std::string ErrnoMessage(int err);

}  // namespace net
}  // namespace magic

#endif  // MAGIC_NET_WIRE_H_
