#ifndef MAGIC_NET_BOOTSTRAP_H_
#define MAGIC_NET_BOOTSTRAP_H_

#include <string>

#include "engine/query_service.h"
#include "net/server.h"

namespace magic {
namespace net {

/// Everything a serving process needs to come up: the program to load,
/// the service configuration, and the listening endpoint. Shared by
/// `magicdb serve` and the standalone magicdb-serve binary so the two
/// front-ends cannot drift.
struct ServeBootstrap {
  std::string program_path;
  std::string facts_dir;  // optional <pred>.facts directory
  QueryServiceOptions service;
  ServerOptions server;
  /// Print the service counter summary to stderr on shutdown.
  bool stats = false;
};

/// Loads the program (+ facts), builds the Database and QueryService,
/// starts a MagicServer, prints exactly one
/// `magicdb-serve listening on <host>:<port>` line to stdout (the port is
/// real even when 0 was requested — smoke tests parse this line), then
/// blocks until SIGINT/SIGTERM. Shuts down cleanly: stop accepting, drain
/// sessions, join threads, print `magicdb-serve: clean shutdown`.
/// Returns a process exit code from the shared wire table.
int RunServeMain(const ServeBootstrap& config);

}  // namespace net
}  // namespace magic

#endif  // MAGIC_NET_BOOTSTRAP_H_
