#ifndef MAGIC_NET_SESSION_H_
#define MAGIC_NET_SESSION_H_

#include <cstddef>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/query_service.h"
#include "net/wire.h"

namespace magic {
namespace net {

/// Everything one connection needs from the process hosting the server.
/// Shared by every session; all of it is either immutable for the server's
/// lifetime or internally synchronized (the Universe's interning tables,
/// the QueryService).
struct ServeContext {
  /// The root universe queries parse against. Sessions intern new
  /// constants into it concurrently — safe, the tables are internally
  /// synchronized — and the predicate freeze below polices declarations.
  std::shared_ptr<Universe> universe;
  const Program* program = nullptr;
  QueryService* service = nullptr;
  /// Predicate-table size when serving started; requests using predicates
  /// at or above this line are rejected (CheckFrozenPredicate).
  size_t frozen_preds = 0;
  size_t max_request_frame = kMaxRequestFrame;
};

/// One connection's protocol state: the prepared forms it has named, fed
/// by a frame loop over the verbs below. Runs on the connection's own
/// thread; everything it shares with other sessions goes through the
/// internally synchronized ServeContext members.
///
/// Request grammar (one frame per request; `[...]` optional, `key=value`
/// options trail the positional part):
///
///   PREPARE <name> <query-text> [strategy=S] [sip=S]
///       Parses `?- p(...)` (the "?-" and final "." may be omitted),
///       compiles its form, and binds it to the client-chosen <name>
///       (re-PREPARE rebinds). The query's constants become the default
///       seed for QUERY/STREAM.
///   QUERY <name> [seed...] [limit=N] [deadline_ms=N] [profile=1]
///       Evaluates one instance of a prepared form. Seeds are ground
///       terms without spaces (`c3`, `17`, `f(a,b)`), one per bound
///       position in position order; omitted seeds reuse the PREPARE
///       text's constants. Single response frame: first line
///       `<Code> rows=<n> outcome=<o> cached=<0|1>`, then one line per
///       tuple (tab-separated), or `true`/`false` for boolean queries.
///       With profile=1, the frame ends with one `%`-prefixed line per
///       rule of the evaluated (rewritten/adorned) program carrying that
///       run's fixpoint profile (`% <i> evals=<n> firings=<n> ...
///       rule=<text>`); cache-served answers ran no fixpoint and carry
///       none.
///   STREAM <name> [seed...] [limit=N] [deadline_ms=N] [profile=1]
///       Like QUERY but rows arrive as separate `*`-prefixed frames while
///       the fixpoint runs (derivation order, deduplicated, unsorted),
///       terminated by one `<Code> rows=<n> outcome=<o>` frame (which
///       carries the `%` profile lines when profile=1 was given).
///   APPLY
///   <mutation-line>...
///       Applies the mutation lines (one per payload line after the verb
///       line; `+fact.` inserts, `-fact.` retracts, bare inserts) as one
///       WriteBatch through the live service's write seam. Response:
///       `Ok inserted=<n> retracted=<n> cleared=<n> mutated=<n>`.
///   STATS
///       `Ok <summary>` plus one JSON line: the full stats document
///       (service counters, latency histogram quantiles, per-form
///       histograms and fixpoint profiles, the slow-query ring).
///   METRICS [json]
///       `Ok format=prometheus` followed by the Prometheus text
///       exposition of every registered instrument (scrape surface), or
///       with `json` the same stats JSON document STATS carries.
///   CLOSE
///       `Ok bye`, then the server closes the connection.
///
/// Every response frame's first token is a WireCode name (the one table in
/// util/status.h). Unknown verbs and malformed requests answer
/// InvalidArgument and the connection survives; framing violations
/// (oversized/torn frames) answer Protocol (when the peer is still there
/// to read it) and close — once framing is untrusted the byte stream
/// cannot be resynchronized.
class Session {
 public:
  Session(int fd, const ServeContext* ctx) : fd_(fd), ctx_(ctx) {}

  /// Serves frames until CLOSE, EOF, or a framing violation. Does not
  /// close `fd` (the owner does; it may be a test's socketpair end).
  void Run();

 private:
  struct PreparedEntry {
    /// Invalid for base-predicate queries (they need no compilation);
    /// those serve through the request tier instead.
    QueryService::FormHandle handle;
    Query query;                      // the PREPARE text's parse
    std::vector<int> bound_positions; // goal positions seeds substitute
    std::optional<Strategy> strategy; // PREPARE-time overrides
    std::optional<std::string> sip;
  };

  /// Dispatches one request frame. Returns false when the session should
  /// end (CLOSE, or a write failed because the peer vanished).
  bool HandleFrame(const std::string& request);

  bool HandlePrepare(const std::vector<std::string>& args);
  bool HandleQuery(const std::vector<std::string>& args, bool streaming);
  bool HandleApply(const std::string& payload);
  bool HandleStats();
  bool HandleMetrics(const std::vector<std::string>& args);

  /// Single-frame response: `<code-name> <text>`. Returns false when the
  /// write failed (peer gone).
  bool Reply(WireCode code, const std::string& text);

  int fd_;
  const ServeContext* ctx_;
  std::unordered_map<std::string, PreparedEntry> forms_;
};

}  // namespace net
}  // namespace magic

#endif  // MAGIC_NET_SESSION_H_
