#include "net/bootstrap.h"

#include <csignal>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <sstream>

#include "ast/parser.h"
#include "storage/fact_io.h"

namespace magic {
namespace net {

namespace {

std::sig_atomic_t volatile g_shutdown_requested = 0;

void HandleShutdownSignal(int) { g_shutdown_requested = 1; }

int ExitFor(const Status& status) {
  return ExitCodeFor(ToWireCode(status.code()));
}

}  // namespace

int RunServeMain(const ServeBootstrap& config) {
  std::ifstream in(config.program_path);
  if (!in) {
    std::fprintf(stderr, "magicdb-serve: cannot open %s\n",
                 config.program_path.c_str());
    return ExitCodeFor(WireCode::kInvalidArgument);
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto parsed = ParseUnit(buffer.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "magicdb-serve: %s\n",
                 parsed.status().ToString().c_str());
    return ExitFor(parsed.status());
  }
  for (const std::string& warning : ValidateProgram(parsed->program)) {
    std::fprintf(stderr, "magicdb-serve: warning: %s\n", warning.c_str());
  }

  Database db(parsed->program.universe());
  for (const Fact& fact : parsed->facts) {
    if (Status st = db.AddFact(fact); !st.ok()) {
      std::fprintf(stderr, "magicdb-serve: %s\n", st.ToString().c_str());
      return ExitFor(st);
    }
  }
  if (!config.facts_dir.empty()) {
    if (Status st =
            LoadFactsDirectory(parsed->program, config.facts_dir, &db);
        !st.ok()) {
      std::fprintf(stderr, "magicdb-serve: %s\n", st.ToString().c_str());
      return ExitFor(st);
    }
  }

  QueryService service(parsed->program, db, config.service);
  MagicServer server(parsed->program.universe(), parsed->program, &service,
                     config.server);
  if (Status st = server.Start(); !st.ok()) {
    std::fprintf(stderr, "magicdb-serve: %s\n", st.ToString().c_str());
    return ExitFor(st);
  }
  // One machine-parseable line; smoke tests and wrappers read the port
  // from it (ephemeral binding is the default).
  std::printf("magicdb-serve listening on %s:%u\n", server.host().c_str(),
              static_cast<unsigned>(server.port()));
  std::fflush(stdout);

  struct sigaction action {};
  action.sa_handler = HandleShutdownSignal;
  sigemptyset(&action.sa_mask);
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);

  while (!g_shutdown_requested) {
    // Sleep until any signal arrives; EINTR is the wake-up.
    struct timespec ts = {0, 200 * 1000 * 1000};
    ::nanosleep(&ts, nullptr);
  }

  server.Stop();
  if (config.stats) {
    std::fprintf(stderr, "%% %s\n", service.stats().Summary().c_str());
  }
  std::printf("magicdb-serve: clean shutdown\n");
  std::fflush(stdout);
  return ExitCodeFor(WireCode::kOk);
}

}  // namespace net
}  // namespace magic
