#include "obs/trace.h"

#include <utility>

namespace magic {
namespace obs {

const char* StageName(Stage stage) {
  switch (stage) {
    case Stage::kAdmit:
      return "admit";
    case Stage::kCacheProbe:
      return "cache_probe";
    case Stage::kQueueWait:
      return "queue_wait";
    case Stage::kCompile:
      return "compile";
    case Stage::kFixpoint:
      return "fixpoint";
    case Stage::kStream:
      return "stream";
  }
  return "unknown";
}

void SlowQueryLog::Record(SlowQuery entry) {
  if (capacity_ == 0) return;
  MutexLock lock(mutex_);
  entry.sequence = ++sequence_;
  if (ring_.size() == capacity_) ring_.pop_front();
  ring_.push_back(std::move(entry));
}

std::vector<SlowQuery> SlowQueryLog::Snapshot() const {
  MutexLock lock(mutex_);
  return std::vector<SlowQuery>(ring_.begin(), ring_.end());
}

}  // namespace obs
}  // namespace magic
