#include "obs/metrics.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

namespace magic {
namespace obs {

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  count += other.count;
  sum += other.sum;
  for (size_t i = 0; i < kBuckets; ++i) buckets[i] += other.buckets[i];
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target sample, 1-based; q=1 is the last sample.
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count));
  if (rank < 1) rank = 1;
  if (rank > count) rank = count;
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    if (buckets[i] == 0) continue;
    if (seen + buckets[i] < rank) {
      seen += buckets[i];
      continue;
    }
    // The target sample is in bucket i; interpolate linearly between the
    // bucket's bounds by its position among the bucket's samples.
    const uint64_t lower = Histogram::BucketLowerBound(i);
    const uint64_t upper = i + 1 < kBuckets
                               ? Histogram::BucketLowerBound(i + 1)
                               : lower + (lower >> 2);  // top bucket width
    const double within =
        static_cast<double>(rank - seen) / static_cast<double>(buckets[i]);
    return static_cast<double>(lower) +
           within * static_cast<double>(upper - lower);
  }
  return 0.0;  // unreachable when count matches the buckets
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  // Per-bucket loads are individually relaxed; the count/sum pair is read
  // last so `count` never exceeds the bucket total by more than the
  // records that raced the scan — telemetry-grade consistency.
  for (size_t i = 0; i < kBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

uint64_t Histogram::BucketLowerBound(size_t index) {
  if (index < 4) return index;
  const size_t r = index / 4;     // octave: bucket covers msb == r + 1
  const size_t sub = index % 4;   // 2-bit sub-bucket below the msb
  return static_cast<uint64_t>(4 + sub) << (r - 1);
}

std::string MetricsRegistry::EntryKey(const std::string& name,
                                      const Labels& labels) {
  std::string key = name;
  for (const auto& [label, value] : labels) {
    key += '\x1f';
    key += label;
    key += '\x1f';
    key += value;
  }
  return key;
}

std::string MetricsRegistry::RenderLabels(const Labels& labels,
                                          const std::string& extra) {
  if (labels.empty() && extra.empty()) return std::string();
  std::string out = "{";
  bool first = true;
  for (const auto& [label, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += label;
    out += "=\"";
    // Prometheus label values escape backslash, double-quote, newline.
    for (char c : value) {
      switch (c) {
        case '\\':
          out += "\\\\";
          break;
        case '"':
          out += "\\\"";
          break;
        case '\n':
          out += "\\n";
          break;
        default:
          out += c;
      }
    }
    out += '"';
  }
  if (!extra.empty()) {
    if (!first) out += ',';
    out += extra;
  }
  out += '}';
  return out;
}

MetricsRegistry::Entry* MetricsRegistry::FindOrCreate(
    const std::string& name, const Labels& labels, MetricKind kind,
    const std::string& help) {
  MutexLock lock(mutex_);
  const std::string key = EntryKey(name, labels);
  if (auto it = index_.find(key); it != index_.end()) {
    Entry* entry = entries_[it->second].get();
    if (entry->kind != kind) {
      std::fprintf(stderr,
                   "obs: metric \"%s\" registered with two kinds\n",
                   name.c_str());
      std::abort();
    }
    return entry;
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->labels = labels;
  entry->kind = kind;
  switch (kind) {
    case MetricKind::kCounter:
      entry->counter = std::make_unique<Counter>();
      break;
    case MetricKind::kGauge:
      entry->gauge = std::make_unique<Gauge>();
      break;
    case MetricKind::kHistogram:
      entry->histogram = std::make_unique<Histogram>();
      break;
  }
  Entry* raw = entry.get();
  index_.emplace(key, entries_.size());
  entries_.push_back(std::move(entry));
  auto [it, inserted] = help_.try_emplace(name, kind, help);
  if (!inserted && it->second.first != kind) {
    std::fprintf(stderr, "obs: metric \"%s\" registered with two kinds\n",
                 name.c_str());
    std::abort();
  }
  return raw;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const Labels& labels,
                                     const std::string& help) {
  return FindOrCreate(name, labels, MetricKind::kCounter, help)->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name, const Labels& labels,
                                 const std::string& help) {
  return FindOrCreate(name, labels, MetricKind::kGauge, help)->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const Labels& labels,
                                         const std::string& help) {
  return FindOrCreate(name, labels, MetricKind::kHistogram, help)
      ->histogram.get();
}

std::string MetricsRegistry::PrometheusText() const {
  MutexLock lock(mutex_);
  std::string out;
  char line[160];
  // One `# HELP`/`# TYPE` block per metric name, instruments grouped under
  // it in registration order (help_ is name-ordered, entries_ preserves
  // registration order within a name).
  for (const auto& [name, kind_help] : help_) {
    const auto& [kind, help] = kind_help;
    if (!help.empty()) {
      out += "# HELP " + name + " " + help + "\n";
    }
    out += "# TYPE " + name + " ";
    switch (kind) {
      case MetricKind::kCounter:
        out += "counter\n";
        break;
      case MetricKind::kGauge:
        out += "gauge\n";
        break;
      case MetricKind::kHistogram:
        out += "histogram\n";
        break;
    }
    for (const auto& entry : entries_) {
      if (entry->name != name) continue;
      switch (entry->kind) {
        case MetricKind::kCounter: {
          std::snprintf(line, sizeof(line), " %" PRIu64 "\n",
                        entry->counter->value());
          out += name + "_total" + RenderLabels(entry->labels) + line;
          break;
        }
        case MetricKind::kGauge: {
          std::snprintf(line, sizeof(line), " %" PRId64 "\n",
                        entry->gauge->value());
          out += name + RenderLabels(entry->labels) + line;
          break;
        }
        case MetricKind::kHistogram: {
          const HistogramSnapshot snap = entry->histogram->Snapshot();
          // Sparse cumulative buckets: emit an le bound only where the
          // cumulative count changes, plus the mandatory +Inf. Valid
          // Prometheus (bucket sets may be sparse) and keeps a 256-bucket
          // histogram's exposition proportional to its occupied range.
          uint64_t cumulative = 0;
          for (size_t i = 0; i < HistogramSnapshot::kBuckets; ++i) {
            if (snap.buckets[i] == 0) continue;
            cumulative += snap.buckets[i];
            // A bucket holds values in [lower(i), lower(i+1)), so its
            // inclusive `le` bound is the next bucket's lower bound - 1.
            const uint64_t le =
                i + 1 < HistogramSnapshot::kBuckets
                    ? Histogram::BucketLowerBound(i + 1) - 1
                    : Histogram::BucketLowerBound(i);
            std::snprintf(line, sizeof(line), "le=\"%" PRIu64 "\"", le);
            out += name + "_bucket" + RenderLabels(entry->labels, line);
            std::snprintf(line, sizeof(line), " %" PRIu64 "\n", cumulative);
            out += line;
          }
          out += name + "_bucket" +
                 RenderLabels(entry->labels, "le=\"+Inf\"");
          std::snprintf(line, sizeof(line), " %" PRIu64 "\n", snap.count);
          out += line;
          std::snprintf(line, sizeof(line), " %" PRIu64 "\n", snap.sum);
          out += name + "_sum" + RenderLabels(entry->labels) + line;
          std::snprintf(line, sizeof(line), " %" PRIu64 "\n", snap.count);
          out += name + "_count" + RenderLabels(entry->labels) + line;
          break;
        }
      }
    }
  }
  return out;
}

}  // namespace obs
}  // namespace magic
