#ifndef MAGIC_OBS_METRICS_H_
#define MAGIC_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/annotated_mutex.h"

namespace magic {
namespace obs {

/// The one metrics surface. Every subsystem that wants a counter, gauge,
/// or latency histogram registers it here (ROADMAP invariant: there is ONE
/// aggregation path), and the registry renders the whole set as
/// Prometheus-style text exposition for the METRICS wire verb.
///
/// Cost model — the reason this can stay on in production:
///   * Record/Add/Set are lock-free: relaxed atomic RMWs on pre-registered
///     cells. No allocation, no branch on a registry lock, no string work.
///   * Registration (GetCounter/GetGauge/GetHistogram) takes the registry
///     mutex and may allocate; callers register once at setup/compile time
///     and cache the returned pointer. Returned pointers are stable for
///     the registry's lifetime (instruments are heap-owned, never moved).
///   * Snapshot/render paths read the same relaxed atomics; a snapshot is
///     a point-in-time view, not a linearizable cut — fine for telemetry.
///
/// The registry mutex ranks lock_rank::kMetrics: a leaf above the data
/// plane and above the exclusive-nest floor, so instruments may be
/// registered from any request-path or write-seam frame.

/// Monotonically increasing event count. Prometheus counters; rendered
/// with the `_total` suffix.
class Counter {
 public:
  void Add(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Point-in-time signed level (queue depths, occupancy).
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A mergeable point-in-time view of one Histogram (or a merge of
/// several). Quantiles come from the bucket counts: exact bucket
/// identification, linear interpolation within the winning bucket.
struct HistogramSnapshot {
  static constexpr size_t kBuckets = 256;

  uint64_t count = 0;
  uint64_t sum = 0;  // sum of recorded values (ns for latency histograms)
  std::array<uint64_t, kBuckets> buckets{};

  /// Elementwise accumulation. Associative and commutative, so per-shard
  /// or per-thread snapshots combine in any order.
  void Merge(const HistogramSnapshot& other);

  /// The value at quantile q in [0, 1] (q=0.5 is the median), estimated
  /// from the bucket the q-th recorded value landed in. Returns 0 when
  /// empty. Error is bounded by the bucket width: <= 25% of the value,
  /// from the 4-sub-buckets-per-octave layout.
  double Quantile(double q) const;

  double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
};

/// Fixed-bucket log-scale histogram of uint64 values (latencies in
/// nanoseconds). HDR-style layout: 4 sub-buckets per power of two, so
/// relative error within a bucket is bounded at 25% across the full
/// uint64 range with only 256 cells. Record is wait-free: three relaxed
/// fetch_adds, no locks, safe from any thread including under the
/// exclusively held write seam.
class Histogram {
 public:
  static constexpr size_t kBuckets = HistogramSnapshot::kBuckets;

  void Record(uint64_t value) {
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  HistogramSnapshot Snapshot() const;

  /// Bucket index for a value: identity below 4, then
  /// (octave, 2-bit sub-bucket) above. Exposed for the bucket-boundary
  /// tests.
  static size_t BucketIndex(uint64_t value) {
    if (value < 4) return static_cast<size_t>(value);
    const int msb = std::bit_width(value) - 1;  // >= 2
    const uint64_t sub = (value >> (msb - 2)) & 3;  // two bits below the msb
    return static_cast<size_t>(msb - 1) * 4 + static_cast<size_t>(sub);
  }

  /// Inclusive lower bound of bucket `index` (the smallest value that
  /// maps there). Inverse of BucketIndex on bucket boundaries.
  static uint64_t BucketLowerBound(size_t index);

 private:
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

/// Instrument kinds, for the `# TYPE` exposition lines.
enum class MetricKind { kCounter, kGauge, kHistogram };

/// Registry of named instruments with optional Prometheus-style labels.
/// One per QueryService (not global): a process can host several services
/// without their telemetry colliding.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Label set, rendered inside `{...}` in registration order.
  using Labels = std::vector<std::pair<std::string, std::string>>;

  /// Register-or-fetch. The same (name, labels) always returns the same
  /// instrument; registering one name with two different kinds aborts
  /// (programming error). Pointers remain valid and stable for the
  /// registry's lifetime. `help` is kept from the first registration.
  Counter* GetCounter(const std::string& name, const Labels& labels = {},
                      const std::string& help = std::string())
      EXCLUDES(mutex_);
  Gauge* GetGauge(const std::string& name, const Labels& labels = {},
                  const std::string& help = std::string()) EXCLUDES(mutex_);
  Histogram* GetHistogram(const std::string& name, const Labels& labels = {},
                          const std::string& help = std::string())
      EXCLUDES(mutex_);

  /// Prometheus text exposition of every registered instrument: `# HELP` /
  /// `# TYPE` headers per metric name, counters as `name_total{labels} v`,
  /// gauges as `name{labels} v`, histograms as cumulative
  /// `name_bucket{...,le="..."}` lines (only buckets whose count changed,
  /// plus the mandatory `+Inf`) with `_sum` and `_count`.
  std::string PrometheusText() const EXCLUDES(mutex_);

 private:
  struct Entry {
    std::string name;
    Labels labels;
    MetricKind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* FindOrCreate(const std::string& name, const Labels& labels,
                      MetricKind kind, const std::string& help)
      EXCLUDES(mutex_);

  static std::string EntryKey(const std::string& name, const Labels& labels);
  static std::string RenderLabels(const Labels& labels,
                                  const std::string& extra = std::string());

  mutable Mutex mutex_{lock_rank::kMetrics};
  /// unique_ptr entries so addresses survive vector growth.
  std::vector<std::unique_ptr<Entry>> entries_ GUARDED_BY(mutex_);
  std::unordered_map<std::string, size_t> index_ GUARDED_BY(mutex_);
  std::map<std::string, std::pair<MetricKind, std::string>> help_
      GUARDED_BY(mutex_);  // name -> (kind, help), ordered for rendering
};

/// Knobs for the optional (latency/trace) half of observability. Counters
/// and fixpoint profiles are always on — they are single relaxed
/// increments the tests rely on; `enabled` gates the parts that cost a
/// clock read or an allocation: latency histograms, trace spans, and the
/// slow-query log.
struct ObservabilityOptions {
  bool enabled = true;
  /// Requests slower than this (ns, end to end) land in the slow-query
  /// ring with their spans. 20ms default: well above a warm hit, below
  /// anything a user would call fast.
  uint64_t slow_query_ns = 20'000'000;
  /// Ring capacity of the slow-query log.
  size_t slow_query_capacity = 32;
};

}  // namespace obs
}  // namespace magic

#endif  // MAGIC_OBS_METRICS_H_
