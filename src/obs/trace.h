#ifndef MAGIC_OBS_TRACE_H_
#define MAGIC_OBS_TRACE_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "util/annotated_mutex.h"

namespace magic {
namespace obs {

/// Per-request trace spans and the slow-query ring buffer.
///
/// A Trace is a tiny per-request recorder of (stage, start, end) spans on
/// the monotonic clock. It is allocated only for requests that actually
/// reach the evaluation path while tracing is enabled — the warm inline
/// cache hit never sees one, and with observability disabled nothing is
/// allocated at all (callers carry a null Trace*).
///
/// Concurrency: a Trace belongs to exactly one request and is written by
/// whichever thread currently owns that request (the dispatching thread,
/// then the pool worker). The handoff through ThreadPool::Submit provides
/// the happens-before edge, so no synchronization is needed inside —
/// Record is an append to a small inline vector.

/// The stages of one request's life, in pipeline order.
enum class Stage {
  kAdmit,       // admission control (pending slot, overload check)
  kCacheProbe,  // AnswerCache probe (inline or worker second-chance)
  kQueueWait,   // submitted to the pool -> worker picked it up
  kCompile,     // form compilation (first request on a form pays it)
  kFixpoint,    // evaluation proper (seminaive/topdown engine run)
  kStream,      // first row produced -> last row delivered to the sink
};

/// Stable lowercase span name ("admit", "cache_probe", ...).
const char* StageName(Stage stage);

struct Span {
  Stage stage;
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;
};

class Trace {
 public:
  /// Monotonic now, in ns. One clock for every span so offsets subtract.
  static uint64_t NowNs() {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  void Record(Stage stage, uint64_t start_ns, uint64_t end_ns) {
    spans_.push_back(Span{stage, start_ns, end_ns});
  }

  const std::vector<Span>& spans() const { return spans_; }

 private:
  std::vector<Span> spans_;
};

/// One slow request, frozen for the ring.
struct SlowQuery {
  std::string form;      // "pred/adornment" label of the served form
  std::string seed;      // rendered bound values ("c3", "a b", ...)
  uint64_t total_ns = 0;
  uint64_t sequence = 0;  // monotonically increasing capture id
  std::vector<Span> spans;
};

/// Bounded ring of the last N requests slower than the configured
/// threshold. Recording takes the kSlowLog leaf mutex — acceptable
/// because, by construction, only slow requests ever reach it.
class SlowQueryLog {
 public:
  explicit SlowQueryLog(size_t capacity) : capacity_(capacity) {}

  void Record(SlowQuery entry) EXCLUDES(mutex_);

  /// Newest-last copy of the ring.
  std::vector<SlowQuery> Snapshot() const EXCLUDES(mutex_);

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable Mutex mutex_{lock_rank::kSlowLog};
  std::deque<SlowQuery> ring_ GUARDED_BY(mutex_);
  uint64_t sequence_ GUARDED_BY(mutex_) = 0;
};

}  // namespace obs
}  // namespace magic

#endif  // MAGIC_OBS_TRACE_H_
