#ifndef MAGIC_AST_PRINTER_H_
#define MAGIC_AST_PRINTER_H_

#include <map>
#include <string>
#include <vector>

#include "ast/program.h"

namespace magic {

/// Renders `p(t1,...,tn)`.
std::string LiteralToString(const Universe& u, const Literal& lit);

/// Renders `head :- b1, b2.` (or `head.` for an empty body).
std::string RuleToString(const Universe& u, const Rule& rule);

std::string FactToString(const Universe& u, const Fact& fact);

/// Renders all rules, one per line, in program order.
std::string ProgramToString(const Program& program);

/// Renders a sip as the paper writes it:
///   {sg_h, up} ->[Z1] sg.1
/// One line per arc; `sg_h` denotes the head node.
std::string SipToString(const Universe& u, const Rule& rule,
                        const SipGraph& sip);

/// Canonical per-rule strings: variables are renamed V1, V2, ... in
/// first-occurrence order (head first), so two alpha-equivalent rules print
/// identically. Used by the appendix gold tests.
std::vector<std::string> CanonicalRuleStrings(const Program& program);

/// Sorted canonical rule strings joined with newlines: a canonical form for
/// whole-program comparison that ignores rule order and variable names.
std::string CanonicalProgramString(const Program& program);

}  // namespace magic

#endif  // MAGIC_AST_PRINTER_H_
