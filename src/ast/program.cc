#include "ast/program.h"

#include <algorithm>

namespace magic {

std::vector<int> Program::RulesFor(PredId pred) const {
  std::vector<int> result;
  for (int i = 0; i < static_cast<int>(rules_.size()); ++i) {
    if (rules_[i].head.pred == pred) result.push_back(i);
  }
  return result;
}

std::vector<PredId> Program::HeadPredicates() const {
  std::vector<PredId> result;
  for (const Rule& rule : rules_) {
    if (std::find(result.begin(), result.end(), rule.head.pred) ==
        result.end()) {
      result.push_back(rule.head.pred);
    }
  }
  return result;
}

bool Program::IsHeadPredicate(PredId pred) const {
  for (const Rule& rule : rules_) {
    if (rule.head.pred == pred) return true;
  }
  return false;
}

std::vector<PredId> Program::AllPredicates() const {
  std::vector<PredId> result;
  auto add = [&result](PredId p) {
    if (std::find(result.begin(), result.end(), p) == result.end()) {
      result.push_back(p);
    }
  };
  for (const Rule& rule : rules_) {
    add(rule.head.pred);
    for (const Literal& lit : rule.body) add(lit.pred);
  }
  return result;
}

std::vector<SymbolId> LiteralVariables(const Universe& u, const Literal& lit) {
  std::vector<SymbolId> vars;
  AppendLiteralVariables(u, lit, &vars);
  return vars;
}

void AppendLiteralVariables(const Universe& u, const Literal& lit,
                            std::vector<SymbolId>* out) {
  for (TermId arg : lit.args) {
    u.terms().AppendVariables(arg, out);
  }
}

bool LiteralIsGround(const Universe& u, const Literal& lit) {
  for (TermId arg : lit.args) {
    if (!u.terms().IsGround(arg)) return false;
  }
  return true;
}

Adornment QueryAdornment(const Universe& u, const Query& query) {
  Adornment a = Adornment::AllFree(query.goal.args.size());
  for (size_t i = 0; i < query.goal.args.size(); ++i) {
    if (u.terms().IsGround(query.goal.args[i])) a.set_bound(i);
  }
  return a;
}

std::vector<TermId> QueryBoundArgs(const Universe& u, const Query& query) {
  std::vector<TermId> result;
  for (TermId arg : query.goal.args) {
    if (u.terms().IsGround(arg)) result.push_back(arg);
  }
  return result;
}

std::vector<int> QueryFreePositions(const Universe& u, const Query& query) {
  std::vector<int> result;
  for (int i = 0; i < static_cast<int>(query.goal.args.size()); ++i) {
    if (!u.terms().IsGround(query.goal.args[i])) result.push_back(i);
  }
  return result;
}

}  // namespace magic
