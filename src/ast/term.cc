#include "ast/term.h"

#include <algorithm>

#include "util/check.h"
#include "util/hash.h"

namespace magic {

TermId TermArena::MakeConstant(SymbolId name) {
  TermData data;
  data.kind = TermKind::kConstant;
  data.ground = true;
  data.symbol = name;
  return Intern(std::move(data));
}

TermId TermArena::MakeInteger(int64_t value) {
  TermData data;
  data.kind = TermKind::kInteger;
  data.ground = true;
  data.value = value;
  return Intern(std::move(data));
}

TermId TermArena::MakeVariable(SymbolId name) {
  TermData data;
  data.kind = TermKind::kVariable;
  data.ground = false;
  data.symbol = name;
  return Intern(std::move(data));
}

TermId TermArena::MakeCompound(SymbolId functor, std::vector<TermId> args) {
  TermData data;
  data.kind = TermKind::kCompound;
  data.symbol = functor;
  data.ground = true;
  for (TermId arg : args) {
    data.ground = data.ground && Get(arg).ground;
  }
  data.children = std::move(args);
  return Intern(std::move(data));
}

TermId TermArena::MakeAffine(TermId variable, int64_t mul, int64_t add) {
  MAGIC_CHECK_MSG(mul >= 1, "affine multiplier must be positive");
  MAGIC_CHECK(Get(variable).kind == TermKind::kVariable);
  TermData data;
  data.kind = TermKind::kAffine;
  data.ground = false;
  data.mul = mul;
  data.add = add;
  data.children = {variable};
  return Intern(std::move(data));
}

const TermData& TermArena::Get(TermId id) const {
  MAGIC_CHECK(id < size());
  // The acquire load of size_ above synchronizes with the release store in
  // Intern, so both the directory entry and the slot contents are visible.
  const ChunkDir* dir = dir_.load(std::memory_order_acquire);
  return dir->chunks[id >> kChunkShift][id & kChunkMask];
}

void TermArena::AppendVariables(TermId id, std::vector<SymbolId>* out) const {
  const TermData& data = Get(id);
  if (data.ground) return;
  switch (data.kind) {
    case TermKind::kVariable: {
      if (std::find(out->begin(), out->end(), data.symbol) == out->end()) {
        out->push_back(data.symbol);
      }
      return;
    }
    case TermKind::kCompound:
    case TermKind::kAffine: {
      for (TermId child : data.children) AppendVariables(child, out);
      return;
    }
    default:
      return;
  }
}

bool TermArena::ContainsVariable(TermId id, SymbolId var) const {
  const TermData& data = Get(id);
  if (data.ground) return false;
  if (data.kind == TermKind::kVariable) return data.symbol == var;
  for (TermId child : data.children) {
    if (ContainsVariable(child, var)) return true;
  }
  return false;
}

uint64_t TermArena::HashOf(const TermData& data) {
  uint64_t h = HashCombine(static_cast<uint64_t>(data.kind), data.symbol);
  h = HashCombine(h, static_cast<uint64_t>(data.value));
  h = HashCombine(h, static_cast<uint64_t>(data.mul));
  h = HashCombine(h, static_cast<uint64_t>(data.add));
  return HashRange(data.children.begin(), data.children.end(), h);
}

bool TermArena::Equal(const TermData& a, const TermData& b) {
  return a.kind == b.kind && a.symbol == b.symbol && a.value == b.value &&
         a.mul == b.mul && a.add == b.add && a.children == b.children;
}

TermId TermArena::Intern(TermData data) {
  MutexLock lock(mutex_);
  uint64_t h = HashOf(data);
  auto& bucket = dedup_[h];
  const ChunkDir* dir = dir_.load(std::memory_order_relaxed);
  for (TermId candidate : bucket) {
    const TermData& existing =
        dir->chunks[candidate >> kChunkShift][candidate & kChunkMask];
    if (Equal(existing, data)) return candidate;
  }
  size_t n = size_.load(std::memory_order_relaxed);
  TermId id = static_cast<TermId>(n);
  size_t chunk = n >> kChunkShift;
  if (chunk == chunk_owner_.size()) {
    chunk_owner_.push_back(
        std::make_unique<TermData[]>(size_t{1} << kChunkShift));
    auto grown = std::make_unique<ChunkDir>();
    if (dir != nullptr) grown->chunks = dir->chunks;
    grown->chunks.push_back(chunk_owner_.back().get());
    dir_.store(grown.get(), std::memory_order_release);
    dir = grown.get();
    dir_owner_.push_back(std::move(grown));
  }
  dir->chunks[chunk][n & kChunkMask] = std::move(data);
  size_.store(n + 1, std::memory_order_release);
  bucket.push_back(id);
  return id;
}

}  // namespace magic
