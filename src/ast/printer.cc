#include "ast/printer.h"

#include <algorithm>

namespace magic {

namespace {

using RenameMap = std::map<SymbolId, std::string>;

void PrintTerm(const Universe& u, TermId id, const RenameMap* renames,
               std::string* out) {
  const TermData& data = u.terms().Get(id);
  switch (data.kind) {
    case TermKind::kConstant:
      out->append(u.symbols().Name(data.symbol));
      return;
    case TermKind::kVariable: {
      if (renames != nullptr) {
        auto it = renames->find(data.symbol);
        if (it != renames->end()) {
          out->append(it->second);
          return;
        }
      }
      out->append(u.symbols().Name(data.symbol));
      return;
    }
    case TermKind::kInteger:
      out->append(std::to_string(data.value));
      return;
    case TermKind::kAffine: {
      PrintTerm(u, data.children[0], renames, out);
      if (data.mul != 1) {
        out->push_back('*');
        out->append(std::to_string(data.mul));
      }
      if (data.add != 0) {
        out->push_back('+');
        out->append(std::to_string(data.add));
      }
      return;
    }
    case TermKind::kCompound: {
      const std::string& functor = u.symbols().Name(data.symbol);
      if (functor == "." && data.children.size() == 2) {
        out->push_back('[');
        TermId node = id;
        bool first = true;
        while (true) {
          const TermData& cell = u.terms().Get(node);
          if (cell.kind == TermKind::kCompound &&
              u.symbols().Name(cell.symbol) == "." &&
              cell.children.size() == 2) {
            if (!first) out->push_back(',');
            first = false;
            PrintTerm(u, cell.children[0], renames, out);
            node = cell.children[1];
            continue;
          }
          if (cell.kind == TermKind::kConstant &&
              u.symbols().Name(cell.symbol) == "[]") {
            break;
          }
          out->push_back('|');
          PrintTerm(u, node, renames, out);
          break;
        }
        out->push_back(']');
        return;
      }
      out->append(functor);
      out->push_back('(');
      for (size_t i = 0; i < data.children.size(); ++i) {
        if (i > 0) out->push_back(',');
        PrintTerm(u, data.children[i], renames, out);
      }
      out->push_back(')');
      return;
    }
  }
}

void PrintLiteral(const Universe& u, const Literal& lit,
                  const RenameMap* renames, std::string* out) {
  out->append(u.symbols().Name(u.predicates().info(lit.pred).name));
  if (lit.args.empty()) return;
  out->push_back('(');
  for (size_t i = 0; i < lit.args.size(); ++i) {
    if (i > 0) out->push_back(',');
    PrintTerm(u, lit.args[i], renames, out);
  }
  out->push_back(')');
}

std::string RuleToStringImpl(const Universe& u, const Rule& rule,
                             const RenameMap* renames) {
  std::string out;
  PrintLiteral(u, rule.head, renames, &out);
  if (!rule.body.empty()) {
    out.append(" :- ");
    for (size_t i = 0; i < rule.body.size(); ++i) {
      if (i > 0) out.append(", ");
      PrintLiteral(u, rule.body[i], renames, &out);
    }
  }
  out.push_back('.');
  return out;
}

RenameMap CanonicalRenames(const Universe& u, const Rule& rule) {
  std::vector<SymbolId> vars = LiteralVariables(u, rule.head);
  for (const Literal& lit : rule.body) AppendLiteralVariables(u, lit, &vars);
  RenameMap renames;
  int counter = 0;
  for (SymbolId v : vars) {
    std::string name = "V";
    name += std::to_string(++counter);
    renames.emplace(v, std::move(name));
  }
  return renames;
}

}  // namespace

std::string LiteralToString(const Universe& u, const Literal& lit) {
  std::string out;
  PrintLiteral(u, lit, nullptr, &out);
  return out;
}

std::string RuleToString(const Universe& u, const Rule& rule) {
  return RuleToStringImpl(u, rule, nullptr);
}

std::string FactToString(const Universe& u, const Fact& fact) {
  Literal lit{fact.pred, fact.args};
  return LiteralToString(u, lit) + ".";
}

std::string ProgramToString(const Program& program) {
  std::string out;
  for (const Rule& rule : program.rules()) {
    out.append(RuleToString(program.u(), rule));
    out.push_back('\n');
  }
  return out;
}

std::string SipToString(const Universe& u, const Rule& rule,
                        const SipGraph& sip) {
  std::string out;
  auto member_name = [&](int member) {
    if (member == kSipHead) {
      return u.symbols().Name(u.predicates().info(rule.head.pred).name) +
             "_h";
    }
    return u.symbols().Name(
               u.predicates().info(rule.body[member].pred).name) +
           "." + std::to_string(member);
  };
  for (const SipArc& arc : sip.arcs) {
    out.push_back('{');
    for (size_t i = 0; i < arc.tail.size(); ++i) {
      if (i > 0) out.append(", ");
      out.append(member_name(arc.tail[i]));
    }
    out.append("} ->[");
    for (size_t i = 0; i < arc.label.size(); ++i) {
      if (i > 0) out.push_back(',');
      out.append(u.symbols().Name(arc.label[i]));
    }
    out.append("] ");
    out.append(member_name(arc.target));
    out.push_back('\n');
  }
  return out;
}

std::vector<std::string> CanonicalRuleStrings(const Program& program) {
  std::vector<std::string> result;
  result.reserve(program.rules().size());
  for (const Rule& rule : program.rules()) {
    RenameMap renames = CanonicalRenames(program.u(), rule);
    result.push_back(RuleToStringImpl(program.u(), rule, &renames));
  }
  return result;
}

std::string CanonicalProgramString(const Program& program) {
  std::vector<std::string> lines = CanonicalRuleStrings(program);
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& line : lines) {
    out.append(line);
    out.push_back('\n');
  }
  return out;
}

}  // namespace magic
