#ifndef MAGIC_AST_PARSER_H_
#define MAGIC_AST_PARSER_H_

#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "ast/program.h"
#include "util/status.h"

namespace magic {

/// The result of parsing one source text: the rules, the extensional facts,
/// and the (optional) query. Facts are kept out of the Program, following the
/// paper's separation of program and database.
struct ParsedUnit {
  Program program;
  std::vector<Fact> facts;
  std::optional<Query> query;
};

/// Parses a Datalog-with-function-symbols source text.
///
/// Grammar (Prolog-flavoured):
///
///   unit      := statement*
///   statement := atom [ ":-" atom ("," atom)* ] "."
///              | "?-" atom "."
///   atom      := ident [ "(" term ("," term)* ")" ]
///   term      := variable | integer | ident [ "(" term ("," term)* ")" ]
///              | "[" "]" | "[" term ("," term)* [ "|" term ] "]"
///
/// Identifiers starting with a lowercase letter are constants/functors/
/// predicate names; identifiers starting with an uppercase letter or "_"
/// are variables; a bare "_" is an anonymous variable (fresh per
/// occurrence). Comments run from "%" or "#" to end of line.
///
/// Classification: a unit clause (no body) that is ground is a database
/// fact; a non-ground unit clause is a rule with an empty body (e.g. the
/// appendix's `append(V,[],[V]).`). Predicates heading a rule are derived;
/// all others are base.
Result<ParsedUnit> ParseUnit(std::string_view text,
                             std::shared_ptr<Universe> universe);

/// Convenience for tests: parses with a fresh Universe.
Result<ParsedUnit> ParseUnit(std::string_view text);

}  // namespace magic

#endif  // MAGIC_AST_PARSER_H_
