#ifndef MAGIC_AST_TERM_H_
#define MAGIC_AST_TERM_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "ast/symbol_table.h"

namespace magic {

/// Id of a hash-consed term. Structural equality of terms in the same arena
/// is id equality, which is what makes bottom-up matching cheap.
using TermId = uint32_t;
inline constexpr TermId kInvalidTerm = 0xFFFFFFFFu;

/// The five term shapes of the paper's language.
///
///   * kConstant / kInteger — ground atoms of the Herbrand universe.
///   * kVariable            — rule variables (uppercase in the paper).
///   * kCompound            — n-ary function symbols (used by the appendix
///                            list-reverse problem; lists are '.'/2 + '[]').
///   * kAffine              — counting-index expressions `mul*V + add`
///                            (the paper's `K x m + i`, `H x t + j`, `I + 1`).
///                            Only valid in index positions of counting
///                            predicates; the evaluator both evaluates and
///                            inverts them.
enum class TermKind : uint8_t {
  kConstant,
  kInteger,
  kVariable,
  kCompound,
  kAffine,
};

/// Immutable node of the term arena.
struct TermData {
  TermKind kind = TermKind::kConstant;
  bool ground = true;
  /// Constant name / variable name / compound functor. Unused for kInteger
  /// and kAffine.
  SymbolId symbol = 0;
  /// kInteger: the value. kAffine: unused (see mul/add).
  int64_t value = 0;
  /// kAffine coefficients: denotes mul * var + add, mul >= 1.
  int64_t mul = 0;
  int64_t add = 0;
  /// kCompound: argument terms. kAffine: exactly one kVariable child.
  std::vector<TermId> children;
};

/// Arena of hash-consed terms. Also caches groundness and exposes variable
/// collection, which the rewrite algorithms use constantly (sip labels,
/// supplementary argument lists, adornment computation).
class TermArena {
 public:
  TermArena() = default;
  TermArena(const TermArena&) = delete;
  TermArena& operator=(const TermArena&) = delete;

  TermId MakeConstant(SymbolId name);
  TermId MakeInteger(int64_t value);
  TermId MakeVariable(SymbolId name);
  TermId MakeCompound(SymbolId functor, std::vector<TermId> args);
  /// Builds `mul * variable + add`; `variable` must be a kVariable term and
  /// mul must be >= 1 so the expression is invertible.
  TermId MakeAffine(TermId variable, int64_t mul, int64_t add);

  const TermData& Get(TermId id) const;
  bool IsGround(TermId id) const { return Get(id).ground; }

  /// Appends the variables of `id` to `out` in first-occurrence order,
  /// skipping variables already present in `out`.
  void AppendVariables(TermId id, std::vector<SymbolId>* out) const;

  /// True if `id` contains the variable `var`.
  bool ContainsVariable(TermId id, SymbolId var) const;

  size_t size() const { return terms_.size(); }

 private:
  TermId Intern(TermData data);
  static uint64_t HashOf(const TermData& data);
  static bool Equal(const TermData& a, const TermData& b);

  std::vector<TermData> terms_;
  std::unordered_map<uint64_t, std::vector<TermId>> dedup_;
};

}  // namespace magic

#endif  // MAGIC_AST_TERM_H_
