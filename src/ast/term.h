#ifndef MAGIC_AST_TERM_H_
#define MAGIC_AST_TERM_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "ast/symbol_table.h"
#include "util/annotated_mutex.h"

namespace magic {

/// Id of a hash-consed term. Structural equality of terms in the same arena
/// is id equality, which is what makes bottom-up matching cheap.
using TermId = uint32_t;
inline constexpr TermId kInvalidTerm = 0xFFFFFFFFu;

/// The five term shapes of the paper's language.
///
///   * kConstant / kInteger — ground atoms of the Herbrand universe.
///   * kVariable            — rule variables (uppercase in the paper).
///   * kCompound            — n-ary function symbols (used by the appendix
///                            list-reverse problem; lists are '.'/2 + '[]').
///   * kAffine              — counting-index expressions `mul*V + add`
///                            (the paper's `K x m + i`, `H x t + j`, `I + 1`).
///                            Only valid in index positions of counting
///                            predicates; the evaluator both evaluates and
///                            inverts them.
enum class TermKind : uint8_t {
  kConstant,
  kInteger,
  kVariable,
  kCompound,
  kAffine,
};

/// Immutable node of the term arena.
struct TermData {
  TermKind kind = TermKind::kConstant;
  bool ground = true;
  /// Constant name / variable name / compound functor. Unused for kInteger
  /// and kAffine.
  SymbolId symbol = 0;
  /// kInteger: the value. kAffine: unused (see mul/add).
  int64_t value = 0;
  /// kAffine coefficients: denotes mul * var + add, mul >= 1.
  int64_t mul = 0;
  int64_t add = 0;
  /// kCompound: argument terms. kAffine: exactly one kVariable child.
  std::vector<TermId> children;
};

/// Arena of hash-consed terms. Also caches groundness and exposes variable
/// collection, which the rewrite algorithms use constantly (sip labels,
/// supplementary argument lists, adornment computation).
///
/// Thread-safety contract (the basis of concurrent query serving): `Get`,
/// `IsGround`, `AppendVariables`, `ContainsVariable`, and `size` are
/// lock-free and may race freely with the `Make*` interning calls, which
/// serialize on an internal mutex. Terms live in fixed-size chunks that are
/// never moved or freed, and a new term becomes visible to readers only via
/// a release-store of the arena size after its slot is fully constructed, so
/// an id obtained from any source is always safe to dereference.
class TermArena {
 public:
  TermArena() = default;
  TermArena(const TermArena&) = delete;
  TermArena& operator=(const TermArena&) = delete;

  TermId MakeConstant(SymbolId name);
  TermId MakeInteger(int64_t value);
  TermId MakeVariable(SymbolId name);
  TermId MakeCompound(SymbolId functor, std::vector<TermId> args);
  /// Builds `mul * variable + add`; `variable` must be a kVariable term and
  /// mul must be >= 1 so the expression is invertible.
  TermId MakeAffine(TermId variable, int64_t mul, int64_t add);

  const TermData& Get(TermId id) const;
  bool IsGround(TermId id) const { return Get(id).ground; }

  /// Appends the variables of `id` to `out` in first-occurrence order,
  /// skipping variables already present in `out`.
  void AppendVariables(TermId id, std::vector<SymbolId>* out) const;

  /// True if `id` contains the variable `var`.
  bool ContainsVariable(TermId id, SymbolId var) const;

  size_t size() const { return size_.load(std::memory_order_acquire); }

 private:
  /// Terms per chunk. Chunks are allocated once and never moved, so a
  /// published `TermData&` stays valid for the arena's lifetime.
  static constexpr uint32_t kChunkShift = 12;
  static constexpr uint32_t kChunkMask = (uint32_t{1} << kChunkShift) - 1;

  /// Immutable snapshot of the chunk directory. Growing the arena past the
  /// directory's capacity publishes a larger copy; retired directories are
  /// kept alive so readers holding an old pointer stay valid.
  struct ChunkDir {
    std::vector<TermData*> chunks;
  };

  TermId Intern(TermData data) EXCLUDES(mutex_);
  static uint64_t HashOf(const TermData& data);
  static bool Equal(const TermData& a, const TermData& b);

  std::atomic<size_t> size_{0};
  std::atomic<const ChunkDir*> dir_{nullptr};

  /// Writer-side lock; readers go through the atomics above only. A
  /// data-plane lock: workers intern mid-evaluation under the shared serve
  /// lock, and nothing ranked is ever taken under it.
  Mutex mutex_{lock_rank::kTermArena};
  std::vector<std::unique_ptr<TermData[]>> chunk_owner_ GUARDED_BY(mutex_);
  std::vector<std::unique_ptr<ChunkDir>> dir_owner_ GUARDED_BY(mutex_);
  std::unordered_map<uint64_t, std::vector<TermId>> dedup_ GUARDED_BY(mutex_);
};

}  // namespace magic

#endif  // MAGIC_AST_TERM_H_
