#ifndef MAGIC_AST_PREDICATE_H_
#define MAGIC_AST_PREDICATE_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "ast/adornment.h"
#include "ast/symbol_table.h"
#include "util/check.h"

namespace magic {

/// Id of a declared predicate (dense index into the PredicateTable).
using PredId = uint32_t;
inline constexpr PredId kInvalidPred = 0xFFFFFFFFu;

/// Role of a predicate. Base predicates name database relations; everything
/// else is derived (paper, Section 1.1). The remaining kinds tag the
/// auxiliary predicates introduced by the rewriting algorithms so that
/// provenance survives into benchmarks and the semijoin optimizer.
enum class PredKind : uint8_t {
  kBase,         // EDB relation
  kDerived,      // IDB predicate (including adorned versions p^a)
  kMagic,        // magic_p^a (Section 4)
  kSupMagic,     // supmagic_i^r (Section 5)
  kCounting,     // cnt_p_ind^a (Section 6)
  kSupCounting,  // supcnt_i^r (Section 7)
  kLabel,        // label_q_j for multi-arc sips (Section 4)
};

/// Metadata for one predicate.
struct PredicateInfo {
  SymbolId name = 0;
  uint32_t arity = 0;
  PredKind kind = PredKind::kBase;
  /// Provenance: for an adorned version p^a this is p; for magic_p^a /
  /// cnt_p_ind^a this is the adorned p^a; for supplementary predicates the
  /// adorned head predicate of the originating rule.
  PredId parent = kInvalidPred;
  /// Nonempty iff this predicate is an adorned version of `parent`. For
  /// magic/counting predicates this is the adornment of the adorned parent.
  Adornment adornment;
  /// Number of leading index arguments (3 for the counting method's
  /// p_ind/cnt predicates, else 0). Index arguments precede all others.
  uint32_t index_fields = 0;

  bool IsAdorned() const { return !adornment.empty(); }
};

/// Registry of predicates, keyed by (name, arity).
///
/// Like SymbolTable, a registry may be layered over a frozen base (the
/// PlanUniverse overlay): ids below the base's size resolve through the
/// base, new declarations land in this layer, and the base is physically
/// immutable through the overlay — `mutable_info` on a base id is a
/// checked error, which is what makes plan compilation provably
/// side-effect-free on the shared Universe.
class PredicateTable {
 public:
  PredicateTable() = default;
  /// Overlay constructor. `base` must outlive this table and must not be
  /// mutated afterwards (the overlay captures its size as the id offset).
  explicit PredicateTable(const PredicateTable* base)
      : base_(base), offset_(static_cast<PredId>(base->size())) {}
  PredicateTable(const PredicateTable&) = delete;
  PredicateTable& operator=(const PredicateTable&) = delete;

  /// Declares a new predicate; the (name, arity) pair must be unused (in
  /// the base or this layer).
  PredId Declare(SymbolId name, uint32_t arity, PredKind kind) {
    MAGIC_CHECK_MSG(!Find(name, arity).has_value(),
                    "predicate already declared");
    PredId id = offset_ + static_cast<PredId>(infos_.size());
    PredicateInfo info;
    info.name = name;
    info.arity = arity;
    info.kind = kind;
    infos_.push_back(std::move(info));
    index_.emplace(Key(name, arity), id);
    return id;
  }

  /// Returns the existing id or declares a new one. If the predicate exists,
  /// kDerived upgrades kBase (a predicate first seen in a body, later seen
  /// in a head); any other kind mismatch is a caller bug. The upgrade is a
  /// base-table write, so it is rejected for base-layer predicates of an
  /// overlay (parsing happens before plans are compiled, never through one).
  PredId GetOrDeclare(SymbolId name, uint32_t arity, PredKind kind) {
    if (std::optional<PredId> found = Find(name, arity)) {
      const PredicateInfo& existing = info(*found);
      if (kind == PredKind::kDerived && existing.kind == PredKind::kBase) {
        mutable_info(*found).kind = PredKind::kDerived;
      }
      return *found;
    }
    return Declare(name, arity, kind);
  }

  std::optional<PredId> Find(SymbolId name, uint32_t arity) const {
    if (base_ != nullptr) {
      if (std::optional<PredId> found = base_->Find(name, arity)) {
        return found;
      }
    }
    auto it = index_.find(Key(name, arity));
    if (it == index_.end()) return std::nullopt;
    return it->second;
  }

  const PredicateInfo& info(PredId id) const {
    if (id < offset_) return base_->info(id);
    MAGIC_CHECK(id - offset_ < infos_.size());
    return infos_[id - offset_];
  }
  PredicateInfo& mutable_info(PredId id) {
    MAGIC_CHECK_MSG(id >= offset_,
                    "overlay may not mutate a frozen base predicate");
    MAGIC_CHECK(id - offset_ < infos_.size());
    return infos_[id - offset_];
  }

  size_t size() const { return offset_ + infos_.size(); }

 private:
  static uint64_t Key(SymbolId name, uint32_t arity) {
    return (static_cast<uint64_t>(name) << 32) | arity;
  }

  const PredicateTable* base_ = nullptr;
  PredId offset_ = 0;
  std::vector<PredicateInfo> infos_;
  std::unordered_map<uint64_t, PredId> index_;
};

}  // namespace magic

#endif  // MAGIC_AST_PREDICATE_H_
