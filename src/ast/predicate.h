#ifndef MAGIC_AST_PREDICATE_H_
#define MAGIC_AST_PREDICATE_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>

#include "ast/adornment.h"
#include "ast/symbol_table.h"
#include "util/annotated_mutex.h"
#include "util/check.h"

namespace magic {

/// Id of a declared predicate (dense index into the PredicateTable).
using PredId = uint32_t;
inline constexpr PredId kInvalidPred = 0xFFFFFFFFu;

/// Role of a predicate. Base predicates name database relations; everything
/// else is derived (paper, Section 1.1). The remaining kinds tag the
/// auxiliary predicates introduced by the rewriting algorithms so that
/// provenance survives into benchmarks and the semijoin optimizer.
enum class PredKind : uint8_t {
  kBase,         // EDB relation
  kDerived,      // IDB predicate (including adorned versions p^a)
  kMagic,        // magic_p^a (Section 4)
  kSupMagic,     // supmagic_i^r (Section 5)
  kCounting,     // cnt_p_ind^a (Section 6)
  kSupCounting,  // supcnt_i^r (Section 7)
  kLabel,        // label_q_j for multi-arc sips (Section 4)
};

/// Metadata for one predicate.
struct PredicateInfo {
  SymbolId name = 0;
  uint32_t arity = 0;
  PredKind kind = PredKind::kBase;
  /// Provenance: for an adorned version p^a this is p; for magic_p^a /
  /// cnt_p_ind^a this is the adorned p^a; for supplementary predicates the
  /// adorned head predicate of the originating rule.
  PredId parent = kInvalidPred;
  /// Nonempty iff this predicate is an adorned version of `parent`. For
  /// magic/counting predicates this is the adornment of the adorned parent.
  Adornment adornment;
  /// Number of leading index arguments (3 for the counting method's
  /// p_ind/cnt predicates, else 0). Index arguments precede all others.
  uint32_t index_fields = 0;

  bool IsAdorned() const { return !adornment.empty(); }
};

/// Registry of predicates, keyed by (name, arity).
///
/// Like SymbolTable, a registry may be layered over a frozen base (the
/// PlanUniverse overlay): ids below the base's size resolve through the
/// base, new declarations land in this layer, and the base is physically
/// immutable through the overlay — `mutable_info` on a base id is a
/// checked error, which is what makes plan compilation provably
/// side-effect-free on the shared Universe.
///
/// Concurrency contract (matches SymbolTable): the table is internally
/// synchronized. Declare/GetOrDeclare serialize on an internal mutex;
/// Find/info/size take it shared; storage is an append-only deque, so the
/// reference info() returns stays valid for the table's lifetime. This
/// makes a root table safe to *read* from many serving threads while a
/// parse on another connection declares a predicate — but note that a
/// runtime declaration is permanent and lands above the service's
/// predicate freeze line, so serving surfaces reject queries/writes that
/// use it (see QueryService); the synchronization here just turns what
/// would be a data race into a well-defined "declared but not servable"
/// state. The GetOrDeclare kind upgrade (kBase -> kDerived) writes an
/// existing entry and is only performed while parsing rules, which every
/// serving surface does before serving starts or rejects at runtime.
/// mutable_info remains a compile-time-only accessor: it hands out an
/// unguarded reference, so callers must not use it concurrently with
/// serving (rewrites only mutate overlay-local predicates during plan
/// compilation, which owns the overlay exclusively).
class PredicateTable {
 public:
  PredicateTable() = default;
  /// Overlay constructor. `base` must outlive this table; ids the base
  /// declares after overlay creation belong to the base alone (the overlay
  /// captures the base's current size as its id offset).
  explicit PredicateTable(const PredicateTable* base)
      : base_(base), offset_(static_cast<PredId>(base->size())) {}
  PredicateTable(const PredicateTable&) = delete;
  PredicateTable& operator=(const PredicateTable&) = delete;

  /// Declares a new predicate; the (name, arity) pair must be unused (in
  /// the base or this layer).
  PredId Declare(SymbolId name, uint32_t arity, PredKind kind) {
    MAGIC_CHECK_MSG(!FindInBase(name, arity).has_value(),
                    "predicate already declared");
    WriterMutexLock lock(mutex_);
    MAGIC_CHECK_MSG(!FindLocked(name, arity).has_value(),
                    "predicate already declared");
    return DeclareLocked(name, arity, kind);
  }

  /// Returns the existing id or declares a new one. If the predicate exists,
  /// kDerived upgrades kBase (a predicate first seen in a body, later seen
  /// in a head); any other kind mismatch is a caller bug. The upgrade is a
  /// base-table write, so it is rejected for base-layer predicates of an
  /// overlay (parsing happens before plans are compiled, never through one).
  PredId GetOrDeclare(SymbolId name, uint32_t arity, PredKind kind) {
    if (std::optional<PredId> found = FindInBase(name, arity)) {
      MaybeUpgrade(*found, kind);
      return *found;
    }
    WriterMutexLock lock(mutex_);
    if (std::optional<PredId> found = FindLocked(name, arity)) {
      if (kind == PredKind::kDerived &&
          infos_[*found - offset_].kind == PredKind::kBase) {
        infos_[*found - offset_].kind = PredKind::kDerived;
      }
      return *found;
    }
    return DeclareLocked(name, arity, kind);
  }

  std::optional<PredId> Find(SymbolId name, uint32_t arity) const {
    if (std::optional<PredId> found = FindInBase(name, arity)) return found;
    ReaderMutexLock lock(mutex_);
    return FindLocked(name, arity);
  }

  /// The reference is stable for the table's lifetime (append-only deque
  /// storage).
  const PredicateInfo& info(PredId id) const {
    if (id < offset_) return base_->info(id);
    ReaderMutexLock lock(mutex_);
    MAGIC_CHECK(id - offset_ < infos_.size());
    return infos_[id - offset_];
  }
  /// Compile-time only: hands out an unguarded reference (see the class
  /// comment). A base id through an overlay is a checked error. Takes the
  /// lock exclusive — the caller is about to write through the result.
  PredicateInfo& mutable_info(PredId id) {
    MAGIC_CHECK_MSG(id >= offset_,
                    "overlay may not mutate a frozen base predicate");
    WriterMutexLock lock(mutex_);
    MAGIC_CHECK(id - offset_ < infos_.size());
    return infos_[id - offset_];
  }

  size_t size() const {
    ReaderMutexLock lock(mutex_);
    return offset_ + infos_.size();
  }

 private:
  static uint64_t Key(SymbolId name, uint32_t arity) {
    return (static_cast<uint64_t>(name) << 32) | arity;
  }

  /// Base lookup happens outside this table's lock; the order is strictly
  /// overlay -> base, so layering cannot deadlock. Filtered to the
  /// overlay's id horizon: the root table keeps declaring at runtime, so a
  /// base hit with id >= offset_ (declared after this overlay captured
  /// offset_) would alias an overlay-local id — info() on it resolves to
  /// the wrong predicate or MAGIC_CHECK-aborts. Treat it as a miss.
  std::optional<PredId> FindInBase(SymbolId name, uint32_t arity) const {
    if (base_ == nullptr) return std::nullopt;
    std::optional<PredId> found = base_->Find(name, arity);
    if (found.has_value() && *found >= offset_) return std::nullopt;
    return found;
  }

  std::optional<PredId> FindLocked(SymbolId name, uint32_t arity) const
      REQUIRES_SHARED(mutex_) {
    auto it = index_.find(Key(name, arity));
    if (it == index_.end()) return std::nullopt;
    return it->second;
  }

  PredId DeclareLocked(SymbolId name, uint32_t arity, PredKind kind)
      REQUIRES(mutex_) {
    PredId id = offset_ + static_cast<PredId>(infos_.size());
    PredicateInfo info;
    info.name = name;
    info.arity = arity;
    info.kind = kind;
    infos_.push_back(std::move(info));
    index_.emplace(Key(name, arity), id);
    return id;
  }

  /// GetOrDeclare's kind upgrade for a base-layer hit would be a base
  /// write, which overlays must not do — so an overlay asking for
  /// kDerived over a base kBase predicate is a caller bug, same as the
  /// pre-overlay CHECK (parsing never runs through an overlay).
  void MaybeUpgrade(PredId id, PredKind kind) const {
    if (kind != PredKind::kDerived) return;
    MAGIC_CHECK_MSG(base_->info(id).kind != PredKind::kBase,
                    "overlay may not upgrade a frozen base predicate");
  }

  const PredicateTable* base_ = nullptr;
  PredId offset_ = 0;
  /// Root tables rank kSymbolRoot; each overlay layer sits one step below
  /// its base, matching SymbolTable — the overlay -> base order is an
  /// ascending rank chain the Debug checker enforces.
  mutable SharedMutex mutex_{base_ == nullptr
                                 ? lock_rank::kSymbolRoot
                                 : base_->mutex_.rank() -
                                       lock_rank::kOverlayStep};
  /// Deque, not vector: growth never moves existing infos, so info()'s
  /// returned references survive concurrent declaration.
  std::deque<PredicateInfo> infos_ GUARDED_BY(mutex_);
  std::unordered_map<uint64_t, PredId> index_ GUARDED_BY(mutex_);
};

}  // namespace magic

#endif  // MAGIC_AST_PREDICATE_H_
