#include "ast/parser.h"

#include <cctype>
#include <string>

namespace magic {

namespace {

enum class TokKind {
  kIdent,
  kVariable,
  kInteger,
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kComma,
  kPipe,
  kDot,
  kStar,     // * (affine index terms)
  kPlus,     // + (affine index terms)
  kImplies,  // :-
  kQuery,    // ?-
  kEnd,
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;
  int64_t value = 0;
  int line = 1;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Result<Token> Next() {
    SkipWhitespaceAndComments();
    Token tok;
    tok.line = line_;
    if (pos_ >= text_.size()) {
      tok.kind = TokKind::kEnd;
      return tok;
    }
    char c = text_[pos_];
    if (c == '(') { ++pos_; tok.kind = TokKind::kLParen; return tok; }
    if (c == ')') { ++pos_; tok.kind = TokKind::kRParen; return tok; }
    if (c == '[') { ++pos_; tok.kind = TokKind::kLBracket; return tok; }
    if (c == ']') { ++pos_; tok.kind = TokKind::kRBracket; return tok; }
    if (c == ',') { ++pos_; tok.kind = TokKind::kComma; return tok; }
    if (c == '|') { ++pos_; tok.kind = TokKind::kPipe; return tok; }
    if (c == '.') { ++pos_; tok.kind = TokKind::kDot; return tok; }
    if (c == '*') { ++pos_; tok.kind = TokKind::kStar; return tok; }
    if (c == '+') { ++pos_; tok.kind = TokKind::kPlus; return tok; }
    if (c == ':') {
      if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '-') {
        pos_ += 2;
        tok.kind = TokKind::kImplies;
        return tok;
      }
      return Error("expected ':-'");
    }
    if (c == '?') {
      if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '-') {
        pos_ += 2;
        tok.kind = TokKind::kQuery;
        return tok;
      }
      return Error("expected '?-'");
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && pos_ + 1 < text_.size() &&
         std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])))) {
      size_t start = pos_;
      if (c == '-') ++pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      tok.kind = TokKind::kInteger;
      tok.text = std::string(text_.substr(start, pos_ - start));
      tok.value = std::stoll(tok.text);
      return tok;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_')) {
        ++pos_;
      }
      tok.text = std::string(text_.substr(start, pos_ - start));
      tok.kind = (std::isupper(static_cast<unsigned char>(c)) || c == '_')
                     ? TokKind::kVariable
                     : TokKind::kIdent;
      return tok;
    }
    return Error(std::string("unexpected character '") + c + "'");
  }

 private:
  void SkipWhitespaceAndComments() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '%' || c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  Status Error(const std::string& msg) const {
    return Status::InvalidArgument("parse error at line " +
                                   std::to_string(line_) + ": " + msg);
  }

  std::string_view text_;
  size_t pos_ = 0;
  int line_ = 1;
};

class Parser {
 public:
  Parser(std::string_view text, std::shared_ptr<Universe> universe)
      : lexer_(text), universe_(std::move(universe)) {}

  Result<ParsedUnit> Run() {
    MAGIC_RETURN_IF_ERROR(Advance());
    struct Clause {
      Literal head;
      std::vector<Literal> body;
      bool is_query = false;
      int line = 1;
    };
    std::vector<Clause> clauses;
    while (current_.kind != TokKind::kEnd) {
      Clause clause;
      clause.line = current_.line;
      if (current_.kind == TokKind::kQuery) {
        MAGIC_RETURN_IF_ERROR(Advance());
        Result<Literal> atom = ParseAtom();
        if (!atom.ok()) return atom.status();
        clause.head = *atom;
        clause.is_query = true;
      } else {
        Result<Literal> head = ParseAtom();
        if (!head.ok()) return head.status();
        clause.head = *head;
        if (current_.kind == TokKind::kImplies) {
          MAGIC_RETURN_IF_ERROR(Advance());
          while (true) {
            Result<Literal> atom = ParseAtom();
            if (!atom.ok()) return atom.status();
            clause.body.push_back(*atom);
            if (current_.kind != TokKind::kComma) break;
            MAGIC_RETURN_IF_ERROR(Advance());
          }
        }
      }
      MAGIC_RETURN_IF_ERROR(Expect(TokKind::kDot, "'.'"));
      clauses.push_back(std::move(clause));
    }

    ParsedUnit unit;
    unit.program = Program(universe_);
    // First pass: predicates heading a rule with a body, or heading a
    // non-ground unit clause, are derived.
    for (const Clause& clause : clauses) {
      if (clause.is_query) continue;
      bool is_rule = !clause.body.empty() ||
                     !LiteralIsGround(*universe_, clause.head);
      if (is_rule) {
        const PredicateInfo& info =
            universe_->predicates().info(clause.head.pred);
        universe_->predicates().GetOrDeclare(info.name, info.arity,
                                             PredKind::kDerived);
      }
    }
    for (Clause& clause : clauses) {
      if (clause.is_query) {
        if (unit.query.has_value()) {
          return Status::InvalidArgument(
              "parse error at line " + std::to_string(clause.line) +
              ": multiple queries (a query is a single predicate occurrence)");
        }
        unit.query = Query{std::move(clause.head)};
        continue;
      }
      bool derived_head = universe_->predicates().info(clause.head.pred).kind !=
                          PredKind::kBase;
      if (clause.body.empty() && !derived_head &&
          LiteralIsGround(*universe_, clause.head)) {
        unit.facts.push_back(Fact{clause.head.pred, std::move(clause.head.args)});
        continue;
      }
      Rule rule;
      rule.head = std::move(clause.head);
      rule.body = std::move(clause.body);
      unit.program.AddRule(std::move(rule));
    }
    return unit;
  }

 private:
  Status Advance() {
    Result<Token> tok = lexer_.Next();
    if (!tok.ok()) return tok.status();
    current_ = *tok;
    return Status::OK();
  }

  Status Expect(TokKind kind, const std::string& what) {
    if (current_.kind != kind) {
      return Status::InvalidArgument("parse error at line " +
                                     std::to_string(current_.line) +
                                     ": expected " + what);
    }
    return Advance();
  }

  Result<Literal> ParseAtom() {
    if (current_.kind != TokKind::kIdent) {
      return Status::InvalidArgument(
          "parse error at line " + std::to_string(current_.line) +
          ": expected a predicate name");
    }
    std::string name = current_.text;
    MAGIC_RETURN_IF_ERROR(Advance());
    std::vector<TermId> args;
    if (current_.kind == TokKind::kLParen) {
      MAGIC_RETURN_IF_ERROR(Advance());
      while (true) {
        Result<TermId> term = ParseTerm();
        if (!term.ok()) return term.status();
        args.push_back(*term);
        if (current_.kind != TokKind::kComma) break;
        MAGIC_RETURN_IF_ERROR(Advance());
      }
      MAGIC_RETURN_IF_ERROR(Expect(TokKind::kRParen, "')'"));
    }
    Literal lit;
    lit.pred = universe_->predicates().GetOrDeclare(
        universe_->Sym(name), static_cast<uint32_t>(args.size()),
        PredKind::kBase);
    lit.args = std::move(args);
    return lit;
  }

  Result<TermId> ParseTerm() {
    switch (current_.kind) {
      case TokKind::kVariable: {
        std::string name = current_.text;
        MAGIC_RETURN_IF_ERROR(Advance());
        if (name == "_") return universe_->FreshVariable("_Anon");
        TermId var = universe_->Variable(name);
        // Affine counting-index terms: V, V+a, V*m, V*m+a.
        int64_t mul = 1;
        int64_t add = 0;
        bool affine = false;
        if (current_.kind == TokKind::kStar) {
          MAGIC_RETURN_IF_ERROR(Advance());
          if (current_.kind != TokKind::kInteger) {
            return Status::InvalidArgument(
                "parse error at line " + std::to_string(current_.line) +
                ": expected an integer multiplier after '*'");
          }
          mul = current_.value;
          affine = true;
          MAGIC_RETURN_IF_ERROR(Advance());
        }
        if (current_.kind == TokKind::kPlus) {
          MAGIC_RETURN_IF_ERROR(Advance());
          if (current_.kind != TokKind::kInteger) {
            return Status::InvalidArgument(
                "parse error at line " + std::to_string(current_.line) +
                ": expected an integer offset after '+'");
          }
          add = current_.value;
          affine = true;
          MAGIC_RETURN_IF_ERROR(Advance());
        }
        if (!affine) return var;
        return universe_->Affine(var, mul, add);
      }
      case TokKind::kInteger: {
        int64_t value = current_.value;
        MAGIC_RETURN_IF_ERROR(Advance());
        return universe_->Integer(value);
      }
      case TokKind::kIdent: {
        std::string name = current_.text;
        MAGIC_RETURN_IF_ERROR(Advance());
        if (current_.kind != TokKind::kLParen) {
          return universe_->Constant(name);
        }
        MAGIC_RETURN_IF_ERROR(Advance());
        std::vector<TermId> args;
        while (true) {
          Result<TermId> term = ParseTerm();
          if (!term.ok()) return term.status();
          args.push_back(*term);
          if (current_.kind != TokKind::kComma) break;
          MAGIC_RETURN_IF_ERROR(Advance());
        }
        MAGIC_RETURN_IF_ERROR(Expect(TokKind::kRParen, "')'"));
        return universe_->terms().MakeCompound(universe_->Sym(name),
                                               std::move(args));
      }
      case TokKind::kLBracket: {
        MAGIC_RETURN_IF_ERROR(Advance());
        if (current_.kind == TokKind::kRBracket) {
          MAGIC_RETURN_IF_ERROR(Advance());
          return universe_->NilTerm();
        }
        std::vector<TermId> items;
        while (true) {
          Result<TermId> term = ParseTerm();
          if (!term.ok()) return term.status();
          items.push_back(*term);
          if (current_.kind != TokKind::kComma) break;
          MAGIC_RETURN_IF_ERROR(Advance());
        }
        TermId tail = kInvalidTerm;
        if (current_.kind == TokKind::kPipe) {
          MAGIC_RETURN_IF_ERROR(Advance());
          Result<TermId> term = ParseTerm();
          if (!term.ok()) return term.status();
          tail = *term;
        }
        MAGIC_RETURN_IF_ERROR(Expect(TokKind::kRBracket, "']'"));
        TermId list = tail == kInvalidTerm ? universe_->NilTerm() : tail;
        for (auto it = items.rbegin(); it != items.rend(); ++it) {
          list = universe_->Cons(*it, list);
        }
        return list;
      }
      default:
        return Status::InvalidArgument("parse error at line " +
                                       std::to_string(current_.line) +
                                       ": expected a term");
    }
  }

  Lexer lexer_;
  std::shared_ptr<Universe> universe_;
  Token current_;
};

}  // namespace

Result<ParsedUnit> ParseUnit(std::string_view text,
                             std::shared_ptr<Universe> universe) {
  Parser parser(text, std::move(universe));
  return parser.Run();
}

Result<ParsedUnit> ParseUnit(std::string_view text) {
  return ParseUnit(text, std::make_shared<Universe>());
}

}  // namespace magic
