#include "ast/universe.h"

#include <string>

namespace magic {

TermId Universe::FreshVariable(std::string_view prefix) {
  while (true) {
    std::string name =
        std::string(prefix) + "_" + std::to_string(fresh_counter_++);
    if (!symbols_.Find(name).has_value()) {
      return terms().MakeVariable(symbols_.Intern(name));
    }
  }
}

TermId Universe::MakeList(const std::vector<TermId>& items) {
  TermId list = NilTerm();
  for (auto it = items.rbegin(); it != items.rend(); ++it) {
    list = Cons(*it, list);
  }
  return list;
}

std::string Universe::TermToString(TermId id) const {
  std::string out;
  TermToStringImpl(id, &out);
  return out;
}

void Universe::TermToStringImpl(TermId id, std::string* out) const {
  const TermData& data = terms().Get(id);
  switch (data.kind) {
    case TermKind::kConstant:
    case TermKind::kVariable:
      out->append(symbols_.Name(data.symbol));
      return;
    case TermKind::kInteger:
      out->append(std::to_string(data.value));
      return;
    case TermKind::kAffine: {
      // Formats mul*V+add the way the paper writes index expressions,
      // e.g. "I+1", "K*2+2", "H*5+4".
      const TermData& var = terms().Get(data.children[0]);
      if (data.mul != 1) {
        out->append(symbols_.Name(var.symbol));
        out->append("*");
        out->append(std::to_string(data.mul));
      } else {
        out->append(symbols_.Name(var.symbol));
      }
      if (data.add != 0) {
        out->append("+");
        out->append(std::to_string(data.add));
      }
      return;
    }
    case TermKind::kCompound: {
      const std::string& functor = symbols_.Name(data.symbol);
      if (functor == "." && data.children.size() == 2) {
        // List sugar: [a, b | T] / [a, b].
        out->push_back('[');
        TermId node = id;
        bool first = true;
        while (true) {
          const TermData& cell = terms().Get(node);
          if (cell.kind == TermKind::kCompound &&
              symbols_.Name(cell.symbol) == "." && cell.children.size() == 2) {
            if (!first) out->push_back(',');
            first = false;
            TermToStringImpl(cell.children[0], out);
            node = cell.children[1];
            continue;
          }
          if (cell.kind == TermKind::kConstant &&
              symbols_.Name(cell.symbol) == "[]") {
            break;  // proper list
          }
          out->push_back('|');
          TermToStringImpl(node, out);
          break;
        }
        out->push_back(']');
        return;
      }
      out->append(functor);
      out->push_back('(');
      for (size_t i = 0; i < data.children.size(); ++i) {
        if (i > 0) out->push_back(',');
        TermToStringImpl(data.children[i], out);
      }
      out->push_back(')');
      return;
    }
  }
}

SymbolId Universe::UniquePredicateName(std::string_view desired,
                                       uint32_t arity) {
  std::string name(desired);
  int suffix = 0;
  while (true) {
    std::optional<SymbolId> sym = symbols_.Find(name);
    if (!sym.has_value() || !predicates_.Find(*sym, arity).has_value()) {
      return symbols_.Intern(name);
    }
    name = std::string(desired) + "_" + std::to_string(++suffix);
  }
}

}  // namespace magic
