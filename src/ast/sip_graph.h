#ifndef MAGIC_AST_SIP_GRAPH_H_
#define MAGIC_AST_SIP_GRAPH_H_

#include <vector>

#include "ast/symbol_table.h"

namespace magic {

/// Sentinel occurrence index for the special head node p_h (paper, Section 2:
/// the head predicate restricted to its bound arguments).
inline constexpr int kSipHead = -1;

/// One sip arc `N ->_chi q`: evaluating the join of the tail predicates binds
/// the label variables, which are passed to the target occurrence.
struct SipArc {
  /// Tail N: body-occurrence indices, possibly including kSipHead for p_h.
  std::vector<int> tail;
  /// Label chi: the variables whose bindings are passed along the arc.
  std::vector<SymbolId> label;
  /// Target: index of the body occurrence receiving the bindings.
  int target = 0;

  bool operator==(const SipArc&) const = default;
};

/// A sideways information passing strategy for one rule (paper, Section 2).
///
/// The `order` field stores a total order of all body occurrences compatible
/// with the sip's precedence relation (condition (3') of the paper):
/// occurrences in arc tails precede the arc's target, and occurrences that do
/// not participate in the sip come last. Rewriting algorithms that are
/// order-based (GSMS, GC, GSC) follow this order.
struct SipGraph {
  std::vector<SipArc> arcs;
  std::vector<int> order;

  /// Indices into `arcs` of the arcs entering `occurrence`.
  std::vector<int> ArcsInto(int occurrence) const {
    std::vector<int> result;
    for (int i = 0; i < static_cast<int>(arcs.size()); ++i) {
      if (arcs[i].target == occurrence) result.push_back(i);
    }
    return result;
  }

  bool HasArcInto(int occurrence) const {
    for (const SipArc& arc : arcs) {
      if (arc.target == occurrence) return true;
    }
    return false;
  }

  bool operator==(const SipGraph&) const = default;
};

/// Containment of sips (paper, Section 2.1): `inner` is contained in `outer`
/// if every arc of `inner` has a counterpart in `outer` with a superset tail
/// and a superset label. A sip is *partial* if it is properly contained in
/// another sip for the same rule.
bool SipContainedIn(const SipGraph& inner, const SipGraph& outer);

}  // namespace magic

#endif  // MAGIC_AST_SIP_GRAPH_H_
