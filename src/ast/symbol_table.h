#ifndef MAGIC_AST_SYMBOL_TABLE_H_
#define MAGIC_AST_SYMBOL_TABLE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace magic {

/// Id of an interned string (predicate name, constant name, variable name,
/// function symbol). Ids are dense indices into the owning SymbolTable.
using SymbolId = uint32_t;

/// Interns strings so the rest of the engine works with small integer ids.
///
/// Every Universe owns exactly one SymbolTable; SymbolIds from different
/// tables must never be mixed (enforced only by convention, as in most
/// interning designs).
///
/// A table may be layered over a frozen base table (the PlanUniverse
/// overlay): ids below the base's size resolve through the base, new
/// interns land in this table only, and the base is never written. Two
/// overlays of one base may assign the same id to different strings — that
/// is fine because ids from different overlays are never mixed (each
/// compiled plan resolves ids through its own table only).
class SymbolTable {
 public:
  SymbolTable() = default;
  /// Overlay constructor. `base` must outlive this table and must not be
  /// mutated afterwards (the overlay captures its size as the id offset).
  explicit SymbolTable(const SymbolTable* base)
      : base_(base), offset_(static_cast<SymbolId>(base->size())) {}
  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;

  /// Returns the id for `name`, interning it on first use. An overlay
  /// returns the base's id when the base already has the name.
  SymbolId Intern(std::string_view name);

  /// Returns the id for `name` if it has been interned (in the base or
  /// this layer).
  std::optional<SymbolId> Find(std::string_view name) const;

  /// Returns the string for an interned id.
  const std::string& Name(SymbolId id) const;

  size_t size() const { return offset_ + names_.size(); }

 private:
  const SymbolTable* base_ = nullptr;
  SymbolId offset_ = 0;
  std::vector<std::string> names_;
  std::unordered_map<std::string, SymbolId> index_;
};

}  // namespace magic

#endif  // MAGIC_AST_SYMBOL_TABLE_H_
