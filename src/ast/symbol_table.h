#ifndef MAGIC_AST_SYMBOL_TABLE_H_
#define MAGIC_AST_SYMBOL_TABLE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace magic {

/// Id of an interned string (predicate name, constant name, variable name,
/// function symbol). Ids are dense indices into the owning SymbolTable.
using SymbolId = uint32_t;

/// Interns strings so the rest of the engine works with small integer ids.
///
/// Every Universe owns exactly one SymbolTable; SymbolIds from different
/// tables must never be mixed (enforced only by convention, as in most
/// interning designs).
class SymbolTable {
 public:
  SymbolTable() = default;
  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;

  /// Returns the id for `name`, interning it on first use.
  SymbolId Intern(std::string_view name);

  /// Returns the id for `name` if it has been interned.
  std::optional<SymbolId> Find(std::string_view name) const;

  /// Returns the string for an interned id.
  const std::string& Name(SymbolId id) const;

  size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, SymbolId> index_;
};

}  // namespace magic

#endif  // MAGIC_AST_SYMBOL_TABLE_H_
