#ifndef MAGIC_AST_SYMBOL_TABLE_H_
#define MAGIC_AST_SYMBOL_TABLE_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "util/annotated_mutex.h"

namespace magic {

/// Id of an interned string (predicate name, constant name, variable name,
/// function symbol). Ids are dense indices into the owning SymbolTable.
using SymbolId = uint32_t;

/// Interns strings so the rest of the engine works with small integer ids.
///
/// Every Universe owns exactly one SymbolTable; SymbolIds from different
/// tables must never be mixed (enforced only by convention, as in most
/// interning designs).
///
/// A table may be layered over a base table (the PlanUniverse overlay):
/// ids below the base's size at overlay creation resolve through the base,
/// new interns land in this table only, and the overlay never writes the
/// base. Two overlays of one base may assign the same id to different
/// strings — that is fine because ids from different overlays are never
/// mixed (each compiled plan resolves ids through its own table only).
///
/// Concurrency contract: the table is internally synchronized, like
/// TermArena — Intern serializes on an internal mutex, Find/Name/size take
/// it shared, and storage is append-only with stable addresses (a deque),
/// so a reference returned by Name() stays valid for the table's lifetime,
/// lock dropped or not. This is what lets a *root* table keep interning at
/// runtime (the network server parses queries and new constants on many
/// connections) while compiled plans and evaluations read it concurrently.
/// Overlay tables remain effectively single-threaded (one compilation owns
/// each), but they take the base's shared lock through base_->Find/Name,
/// so compilation is safe against concurrent root interning too. The one
/// thing runtime interning must never do is re-purpose an existing id —
/// append-only growth guarantees that; see Universe for the predicate-
/// freeze rules layered on top.
class SymbolTable {
 public:
  SymbolTable() = default;
  /// Overlay constructor. `base` must outlive this table; the overlay
  /// captures the base's current size as its id offset, and ids the base
  /// assigns later belong to the base alone (the overlay never resolves
  /// them).
  explicit SymbolTable(const SymbolTable* base)
      : base_(base), offset_(static_cast<SymbolId>(base->size())) {}
  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;

  /// Returns the id for `name`, interning it on first use. An overlay
  /// returns the base's id when the base already has the name.
  SymbolId Intern(std::string_view name);

  /// Returns the id for `name` if it has been interned (in the base or
  /// this layer).
  std::optional<SymbolId> Find(std::string_view name) const;

  /// Returns the string for an interned id. The reference is stable for
  /// the table's lifetime (append-only deque storage).
  const std::string& Name(SymbolId id) const;

  size_t size() const;

 private:
  std::optional<SymbolId> FindLocked(std::string_view name) const
      REQUIRES_SHARED(mutex_);
  /// Base lookup filtered to the overlay's id horizon: a name the base
  /// interned *after* this overlay captured offset_ gets an id >= offset_,
  /// which would alias an overlay-local id — such a hit must be treated as
  /// a miss (and, in Intern, shadowed by an overlay-local entry).
  std::optional<SymbolId> FindInBase(std::string_view name) const;

  const SymbolTable* base_ = nullptr;
  SymbolId offset_ = 0;
  /// Root tables rank kSymbolRoot; each overlay layer sits one step below
  /// its base, so the contract's overlay -> base acquisition order is a
  /// strictly ascending rank chain (and base -> overlay aborts in Debug).
  mutable SharedMutex mutex_{base_ == nullptr
                                 ? lock_rank::kSymbolRoot
                                 : base_->mutex_.rank() -
                                       lock_rank::kOverlayStep};
  /// Deque, not vector: growth never moves existing strings, so Name()'s
  /// returned references survive concurrent interning.
  std::deque<std::string> names_ GUARDED_BY(mutex_);
  std::unordered_map<std::string, SymbolId> index_ GUARDED_BY(mutex_);
};

}  // namespace magic

#endif  // MAGIC_AST_SYMBOL_TABLE_H_
