#include "ast/validation.h"

#include <algorithm>
#include <map>
#include <set>

namespace magic {

namespace {

/// Union-find over variable symbols, used for connectivity checks.
class VarUnionFind {
 public:
  void Add(SymbolId v) { parent_.emplace(v, v); }

  SymbolId Find(SymbolId v) {
    Add(v);
    SymbolId root = v;
    while (parent_[root] != root) root = parent_[root];
    while (parent_[v] != root) {
      SymbolId next = parent_[v];
      parent_[v] = root;
      v = next;
    }
    return root;
  }

  void Union(SymbolId a, SymbolId b) { parent_[Find(a)] = Find(b); }

  bool Connected(SymbolId a, SymbolId b) { return Find(a) == Find(b); }

 private:
  std::map<SymbolId, SymbolId> parent_;
};

std::vector<SymbolId> HeadBoundVariables(const Universe& u, const Rule& rule,
                                         const Adornment& head_adornment) {
  std::vector<SymbolId> vars;
  for (size_t i = 0; i < rule.head.args.size(); ++i) {
    if (i < head_adornment.size() && head_adornment.bound(i)) {
      u.terms().AppendVariables(rule.head.args[i], &vars);
    }
  }
  return vars;
}

}  // namespace

Status CheckWellFormed(const Universe& u, const Rule& rule) {
  std::vector<SymbolId> body_vars;
  for (const Literal& lit : rule.body) {
    AppendLiteralVariables(u, lit, &body_vars);
  }
  std::vector<SymbolId> head_vars = LiteralVariables(u, rule.head);
  for (SymbolId v : head_vars) {
    if (std::find(body_vars.begin(), body_vars.end(), v) == body_vars.end()) {
      return Status::InvalidArgument(
          "rule violates (WF): head variable '" + u.symbols().Name(v) +
          "' does not appear in the body");
    }
  }
  return Status::OK();
}

Status CheckConnected(const Universe& u, const Rule& rule) {
  if (rule.body.empty()) return Status::OK();
  VarUnionFind uf;
  auto link_literal = [&](const Literal& lit) {
    std::vector<SymbolId> vars = LiteralVariables(u, lit);
    for (size_t i = 1; i < vars.size(); ++i) uf.Union(vars[0], vars[i]);
    return vars;
  };
  std::vector<SymbolId> head_vars = link_literal(rule.head);
  std::vector<std::vector<SymbolId>> body_vars;
  body_vars.reserve(rule.body.size());
  for (const Literal& lit : rule.body) body_vars.push_back(link_literal(lit));

  if (head_vars.empty()) {
    // A ground head: accept any body (rare; nothing to pass sideways).
    return Status::OK();
  }
  for (size_t i = 0; i < rule.body.size(); ++i) {
    if (body_vars[i].empty()) continue;  // ground literal: pure constraint
    if (!uf.Connected(head_vars[0], body_vars[i][0])) {
      return Status::InvalidArgument(
          "rule violates (C): body literal " + std::to_string(i) +
          " is not connected to the head");
    }
  }
  return Status::OK();
}

std::vector<std::string> ValidateProgram(const Program& program) {
  std::vector<std::string> warnings;
  const Universe& u = program.u();
  for (size_t i = 0; i < program.rules().size(); ++i) {
    const Rule& rule = program.rules()[i];
    if (Status st = CheckWellFormed(u, rule); !st.ok()) {
      warnings.push_back("rule " + std::to_string(i) + ": " + st.message());
    }
    if (Status st = CheckConnected(u, rule); !st.ok()) {
      warnings.push_back("rule " + std::to_string(i) + ": " + st.message());
    }
  }
  return warnings;
}

Status ValidateSip(const Universe& u, const Rule& rule,
                   const Adornment& head_adornment, const SipGraph& sip) {
  const int n = static_cast<int>(rule.body.size());
  std::vector<SymbolId> head_bound = HeadBoundVariables(u, rule, head_adornment);

  for (const SipArc& arc : sip.arcs) {
    if (arc.target < 0 || arc.target >= n) {
      return Status::InvalidArgument("sip arc target out of range");
    }
    if (arc.label.empty()) {
      return Status::InvalidArgument("sip arc with empty label");
    }
    std::set<int> seen;
    for (int member : arc.tail) {
      if (member != kSipHead && (member < 0 || member >= n)) {
        return Status::InvalidArgument("sip arc tail member out of range");
      }
      if (member == arc.target) {
        return Status::InvalidArgument("sip arc target appears in its own tail");
      }
      if (!seen.insert(member).second) {
        return Status::InvalidArgument("duplicate member in sip arc tail");
      }
    }

    // Condition (2)(i): each label variable appears in the tail.
    std::vector<SymbolId> tail_vars;
    std::vector<std::vector<SymbolId>> member_vars;
    VarUnionFind uf;
    for (int member : arc.tail) {
      std::vector<SymbolId> vars =
          member == kSipHead
              ? head_bound
              : LiteralVariables(u, rule.body[member]);
      for (SymbolId v : vars) {
        if (std::find(tail_vars.begin(), tail_vars.end(), v) ==
            tail_vars.end()) {
          tail_vars.push_back(v);
        }
      }
      for (size_t i = 1; i < vars.size(); ++i) uf.Union(vars[0], vars[i]);
      member_vars.push_back(std::move(vars));
    }
    for (SymbolId v : arc.label) {
      if (std::find(tail_vars.begin(), tail_vars.end(), v) ==
          tail_vars.end()) {
        return Status::InvalidArgument(
            "sip condition (2)(i) violated: label variable '" +
            u.symbols().Name(v) + "' does not appear in the tail");
      }
    }

    // Condition (2)(ii): each tail member is connected (within the tail's
    // variable-sharing graph) to some label variable.
    for (size_t m = 0; m < arc.tail.size(); ++m) {
      const std::vector<SymbolId>& vars = member_vars[m];
      if (vars.empty()) {
        return Status::InvalidArgument(
            "sip condition (2)(ii) violated: ground tail member");
      }
      bool connected = false;
      for (SymbolId v : vars) {
        for (SymbolId l : arc.label) {
          if (uf.Connected(v, l)) {
            connected = true;
            break;
          }
        }
        if (connected) break;
      }
      if (!connected) {
        return Status::InvalidArgument(
            "sip condition (2)(ii) violated: tail member not connected to "
            "any label variable");
      }
    }

    // Condition (2)(iii): each label variable appears in an argument of the
    // target all of whose variables are labeled.
    const Literal& target = rule.body[arc.target];
    for (SymbolId v : arc.label) {
      bool covered = false;
      for (TermId arg : target.args) {
        if (!u.terms().ContainsVariable(arg, v)) continue;
        std::vector<SymbolId> arg_vars;
        u.terms().AppendVariables(arg, &arg_vars);
        bool all_labeled = true;
        for (SymbolId av : arg_vars) {
          if (std::find(arc.label.begin(), arc.label.end(), av) ==
              arc.label.end()) {
            all_labeled = false;
            break;
          }
        }
        if (all_labeled) {
          covered = true;
          break;
        }
      }
      if (!covered) {
        return Status::InvalidArgument(
            "sip condition (2)(iii) violated: label variable '" +
            u.symbols().Name(v) +
            "' does not cover any argument of the target");
      }
    }
  }

  // Condition (3): acyclic precedence.
  Result<std::vector<int>> order = ComputeSipOrder(rule.body.size(), sip);
  if (!order.ok()) return order.status();
  return Status::OK();
}

Result<std::vector<int>> ComputeSipOrder(size_t body_size,
                                         const SipGraph& sip) {
  const int n = static_cast<int>(body_size);
  std::vector<bool> participates(n, false);
  std::vector<std::set<int>> preds(n);  // occurrence -> must-precede set
  for (const SipArc& arc : sip.arcs) {
    if (arc.target < 0 || arc.target >= n) {
      return Status::InvalidArgument("sip arc target out of range");
    }
    participates[arc.target] = true;
    for (int member : arc.tail) {
      if (member == kSipHead) continue;
      if (member < 0 || member >= n) {
        return Status::InvalidArgument("sip arc tail member out of range");
      }
      participates[member] = true;
      preds[arc.target].insert(member);
    }
  }

  std::vector<int> order;
  order.reserve(body_size);
  std::vector<bool> placed(n, false);
  // Kahn's algorithm over participating occurrences, min-index tie break so
  // the order is stable with respect to the written rule.
  int remaining = 0;
  for (int i = 0; i < n; ++i) {
    if (participates[i]) ++remaining;
  }
  while (remaining > 0) {
    int chosen = -1;
    for (int i = 0; i < n; ++i) {
      if (!participates[i] || placed[i]) continue;
      bool ready = true;
      for (int p : preds[i]) {
        if (!placed[p]) {
          ready = false;
          break;
        }
      }
      if (ready) {
        chosen = i;
        break;
      }
    }
    if (chosen == -1) {
      return Status::InvalidArgument(
          "sip condition (3) violated: cyclic precedence relation");
    }
    placed[chosen] = true;
    order.push_back(chosen);
    --remaining;
  }
  // Occurrences outside the sip follow all others (condition (3')).
  for (int i = 0; i < n; ++i) {
    if (!participates[i]) order.push_back(i);
  }
  return order;
}

}  // namespace magic
