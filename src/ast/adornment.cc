#include "ast/adornment.h"

#include <algorithm>

namespace magic {

std::optional<Adornment> Adornment::Parse(std::string_view text) {
  for (char c : text) {
    if (c != 'b' && c != 'f') return std::nullopt;
  }
  Adornment a;
  a.bits_.assign(text.begin(), text.end());
  return a;
}

size_t Adornment::bound_count() const {
  return static_cast<size_t>(std::count(bits_.begin(), bits_.end(), 'b'));
}

}  // namespace magic
