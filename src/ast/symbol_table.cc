#include "ast/symbol_table.h"

#include "util/check.h"

namespace magic {

SymbolId SymbolTable::Intern(std::string_view name) {
  if (base_ != nullptr) {
    if (std::optional<SymbolId> found = base_->Find(name)) return *found;
  }
  auto it = index_.find(std::string(name));
  if (it != index_.end()) return it->second;
  SymbolId id = offset_ + static_cast<SymbolId>(names_.size());
  names_.emplace_back(name);
  index_.emplace(names_.back(), id);
  return id;
}

std::optional<SymbolId> SymbolTable::Find(std::string_view name) const {
  if (base_ != nullptr) {
    if (std::optional<SymbolId> found = base_->Find(name)) return found;
  }
  auto it = index_.find(std::string(name));
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

const std::string& SymbolTable::Name(SymbolId id) const {
  if (id < offset_) return base_->Name(id);
  MAGIC_CHECK(id - offset_ < names_.size());
  return names_[id - offset_];
}

}  // namespace magic
