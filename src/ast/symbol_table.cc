#include "ast/symbol_table.h"

#include "util/check.h"

namespace magic {

std::optional<SymbolId> SymbolTable::FindInBase(std::string_view name) const {
  std::optional<SymbolId> found = base_->Find(name);
  // Horizon filter: the root table keeps interning at runtime (the network
  // server parses new constants on live connections), so the base can hold
  // ids >= offset_ that did not exist when this overlay was created. Those
  // ids belong to the base's id space alone — in the overlay they alias
  // overlay-local ids (Name() would resolve them to the wrong string, or
  // MAGIC_CHECK-abort). Treat them as misses.
  if (found.has_value() && *found >= offset_) return std::nullopt;
  return found;
}

SymbolId SymbolTable::Intern(std::string_view name) {
  // Overlay fast path: a name the base already had at overlay creation
  // keeps the base's id. Lock order is strictly overlay -> base (never
  // reversed) — a descending-rank chain the Debug checker enforces — so
  // layering cannot deadlock.
  if (base_ != nullptr) {
    if (std::optional<SymbolId> found = FindInBase(name)) return *found;
  }
  WriterMutexLock lock(mutex_);
  if (std::optional<SymbolId> found = FindLocked(name)) return *found;
  SymbolId id = offset_ + static_cast<SymbolId>(names_.size());
  names_.emplace_back(name);
  index_.emplace(names_.back(), id);
  return id;
}

std::optional<SymbolId> SymbolTable::FindLocked(std::string_view name) const {
  auto it = index_.find(std::string(name));
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

std::optional<SymbolId> SymbolTable::Find(std::string_view name) const {
  if (base_ != nullptr) {
    if (std::optional<SymbolId> found = FindInBase(name)) return found;
  }
  ReaderMutexLock lock(mutex_);
  return FindLocked(name);
}

const std::string& SymbolTable::Name(SymbolId id) const {
  if (id < offset_) return base_->Name(id);
  ReaderMutexLock lock(mutex_);
  MAGIC_CHECK(id - offset_ < names_.size());
  // The deque never moves elements, so the reference outlives the lock.
  return names_[id - offset_];
}

size_t SymbolTable::size() const {
  ReaderMutexLock lock(mutex_);
  return offset_ + names_.size();
}

}  // namespace magic
