#include "ast/symbol_table.h"

#include <mutex>

#include "util/check.h"

namespace magic {

SymbolId SymbolTable::Intern(std::string_view name) {
  // Overlay fast path: a name the base already has keeps the base's id.
  // Lock order is strictly overlay -> base (never reversed), so layering
  // cannot deadlock.
  if (base_ != nullptr) {
    if (std::optional<SymbolId> found = base_->Find(name)) return *found;
  }
  std::unique_lock<std::shared_mutex> lock(mutex_);
  if (std::optional<SymbolId> found = FindLocked(name)) return *found;
  SymbolId id = offset_ + static_cast<SymbolId>(names_.size());
  names_.emplace_back(name);
  index_.emplace(names_.back(), id);
  return id;
}

std::optional<SymbolId> SymbolTable::FindLocked(std::string_view name) const {
  auto it = index_.find(std::string(name));
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

std::optional<SymbolId> SymbolTable::Find(std::string_view name) const {
  if (base_ != nullptr) {
    if (std::optional<SymbolId> found = base_->Find(name)) return found;
  }
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return FindLocked(name);
}

const std::string& SymbolTable::Name(SymbolId id) const {
  if (id < offset_) return base_->Name(id);
  std::shared_lock<std::shared_mutex> lock(mutex_);
  MAGIC_CHECK(id - offset_ < names_.size());
  // The deque never moves elements, so the reference outlives the lock.
  return names_[id - offset_];
}

size_t SymbolTable::size() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return offset_ + names_.size();
}

}  // namespace magic
