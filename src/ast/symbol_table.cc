#include "ast/symbol_table.h"

#include "util/check.h"

namespace magic {

SymbolId SymbolTable::Intern(std::string_view name) {
  auto it = index_.find(std::string(name));
  if (it != index_.end()) return it->second;
  SymbolId id = static_cast<SymbolId>(names_.size());
  names_.emplace_back(name);
  index_.emplace(names_.back(), id);
  return id;
}

std::optional<SymbolId> SymbolTable::Find(std::string_view name) const {
  auto it = index_.find(std::string(name));
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

const std::string& SymbolTable::Name(SymbolId id) const {
  MAGIC_CHECK(id < names_.size());
  return names_[id];
}

}  // namespace magic
