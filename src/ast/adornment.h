#ifndef MAGIC_AST_ADORNMENT_H_
#define MAGIC_AST_ADORNMENT_H_

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>

namespace magic {

/// An adornment for an n-ary predicate: a string over {b, f} marking each
/// argument position bound or free (paper, Section 3).
class Adornment {
 public:
  Adornment() = default;

  static Adornment AllFree(size_t n) { return Adornment(std::string(n, 'f')); }
  static Adornment AllBound(size_t n) { return Adornment(std::string(n, 'b')); }

  /// Parses "bf", "bbf", ... Returns nullopt on any character outside {b,f}.
  static std::optional<Adornment> Parse(std::string_view text);

  size_t size() const { return bits_.size(); }
  bool empty() const { return bits_.empty(); }

  bool bound(size_t i) const { return bits_.at(i) == 'b'; }
  void set_bound(size_t i, bool value = true) { bits_.at(i) = value ? 'b' : 'f'; }

  size_t bound_count() const;
  bool all_free() const { return bound_count() == 0; }
  bool all_bound() const { return bound_count() == size(); }

  /// The paper's superscript notation, e.g. "bf" for sg^bf.
  const std::string& ToString() const { return bits_; }

  bool operator==(const Adornment& other) const = default;

 private:
  explicit Adornment(std::string bits) : bits_(std::move(bits)) {}

  std::string bits_;
};

struct AdornmentHash {
  size_t operator()(const Adornment& a) const {
    return std::hash<std::string>()(a.ToString());
  }
};

}  // namespace magic

#endif  // MAGIC_AST_ADORNMENT_H_
