#include "ast/sip_graph.h"

#include <algorithm>

namespace magic {

namespace {

bool IsSubset(const std::vector<int>& a, const std::vector<int>& b) {
  for (int x : a) {
    if (std::find(b.begin(), b.end(), x) == b.end()) return false;
  }
  return true;
}

bool IsSubsetSym(const std::vector<SymbolId>& a,
                 const std::vector<SymbolId>& b) {
  for (SymbolId x : a) {
    if (std::find(b.begin(), b.end(), x) == b.end()) return false;
  }
  return true;
}

}  // namespace

bool SipContainedIn(const SipGraph& inner, const SipGraph& outer) {
  for (const SipArc& arc : inner.arcs) {
    bool found = false;
    for (const SipArc& candidate : outer.arcs) {
      if (candidate.target == arc.target && IsSubset(arc.tail, candidate.tail) &&
          IsSubsetSym(arc.label, candidate.label)) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

}  // namespace magic
