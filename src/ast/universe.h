#ifndef MAGIC_AST_UNIVERSE_H_
#define MAGIC_AST_UNIVERSE_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "ast/predicate.h"
#include "ast/symbol_table.h"
#include "ast/term.h"

namespace magic {

/// The shared interning context: symbols, hash-consed terms, and the
/// predicate registry. A Program and the Database it is evaluated against
/// must share one Universe so term ids are comparable.
class Universe {
 public:
  Universe() = default;
  Universe(const Universe&) = delete;
  Universe& operator=(const Universe&) = delete;

  SymbolTable& symbols() { return symbols_; }
  const SymbolTable& symbols() const { return symbols_; }
  TermArena& terms() { return terms_; }
  const TermArena& terms() const { return terms_; }
  PredicateTable& predicates() { return predicates_; }
  const PredicateTable& predicates() const { return predicates_; }

  // -- Term construction conveniences -------------------------------------

  SymbolId Sym(std::string_view name) { return symbols_.Intern(name); }
  TermId Constant(std::string_view name) {
    return terms_.MakeConstant(Sym(name));
  }
  TermId Integer(int64_t value) { return terms_.MakeInteger(value); }
  TermId Variable(std::string_view name) {
    return terms_.MakeVariable(Sym(name));
  }
  TermId Compound(std::string_view functor, std::vector<TermId> args) {
    return terms_.MakeCompound(Sym(functor), std::move(args));
  }
  TermId Affine(TermId variable, int64_t mul, int64_t add) {
    return terms_.MakeAffine(variable, mul, add);
  }

  /// Returns a variable guaranteed not to collide with any variable interned
  /// so far (used for anonymous variables and counting-index variables).
  TermId FreshVariable(std::string_view prefix);

  // -- Lists (sugar for the appendix list-reverse problem) ----------------

  /// The empty list constant `[]`.
  TermId NilTerm() { return Constant("[]"); }
  /// The cons cell `[head | tail]`, functor '.'/2.
  TermId Cons(TermId head, TermId tail) {
    return terms_.MakeCompound(Sym("."), {head, tail});
  }
  /// Builds a proper list of `items`.
  TermId MakeList(const std::vector<TermId>& items);

  /// Renders a term with list sugar and affine-index formatting; used by the
  /// printer and error messages.
  std::string TermToString(TermId id) const;

  /// Picks a predicate name based on `desired` that is unused at `arity`,
  /// appending numeric suffixes if needed (rewrites mangle names like
  /// "magic_sg_bf" which could in principle collide with user predicates).
  SymbolId UniquePredicateName(std::string_view desired, uint32_t arity);

 private:
  void TermToStringImpl(TermId id, std::string* out) const;

  SymbolTable symbols_;
  TermArena terms_;
  PredicateTable predicates_;
  uint64_t fresh_counter_ = 0;
};

}  // namespace magic

#endif  // MAGIC_AST_UNIVERSE_H_
