#ifndef MAGIC_AST_UNIVERSE_H_
#define MAGIC_AST_UNIVERSE_H_

#include <atomic>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "ast/predicate.h"
#include "ast/symbol_table.h"
#include "ast/term.h"

namespace magic {

/// The shared interning context: symbols, hash-consed terms, and the
/// predicate registry. A Program and the Database it is evaluated against
/// must share one Universe so term ids are comparable.
///
/// A Universe can also be a *plan overlay* (the PlanUniverse of the
/// compile/evaluate split): constructed over a frozen base Universe, it
/// shares the base's TermArena (term ids stay comparable with the EDB) and
/// layers plan-local symbol/predicate extension tables over the base's.
/// Compilation (adornment, the magic/counting rewrites) then declares its
/// adorned/magic predicates into the overlay only — the base tables are
/// physically immutable through it — so any number of plans can compile
/// and evaluate concurrently against one shared base. All three interning
/// layers are internally synchronized (TermArena, SymbolTable,
/// PredicateTable), so a *root* universe may keep interning constants and
/// symbols at runtime — the network server parses queries carrying new
/// constants on many connections — while overlays compile and evaluate
/// against it. What stays forbidden at runtime is *using* predicates
/// declared after serving started: the serving surfaces freeze the
/// predicate id range and reject such queries/writes (QueryService).
class Universe {
 public:
  Universe() : terms_(std::make_shared<TermArena>()) {}
  /// Plan-overlay constructor: layers this universe over the frozen
  /// `base`, sharing its term arena. Keeps `base` alive.
  explicit Universe(std::shared_ptr<const Universe> base)
      : base_(std::move(base)),
        symbols_(&base_->symbols_),
        predicates_(&base_->predicates_),
        terms_(base_->terms_),
        fresh_counter_(base_->fresh_counter_.load()) {}
  Universe(const Universe&) = delete;
  Universe& operator=(const Universe&) = delete;

  SymbolTable& symbols() { return symbols_; }
  const SymbolTable& symbols() const { return symbols_; }
  /// The term arena is internally synchronized (interning serializes on an
  /// internal mutex; reads are lock-free), so term construction is allowed
  /// through a const Universe — which is what lets evaluation run against
  /// `const` compiled plans while still building compound/affine terms.
  TermArena& terms() const { return *terms_; }
  PredicateTable& predicates() { return predicates_; }
  const PredicateTable& predicates() const { return predicates_; }

  /// True when this universe is a plan overlay over a frozen base.
  bool is_overlay() const { return base_ != nullptr; }
  /// The frozen base (null for a root universe).
  const std::shared_ptr<const Universe>& base() const { return base_; }

  // -- Term construction conveniences -------------------------------------
  // The symbol-interning ones (Sym/Constant/Variable/Compound) mutate the
  // symbol table; on a root universe that is safe at any time (the table
  // is internally synchronized), on an overlay it is compile-time only
  // (one compilation owns each overlay). The arena-only ones
  // (Integer/Affine) are const and safe during evaluation.

  SymbolId Sym(std::string_view name) { return symbols_.Intern(name); }
  TermId Constant(std::string_view name) {
    return terms().MakeConstant(Sym(name));
  }
  TermId Integer(int64_t value) const { return terms().MakeInteger(value); }
  TermId Variable(std::string_view name) {
    return terms().MakeVariable(Sym(name));
  }
  TermId Compound(std::string_view functor, std::vector<TermId> args) {
    return terms().MakeCompound(Sym(functor), std::move(args));
  }
  TermId Affine(TermId variable, int64_t mul, int64_t add) const {
    return terms().MakeAffine(variable, mul, add);
  }

  /// Returns a variable guaranteed not to collide with any variable interned
  /// so far (used for anonymous variables and counting-index variables).
  TermId FreshVariable(std::string_view prefix);

  // -- Lists (sugar for the appendix list-reverse problem) ----------------

  /// The empty list constant `[]`.
  TermId NilTerm() { return Constant("[]"); }
  /// The cons cell `[head | tail]`, functor '.'/2.
  TermId Cons(TermId head, TermId tail) {
    return terms().MakeCompound(Sym("."), {head, tail});
  }
  /// Builds a proper list of `items`.
  TermId MakeList(const std::vector<TermId>& items);

  /// Renders a term with list sugar and affine-index formatting; used by the
  /// printer and error messages.
  std::string TermToString(TermId id) const;

  /// Picks a predicate name based on `desired` that is unused at `arity`,
  /// appending numeric suffixes if needed (rewrites mangle names like
  /// "magic_sg_bf" which could in principle collide with user predicates).
  SymbolId UniquePredicateName(std::string_view desired, uint32_t arity);

 private:
  void TermToStringImpl(TermId id, std::string* out) const;

  /// Keeps the frozen base alive; set iff this universe is an overlay.
  /// Declared first so the layered tables below can point into it.
  std::shared_ptr<const Universe> base_;
  SymbolTable symbols_;
  PredicateTable predicates_;
  /// Shared with every overlay of this universe (and with its base).
  std::shared_ptr<TermArena> terms_;
  /// Atomic because overlay construction snapshots it while the root may be
  /// minting fresh variables on another connection's parse.
  std::atomic<uint64_t> fresh_counter_{0};
};

}  // namespace magic

#endif  // MAGIC_AST_UNIVERSE_H_
