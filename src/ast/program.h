#ifndef MAGIC_AST_PROGRAM_H_
#define MAGIC_AST_PROGRAM_H_

#include <memory>
#include <optional>
#include <vector>

#include "ast/predicate.h"
#include "ast/sip_graph.h"
#include "ast/term.h"
#include "ast/universe.h"

namespace magic {

/// A predicate occurrence: predicate name applied to argument terms.
struct Literal {
  PredId pred = kInvalidPred;
  std::vector<TermId> args;

  bool operator==(const Literal&) const = default;
};

/// A ground unit of the extensional database (or a seed for a rewritten
/// program).
struct Fact {
  PredId pred = kInvalidPred;
  std::vector<TermId> args;

  bool operator==(const Fact&) const = default;
};

/// Where a rewritten rule came from; used by tests, the printer's
/// annotations, and the Section 8 semijoin optimizer.
enum class RuleOrigin : uint8_t {
  kOriginal,      // user program / adorned program rule
  kMagicRule,     // defines magic_p^a or cnt_p_ind^a
  kModifiedRule,  // guarded version of an adorned rule
  kSupplementary, // defines supmagic/supcnt
  kLabelRule,     // defines a label predicate (multi-arc sips)
};

struct RuleProvenance {
  RuleOrigin origin = RuleOrigin::kOriginal;
  /// Index of the adorned rule this rule was generated from, or -1.
  int adorned_rule = -1;
  /// For magic/counting rules: the (sip-ordered) body occurrence whose
  /// subqueries this rule generates, or -1.
  int occurrence = -1;
};

/// A Horn clause `head :- body` (empty body = unconditional rule).
/// Adorned rules carry the sip that generated them, since the later rewriting
/// stages make further use of it (paper, Section 3).
struct Rule {
  Literal head;
  std::vector<Literal> body;
  std::optional<SipGraph> sip;
  RuleProvenance provenance;
};

/// A single-predicate query `q(c, X)?`. Arguments that are ground terms are
/// the bound arguments.
struct Query {
  Literal goal;
};

/// A finite set of rules over a shared Universe. Facts are deliberately not
/// part of a Program (paper, Section 1.1: all facts live in the database).
class Program {
 public:
  Program() = default;
  explicit Program(std::shared_ptr<Universe> universe)
      : universe_(std::move(universe)) {}

  const std::shared_ptr<Universe>& universe() const { return universe_; }
  Universe& u() const { return *universe_; }

  std::vector<Rule>& rules() { return rules_; }
  const std::vector<Rule>& rules() const { return rules_; }

  int AddRule(Rule rule) {
    rules_.push_back(std::move(rule));
    return static_cast<int>(rules_.size()) - 1;
  }

  /// Indices of the rules whose head predicate is `pred`.
  std::vector<int> RulesFor(PredId pred) const;

  /// Predicates that appear as rule heads in this program (the derived
  /// predicates of this program).
  std::vector<PredId> HeadPredicates() const;

  /// True if `pred` heads at least one rule here.
  bool IsHeadPredicate(PredId pred) const;

  /// All predicates referenced by this program (heads and bodies).
  std::vector<PredId> AllPredicates() const;

 private:
  std::shared_ptr<Universe> universe_;
  std::vector<Rule> rules_;
};

// -- Small helpers shared across modules -----------------------------------

/// Variables of a literal in first-occurrence order.
std::vector<SymbolId> LiteralVariables(const Universe& u, const Literal& lit);

/// Appends the variables of `lit` to `out`, deduplicating.
void AppendLiteralVariables(const Universe& u, const Literal& lit,
                            std::vector<SymbolId>* out);

/// True if every argument of the literal is ground.
bool LiteralIsGround(const Universe& u, const Literal& lit);

/// The adornment induced by a query: positions holding ground terms are
/// bound (paper, Section 3: "precisely the positions bound in the query").
Adornment QueryAdornment(const Universe& u, const Query& query);

/// The ground arguments of the query, in position order (the seed tuple
/// contents c-bar).
std::vector<TermId> QueryBoundArgs(const Universe& u, const Query& query);

/// Positions of the query's free (non-ground) arguments.
std::vector<int> QueryFreePositions(const Universe& u, const Query& query);

}  // namespace magic

#endif  // MAGIC_AST_PROGRAM_H_
