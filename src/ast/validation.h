#ifndef MAGIC_AST_VALIDATION_H_
#define MAGIC_AST_VALIDATION_H_

#include <string>
#include <vector>

#include "ast/program.h"
#include "util/status.h"

namespace magic {

/// Condition (WF) of the paper: every variable in the head also appears in
/// the body. For definite clauses this coincides with range restriction,
/// which is what bottom-up evaluation needs to produce ground facts.
Status CheckWellFormed(const Universe& u, const Rule& rule);

/// Condition (C) of the paper: the predicate occurrences of the rule form a
/// single connected component (head included) under shared variables.
/// Ground literals are considered connected to everything (they are
/// constraints, not existential subqueries with bindings to pass).
Status CheckConnected(const Universe& u, const Rule& rule);

/// Returns human-readable warnings for rules violating (WF) or (C).
/// Violations are warnings, not errors: the appendix list-reverse program
/// violates (WF) in `append(V,[],[V])` and the paper still rewrites it — the
/// magic-rewritten program is range restricted even though the original is
/// not (Corollary 9.2 in action).
std::vector<std::string> ValidateProgram(const Program& program);

/// Validates a sip against conditions (1), (2)(i)-(iii) and (3) of Section 2.
/// `head_adornment` determines the variables of the special node p_h.
Status ValidateSip(const Universe& u, const Rule& rule,
                   const Adornment& head_adornment, const SipGraph& sip);

/// Computes a total order of all body occurrences compatible with the sip's
/// precedence relation (condition (3')): tails precede targets, occurrences
/// outside the sip come last, ties broken by original body position. Fails
/// if the precedence relation is cyclic.
Result<std::vector<int>> ComputeSipOrder(size_t body_size, const SipGraph& sip);

}  // namespace magic

#endif  // MAGIC_AST_VALIDATION_H_
