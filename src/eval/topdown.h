#ifndef MAGIC_EVAL_TOPDOWN_H_
#define MAGIC_EVAL_TOPDOWN_H_

#include <unordered_map>

#include "core/adorn.h"
#include "eval/evaluator.h"
#include "storage/database.h"

namespace magic {

/// Statistics of a top-down run, phrased in the vocabulary of Section 9:
/// `queries` generated (condition (2) of a sip strategy) and `answers`
/// computed (condition (1)).
struct TopDownStats {
  uint64_t passes = 0;
  uint64_t queries = 0;  // total distinct subqueries over all predicates
  uint64_t answers = 0;  // total distinct facts over all predicates
  double seconds = 0.0;
};

struct TopDownResult {
  Status status;
  /// Set when an EvalControl condition stopped the run early; the partial
  /// tables are a sound prefix of the fixpoint.
  StopReason stop_reason = StopReason::kNone;
  /// Per adorned predicate: the set of subqueries (tuples over the bound
  /// positions). Comparable one-to-one with the magic predicates of P^mg
  /// (Theorem 9.1).
  std::unordered_map<PredId, Relation> queries;
  /// Per adorned predicate: all facts derived while answering them.
  /// Comparable with the adorned relations computed by P^mg.
  std::unordered_map<PredId, Relation> answers;
  TopDownStats stats;
  /// Per-rule work profile, indexed like the adorned program's rule list
  /// (`evals` counts (rule, subquery) attempts whose head unified,
  /// `delta_rows` counts subqueries the rule generated). Populated when
  /// EvalOptions::rule_profile is set (the default).
  std::vector<RuleProfile> rule_profiles;

  /// The answers to the original query (tuples over the full arity of the
  /// adorned query predicate, restricted to the query's bound constants).
  std::vector<std::vector<TermId>> QueryAnswers(const Universe& u,
                                                const AdornedProgram& adorned,
                                                PredId pred) const;
  /// Same, restricted to `instance`'s bound constants instead of the
  /// adorned exemplar's (the compile-once/query-many reading: one adorned
  /// program, many seeds).
  std::vector<std::vector<TermId>> QueryAnswers(const Universe& u,
                                                const Query& instance,
                                                PredId pred) const;
};

/// A memoizing top-down evaluator in the QSQR / extension-table style: the
/// canonical *sip strategy* of Section 9. Subqueries are (adorned predicate,
/// bound-argument tuple) pairs; rules are evaluated along their sips; answer
/// and query tables grow to a simultaneous fixpoint (repeated passes handle
/// recursion).
///
/// Used as the baseline for the sip-optimality experiments: Theorem 9.1 says
/// bottom-up GMS generates exactly the queries and facts this strategy must
/// generate.
class TopDownEngine {
 public:
  explicit TopDownEngine(EvalOptions options = {}) : options_(options) {}

  /// `control`, when non-null, supplies per-run stop conditions; its
  /// `sink_pred`/`on_fact` hook observes new facts of that adorned
  /// predicate's *answer* table.
  TopDownResult Run(const AdornedProgram& adorned, const Database& edb,
                    const EvalControl* control = nullptr) const;

  /// Per-instance entry: evaluates the (immutable, compiled-once) adorned
  /// program seeded from `instance` — a query of the exemplar's form with
  /// its own constants at the bound positions. `adorned` is read-only and
  /// the run touches no mutable Universe state (terms intern through the
  /// internally synchronized arena), so concurrent Runs over one shared
  /// AdornedProgram are safe.
  TopDownResult Run(const AdornedProgram& adorned, const Query& instance,
                    const Database& edb,
                    const EvalControl* control = nullptr) const;

 private:
  EvalOptions options_;
};

}  // namespace magic

#endif  // MAGIC_EVAL_TOPDOWN_H_
