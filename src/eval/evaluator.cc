#include "eval/evaluator.h"

#include <algorithm>

#include "eval/join_program.h"
#include "eval/matcher.h"
#include "util/check.h"
#include "util/stopwatch.h"

namespace magic {

namespace {

/// Evaluation-time view of one body literal.
struct LiteralPlan {
  const Literal* literal = nullptr;
  bool idb = false;  // reads a derived relation
};

struct RulePlan {
  const Rule* rule = nullptr;
  std::vector<LiteralPlan> body;
  std::vector<int> idb_positions;  // body positions reading IDB relations
};

}  // namespace

StopReason PollEvalControl(const EvalControl* control) {
  if (control == nullptr) return StopReason::kNone;
  if (control->cancel != nullptr &&
      control->cancel->load(std::memory_order_relaxed)) {
    return StopReason::kCancelled;
  }
  if (control->deadline.has_value() &&
      std::chrono::steady_clock::now() >= *control->deadline) {
    return StopReason::kDeadline;
  }
  return StopReason::kNone;
}

EvalResult Evaluator::Run(const Program& program, const Database& edb,
                          const std::vector<Fact>& seeds,
                          const EvalControl* control) const {
  // Provenance recording needs the interpreter's per-literal match trace.
  if (options_.track_provenance) {
    return RunInterpreted(program, edb, seeds, control);
  }
  std::vector<PredId> seed_preds;
  for (const Fact& seed : seeds) {
    if (std::find(seed_preds.begin(), seed_preds.end(), seed.pred) ==
        seed_preds.end()) {
      seed_preds.push_back(seed.pred);
    }
  }
  JoinProgram jp = JoinProgram::Compile(program, seed_preds);
  return RunJoinProgram(jp, program.u(), edb, seeds, options_, control);
}

EvalResult Evaluator::Run(const JoinProgram& join_program, const Universe& u,
                          const Database& edb,
                          const std::vector<Fact>& seeds,
                          const EvalControl* control) const {
  return RunJoinProgram(join_program, u, edb, seeds, options_, control);
}

EvalResult Evaluator::RunInterpreted(const Program& program,
                                     const Database& edb,
                                     const std::vector<Fact>& seeds,
                                     const EvalControl* control) const {
  EvalResult result;
  result.status = Status::OK();
  Stopwatch watch;
  const uint64_t trace_start =
      control != nullptr && control->trace != nullptr ? obs::Trace::NowNs()
                                                      : 0;
  const Universe& u = program.u();

  StopReason stop = StopReason::kNone;
  auto control_stop = [&]() -> bool {
    StopReason polled = PollEvalControl(control);
    if (polled == StopReason::kNone) return false;
    stop = polled;
    return true;
  };

  // Determine the IDB: head predicates plus seed predicates.
  std::vector<PredId> idb_preds = program.HeadPredicates();
  for (const Fact& seed : seeds) {
    if (std::find(idb_preds.begin(), idb_preds.end(), seed.pred) ==
        idb_preds.end()) {
      idb_preds.push_back(seed.pred);
    }
  }
  for (PredId pred : idb_preds) {
    result.idb.try_emplace(pred, u.predicates().info(pred).arity);
  }
  auto is_idb = [&result](PredId pred) {
    return result.idb.find(pred) != result.idb.end();
  };

  if (options_.check_range_restriction) {
    for (size_t i = 0; i < program.rules().size(); ++i) {
      Status st = CheckRangeRestrictedRule(u, program.rules()[i],
                                           static_cast<int>(i));
      if (!st.ok()) {
        result.status = st;
        return result;
      }
    }
  }

  // Load seeds.
  for (const Fact& seed : seeds) {
    Relation& rel = result.idb.at(seed.pred);
    for (TermId arg : seed.args) {
      MAGIC_CHECK_MSG(u.terms().IsGround(arg), "seed facts must be ground");
    }
    if (rel.Insert(seed.args)) ++result.stats.new_facts;
  }

  // Compile rule plans.
  std::vector<RulePlan> plans;
  plans.reserve(program.rules().size());
  for (const Rule& rule : program.rules()) {
    RulePlan plan;
    plan.rule = &rule;
    for (size_t i = 0; i < rule.body.size(); ++i) {
      LiteralPlan lp;
      lp.literal = &rule.body[i];
      lp.idb = is_idb(rule.body[i].pred);
      if (lp.idb) plan.idb_positions.push_back(static_cast<int>(i));
      plan.body.push_back(lp);
    }
    plans.push_back(std::move(plan));
  }
  if (options_.rule_profile) result.rule_profiles.resize(plans.size());

  // Watermarks for semi-naive deltas: prev = IDB size before the previous
  // round's insertions became visible, cur = size at the start of this round.
  std::unordered_map<PredId, size_t> prev_size;
  std::unordered_map<PredId, size_t> cur_size;
  for (PredId pred : idb_preds) {
    prev_size[pred] = 0;
    cur_size[pred] = result.idb.at(pred).size();  // seeds are round-0 deltas
  }

  Substitution subst;
  std::vector<uint32_t> candidates;
  bool budget_hit = false;

  // Evaluates `plan` with literal `delta_pos` (or -1) restricted to the
  // delta rows; returns false if a budget was exhausted.
  std::vector<FactRef> match_trace;
  auto eval_rule = [&](const RulePlan& plan, int delta_pos,
                       int rule_index) -> bool {
    const Rule& rule = *plan.rule;
    subst.Clear();
    if (options_.track_provenance) {
      match_trace.assign(plan.body.size(), FactRef{});
    }

    // Resolve, per literal, the relation and visible row range.
    struct View {
      const Relation* rel = nullptr;
      size_t from = 0;
      size_t to = 0;
    };
    std::vector<View> views(plan.body.size());
    for (size_t i = 0; i < plan.body.size(); ++i) {
      const LiteralPlan& lp = plan.body[i];
      View view;
      if (lp.idb) {
        view.rel = &result.idb.at(lp.literal->pred);
        int pos = static_cast<int>(i);
        if (!options_.seminaive || delta_pos < 0) {
          view.from = 0;
          view.to = cur_size.at(lp.literal->pred);
        } else if (pos == delta_pos) {
          view.from = prev_size.at(lp.literal->pred);
          view.to = cur_size.at(lp.literal->pred);
        } else if (pos < delta_pos) {
          view.from = 0;
          view.to = cur_size.at(lp.literal->pred);
        } else {
          view.from = 0;
          view.to = prev_size.at(lp.literal->pred);
        }
      } else {
        view.rel = edb.Find(lp.literal->pred);
        view.from = 0;
        view.to = view.rel == nullptr ? 0 : view.rel->size();
      }
      views[i] = view;
    }

    // Per-rule profile: deltas of the run-wide counters across this
    // evaluation, so the profile costs nothing inside the join itself.
    RuleProfile* profile = options_.rule_profile
                               ? &result.rule_profiles[rule_index]
                               : nullptr;
    if (profile != nullptr) {
      ++profile->evals;
      if (delta_pos >= 0) {
        profile->delta_rows +=
            views[delta_pos].to - views[delta_pos].from;
      }
    }
    const uint64_t firings_before = result.stats.rule_firings;
    const uint64_t new_before = result.stats.new_facts;
    const uint64_t dup_before = result.stats.duplicate_facts;
    const uint64_t probes_before = result.stats.join_probes;

    // Recursive backtracking join over the body in written (sip) order.
    std::vector<TermId> key;
    std::vector<TermId> head_tuple;
    auto fire_head = [&]() -> bool {
      head_tuple.clear();
      for (TermId arg : rule.head.args) {
        TermId ground = SubstituteGround(u, arg, subst);
        MAGIC_CHECK_MSG(ground != kInvalidTerm,
                        "non-ground head after body match");
        head_tuple.push_back(ground);
      }
      ++result.stats.rule_firings;
      Relation& rel = result.idb.at(rule.head.pred);
      if (rel.Insert(head_tuple)) {
        ++result.stats.new_facts;
        if (options_.track_provenance) {
          FactRef ref{rule.head.pred,
                      static_cast<uint32_t>(rel.size() - 1), false};
          result.provenance.emplace(ref,
                                    Justification{rule_index, match_trace});
        }
        if (control != nullptr && rule.head.pred == control->sink_pred &&
            control->on_fact && !control->on_fact(head_tuple)) {
          stop = StopReason::kSink;
          return false;
        }
      } else {
        ++result.stats.duplicate_facts;
      }
      // The budget covers both branches: a duplicate-heavy evaluation must
      // stop at max_facts too, not only after a new fact.
      if (result.stats.new_facts + result.stats.duplicate_facts >
          options_.max_facts) {
        return false;
      }
      return true;
    };

    auto join = [&](auto&& self, size_t i) -> bool {
      if (i == plan.body.size()) return fire_head();
      const Literal& lit = *plan.body[i].literal;
      const View& view = views[i];
      if (view.rel == nullptr || view.from >= view.to) return true;

      // Build the index key from arguments that are ground under subst.
      uint64_t mask = 0;
      key.clear();
      for (size_t a = 0; a < lit.args.size(); ++a) {
        TermId ground = SubstituteGround(u, lit.args[a], subst);
        if (ground != kInvalidTerm) {
          mask |= uint64_t{1} << a;
          key.push_back(ground);
        }
      }

      std::vector<uint32_t> rows;
      view.rel->Probe(mask, key, view.from, view.to, &rows);
      for (uint32_t row : rows) {
        ++result.stats.join_probes;
        if ((result.stats.join_probes & 0xFFF) == 0 && control_stop()) {
          return false;
        }
        size_t mark = subst.Mark();
        std::span<const TermId> tuple = view.rel->Row(row);
        bool matched = true;
        for (size_t a = 0; a < lit.args.size(); ++a) {
          if (mask & (uint64_t{1} << a)) continue;  // verified by the probe
          if (!MatchTerm(u, lit.args[a], tuple[a], &subst)) {
            matched = false;
            break;
          }
        }
        if (matched) {
          if (options_.track_provenance) {
            match_trace[i] = FactRef{lit.pred, row, !plan.body[i].idb};
          }
          if (!self(self, i + 1)) return false;
        }
        subst.UndoTo(mark);
      }
      return true;
    };
    const bool ok = join(join, 0);
    if (profile != nullptr) {
      profile->firings += result.stats.rule_firings - firings_before;
      profile->new_facts += result.stats.new_facts - new_before;
      profile->duplicate_facts +=
          result.stats.duplicate_facts - dup_before;
      profile->join_probes += result.stats.join_probes - probes_before;
    }
    return ok;
  };

  // Fixpoint loop.
  while (true) {
    if (control_stop()) break;
    if (result.stats.iterations >= options_.max_iterations) {
      budget_hit = true;
      break;
    }
    ++result.stats.iterations;
    uint64_t facts_before = result.stats.new_facts;
    bool ok = true;

    for (size_t p = 0; p < plans.size(); ++p) {
      const RulePlan& plan = plans[p];
      const int rule_index = static_cast<int>(p);
      if (!options_.seminaive) {
        ok = eval_rule(plan, -1, rule_index);
        if (!ok) break;
        continue;
      }
      if (plan.idb_positions.empty()) {
        // No derived body literal: fires with the EDB only; evaluate in the
        // first round only (nothing it reads ever changes).
        if (result.stats.iterations == 1) {
          ok = eval_rule(plan, -1, rule_index);
          if (!ok) break;
        }
        continue;
      }
      for (int delta_pos : plan.idb_positions) {
        // Skip delta positions with an empty delta.
        PredId pred = plan.body[delta_pos].literal->pred;
        if (prev_size.at(pred) == cur_size.at(pred)) continue;
        ok = eval_rule(plan, delta_pos, rule_index);
        if (!ok) break;
      }
      if (!ok) break;
    }

    if (!ok) {
      budget_hit = true;
      break;
    }

    // Advance watermarks: this round's insertions become the next deltas.
    bool any_new = result.stats.new_facts > facts_before;
    for (PredId pred : idb_preds) {
      prev_size[pred] = cur_size[pred];
      cur_size[pred] = result.idb.at(pred).size();
    }
    if (!any_new) break;
  }

  // An EvalControl stop takes precedence over the budget classification:
  // eval_rule also returns false for control stops, which would otherwise
  // read as budget_hit.
  result.stop_reason = stop;
  if (stop == StopReason::kDeadline) {
    result.status = Status::DeadlineExceeded(
        "evaluation deadline exceeded after " +
        std::to_string(result.stats.new_facts) + " facts, " +
        std::to_string(result.stats.iterations) + " iterations");
  } else if (stop == StopReason::kCancelled) {
    result.status = Status::Cancelled("evaluation cancelled");
  } else if (stop == StopReason::kNone && budget_hit) {
    result.status = Status::ResourceExhausted(
        "evaluation budget exhausted after " +
        std::to_string(result.stats.new_facts) + " facts, " +
        std::to_string(result.stats.iterations) + " iterations");
  }
  result.stats.seconds = watch.ElapsedSeconds();
  if (control != nullptr && control->trace != nullptr) {
    control->trace->Record(obs::Stage::kFixpoint, trace_start,
                           obs::Trace::NowNs());
  }
  return result;
}

}  // namespace magic
