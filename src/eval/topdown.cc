#include "eval/topdown.h"

#include "eval/matcher.h"
#include "util/check.h"
#include "util/stopwatch.h"

namespace magic {

std::vector<std::vector<TermId>> TopDownResult::QueryAnswers(
    const Universe& u, const AdornedProgram& adorned, PredId pred) const {
  return QueryAnswers(u, adorned.query, pred);
}

std::vector<std::vector<TermId>> TopDownResult::QueryAnswers(
    const Universe& u, const Query& instance, PredId pred) const {
  std::vector<std::vector<TermId>> out;
  auto it = answers.find(pred);
  if (it == answers.end()) return out;
  const Relation& rel = it->second;
  const Literal& goal = instance.goal;
  for (size_t row = 0; row < rel.size(); ++row) {
    std::span<const TermId> tuple = rel.Row(row);
    bool match = true;
    for (size_t a = 0; a < goal.args.size(); ++a) {
      if (u.terms().IsGround(goal.args[a]) && tuple[a] != goal.args[a]) {
        match = false;
        break;
      }
    }
    if (match) out.emplace_back(tuple.begin(), tuple.end());
  }
  return out;
}

TopDownResult TopDownEngine::Run(const AdornedProgram& adorned,
                                 const Database& edb,
                                 const EvalControl* control) const {
  return Run(adorned, adorned.query, edb, control);
}

TopDownResult TopDownEngine::Run(const AdornedProgram& adorned,
                                 const Query& instance, const Database& edb,
                                 const EvalControl* control) const {
  TopDownResult result;
  result.status = Status::OK();
  Stopwatch watch;
  const uint64_t trace_start =
      control != nullptr && control->trace != nullptr ? obs::Trace::NowNs()
                                                      : 0;
  const Universe& u = *adorned.program.universe();
  if (options_.rule_profile) {
    result.rule_profiles.resize(adorned.program.rules().size());
  }

  // Deadline/cancellation polling, shared with the bottom-up evaluator.
  StopReason stop = StopReason::kNone;
  uint64_t poll = 0;
  auto control_stop = [&]() -> bool {
    StopReason polled = PollEvalControl(control);
    if (polled == StopReason::kNone) return false;
    stop = polled;
    return true;
  };

  // Query and answer tables for every adorned (derived) predicate.
  std::vector<PredId> derived = adorned.program.HeadPredicates();
  for (PredId pred : derived) {
    const PredicateInfo& info = u.predicates().info(pred);
    result.queries.try_emplace(
        pred, static_cast<uint32_t>(info.adornment.bound_count()));
    result.answers.try_emplace(pred, info.arity);
  }
  auto is_derived = [&](PredId pred) {
    return result.answers.find(pred) != result.answers.end();
  };

  // Seed with the given query instance (the only per-instance input; the
  // adorned program itself is shared and immutable).
  {
    std::vector<TermId> seed = QueryBoundArgs(u, instance);
    result.queries.at(adorned.query_pred).Insert(seed);
  }

  uint64_t total = 1;
  bool budget_hit = false;
  Substitution subst;

  // Run-wide work counters; per-rule attribution takes deltas of these
  // around each solve() call (solve is per-rule, so the deltas are exact).
  uint64_t body_matches = 0;
  uint64_t answers_inserted = 0;
  uint64_t answer_duplicates = 0;
  uint64_t subqueries_inserted = 0;

  // Solves the body of `rule` from literal `i` under `subst`; on a complete
  // match, derives the head into the answer table. Returns false when a
  // budget is exhausted.
  auto solve = [&](auto&& self, const Rule& rule, size_t i,
                   bool* changed) -> bool {
    if (i == rule.body.size()) {
      std::vector<TermId> head_tuple;
      for (TermId arg : rule.head.args) {
        TermId ground = SubstituteGround(u, arg, subst);
        if (ground == kInvalidTerm) return true;  // non-ground head: skip
        head_tuple.push_back(ground);
      }
      ++body_matches;
      Relation& rel = result.answers.at(rule.head.pred);
      if (rel.Insert(head_tuple)) {
        ++answers_inserted;
        *changed = true;
        if (control != nullptr && rule.head.pred == control->sink_pred &&
            control->on_fact && !control->on_fact(head_tuple)) {
          stop = StopReason::kSink;
          return false;
        }
        if (++total > options_.max_facts) return false;
      } else {
        ++answer_duplicates;
      }
      return true;
    }
    const Literal& lit = rule.body[i];
    const Relation* rel = nullptr;
    if (is_derived(lit.pred)) {
      // Generate the subquery this sip strategy is obliged to ask
      // (condition (2) of Section 9), then read matching answers.
      const Adornment& a = u.predicates().info(lit.pred).adornment;
      std::vector<TermId> bound_tuple;
      for (size_t p = 0; p < lit.args.size(); ++p) {
        if (p < a.size() && a.bound(p)) {
          TermId ground = SubstituteGround(u, lit.args[p], subst);
          MAGIC_CHECK_MSG(ground != kInvalidTerm,
                          "sip order left a bound argument unbound");
          bound_tuple.push_back(ground);
        }
      }
      if (result.queries.at(lit.pred).Insert(bound_tuple)) {
        ++subqueries_inserted;
        *changed = true;
        if (++total > options_.max_facts) return false;
      }
      rel = &result.answers.at(lit.pred);
    } else {
      rel = edb.Find(lit.pred);
      if (rel == nullptr) return true;
    }

    uint64_t mask = 0;
    std::vector<TermId> key;
    for (size_t a = 0; a < lit.args.size(); ++a) {
      TermId ground = SubstituteGround(u, lit.args[a], subst);
      if (ground != kInvalidTerm) {
        mask |= uint64_t{1} << a;
        key.push_back(ground);
      }
    }
    std::vector<uint32_t> rows;
    rel->Probe(mask, key, 0, rel->size(), &rows);
    for (uint32_t row : rows) {
      if ((++poll & 0xFFF) == 0 && control_stop()) return false;
      size_t mark = subst.Mark();
      std::span<const TermId> tuple = rel->Row(row);
      bool matched = true;
      for (size_t a = 0; a < lit.args.size(); ++a) {
        if (mask & (uint64_t{1} << a)) continue;
        if (!MatchTerm(u, lit.args[a], tuple[a], &subst)) {
          matched = false;
          break;
        }
      }
      if (matched && !self(self, rule, i + 1, changed)) return false;
      subst.UndoTo(mark);
    }
    return true;
  };

  // Repeat passes until the query/answer tables stop growing (QSQR's outer
  // fixpoint handles recursion).
  bool changed = true;
  while (changed) {
    if (control_stop()) break;
    if (result.stats.passes >= options_.max_iterations) {
      budget_hit = true;
      break;
    }
    ++result.stats.passes;
    changed = false;
    bool ok = true;
    for (PredId pred : derived) {
      const Adornment& head_ad = u.predicates().info(pred).adornment;
      Relation& queries = result.queries.at(pred);
      for (size_t qrow = 0; qrow < queries.size() && ok; ++qrow) {
        // Copy: the relation may grow (and reallocate) during solving.
        std::vector<TermId> qtuple(queries.Row(qrow).begin(),
                                   queries.Row(qrow).end());
        for (int ri : adorned.program.RulesFor(pred)) {
          const Rule& rule = adorned.program.rules()[ri];
          subst.Clear();
          // Unify the head's bound arguments with the subquery constants.
          bool head_ok = true;
          size_t k = 0;
          for (size_t p = 0; p < rule.head.args.size(); ++p) {
            if (p < head_ad.size() && head_ad.bound(p)) {
              if (!MatchTerm(u, rule.head.args[p], qtuple[k++], &subst)) {
                head_ok = false;
                break;
              }
            }
          }
          if (!head_ok) continue;
          RuleProfile* profile = options_.rule_profile
                                     ? &result.rule_profiles[ri]
                                     : nullptr;
          const uint64_t matches_before = body_matches;
          const uint64_t answers_before = answers_inserted;
          const uint64_t dup_before = answer_duplicates;
          const uint64_t subqueries_before = subqueries_inserted;
          const uint64_t probes_before = poll;
          const bool solved = solve(solve, rule, 0, &changed);
          if (profile != nullptr) {
            ++profile->evals;
            profile->firings += body_matches - matches_before;
            profile->new_facts += answers_inserted - answers_before;
            profile->duplicate_facts += answer_duplicates - dup_before;
            profile->join_probes += poll - probes_before;
            profile->delta_rows += subqueries_inserted - subqueries_before;
          }
          if (!solved) {
            ok = false;
            break;
          }
        }
      }
      if (!ok) break;
    }
    if (!ok) {
      budget_hit = true;
      break;
    }
  }

  for (PredId pred : derived) {
    result.stats.queries += result.queries.at(pred).size();
    result.stats.answers += result.answers.at(pred).size();
  }
  result.stop_reason = stop;
  if (stop == StopReason::kDeadline) {
    result.status = Status::DeadlineExceeded(
        "top-down deadline exceeded after " + std::to_string(total) +
        " queries+facts");
  } else if (stop == StopReason::kCancelled) {
    result.status = Status::Cancelled("top-down evaluation cancelled");
  } else if (stop == StopReason::kNone && budget_hit) {
    result.status = Status::ResourceExhausted(
        "top-down budget exhausted after " + std::to_string(total) +
        " queries+facts");
  }
  result.stats.seconds = watch.ElapsedSeconds();
  if (control != nullptr && control->trace != nullptr) {
    control->trace->Record(obs::Stage::kFixpoint, trace_start,
                           obs::Trace::NowNs());
  }
  return result;
}

}  // namespace magic
