#ifndef MAGIC_EVAL_EVALUATOR_H_
#define MAGIC_EVAL_EVALUATOR_H_

#include <atomic>
#include <chrono>
#include <functional>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "ast/program.h"
#include "eval/provenance.h"
#include "obs/trace.h"
#include "storage/database.h"
#include "util/status.h"

namespace magic {

/// Options for bottom-up fixpoint evaluation.
struct EvalOptions {
  /// Semi-naive (delta-driven) vs naive (recompute everything each round).
  bool seminaive = true;
  /// Budgets that make divergent programs (counting over cyclic data, naive
  /// evaluation of non-range-restricted rules) observable instead of fatal.
  uint64_t max_facts = 10'000'000;
  uint64_t max_iterations = 1'000'000;
  /// Reject programs whose rules cannot produce ground heads.
  bool check_range_restriction = true;
  /// Record one derivation (rule + body facts) per derived fact, enabling
  /// ExplainFact to print the paper's derivation trees. Costs memory.
  bool track_provenance = false;
  /// Accumulate per-rule work counters (RuleProfile) into the result. On
  /// by default: the increments ride counters the fixpoint already
  /// maintains, so the marginal cost is an index into a small vector.
  bool rule_profile = true;
};

/// Why an evaluation stopped before reaching its natural fixpoint.
enum class StopReason {
  kNone,       // ran to fixpoint (or a budget; see the result's status)
  kSink,       // EvalControl::on_fact returned false (caller got enough)
  kDeadline,   // EvalControl::deadline passed
  kCancelled,  // EvalControl::cancel was set
};

/// Per-run stop conditions and the answer-sink hook. All members are
/// optional; a default-constructed EvalControl never stops anything. The
/// struct is borrowed for the duration of Run and must outlive it.
///
/// This is what makes resource-bounded serving sound: bottom-up evaluation
/// only ever derives facts that are true in the fixpoint, so stopping at an
/// arbitrary point yields a correct *prefix* of the answers (per-seed
/// independence of magic instances; Drabent, arXiv:1012.2299).
struct EvalControl {
  /// Predicate whose newly inserted facts are streamed to `on_fact`
  /// (typically the rewritten program's answer predicate).
  PredId sink_pred = kInvalidPred;
  /// Called once per new (deduplicated) fact of `sink_pred`, with the full
  /// tuple, in derivation order. Return false to stop evaluation (the
  /// result's stop_reason becomes kSink).
  std::function<bool(std::span<const TermId>)> on_fact;
  /// Absolute wall-clock deadline; polled once per fixpoint round and every
  /// few thousand join probes.
  std::optional<std::chrono::steady_clock::time_point> deadline;
  /// Cooperative cancellation flag, polled alongside the deadline. Owned by
  /// the caller; may be set from any thread.
  const std::atomic<bool>* cancel = nullptr;
  /// Observability hook: when non-null, the engine records its fixpoint
  /// span (Stage::kFixpoint) here. Borrowed; single-request ownership —
  /// see obs/trace.h for the (lack of a) synchronization contract.
  obs::Trace* trace = nullptr;
};

/// Polls `control`'s cancellation flag and deadline (in that order, so a
/// cancelled request reports kCancelled even when its deadline has also
/// passed). Returns kNone when evaluation may continue. Shared by the
/// bottom-up and top-down engines.
StopReason PollEvalControl(const EvalControl* control);

/// Work counters for one evaluation. `join_probes` counts candidate-tuple
/// match attempts and is the paper's proxy for "duplicated work" when
/// comparing GMS against GSMS (Section 5).
struct EvalStats {
  uint64_t iterations = 0;
  uint64_t rule_firings = 0;     // full body matches (incl. duplicates)
  uint64_t new_facts = 0;
  uint64_t duplicate_facts = 0;
  uint64_t join_probes = 0;
  double seconds = 0.0;
};

/// Per-rule slice of the fixpoint's work, indexed by the rule's position
/// in the evaluated program. The same shape serves both engines: for
/// bottom-up, `evals` counts (rule, delta-position) evaluations and
/// `delta_rows` sums the delta-window sizes those evaluations consumed;
/// for top-down, `evals` counts rule attempts against pending subqueries
/// and `delta_rows` counts the subqueries the rule generated. This is the
/// per-rule evidence the magic-sets literature keeps asking for: which
/// rewritten rules pay for themselves on a given workload.
struct RuleProfile {
  uint64_t evals = 0;
  uint64_t firings = 0;
  uint64_t new_facts = 0;
  uint64_t duplicate_facts = 0;
  uint64_t join_probes = 0;
  uint64_t delta_rows = 0;
};

/// Result of a bottom-up evaluation: the derived relations (IDB) and stats.
/// `status` is ResourceExhausted when a budget was hit; the partial IDB is
/// still returned so benches can report divergence behaviour.
struct EvalResult {
  Status status;
  std::unordered_map<PredId, Relation> idb;
  EvalStats stats;
  /// Set when an EvalControl condition stopped the run early; the partial
  /// IDB is a sound prefix of the fixpoint.
  StopReason stop_reason = StopReason::kNone;
  /// Populated when EvalOptions::track_provenance is set.
  ProvenanceMap provenance;
  /// Per-rule work profile, indexed like the program's rule list.
  /// Populated when EvalOptions::rule_profile is set (the default).
  std::vector<RuleProfile> rule_profiles;

  size_t FactCount(PredId pred) const {
    auto it = idb.find(pred);
    return it == idb.end() ? 0 : it->second.size();
  }
  size_t TotalFacts() const {
    size_t total = 0;
    for (const auto& [pred, rel] : idb) total += rel.size();
    return total;
  }
};

struct JoinProgram;

/// Bottom-up evaluation (paper, Section 1.1): start from the database and
/// empty derived predicates, repeatedly apply all rules until fixpoint.
///
/// Derived predicates are the program's head predicates plus the predicates
/// of `seeds` (the magic/counting seed facts produced from the query).
/// Everything else reads from `edb`.
///
/// Two implementations share the exact same semantics (delta windows, stop
/// conditions, budgets, profiles): the compiled path (eval/join_program.h)
/// runs rules as slot-addressed JoinPrograms with allocation-free joins,
/// and the generic interpreter remains as the reference implementation and
/// the provenance path. Run() picks the compiled path unless the run needs
/// provenance; callers holding a pre-compiled JoinProgram (CompiledPlan)
/// use the JoinProgram overload and skip per-run compilation entirely.
class Evaluator {
 public:
  explicit Evaluator(EvalOptions options = {}) : options_(options) {}

  /// `control`, when non-null, supplies per-run stop conditions (answer
  /// sink, deadline, cancellation) checked during the fixpoint. Compiles
  /// the program's JoinProgram on the fly (routing to RunInterpreted when
  /// options track provenance).
  EvalResult Run(const Program& program, const Database& edb,
                 const std::vector<Fact>& seeds = {},
                 const EvalControl* control = nullptr) const;

  /// Runs a pre-compiled JoinProgram (see CompiledPlan, which compiles one
  /// per bottom-up plan at Prepare time). `u` must be the universe the
  /// program was compiled against.
  EvalResult Run(const JoinProgram& join_program, const Universe& u,
                 const Database& edb, const std::vector<Fact>& seeds = {},
                 const EvalControl* control = nullptr) const;

  /// The generic interpreter: the differential-test reference and the only
  /// path that records provenance (track_provenance).
  EvalResult RunInterpreted(const Program& program, const Database& edb,
                            const std::vector<Fact>& seeds = {},
                            const EvalControl* control = nullptr) const;

 private:
  EvalOptions options_;
};

}  // namespace magic

#endif  // MAGIC_EVAL_EVALUATOR_H_
