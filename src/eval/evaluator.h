#ifndef MAGIC_EVAL_EVALUATOR_H_
#define MAGIC_EVAL_EVALUATOR_H_

#include <unordered_map>
#include <vector>

#include "ast/program.h"
#include "eval/provenance.h"
#include "storage/database.h"
#include "util/status.h"

namespace magic {

/// Options for bottom-up fixpoint evaluation.
struct EvalOptions {
  /// Semi-naive (delta-driven) vs naive (recompute everything each round).
  bool seminaive = true;
  /// Budgets that make divergent programs (counting over cyclic data, naive
  /// evaluation of non-range-restricted rules) observable instead of fatal.
  uint64_t max_facts = 10'000'000;
  uint64_t max_iterations = 1'000'000;
  /// Reject programs whose rules cannot produce ground heads.
  bool check_range_restriction = true;
  /// Record one derivation (rule + body facts) per derived fact, enabling
  /// ExplainFact to print the paper's derivation trees. Costs memory.
  bool track_provenance = false;
};

/// Work counters for one evaluation. `join_probes` counts candidate-tuple
/// match attempts and is the paper's proxy for "duplicated work" when
/// comparing GMS against GSMS (Section 5).
struct EvalStats {
  uint64_t iterations = 0;
  uint64_t rule_firings = 0;     // full body matches (incl. duplicates)
  uint64_t new_facts = 0;
  uint64_t duplicate_facts = 0;
  uint64_t join_probes = 0;
  double seconds = 0.0;
};

/// Result of a bottom-up evaluation: the derived relations (IDB) and stats.
/// `status` is ResourceExhausted when a budget was hit; the partial IDB is
/// still returned so benches can report divergence behaviour.
struct EvalResult {
  Status status;
  std::unordered_map<PredId, Relation> idb;
  EvalStats stats;
  /// Populated when EvalOptions::track_provenance is set.
  ProvenanceMap provenance;

  size_t FactCount(PredId pred) const {
    auto it = idb.find(pred);
    return it == idb.end() ? 0 : it->second.size();
  }
  size_t TotalFacts() const {
    size_t total = 0;
    for (const auto& [pred, rel] : idb) total += rel.size();
    return total;
  }
};

/// Bottom-up evaluation (paper, Section 1.1): start from the database and
/// empty derived predicates, repeatedly apply all rules until fixpoint.
///
/// Derived predicates are the program's head predicates plus the predicates
/// of `seeds` (the magic/counting seed facts produced from the query).
/// Everything else reads from `edb`.
class Evaluator {
 public:
  explicit Evaluator(EvalOptions options = {}) : options_(options) {}

  EvalResult Run(const Program& program, const Database& edb,
                 const std::vector<Fact>& seeds = {}) const;

 private:
  EvalOptions options_;
};

}  // namespace magic

#endif  // MAGIC_EVAL_EVALUATOR_H_
