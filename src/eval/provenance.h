#ifndef MAGIC_EVAL_PROVENANCE_H_
#define MAGIC_EVAL_PROVENANCE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "ast/program.h"
#include "util/hash.h"

namespace magic {

/// Reference to one fact: a row of either a derived relation (edb == false)
/// or a database relation (edb == true).
struct FactRef {
  PredId pred = kInvalidPred;
  uint32_t row = 0;
  bool edb = false;

  bool operator==(const FactRef&) const = default;
};

struct FactRefHash {
  size_t operator()(const FactRef& ref) const {
    return static_cast<size_t>(
        HashCombine(HashCombine(ref.pred, ref.row), ref.edb ? 1 : 0));
  }
};

/// One step of a derivation tree (paper, Section 1.1): the fact at an
/// internal node is produced by `rule` from the facts labelling its
/// children. Base facts are leaves (trees of height one).
struct Justification {
  int rule = -1;
  std::vector<FactRef> body;
};

/// Derivation record for an evaluation run: the first justification found
/// for each derived fact. Populated when EvalOptions::track_provenance is
/// set; empty otherwise.
using ProvenanceMap = std::unordered_map<FactRef, Justification, FactRefHash>;

}  // namespace magic

#endif  // MAGIC_EVAL_PROVENANCE_H_
