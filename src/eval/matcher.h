#ifndef MAGIC_EVAL_MATCHER_H_
#define MAGIC_EVAL_MATCHER_H_

#include <unordered_map>
#include <vector>

#include "ast/universe.h"

namespace magic {

/// Variable bindings with an undo trail, used during backtracking joins.
/// Bindings always map a variable symbol to a ground term id.
class Substitution {
 public:
  /// Returns the binding of `var`, or kInvalidTerm if unbound.
  TermId Lookup(SymbolId var) const {
    auto it = bindings_.find(var);
    return it == bindings_.end() ? kInvalidTerm : it->second;
  }

  void Bind(SymbolId var, TermId ground) {
    bindings_.emplace(var, ground);
    trail_.push_back(var);
  }

  size_t Mark() const { return trail_.size(); }

  void UndoTo(size_t mark) {
    while (trail_.size() > mark) {
      bindings_.erase(trail_.back());
      trail_.pop_back();
    }
  }

  void Clear() {
    bindings_.clear();
    trail_.clear();
  }

 private:
  std::unordered_map<SymbolId, TermId> bindings_;
  std::vector<SymbolId> trail_;
};

/// One-way structural match of `pattern` against the ground term `ground`,
/// extending `subst` (bindings made are recorded on its trail, so callers
/// roll back on failure with UndoTo).
///
/// Affine patterns mul*V+add match an integer value g iff g-add is a
/// non-negative multiple of mul consistent with V's binding; an unbound V is
/// bound to (g-add)/mul. This is the inversion that lets the evaluator run
/// the counting method's index arithmetic "backwards" (the paper's h/t
/// notation in modified rules).
///
/// Successful matches may intern new integer terms; that goes through the
/// internally synchronized TermArena, so `u` is const — evaluation never
/// needs a mutable Universe.
bool MatchTerm(const Universe& u, TermId pattern, TermId ground,
               Substitution* subst);

/// Applies `subst` to `pattern` and returns a fully ground term, or
/// kInvalidTerm if some variable is unbound (or an affine expression is
/// applied to a non-integer binding).
TermId SubstituteGround(const Universe& u, TermId pattern,
                        const Substitution& subst);

/// Slot-addressed variable bindings for the compiled join path
/// (JoinProgram): a rule's variables are numbered into dense slots at
/// compile time, so the binding store is a flat TermId array (kInvalidTerm
/// = unbound) and the undo trail is a vector of slot numbers — no hashing
/// anywhere on the per-row path. `slots` maps variable symbols to slots
/// and is only consulted by the generic compound/affine fallback
/// (MatchTermSlots / SubstituteGroundSlots); the compiled fast-path ops
/// carry their slot numbers directly.
struct SlotFrame {
  TermId* frame = nullptr;                            // slot -> binding
  const std::unordered_map<SymbolId, int>* slots = nullptr;
  std::vector<int>* trail = nullptr;                  // slots bound, in order
};

/// MatchTerm over a SlotFrame: one-way structural match of `pattern`
/// against ground `ground`, binding slots through `f` (bound slots are
/// pushed on the trail so callers roll back by popping to a mark and
/// resetting frame entries to kInvalidTerm). Same affine-inversion
/// semantics as MatchTerm.
bool MatchTermSlots(const Universe& u, TermId pattern, TermId ground,
                    const SlotFrame& f);

/// SubstituteGround over a SlotFrame: returns the fully ground instance of
/// `pattern` under the frame, or kInvalidTerm if some variable is unbound
/// (or an affine expression is applied to a non-integer binding).
TermId SubstituteGroundSlots(const Universe& u, TermId pattern,
                             const SlotFrame& f);

}  // namespace magic

#endif  // MAGIC_EVAL_MATCHER_H_
