#ifndef MAGIC_EVAL_MATCHER_H_
#define MAGIC_EVAL_MATCHER_H_

#include <unordered_map>
#include <vector>

#include "ast/universe.h"

namespace magic {

/// Variable bindings with an undo trail, used during backtracking joins.
/// Bindings always map a variable symbol to a ground term id.
class Substitution {
 public:
  /// Returns the binding of `var`, or kInvalidTerm if unbound.
  TermId Lookup(SymbolId var) const {
    auto it = bindings_.find(var);
    return it == bindings_.end() ? kInvalidTerm : it->second;
  }

  void Bind(SymbolId var, TermId ground) {
    bindings_.emplace(var, ground);
    trail_.push_back(var);
  }

  size_t Mark() const { return trail_.size(); }

  void UndoTo(size_t mark) {
    while (trail_.size() > mark) {
      bindings_.erase(trail_.back());
      trail_.pop_back();
    }
  }

  void Clear() {
    bindings_.clear();
    trail_.clear();
  }

 private:
  std::unordered_map<SymbolId, TermId> bindings_;
  std::vector<SymbolId> trail_;
};

/// One-way structural match of `pattern` against the ground term `ground`,
/// extending `subst` (bindings made are recorded on its trail, so callers
/// roll back on failure with UndoTo).
///
/// Affine patterns mul*V+add match an integer value g iff g-add is a
/// non-negative multiple of mul consistent with V's binding; an unbound V is
/// bound to (g-add)/mul. This is the inversion that lets the evaluator run
/// the counting method's index arithmetic "backwards" (the paper's h/t
/// notation in modified rules).
///
/// Successful matches may intern new integer terms; that goes through the
/// internally synchronized TermArena, so `u` is const — evaluation never
/// needs a mutable Universe.
bool MatchTerm(const Universe& u, TermId pattern, TermId ground,
               Substitution* subst);

/// Applies `subst` to `pattern` and returns a fully ground term, or
/// kInvalidTerm if some variable is unbound (or an affine expression is
/// applied to a non-integer binding).
TermId SubstituteGround(const Universe& u, TermId pattern,
                        const Substitution& subst);

}  // namespace magic

#endif  // MAGIC_EVAL_MATCHER_H_
