#ifndef MAGIC_EVAL_EXPLAIN_H_
#define MAGIC_EVAL_EXPLAIN_H_

#include <string>

#include "eval/evaluator.h"

namespace magic {

/// Locates a derived or base fact and returns a reference to it, or nullopt
/// if the tuple was not derived / is not in the database.
std::optional<FactRef> FindFact(const EvalResult& result, const Database& edb,
                                PredId pred,
                                const std::vector<TermId>& tuple);

/// Renders the derivation tree of `fact` (paper, Section 1.1: root labelled
/// by the fact and the rule that generated it, children the body facts,
/// leaves base facts). Requires the evaluation to have run with
/// EvalOptions::track_provenance. Depth is clamped to `max_depth`.
std::string ExplainFact(const Program& program, const Database& edb,
                        const EvalResult& result, const FactRef& fact,
                        int max_depth = 32);

}  // namespace magic

#endif  // MAGIC_EVAL_EXPLAIN_H_
