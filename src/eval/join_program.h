#ifndef MAGIC_EVAL_JOIN_PROGRAM_H_
#define MAGIC_EVAL_JOIN_PROGRAM_H_

#include <span>
#include <unordered_map>
#include <vector>

#include "ast/program.h"
#include "eval/evaluator.h"
#include "storage/database.h"

namespace magic {

/// A Prepare-time compilation of a Program's rules into slot-addressed
/// join programs, so the fixpoint hot loop does none of the per-row work
/// the generic interpreter re-derives per candidate tuple:
///
///   - every rule's variables are numbered into dense slots, so bindings
///     live in a flat TermId frame (kInvalidTerm = unbound) instead of a
///     hash-map Substitution;
///   - every body-literal argument is classified ONCE into an ArgStep —
///     probe-key part (constant / statically-bound slot / ground-able
///     compound) or per-row action (bind slot / check repeated slot /
///     generic structural match) — instead of SubstituteGround+MatchTerm
///     per argument per row;
///   - predicates are compacted: IDB relations and semi-naive watermarks
///     become dense arrays indexed by `dense`, EDB relations resolve once
///     per run into a flat handle table, so the loop never touches an
///     unordered_map.
///
/// Classification is static because bottom-up join order is the written
/// body order and a matched literal grounds all of its variables: at
/// literal i, exactly the variables of literals 0..i-1 are bound. The
/// compiled programs preserve the interpreter's semantics exactly (same
/// probes, same delta windows, same stop conditions); the differential
/// property test holds the two paths equal on randomized programs.
///
/// A JoinProgram is immutable after Compile and borrows nothing from the
/// Program it was compiled from except term/predicate ids, which resolve
/// through the Universe passed to RunJoinProgram — it can therefore hang
/// off a CompiledPlan and serve concurrent evaluations.

/// How one argument position participates in the join.
enum class ArgOp : uint8_t {
  kConst,      // ground term: contributes its id to the probe key
  kBoundSlot,  // variable statically bound by an earlier literal: key part
  kSubstKey,   // compound/affine over statically-bound variables: grounded
               // via SubstituteGroundSlots at literal entry, key part
  kBindSlot,   // first occurrence of a variable: bind slot from the column
  kCheckSlot,  // repeat of a variable first bound earlier in THIS literal
  kMatch,      // compound/affine with an unbound variable: generic
               // MatchTermSlots fallback (binds through the trail)
};

struct ArgStep {
  ArgOp op;
  uint8_t col = 0;             // argument/column position in the literal
  int slot = -1;               // kBoundSlot/kBindSlot/kCheckSlot
  TermId term = kInvalidTerm;  // kConst/kSubstKey/kMatch: the pattern
};

/// One body literal, compiled: a static probe mask, the steps that build
/// the probe key (in column order), and the steps applied per candidate
/// row for the unmasked columns (in column order).
struct LiteralStep {
  PredId pred = kInvalidPred;
  int dense = -1;  // dense IDB index, or -1 for EDB literals
  int edb = -1;    // dense EDB handle index, or -1 for IDB literals
  bool is_idb = false;
  uint64_t mask = 0;
  std::vector<ArgStep> key_steps;
  std::vector<ArgStep> post_steps;
};

struct RuleProgram {
  PredId head_pred = kInvalidPred;
  int head_dense = -1;
  /// Head tuple construction, one step per head argument (kConst,
  /// kBoundSlot, or kSubstKey for compound/affine heads).
  std::vector<ArgStep> head_steps;
  std::vector<LiteralStep> body;
  std::vector<int> idb_positions;  // body positions reading IDB relations
  int num_slots = 0;
  /// Variable -> slot, consulted only by the kMatch/kSubstKey fallbacks
  /// (the fast-path steps carry their slot numbers directly).
  std::unordered_map<SymbolId, int> slots;
};

struct JoinProgram {
  std::vector<RuleProgram> rules;
  /// Dense IDB index -> predicate (head predicates, then extra seed
  /// predicates); `dense` is the inverse.
  std::vector<PredId> idb_preds;
  std::unordered_map<PredId, int> dense;
  /// Dense EDB handle index -> predicate (resolved against the Database
  /// once per run).
  std::vector<PredId> edb_preds;
  /// Range-restriction verdict, computed once here so the runner's check
  /// is a Status read (first offending rule wins, like the interpreter).
  Status range_status;

  /// Compiles `program`. `extra_idb_preds` are predicates that will
  /// receive seed facts at run time without being head predicates (magic
  /// seeds of non-recursive queries): body literals reading them must be
  /// classified IDB, exactly as the interpreter classifies seed
  /// predicates.
  static JoinProgram Compile(const Program& program,
                             std::span<const PredId> extra_idb_preds = {});
};

/// The range-restriction check both evaluators share: every head variable
/// (including variables under affine terms) must occur in the body.
Status CheckRangeRestrictedRule(const Universe& u, const Rule& rule,
                                int rule_index);

/// Runs `jp` to fixpoint over `edb` + `seeds` with the interpreter's exact
/// semantics (delta windows, stop conditions, budgets, RuleProfile
/// counters). Steady-state joins are allocation-free: bindings live in a
/// flat frame, probe keys and candidate-row scratch are per-level buffers
/// reused across calls, and non-self literals iterate index buckets
/// through Relation::Cursor without materializing row vectors.
/// Provenance is not supported here (Evaluator::Run routes
/// track_provenance to the interpreter).
EvalResult RunJoinProgram(const JoinProgram& jp, const Universe& u,
                          const Database& edb,
                          const std::vector<Fact>& seeds,
                          const EvalOptions& options,
                          const EvalControl* control);

}  // namespace magic

#endif  // MAGIC_EVAL_JOIN_PROGRAM_H_
