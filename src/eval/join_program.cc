#include "eval/join_program.h"

#include <algorithm>

#include "eval/matcher.h"
#include "storage/relation.h"
#include "util/check.h"
#include "util/stopwatch.h"

namespace magic {

Status CheckRangeRestrictedRule(const Universe& u, const Rule& rule,
                                int rule_index) {
  std::vector<SymbolId> body_vars;
  for (const Literal& lit : rule.body) {
    AppendLiteralVariables(u, lit, &body_vars);
  }
  std::vector<SymbolId> head_vars = LiteralVariables(u, rule.head);
  for (SymbolId v : head_vars) {
    if (std::find(body_vars.begin(), body_vars.end(), v) == body_vars.end()) {
      return Status::InvalidArgument(
          "rule " + std::to_string(rule_index) +
          " is not range restricted (head variable '" + u.symbols().Name(v) +
          "' unbound); bottom-up evaluation would be unsafe");
    }
  }
  return Status::OK();
}

namespace {

/// Collects the variables of one term (descending through compound and
/// affine structure), preserving first-occurrence order.
void AppendTermVariables(const Universe& u, TermId term,
                         std::vector<SymbolId>* out) {
  const TermData& t = u.terms().Get(term);
  if (t.ground) return;
  switch (t.kind) {
    case TermKind::kVariable:
      out->push_back(t.symbol);
      return;
    case TermKind::kCompound:
    case TermKind::kAffine: {
      // Get() references may not survive recursion in general; reads are
      // safe here (compile time never interns), but copy for uniformity.
      std::vector<TermId> children = t.children;
      for (TermId child : children) AppendTermVariables(u, child, out);
      return;
    }
    default:
      return;
  }
}

/// Per-slot boundness during classification: promoted kThisLiteral ->
/// kEarlier after each literal (a matched literal grounds its variables).
enum class Bound : uint8_t { kNo, kEarlier, kThisLiteral };

}  // namespace

JoinProgram JoinProgram::Compile(const Program& program,
                                 std::span<const PredId> extra_idb_preds) {
  const Universe& u = program.u();
  JoinProgram jp;
  for (PredId pred : program.HeadPredicates()) {
    if (jp.dense.try_emplace(pred, static_cast<int>(jp.idb_preds.size()))
            .second) {
      jp.idb_preds.push_back(pred);
    }
  }
  for (PredId pred : extra_idb_preds) {
    if (jp.dense.try_emplace(pred, static_cast<int>(jp.idb_preds.size()))
            .second) {
      jp.idb_preds.push_back(pred);
    }
  }

  jp.range_status = Status::OK();
  for (size_t i = 0; i < program.rules().size(); ++i) {
    Status st =
        CheckRangeRestrictedRule(u, program.rules()[i], static_cast<int>(i));
    if (!st.ok()) {
      jp.range_status = st;
      break;
    }
  }

  std::unordered_map<PredId, int> edb_dense;
  jp.rules.reserve(program.rules().size());
  for (const Rule& rule : program.rules()) {
    RuleProgram rp;
    rp.head_pred = rule.head.pred;
    rp.head_dense = jp.dense.at(rule.head.pred);

    std::vector<Bound> bound;  // indexed by slot
    auto slot_of = [&](SymbolId var) -> int {
      auto [it, inserted] = rp.slots.try_emplace(var, rp.num_slots);
      if (inserted) {
        ++rp.num_slots;
        bound.push_back(Bound::kNo);
      }
      return it->second;
    };

    for (size_t i = 0; i < rule.body.size(); ++i) {
      const Literal& lit = rule.body[i];
      LiteralStep st;
      st.pred = lit.pred;
      auto dit = jp.dense.find(lit.pred);
      if (dit != jp.dense.end()) {
        st.is_idb = true;
        st.dense = dit->second;
        rp.idb_positions.push_back(static_cast<int>(i));
      } else {
        auto [eit, inserted] =
            edb_dense.try_emplace(lit.pred, static_cast<int>(jp.edb_preds.size()));
        if (inserted) jp.edb_preds.push_back(lit.pred);
        st.edb = eit->second;
      }

      for (size_t a = 0; a < lit.args.size(); ++a) {
        const TermId arg = lit.args[a];
        const TermData& t = u.terms().Get(arg);
        ArgStep step;
        step.col = static_cast<uint8_t>(a);
        if (t.ground) {
          step.op = ArgOp::kConst;
          step.term = arg;
          st.mask |= uint64_t{1} << a;
          st.key_steps.push_back(step);
        } else if (t.kind == TermKind::kVariable) {
          const int slot = slot_of(t.symbol);
          step.slot = slot;
          if (bound[slot] == Bound::kEarlier) {
            step.op = ArgOp::kBoundSlot;
            st.mask |= uint64_t{1} << a;
            st.key_steps.push_back(step);
          } else if (bound[slot] == Bound::kThisLiteral) {
            step.op = ArgOp::kCheckSlot;
            st.post_steps.push_back(step);
          } else {
            step.op = ArgOp::kBindSlot;
            bound[slot] = Bound::kThisLiteral;
            st.post_steps.push_back(step);
          }
        } else {  // compound / affine
          std::vector<SymbolId> vars;
          AppendTermVariables(u, arg, &vars);
          bool all_earlier = true;
          for (SymbolId v : vars) {
            const int slot = slot_of(v);
            if (bound[slot] != Bound::kEarlier) all_earlier = false;
          }
          step.term = arg;
          if (all_earlier) {
            // Ground at literal entry (the interpreter's dynamic mask
            // reaches the same verdict every row; here it is static).
            step.op = ArgOp::kSubstKey;
            st.mask |= uint64_t{1} << a;
            st.key_steps.push_back(step);
          } else {
            step.op = ArgOp::kMatch;
            st.post_steps.push_back(step);
            for (SymbolId v : vars) {
              const int slot = rp.slots.at(v);
              if (bound[slot] == Bound::kNo) bound[slot] = Bound::kThisLiteral;
            }
          }
        }
      }
      // The literal matched => all of its variables are ground.
      for (Bound& b : bound) {
        if (b == Bound::kThisLiteral) b = Bound::kEarlier;
      }
      rp.body.push_back(std::move(st));
    }

    rp.head_steps.reserve(rule.head.args.size());
    for (size_t a = 0; a < rule.head.args.size(); ++a) {
      const TermId arg = rule.head.args[a];
      const TermData& t = u.terms().Get(arg);
      ArgStep step;
      step.col = static_cast<uint8_t>(a);
      if (t.ground) {
        step.op = ArgOp::kConst;
        step.term = arg;
      } else if (t.kind == TermKind::kVariable) {
        // slot_of also covers head-only variables of non-range-restricted
        // rules: their slot stays unbound and the runner's ground check
        // fires, matching the interpreter.
        step.op = ArgOp::kBoundSlot;
        step.slot = slot_of(t.symbol);
      } else {
        step.op = ArgOp::kSubstKey;
        step.term = arg;
        std::vector<SymbolId> vars;
        AppendTermVariables(u, arg, &vars);
        for (SymbolId v : vars) slot_of(v);
      }
      rp.head_steps.push_back(step);
    }

    jp.rules.push_back(std::move(rp));
  }
  return jp;
}

EvalResult RunJoinProgram(const JoinProgram& jp, const Universe& u,
                          const Database& edb,
                          const std::vector<Fact>& seeds,
                          const EvalOptions& options,
                          const EvalControl* control) {
  EvalResult result;
  result.status = Status::OK();
  Stopwatch watch;
  const uint64_t trace_start =
      control != nullptr && control->trace != nullptr ? obs::Trace::NowNs()
                                                      : 0;

  StopReason stop = StopReason::kNone;
  auto control_stop = [&]() -> bool {
    StopReason polled = PollEvalControl(control);
    if (polled == StopReason::kNone) return false;
    stop = polled;
    return true;
  };

  if (options.check_range_restriction && !jp.range_status.ok()) {
    result.status = jp.range_status;
    return result;
  }

  for (PredId pred : jp.idb_preds) {
    result.idb.try_emplace(pred, u.predicates().info(pred).arity);
  }
  // Load seeds. A seed predicate outside the compiled dense set still gets
  // a relation (callers pass seed predicates to Compile, so no compiled
  // literal reads it — it only contributes to the result's fact counts).
  for (const Fact& seed : seeds) {
    auto it = result.idb.find(seed.pred);
    if (it == result.idb.end()) {
      it = result.idb
               .try_emplace(seed.pred, u.predicates().info(seed.pred).arity)
               .first;
    }
    for (TermId arg : seed.args) {
      MAGIC_CHECK_MSG(u.terms().IsGround(arg), "seed facts must be ground");
    }
    if (it->second.Insert(seed.args)) ++result.stats.new_facts;
  }

  // Dense run-time tables: relation handles and semi-naive watermarks,
  // indexed by the compiled predicate index — the fixpoint loop never
  // touches an unordered_map. (Map node stability keeps the pointers valid
  // across the extra try_emplaces above.)
  const size_t npreds = jp.idb_preds.size();
  std::vector<Relation*> idb_rel(npreds);
  std::vector<size_t> prev(npreds, 0);
  std::vector<size_t> cur(npreds, 0);
  for (size_t i = 0; i < npreds; ++i) {
    idb_rel[i] = &result.idb.at(jp.idb_preds[i]);
    cur[i] = idb_rel[i]->size();  // seeds are round-0 deltas
  }
  std::vector<const Relation*> edb_rel(jp.edb_preds.size());
  for (size_t i = 0; i < jp.edb_preds.size(); ++i) {
    edb_rel[i] = edb.Find(jp.edb_preds[i]);
  }

  if (options.rule_profile) result.rule_profiles.resize(jp.rules.size());

  // Shared scratch, allocated once per run and reused across every rule
  // evaluation: the steady-state join loop performs no heap allocation.
  size_t max_slots = 0;
  size_t max_body = 0;
  for (const RuleProgram& rp : jp.rules) {
    max_slots = std::max(max_slots, static_cast<size_t>(rp.num_slots));
    max_body = std::max(max_body, rp.body.size());
  }
  std::vector<TermId> frame(max_slots, kInvalidTerm);
  std::vector<int> trail;
  std::vector<TermId> head_tuple;
  struct LevelScratch {
    const Relation* rel = nullptr;
    size_t from = 0;
    size_t to = 0;
    std::vector<TermId> key;      // probe key, rebuilt per literal entry
    std::vector<uint32_t> rows;   // copy-out rows for self literals
  };
  std::vector<LevelScratch> levels(max_body);

  bool budget_hit = false;

  auto eval_rule = [&](const RuleProgram& rp, int delta_pos,
                       int rule_index) -> bool {
    std::fill(frame.begin(), frame.begin() + rp.num_slots, kInvalidTerm);
    trail.clear();
    SlotFrame sf{frame.data(), &rp.slots, &trail};

    // Resolve, per literal, the relation and visible row window.
    for (size_t i = 0; i < rp.body.size(); ++i) {
      const LiteralStep& st = rp.body[i];
      LevelScratch& level = levels[i];
      if (st.is_idb) {
        level.rel = idb_rel[st.dense];
        const int pos = static_cast<int>(i);
        if (!options.seminaive || delta_pos < 0) {
          level.from = 0;
          level.to = cur[st.dense];
        } else if (pos == delta_pos) {
          level.from = prev[st.dense];
          level.to = cur[st.dense];
        } else if (pos < delta_pos) {
          level.from = 0;
          level.to = cur[st.dense];
        } else {
          level.from = 0;
          level.to = prev[st.dense];
        }
      } else {
        level.rel = edb_rel[st.edb];
        level.from = 0;
        level.to = level.rel == nullptr ? 0 : level.rel->size();
      }
    }

    // Per-rule profile: deltas of the run-wide counters across this
    // evaluation, so the profile costs nothing inside the join itself.
    RuleProfile* profile = options.rule_profile
                               ? &result.rule_profiles[rule_index]
                               : nullptr;
    if (profile != nullptr) {
      ++profile->evals;
      if (delta_pos >= 0) {
        profile->delta_rows += levels[delta_pos].to - levels[delta_pos].from;
      }
    }
    const uint64_t firings_before = result.stats.rule_firings;
    const uint64_t new_before = result.stats.new_facts;
    const uint64_t dup_before = result.stats.duplicate_facts;
    const uint64_t probes_before = result.stats.join_probes;

    auto fire_head = [&]() -> bool {
      head_tuple.clear();
      for (const ArgStep& hs : rp.head_steps) {
        TermId ground;
        switch (hs.op) {
          case ArgOp::kConst:
            ground = hs.term;
            break;
          case ArgOp::kBoundSlot:
            ground = frame[hs.slot];
            break;
          default:
            ground = SubstituteGroundSlots(u, hs.term, sf);
            break;
        }
        MAGIC_CHECK_MSG(ground != kInvalidTerm,
                        "non-ground head after body match");
        head_tuple.push_back(ground);
      }
      ++result.stats.rule_firings;
      Relation& rel = *idb_rel[rp.head_dense];
      if (rel.Insert(head_tuple)) {
        ++result.stats.new_facts;
        if (control != nullptr && rp.head_pred == control->sink_pred &&
            control->on_fact && !control->on_fact(head_tuple)) {
          stop = StopReason::kSink;
          return false;
        }
      } else {
        ++result.stats.duplicate_facts;
      }
      // The budget covers both branches: a duplicate-heavy evaluation must
      // stop at max_facts too, not only after a new fact.
      if (result.stats.new_facts + result.stats.duplicate_facts >
          options.max_facts) {
        return false;
      }
      return true;
    };

    auto join = [&](auto&& self, size_t i) -> bool {
      if (i == rp.body.size()) return fire_head();
      const LiteralStep& st = rp.body[i];
      LevelScratch& level = levels[i];
      if (level.rel == nullptr || level.from >= level.to) return true;

      level.key.clear();
      for (const ArgStep& ks : st.key_steps) {
        switch (ks.op) {
          case ArgOp::kConst:
            level.key.push_back(ks.term);
            break;
          case ArgOp::kBoundSlot:
            level.key.push_back(frame[ks.slot]);
            break;
          default: {  // kSubstKey
            TermId ground = SubstituteGroundSlots(u, ks.term, sf);
            // Ungroundable (affine over a non-integer binding): no row can
            // match — the interpreter reaches the same verdict row by row.
            if (ground == kInvalidTerm) return true;
            level.key.push_back(ground);
            break;
          }
        }
      }

      // Returns false to abort the whole rule evaluation.
      auto try_row = [&](uint32_t row) -> bool {
        ++result.stats.join_probes;
        if ((result.stats.join_probes & 0xFFF) == 0 && control_stop()) {
          return false;
        }
        const size_t mark = trail.size();
        std::span<const TermId> tuple = level.rel->Row(row);
        bool matched = true;
        for (const ArgStep& ps : st.post_steps) {
          const TermId col_val = tuple[ps.col];
          if (ps.op == ArgOp::kBindSlot) {
            frame[ps.slot] = col_val;
            trail.push_back(ps.slot);
          } else if (ps.op == ArgOp::kCheckSlot) {
            if (frame[ps.slot] != col_val) {
              matched = false;
              break;
            }
          } else {  // kMatch
            if (!MatchTermSlots(u, ps.term, col_val, sf)) {
              matched = false;
              break;
            }
          }
        }
        if (matched) {
          // `tuple` must not be used past this point: a self literal's
          // relation may reallocate its rows when fire_head inserts.
          if (!self(self, i + 1)) return false;  // abort, no undo
        }
        while (trail.size() > mark) {
          frame[trail.back()] = kInvalidTerm;
          trail.pop_back();
        }
        return true;
      };

      // A literal reading the rule's own head relation sees inserts land
      // mid-evaluation (outside its window, but index buckets may be
      // extended/rehashed by a deeper probe of the same relation), so it
      // iterates a copied row list; every other relation is stable for the
      // whole rule evaluation and streams through the cursor with no
      // materialization.
      const bool self_lit = st.is_idb && st.pred == rp.head_pred;
      if (self_lit && st.mask != 0) {
        level.rows.clear();
        level.rel->Probe(st.mask, level.key, level.from, level.to,
                         &level.rows);
        for (uint32_t row : level.rows) {
          if (!try_row(row)) return false;
        }
      } else {
        Relation::Cursor cursor =
            level.rel->OpenProbe(st.mask, level.key, level.from, level.to);
        for (uint32_t row = cursor.Next(); row != Relation::Cursor::kDone;
             row = cursor.Next()) {
          if (!try_row(row)) return false;
        }
      }
      return true;
    };

    const bool ok = join(join, 0);
    if (profile != nullptr) {
      profile->firings += result.stats.rule_firings - firings_before;
      profile->new_facts += result.stats.new_facts - new_before;
      profile->duplicate_facts += result.stats.duplicate_facts - dup_before;
      profile->join_probes += result.stats.join_probes - probes_before;
    }
    return ok;
  };

  // Fixpoint loop (same rounds, windows, and stop semantics as the
  // interpreter).
  while (true) {
    if (control_stop()) break;
    if (result.stats.iterations >= options.max_iterations) {
      budget_hit = true;
      break;
    }
    ++result.stats.iterations;
    const uint64_t facts_before = result.stats.new_facts;
    bool ok = true;

    for (size_t r = 0; r < jp.rules.size(); ++r) {
      const RuleProgram& rp = jp.rules[r];
      const int rule_index = static_cast<int>(r);
      if (!options.seminaive) {
        ok = eval_rule(rp, -1, rule_index);
        if (!ok) break;
        continue;
      }
      if (rp.idb_positions.empty()) {
        // No derived body literal: fires with the EDB only; evaluate in the
        // first round only (nothing it reads ever changes).
        if (result.stats.iterations == 1) {
          ok = eval_rule(rp, -1, rule_index);
          if (!ok) break;
        }
        continue;
      }
      for (int delta_pos : rp.idb_positions) {
        const int dense = rp.body[delta_pos].dense;
        if (prev[dense] == cur[dense]) continue;  // empty delta
        ok = eval_rule(rp, delta_pos, rule_index);
        if (!ok) break;
      }
      if (!ok) break;
    }

    if (!ok) {
      budget_hit = true;
      break;
    }

    // Advance watermarks: this round's insertions become the next deltas.
    const bool any_new = result.stats.new_facts > facts_before;
    for (size_t i = 0; i < npreds; ++i) {
      prev[i] = cur[i];
      cur[i] = idb_rel[i]->size();
    }
    if (!any_new) break;
  }

  // An EvalControl stop takes precedence over the budget classification:
  // eval_rule also returns false for control stops, which would otherwise
  // read as budget_hit.
  result.stop_reason = stop;
  if (stop == StopReason::kDeadline) {
    result.status = Status::DeadlineExceeded(
        "evaluation deadline exceeded after " +
        std::to_string(result.stats.new_facts) + " facts, " +
        std::to_string(result.stats.iterations) + " iterations");
  } else if (stop == StopReason::kCancelled) {
    result.status = Status::Cancelled("evaluation cancelled");
  } else if (stop == StopReason::kNone && budget_hit) {
    result.status = Status::ResourceExhausted(
        "evaluation budget exhausted after " +
        std::to_string(result.stats.new_facts) + " facts, " +
        std::to_string(result.stats.iterations) + " iterations");
  }
  result.stats.seconds = watch.ElapsedSeconds();
  if (control != nullptr && control->trace != nullptr) {
    control->trace->Record(obs::Stage::kFixpoint, trace_start,
                           obs::Trace::NowNs());
  }
  return result;
}

}  // namespace magic
