#include "eval/matcher.h"

#include "util/check.h"

namespace magic {

// NOTE: interning a term (u.Integer, MakeCompound) may reallocate the term
// arena and invalidate any TermData references held across the call. Both
// functions below therefore copy the fields they need *before* creating new
// terms; do not "simplify" them back to holding references.

bool MatchTerm(const Universe& u, TermId pattern, TermId ground,
               Substitution* subst) {
  const TermData& p = u.terms().Get(pattern);
  if (p.ground) {
    // Hash-consing makes ground equality an id comparison.
    return pattern == ground;
  }
  switch (p.kind) {
    case TermKind::kVariable: {
      TermId bound = subst->Lookup(p.symbol);
      if (bound != kInvalidTerm) return bound == ground;
      subst->Bind(p.symbol, ground);
      return true;
    }
    case TermKind::kCompound: {
      const TermData& g = u.terms().Get(ground);
      if (g.kind != TermKind::kCompound || g.symbol != p.symbol ||
          g.children.size() != p.children.size()) {
        return false;
      }
      // Recursive matches may intern integers (affine inversion), so work
      // on copies of the child id lists.
      std::vector<TermId> p_children = p.children;
      std::vector<TermId> g_children = g.children;
      for (size_t i = 0; i < p_children.size(); ++i) {
        if (!MatchTerm(u, p_children[i], g_children[i], subst)) return false;
      }
      return true;
    }
    case TermKind::kAffine: {
      const TermData& g = u.terms().Get(ground);
      if (g.kind != TermKind::kInteger) return false;
      const int64_t ground_value = g.value;
      const int64_t mul = p.mul;
      const int64_t add = p.add;
      const SymbolId var = u.terms().Get(p.children[0]).symbol;
      TermId bound = subst->Lookup(var);
      if (bound != kInvalidTerm) {
        const TermData& b = u.terms().Get(bound);
        return b.kind == TermKind::kInteger &&
               mul * b.value + add == ground_value;
      }
      int64_t delta = ground_value - add;
      if (delta % mul != 0) return false;
      TermId binding = u.Integer(delta / mul);  // may reallocate the arena
      subst->Bind(var, binding);
      return true;
    }
    default:
      MAGIC_CHECK_MSG(false, "non-ground constant/integer term");
      return false;
  }
}

TermId SubstituteGround(const Universe& u, TermId pattern,
                        const Substitution& subst) {
  const TermData& p = u.terms().Get(pattern);
  if (p.ground) return pattern;
  switch (p.kind) {
    case TermKind::kVariable:
      return subst.Lookup(p.symbol);
    case TermKind::kCompound: {
      // Recursive substitution interns terms; copy before descending.
      const SymbolId functor = p.symbol;
      std::vector<TermId> p_children = p.children;
      std::vector<TermId> children;
      children.reserve(p_children.size());
      for (TermId child : p_children) {
        TermId sub = SubstituteGround(u, child, subst);
        if (sub == kInvalidTerm) return kInvalidTerm;
        children.push_back(sub);
      }
      return u.terms().MakeCompound(functor, std::move(children));
    }
    case TermKind::kAffine: {
      const int64_t mul = p.mul;
      const int64_t add = p.add;
      const SymbolId var = u.terms().Get(p.children[0]).symbol;
      TermId bound = subst.Lookup(var);
      if (bound == kInvalidTerm) return kInvalidTerm;
      const TermData& b = u.terms().Get(bound);
      if (b.kind != TermKind::kInteger) return kInvalidTerm;
      const int64_t value = b.value;
      return u.Integer(mul * value + add);
    }
    default:
      return kInvalidTerm;
  }
}

namespace {

/// Looks up a variable's slot through the frame's compile-time slot map.
/// Every variable appearing in a rule gets a slot at JoinProgram compile
/// time, so a missing entry is a compiler bug, not a run-time condition.
inline int SlotOf(const SlotFrame& f, SymbolId var) {
  auto it = f.slots->find(var);
  MAGIC_CHECK_MSG(it != f.slots->end(), "variable with no compiled slot");
  return it->second;
}

inline void BindSlot(const SlotFrame& f, int slot, TermId ground) {
  f.frame[slot] = ground;
  f.trail->push_back(slot);
}

}  // namespace

bool MatchTermSlots(const Universe& u, TermId pattern, TermId ground,
                    const SlotFrame& f) {
  const TermData& p = u.terms().Get(pattern);
  if (p.ground) return pattern == ground;
  switch (p.kind) {
    case TermKind::kVariable: {
      const int slot = SlotOf(f, p.symbol);
      TermId bound = f.frame[slot];
      if (bound != kInvalidTerm) return bound == ground;
      BindSlot(f, slot, ground);
      return true;
    }
    case TermKind::kCompound: {
      const TermData& g = u.terms().Get(ground);
      if (g.kind != TermKind::kCompound || g.symbol != p.symbol ||
          g.children.size() != p.children.size()) {
        return false;
      }
      // Recursive matches may intern integers (affine inversion), so work
      // on copies of the child id lists (see the NOTE at the top).
      std::vector<TermId> p_children = p.children;
      std::vector<TermId> g_children = g.children;
      for (size_t i = 0; i < p_children.size(); ++i) {
        if (!MatchTermSlots(u, p_children[i], g_children[i], f)) return false;
      }
      return true;
    }
    case TermKind::kAffine: {
      const TermData& g = u.terms().Get(ground);
      if (g.kind != TermKind::kInteger) return false;
      const int64_t ground_value = g.value;
      const int64_t mul = p.mul;
      const int64_t add = p.add;
      const int slot = SlotOf(f, u.terms().Get(p.children[0]).symbol);
      TermId bound = f.frame[slot];
      if (bound != kInvalidTerm) {
        const TermData& b = u.terms().Get(bound);
        return b.kind == TermKind::kInteger &&
               mul * b.value + add == ground_value;
      }
      int64_t delta = ground_value - add;
      if (delta % mul != 0) return false;
      TermId binding = u.Integer(delta / mul);  // may reallocate the arena
      BindSlot(f, slot, binding);
      return true;
    }
    default:
      MAGIC_CHECK_MSG(false, "non-ground constant/integer term");
      return false;
  }
}

TermId SubstituteGroundSlots(const Universe& u, TermId pattern,
                             const SlotFrame& f) {
  const TermData& p = u.terms().Get(pattern);
  if (p.ground) return pattern;
  switch (p.kind) {
    case TermKind::kVariable:
      return f.frame[SlotOf(f, p.symbol)];
    case TermKind::kCompound: {
      // Recursive substitution interns terms; copy before descending.
      const SymbolId functor = p.symbol;
      std::vector<TermId> p_children = p.children;
      std::vector<TermId> children;
      children.reserve(p_children.size());
      for (TermId child : p_children) {
        TermId sub = SubstituteGroundSlots(u, child, f);
        if (sub == kInvalidTerm) return kInvalidTerm;
        children.push_back(sub);
      }
      return u.terms().MakeCompound(functor, std::move(children));
    }
    case TermKind::kAffine: {
      const int64_t mul = p.mul;
      const int64_t add = p.add;
      TermId bound = f.frame[SlotOf(f, u.terms().Get(p.children[0]).symbol)];
      if (bound == kInvalidTerm) return kInvalidTerm;
      const TermData& b = u.terms().Get(bound);
      if (b.kind != TermKind::kInteger) return kInvalidTerm;
      const int64_t value = b.value;
      return u.Integer(mul * value + add);
    }
    default:
      return kInvalidTerm;
  }
}

}  // namespace magic
