#include "eval/explain.h"

#include "ast/printer.h"

namespace magic {

namespace {

std::string FactString(const Program& program, const Database& edb,
                       const EvalResult& result, const FactRef& fact) {
  const Universe& u = program.u();
  const Relation* rel = nullptr;
  if (fact.edb) {
    rel = edb.Find(fact.pred);
  } else {
    auto it = result.idb.find(fact.pred);
    if (it != result.idb.end()) rel = &it->second;
  }
  if (rel == nullptr || fact.row >= rel->size()) return "<unknown fact>";
  Literal lit;
  lit.pred = fact.pred;
  std::span<const TermId> row = rel->Row(fact.row);
  lit.args.assign(row.begin(), row.end());
  return LiteralToString(u, lit);
}

void Render(const Program& program, const Database& edb,
            const EvalResult& result, const FactRef& fact, int depth,
            int max_depth, const std::string& indent, std::string* out) {
  out->append(indent);
  out->append(FactString(program, edb, result, fact));
  if (fact.edb) {
    out->append("   [base fact]\n");
    return;
  }
  auto it = result.provenance.find(fact);
  if (it == result.provenance.end()) {
    out->append("   [seed]\n");
    return;
  }
  const Justification& just = it->second;
  if (just.rule >= 0 &&
      just.rule < static_cast<int>(program.rules().size())) {
    out->append("   [rule ");
    out->append(std::to_string(just.rule + 1));
    out->append("]");
  }
  out->push_back('\n');
  if (depth >= max_depth) {
    out->append(indent + "  ...\n");
    return;
  }
  for (const FactRef& child : just.body) {
    Render(program, edb, result, child, depth + 1, max_depth, indent + "  ",
           out);
  }
}

}  // namespace

std::optional<FactRef> FindFact(const EvalResult& result, const Database& edb,
                                PredId pred,
                                const std::vector<TermId>& tuple) {
  auto it = result.idb.find(pred);
  if (it != result.idb.end()) {
    if (std::optional<uint32_t> row = it->second.FindRow(tuple)) {
      return FactRef{pred, *row, false};
    }
  }
  if (const Relation* rel = edb.Find(pred)) {
    if (std::optional<uint32_t> row = rel->FindRow(tuple)) {
      return FactRef{pred, *row, true};
    }
  }
  return std::nullopt;
}

std::string ExplainFact(const Program& program, const Database& edb,
                        const EvalResult& result, const FactRef& fact,
                        int max_depth) {
  std::string out;
  Render(program, edb, result, fact, 0, max_depth, "", &out);
  return out;
}

}  // namespace magic
