#ifndef MAGIC_CORE_SEMIJOIN_H_
#define MAGIC_CORE_SEMIJOIN_H_

#include "core/counting.h"

namespace magic {

struct SemijoinStats {
  int blocks_optimized = 0;
  int literals_deleted = 0;
  int argument_positions_dropped = 0;
  int supplementary_positions_trimmed = 0;
};

/// The Section 8 optimizations for counting-rewritten programs, applied to a
/// fixpoint:
///
///   * Lemma 8.1 — delete the tail literals feeding an indexed occurrence
///     when their variables serve only to compute its bound arguments (the
///     indices already replay that join).
///   * Theorem 8.3 (semijoin optimization) — per block of mutually recursive
///     indexed predicates, when conditions (1) and (2) hold, delete all the
///     blocks' bound argument positions program-wide and the now-redundant
///     tail literals in the rules defining the block.
///   * Supplementary re-trimming — after argument drops, supplementary
///     counting predicates shed positions no consumer reads (this is what
///     turns A.6.3's supcnt(I,k,h,X,Z1) into supcnt(I,k,h,Z1)).
///
/// The checks are conservative: if a condition cannot be established the
/// rule/block is left untouched, so the result is always equivalent to the
/// input (which the property tests verify against GMS answers).
Result<CountingProgram> ApplySemijoinOptimization(const CountingProgram& input,
                                                  SemijoinStats* stats = nullptr);

}  // namespace magic

#endif  // MAGIC_CORE_SEMIJOIN_H_
