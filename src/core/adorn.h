#ifndef MAGIC_CORE_ADORN_H_
#define MAGIC_CORE_ADORN_H_

#include <map>
#include <string>
#include <utility>

#include "core/sip_strategies.h"

namespace magic {

/// The adorned program P^ad (paper, Section 3) together with the bookkeeping
/// the rewriting stages need. Rule bodies are physically reordered to the
/// total order induced by their sips (condition (3')), and each adorned rule
/// carries its sip with occurrence indices remapped to the new order.
struct AdornedProgram {
  Program program;
  /// The original query and its adorned predicate/adornment.
  Query query;
  PredId query_pred = kInvalidPred;
  Adornment query_adornment;
  /// (original predicate, adornment string) -> adorned predicate.
  std::map<std::pair<PredId, std::string>, PredId> adorned_preds;
};

/// Builds the adorned program for (program, query) under `strategy`.
///
/// Derived predicates are the program's head predicates. Adorned versions
/// are named base_adornment (e.g. sg_bf). Per the paper: a body occurrence
/// with no incoming sip arc is adorned all-free; an argument is bound in
/// the adornment only if all its variables are labeled by incoming arcs
/// (so partially bound arguments count as free, following [21]).
Result<AdornedProgram> Adorn(const Program& program, const Query& query,
                             SipStrategy& strategy);

}  // namespace magic

#endif  // MAGIC_CORE_ADORN_H_
