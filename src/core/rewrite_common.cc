#include "core/rewrite_common.h"

#include "util/check.h"

namespace magic {

std::vector<Fact> MakeSeeds(const RewrittenProgram& rewritten,
                            const Query& query, const Universe& u) {
  std::vector<Fact> seeds;
  if (!rewritten.seed.has_value()) return seeds;
  const SeedTemplate& tpl = *rewritten.seed;
  Fact seed;
  seed.pred = tpl.pred;
  if (tpl.counting) {
    TermId zero = u.Integer(0);
    seed.args = {zero, zero, zero};
  }
  for (TermId arg : query.goal.args) {
    if (u.terms().IsGround(arg)) seed.args.push_back(arg);
  }
  MAGIC_CHECK(seed.args.size() == u.predicates().info(tpl.pred).arity);
  seeds.push_back(std::move(seed));
  return seeds;
}

std::vector<TermId> BoundArgs(const Literal& lit, const Adornment& adornment) {
  std::vector<TermId> args;
  for (size_t i = 0; i < lit.args.size(); ++i) {
    if (i < adornment.size() && adornment.bound(i)) args.push_back(lit.args[i]);
  }
  return args;
}

const Adornment& PredAdornment(const Universe& u, PredId pred) {
  return u.predicates().info(pred).adornment;
}

bool IsBoundAdorned(const Universe& u, PredId pred) {
  const PredicateInfo& info = u.predicates().info(pred);
  return info.kind == PredKind::kDerived && info.IsAdorned() &&
         info.adornment.bound_count() > 0;
}

PredId GetOrCreateMagicPred(Universe& u, PredId pred,
                            std::unordered_map<PredId, PredId>* cache) {
  auto it = cache->find(pred);
  if (it != cache->end()) return it->second;
  // Copy: Declare below may reallocate the predicate table and invalidate
  // references into it.
  const PredicateInfo info = u.predicates().info(pred);
  MAGIC_CHECK_MSG(info.IsAdorned() && info.adornment.bound_count() > 0,
                  "magic predicates exist only for bound-adorned predicates");
  std::string name = "magic_" + u.symbols().Name(info.name);
  uint32_t arity = static_cast<uint32_t>(info.adornment.bound_count());
  SymbolId sym = u.UniquePredicateName(name, arity);
  PredId magic = u.predicates().Declare(sym, arity, PredKind::kMagic);
  PredicateInfo& minfo = u.predicates().mutable_info(magic);
  minfo.parent = pred;
  minfo.adornment = info.adornment;
  cache->emplace(pred, magic);
  return magic;
}

bool WantGuard(GuardMode mode, const std::vector<std::vector<bool>>& precedes,
               const std::vector<int>& holders, int candidate) {
  switch (mode) {
    case GuardMode::kFull:
      return true;
    case GuardMode::kPhOnly:
      return false;
    case GuardMode::kProp42: {
      size_t to = static_cast<size_t>(candidate) + 1;
      for (int holder : holders) {
        size_t from = holder == kSipHead ? 0 : static_cast<size_t>(holder) + 1;
        if (precedes[from][to]) return false;
      }
      return true;
    }
  }
  return true;
}

std::vector<std::vector<bool>> SipPrecedes(const SipGraph& sip,
                                           size_t body_size) {
  const size_t n = body_size + 1;  // node 0 = p_h, node i+1 = occurrence i
  std::vector<std::vector<bool>> reach(n, std::vector<bool>(n, false));
  for (const SipArc& arc : sip.arcs) {
    for (int member : arc.tail) {
      size_t from = member == kSipHead ? 0 : static_cast<size_t>(member) + 1;
      reach[from][static_cast<size_t>(arc.target) + 1] = true;
    }
  }
  // Floyd-Warshall closure (bodies are tiny).
  for (size_t k = 0; k < n; ++k) {
    for (size_t i = 0; i < n; ++i) {
      if (!reach[i][k]) continue;
      for (size_t j = 0; j < n; ++j) {
        if (reach[k][j]) reach[i][j] = true;
      }
    }
  }
  return reach;
}

}  // namespace magic
