#ifndef MAGIC_CORE_REWRITE_COMMON_H_
#define MAGIC_CORE_REWRITE_COMMON_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/adorn.h"

namespace magic {

/// How aggressively magic/counting guard literals are pruned.
///
///   kFull   — keep every guard the basic transformation inserts
///             (the form Theorem 4.1 is proved for).
///   kProp42 — drop magic_q when another magic_p in the same body has
///             p => q in the sip's derived precedence (Proposition 4.2).
///             This reproduces the paper's displayed programs exactly.
///   kPhOnly — keep only the guard corresponding to the head node p_h
///             (Proposition 4.3, the form modern systems implement).
enum class GuardMode {
  kFull,
  kProp42,
  kPhOnly,
};

/// Instructions for building the seed fact(s) from a concrete query
/// (Section 4: the seed is not part of P^mg; it is instantiated per query).
struct SeedTemplate {
  PredId pred = kInvalidPred;
  /// Counting seeds carry three leading zero indices: cnt_q(0,0,0,c-bar).
  bool counting = false;
};

/// A rewritten program plus everything the engine needs to seed it and read
/// answers back out.
struct RewrittenProgram {
  Program program;
  /// The predicate holding the query's answers (p^a or p_ind^a).
  PredId answer_pred = kInvalidPred;
  /// 0, or 3 for counting-rewritten programs. Counting answers are the rows
  /// whose index fields are all zero (the seed's level).
  uint32_t answer_index_fields = 0;
  /// For each original query position: the column of answer_pred holding it
  /// (offset already includes the index fields), or -1 if the semijoin
  /// optimization dropped that (bound) position.
  std::vector<int> answer_positions;
  std::optional<SeedTemplate> seed;
  /// adorned predicate -> its magic/cnt predicate.
  std::unordered_map<PredId, PredId> magic_of;
  std::string strategy_name;
};

/// Instantiates the seed fact(s) for `query` (empty if the rewrite needed no
/// seed, i.e. the query had no bound arguments).
std::vector<Fact> MakeSeeds(const RewrittenProgram& rewritten,
                            const Query& query, const Universe& u);

// -- Helpers shared by the rewriting algorithms -----------------------------

/// Argument terms of `lit` at the positions bound in `adornment`.
std::vector<TermId> BoundArgs(const Literal& lit, const Adornment& adornment);

/// The adornment recorded for `pred` (empty if it is not an adorned
/// predicate).
const Adornment& PredAdornment(const Universe& u, PredId pred);

/// True if `pred` is an adorned derived predicate with >= 1 bound argument
/// (the predicates that get magic/counting counterparts).
bool IsBoundAdorned(const Universe& u, PredId pred);

/// Declares (once) the magic predicate for adorned `pred`:
/// name magic_<name>, arity = #bound, kind kMagic. Uses `cache` to
/// deduplicate across calls.
PredId GetOrCreateMagicPred(Universe& u, PredId pred,
                            std::unordered_map<PredId, PredId>* cache);

/// The transitive "p => q" relation induced by a sip's arcs over body
/// occurrences and the head node (Proposition 4.2). Returned as a matrix
/// indexed by occurrence + 1 (index 0 is the head node p_h).
std::vector<std::vector<bool>> SipPrecedes(const SipGraph& sip,
                                           size_t body_size);

/// Decides whether `candidate` (a body occurrence) keeps its magic/cnt guard
/// literal given the guard mode, the sip's precedence closure, and the
/// `holders` already contributing a magic/cnt literal to the same rule body
/// (kSipHead for the head node). Implements Propositions 4.2/4.3.
bool WantGuard(GuardMode mode, const std::vector<std::vector<bool>>& precedes,
               const std::vector<int>& holders, int candidate);

}  // namespace magic

#endif  // MAGIC_CORE_REWRITE_COMMON_H_
