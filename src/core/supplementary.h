#ifndef MAGIC_CORE_SUPPLEMENTARY_H_
#define MAGIC_CORE_SUPPLEMENTARY_H_

#include "core/rewrite_common.h"

namespace magic {

struct SupMagicOptions {
  /// Replace supmagic_1 (a copy of magic_p^a) by magic_p^a itself, as the
  /// paper always does in its examples.
  bool inline_first_supplementary = true;
  /// Drop from each supplementary predicate the variables not needed by any
  /// later literal or the head (the paper's "simple optimizations").
  bool trim_variables = true;
};

/// Generalized Supplementary Magic Sets (paper, Section 5): like GMS, but
/// the prefix joins that GMS re-evaluates in every magic rule and in the
/// modified rule are stored once in supplementary predicates
///
///   supmagic_j^r(phi_j) :- supmagic_{j-1}^r(phi_{j-1}),
///                          q_{j-1}^{a_{j-1}}(theta_{j-1})
///
/// with magic rules  magic_q^{a_i}(theta_i^b) :- supmagic_i^r(phi_i)  and a
/// modified rule that starts from the last supplementary. Theorem 5.1:
/// equivalent to P^ad. Requires each rule's body to be in sip order (which
/// Adorn guarantees); the supplementary chain realizes the compressed form
/// of the sip along that order.
Result<RewrittenProgram> SupplementaryMagicRewrite(
    const AdornedProgram& adorned, const SupMagicOptions& options = {});

}  // namespace magic

#endif  // MAGIC_CORE_SUPPLEMENTARY_H_
