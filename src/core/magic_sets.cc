#include "core/magic_sets.h"

#include <algorithm>

#include "util/check.h"

namespace magic {

Result<RewrittenProgram> MagicSetsRewrite(const AdornedProgram& adorned,
                                          const MagicOptions& options) {
  const auto& universe = adorned.program.universe();
  Universe& u = *universe;
  RewrittenProgram out;
  out.program = Program(universe);
  out.strategy_name = "generalized-magic-sets";
  out.answer_pred = adorned.query_pred;
  out.answer_index_fields = 0;
  out.answer_positions.resize(adorned.query.goal.args.size());
  for (size_t i = 0; i < out.answer_positions.size(); ++i) {
    out.answer_positions[i] = static_cast<int>(i);
  }

  // Pass 1: magic rules (and label rules for multi-arc occurrences).
  for (size_t ri = 0; ri < adorned.program.rules().size(); ++ri) {
    const Rule& rule = adorned.program.rules()[ri];
    MAGIC_CHECK_MSG(rule.sip.has_value(), "adorned rules must carry sips");
    const SipGraph& sip = *rule.sip;
    std::vector<std::vector<bool>> precedes =
        SipPrecedes(sip, rule.body.size());
    const Adornment head_ad = PredAdornment(u, rule.head.pred);  // copy: Declare below reallocates
    const bool head_has_magic = IsBoundAdorned(u, rule.head.pred);
    std::vector<TermId> head_bound_args = BoundArgs(rule.head, head_ad);

    // Builds the N-part of a magic/label rule body for one arc.
    auto build_tail_body = [&](const SipArc& arc) -> std::vector<Literal> {
      std::vector<Literal> body;
      std::vector<int> members = arc.tail;
      std::sort(members.begin(), members.end());  // kSipHead (-1) first
      std::vector<int> holders;
      for (int member : members) {
        if (member == kSipHead) {
          MAGIC_CHECK_MSG(head_has_magic,
                          "sip tail contains p_h but the head has no bound "
                          "arguments");
          PredId head_magic =
              GetOrCreateMagicPred(u, rule.head.pred, &out.magic_of);
          body.push_back(Literal{head_magic, head_bound_args});
          holders.push_back(kSipHead);
          continue;
        }
        const Literal& qlit = rule.body[member];
        if (IsBoundAdorned(u, qlit.pred) &&
            WantGuard(options.guard_mode, precedes, holders, member)) {
          PredId guard = GetOrCreateMagicPred(u, qlit.pred, &out.magic_of);
          body.push_back(
              Literal{guard, BoundArgs(qlit, PredAdornment(u, qlit.pred))});
          holders.push_back(member);
        }
        body.push_back(qlit);
      }
      return body;
    };

    for (size_t occ = 0; occ < rule.body.size(); ++occ) {
      const Literal& target = rule.body[occ];
      if (!IsBoundAdorned(u, target.pred)) continue;
      std::vector<int> arcs = sip.ArcsInto(static_cast<int>(occ));
      if (arcs.empty()) continue;
      PredId magic_pred = GetOrCreateMagicPred(u, target.pred, &out.magic_of);
      std::vector<TermId> magic_args =
          BoundArgs(target, PredAdornment(u, target.pred));

      Rule magic_rule;
      magic_rule.head = Literal{magic_pred, magic_args};
      magic_rule.provenance = {RuleOrigin::kMagicRule, static_cast<int>(ri),
                               static_cast<int>(occ)};
      if (arcs.size() == 1) {
        magic_rule.body = build_tail_body(sip.arcs[arcs[0]]);
      } else {
        // Several arcs: one label rule per arc, joined by the magic rule
        // (Section 4, "If there are several arcs entering q_i ...").
        // Copy the symbol id: the Declare below reallocates the table.
        const SymbolId target_name = u.predicates().info(target.pred).name;
        for (size_t a = 0; a < arcs.size(); ++a) {
          const SipArc& arc = sip.arcs[arcs[a]];
          std::string name = "label_" + u.symbols().Name(target_name) +
                             "_" + std::to_string(ri + 1) + "_" +
                             std::to_string(occ + 1) + "_" +
                             std::to_string(a + 1);
          SymbolId sym = u.UniquePredicateName(
              name, static_cast<uint32_t>(arc.label.size()));
          PredId label_pred = u.predicates().Declare(
              sym, static_cast<uint32_t>(arc.label.size()), PredKind::kLabel);
          u.predicates().mutable_info(label_pred).parent = target.pred;
          std::vector<TermId> label_args;
          for (SymbolId v : arc.label) {
            label_args.push_back(u.terms().MakeVariable(v));
          }
          Rule label_rule;
          label_rule.head = Literal{label_pred, label_args};
          label_rule.body = build_tail_body(arc);
          label_rule.provenance = {RuleOrigin::kLabelRule,
                                   static_cast<int>(ri),
                                   static_cast<int>(occ)};
          out.program.AddRule(std::move(label_rule));
          magic_rule.body.push_back(Literal{label_pred, label_args});
        }
      }
      out.program.AddRule(std::move(magic_rule));
    }
  }

  // Pass 2: modified rules.
  for (size_t ri = 0; ri < adorned.program.rules().size(); ++ri) {
    const Rule& rule = adorned.program.rules()[ri];
    const SipGraph& sip = *rule.sip;
    std::vector<std::vector<bool>> precedes =
        SipPrecedes(sip, rule.body.size());
    const Adornment head_ad = PredAdornment(u, rule.head.pred);  // copy: Declare below reallocates
    const bool head_has_magic = IsBoundAdorned(u, rule.head.pred);

    Rule modified;
    modified.head = rule.head;
    modified.provenance = {RuleOrigin::kModifiedRule, static_cast<int>(ri),
                           -1};
    std::vector<int> holders;
    if (head_has_magic) {
      PredId head_magic =
          GetOrCreateMagicPred(u, rule.head.pred, &out.magic_of);
      modified.body.push_back(
          Literal{head_magic, BoundArgs(rule.head, head_ad)});
      holders.push_back(kSipHead);
    }
    for (size_t occ = 0; occ < rule.body.size(); ++occ) {
      const Literal& lit = rule.body[occ];
      if (IsBoundAdorned(u, lit.pred) &&
          WantGuard(options.guard_mode, precedes, holders,
                    static_cast<int>(occ))) {
        PredId guard = GetOrCreateMagicPred(u, lit.pred, &out.magic_of);
        modified.body.push_back(
            Literal{guard, BoundArgs(lit, PredAdornment(u, lit.pred))});
        holders.push_back(static_cast<int>(occ));
      }
      modified.body.push_back(lit);
    }
    out.program.AddRule(std::move(modified));
  }

  // Seed.
  if (adorned.query_adornment.bound_count() > 0) {
    SeedTemplate seed;
    seed.pred = GetOrCreateMagicPred(u, adorned.query_pred, &out.magic_of);
    seed.counting = false;
    out.seed = seed;
  }
  return out;
}

}  // namespace magic
