#include "core/supplementary.h"

#include <algorithm>
#include <string>

#include "util/check.h"

namespace magic {

namespace {

bool ContainsSym(const std::vector<SymbolId>& vars, SymbolId v) {
  return std::find(vars.begin(), vars.end(), v) != vars.end();
}

}  // namespace

Result<RewrittenProgram> SupplementaryMagicRewrite(
    const AdornedProgram& adorned, const SupMagicOptions& options) {
  const auto& universe = adorned.program.universe();
  Universe& u = *universe;
  RewrittenProgram out;
  out.program = Program(universe);
  out.strategy_name = "generalized-supplementary-magic-sets";
  out.answer_pred = adorned.query_pred;
  out.answer_index_fields = 0;
  out.answer_positions.resize(adorned.query.goal.args.size());
  for (size_t i = 0; i < out.answer_positions.size(); ++i) {
    out.answer_positions[i] = static_cast<int>(i);
  }

  for (size_t ri = 0; ri < adorned.program.rules().size(); ++ri) {
    const Rule& rule = adorned.program.rules()[ri];
    MAGIC_CHECK_MSG(rule.sip.has_value(), "adorned rules must carry sips");
    const SipGraph& sip = *rule.sip;
    const size_t n = rule.body.size();
    const Adornment head_ad = PredAdornment(u, rule.head.pred);  // copy: Declare below reallocates
    const bool head_has_magic = IsBoundAdorned(u, rule.head.pred);
    std::vector<TermId> head_bound_args = BoundArgs(rule.head, head_ad);

    // m_last: 1-based position of the last occurrence with an incoming arc.
    size_t m_last = 0;
    for (size_t occ = 0; occ < n; ++occ) {
      if (sip.HasArcInto(static_cast<int>(occ))) m_last = occ + 1;
    }

    // Variables needed at or after position j (1-based): vars of the head
    // plus vars of theta_k for k >= j. Used to trim the phi_j.
    std::vector<std::vector<SymbolId>> needed_from(n + 2);
    {
      std::vector<SymbolId> acc = LiteralVariables(u, rule.head);
      needed_from[n + 1] = acc;
      for (size_t j = n; j >= 1; --j) {
        AppendLiteralVariables(u, rule.body[j - 1], &acc);
        needed_from[j] = acc;
      }
    }

    // phi_j for j = 1..m_last, in deterministic first-occurrence order.
    std::vector<std::vector<SymbolId>> phi(m_last + 1);
    if (m_last >= 1) {
      std::vector<SymbolId> raw;
      for (TermId arg : head_bound_args) u.terms().AppendVariables(arg, &raw);
      for (size_t j = 1; j <= m_last; ++j) {
        if (j >= 2) {
          AppendLiteralVariables(u, rule.body[j - 2], &raw);
        }
        if (options.trim_variables) {
          for (SymbolId v : raw) {
            if (ContainsSym(needed_from[j], v)) phi[j].push_back(v);
          }
        } else {
          phi[j] = raw;
        }
      }
    }

    // Supplementary predicates (declared lazily; sup_1 may be inlined away).
    std::vector<PredId> sup_pred(m_last + 1, kInvalidPred);
    auto get_sup_pred = [&](size_t j) -> PredId {
      if (sup_pred[j] != kInvalidPred) return sup_pred[j];
      std::string name = "supmagic_" + std::to_string(ri + 1) + "_" +
                         std::to_string(j);
      SymbolId sym =
          u.UniquePredicateName(name, static_cast<uint32_t>(phi[j].size()));
      PredId id = u.predicates().Declare(
          sym, static_cast<uint32_t>(phi[j].size()), PredKind::kSupMagic);
      u.predicates().mutable_info(id).parent = rule.head.pred;
      sup_pred[j] = id;
      return id;
    };
    auto sup_literal = [&](size_t j) -> Literal {
      std::vector<TermId> args;
      for (SymbolId v : phi[j]) args.push_back(u.terms().MakeVariable(v));
      return Literal{get_sup_pred(j), std::move(args)};
    };
    // The literal standing for the prefix join before position j; for j == 1
    // this is magic_p^a itself when inlining (or nothing for a free head).
    auto prefix_literal = [&](size_t j) -> std::optional<Literal> {
      if (j == 1 && options.inline_first_supplementary) {
        if (!head_has_magic) return std::nullopt;
        PredId head_magic =
            GetOrCreateMagicPred(u, rule.head.pred, &out.magic_of);
        return Literal{head_magic, head_bound_args};
      }
      return sup_literal(j);
    };

    // Supplementary rules.
    for (size_t j = 1; j <= m_last; ++j) {
      if (j == 1) {
        if (options.inline_first_supplementary) continue;
        Rule sup_rule;
        sup_rule.head = sup_literal(1);
        if (head_has_magic) {
          PredId head_magic =
              GetOrCreateMagicPred(u, rule.head.pred, &out.magic_of);
          sup_rule.body.push_back(Literal{head_magic, head_bound_args});
        }
        sup_rule.provenance = {RuleOrigin::kSupplementary,
                               static_cast<int>(ri), 1};
        out.program.AddRule(std::move(sup_rule));
        continue;
      }
      Rule sup_rule;
      sup_rule.head = sup_literal(j);
      if (std::optional<Literal> prev = prefix_literal(j - 1)) {
        sup_rule.body.push_back(std::move(*prev));
      }
      sup_rule.body.push_back(rule.body[j - 2]);
      sup_rule.provenance = {RuleOrigin::kSupplementary, static_cast<int>(ri),
                             static_cast<int>(j)};
      out.program.AddRule(std::move(sup_rule));
    }

    // Magic rules: magic_q^{a_i}(theta_i^b) :- supmagic_i(phi_i).
    for (size_t occ = 0; occ < n; ++occ) {
      const Literal& target = rule.body[occ];
      if (!IsBoundAdorned(u, target.pred)) continue;
      if (!sip.HasArcInto(static_cast<int>(occ))) continue;
      PredId magic_pred = GetOrCreateMagicPred(u, target.pred, &out.magic_of);
      Rule magic_rule;
      magic_rule.head =
          Literal{magic_pred, BoundArgs(target, PredAdornment(u, target.pred))};
      if (std::optional<Literal> prefix = prefix_literal(occ + 1)) {
        magic_rule.body.push_back(std::move(*prefix));
      }
      magic_rule.provenance = {RuleOrigin::kMagicRule, static_cast<int>(ri),
                               static_cast<int>(occ)};
      out.program.AddRule(std::move(magic_rule));
    }

    // Modified rule: p^a(chi) :- supmagic_m(phi_m), theta_m, ..., theta_n.
    Rule modified;
    modified.head = rule.head;
    modified.provenance = {RuleOrigin::kModifiedRule, static_cast<int>(ri),
                           -1};
    if (m_last == 0) {
      if (head_has_magic) {
        PredId head_magic =
            GetOrCreateMagicPred(u, rule.head.pred, &out.magic_of);
        modified.body.push_back(Literal{head_magic, head_bound_args});
      }
      for (const Literal& lit : rule.body) modified.body.push_back(lit);
    } else {
      if (std::optional<Literal> prefix = prefix_literal(m_last)) {
        modified.body.push_back(std::move(*prefix));
      }
      for (size_t j = m_last; j <= n; ++j) {
        modified.body.push_back(rule.body[j - 1]);
      }
    }
    out.program.AddRule(std::move(modified));
  }

  if (adorned.query_adornment.bound_count() > 0) {
    SeedTemplate seed;
    seed.pred = GetOrCreateMagicPred(u, adorned.query_pred, &out.magic_of);
    seed.counting = false;
    out.seed = seed;
  }
  return out;
}

}  // namespace magic
