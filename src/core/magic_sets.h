#ifndef MAGIC_CORE_MAGIC_SETS_H_
#define MAGIC_CORE_MAGIC_SETS_H_

#include "core/rewrite_common.h"

namespace magic {

struct MagicOptions {
  GuardMode guard_mode = GuardMode::kProp42;
};

/// Generalized Magic Sets (paper, Section 4): rewrites the adorned program
/// into P^mg, whose bottom-up evaluation implements the sips attached to the
/// adorned rules (Theorem 4.1: (P^ad, p^a) is equivalent to (P^mg, p^a)).
///
/// For each adorned rule r with head p^a(chi) and each body occurrence
/// q_i^{a_i} that is derived, has bound arguments and an incoming sip arc
/// N -> q_i, this generates a magic rule
///
///   magic_q^{a_i}(theta_i^b) :- [magic_p^a(chi^b) if p_h in N],
///                               q_j^{a_j}(theta_j) for q_j in N, ...
///
/// plus guard literals per MagicOptions::guard_mode, and the modified rule
///
///   p^a(chi) :- magic_p^a(chi^b), q_1^{a_1}(theta_1), ...
///
/// Occurrences with several incoming arcs go through label predicates, one
/// per arc, exactly as in the paper.
Result<RewrittenProgram> MagicSetsRewrite(const AdornedProgram& adorned,
                                          const MagicOptions& options = {});

}  // namespace magic

#endif  // MAGIC_CORE_MAGIC_SETS_H_
