#ifndef MAGIC_CORE_SIP_STRATEGIES_H_
#define MAGIC_CORE_SIP_STRATEGIES_H_

#include <memory>
#include <string>

#include "ast/program.h"
#include "ast/validation.h"

namespace magic {

/// Produces a sip for each (rule, head adornment) pair encountered while
/// constructing the adorned program (paper, Section 3: "for each adorned
/// predicate p^a, and for each rule with p as its head, we choose a sip").
///
/// Implementations must return sips that pass ValidateSip. The adornment
/// stage only uses arcs entering *derived* occurrences (the paper's
/// generalized notation (IV): bindings passed to base predicates are
/// selections handled by the evaluator, not by rewriting).
class SipStrategy {
 public:
  virtual ~SipStrategy() = default;

  /// `rule` comes from the original program with its body in written order.
  /// `derived(pred)` tells the strategy which predicates are derived.
  virtual Result<SipGraph> BuildSip(const Universe& u, const Rule& rule,
                                    const Adornment& head,
                                    const Program& program) = 0;

  virtual std::string name() const = 0;
};

/// The paper's sip (I)/(IV): left-to-right, compressed, full. Walking the
/// body in written order, all variables of already-evaluated literals (plus
/// the head's bound variables) are available; each derived occurrence with
/// a coverable argument gets one arc whose tail is the set of available
/// predecessors connected to the label.
class FullSipStrategy : public SipStrategy {
 public:
  Result<SipGraph> BuildSip(const Universe& u, const Rule& rule,
                            const Adornment& head,
                            const Program& program) override;
  std::string name() const override { return "full-left-to-right"; }
};

/// The paper's sip (II)/(V): "past information is not used". The tail of
/// each arc is the nearest single predecessor (plus the head node for the
/// first arc) that can bind an argument of the target, so bindings flow
/// along a chain instead of accumulating. Produces partial sips.
class ChainSipStrategy : public SipStrategy {
 public:
  Result<SipGraph> BuildSip(const Universe& u, const Rule& rule,
                            const Adornment& head,
                            const Program& program) override;
  std::string name() const override { return "chain"; }
};

/// Passes only the head's bindings (pure unification, no sideways passing
/// between body literals). Every arc has tail {p_h}.
class HeadOnlySipStrategy : public SipStrategy {
 public:
  Result<SipGraph> BuildSip(const Universe& u, const Rule& rule,
                            const Adornment& head,
                            const Program& program) override;
  std::string name() const override { return "head-only"; }
};

/// No information passing at all: the empty sip. Rewriting under this
/// strategy degenerates to (nearly) the original program — useful as a
/// baseline and for testing the degenerate paths.
class EmptySipStrategy : public SipStrategy {
 public:
  Result<SipGraph> BuildSip(const Universe& u, const Rule& rule,
                            const Adornment& head,
                            const Program& program) override;
  std::string name() const override { return "empty"; }
};

/// Greedily reorders the body, repeatedly choosing the literal with the
/// most bound arguments (ties: base before derived, then written order),
/// then builds the full compressed sip along that order. This realizes the
/// paper's observation that the sip, not the written order, determines
/// evaluation order.
class GreedySipStrategy : public SipStrategy {
 public:
  Result<SipGraph> BuildSip(const Universe& u, const Rule& rule,
                            const Adornment& head,
                            const Program& program) override;
  std::string name() const override { return "greedy"; }
};

std::unique_ptr<SipStrategy> MakeSipStrategy(const std::string& name);

}  // namespace magic

#endif  // MAGIC_CORE_SIP_STRATEGIES_H_
