#include "core/sup_counting.h"

#include <algorithm>
#include <string>

#include "util/check.h"

namespace magic {

namespace {

bool ContainsSym(const std::vector<SymbolId>& vars, SymbolId v) {
  return std::find(vars.begin(), vars.end(), v) != vars.end();
}

PredId GetOrCreateIndexedPredLocal(Universe& u, PredId pred,
                                   std::unordered_map<PredId, PredId>* cache) {
  auto it = cache->find(pred);
  if (it != cache->end()) return it->second;
  // Copy: Declare below may reallocate the predicate table.
  const PredicateInfo info = u.predicates().info(pred);
  std::string base = u.symbols().Name(info.name);
  std::string suffix = "_" + info.adornment.ToString();
  if (base.size() > suffix.size() &&
      base.compare(base.size() - suffix.size(), suffix.size(), suffix) == 0) {
    base = base.substr(0, base.size() - suffix.size()) + "_ind" + suffix;
  } else {
    base += "_ind";
  }
  uint32_t arity = info.arity + 3;
  SymbolId sym = u.UniquePredicateName(base, arity);
  PredId id = u.predicates().Declare(sym, arity, PredKind::kDerived);
  PredicateInfo& pinfo = u.predicates().mutable_info(id);
  pinfo.parent = pred;
  pinfo.adornment = info.adornment;
  pinfo.index_fields = 3;
  cache->emplace(pred, id);
  return id;
}

PredId GetOrCreateCntPredLocal(Universe& u, PredId pred, PredId indexed,
                               std::unordered_map<PredId, PredId>* cache) {
  auto it = cache->find(pred);
  if (it != cache->end()) return it->second;
  // Copy: Declare below may reallocate the predicate table.
  const PredicateInfo indexed_info = u.predicates().info(indexed);
  std::string name = "cnt_" + u.symbols().Name(indexed_info.name);
  uint32_t arity =
      3 + static_cast<uint32_t>(indexed_info.adornment.bound_count());
  SymbolId sym = u.UniquePredicateName(name, arity);
  PredId id = u.predicates().Declare(sym, arity, PredKind::kCounting);
  PredicateInfo& pinfo = u.predicates().mutable_info(id);
  pinfo.parent = pred;
  pinfo.adornment = indexed_info.adornment;
  pinfo.index_fields = 3;
  cache->emplace(pred, id);
  return id;
}

}  // namespace

Result<CountingProgram> SupplementaryCountingRewrite(
    const AdornedProgram& adorned, const SupCountingOptions& options) {
  const auto& universe = adorned.program.universe();
  Universe& u = *universe;

  CountingProgram out;
  out.adorned = adorned;
  out.rewritten.program = Program(universe);
  out.rewritten.strategy_name = "generalized-supplementary-counting";
  out.m = static_cast<int>(adorned.program.rules().size());
  out.t = 0;
  for (const Rule& rule : adorned.program.rules()) {
    out.t = std::max(out.t, static_cast<int>(rule.body.size()));
  }
  if (out.t == 0) out.t = 1;

  std::unordered_map<PredId, PredId>& cnt_of = out.rewritten.magic_of;

  if (adorned.query_adornment.bound_count() == 0) {
    return Status::InvalidArgument(
        "counting requires a query with bound arguments");
  }

  for (const auto& [key, pred] : adorned.adorned_preds) {
    if (IsBoundAdorned(u, pred)) {
      PredId indexed = GetOrCreateIndexedPredLocal(u, pred, &out.indexed_of);
      GetOrCreateCntPredLocal(u, pred, indexed, &cnt_of);
      const PredicateInfo& info = u.predicates().info(pred);
      std::vector<int> kept(info.arity);
      for (uint32_t i = 0; i < info.arity; ++i) kept[i] = static_cast<int>(i);
      out.kept_positions[indexed] = std::move(kept);
    }
  }

  auto add_rule = [&](Rule rule, CountingRuleMeta meta) {
    meta.origin = rule.provenance.origin;
    MAGIC_CHECK(meta.body.size() == rule.body.size());
    out.rewritten.program.AddRule(std::move(rule));
    out.meta.push_back(std::move(meta));
  };

  for (size_t ri = 0; ri < adorned.program.rules().size(); ++ri) {
    const Rule& rule = adorned.program.rules()[ri];
    MAGIC_CHECK_MSG(rule.sip.has_value(), "adorned rules must carry sips");
    const SipGraph& sip = *rule.sip;
    const size_t n = rule.body.size();
    const int rule_number = static_cast<int>(ri) + 1;
    const Adornment head_ad = PredAdornment(u, rule.head.pred);  // copy: Declare below reallocates
    const bool head_indexed = IsBoundAdorned(u, rule.head.pred);

    size_t m_last = 0;
    for (size_t occ = 0; occ < n; ++occ) {
      if (sip.HasArcInto(static_cast<int>(occ))) m_last = occ + 1;
    }
    if (m_last > 0 && !head_indexed) {
      return Status::InvalidArgument(
          "supplementary counting cannot encode rule " +
          std::to_string(rule_number) +
          ": body occurrences receive bindings but the head has no bound "
          "arguments to seed the index chain");
    }

    TermId var_i = u.FreshVariable("I");
    TermId var_k = u.FreshVariable("K");
    TermId var_h = u.FreshVariable("H");
    TermId i_plus_1 = u.Affine(var_i, 1, 1);
    TermId k_child = u.Affine(var_k, out.m, rule_number);
    auto h_child = [&](int occ) { return u.Affine(var_h, out.t, occ + 1); };

    auto cnt_of_head_literal = [&]() -> Literal {
      PredId cnt = cnt_of.at(rule.head.pred);
      std::vector<TermId> args = {var_i, var_k, var_h};
      for (TermId arg : BoundArgs(rule.head, head_ad)) args.push_back(arg);
      return Literal{cnt, std::move(args)};
    };
    // Theta_k: the (indexed, if bound-adorned) version of body occurrence k.
    auto body_literal = [&](int occ, CountingLiteralMeta* lm) -> Literal {
      const Literal& lit = rule.body[occ];
      lm->occurrence = occ;
      if (IsBoundAdorned(u, lit.pred)) {
        PredId indexed = out.indexed_of.at(lit.pred);
        std::vector<TermId> args = {i_plus_1, k_child, h_child(occ)};
        for (TermId arg : lit.args) args.push_back(arg);
        return Literal{indexed, std::move(args)};
      }
      return lit;
    };

    // Needed-variable sets for trimming (as in GSMS).
    std::vector<std::vector<SymbolId>> needed_from(n + 2);
    {
      std::vector<SymbolId> acc = LiteralVariables(u, rule.head);
      needed_from[n + 1] = acc;
      for (size_t j = n; j >= 1; --j) {
        AppendLiteralVariables(u, rule.body[j - 1], &acc);
        needed_from[j] = acc;
      }
    }
    std::vector<std::vector<SymbolId>> phi(m_last + 1);
    if (m_last >= 1) {
      std::vector<SymbolId> raw;
      for (TermId arg : BoundArgs(rule.head, head_ad)) {
        u.terms().AppendVariables(arg, &raw);
      }
      for (size_t j = 1; j <= m_last; ++j) {
        if (j >= 2) AppendLiteralVariables(u, rule.body[j - 2], &raw);
        if (options.trim_variables) {
          for (SymbolId v : raw) {
            if (ContainsSym(needed_from[j], v)) phi[j].push_back(v);
          }
        } else {
          phi[j] = raw;
        }
      }
    }

    std::vector<PredId> sup_pred(m_last + 1, kInvalidPred);
    auto get_sup_pred = [&](size_t j) -> PredId {
      if (sup_pred[j] != kInvalidPred) return sup_pred[j];
      std::string name =
          "supcnt_" + std::to_string(ri + 1) + "_" + std::to_string(j);
      uint32_t arity = 3 + static_cast<uint32_t>(phi[j].size());
      SymbolId sym = u.UniquePredicateName(name, arity);
      PredId id = u.predicates().Declare(sym, arity, PredKind::kSupCounting);
      PredicateInfo& pinfo = u.predicates().mutable_info(id);
      pinfo.parent = rule.head.pred;
      pinfo.index_fields = 3;
      sup_pred[j] = id;
      return id;
    };
    auto sup_literal = [&](size_t j) -> Literal {
      std::vector<TermId> args = {var_i, var_k, var_h};
      for (SymbolId v : phi[j]) args.push_back(u.terms().MakeVariable(v));
      return Literal{get_sup_pred(j), std::move(args)};
    };
    auto prefix_literal = [&](size_t j, CountingLiteralMeta* lm) -> Literal {
      if (j == 1 && options.inline_first_supplementary) {
        lm->is_cnt_of_head = true;
        return cnt_of_head_literal();
      }
      lm->is_supp = true;
      return sup_literal(j);
    };

    // Supplementary counting rules.
    for (size_t j = 1; j <= m_last; ++j) {
      if (j == 1) {
        if (options.inline_first_supplementary) continue;
        Rule sup_rule;
        CountingRuleMeta meta;
        meta.adorned_rule = static_cast<int>(ri);
        meta.sup_index = 1;
        sup_rule.head = sup_literal(1);
        sup_rule.body.push_back(cnt_of_head_literal());
        CountingLiteralMeta lm;
        lm.is_cnt_of_head = true;
        meta.body.push_back(lm);
        sup_rule.provenance = {RuleOrigin::kSupplementary,
                               static_cast<int>(ri), 1};
        add_rule(std::move(sup_rule), std::move(meta));
        continue;
      }
      Rule sup_rule;
      CountingRuleMeta meta;
      meta.adorned_rule = static_cast<int>(ri);
      meta.sup_index = static_cast<int>(j);
      sup_rule.head = sup_literal(j);
      CountingLiteralMeta prefix_meta;
      sup_rule.body.push_back(prefix_literal(j - 1, &prefix_meta));
      meta.body.push_back(prefix_meta);
      CountingLiteralMeta body_meta;
      sup_rule.body.push_back(
          body_literal(static_cast<int>(j) - 2, &body_meta));
      meta.body.push_back(body_meta);
      sup_rule.provenance = {RuleOrigin::kSupplementary, static_cast<int>(ri),
                             static_cast<int>(j)};
      add_rule(std::move(sup_rule), std::move(meta));
    }

    // Counting rules: cnt_q(I+1, K*m+i, H*t+p, theta_p^b) :- supcnt_p.
    for (size_t occ = 0; occ < n; ++occ) {
      const Literal& target = rule.body[occ];
      if (!IsBoundAdorned(u, target.pred)) continue;
      if (!sip.HasArcInto(static_cast<int>(occ))) continue;
      Rule cnt_rule;
      CountingRuleMeta meta;
      meta.adorned_rule = static_cast<int>(ri);
      meta.target_occurrence = static_cast<int>(occ);
      PredId cnt = cnt_of.at(target.pred);
      std::vector<TermId> head_args = {i_plus_1, k_child,
                                       h_child(static_cast<int>(occ))};
      for (TermId arg : BoundArgs(target, PredAdornment(u, target.pred))) {
        head_args.push_back(arg);
      }
      cnt_rule.head = Literal{cnt, std::move(head_args)};
      CountingLiteralMeta prefix_meta;
      cnt_rule.body.push_back(prefix_literal(occ + 1, &prefix_meta));
      meta.body.push_back(prefix_meta);
      cnt_rule.provenance = {RuleOrigin::kMagicRule, static_cast<int>(ri),
                             static_cast<int>(occ)};
      add_rule(std::move(cnt_rule), std::move(meta));
    }

    // Modified rule.
    Rule modified;
    CountingRuleMeta meta;
    meta.adorned_rule = static_cast<int>(ri);
    modified.provenance = {RuleOrigin::kModifiedRule, static_cast<int>(ri),
                           -1};
    if (head_indexed) {
      PredId indexed = out.indexed_of.at(rule.head.pred);
      std::vector<TermId> head_args = {var_i, var_k, var_h};
      for (TermId arg : rule.head.args) head_args.push_back(arg);
      modified.head = Literal{indexed, std::move(head_args)};
    } else {
      modified.head = rule.head;
    }
    if (m_last == 0) {
      if (head_indexed) {
        modified.body.push_back(cnt_of_head_literal());
        CountingLiteralMeta lm;
        lm.is_cnt_of_head = true;
        meta.body.push_back(lm);
      }
      for (size_t occ = 0; occ < n; ++occ) {
        CountingLiteralMeta lm;
        modified.body.push_back(body_literal(static_cast<int>(occ), &lm));
        meta.body.push_back(lm);
      }
    } else {
      CountingLiteralMeta prefix_meta;
      modified.body.push_back(prefix_literal(m_last, &prefix_meta));
      meta.body.push_back(prefix_meta);
      for (size_t occ = m_last - 1; occ < n; ++occ) {
        CountingLiteralMeta lm;
        modified.body.push_back(body_literal(static_cast<int>(occ), &lm));
        meta.body.push_back(lm);
      }
    }
    add_rule(std::move(modified), std::move(meta));
  }

  SeedTemplate seed;
  seed.pred = cnt_of.at(adorned.query_pred);
  seed.counting = true;
  out.rewritten.seed = seed;
  out.rewritten.answer_pred = out.indexed_of.at(adorned.query_pred);
  out.rewritten.answer_index_fields = 3;
  out.rewritten.answer_positions.resize(adorned.query.goal.args.size());
  for (size_t i = 0; i < out.rewritten.answer_positions.size(); ++i) {
    out.rewritten.answer_positions[i] = static_cast<int>(i) + 3;
  }
  return out;
}

}  // namespace magic
