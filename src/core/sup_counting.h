#ifndef MAGIC_CORE_SUP_COUNTING_H_
#define MAGIC_CORE_SUP_COUNTING_H_

#include "core/counting.h"

namespace magic {

struct SupCountingOptions {
  /// Replace supcnt_1 (a copy of cnt_p_ind^a) by cnt_p_ind^a itself.
  bool inline_first_supplementary = true;
  /// Trim supplementary argument lists to the variables still needed.
  bool trim_variables = true;
};

/// Generalized Supplementary Counting (paper, Section 7): the counting
/// method with the duplicate prefix joins stored in supplementary counting
/// predicates supcnt_j^r(I,K,H,phi_j). Theorem 7.1: equivalent to P^ad after
/// projecting out the index fields.
Result<CountingProgram> SupplementaryCountingRewrite(
    const AdornedProgram& adorned, const SupCountingOptions& options = {});

}  // namespace magic

#endif  // MAGIC_CORE_SUP_COUNTING_H_
