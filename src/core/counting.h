#ifndef MAGIC_CORE_COUNTING_H_
#define MAGIC_CORE_COUNTING_H_

#include "core/rewrite_common.h"

namespace magic {

struct CountingOptions {
  GuardMode guard_mode = GuardMode::kProp42;
};

/// Per-literal provenance inside a counting-rewritten rule, used by the
/// Section 8 optimizations.
struct CountingLiteralMeta {
  /// The body occurrence of the originating adorned rule this literal stands
  /// for (index into that rule's sip-ordered body), or -1.
  int occurrence = -1;
  /// cnt_p_ind^a(I,K,H,chi^b) for the rule head's node p_h.
  bool is_cnt_of_head = false;
  /// A supplementary counting literal (GSC only).
  bool is_supp = false;
  /// A cnt guard literal for `occurrence` (GuardMode::kFull only).
  bool is_cnt_guard = false;
};

struct CountingRuleMeta {
  RuleOrigin origin = RuleOrigin::kModifiedRule;
  int adorned_rule = -1;
  /// For counting rules: the occurrence whose subqueries the rule generates.
  int target_occurrence = -1;
  /// For GSC supplementary rules: the 1-based supplementary index j.
  int sup_index = -1;
  std::vector<CountingLiteralMeta> body;
};

/// A counting-rewritten program: the rewritten rules plus the metadata and
/// the copy of the adorned program (for sip arcs) that the semijoin
/// optimizer consumes.
struct CountingProgram {
  RewrittenProgram rewritten;
  AdornedProgram adorned;
  /// Encoding bases: m = number of adorned rules (1-based rule numbers),
  /// t = maximum body length (1-based occurrence positions). This matches
  /// the paper's appendix (K*m+i, H*t+j with i,j starting at 1 covers
  /// consecutive integer blocks injectively).
  int m = 0;
  int t = 0;
  /// Parallel to rewritten.program.rules().
  std::vector<CountingRuleMeta> meta;
  /// adorned pred -> indexed version p_ind^a (only bound-adorned preds).
  std::unordered_map<PredId, PredId> indexed_of;
  /// Non-index argument positions of each indexed predicate that are still
  /// present (the semijoin optimization deletes bound positions).
  std::unordered_map<PredId, std::vector<int>> kept_positions;
};

/// Generalized Counting (paper, Section 6): generalized magic sets with
/// three index arguments (I, K, H) encoding the derivation path — I the
/// level, K the rule path (base m), H the occurrence path (base t). Index
/// expressions are affine terms that the evaluator both computes and
/// inverts. Equivalence (Theorem 6.1) holds after projecting out the index
/// fields; the indices enable the Section 8 optimizations but may diverge
/// on cyclic data (Theorem 10.3).
///
/// Fails with InvalidArgument for sips the counting method cannot encode
/// (an arc whose tail contains neither the head node nor an indexed
/// occurrence leaves the index variables unbound).
Result<CountingProgram> CountingRewrite(const AdornedProgram& adorned,
                                        const CountingOptions& options = {});

}  // namespace magic

#endif  // MAGIC_CORE_COUNTING_H_
