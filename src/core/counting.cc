#include "core/counting.h"

#include <algorithm>
#include <string>

#include "util/check.h"

namespace magic {

namespace {

/// Declares the indexed version p_ind^a (arity 3 + n) of an adorned pred.
PredId GetOrCreateIndexedPred(Universe& u, PredId pred,
                              std::unordered_map<PredId, PredId>* cache) {
  auto it = cache->find(pred);
  if (it != cache->end()) return it->second;
  // Copy: Declare below may reallocate the predicate table.
  const PredicateInfo info = u.predicates().info(pred);
  // Insert "_ind" before the adornment suffix: sg_bf -> sg_ind_bf.
  std::string base = u.symbols().Name(info.name);
  std::string suffix = "_" + info.adornment.ToString();
  if (base.size() > suffix.size() &&
      base.compare(base.size() - suffix.size(), suffix.size(), suffix) == 0) {
    base = base.substr(0, base.size() - suffix.size()) + "_ind" + suffix;
  } else {
    base += "_ind";
  }
  uint32_t arity = info.arity + 3;
  SymbolId sym = u.UniquePredicateName(base, arity);
  PredId id = u.predicates().Declare(sym, arity, PredKind::kDerived);
  PredicateInfo& pinfo = u.predicates().mutable_info(id);
  pinfo.parent = pred;
  pinfo.adornment = info.adornment;
  pinfo.index_fields = 3;
  cache->emplace(pred, id);
  return id;
}

/// Declares cnt_p_ind^a (arity 3 + #bound) for an adorned pred.
PredId GetOrCreateCntPred(Universe& u, PredId pred, PredId indexed,
                          std::unordered_map<PredId, PredId>* cache) {
  auto it = cache->find(pred);
  if (it != cache->end()) return it->second;
  // Copy: Declare below may reallocate the predicate table.
  const PredicateInfo indexed_info = u.predicates().info(indexed);
  std::string name = "cnt_" + u.symbols().Name(indexed_info.name);
  uint32_t arity =
      3 + static_cast<uint32_t>(indexed_info.adornment.bound_count());
  SymbolId sym = u.UniquePredicateName(name, arity);
  PredId id = u.predicates().Declare(sym, arity, PredKind::kCounting);
  PredicateInfo& pinfo = u.predicates().mutable_info(id);
  pinfo.parent = pred;
  pinfo.adornment = indexed_info.adornment;
  pinfo.index_fields = 3;
  cache->emplace(pred, id);
  return id;
}

}  // namespace

Result<CountingProgram> CountingRewrite(const AdornedProgram& adorned,
                                        const CountingOptions& options) {
  const auto& universe = adorned.program.universe();
  Universe& u = *universe;

  CountingProgram out;
  out.adorned = adorned;
  out.rewritten.program = Program(universe);
  out.rewritten.strategy_name = "generalized-counting";
  out.m = static_cast<int>(adorned.program.rules().size());
  out.t = 0;
  for (const Rule& rule : adorned.program.rules()) {
    out.t = std::max(out.t, static_cast<int>(rule.body.size()));
  }
  if (out.t == 0) out.t = 1;

  std::unordered_map<PredId, PredId>& cnt_of = out.rewritten.magic_of;

  if (adorned.query_adornment.bound_count() == 0) {
    return Status::InvalidArgument(
        "counting requires a query with bound arguments (the indices encode "
        "the path from the seed)");
  }

  // Pre-create indexed/cnt versions for every bound-adorned predicate so
  // body literals can be rewritten uniformly.
  for (const auto& [key, pred] : adorned.adorned_preds) {
    if (IsBoundAdorned(u, pred)) {
      PredId indexed = GetOrCreateIndexedPred(u, pred, &out.indexed_of);
      GetOrCreateCntPred(u, pred, indexed, &cnt_of);
      const PredicateInfo& info = u.predicates().info(pred);
      std::vector<int> kept(info.arity);
      for (uint32_t i = 0; i < info.arity; ++i) kept[i] = static_cast<int>(i);
      out.kept_positions[indexed] = std::move(kept);
    }
  }

  auto add_rule = [&](Rule rule, CountingRuleMeta meta) {
    meta.origin = rule.provenance.origin;
    MAGIC_CHECK(meta.body.size() == rule.body.size());
    out.rewritten.program.AddRule(std::move(rule));
    out.meta.push_back(std::move(meta));
  };

  for (size_t ri = 0; ri < adorned.program.rules().size(); ++ri) {
    const Rule& rule = adorned.program.rules()[ri];
    MAGIC_CHECK_MSG(rule.sip.has_value(), "adorned rules must carry sips");
    const SipGraph& sip = *rule.sip;
    const int rule_number = static_cast<int>(ri) + 1;  // 1-based, as printed
    std::vector<std::vector<bool>> precedes =
        SipPrecedes(sip, rule.body.size());
    const Adornment head_ad = PredAdornment(u, rule.head.pred);  // copy: Declare below reallocates
    const bool head_indexed = IsBoundAdorned(u, rule.head.pred);

    // Fresh index variables for this adorned rule's generated rules.
    TermId var_i = u.FreshVariable("I");
    TermId var_k = u.FreshVariable("K");
    TermId var_h = u.FreshVariable("H");
    TermId i_plus_1 = u.Affine(var_i, 1, 1);
    TermId k_child = u.Affine(var_k, out.m, rule_number);
    auto h_child = [&](int occ) {  // occ is 0-based; positions are 1-based
      return u.Affine(var_h, out.t, occ + 1);
    };

    // cnt_p_ind^a(I, K, H, chi^b) — the head node's counting literal.
    auto cnt_of_head_literal = [&]() -> Literal {
      MAGIC_CHECK_MSG(head_indexed,
                      "sip tail contains p_h but the head has no bound "
                      "arguments");
      PredId cnt = cnt_of.at(rule.head.pred);
      std::vector<TermId> args = {var_i, var_k, var_h};
      for (TermId arg : BoundArgs(rule.head, head_ad)) args.push_back(arg);
      return Literal{cnt, std::move(args)};
    };
    // q_ind^{a_k}(I+1, K*m+i, H*t+pos, theta_k) for an indexed occurrence.
    auto indexed_literal = [&](int occ) -> Literal {
      const Literal& lit = rule.body[occ];
      PredId indexed = out.indexed_of.at(lit.pred);
      std::vector<TermId> args = {i_plus_1, k_child, h_child(occ)};
      for (TermId arg : lit.args) args.push_back(arg);
      return Literal{indexed, std::move(args)};
    };
    auto cnt_guard_literal = [&](int occ) -> Literal {
      const Literal& lit = rule.body[occ];
      PredId cnt = cnt_of.at(lit.pred);
      std::vector<TermId> args = {i_plus_1, k_child, h_child(occ)};
      for (TermId arg : BoundArgs(lit, PredAdornment(u, lit.pred))) {
        args.push_back(arg);
      }
      return Literal{cnt, std::move(args)};
    };

    // Counting rules, one per indexed occurrence with an incoming arc.
    for (size_t occ = 0; occ < rule.body.size(); ++occ) {
      const Literal& target = rule.body[occ];
      if (!IsBoundAdorned(u, target.pred)) continue;
      std::vector<int> arcs = sip.ArcsInto(static_cast<int>(occ));
      if (arcs.empty()) continue;
      // Merge multi-arc tails: the counting rule joins all tails (the
      // label-predicate indirection of GMS is unnecessary because the body
      // literals join directly on the index fields).
      std::vector<int> members;
      for (int arc_idx : arcs) {
        for (int member : sip.arcs[arc_idx].tail) {
          if (std::find(members.begin(), members.end(), member) ==
              members.end()) {
            members.push_back(member);
          }
        }
      }
      std::sort(members.begin(), members.end());

      Rule cnt_rule;
      CountingRuleMeta meta;
      meta.adorned_rule = static_cast<int>(ri);
      meta.target_occurrence = static_cast<int>(occ);
      PredId cnt = cnt_of.at(target.pred);
      std::vector<TermId> head_args = {i_plus_1, k_child,
                                       h_child(static_cast<int>(occ))};
      for (TermId arg : BoundArgs(target, PredAdornment(u, target.pred))) {
        head_args.push_back(arg);
      }
      cnt_rule.head = Literal{cnt, std::move(head_args)};
      cnt_rule.provenance = {RuleOrigin::kMagicRule, static_cast<int>(ri),
                             static_cast<int>(occ)};

      bool index_vars_bound = false;
      std::vector<int> holders;
      for (int member : members) {
        if (member == kSipHead) {
          cnt_rule.body.push_back(cnt_of_head_literal());
          CountingLiteralMeta lm;
          lm.is_cnt_of_head = true;
          meta.body.push_back(lm);
          holders.push_back(kSipHead);
          index_vars_bound = true;
          continue;
        }
        const Literal& qlit = rule.body[member];
        if (IsBoundAdorned(u, qlit.pred)) {
          if (WantGuard(options.guard_mode, precedes, holders, member)) {
            cnt_rule.body.push_back(cnt_guard_literal(member));
            CountingLiteralMeta lm;
            lm.occurrence = member;
            lm.is_cnt_guard = true;
            meta.body.push_back(lm);
            holders.push_back(member);
          }
          cnt_rule.body.push_back(indexed_literal(member));
          CountingLiteralMeta lm;
          lm.occurrence = member;
          meta.body.push_back(lm);
          index_vars_bound = true;
        } else {
          cnt_rule.body.push_back(qlit);
          CountingLiteralMeta lm;
          lm.occurrence = member;
          meta.body.push_back(lm);
        }
      }
      if (!index_vars_bound) {
        return Status::InvalidArgument(
            "counting cannot encode this sip: the arc into occurrence " +
            std::to_string(occ + 1) + " of rule " +
            std::to_string(rule_number) +
            " binds no index variables (tail has neither p_h nor an indexed "
            "occurrence)");
      }
      add_rule(std::move(cnt_rule), std::move(meta));
    }

    // Modified rule.
    Rule modified;
    CountingRuleMeta meta;
    meta.adorned_rule = static_cast<int>(ri);
    modified.provenance = {RuleOrigin::kModifiedRule, static_cast<int>(ri),
                           -1};
    if (head_indexed) {
      PredId indexed = out.indexed_of.at(rule.head.pred);
      std::vector<TermId> head_args = {var_i, var_k, var_h};
      for (TermId arg : rule.head.args) head_args.push_back(arg);
      modified.head = Literal{indexed, std::move(head_args)};
      modified.body.push_back(cnt_of_head_literal());
      CountingLiteralMeta lm;
      lm.is_cnt_of_head = true;
      meta.body.push_back(lm);
    } else {
      modified.head = rule.head;
    }
    for (size_t occ = 0; occ < rule.body.size(); ++occ) {
      const Literal& lit = rule.body[occ];
      if (IsBoundAdorned(u, lit.pred)) {
        if (!head_indexed) {
          return Status::InvalidArgument(
              "counting cannot encode rule " + std::to_string(rule_number) +
              ": an indexed body occurrence under a head without bound "
              "arguments leaves the index variables unbound");
        }
        modified.body.push_back(indexed_literal(static_cast<int>(occ)));
      } else {
        modified.body.push_back(lit);
      }
      CountingLiteralMeta lm;
      lm.occurrence = static_cast<int>(occ);
      meta.body.push_back(lm);
    }
    add_rule(std::move(modified), std::move(meta));
  }

  // Seed and answer bookkeeping.
  SeedTemplate seed;
  seed.pred = cnt_of.at(adorned.query_pred);
  seed.counting = true;
  out.rewritten.seed = seed;
  out.rewritten.answer_pred = out.indexed_of.at(adorned.query_pred);
  out.rewritten.answer_index_fields = 3;
  out.rewritten.answer_positions.resize(adorned.query.goal.args.size());
  for (size_t i = 0; i < out.rewritten.answer_positions.size(); ++i) {
    out.rewritten.answer_positions[i] = static_cast<int>(i) + 3;
  }
  return out;
}

}  // namespace magic
