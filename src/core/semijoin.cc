#include "core/semijoin.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>

#include "util/check.h"

namespace magic {

namespace {

/// A (literal, argument) slot within one rule; literal index -1 is the head.
struct Slot {
  int literal = 0;
  int arg = 0;
  bool operator<(const Slot& other) const {
    return literal != other.literal ? literal < other.literal
                                    : arg < other.arg;
  }
  bool operator==(const Slot&) const = default;
};

uint32_t IndexFieldsOf(const Universe& u, PredId pred) {
  return u.predicates().info(pred).index_fields;
}

bool IsIndexedDerived(const Universe& u, PredId pred) {
  const PredicateInfo& info = u.predicates().info(pred);
  return info.kind == PredKind::kDerived && info.index_fields == 3;
}

/// All slots in `rule` (skipping index arguments) where variable `v` occurs.
std::vector<Slot> VarSlots(const Universe& u, const Rule& rule, SymbolId v) {
  std::vector<Slot> slots;
  auto scan = [&](const Literal& lit, int lit_index) {
    uint32_t skip = IndexFieldsOf(u, lit.pred);
    for (size_t a = skip; a < lit.args.size(); ++a) {
      if (u.terms().ContainsVariable(lit.args[a], v)) {
        slots.push_back(Slot{lit_index, static_cast<int>(a)});
      }
    }
  };
  scan(rule.head, -1);
  for (size_t i = 0; i < rule.body.size(); ++i) {
    scan(rule.body[i], static_cast<int>(i));
  }
  return slots;
}

/// Variables in the non-index arguments of `lit`.
std::vector<SymbolId> NonIndexVars(const Universe& u, const Literal& lit) {
  std::vector<SymbolId> vars;
  uint32_t skip = IndexFieldsOf(u, lit.pred);
  for (size_t a = skip; a < lit.args.size(); ++a) {
    u.terms().AppendVariables(lit.args[a], &vars);
  }
  return vars;
}

/// Working context over a CountingProgram.
class Optimizer {
 public:
  Optimizer(CountingProgram* cp, SemijoinStats* stats)
      : cp_(*cp), u_(*cp->rewritten.program.universe()), stats_(stats) {}

  Status Run() {
    bool changed = true;
    while (changed) {
      changed = false;
      if (Lemma81Pass()) changed = true;
      if (BlockPass()) changed = true;
      if (RetrimSupplementaries()) changed = true;
    }
    return FinalCheck();
  }

 private:
  std::vector<Rule>& rules() { return cp_.rewritten.program.rules(); }

  /// Bound argument slots of an indexed literal: 3 + j for each kept
  /// position j that the predicate's adornment marks bound.
  std::vector<int> BoundArgSlots(PredId pred) const {
    const PredicateInfo& info = u_.predicates().info(pred);
    const std::vector<int>& kept = cp_.kept_positions.at(pred);
    std::vector<int> out;
    for (size_t j = 0; j < kept.size(); ++j) {
      if (info.adornment.bound(static_cast<size_t>(kept[j]))) {
        out.push_back(3 + static_cast<int>(j));
      }
    }
    return out;
  }

  /// Union of arc tails into `occ` of the sip of adorned rule `ar`.
  std::vector<int> ArcTailUnion(int ar, int occ) const {
    const Rule& adorned_rule = cp_.adorned.program.rules()[ar];
    std::vector<int> members;
    for (const SipArc& arc : adorned_rule.sip->arcs) {
      if (arc.target != occ) continue;
      for (int m : arc.tail) {
        if (std::find(members.begin(), members.end(), m) == members.end()) {
          members.push_back(m);
        }
      }
    }
    return members;
  }

  /// Indices of the body literals of rule `rc` that stand for the tail N of
  /// the arc(s) into the occurrence represented by body literal `lb`.
  std::vector<int> PresentNLiterals(int rc, int lb) const {
    const CountingRuleMeta& meta = cp_.meta[rc];
    const CountingLiteralMeta& lm = meta.body[lb];
    if (lm.occurrence < 0 || meta.adorned_rule < 0) return {};
    std::vector<int> members = ArcTailUnion(meta.adorned_rule, lm.occurrence);
    if (members.empty()) return {};
    bool has_ph =
        std::find(members.begin(), members.end(), kSipHead) != members.end();
    std::vector<int> result;
    for (size_t b = 0; b < meta.body.size(); ++b) {
      if (static_cast<int>(b) == lb) continue;
      const CountingLiteralMeta& bm = meta.body[b];
      if (bm.is_cnt_of_head && has_ph) {
        result.push_back(static_cast<int>(b));
      } else if (bm.is_supp) {
        // A supplementary literal stores the prefix join, which subsumes
        // every tail member (p_h and earlier occurrences).
        result.push_back(static_cast<int>(b));
      } else if (bm.occurrence >= 0 &&
                 std::find(members.begin(), members.end(), bm.occurrence) !=
                     members.end()) {
        result.push_back(static_cast<int>(b));
      }
    }
    return result;
  }

  /// True if every occurrence of `v` in `rule` lies in `allowed`.
  bool Confined(const Rule& rule, SymbolId v,
                const std::set<Slot>& allowed) const {
    for (const Slot& slot : VarSlots(u_, rule, v)) {
      if (allowed.find(slot) == allowed.end()) return false;
    }
    return true;
  }

  /// All non-index slots of body literal `b`.
  void AddLiteralSlots(const Rule& rule, int b, std::set<Slot>* allowed) const {
    const Literal& lit = rule.body[b];
    uint32_t skip = IndexFieldsOf(u_, lit.pred);
    for (size_t a = skip; a < lit.args.size(); ++a) {
      allowed->insert(Slot{b, static_cast<int>(a)});
    }
  }

  // ---- Lemma 8.1 ----------------------------------------------------------

  bool Lemma81Pass() {
    bool changed = false;
    for (size_t rc = 0; rc < rules().size(); ++rc) {
      bool rule_changed = true;
      while (rule_changed) {
        rule_changed = false;
        Rule& rule = rules()[rc];
        CountingRuleMeta& meta = cp_.meta[rc];
        for (size_t lb = 0; lb < rule.body.size(); ++lb) {
          const CountingLiteralMeta& lm = meta.body[lb];
          if (lm.is_cnt_guard || lm.is_supp || lm.is_cnt_of_head) continue;
          if (lm.occurrence < 0) continue;
          if (!IsIndexedDerived(u_, rule.body[lb].pred)) continue;
          std::vector<int> n_lits =
              PresentNLiterals(static_cast<int>(rc), static_cast<int>(lb));
          if (n_lits.empty()) continue;

          // Condition: every variable of the N literals occurs only within
          // the N literals or in bound arguments of the target.
          std::set<Slot> allowed;
          for (int b : n_lits) AddLiteralSlots(rule, b, &allowed);
          for (int arg : BoundArgSlots(rule.body[lb].pred)) {
            allowed.insert(Slot{static_cast<int>(lb), arg});
          }
          std::vector<SymbolId> n_vars;
          for (int b : n_lits) {
            for (SymbolId v : NonIndexVars(u_, rule.body[b])) {
              if (std::find(n_vars.begin(), n_vars.end(), v) == n_vars.end()) {
                n_vars.push_back(v);
              }
            }
          }
          bool pass = true;
          for (SymbolId v : n_vars) {
            if (!Confined(rule, v, allowed)) {
              pass = false;
              break;
            }
          }
          if (!pass) continue;

          DeleteBodyLiterals(static_cast<int>(rc), n_lits);
          changed = true;
          rule_changed = true;
          break;  // body indices shifted; rescan this rule
        }
      }
    }
    return changed;
  }

  // ---- Theorem 8.3 --------------------------------------------------------

  bool BlockPass() {
    bool changed = false;
    for (const std::vector<PredId>& block : IndexedBlocks()) {
      if (TryBlock(block)) changed = true;
    }
    return changed;
  }

  /// SCCs of the indexed predicates under "head depends on body" edges.
  std::vector<std::vector<PredId>> IndexedBlocks() const {
    std::vector<PredId> preds;
    for (const auto& [adorned, indexed] : cp_.indexed_of) {
      preds.push_back(indexed);
    }
    std::sort(preds.begin(), preds.end());
    auto index_of = [&](PredId p) -> int {
      auto it = std::lower_bound(preds.begin(), preds.end(), p);
      if (it == preds.end() || *it != p) return -1;
      return static_cast<int>(it - preds.begin());
    };
    const size_t n = preds.size();
    std::vector<std::vector<bool>> reach(n, std::vector<bool>(n, false));
    for (const Rule& rule : cp_.rewritten.program.rules()) {
      int h = index_of(rule.head.pred);
      if (h < 0) continue;
      for (const Literal& lit : rule.body) {
        int b = index_of(lit.pred);
        if (b >= 0) reach[h][b] = true;
      }
    }
    for (size_t k = 0; k < n; ++k) {
      for (size_t i = 0; i < n; ++i) {
        if (!reach[i][k]) continue;
        for (size_t j = 0; j < n; ++j) {
          if (reach[k][j]) reach[i][j] = true;
        }
      }
    }
    std::vector<bool> used(n, false);
    std::vector<std::vector<PredId>> blocks;
    for (size_t i = 0; i < n; ++i) {
      if (used[i]) continue;
      std::vector<PredId> block = {preds[i]};
      used[i] = true;
      for (size_t j = i + 1; j < n; ++j) {
        if (!used[j] && reach[i][j] && reach[j][i]) {
          block.push_back(preds[j]);
          used[j] = true;
        }
      }
      blocks.push_back(std::move(block));
    }
    return blocks;
  }

  bool TryBlock(const std::vector<PredId>& block) {
    auto in_block = [&](PredId p) {
      return std::find(block.begin(), block.end(), p) != block.end();
    };
    // Anything to drop?
    bool any_bound = false;
    for (PredId p : block) {
      if (!BoundArgSlots(p).empty()) any_bound = true;
    }
    if (!any_bound) return false;

    // Deletions to perform on success: rule -> N-literal body indices.
    std::map<int, std::set<int>> deletions;

    for (size_t rc = 0; rc < rules().size(); ++rc) {
      const Rule& rule = rules()[rc];
      const bool head_in_block = in_block(rule.head.pred);
      std::set<Slot> head_bound_slots;
      if (head_in_block) {
        for (int arg : BoundArgSlots(rule.head.pred)) {
          head_bound_slots.insert(Slot{-1, arg});
        }
      }
      for (size_t lb = 0; lb < rule.body.size(); ++lb) {
        const Literal& lit = rule.body[lb];
        if (!in_block(lit.pred)) continue;
        const CountingLiteralMeta& lm = cp_.meta[rc].body[lb];
        if (lm.is_cnt_guard) continue;  // guards mirror their literal
        std::vector<int> bound_slots = BoundArgSlots(lit.pred);
        if (bound_slots.empty()) continue;
        std::vector<int> n_lits =
            PresentNLiterals(static_cast<int>(rc), static_cast<int>(lb));

        // Condition (1): bound-argument variables of the block literal are
        // confined to {same literal's bound args, head's bound args (when
        // the head is in the block), the N literals}.
        std::set<Slot> allowed = head_bound_slots;
        for (int arg : bound_slots) {
          allowed.insert(Slot{static_cast<int>(lb), arg});
        }
        for (int b : n_lits) AddLiteralSlots(rule, b, &allowed);
        std::vector<SymbolId> bvars;
        for (int arg : bound_slots) {
          u_.terms().AppendVariables(lit.args[arg], &bvars);
        }
        for (SymbolId v : bvars) {
          if (!Confined(rule, v, allowed)) return false;
        }

        // Condition (2), and deletion scheduling, in rules defining a block
        // predicate. An empty present-N is the Lemma 8.2 case (the bound
        // arguments join nothing here; the indices carry the correlation),
        // so conditions are vacuous and there is nothing to delete.
        if (head_in_block && !n_lits.empty()) {
          std::set<Slot> allowed2 = head_bound_slots;
          for (int arg : bound_slots) {
            allowed2.insert(Slot{static_cast<int>(lb), arg});
          }
          for (int b : n_lits) AddLiteralSlots(rule, b, &allowed2);
          for (int b : n_lits) {
            for (SymbolId v : NonIndexVars(u_, rule.body[b])) {
              if (!Confined(rule, v, allowed2)) return false;
            }
          }
          for (int b : n_lits) deletions[static_cast<int>(rc)].insert(b);
        }
      }
    }

    // Commit: delete scheduled literals, then drop the bound positions.
    for (auto it = deletions.rbegin(); it != deletions.rend(); ++it) {
      std::vector<int> body_indices(it->second.begin(), it->second.end());
      DeleteBodyLiterals(it->first, body_indices);
    }
    for (PredId p : block) {
      DropBoundPositions(p);
    }
    if (stats_ != nullptr) ++stats_->blocks_optimized;
    return true;
  }

  // ---- Supplementary re-trimming ------------------------------------------

  bool RetrimSupplementaries() {
    bool changed = false;
    // Collect supplementary predicates present in the program.
    std::vector<PredId> supps;
    for (const Rule& rule : rules()) {
      PredId h = rule.head.pred;
      if (u_.predicates().info(h).kind == PredKind::kSupCounting &&
          std::find(supps.begin(), supps.end(), h) == supps.end()) {
        supps.push_back(h);
      }
    }
    for (PredId s : supps) {
      const PredicateInfo& info = u_.predicates().info(s);
      // A non-index position is dead when no rule that reads `s` in its body
      // uses the variable found there anywhere else.
      std::vector<bool> dead(info.arity, false);
      for (uint32_t pos = 3; pos < info.arity; ++pos) dead[pos] = true;
      for (size_t rc = 0; rc < rules().size(); ++rc) {
        const Rule& rule = rules()[rc];
        for (size_t lb = 0; lb < rule.body.size(); ++lb) {
          const Literal& lit = rule.body[lb];
          if (lit.pred != s) continue;
          for (uint32_t pos = 3; pos < info.arity; ++pos) {
            if (!dead[pos]) continue;
            std::vector<SymbolId> vars;
            u_.terms().AppendVariables(lit.args[pos], &vars);
            for (SymbolId v : vars) {
              // Used if v occurs anywhere outside this argument slot.
              for (const Slot& slot : VarSlots(u_, rule, v)) {
                if (slot.literal == static_cast<int>(lb) &&
                    slot.arg == static_cast<int>(pos)) {
                  continue;
                }
                dead[pos] = false;
                break;
              }
              if (!dead[pos]) break;
            }
          }
        }
      }
      std::vector<int> dropped;
      for (uint32_t pos = 3; pos < info.arity; ++pos) {
        if (dead[pos]) dropped.push_back(static_cast<int>(pos));
      }
      if (dropped.empty()) continue;
      ReplacePredDroppingArgs(s, dropped, PredKind::kSupCounting);
      if (stats_ != nullptr) {
        stats_->supplementary_positions_trimmed +=
            static_cast<int>(dropped.size());
      }
      changed = true;
    }
    return changed;
  }

  // ---- Commit helpers ------------------------------------------------------

  void DeleteBodyLiterals(int rc, std::vector<int> body_indices) {
    std::sort(body_indices.begin(), body_indices.end());
    Rule& rule = rules()[rc];
    CountingRuleMeta& meta = cp_.meta[rc];
    for (auto it = body_indices.rbegin(); it != body_indices.rend(); ++it) {
      rule.body.erase(rule.body.begin() + *it);
      meta.body.erase(meta.body.begin() + *it);
      if (stats_ != nullptr) ++stats_->literals_deleted;
    }
  }

  /// Drops the bound kept positions of indexed predicate `pred`, replacing
  /// it program-wide by a narrower predicate with the same name.
  void DropBoundPositions(PredId pred) {
    std::vector<int> arg_slots = BoundArgSlots(pred);
    if (arg_slots.empty()) return;
    const PredicateInfo info = u_.predicates().info(pred);  // copy
    PredId adorned = info.parent;

    std::vector<int> old_kept = cp_.kept_positions.at(pred);
    std::vector<int> new_kept;
    for (size_t j = 0; j < old_kept.size(); ++j) {
      if (!info.adornment.bound(static_cast<size_t>(old_kept[j]))) {
        new_kept.push_back(old_kept[j]);
      }
    }

    PredId narrowed =
        ReplacePredDroppingArgs(pred, arg_slots, PredKind::kDerived);
    cp_.kept_positions.erase(pred);
    cp_.kept_positions[narrowed] = new_kept;
    cp_.indexed_of[adorned] = narrowed;

    if (cp_.rewritten.answer_pred == pred) {
      cp_.rewritten.answer_pred = narrowed;
      for (size_t p = 0; p < cp_.rewritten.answer_positions.size(); ++p) {
        int col = -1;
        for (size_t j = 0; j < new_kept.size(); ++j) {
          if (new_kept[j] == static_cast<int>(p)) {
            col = 3 + static_cast<int>(j);
            break;
          }
        }
        cp_.rewritten.answer_positions[p] = col;
      }
    }
    if (stats_ != nullptr) {
      stats_->argument_positions_dropped += static_cast<int>(arg_slots.size());
    }
  }

  /// Declares a narrower replacement for `pred` without the given argument
  /// slots and rewrites every head/body literal. Returns the new predicate.
  PredId ReplacePredDroppingArgs(PredId pred, const std::vector<int>& slots,
                                 PredKind kind) {
    const PredicateInfo info = u_.predicates().info(pred);  // copy
    uint32_t new_arity = info.arity - static_cast<uint32_t>(slots.size());
    SymbolId sym =
        u_.UniquePredicateName(u_.symbols().Name(info.name), new_arity);
    PredId narrowed = u_.predicates().Declare(sym, new_arity, kind);
    PredicateInfo& ninfo = u_.predicates().mutable_info(narrowed);
    ninfo.parent = info.parent;
    ninfo.adornment = info.adornment;
    ninfo.index_fields = info.index_fields;

    auto rewrite = [&](Literal* lit) {
      if (lit->pred != pred) return;
      std::vector<TermId> args;
      for (size_t a = 0; a < lit->args.size(); ++a) {
        if (std::find(slots.begin(), slots.end(), static_cast<int>(a)) ==
            slots.end()) {
          args.push_back(lit->args[a]);
        }
      }
      lit->pred = narrowed;
      lit->args = std::move(args);
    };
    for (Rule& rule : rules()) {
      rewrite(&rule.head);
      for (Literal& lit : rule.body) rewrite(&lit);
    }
    if (cp_.rewritten.seed.has_value() && cp_.rewritten.seed->pred == pred) {
      cp_.rewritten.seed->pred = narrowed;
    }
    return narrowed;
  }

  Status FinalCheck() const {
    const Universe& u = u_;
    for (size_t rc = 0; rc < cp_.rewritten.program.rules().size(); ++rc) {
      const Rule& rule = cp_.rewritten.program.rules()[rc];
      std::vector<SymbolId> body_vars;
      for (const Literal& lit : rule.body) {
        AppendLiteralVariables(u, lit, &body_vars);
      }
      for (SymbolId v : LiteralVariables(u, rule.head)) {
        if (std::find(body_vars.begin(), body_vars.end(), v) ==
            body_vars.end()) {
          return Status::Internal(
              "semijoin optimization broke range restriction in rule " +
              std::to_string(rc) + " (variable '" + u.symbols().Name(v) +
              "')");
        }
      }
    }
    return Status::OK();
  }

  CountingProgram& cp_;
  Universe& u_;
  SemijoinStats* stats_;
};

}  // namespace

Result<CountingProgram> ApplySemijoinOptimization(const CountingProgram& input,
                                                  SemijoinStats* stats) {
  CountingProgram out = input;
  SemijoinStats local;
  Optimizer optimizer(&out, stats != nullptr ? stats : &local);
  MAGIC_RETURN_IF_ERROR(optimizer.Run());
  out.rewritten.strategy_name += "+semijoin";
  return out;
}

}  // namespace magic
