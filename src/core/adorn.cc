#include "core/adorn.h"

#include <deque>

#include "util/check.h"

namespace magic {

namespace {

bool ContainsSym(const std::vector<SymbolId>& vars, SymbolId v) {
  for (SymbolId x : vars) {
    if (x == v) return true;
  }
  return false;
}

}  // namespace

Result<AdornedProgram> Adorn(const Program& program, const Query& query,
                             SipStrategy& strategy) {
  const auto& universe = program.universe();
  Universe& u = *universe;

  if (query.goal.pred == kInvalidPred) {
    return Status::InvalidArgument("query has no predicate");
  }
  if (!program.IsHeadPredicate(query.goal.pred)) {
    return Status::InvalidArgument(
        "query predicate is not derived by the program; base-predicate "
        "queries are answered directly from the database");
  }

  AdornedProgram out;
  out.program = Program(universe);
  out.query = query;
  out.query_adornment = QueryAdornment(u, query);

  std::deque<std::pair<PredId, Adornment>> worklist;

  // Creates (once) the adorned version of `base` for adornment `a` and
  // schedules it for rule generation.
  auto adorned_pred_for = [&](PredId base, const Adornment& a) -> PredId {
    auto key = std::make_pair(base, a.ToString());
    auto it = out.adorned_preds.find(key);
    if (it != out.adorned_preds.end()) return it->second;
    const PredicateInfo& info = u.predicates().info(base);
    std::string name = u.symbols().Name(info.name) + "_" + a.ToString();
    SymbolId sym = u.UniquePredicateName(name, info.arity);
    PredId id = u.predicates().Declare(sym, info.arity, PredKind::kDerived);
    PredicateInfo& pinfo = u.predicates().mutable_info(id);
    pinfo.parent = base;
    pinfo.adornment = a;
    out.adorned_preds.emplace(std::move(key), id);
    worklist.emplace_back(base, a);
    return id;
  };

  out.query_pred = adorned_pred_for(query.goal.pred, out.query_adornment);

  while (!worklist.empty()) {
    auto [base, head_adornment] = worklist.front();
    worklist.pop_front();
    PredId head_pred =
        out.adorned_preds.at(std::make_pair(base, head_adornment.ToString()));

    for (int ri : program.RulesFor(base)) {
      const Rule& rule = program.rules()[ri];
      Result<SipGraph> sip_result =
          strategy.BuildSip(u, rule, head_adornment, program);
      if (!sip_result.ok()) return sip_result.status();
      SipGraph sip = std::move(*sip_result);
      MAGIC_RETURN_IF_ERROR(ValidateSip(u, rule, head_adornment, sip));
      MAGIC_CHECK_MSG(sip.order.size() == rule.body.size(),
                      "sip strategies must produce a total order");

      // New physical position of each original occurrence.
      std::vector<int> new_pos(rule.body.size());
      for (size_t i = 0; i < sip.order.size(); ++i) {
        new_pos[sip.order[i]] = static_cast<int>(i);
      }

      Rule adorned_rule;
      adorned_rule.head = Literal{head_pred, rule.head.args};
      adorned_rule.provenance.origin = RuleOrigin::kOriginal;

      for (int old_occ : sip.order) {
        const Literal& lit = rule.body[old_occ];
        Literal new_lit = lit;
        if (program.IsHeadPredicate(lit.pred)) {
          // chi_i: the union of the labels of arcs entering this occurrence.
          std::vector<SymbolId> chi;
          bool has_arc = false;
          for (const SipArc& arc : sip.arcs) {
            if (arc.target != old_occ) continue;
            has_arc = true;
            for (SymbolId v : arc.label) {
              if (!ContainsSym(chi, v)) chi.push_back(v);
            }
          }
          Adornment body_adornment = Adornment::AllFree(lit.args.size());
          if (has_arc) {
            for (size_t a = 0; a < lit.args.size(); ++a) {
              std::vector<SymbolId> arg_vars;
              u.terms().AppendVariables(lit.args[a], &arg_vars);
              bool all_in_chi = true;
              for (SymbolId v : arg_vars) {
                if (!ContainsSym(chi, v)) {
                  all_in_chi = false;
                  break;
                }
              }
              // Ground arguments (no variables) count as bound when the
              // occurrence receives bindings at all.
              if (all_in_chi) body_adornment.set_bound(a);
            }
          }
          new_lit.pred = adorned_pred_for(lit.pred, body_adornment);
        }
        adorned_rule.body.push_back(std::move(new_lit));
      }

      // Remap the sip onto the reordered body.
      SipGraph remapped;
      for (const SipArc& arc : sip.arcs) {
        SipArc na;
        na.label = arc.label;
        na.target = new_pos[arc.target];
        for (int member : arc.tail) {
          na.tail.push_back(member == kSipHead ? kSipHead : new_pos[member]);
        }
        remapped.arcs.push_back(std::move(na));
      }
      remapped.order.resize(rule.body.size());
      for (size_t i = 0; i < rule.body.size(); ++i) {
        remapped.order[i] = static_cast<int>(i);
      }
      adorned_rule.sip = std::move(remapped);

      int idx = out.program.AddRule(std::move(adorned_rule));
      out.program.rules()[idx].provenance.adorned_rule = idx;
    }
  }

  return out;
}

}  // namespace magic
