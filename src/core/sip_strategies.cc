#include "core/sip_strategies.h"

#include <algorithm>
#include <set>

#include "util/check.h"

namespace magic {

namespace {

bool Contains(const std::vector<SymbolId>& vars, SymbolId v) {
  return std::find(vars.begin(), vars.end(), v) != vars.end();
}

void AddUnique(std::vector<SymbolId>* vars, SymbolId v) {
  if (!Contains(*vars, v)) vars->push_back(v);
}

std::vector<SymbolId> HeadBoundVars(const Universe& u, const Rule& rule,
                                    const Adornment& head) {
  std::vector<SymbolId> vars;
  for (size_t i = 0; i < rule.head.args.size() && i < head.size(); ++i) {
    if (head.bound(i)) u.terms().AppendVariables(rule.head.args[i], &vars);
  }
  return vars;
}

/// The label a set of available variables can pass to `target`: variables
/// from `available` appearing in arguments of `target` that are fully
/// covered by `available` (condition (2)(iii); partially bound arguments
/// are treated as free).
std::vector<SymbolId> CoverLabel(const Universe& u, const Literal& target,
                                 const std::vector<SymbolId>& available) {
  std::vector<SymbolId> label;
  for (TermId arg : target.args) {
    std::vector<SymbolId> arg_vars;
    u.terms().AppendVariables(arg, &arg_vars);
    if (arg_vars.empty()) continue;
    bool covered = true;
    for (SymbolId v : arg_vars) {
      if (!Contains(available, v)) {
        covered = false;
        break;
      }
    }
    if (covered) {
      for (SymbolId v : arg_vars) AddUnique(&label, v);
    }
  }
  return label;
}

/// Trims a candidate tail to the members connected to the label variables
/// within the tail's own variable-sharing graph (condition (2)(ii)).
/// `member_vars[i]` are the variables of candidate member i; member index
/// kSipHead is passed via a separate entry.
std::vector<int> ConnectedTail(const std::vector<int>& members,
                               const std::vector<std::vector<SymbolId>>& vars,
                               const std::vector<SymbolId>& label) {
  // Fixpoint: start from the label variables, absorb members sharing a
  // variable with the connected set, add their variables, repeat.
  std::set<SymbolId> connected(label.begin(), label.end());
  std::vector<bool> in_tail(members.size(), false);
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < members.size(); ++i) {
      if (in_tail[i]) continue;
      bool touches = false;
      for (SymbolId v : vars[i]) {
        if (connected.count(v) > 0) {
          touches = true;
          break;
        }
      }
      if (touches) {
        in_tail[i] = true;
        changed = true;
        for (SymbolId v : vars[i]) connected.insert(v);
      }
    }
  }
  std::vector<int> tail;
  for (size_t i = 0; i < members.size(); ++i) {
    if (in_tail[i]) tail.push_back(members[i]);
  }
  return tail;
}

/// Shared engine for order-based full sips: walks `order`, accumulating
/// available variables, and emits one compressed arc per derived occurrence
/// that can receive bindings.
Result<SipGraph> BuildFullSipAlongOrder(const Universe& u, const Rule& rule,
                                        const Adornment& head,
                                        const Program& program,
                                        const std::vector<int>& order) {
  SipGraph sip;
  std::vector<SymbolId> head_bound = HeadBoundVars(u, rule, head);
  std::vector<SymbolId> available = head_bound;

  // Candidate tail members seen so far: kSipHead (if it has variables) plus
  // processed occurrences, with their variable sets.
  std::vector<int> members;
  std::vector<std::vector<SymbolId>> member_vars;
  if (!head_bound.empty()) {
    members.push_back(kSipHead);
    member_vars.push_back(head_bound);
  }

  for (int occ : order) {
    const Literal& lit = rule.body[occ];
    bool derived = program.IsHeadPredicate(lit.pred);
    if (derived) {
      std::vector<SymbolId> label = CoverLabel(u, lit, available);
      if (!label.empty()) {
        SipArc arc;
        arc.label = std::move(label);
        arc.tail = ConnectedTail(members, member_vars, arc.label);
        arc.target = occ;
        MAGIC_CHECK_MSG(!arc.tail.empty(), "label variables must have sources");
        sip.arcs.push_back(std::move(arc));
      }
    }
    std::vector<SymbolId> vars = LiteralVariables(u, lit);
    for (SymbolId v : vars) AddUnique(&available, v);
    members.push_back(occ);
    member_vars.push_back(std::move(vars));
  }

  // The traversal order is compatible with the arcs built along it; keep it
  // (rather than the canonical participants-first order) so strategies that
  // deliberately reorder the body (greedy) see their order realized.
  Result<std::vector<int>> total = ComputeSipOrder(rule.body.size(), sip);
  if (!total.ok()) return total.status();
  sip.order = order;
  return sip;
}

}  // namespace

Result<SipGraph> FullSipStrategy::BuildSip(const Universe& u, const Rule& rule,
                                           const Adornment& head,
                                           const Program& program) {
  std::vector<int> order(rule.body.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  return BuildFullSipAlongOrder(u, rule, head, program, order);
}

Result<SipGraph> ChainSipStrategy::BuildSip(const Universe& u,
                                            const Rule& rule,
                                            const Adornment& head,
                                            const Program& program) {
  // The paper's sip (II) in generalized notation (V): the tail of the arc
  // into a derived occurrence is the *previous* derived occurrence (or the
  // head node for the first one) together with the base literals between
  // them — "past" bindings are not carried along, which makes this a
  // partial sip.
  SipGraph sip;
  std::vector<SymbolId> head_bound = HeadBoundVars(u, rule, head);

  int prev_derived = kSipHead;
  for (size_t occ = 0; occ < rule.body.size(); ++occ) {
    const Literal& lit = rule.body[occ];
    if (!program.IsHeadPredicate(lit.pred)) continue;

    std::vector<int> members;
    std::vector<std::vector<SymbolId>> member_vars;
    std::vector<SymbolId> available;
    if (prev_derived == kSipHead) {
      if (!head_bound.empty()) {
        members.push_back(kSipHead);
        member_vars.push_back(head_bound);
        for (SymbolId v : head_bound) AddUnique(&available, v);
      }
    } else {
      members.push_back(prev_derived);
      std::vector<SymbolId> vars = LiteralVariables(u, rule.body[prev_derived]);
      for (SymbolId v : vars) AddUnique(&available, v);
      member_vars.push_back(std::move(vars));
    }
    int from = prev_derived == kSipHead ? 0 : prev_derived + 1;
    for (int j = from; j < static_cast<int>(occ); ++j) {
      if (program.IsHeadPredicate(rule.body[j].pred)) continue;
      members.push_back(j);
      std::vector<SymbolId> vars = LiteralVariables(u, rule.body[j]);
      for (SymbolId v : vars) AddUnique(&available, v);
      member_vars.push_back(std::move(vars));
    }

    std::vector<SymbolId> label = CoverLabel(u, lit, available);
    if (!label.empty()) {
      SipArc arc;
      arc.label = std::move(label);
      arc.tail = ConnectedTail(members, member_vars, arc.label);
      arc.target = static_cast<int>(occ);
      if (!arc.tail.empty()) sip.arcs.push_back(std::move(arc));
    }
    prev_derived = static_cast<int>(occ);
  }

  Result<std::vector<int>> total = ComputeSipOrder(rule.body.size(), sip);
  if (!total.ok()) return total.status();
  sip.order = *total;
  return sip;
}

Result<SipGraph> HeadOnlySipStrategy::BuildSip(const Universe& u,
                                               const Rule& rule,
                                               const Adornment& head,
                                               const Program& program) {
  SipGraph sip;
  std::vector<SymbolId> head_bound = HeadBoundVars(u, rule, head);
  if (!head_bound.empty()) {
    for (size_t occ = 0; occ < rule.body.size(); ++occ) {
      const Literal& lit = rule.body[occ];
      if (!program.IsHeadPredicate(lit.pred)) continue;
      std::vector<SymbolId> label = CoverLabel(u, lit, head_bound);
      if (!label.empty()) {
        sip.arcs.push_back(
            SipArc{{kSipHead}, std::move(label), static_cast<int>(occ)});
      }
    }
  }
  Result<std::vector<int>> total = ComputeSipOrder(rule.body.size(), sip);
  if (!total.ok()) return total.status();
  sip.order = *total;
  return sip;
}

Result<SipGraph> EmptySipStrategy::BuildSip(const Universe& u,
                                            const Rule& rule,
                                            const Adornment& head,
                                            const Program& program) {
  (void)u;
  (void)head;
  (void)program;
  SipGraph sip;
  sip.order.resize(rule.body.size());
  for (size_t i = 0; i < sip.order.size(); ++i) {
    sip.order[i] = static_cast<int>(i);
  }
  return sip;
}

Result<SipGraph> GreedySipStrategy::BuildSip(const Universe& u,
                                             const Rule& rule,
                                             const Adornment& head,
                                             const Program& program) {
  const size_t n = rule.body.size();
  std::vector<SymbolId> available = HeadBoundVars(u, rule, head);
  std::vector<bool> placed(n, false);
  std::vector<int> order;
  order.reserve(n);

  for (size_t step = 0; step < n; ++step) {
    int best = -1;
    int best_score = -1;
    for (size_t i = 0; i < n; ++i) {
      if (placed[i]) continue;
      const Literal& lit = rule.body[i];
      int bound_args = 0;
      for (TermId arg : lit.args) {
        std::vector<SymbolId> arg_vars;
        u.terms().AppendVariables(arg, &arg_vars);
        if (arg_vars.empty()) continue;
        bool covered = true;
        for (SymbolId v : arg_vars) {
          if (std::find(available.begin(), available.end(), v) ==
              available.end()) {
            covered = false;
            break;
          }
        }
        if (covered) ++bound_args;
      }
      // Prefer more bound arguments; break ties in favour of base literals
      // (directly evaluable), then written order.
      int score = bound_args * 4 +
                  (program.IsHeadPredicate(lit.pred) ? 0 : 2);
      if (score > best_score) {
        best_score = score;
        best = static_cast<int>(i);
      }
    }
    placed[best] = true;
    order.push_back(best);
    std::vector<SymbolId> vars = LiteralVariables(u, rule.body[best]);
    for (SymbolId v : vars) AddUnique(&available, v);
  }
  return BuildFullSipAlongOrder(u, rule, head, program, order);
}

std::unique_ptr<SipStrategy> MakeSipStrategy(const std::string& name) {
  if (name == "full-left-to-right" || name == "full") {
    return std::make_unique<FullSipStrategy>();
  }
  if (name == "chain") return std::make_unique<ChainSipStrategy>();
  if (name == "head-only") return std::make_unique<HeadOnlySipStrategy>();
  if (name == "empty") return std::make_unique<EmptySipStrategy>();
  if (name == "greedy") return std::make_unique<GreedySipStrategy>();
  return nullptr;
}

}  // namespace magic
