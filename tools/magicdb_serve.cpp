// magicdb-serve — TCP server speaking the magicdb line protocol.
//
//   magicdb-serve [options] <program.dl>
//
// Options:
//   --host H             bind address (default 127.0.0.1)
//   --port P             port; 0 binds ephemeral (default 4617). The
//                        chosen endpoint prints as one line on stdout:
//                        `magicdb-serve listening on HOST:PORT`
//   --threads N          worker threads (default: hardware)
//   --max-connections N  socket-level admission bound (default 64)
//   --cache-bytes N      AnswerCache byte budget (default 64 MiB)
//   --no-cache           disable cross-query answer memoization
//   --strategy NAME      default evaluation strategy (default gsms)
//   --sip NAME           default sip strategy
//   --facts DIR          load <pred>.facts TSV files from DIR
//   --stats              print serving statistics on shutdown
//
// The protocol (PREPARE/QUERY/STREAM/APPLY/STATS/METRICS/CLOSE) is
// documented in src/net/session.h; magicdb-cli is the matching client. SIGINT/SIGTERM
// shut down cleanly: stop accepting, disconnect sessions, join threads,
// then print `magicdb-serve: clean shutdown`.
//
// This binary is `magicdb serve` minus the subcommand wrapper — both call
// net::RunServeMain, so flags and behavior cannot drift.

#include <cstdio>
#include <cstring>
#include <optional>
#include <string>

#include "engine/query_engine.h"
#include "net/bootstrap.h"

int main(int argc, char** argv) {
  using namespace magic;
  net::ServeBootstrap bootstrap;
  bootstrap.server.port = 4617;
  auto usage = [] {
    std::fprintf(
        stderr,
        "usage: magicdb-serve [--host H] [--port P] [--threads N] "
        "[--max-connections N] [--cache-bytes N|--no-cache] "
        "[--strategy S] [--sip NAME] [--facts DIR] [--stats] program.dl\n");
    return 2;
  };
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--host") {
      const char* v = value();
      if (v == nullptr) return usage();
      bootstrap.server.host = v;
    } else if (arg == "--port") {
      const char* v = value();
      if (v == nullptr) return usage();
      bootstrap.server.port =
          static_cast<uint16_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--threads") {
      const char* v = value();
      if (v == nullptr) return usage();
      bootstrap.service.num_threads = std::strtoull(v, nullptr, 10);
    } else if (arg == "--max-connections") {
      const char* v = value();
      if (v == nullptr) return usage();
      bootstrap.server.max_connections = std::strtoull(v, nullptr, 10);
    } else if (arg == "--cache-bytes") {
      const char* v = value();
      if (v == nullptr) return usage();
      bootstrap.service.cache_bytes = std::strtoull(v, nullptr, 10);
    } else if (arg == "--no-cache") {
      bootstrap.service.cache_bytes = 0;
    } else if (arg == "--strategy") {
      const char* v = value();
      if (v == nullptr) return usage();
      std::optional<Strategy> strategy = StrategyFromName(v);
      if (!strategy.has_value()) {
        std::fprintf(stderr, "magicdb-serve: unknown strategy: %s\n", v);
        return 2;
      }
      bootstrap.service.engine.strategy = *strategy;
    } else if (arg == "--sip") {
      const char* v = value();
      if (v == nullptr) return usage();
      bootstrap.service.engine.sip = v;
    } else if (arg == "--facts") {
      const char* v = value();
      if (v == nullptr) return usage();
      bootstrap.facts_dir = v;
    } else if (arg == "--stats") {
      bootstrap.stats = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "magicdb-serve: unknown option: %s\n",
                   arg.c_str());
      return usage();
    } else {
      bootstrap.program_path = arg;
    }
  }
  if (bootstrap.program_path.empty()) {
    std::fprintf(stderr, "magicdb-serve: no program file given\n");
    return usage();
  }
  return net::RunServeMain(bootstrap);
}
