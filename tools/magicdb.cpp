// magicdb — command-line driver for the library.
//
//   magicdb [options] <program.dl>
//
// Options:
//   --query "anc(john, Y)"   query (overrides a ?- clause in the file)
//   --batch FILE             serve every query in FILE (one per line)
//                            concurrently through QueryService
//   --threads N              worker threads for --batch (default: hardware)
//   --strategy NAME          naive | seminaive | gms | gsms | gc | gsc |
//                            gc+sj | gsc+sj | topdown     (default gsms)
//   --sip NAME               full | chain | head-only | empty | greedy
//   --guards MODE            full | prop42 | ph-only      (default prop42)
//   --facts DIR              load <pred>.facts TSV files from DIR
//   --explain                print the adorned + rewritten programs
//   --safety                 print the Section 10 static safety verdicts
//   --check-safety           refuse strategies the static analysis rejects
//   --stats                  print evaluation statistics
//   --max-facts N            evaluation budget (default 10M)
//   --limit N                stop each query after N answer rows
//   --deadline-ms N          per-query evaluation deadline
//   --cache-bytes N          AnswerCache byte budget for --batch/--serve
//                            (default 64 MiB; repeated seeds serve warm)
//   --no-cache               disable cross-query answer memoization
//   --apply FILE             with --batch: serve the batch, apply the
//                            +fact/-fact mutations in FILE to the LIVE
//                            service (QueryService::ApplyWrites), then
//                            serve the batch again on the mutated EDB
//   --serve                  interactive mode: read lines from stdin —
//                            "+fact." inserts, "-fact." retracts (both via
//                            ApplyWrites, no restart), anything else is a
//                            query served through the service. New
//                            constants are fine; new predicate names are
//                            rejected (the live service's predicate table
//                            is frozen under its compiled plans)
//
// Batch answers stream through AnswerCursor as they are derived (chunked,
// in derivation order, not sorted); single-query answers stay sorted. The
// exit status is nonzero when any query fails (including deadline expiry;
// hitting --limit is a success). Every strategy — including naive,
// seminaive, and topdown — is compiled once per query form and served
// concurrently across the worker pool (there is no serialized fallback
// path), and all of them share the AnswerCache. EDB mutations go through
// the service's write seam: in-flight queries drain, the batch applies
// atomically, and the answer cache invalidates by epoch — reads after an
// apply always see the mutated database.
//
// Examples:
//   magicdb --strategy gms --explain --stats family.dl
//   magicdb --batch queries.txt --threads 8 --stats family.dl
//   magicdb --query "anc(c0, Y)" --limit 1 --deadline-ms 50 family.dl
//   magicdb --batch queries.txt --apply edits.txt --stats family.dl
//   printf '+par(c3,c4).\nanc(c0, Y)\n' | magicdb --serve family.dl

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include "analysis/safety.h"
#include "ast/parser.h"
#include "ast/printer.h"
#include "engine/query_engine.h"
#include "engine/query_service.h"
#include "storage/fact_io.h"
#include "storage/write_batch.h"
#include "util/stopwatch.h"

namespace {

using namespace magic;

struct Args {
  std::string program_path;
  std::string query_text;
  std::string batch_path;
  std::string apply_path;
  std::string facts_dir;
  size_t threads = 0;  // 0 = hardware concurrency
  size_t cache_bytes = QueryServiceOptions{}.cache_bytes;
  EngineOptions options;
  QueryLimits limits;
  bool serve = false;
  bool explain = false;
  bool safety = false;
  bool stats = false;
  bool ok = true;
  std::string error;
};

Args ParseArgs(int argc, char** argv) {
  Args args;
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      args.ok = false;
      args.error = std::string("missing value for ") + argv[i];
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--query") {
      if (const char* v = need_value(i)) args.query_text = v;
    } else if (arg == "--batch") {
      if (const char* v = need_value(i)) args.batch_path = v;
    } else if (arg == "--threads") {
      if (const char* v = need_value(i)) {
        char* end = nullptr;
        unsigned long long threads = std::strtoull(v, &end, 10);
        if (*v == '\0' || *v == '-' || *end != '\0' || threads > 4096) {
          args.ok = false;
          args.error = "bad --threads value: " + std::string(v);
        } else {
          args.threads = static_cast<size_t>(threads);
        }
      }
    } else if (arg == "--strategy") {
      if (const char* v = need_value(i)) {
        // One shared name<->enum table with the library (StrategyName's
        // inverse), so the CLI cannot drift from the engine.
        if (std::optional<Strategy> strategy = StrategyFromName(v)) {
          args.options.strategy = *strategy;
        } else {
          args.ok = false;
          args.error = "unknown strategy: " + std::string(v);
        }
      }
    } else if (arg == "--sip") {
      if (const char* v = need_value(i)) args.options.sip = v;
    } else if (arg == "--guards") {
      if (const char* v = need_value(i)) {
        std::string mode = v;
        if (mode == "full") {
          args.options.guard_mode = GuardMode::kFull;
        } else if (mode == "prop42") {
          args.options.guard_mode = GuardMode::kProp42;
        } else if (mode == "ph-only") {
          args.options.guard_mode = GuardMode::kPhOnly;
        } else {
          args.ok = false;
          args.error = "unknown guard mode: " + mode;
        }
      }
    } else if (arg == "--facts") {
      if (const char* v = need_value(i)) args.facts_dir = v;
    } else if (arg == "--explain") {
      args.explain = true;
      args.options.explain = true;
    } else if (arg == "--safety") {
      args.safety = true;
    } else if (arg == "--check-safety") {
      args.options.static_safety_check = true;
    } else if (arg == "--stats") {
      args.stats = true;
    } else if (arg == "--max-facts") {
      if (const char* v = need_value(i)) {
        args.options.eval.max_facts = std::strtoull(v, nullptr, 10);
      }
    } else if (arg == "--limit") {
      if (const char* v = need_value(i)) {
        args.limits.row_limit = std::strtoull(v, nullptr, 10);
      }
    } else if (arg == "--deadline-ms") {
      if (const char* v = need_value(i)) {
        args.limits.deadline =
            std::chrono::milliseconds(std::strtoull(v, nullptr, 10));
      }
    } else if (arg == "--cache-bytes") {
      if (const char* v = need_value(i)) {
        char* end = nullptr;
        unsigned long long bytes = std::strtoull(v, &end, 10);
        if (*v == '\0' || *v == '-' || *end != '\0') {
          args.ok = false;
          args.error = "bad --cache-bytes value: " + std::string(v);
        } else {
          args.cache_bytes = static_cast<size_t>(bytes);
        }
      }
    } else if (arg == "--no-cache") {
      args.cache_bytes = 0;
    } else if (arg == "--apply") {
      if (const char* v = need_value(i)) args.apply_path = v;
    } else if (arg == "--serve") {
      args.serve = true;
    } else if (arg.rfind("--", 0) == 0) {
      args.ok = false;
      args.error = "unknown option: " + arg;
    } else {
      args.program_path = arg;
    }
  }
  if (args.ok && args.program_path.empty()) {
    args.ok = false;
    args.error = "no program file given";
  }
  if (args.ok && (!args.batch_path.empty() || args.serve) &&
      (args.explain || args.safety || args.options.static_safety_check)) {
    args.ok = false;
    args.error =
        "--explain/--safety/--check-safety are not supported with "
        "--batch/--serve";
  }
  if (args.ok && !args.apply_path.empty() && args.batch_path.empty()) {
    args.ok = false;
    args.error = "--apply needs --batch (mutations apply to the live "
                 "service between two passes of the batch)";
  }
  if (args.ok && args.serve && !args.batch_path.empty()) {
    args.ok = false;
    args.error = "--serve and --batch are mutually exclusive";
  }
  return args;
}

/// Parses one mutation line — "+fact." inserts, "-fact." retracts, a bare
/// "fact." inserts — into `batch`. A missing trailing period is tolerated.
/// Parsing interns into the shared base Universe, whose contract is
/// two-tiered once compiled plans exist: new *constants* are safe anytime
/// the client side is quiescent (they are hash-consed terms; compilation
/// never interns constant symbols through an overlay, so no live plan can
/// alias them), but a new *predicate declaration* is not — its numeric id
/// would collide with a live plan overlay's ids through the shared
/// Database. --apply parses before the service exists, so anything goes
/// there; --serve enforces the predicate freeze per line (see RunServe).
bool ParseMutationLine(const std::string& text,
                       const std::shared_ptr<Universe>& universe,
                       WriteBatch* batch, std::string* error) {
  bool retract = false;
  size_t start = 0;
  if (text[start] == '+' || text[start] == '-') {
    retract = text[start] == '-';
    ++start;
  }
  std::string fact_text = text.substr(start);
  size_t last = fact_text.find_last_not_of(" \t\r");
  if (last == std::string::npos) {
    *error = "empty mutation";
    return false;
  }
  fact_text.resize(last + 1);
  if (fact_text.back() != '.') fact_text += '.';
  auto parsed = ParseUnit(fact_text, universe);
  if (!parsed.ok()) {
    *error = parsed.status().ToString();
    return false;
  }
  if (parsed->facts.empty() || !parsed->program.rules().empty() ||
      parsed->query.has_value()) {
    *error = "not a ground fact";
    return false;
  }
  for (const Fact& fact : parsed->facts) {
    if (retract) {
      batch->Retract(fact.pred, fact.args);
    } else {
      batch->Insert(fact.pred, fact.args);
    }
  }
  return true;
}

struct PassTotals {
  int failed = 0;
  int truncated = 0;
  size_t rows = 0;
};

/// Prints one tuple, tab-separated.
void PrintTuple(const Universe& u, const std::vector<TermId>& tuple) {
  std::string row;
  for (TermId term : tuple) {
    if (!row.empty()) row += "\t";
    row += u.TermToString(term);
  }
  std::printf("%s\n", row.c_str());
}

/// Serves every query of the batch concurrently through `service` and
/// prints each query's answers in input order, separated by `% query:`
/// headers. Each query streams through an AnswerCursor: rows print
/// chunk-by-chunk as the fixpoint derives them (derivation order,
/// deduplicated, not sorted) instead of waiting for the full materialized
/// answer set.
PassTotals ServeBatchPass(QueryService& service, const Args& args,
                          const std::vector<std::string>& lines,
                          const std::vector<Query>& queries, Universe& u) {
  std::vector<AnswerCursor> cursors;
  cursors.reserve(queries.size());
  for (const Query& query : queries) {
    QueryRequest request;
    request.query = query;
    request.limits = args.limits;
    cursors.push_back(service.Stream(request));
  }

  constexpr size_t kChunk = 64;
  PassTotals totals;
  std::vector<std::vector<TermId>> chunk;
  for (size_t i = 0; i < cursors.size(); ++i) {
    std::printf("%% query: %s\n", lines[i].c_str());
    std::vector<int> free_positions = QueryFreePositions(u, queries[i]);
    size_t rows = 0;
    while (cursors[i].Next(kChunk, &chunk)) {
      rows += chunk.size();
      if (free_positions.empty()) continue;  // boolean query: count only
      for (const auto& tuple : chunk) PrintTuple(u, tuple);
    }
    const QueryAnswer& answer = cursors[i].Finish();
    if (!answer.status.ok()) {
      std::printf("error: %s\n", answer.status.ToString().c_str());
      ++totals.failed;
      continue;
    }
    if (free_positions.empty()) {
      std::printf("%s\n", rows == 0 ? "false" : "true");
    }
    if (answer.truncated()) {
      std::printf("%% truncated after %zu row(s)\n", rows);
      ++totals.truncated;
    }
    totals.rows += rows;
  }
  return totals;
}

/// Reads an --apply file into one WriteBatch ("+fact." inserts, "-fact."
/// retracts, bare facts insert; blank lines and % comments skip).
bool LoadApplyFile(const std::string& path,
                   const std::shared_ptr<Universe>& universe,
                   WriteBatch* batch) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "magicdb: cannot open apply file %s\n",
                 path.c_str());
    return false;
  }
  std::string line;
  while (std::getline(in, line)) {
    size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos || line[start] == '%') continue;
    std::string error;
    if (!ParseMutationLine(line.substr(start), universe, batch, &error)) {
      std::fprintf(stderr, "magicdb: bad mutation \"%s\": %s\n",
                   line.c_str(), error.c_str());
      return false;
    }
  }
  return true;
}

int RunBatch(const Args& args, const ParsedUnit& parsed, Database& db) {
  std::ifstream in(args.batch_path);
  if (!in) {
    std::fprintf(stderr, "magicdb: cannot open batch file %s\n",
                 args.batch_path.c_str());
    return 1;
  }
  std::vector<std::string> lines;
  std::vector<Query> queries;
  std::string line;
  while (std::getline(in, line)) {
    size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos || line[start] == '%') continue;
    std::string text = line.substr(start);
    auto q = ParseUnit("?- " + text + ".", parsed.program.universe());
    if (!q.ok() || !q->query.has_value()) {
      std::fprintf(stderr, "magicdb: bad batch query \"%s\": %s\n",
                   text.c_str(),
                   q.ok() ? "not a query" : q.status().ToString().c_str());
      return 1;
    }
    lines.push_back(std::move(text));
    queries.push_back(*q->query);
  }
  if (queries.empty()) {
    std::fprintf(stderr, "magicdb: batch file has no queries\n");
    return 1;
  }

  // The --apply mutations are parsed up front (before the service exists)
  // because parsing may intern new constants into the shared Universe,
  // which must be quiescent once serving starts.
  WriteBatch edits;
  if (!args.apply_path.empty() &&
      !LoadApplyFile(args.apply_path, parsed.program.universe(), &edits)) {
    return 1;
  }

  QueryServiceOptions service_options;
  service_options.num_threads = args.threads;
  service_options.cache_bytes = args.cache_bytes;
  service_options.engine = args.options;
  QueryService service(parsed.program, db, service_options);

  Stopwatch watch;
  PassTotals totals = ServeBatchPass(service, args, lines, queries,
                                     *parsed.program.universe());
  size_t passes = 1;
  if (!args.apply_path.empty()) {
    // Apply to the LIVE service — no teardown, no rebuild. The write seam
    // drains in-flight work (the first pass already finished here, so the
    // drain is instant) and the epoch bump retires every cached answer
    // the mutations invalidated; the second pass shows the new database.
    auto applied = service.ApplyWrites(edits);
    if (!applied.ok()) {
      std::fprintf(stderr, "magicdb: apply failed: %s\n",
                   applied.status().ToString().c_str());
      return 1;
    }
    std::printf("%% applied %s: +%zu -%zu fact(s), %zu relation(s) mutated\n",
                args.apply_path.c_str(), applied->inserted,
                applied->retracted, applied->relations_mutated);
    PassTotals second = ServeBatchPass(service, args, lines, queries,
                                       *parsed.program.universe());
    totals.failed += second.failed;
    totals.truncated += second.truncated;
    totals.rows += second.rows;
    passes = 2;
  }
  double seconds = watch.ElapsedSeconds();
  if (args.stats) {
    // Counter details come from the one shared reporting path
    // (Stats::Summary) so this tool never re-aggregates by hand.
    QueryService::Stats stats = service.stats();
    std::fprintf(stderr,
                 "%% %zu quer(ies) on %zu thread(s) in %.3f ms (%.0f qps), "
                 "%zu row(s), %d truncated, %d failed\n%% %s\n",
                 queries.size() * passes, service.num_threads(),
                 seconds * 1e3,
                 static_cast<double>(queries.size() * passes) / seconds,
                 totals.rows, totals.truncated, totals.failed,
                 stats.Summary().c_str());
  }
  return totals.failed == 0 ? 0 : 1;
}

/// Interactive serving loop: queries and EDB mutations interleave on one
/// live service. Mutation lines ("+fact." / "-fact.") go through
/// ApplyWrites — the sanctioned in-band write path — so every later query
/// sees the mutated database, warm cache or not. The REPL is
/// single-threaded on the client side, so parsing (which may intern new
/// constants into the base Universe) always happens at a quiescent point.
int RunServe(const Args& args, const ParsedUnit& parsed, Database& db) {
  QueryServiceOptions service_options;
  service_options.num_threads = args.threads;
  service_options.cache_bytes = args.cache_bytes;
  service_options.engine = args.options;
  QueryService service(parsed.program, db, service_options);
  Universe& u = *parsed.program.universe();

  // Predicate freeze: compiled plans overlay the base predicate table, so
  // a predicate declared mid-session reuses a numeric id a live plan
  // already owns (and its EDB relation would shadow that plan's magic/
  // adorned predicates through the shared Database). New constants are
  // fine — hash-consed terms no plan can alias — so inserting fresh nodes
  // works; introducing a fresh *relation name* needs a restart. The
  // enforcement is by id range against the size frozen here, NOT by
  // detecting table growth: a stray declaration is permanent (and
  // harmless while unused), so the same line resubmitted must still be
  // rejected.
  const size_t frozen_preds = u.predicates().size();
  auto uses_frozen_out_predicate = [&](PredId pred) {
    if (pred < frozen_preds) return false;
    std::printf(
        "error: line uses a predicate declared after serving started; "
        "the live service's predicate table is frozen (new constants "
        "are fine, new relation names need a restart)\n");
    return true;
  };

  int failed = 0;
  std::string line;
  while (std::getline(std::cin, line)) {
    size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos || line[start] == '%') continue;
    std::string text = line.substr(start);
    if (text[0] == '+' || text[0] == '-') {
      WriteBatch batch;
      std::string error;
      if (!ParseMutationLine(text, parsed.program.universe(), &batch,
                             &error)) {
        std::printf("error: %s\n", error.c_str());
        ++failed;
        continue;
      }
      bool frozen_out = false;
      for (const WriteBatch::Op& op : batch.ops()) {
        if (uses_frozen_out_predicate(op.pred)) {
          frozen_out = true;
          break;
        }
      }
      if (frozen_out) {
        ++failed;
        continue;
      }
      auto applied = service.ApplyWrites(batch);
      if (!applied.ok()) {
        std::printf("error: %s\n", applied.status().ToString().c_str());
        ++failed;
        continue;
      }
      std::printf("%% applied: +%zu -%zu fact(s)\n", applied->inserted,
                  applied->retracted);
      continue;
    }
    size_t last = text.find_last_not_of(" \t\r.");
    if (last == std::string::npos) continue;
    text.resize(last + 1);
    auto q = ParseUnit("?- " + text + ".", parsed.program.universe());
    if (!q.ok() || !q->query.has_value()) {
      std::printf("error: bad query \"%s\": %s\n", text.c_str(),
                  q.ok() ? "not a query" : q.status().ToString().c_str());
      ++failed;
      continue;
    }
    if (uses_frozen_out_predicate(q->query->goal.pred)) {
      ++failed;
      continue;
    }
    std::printf("%% query: %s\n", text.c_str());
    QueryRequest request;
    request.query = *q->query;
    request.limits = args.limits;
    QueryAnswer answer = service.Submit(request).get();
    if (!answer.status.ok()) {
      std::printf("error: %s\n", answer.status.ToString().c_str());
      ++failed;
      continue;
    }
    if (QueryFreePositions(u, request.query).empty()) {
      std::printf("%s\n", answer.tuples.empty() ? "false" : "true");
    } else {
      for (const auto& tuple : answer.tuples) PrintTuple(u, tuple);
    }
    if (answer.truncated()) {
      std::printf("%% truncated after %zu row(s)\n", answer.tuples.size());
    }
  }
  if (args.stats) {
    std::fprintf(stderr, "%% %s\n", service.stats().Summary().c_str());
  }
  return failed == 0 ? 0 : 1;
}

int Run(const Args& args) {
  std::ifstream in(args.program_path);
  if (!in) {
    std::fprintf(stderr, "magicdb: cannot open %s\n",
                 args.program_path.c_str());
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();

  auto parsed = ParseUnit(buffer.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "magicdb: %s\n",
                 parsed.status().ToString().c_str());
    return 1;
  }
  for (const std::string& warning : ValidateProgram(parsed->program)) {
    std::fprintf(stderr, "magicdb: warning: %s\n", warning.c_str());
  }

  Database db(parsed->program.universe());
  for (const Fact& fact : parsed->facts) {
    if (Status st = db.AddFact(fact); !st.ok()) {
      std::fprintf(stderr, "magicdb: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  if (!args.facts_dir.empty()) {
    if (Status st = LoadFactsDirectory(parsed->program, args.facts_dir, &db);
        !st.ok()) {
      std::fprintf(stderr, "magicdb: %s\n", st.ToString().c_str());
      return 1;
    }
  }

  if (args.serve) {
    return RunServe(args, *parsed, db);
  }
  if (!args.batch_path.empty()) {
    return RunBatch(args, *parsed, db);
  }

  std::optional<Query> query = parsed->query;
  if (!args.query_text.empty()) {
    auto q = ParseUnit("?- " + args.query_text + ".",
                       parsed->program.universe());
    if (!q.ok() || !q->query.has_value()) {
      std::fprintf(stderr, "magicdb: bad --query: %s\n",
                   q.ok() ? "not a query" : q.status().ToString().c_str());
      return 1;
    }
    query = q->query;
  }
  if (!query.has_value()) {
    std::fprintf(stderr,
                 "magicdb: no query (add a ?- clause or pass --query)\n");
    return 1;
  }

  Universe& u = *parsed->program.universe();
  if (args.safety) {
    // Use a fresh parse so the report's adornment does not perturb the
    // predicate names of the main run.
    auto fresh = ParseUnit(buffer.str());
    std::optional<Query> fresh_query = fresh.ok() ? fresh->query : std::nullopt;
    if (fresh.ok() && !args.query_text.empty()) {
      auto q = ParseUnit("?- " + args.query_text + ".",
                         fresh->program.universe());
      if (q.ok()) fresh_query = q->query;
    }
    std::unique_ptr<SipStrategy> sip = MakeSipStrategy(args.options.sip);
    if (fresh.ok() && fresh_query.has_value() && sip != nullptr) {
      auto adorned = Adorn(fresh->program, *fresh_query, *sip);
      if (adorned.ok()) {
        SafetyReport magic_report = CheckMagicSafety(*adorned);
        SafetyReport counting_report = CheckCountingSafety(*adorned);
        std::printf("safety (magic):    %s\n",
                    SafetyVerdictName(magic_report.verdict).c_str());
        std::printf("safety (counting): %s\n",
                    SafetyVerdictName(counting_report.verdict).c_str());
      }
    }
  }

  QueryEngine engine(args.options);
  QueryAnswer answer = engine.Run(parsed->program, *query, db, args.limits);
  if (args.explain && !answer.rewritten_text.empty()) {
    std::printf("%% rewritten program (%s, sip=%s)\n%s%%\n",
                StrategyName(args.options.strategy).c_str(),
                args.options.sip.c_str(), answer.rewritten_text.c_str());
  }
  if (!answer.status.ok()) {
    std::fprintf(stderr, "magicdb: %s\n", answer.status.ToString().c_str());
    return 1;
  }
  std::vector<int> free_positions = QueryFreePositions(u, *query);
  if (free_positions.empty()) {
    std::printf("%s\n", answer.tuples.empty() ? "false" : "true");
  } else {
    for (const auto& tuple : answer.tuples) {
      std::string row;
      for (TermId term : tuple) {
        if (!row.empty()) row += "\t";
        row += u.TermToString(term);
      }
      std::printf("%s\n", row.c_str());
    }
  }
  if (answer.truncated()) {
    std::fprintf(stderr, "magicdb: truncated after %zu row(s) (--limit)\n",
                 answer.tuples.size());
  }
  if (args.stats) {
    std::fprintf(stderr,
                 "%% %zu answer(s), %zu fact(s) derived, %llu firing(s), "
                 "%llu probe(s), %.3f ms\n",
                 answer.tuples.size(), answer.total_facts,
                 static_cast<unsigned long long>(
                     answer.eval_stats.rule_firings),
                 static_cast<unsigned long long>(
                     answer.eval_stats.join_probes),
                 answer.eval_stats.seconds * 1e3);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args = ParseArgs(argc, argv);
  if (!args.ok) {
    std::fprintf(stderr, "magicdb: %s\n", args.error.c_str());
    std::fprintf(stderr,
                 "usage: magicdb [--query Q] [--batch FILE] [--apply FILE] "
                 "[--serve] [--threads N] "
                 "[--strategy S] [--sip NAME] "
                 "[--guards MODE] [--facts DIR] [--explain] [--safety] "
                 "[--check-safety] [--stats] [--max-facts N] [--limit N] "
                 "[--deadline-ms N] [--cache-bytes N] [--no-cache] "
                 "program.dl\n");
    return 2;
  }
  return Run(args);
}
