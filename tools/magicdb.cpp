// magicdb — command-line driver for the library.
//
//   magicdb [options] <program.dl>
//
// Options:
//   --query "anc(john, Y)"   query (overrides a ?- clause in the file)
//   --batch FILE             serve every query in FILE (one per line)
//                            concurrently through QueryService
//   --threads N              worker threads for --batch (default: hardware)
//   --strategy NAME          naive | seminaive | gms | gsms | gc | gsc |
//                            gc+sj | gsc+sj | topdown     (default gsms)
//   --sip NAME               full | chain | head-only | empty | greedy
//   --guards MODE            full | prop42 | ph-only      (default prop42)
//   --facts DIR              load <pred>.facts TSV files from DIR
//   --explain                print the adorned + rewritten programs
//   --safety                 print the Section 10 static safety verdicts
//   --check-safety           refuse strategies the static analysis rejects
//   --stats                  print evaluation statistics
//   --max-facts N            evaluation budget (default 10M)
//   --limit N                stop each query after N answer rows
//   --deadline-ms N          per-query evaluation deadline
//   --cache-bytes N          AnswerCache byte budget for --batch
//                            (default 64 MiB; repeated seeds serve warm)
//   --no-cache               disable cross-query answer memoization
//
// Batch answers stream through AnswerCursor as they are derived (chunked,
// in derivation order, not sorted); single-query answers stay sorted. The
// exit status is nonzero when any query fails (including deadline expiry;
// hitting --limit is a success). Every strategy — including naive,
// seminaive, and topdown — is compiled once per query form and served
// concurrently across the worker pool (there is no serialized fallback
// path), and all of them share the AnswerCache.
//
// Examples:
//   magicdb --strategy gms --explain --stats family.dl
//   magicdb --batch queries.txt --threads 8 --stats family.dl
//   magicdb --query "anc(c0, Y)" --limit 1 --deadline-ms 50 family.dl

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "analysis/safety.h"
#include "ast/parser.h"
#include "ast/printer.h"
#include "engine/query_engine.h"
#include "engine/query_service.h"
#include "storage/fact_io.h"
#include "util/stopwatch.h"

namespace {

using namespace magic;

struct Args {
  std::string program_path;
  std::string query_text;
  std::string batch_path;
  std::string facts_dir;
  size_t threads = 0;  // 0 = hardware concurrency
  size_t cache_bytes = QueryServiceOptions{}.cache_bytes;
  EngineOptions options;
  QueryLimits limits;
  bool explain = false;
  bool safety = false;
  bool stats = false;
  bool ok = true;
  std::string error;
};

Args ParseArgs(int argc, char** argv) {
  Args args;
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      args.ok = false;
      args.error = std::string("missing value for ") + argv[i];
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--query") {
      if (const char* v = need_value(i)) args.query_text = v;
    } else if (arg == "--batch") {
      if (const char* v = need_value(i)) args.batch_path = v;
    } else if (arg == "--threads") {
      if (const char* v = need_value(i)) {
        char* end = nullptr;
        unsigned long long threads = std::strtoull(v, &end, 10);
        if (*v == '\0' || *v == '-' || *end != '\0' || threads > 4096) {
          args.ok = false;
          args.error = "bad --threads value: " + std::string(v);
        } else {
          args.threads = static_cast<size_t>(threads);
        }
      }
    } else if (arg == "--strategy") {
      if (const char* v = need_value(i)) {
        // One shared name<->enum table with the library (StrategyName's
        // inverse), so the CLI cannot drift from the engine.
        if (std::optional<Strategy> strategy = StrategyFromName(v)) {
          args.options.strategy = *strategy;
        } else {
          args.ok = false;
          args.error = "unknown strategy: " + std::string(v);
        }
      }
    } else if (arg == "--sip") {
      if (const char* v = need_value(i)) args.options.sip = v;
    } else if (arg == "--guards") {
      if (const char* v = need_value(i)) {
        std::string mode = v;
        if (mode == "full") {
          args.options.guard_mode = GuardMode::kFull;
        } else if (mode == "prop42") {
          args.options.guard_mode = GuardMode::kProp42;
        } else if (mode == "ph-only") {
          args.options.guard_mode = GuardMode::kPhOnly;
        } else {
          args.ok = false;
          args.error = "unknown guard mode: " + mode;
        }
      }
    } else if (arg == "--facts") {
      if (const char* v = need_value(i)) args.facts_dir = v;
    } else if (arg == "--explain") {
      args.explain = true;
      args.options.explain = true;
    } else if (arg == "--safety") {
      args.safety = true;
    } else if (arg == "--check-safety") {
      args.options.static_safety_check = true;
    } else if (arg == "--stats") {
      args.stats = true;
    } else if (arg == "--max-facts") {
      if (const char* v = need_value(i)) {
        args.options.eval.max_facts = std::strtoull(v, nullptr, 10);
      }
    } else if (arg == "--limit") {
      if (const char* v = need_value(i)) {
        args.limits.row_limit = std::strtoull(v, nullptr, 10);
      }
    } else if (arg == "--deadline-ms") {
      if (const char* v = need_value(i)) {
        args.limits.deadline =
            std::chrono::milliseconds(std::strtoull(v, nullptr, 10));
      }
    } else if (arg == "--cache-bytes") {
      if (const char* v = need_value(i)) {
        char* end = nullptr;
        unsigned long long bytes = std::strtoull(v, &end, 10);
        if (*v == '\0' || *v == '-' || *end != '\0') {
          args.ok = false;
          args.error = "bad --cache-bytes value: " + std::string(v);
        } else {
          args.cache_bytes = static_cast<size_t>(bytes);
        }
      }
    } else if (arg == "--no-cache") {
      args.cache_bytes = 0;
    } else if (arg.rfind("--", 0) == 0) {
      args.ok = false;
      args.error = "unknown option: " + arg;
    } else {
      args.program_path = arg;
    }
  }
  if (args.ok && args.program_path.empty()) {
    args.ok = false;
    args.error = "no program file given";
  }
  if (args.ok && !args.batch_path.empty() &&
      (args.explain || args.safety || args.options.static_safety_check)) {
    args.ok = false;
    args.error =
        "--explain/--safety/--check-safety are not supported with --batch";
  }
  return args;
}

/// Serves every query in the batch file concurrently and prints each
/// query's answers in input order, separated by `% query:` headers. Each
/// query streams through an AnswerCursor: rows print chunk-by-chunk as the
/// fixpoint derives them (derivation order, deduplicated, not sorted)
/// instead of waiting for the full materialized answer set.
int RunBatch(const Args& args, const ParsedUnit& parsed, const Database& db) {
  std::ifstream in(args.batch_path);
  if (!in) {
    std::fprintf(stderr, "magicdb: cannot open batch file %s\n",
                 args.batch_path.c_str());
    return 1;
  }
  std::vector<std::string> lines;
  std::vector<Query> queries;
  std::string line;
  while (std::getline(in, line)) {
    size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos || line[start] == '%') continue;
    std::string text = line.substr(start);
    auto q = ParseUnit("?- " + text + ".", parsed.program.universe());
    if (!q.ok() || !q->query.has_value()) {
      std::fprintf(stderr, "magicdb: bad batch query \"%s\": %s\n",
                   text.c_str(),
                   q.ok() ? "not a query" : q.status().ToString().c_str());
      return 1;
    }
    lines.push_back(std::move(text));
    queries.push_back(*q->query);
  }
  if (queries.empty()) {
    std::fprintf(stderr, "magicdb: batch file has no queries\n");
    return 1;
  }

  QueryServiceOptions service_options;
  service_options.num_threads = args.threads;
  service_options.cache_bytes = args.cache_bytes;
  service_options.engine = args.options;
  QueryService service(parsed.program, db, service_options);

  Stopwatch watch;
  std::vector<AnswerCursor> cursors;
  cursors.reserve(queries.size());
  for (const Query& query : queries) {
    QueryRequest request;
    request.query = query;
    request.limits = args.limits;
    cursors.push_back(service.Stream(request));
  }

  constexpr size_t kChunk = 64;
  Universe& u = *parsed.program.universe();
  int failed = 0;
  int truncated = 0;
  size_t total_rows = 0;
  std::vector<std::vector<TermId>> chunk;
  for (size_t i = 0; i < cursors.size(); ++i) {
    std::printf("%% query: %s\n", lines[i].c_str());
    std::vector<int> free_positions = QueryFreePositions(u, queries[i]);
    size_t rows = 0;
    while (cursors[i].Next(kChunk, &chunk)) {
      rows += chunk.size();
      if (free_positions.empty()) continue;  // boolean query: count only
      for (const auto& tuple : chunk) {
        std::string row;
        for (TermId term : tuple) {
          if (!row.empty()) row += "\t";
          row += u.TermToString(term);
        }
        std::printf("%s\n", row.c_str());
      }
    }
    const QueryAnswer& answer = cursors[i].Finish();
    if (!answer.status.ok()) {
      std::printf("error: %s\n", answer.status.ToString().c_str());
      ++failed;
      continue;
    }
    if (free_positions.empty()) {
      std::printf("%s\n", rows == 0 ? "false" : "true");
    }
    if (answer.truncated()) {
      std::printf("%% truncated after %zu row(s)\n", rows);
      ++truncated;
    }
    total_rows += rows;
  }
  double seconds = watch.ElapsedSeconds();
  if (args.stats) {
    // Counter details come from the one shared reporting path
    // (Stats::Summary) so this tool never re-aggregates by hand.
    QueryService::Stats stats = service.stats();
    std::fprintf(stderr,
                 "%% %zu quer(ies) on %zu thread(s) in %.3f ms (%.0f qps), "
                 "%zu row(s), %d truncated, %d failed\n%% %s\n",
                 queries.size(), service.num_threads(), seconds * 1e3,
                 static_cast<double>(queries.size()) / seconds, total_rows,
                 truncated, failed, stats.Summary().c_str());
  }
  return failed == 0 ? 0 : 1;
}

int Run(const Args& args) {
  std::ifstream in(args.program_path);
  if (!in) {
    std::fprintf(stderr, "magicdb: cannot open %s\n",
                 args.program_path.c_str());
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();

  auto parsed = ParseUnit(buffer.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "magicdb: %s\n",
                 parsed.status().ToString().c_str());
    return 1;
  }
  for (const std::string& warning : ValidateProgram(parsed->program)) {
    std::fprintf(stderr, "magicdb: warning: %s\n", warning.c_str());
  }

  Database db(parsed->program.universe());
  for (const Fact& fact : parsed->facts) {
    if (Status st = db.AddFact(fact); !st.ok()) {
      std::fprintf(stderr, "magicdb: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  if (!args.facts_dir.empty()) {
    if (Status st = LoadFactsDirectory(parsed->program, args.facts_dir, &db);
        !st.ok()) {
      std::fprintf(stderr, "magicdb: %s\n", st.ToString().c_str());
      return 1;
    }
  }

  if (!args.batch_path.empty()) {
    return RunBatch(args, *parsed, db);
  }

  std::optional<Query> query = parsed->query;
  if (!args.query_text.empty()) {
    auto q = ParseUnit("?- " + args.query_text + ".",
                       parsed->program.universe());
    if (!q.ok() || !q->query.has_value()) {
      std::fprintf(stderr, "magicdb: bad --query: %s\n",
                   q.ok() ? "not a query" : q.status().ToString().c_str());
      return 1;
    }
    query = q->query;
  }
  if (!query.has_value()) {
    std::fprintf(stderr,
                 "magicdb: no query (add a ?- clause or pass --query)\n");
    return 1;
  }

  Universe& u = *parsed->program.universe();
  if (args.safety) {
    // Use a fresh parse so the report's adornment does not perturb the
    // predicate names of the main run.
    auto fresh = ParseUnit(buffer.str());
    std::optional<Query> fresh_query = fresh.ok() ? fresh->query : std::nullopt;
    if (fresh.ok() && !args.query_text.empty()) {
      auto q = ParseUnit("?- " + args.query_text + ".",
                         fresh->program.universe());
      if (q.ok()) fresh_query = q->query;
    }
    std::unique_ptr<SipStrategy> sip = MakeSipStrategy(args.options.sip);
    if (fresh.ok() && fresh_query.has_value() && sip != nullptr) {
      auto adorned = Adorn(fresh->program, *fresh_query, *sip);
      if (adorned.ok()) {
        SafetyReport magic_report = CheckMagicSafety(*adorned);
        SafetyReport counting_report = CheckCountingSafety(*adorned);
        std::printf("safety (magic):    %s\n",
                    SafetyVerdictName(magic_report.verdict).c_str());
        std::printf("safety (counting): %s\n",
                    SafetyVerdictName(counting_report.verdict).c_str());
      }
    }
  }

  QueryEngine engine(args.options);
  QueryAnswer answer = engine.Run(parsed->program, *query, db, args.limits);
  if (args.explain && !answer.rewritten_text.empty()) {
    std::printf("%% rewritten program (%s, sip=%s)\n%s%%\n",
                StrategyName(args.options.strategy).c_str(),
                args.options.sip.c_str(), answer.rewritten_text.c_str());
  }
  if (!answer.status.ok()) {
    std::fprintf(stderr, "magicdb: %s\n", answer.status.ToString().c_str());
    return 1;
  }
  std::vector<int> free_positions = QueryFreePositions(u, *query);
  if (free_positions.empty()) {
    std::printf("%s\n", answer.tuples.empty() ? "false" : "true");
  } else {
    for (const auto& tuple : answer.tuples) {
      std::string row;
      for (TermId term : tuple) {
        if (!row.empty()) row += "\t";
        row += u.TermToString(term);
      }
      std::printf("%s\n", row.c_str());
    }
  }
  if (answer.truncated()) {
    std::fprintf(stderr, "magicdb: truncated after %zu row(s) (--limit)\n",
                 answer.tuples.size());
  }
  if (args.stats) {
    std::fprintf(stderr,
                 "%% %zu answer(s), %zu fact(s) derived, %llu firing(s), "
                 "%llu probe(s), %.3f ms\n",
                 answer.tuples.size(), answer.total_facts,
                 static_cast<unsigned long long>(
                     answer.eval_stats.rule_firings),
                 static_cast<unsigned long long>(
                     answer.eval_stats.join_probes),
                 answer.eval_stats.seconds * 1e3);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args = ParseArgs(argc, argv);
  if (!args.ok) {
    std::fprintf(stderr, "magicdb: %s\n", args.error.c_str());
    std::fprintf(stderr,
                 "usage: magicdb [--query Q] [--batch FILE] [--threads N] "
                 "[--strategy S] [--sip NAME] "
                 "[--guards MODE] [--facts DIR] [--explain] [--safety] "
                 "[--check-safety] [--stats] [--max-facts N] [--limit N] "
                 "[--deadline-ms N] [--cache-bytes N] [--no-cache] "
                 "program.dl\n");
    return 2;
  }
  return Run(args);
}
