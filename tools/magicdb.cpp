// magicdb — command-line driver for the library.
//
//   magicdb <subcommand> [options] <program.dl>
//
// Subcommands:
//   eval    compile and run one query (from a ?- clause or --query) through
//           the single-shot QueryEngine; --explain prints the rewritten
//           program, --safety the Section 10 static verdicts
//   bench   serve every query in --batch FILE concurrently through
//           QueryService (answers stream per query, in derivation order);
//           --apply FILE mutates the LIVE service between two passes
//   apply   apply +fact/-fact mutation lines (--file FILE, default stdin)
//           to a service through the write seam and report the counts
//   repl    interactive loop on stdin: "+fact." inserts, "-fact." retracts
//           (both via ApplyWrites, no restart), anything else is a query.
//           New constants are fine; lines naming a predicate declared
//           after startup are rejected with a diagnostic naming it
//   serve   TCP server speaking the magicdb line protocol (PREPARE/QUERY/
//           STREAM/APPLY/STATS/METRICS/CLOSE) — see src/net/session.h for
//           the grammar; magicdb-cli is the matching client
//
// Options (subcommand-dependent):
//   --query "anc(john, Y)"   eval: query overriding a ?- clause
//   --batch FILE             bench: query file, one query per line
//   --apply FILE             bench: mutations applied between two passes
//   --file FILE              apply: mutation file (default: stdin)
//   --threads N              worker threads (default: hardware)
//   --strategy NAME          naive | seminaive | gms | gsms | gc | gsc |
//                            gc+sj | gsc+sj | topdown     (default gsms)
//   --sip NAME               full | chain | head-only | empty | greedy
//   --guards MODE            full | prop42 | ph-only      (default prop42)
//   --facts DIR              load <pred>.facts TSV files from DIR
//   --explain                eval: print the rewritten program
//   --profile                eval: print the per-rule fixpoint profile
//                            (iterations, firings, new/duplicate facts,
//                            join probes, delta rows) EXPLAIN-style
//   --safety                 eval: print static safety verdicts
//   --check-safety           eval: refuse statically rejected strategies
//   --stats                  print serving statistics
//   --max-facts N            evaluation budget (default 10M)
//   --limit N                stop each query after N answer rows
//   --deadline-ms N          per-query evaluation deadline
//   --cache-bytes N          AnswerCache byte budget (default 64 MiB)
//   --no-cache               disable cross-query answer memoization
//   --host H / --port P      serve: bind address (default 127.0.0.1:4617;
//                            port 0 binds ephemeral and prints the choice)
//   --max-connections N      serve: socket-level admission bound
//
// Exit codes come from the one shared wire-code table (util/status.h) —
// the same table magicdb-serve puts on the wire and magicdb-cli turns back
// into exit codes: 0 success (hitting --limit included), 1 internal,
// 2 usage, 3 bad request, 4 deadline expired, 5 cancelled, 6 overloaded,
// 7 protocol error.
//
// Examples:
//   magicdb eval --strategy gms --explain --stats family.dl
//   magicdb bench --batch queries.txt --threads 8 --stats family.dl
//   magicdb eval --query "anc(c0, Y)" --limit 1 --deadline-ms 50 family.dl
//   magicdb bench --batch queries.txt --apply edits.txt family.dl
//   printf '+par(c3,c4).\nanc(c0, Y)\n' | magicdb repl family.dl
//   magicdb serve --port 0 family.dl

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include "analysis/safety.h"
#include "ast/parser.h"
#include "ast/printer.h"
#include "engine/query_engine.h"
#include "engine/query_service.h"
#include "net/bootstrap.h"
#include "storage/fact_io.h"
#include "storage/write_batch.h"
#include "util/stopwatch.h"

namespace {

using namespace magic;

struct Args {
  std::string cmd;
  std::string program_path;
  std::string query_text;
  std::string batch_path;
  std::string apply_path;
  std::string mutation_path;  // apply --file
  std::string facts_dir;
  size_t threads = 0;  // 0 = hardware concurrency
  size_t cache_bytes = QueryServiceOptions{}.cache_bytes;
  EngineOptions options;
  QueryLimits limits;
  net::ServerOptions server;
  bool explain = false;
  bool profile = false;
  bool safety = false;
  bool stats = false;
  bool ok = true;
  std::string error;
};

bool In(const std::string& cmd, std::initializer_list<const char*> cmds) {
  for (const char* c : cmds) {
    if (cmd == c) return true;
  }
  return false;
}

Args ParseArgs(int argc, char** argv) {
  Args args;
  if (argc < 2) {
    args.ok = false;
    args.error = "no subcommand given";
    return args;
  }
  args.cmd = argv[1];
  if (!In(args.cmd, {"eval", "bench", "apply", "repl", "serve"})) {
    args.ok = false;
    args.error = "unknown subcommand: " + args.cmd;
    return args;
  }
  args.server.port = 4617;  // serve's default; --port 0 binds ephemeral
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      args.ok = false;
      args.error = std::string("missing value for ") + argv[i];
      return nullptr;
    }
    return argv[++i];
  };
  // Marks the current option as belonging to `cmds` only; a flag used
  // under the wrong subcommand is a usage error, not silently ignored.
  auto only = [&](int i, std::initializer_list<const char*> cmds) {
    if (In(args.cmd, cmds)) return true;
    args.ok = false;
    args.error = std::string(argv[i]) + " is not valid for subcommand " +
                 args.cmd;
    return false;
  };
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--query") {
      if (!only(i, {"eval"})) break;
      if (const char* v = need_value(i)) args.query_text = v;
    } else if (arg == "--batch") {
      if (!only(i, {"bench"})) break;
      if (const char* v = need_value(i)) args.batch_path = v;
    } else if (arg == "--apply") {
      if (!only(i, {"bench"})) break;
      if (const char* v = need_value(i)) args.apply_path = v;
    } else if (arg == "--file") {
      if (!only(i, {"apply"})) break;
      if (const char* v = need_value(i)) args.mutation_path = v;
    } else if (arg == "--threads") {
      if (!only(i, {"bench", "apply", "repl", "serve"})) break;
      if (const char* v = need_value(i)) {
        char* end = nullptr;
        unsigned long long threads = std::strtoull(v, &end, 10);
        if (*v == '\0' || *v == '-' || *end != '\0' || threads > 4096) {
          args.ok = false;
          args.error = "bad --threads value: " + std::string(v);
        } else {
          args.threads = static_cast<size_t>(threads);
        }
      }
    } else if (arg == "--strategy") {
      if (const char* v = need_value(i)) {
        // One shared name<->enum table with the library (StrategyName's
        // inverse), so the CLI cannot drift from the engine.
        if (std::optional<Strategy> strategy = StrategyFromName(v)) {
          args.options.strategy = *strategy;
        } else {
          args.ok = false;
          args.error = "unknown strategy: " + std::string(v);
        }
      }
    } else if (arg == "--sip") {
      if (const char* v = need_value(i)) args.options.sip = v;
    } else if (arg == "--guards") {
      if (const char* v = need_value(i)) {
        std::string mode = v;
        if (mode == "full") {
          args.options.guard_mode = GuardMode::kFull;
        } else if (mode == "prop42") {
          args.options.guard_mode = GuardMode::kProp42;
        } else if (mode == "ph-only") {
          args.options.guard_mode = GuardMode::kPhOnly;
        } else {
          args.ok = false;
          args.error = "unknown guard mode: " + mode;
        }
      }
    } else if (arg == "--facts") {
      if (const char* v = need_value(i)) args.facts_dir = v;
    } else if (arg == "--explain") {
      if (!only(i, {"eval"})) break;
      args.explain = true;
      args.options.explain = true;
    } else if (arg == "--profile") {
      if (!only(i, {"eval"})) break;
      args.profile = true;
    } else if (arg == "--safety") {
      if (!only(i, {"eval"})) break;
      args.safety = true;
    } else if (arg == "--check-safety") {
      if (!only(i, {"eval"})) break;
      args.options.static_safety_check = true;
    } else if (arg == "--stats") {
      args.stats = true;
    } else if (arg == "--max-facts") {
      if (const char* v = need_value(i)) {
        args.options.eval.max_facts = std::strtoull(v, nullptr, 10);
      }
    } else if (arg == "--limit") {
      if (!only(i, {"eval", "bench", "repl"})) break;
      if (const char* v = need_value(i)) {
        args.limits.row_limit = std::strtoull(v, nullptr, 10);
      }
    } else if (arg == "--deadline-ms") {
      if (!only(i, {"eval", "bench", "repl"})) break;
      if (const char* v = need_value(i)) {
        args.limits.deadline =
            std::chrono::milliseconds(std::strtoull(v, nullptr, 10));
      }
    } else if (arg == "--cache-bytes") {
      if (!only(i, {"bench", "repl", "serve"})) break;
      if (const char* v = need_value(i)) {
        char* end = nullptr;
        unsigned long long bytes = std::strtoull(v, &end, 10);
        if (*v == '\0' || *v == '-' || *end != '\0') {
          args.ok = false;
          args.error = "bad --cache-bytes value: " + std::string(v);
        } else {
          args.cache_bytes = static_cast<size_t>(bytes);
        }
      }
    } else if (arg == "--no-cache") {
      if (!only(i, {"bench", "repl", "serve"})) break;
      args.cache_bytes = 0;
    } else if (arg == "--host") {
      if (!only(i, {"serve"})) break;
      if (const char* v = need_value(i)) args.server.host = v;
    } else if (arg == "--port") {
      if (!only(i, {"serve"})) break;
      if (const char* v = need_value(i)) {
        args.server.port = static_cast<uint16_t>(std::strtoul(v, nullptr, 10));
      }
    } else if (arg == "--max-connections") {
      if (!only(i, {"serve"})) break;
      if (const char* v = need_value(i)) {
        args.server.max_connections = std::strtoull(v, nullptr, 10);
      }
    } else if (arg.rfind("--", 0) == 0) {
      args.ok = false;
      args.error = "unknown option: " + arg;
    } else {
      args.program_path = arg;
    }
  }
  if (args.ok && args.program_path.empty()) {
    args.ok = false;
    args.error = "no program file given";
  }
  if (args.ok && args.cmd == "bench" && args.batch_path.empty()) {
    args.ok = false;
    args.error = "bench needs --batch FILE";
  }
  return args;
}

/// Exit code for a plain Status, through the shared wire-code table.
int ExitFor(const Status& status) {
  return ExitCodeFor(ToWireCode(status.code()));
}

/// Exit code for a served answer: the outcome (truncated/deadline/...)
/// decides before the status code does, exactly like the wire head token.
int ExitForAnswer(const QueryAnswer& answer) {
  return ExitCodeFor(ToWireCode(answer.outcome, answer.status.code()));
}

struct PassTotals {
  int failed = 0;
  int truncated = 0;
  size_t rows = 0;
  int exit_code = 0;  // first failure's table exit code
};

/// Prints one tuple, tab-separated.
void PrintTuple(const Universe& u, const std::vector<TermId>& tuple) {
  std::string row;
  for (TermId term : tuple) {
    if (!row.empty()) row += "\t";
    row += u.TermToString(term);
  }
  std::printf("%s\n", row.c_str());
}

/// Serves every query of the batch concurrently through `service` and
/// prints each query's answers in input order, separated by `% query:`
/// headers. Each query streams through an AnswerCursor: rows print
/// chunk-by-chunk as the fixpoint derives them (derivation order,
/// deduplicated, not sorted) instead of waiting for the full materialized
/// answer set.
PassTotals ServeBatchPass(QueryService& service, const Args& args,
                          const std::vector<std::string>& lines,
                          const std::vector<Query>& queries, Universe& u) {
  std::vector<AnswerCursor> cursors;
  cursors.reserve(queries.size());
  for (const Query& query : queries) {
    QueryRequest request;
    request.query = query;
    request.limits = args.limits;
    cursors.push_back(service.Stream(request));
  }

  constexpr size_t kChunk = 64;
  PassTotals totals;
  std::vector<std::vector<TermId>> chunk;
  for (size_t i = 0; i < cursors.size(); ++i) {
    std::printf("%% query: %s\n", lines[i].c_str());
    std::vector<int> free_positions = QueryFreePositions(u, queries[i]);
    size_t rows = 0;
    while (cursors[i].Next(kChunk, &chunk)) {
      rows += chunk.size();
      if (free_positions.empty()) continue;  // boolean query: count only
      for (const auto& tuple : chunk) PrintTuple(u, tuple);
    }
    const QueryAnswer& answer = cursors[i].Finish();
    if (!answer.status.ok()) {
      std::printf("error: %s\n", answer.status.ToString().c_str());
      ++totals.failed;
      if (totals.exit_code == 0) totals.exit_code = ExitForAnswer(answer);
      continue;
    }
    if (free_positions.empty()) {
      std::printf("%s\n", rows == 0 ? "false" : "true");
    }
    if (answer.truncated()) {
      std::printf("%% truncated after %zu row(s)\n", rows);
      ++totals.truncated;
    }
    totals.rows += rows;
  }
  return totals;
}

/// Reads an --apply file into one WriteBatch ("+fact." inserts, "-fact."
/// retracts, bare facts insert; blank lines and % comments skip). The line
/// grammar is ParseMutationLine (storage/write_batch.h) — the same parser
/// the repl and the wire APPLY verb use.
bool LoadApplyFile(std::istream& in, const std::string& label,
                   const std::shared_ptr<Universe>& universe,
                   WriteBatch* batch) {
  std::string line;
  while (std::getline(in, line)) {
    size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos || line[start] == '%') continue;
    if (Status st = ParseMutationLine(line.substr(start), universe, batch);
        !st.ok()) {
      std::fprintf(stderr, "magicdb: bad mutation \"%s\" (%s): %s\n",
                   line.c_str(), label.c_str(), st.message().c_str());
      return false;
    }
  }
  return true;
}

int RunBench(const Args& args, const ParsedUnit& parsed, Database& db) {
  std::ifstream in(args.batch_path);
  if (!in) {
    std::fprintf(stderr, "magicdb: cannot open batch file %s\n",
                 args.batch_path.c_str());
    return ExitCodeFor(WireCode::kInvalidArgument);
  }
  std::vector<std::string> lines;
  std::vector<Query> queries;
  std::string line;
  while (std::getline(in, line)) {
    size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos || line[start] == '%') continue;
    std::string text = line.substr(start);
    auto q = ParseUnit("?- " + text + ".", parsed.program.universe());
    if (!q.ok() || !q->query.has_value()) {
      std::fprintf(stderr, "magicdb: bad batch query \"%s\": %s\n",
                   text.c_str(),
                   q.ok() ? "not a query" : q.status().ToString().c_str());
      return ExitCodeFor(WireCode::kInvalidArgument);
    }
    lines.push_back(std::move(text));
    queries.push_back(*q->query);
  }
  if (queries.empty()) {
    std::fprintf(stderr, "magicdb: batch file has no queries\n");
    return ExitCodeFor(WireCode::kInvalidArgument);
  }

  // The --apply mutations are parsed up front (before the service exists)
  // because parsing may intern new symbols into the shared Universe —
  // legal at any time now that the tables are internally synchronized,
  // but new predicate *declarations* are only safe while no compiled
  // plan overlays the table.
  WriteBatch edits;
  if (!args.apply_path.empty()) {
    std::ifstream apply_in(args.apply_path);
    if (!apply_in) {
      std::fprintf(stderr, "magicdb: cannot open apply file %s\n",
                   args.apply_path.c_str());
      return ExitCodeFor(WireCode::kInvalidArgument);
    }
    if (!LoadApplyFile(apply_in, args.apply_path, parsed.program.universe(),
                       &edits)) {
      return ExitCodeFor(WireCode::kInvalidArgument);
    }
  }

  QueryServiceOptions service_options;
  service_options.num_threads = args.threads;
  service_options.cache_bytes = args.cache_bytes;
  service_options.engine = args.options;
  QueryService service(parsed.program, db, service_options);

  Stopwatch watch;
  PassTotals totals = ServeBatchPass(service, args, lines, queries,
                                     *parsed.program.universe());
  size_t passes = 1;
  if (!args.apply_path.empty()) {
    // Apply to the LIVE service — no teardown, no rebuild. The write
    // publishes a new database version (without waiting on in-flight
    // work) and retires every cached answer keyed to the old one; the
    // second pass shows the new database.
    auto applied = service.ApplyWrites(edits);
    if (!applied.ok()) {
      std::fprintf(stderr, "magicdb: apply failed: %s\n",
                   applied.status().ToString().c_str());
      return ExitFor(applied.status());
    }
    std::printf("%% applied %s: +%zu -%zu fact(s), %zu relation(s) mutated\n",
                args.apply_path.c_str(), applied->inserted,
                applied->retracted, applied->relations_mutated);
    PassTotals second = ServeBatchPass(service, args, lines, queries,
                                       *parsed.program.universe());
    totals.failed += second.failed;
    totals.truncated += second.truncated;
    totals.rows += second.rows;
    if (totals.exit_code == 0) totals.exit_code = second.exit_code;
    passes = 2;
  }
  double seconds = watch.ElapsedSeconds();
  if (args.stats) {
    // Counter details come from the one shared reporting path
    // (Stats::Summary) so this tool never re-aggregates by hand.
    QueryService::Stats stats = service.stats();
    std::fprintf(stderr,
                 "%% %zu quer(ies) on %zu thread(s) in %.3f ms (%.0f qps), "
                 "%zu row(s), %d truncated, %d failed\n%% %s\n",
                 queries.size() * passes, service.num_threads(),
                 seconds * 1e3,
                 static_cast<double>(queries.size() * passes) / seconds,
                 totals.rows, totals.truncated, totals.failed,
                 stats.Summary().c_str());
  }
  return totals.exit_code;
}

/// Standalone mutation pass: parse every line (file or stdin), apply them
/// as ONE WriteBatch through the live service's write seam, report counts.
int RunApply(const Args& args, const ParsedUnit& parsed, Database& db) {
  WriteBatch batch;
  if (!args.mutation_path.empty()) {
    std::ifstream in(args.mutation_path);
    if (!in) {
      std::fprintf(stderr, "magicdb: cannot open %s\n",
                   args.mutation_path.c_str());
      return ExitCodeFor(WireCode::kInvalidArgument);
    }
    if (!LoadApplyFile(in, args.mutation_path, parsed.program.universe(),
                       &batch)) {
      return ExitCodeFor(WireCode::kInvalidArgument);
    }
  } else if (!LoadApplyFile(std::cin, "stdin", parsed.program.universe(),
                            &batch)) {
    return ExitCodeFor(WireCode::kInvalidArgument);
  }

  QueryServiceOptions service_options;
  service_options.num_threads = args.threads;
  service_options.engine = args.options;
  QueryService service(parsed.program, db, service_options);
  auto applied = service.ApplyWrites(batch);
  if (!applied.ok()) {
    std::fprintf(stderr, "magicdb: apply failed: %s\n",
                 applied.status().ToString().c_str());
    return ExitFor(applied.status());
  }
  std::printf("%% applied: +%zu -%zu fact(s), %zu cleared, "
              "%zu relation(s) mutated\n",
              applied->inserted, applied->retracted, applied->cleared,
              applied->relations_mutated);
  if (args.stats) {
    std::fprintf(stderr, "%% %s\n", service.stats().Summary().c_str());
  }
  return ExitCodeFor(WireCode::kOk);
}

/// Interactive serving loop: queries and EDB mutations interleave on one
/// live service. Mutation lines ("+fact." / "-fact.") go through
/// ApplyWrites — the sanctioned in-band write path — so every later query
/// sees the mutated database, warm cache or not.
int RunRepl(const Args& args, const ParsedUnit& parsed, Database& db) {
  QueryServiceOptions service_options;
  service_options.num_threads = args.threads;
  service_options.cache_bytes = args.cache_bytes;
  service_options.engine = args.options;
  QueryService service(parsed.program, db, service_options);
  Universe& u = *parsed.program.universe();

  // Predicate freeze: compiled plans overlay the base predicate table, so
  // a predicate declared mid-session reuses a numeric id a live plan
  // already owns. New constants are fine — hash-consed terms no plan can
  // alias — so inserting fresh nodes works; introducing a fresh *relation
  // name* needs a restart. CheckFrozenPredicate (the same check the wire
  // APPLY verb runs) enforces by id range against the size frozen here,
  // NOT by detecting table growth: a stray declaration is permanent (and
  // harmless while unused), so the same line resubmitted must still be
  // rejected — and the diagnostic names the offending predicate.
  const size_t frozen_preds = u.predicates().size();

  int exit_code = 0;
  auto fail = [&](const Status& status) {
    std::printf("error: %s\n", status.ToString().c_str());
    if (exit_code == 0) exit_code = ExitFor(status);
  };
  std::string line;
  while (std::getline(std::cin, line)) {
    size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos || line[start] == '%') continue;
    std::string text = line.substr(start);
    if (text[0] == '+' || text[0] == '-') {
      WriteBatch batch;
      if (Status st = ParseMutationLine(text, parsed.program.universe(),
                                        &batch);
          !st.ok()) {
        fail(st);
        continue;
      }
      if (Status st = CheckFrozenPredicates(u, batch, frozen_preds);
          !st.ok()) {
        fail(st);
        continue;
      }
      auto applied = service.ApplyWrites(batch);
      if (!applied.ok()) {
        fail(applied.status());
        continue;
      }
      std::printf("%% applied: +%zu -%zu fact(s)\n", applied->inserted,
                  applied->retracted);
      continue;
    }
    size_t last = text.find_last_not_of(" \t\r.");
    if (last == std::string::npos) continue;
    text.resize(last + 1);
    auto q = ParseUnit("?- " + text + ".", parsed.program.universe());
    if (!q.ok() || !q->query.has_value()) {
      if (q.ok()) {
        fail(Status::InvalidArgument("bad query \"" + text +
                                     "\": not a query"));
      } else {
        fail(q.status());
      }
      continue;
    }
    if (Status st = CheckFrozenPredicate(u, q->query->goal.pred,
                                         frozen_preds);
        !st.ok()) {
      fail(st);
      continue;
    }
    std::printf("%% query: %s\n", text.c_str());
    QueryRequest request;
    request.query = *q->query;
    request.limits = args.limits;
    QueryAnswer answer = service.Submit(request).get();
    if (!answer.status.ok()) {
      std::printf("error: %s\n", answer.status.ToString().c_str());
      if (exit_code == 0) exit_code = ExitForAnswer(answer);
      continue;
    }
    if (QueryFreePositions(u, request.query).empty()) {
      std::printf("%s\n", answer.tuples.empty() ? "false" : "true");
    } else {
      for (const auto& tuple : answer.tuples) PrintTuple(u, tuple);
    }
    if (answer.truncated()) {
      std::printf("%% truncated after %zu row(s)\n", answer.tuples.size());
    }
  }
  if (args.stats) {
    std::fprintf(stderr, "%% %s\n", service.stats().Summary().c_str());
  }
  return exit_code;
}

int RunEval(const Args& args, const ParsedUnit& parsed, Database& db,
            const std::string& source_text) {
  std::optional<Query> query = parsed.query;
  if (!args.query_text.empty()) {
    auto q = ParseUnit("?- " + args.query_text + ".",
                       parsed.program.universe());
    if (!q.ok() || !q->query.has_value()) {
      std::fprintf(stderr, "magicdb: bad --query: %s\n",
                   q.ok() ? "not a query" : q.status().ToString().c_str());
      return ExitCodeFor(WireCode::kInvalidArgument);
    }
    query = q->query;
  }
  if (!query.has_value()) {
    std::fprintf(stderr,
                 "magicdb: no query (add a ?- clause or pass --query)\n");
    return ExitCodeFor(WireCode::kInvalidArgument);
  }

  Universe& u = *parsed.program.universe();
  if (args.safety) {
    // Use a fresh parse so the report's adornment does not perturb the
    // predicate names of the main run.
    auto fresh = ParseUnit(source_text);
    std::optional<Query> fresh_query = fresh.ok() ? fresh->query : std::nullopt;
    if (fresh.ok() && !args.query_text.empty()) {
      auto q = ParseUnit("?- " + args.query_text + ".",
                         fresh->program.universe());
      if (q.ok()) fresh_query = q->query;
    }
    std::unique_ptr<SipStrategy> sip = MakeSipStrategy(args.options.sip);
    if (fresh.ok() && fresh_query.has_value() && sip != nullptr) {
      auto adorned = Adorn(fresh->program, *fresh_query, *sip);
      if (adorned.ok()) {
        SafetyReport magic_report = CheckMagicSafety(*adorned);
        SafetyReport counting_report = CheckCountingSafety(*adorned);
        std::printf("safety (magic):    %s\n",
                    SafetyVerdictName(magic_report.verdict).c_str());
        std::printf("safety (counting): %s\n",
                    SafetyVerdictName(counting_report.verdict).c_str());
      }
    }
  }

  QueryEngine engine(args.options);
  QueryAnswer answer = engine.Run(parsed.program, *query, db, args.limits);
  if (args.explain && !answer.rewritten_text.empty()) {
    std::printf("%% rewritten program (%s, sip=%s)\n%s%%\n",
                StrategyName(args.options.strategy).c_str(),
                args.options.sip.c_str(), answer.rewritten_text.c_str());
  }
  if (!answer.status.ok()) {
    std::fprintf(stderr, "magicdb: %s\n", answer.status.ToString().c_str());
    return ExitForAnswer(answer);
  }
  std::vector<int> free_positions = QueryFreePositions(u, *query);
  if (free_positions.empty()) {
    std::printf("%s\n", answer.tuples.empty() ? "false" : "true");
  } else {
    for (const auto& tuple : answer.tuples) PrintTuple(u, tuple);
  }
  if (answer.truncated()) {
    std::fprintf(stderr, "magicdb: truncated after %zu row(s) (--limit)\n",
                 answer.tuples.size());
  }
  if (args.profile) {
    // EXPLAIN-style fixpoint profile: one row per rule of the program that
    // actually ran (rewritten/adorned/original by strategy), in rule order.
    std::printf("%% fixpoint profile (%s, %zu rule(s))\n",
                answer.strategy_name.c_str(), answer.profile.size());
    std::printf("%% %4s %8s %8s %9s %9s %11s %10s  rule\n", "#", "evals",
                "firings", "new", "dup", "probes", "delta");
    for (size_t i = 0; i < answer.profile.size(); ++i) {
      const RuleProfile& c = answer.profile[i].counts;
      std::printf("%% %4zu %8llu %8llu %9llu %9llu %11llu %10llu  %s\n", i,
                  static_cast<unsigned long long>(c.evals),
                  static_cast<unsigned long long>(c.firings),
                  static_cast<unsigned long long>(c.new_facts),
                  static_cast<unsigned long long>(c.duplicate_facts),
                  static_cast<unsigned long long>(c.join_probes),
                  static_cast<unsigned long long>(c.delta_rows),
                  answer.profile[i].rule.c_str());
    }
  }
  if (args.stats) {
    std::fprintf(stderr,
                 "%% %zu answer(s), %zu fact(s) derived, %llu firing(s), "
                 "%llu probe(s), %.3f ms\n",
                 answer.tuples.size(), answer.total_facts,
                 static_cast<unsigned long long>(
                     answer.eval_stats.rule_firings),
                 static_cast<unsigned long long>(
                     answer.eval_stats.join_probes),
                 answer.eval_stats.seconds * 1e3);
  }
  return ExitForAnswer(answer);
}

int Run(const Args& args) {
  if (args.cmd == "serve") {
    // serve delegates the whole lifecycle (load, listen, signal-driven
    // shutdown) to the shared bootstrap that magicdb-serve also uses.
    net::ServeBootstrap bootstrap;
    bootstrap.program_path = args.program_path;
    bootstrap.facts_dir = args.facts_dir;
    bootstrap.service.num_threads = args.threads;
    bootstrap.service.cache_bytes = args.cache_bytes;
    bootstrap.service.engine = args.options;
    bootstrap.server = args.server;
    bootstrap.stats = args.stats;
    return net::RunServeMain(bootstrap);
  }

  std::ifstream in(args.program_path);
  if (!in) {
    std::fprintf(stderr, "magicdb: cannot open %s\n",
                 args.program_path.c_str());
    return ExitCodeFor(WireCode::kInvalidArgument);
  }
  std::stringstream buffer;
  buffer << in.rdbuf();

  auto parsed = ParseUnit(buffer.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "magicdb: %s\n",
                 parsed.status().ToString().c_str());
    return ExitFor(parsed.status());
  }
  for (const std::string& warning : ValidateProgram(parsed->program)) {
    std::fprintf(stderr, "magicdb: warning: %s\n", warning.c_str());
  }

  Database db(parsed->program.universe());
  for (const Fact& fact : parsed->facts) {
    if (Status st = db.AddFact(fact); !st.ok()) {
      std::fprintf(stderr, "magicdb: %s\n", st.ToString().c_str());
      return ExitFor(st);
    }
  }
  if (!args.facts_dir.empty()) {
    if (Status st = LoadFactsDirectory(parsed->program, args.facts_dir, &db);
        !st.ok()) {
      std::fprintf(stderr, "magicdb: %s\n", st.ToString().c_str());
      return ExitFor(st);
    }
  }

  if (args.cmd == "bench") return RunBench(args, *parsed, db);
  if (args.cmd == "apply") return RunApply(args, *parsed, db);
  if (args.cmd == "repl") return RunRepl(args, *parsed, db);
  return RunEval(args, *parsed, db, buffer.str());
}

}  // namespace

int main(int argc, char** argv) {
  Args args = ParseArgs(argc, argv);
  if (!args.ok) {
    std::fprintf(stderr, "magicdb: %s\n", args.error.c_str());
    std::fprintf(
        stderr,
        "usage: magicdb <subcommand> [options] program.dl\n"
        "  eval  [--query Q] [--strategy S] [--sip NAME] [--guards MODE]\n"
        "        [--explain] [--profile] [--safety] [--check-safety] "
        "[--limit N]\n"
        "        [--deadline-ms N] [--max-facts N] [--facts DIR] [--stats]\n"
        "  bench --batch FILE [--apply FILE] [--threads N] [--limit N]\n"
        "        [--deadline-ms N] [--cache-bytes N|--no-cache] ...\n"
        "  apply [--file FILE] [--threads N] [--facts DIR] [--stats]\n"
        "  repl  [--threads N] [--limit N] [--deadline-ms N]\n"
        "        [--cache-bytes N|--no-cache] ...\n"
        "  serve [--host H] [--port P] [--max-connections N] [--threads N]\n"
        "        [--cache-bytes N|--no-cache] [--facts DIR] [--stats] ...\n");
    return 2;
  }
  return Run(args);
}
