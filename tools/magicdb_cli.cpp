// magicdb-cli — wire client for magicdb-serve.
//
//   magicdb-cli [--host H] --port P <command> [words...]
//
// Commands (lower-case verbs of the line protocol, src/net/session.h):
//   prepare NAME QUERY...             compile a query form on the server
//   query NAME [SEED...] [limit=N] [deadline_ms=N]
//                                     run a prepared form; rows to stdout
//   query "QUERY(...)" [limit=N ...]  one-shot: prepared forms are
//                                     per-session, so an operand that IS
//                                     a query text (contains '(') sends
//                                     PREPARE + QUERY over one connection
//   stream NAME [SEED...] [...]       like query, but rows print as the
//                                     fixpoint derives them (chunked);
//                                     accepts the one-shot query form too
//   apply [FILE]                      send mutation lines ("+fact." /
//                                     "-fact.", one per line) from FILE or
//                                     stdin as ONE atomic APPLY
//   stats                             server-side serving statistics
//   metrics [json]                    scrape the metrics registry:
//                                     Prometheus text exposition, or the
//                                     full stats JSON document with `json`
//   raw WORD...                       send the words verbatim (testing)
//
// Every response's head line prints to stderr (it carries the wire code
// and `key=value` fields); payload rows print to stdout. The exit code is
// the reply's wire code through the shared table (util/status.h): 0 ok or
// truncated, 3 bad request, 4 deadline, 5 cancelled, 6 overloaded,
// 7 protocol error, 1 internal.
//
// Examples:
//   magicdb-cli --port 4617 query "anc(c0, Y)" limit=10
//   magicdb-cli --port 4617 stream "anc(c0, Y)"
//   printf '+par(c9,c10).\n' | magicdb-cli --port 4617 apply
//   magicdb-cli --port 4617 stats

#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "net/client.h"

namespace {

using namespace magic;

int Usage() {
  std::fprintf(
      stderr,
      "usage: magicdb-cli [--host H] --port P "
      "prepare|query|stream|apply|stats|metrics|raw [words...]\n");
  return 2;
}

/// Prints a reply: head line (wire code + fields) to stderr, payload rows
/// to stdout. Returns the table-driven exit code.
int Finish(const net::MagicClient::Reply& reply) {
  std::fprintf(stderr, "%s%s%s\n", WireCodeName(reply.code),
               reply.head.empty() ? "" : " ", reply.head.c_str());
  for (const std::string& line : reply.lines) {
    std::printf("%s\n", line.c_str());
  }
  return reply.exit_code();
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  int i = 1;
  for (; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--host" && i + 1 < argc) {
      host = argv[++i];
    } else if (arg == "--port" && i + 1 < argc) {
      port = static_cast<uint16_t>(std::strtoul(argv[++i], nullptr, 10));
    } else {
      break;
    }
  }
  if (port == 0 || i >= argc) return Usage();
  std::string verb = argv[i++];

  // The request line: the verb upper-cased (the protocol's spelling)
  // followed by the remaining words verbatim.
  std::string request;
  std::string prepare_first;
  if (verb == "raw") {
    for (; i < argc; ++i) {
      if (!request.empty()) request += ' ';
      request += argv[i];
    }
  } else if (verb == "prepare" || verb == "query" || verb == "stream" ||
             verb == "stats" || verb == "metrics" || verb == "apply") {
    request = verb;
    for (char& c : request) c = static_cast<char>(std::toupper(c));
    // One-shot form: prepared forms live per session, so `query
    // "anc(c0, Y)"` must PREPARE and QUERY on the same connection. An
    // operand that is a query text (contains '(') triggers that.
    if ((verb == "query" || verb == "stream") && i < argc &&
        std::strchr(argv[i], '(') != nullptr) {
      prepare_first = std::string("PREPARE __cli ") + argv[i++];
      request += " __cli";
    }
    for (int j = i; j < argc; ++j) {
      if (verb == "apply") break;  // apply's operand is the payload file
      request += ' ';
      request += argv[j];
    }
  } else {
    std::fprintf(stderr, "magicdb-cli: unknown command: %s\n", verb.c_str());
    return Usage();
  }

  if (verb == "apply") {
    // Mutation lines ride in the request frame after the verb line.
    std::stringstream payload;
    if (i < argc) {
      std::ifstream in(argv[i]);
      if (!in) {
        std::fprintf(stderr, "magicdb-cli: cannot open %s\n", argv[i]);
        return ExitCodeFor(WireCode::kInvalidArgument);
      }
      payload << in.rdbuf();
    } else {
      payload << std::cin.rdbuf();
    }
    request += '\n';
    request += payload.str();
  }

  auto client = net::MagicClient::Connect(host, port);
  if (!client.ok()) {
    std::fprintf(stderr, "magicdb-cli: %s\n",
                 client.status().ToString().c_str());
    return ExitCodeFor(ToWireCode(client.status().code()));
  }

  if (!prepare_first.empty()) {
    auto prepared = client->Call(prepare_first);
    if (!prepared.ok()) {
      std::fprintf(stderr, "magicdb-cli: %s\n",
                   prepared.status().ToString().c_str());
      return ExitCodeFor(ToWireCode(prepared.status().code()));
    }
    if (prepared->code != WireCode::kOk) return Finish(*prepared);
  }

  if (verb == "stream") {
    auto reply = client->Stream(request, [](const std::string& row) {
      std::printf("%s\n", row.c_str());
      return true;
    });
    if (!reply.ok()) {
      std::fprintf(stderr, "magicdb-cli: %s\n",
                   reply.status().ToString().c_str());
      return ExitCodeFor(ToWireCode(reply.status().code()));
    }
    return Finish(*reply);
  }

  auto reply = client->Call(request);
  if (!reply.ok()) {
    std::fprintf(stderr, "magicdb-cli: %s\n",
                 reply.status().ToString().c_str());
    return ExitCodeFor(ToWireCode(reply.status().code()));
  }
  return Finish(*reply);
}
