// The MVCC spine (storage/db_version.h): pinned snapshots are immutable
// under commits (copy-on-write isolates them), no-op commits publish
// nothing, out-of-band quiescent writes resync on the next pin, versions
// retire when their last pin drops, and — the property the whole design
// exists for — concurrent readers pinned mid-write see exactly version N
// or N+1, never a torn mix. Run under TSan/ASan in CI.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/query_service.h"
#include "storage/db_version.h"
#include "storage/write_batch.h"
#include "workload/generators.h"

namespace magic {
namespace {

PredId ParPred(const Workload& w) {
  Universe& u = *w.universe;
  return *u.predicates().Find(*u.symbols().Find("par"), 2);
}

TEST(DbVersionTest, PinReturnsStableSnapshotAcrossCommits) {
  Workload w = MakeAncestorChain(4);  // par: c0->c1->c2->c3 (3 tuples)
  Universe& u = *w.universe;
  PredId par = ParPred(w);
  VersionChain chain(w.db);

  auto pinned = chain.Pin();
  EXPECT_EQ(pinned->version(), 1u);
  ASSERT_NE(pinned->db().Find(par), nullptr);
  EXPECT_EQ(pinned->db().Find(par)->size(), 3u);

  WriteBatch batch;
  batch.Insert(par, {u.Constant("c3"), u.Constant("c4")});
  WriteResult result = chain.Commit(w.db, batch);
  EXPECT_EQ(result.inserted, 1u);

  // The pin still reads the exact pre-commit tuple set (the base
  // copy-on-wrote the shared relation instead of mutating it), while a
  // fresh pin sees the published version 2.
  EXPECT_EQ(pinned->db().Find(par)->size(), 3u);
  auto head = chain.Pin();
  EXPECT_EQ(head->version(), 2u);
  EXPECT_EQ(head->db().Find(par)->size(), 4u);
  EXPECT_EQ(chain.current_version(), 2u);
  EXPECT_EQ(chain.versions_published(), 2u);
}

TEST(DbVersionTest, NoOpCommitPublishesNothing) {
  Workload w = MakeAncestorChain(4);
  Universe& u = *w.universe;
  PredId par = ParPred(w);
  VersionChain chain(w.db);

  WriteBatch noop;
  noop.Insert(par, {u.Constant("c0"), u.Constant("c1")});   // duplicate
  noop.Retract(par, {u.Constant("c9"), u.Constant("c0")});  // absent
  WriteResult result = chain.Commit(w.db, noop);
  EXPECT_EQ(result.relations_mutated, 0u);
  EXPECT_EQ(chain.versions_published(), 1u);
  EXPECT_EQ(chain.Pin()->version(), 1u);
  EXPECT_EQ(chain.current_version(), 1u);
}

TEST(DbVersionTest, OutOfBandQuiescentWriteResyncsOnPin) {
  Workload w = MakeAncestorChain(4);
  Universe& u = *w.universe;
  PredId par = ParPred(w);
  VersionChain chain(w.db);
  EXPECT_EQ(chain.current_version(), 1u);

  // A direct base mutation, no Commit involved (the documented
  // quiescent-point contract): the next pin publishes a fresh snapshot.
  ASSERT_TRUE(w.db.AddFact(par, {u.Constant("c3"), u.Constant("c4")}).ok());
  EXPECT_EQ(chain.current_version(), 2u);  // probe path resyncs too
  auto pinned = chain.Pin();
  EXPECT_EQ(pinned->version(), 2u);
  EXPECT_EQ(pinned->db().Find(par)->size(), 4u);
  // Settled now: repeated pins publish nothing further.
  EXPECT_EQ(chain.Pin()->version(), 2u);
  EXPECT_EQ(chain.versions_published(), 2u);
}

TEST(DbVersionTest, VersionsRetireWhenTheLastPinDrops) {
  Workload w = MakeAncestorChain(4);
  Universe& u = *w.universe;
  PredId par = ParPred(w);
  VersionChain chain(w.db);

  auto old_pin = chain.Pin();
  WriteBatch batch;
  batch.Insert(par, {u.Constant("c3"), u.Constant("c4")});
  (void)chain.Commit(w.db, batch);

  // Version 1 is alive only through old_pin; version 2 is the head.
  EXPECT_EQ(chain.versions_published(), 2u);
  EXPECT_EQ(chain.versions_retired(), 0u);
  EXPECT_EQ(chain.versions_live(), 2u);

  old_pin.reset();
  EXPECT_EQ(chain.versions_retired(), 1u);
  EXPECT_EQ(chain.versions_live(), 1u);
}

TEST(DbVersionTest, CopyOnWriteSharesUntouchedRelations) {
  Workload w = MakeSameGenNonlinear(3, 2);  // base preds up/flat/down
  Universe& u = *w.universe;
  PredId up = *u.predicates().Find(*u.symbols().Find("up"), 2);
  PredId flat = *u.predicates().Find(*u.symbols().Find("flat"), 2);
  VersionChain chain(w.db);

  auto pinned = chain.Pin();
  const Relation* pinned_up = pinned->db().Find(up);
  const Relation* pinned_flat = pinned->db().Find(flat);
  ASSERT_NE(pinned_up, nullptr);
  ASSERT_NE(pinned_flat, nullptr);

  WriteBatch batch;
  batch.Insert(up, {u.Constant("cw_a"), u.Constant("cw_b")});
  (void)chain.Commit(w.db, batch);

  // The untouched relation is structurally shared (same object); the
  // mutated one was cloned, so the base now holds a different object and
  // the pinned snapshot's tuple set is unchanged.
  EXPECT_EQ(pinned->db().Find(flat), pinned_flat);
  EXPECT_EQ(w.db.Find(flat), pinned_flat);
  EXPECT_NE(w.db.Find(up), pinned_up);
  EXPECT_FALSE(pinned_up->Contains(
      std::vector<TermId>{u.Constant("cw_a"), u.Constant("cw_b")}));
}

TEST(DbVersionTest, ReadersPinnedMidWriteSeeWholeVersionsOnly) {
  // The versioned-read property test: 8 reader threads pin and evaluate
  // through a live QueryService while a writer walks a single fact
  // through a sequence of states, each batch retracting state i-1 and
  // inserting state i. Every answer must be exactly one of the published
  // states (one row, never zero or two — a torn pin would see the
  // mid-batch emptiness or both rows), and the observed state index must
  // be non-decreasing per thread once writes are ordered (each read sees
  // version N or N+1, never an older one after a newer one).
  constexpr int kStates = 64;
  Workload w = MakeAncestorChain(2);  // par: the single edge c0 -> c1
  Universe& u = *w.universe;
  PredId par = ParPred(w);
  TermId c0 = u.Constant("c0");
  std::vector<TermId> states;
  states.reserve(kStates);
  for (int i = 0; i < kStates; ++i) {
    states.push_back(u.Constant("s" + std::to_string(i)));
  }
  // Start in state 0: replace the seed edge with c0 -> s0.
  {
    WriteBatch setup;
    setup.Retract(par, {c0, u.Constant("c1")});
    setup.Insert(par, {c0, states[0]});
    ASSERT_TRUE(w.db.Apply(setup).ok());
  }

  QueryServiceOptions options;
  options.num_threads = 8;
  QueryService service(w.program, w.db, options);
  QueryRequest exemplar;
  exemplar.query = w.query;
  auto prepared = service.Prepare(exemplar);
  ASSERT_TRUE(prepared.ok());
  QueryService::FormHandle handle = *prepared;
  const std::vector<TermId> seed = {c0};
  ASSERT_EQ(service.Answer(handle, seed).tuples.size(), 1u);

  std::atomic<bool> writer_done{false};
  std::atomic<int> violations{0};
  std::thread writer([&] {
    for (int i = 1; i < kStates; ++i) {
      WriteBatch batch;
      batch.Retract(par, {c0, states[i - 1]});
      batch.Insert(par, {c0, states[i]});
      auto applied = service.ApplyWrites(batch);
      if (!applied.ok() || applied->relations_mutated != 1) {
        violations.fetch_add(1, std::memory_order_relaxed);
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    writer_done.store(true, std::memory_order_seq_cst);
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < 8; ++t) {
    readers.emplace_back([&] {
      int last_seen = 0;
      while (!writer_done.load(std::memory_order_seq_cst)) {
        QueryAnswer answer = service.Answer(handle, seed);
        if (!answer.status.ok() || answer.tuples.size() != 1 ||
            answer.tuples[0].size() != 1) {
          // Zero rows = a pin caught the mid-batch gap; two = both states.
          violations.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        const TermId value = answer.tuples[0][0];
        int index = -1;
        for (int i = 0; i < kStates; ++i) {
          if (states[i] == value) {
            index = i;
            break;
          }
        }
        if (index < last_seen) {
          // Went back in time: served a version older than one already
          // observed on this thread.
          violations.fetch_add(1, std::memory_order_relaxed);
        }
        last_seen = index;
      }
    });
  }
  writer.join();
  for (std::thread& reader : readers) reader.join();
  EXPECT_EQ(violations.load(), 0);

  // Settled: everyone sees the final state, and the chain retires old
  // versions as the last pins drop (only the head stays live).
  QueryAnswer final_read = service.Answer(handle, seed);
  ASSERT_EQ(final_read.tuples.size(), 1u);
  EXPECT_EQ(final_read.tuples[0][0], states[kStates - 1]);
  QueryService::Stats stats = service.stats();
  EXPECT_EQ(stats.versions_published - stats.versions_retired, 1u);
}

}  // namespace
}  // namespace magic
