#include "engine/query_service.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "workload/generators.h"

namespace magic {
namespace {

/// Every strategy PreparedQueryForm accepts, i.e. everything QueryService
/// can serve for derived-predicate queries.
const Strategy kPreparableStrategies[] = {
    Strategy::kMagic,          Strategy::kSupplementaryMagic,
    Strategy::kCounting,       Strategy::kSupplementaryCounting,
    Strategy::kCountingSemijoin, Strategy::kSupCountingSemijoin,
};

Query InstanceAt(const Workload& w, const std::string& node) {
  Query query = w.query;
  query.goal.args[0] = w.universe->Constant(node);
  return query;
}

TEST(QueryServiceTest, BatchMatchesSingleThreadedEngineForEveryStrategy) {
  for (Strategy strategy : kPreparableStrategies) {
    Workload w = MakeAncestorChain(24);

    // Many instances of one form, deliberately repeating constants so the
    // cache and the pool both see duplicates in flight.
    std::vector<Query> batch;
    for (int repeat = 0; repeat < 4; ++repeat) {
      for (int i = 0; i < 24; i += 2) {
        batch.push_back(InstanceAt(w, "c" + std::to_string(i)));
      }
    }

    QueryServiceOptions options;
    options.num_threads = 8;
    options.engine.strategy = strategy;
    QueryService service(w.program, w.db, options);
    std::vector<QueryAnswer> answers = service.AnswerBatch(batch);
    ASSERT_EQ(answers.size(), batch.size());

    EngineOptions engine_options;
    engine_options.strategy = strategy;
    QueryEngine engine(engine_options);
    for (size_t i = 0; i < batch.size(); ++i) {
      ASSERT_TRUE(answers[i].status.ok())
          << StrategyName(strategy) << ": " << answers[i].status.ToString();
      QueryAnswer expected = engine.Run(w.program, batch[i], w.db);
      ASSERT_TRUE(expected.status.ok());
      EXPECT_EQ(answers[i].tuples, expected.tuples)
          << StrategyName(strategy) << " query #" << i;
    }

    QueryService::Stats stats = service.stats();
    EXPECT_EQ(stats.forms_compiled, 1u) << StrategyName(strategy);
    EXPECT_EQ(stats.cache_hits, batch.size() - 1) << StrategyName(strategy);
    EXPECT_EQ(stats.queries_served, batch.size()) << StrategyName(strategy);
  }
}

TEST(QueryServiceTest, SameGenerationBatchMatchesEngine) {
  Workload w = MakeSameGenNonlinear(6, 4);
  std::vector<Query> batch;
  for (int level = 0; level < 3; ++level) {
    for (int column = 0; column < 4; ++column) {
      batch.push_back(InstanceAt(w, "n" + std::to_string(level) + "_" +
                                        std::to_string(column)));
    }
  }

  QueryServiceOptions options;
  options.num_threads = 8;
  QueryService service(w.program, w.db, options);
  std::vector<QueryAnswer> answers = service.AnswerBatch(batch);

  QueryEngine engine;
  for (size_t i = 0; i < batch.size(); ++i) {
    ASSERT_TRUE(answers[i].status.ok()) << answers[i].status.ToString();
    QueryAnswer expected = engine.Run(w.program, batch[i], w.db);
    EXPECT_EQ(answers[i].tuples, expected.tuples) << "query #" << i;
  }
}

/// The issue's hammer test: >= 8 client threads concurrently pushing
/// single queries (not batches) through one shared service and database,
/// with per-request strategy overrides so several forms compile and serve
/// interleaved. The counting strategies intern affine/integer terms during
/// evaluation, so this also exercises the concurrent TermArena.
TEST(QueryServiceTest, ConcurrentClientsShareOneServiceAndFormCache) {
  Workload w = MakeAncestorChain(20);
  Universe& u = *w.universe;

  QueryServiceOptions options;
  options.num_threads = 8;
  QueryService service(w.program, w.db, options);

  // Expected answers, computed single-threaded before any concurrency.
  // (Universe reads during serving are safe; this also pre-interns every
  // constant the clients use.)
  std::vector<Query> queries;
  for (int i = 0; i < 20; ++i) {
    queries.push_back(InstanceAt(w, "c" + std::to_string(i)));
  }
  std::vector<std::vector<std::vector<std::vector<TermId>>>> expected;
  for (Strategy strategy : kPreparableStrategies) {
    EngineOptions engine_options;
    engine_options.strategy = strategy;
    QueryEngine engine(engine_options);
    std::vector<std::vector<std::vector<TermId>>> per_query;
    for (const Query& query : queries) {
      QueryAnswer answer = engine.Run(w.program, query, w.db);
      ASSERT_TRUE(answer.status.ok());
      per_query.push_back(answer.tuples);
    }
    expected.push_back(std::move(per_query));
  }

  constexpr int kClients = 8;
  constexpr int kQueriesPerClient = 40;
  std::vector<int> failures(kClients, 0);
  {
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        for (int q = 0; q < kQueriesPerClient; ++q) {
          // Deterministic per-client mix of instances and strategies.
          size_t strategy_index = (c + q) % std::size(kPreparableStrategies);
          size_t query_index = (c * 7 + q * 3) % queries.size();
          QueryRequest request;
          request.query = queries[query_index];
          request.strategy = kPreparableStrategies[strategy_index];
          QueryAnswer answer = service.Submit(request).get();
          if (!answer.status.ok() ||
              answer.tuples != expected[strategy_index][query_index]) {
            ++failures[c];
          }
        }
      });
    }
    for (std::thread& client : clients) client.join();
  }
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(failures[c], 0) << "client " << c;
  }

  QueryService::Stats stats = service.stats();
  EXPECT_EQ(stats.queries_served,
            static_cast<size_t>(kClients) * kQueriesPerClient);
  // One compiled form per strategy, everything else cache hits.
  EXPECT_EQ(stats.forms_compiled, std::size(kPreparableStrategies));
  (void)u;
}

TEST(QueryServiceTest, BasePredicateQueriesAreDirectSelections) {
  Workload w = MakeAncestorChain(10);
  Universe& u = *w.universe;
  PredId par = *u.predicates().Find(*u.symbols().Find("par"), 2);

  Query query;
  query.goal.pred = par;
  query.goal.args = {u.Constant("c3"), u.FreshVariable("Y")};

  QueryServiceOptions options;
  options.num_threads = 2;
  QueryService service(w.program, w.db, options);
  QueryAnswer answer = service.Answer(query);
  ASSERT_TRUE(answer.status.ok()) << answer.status.ToString();
  ASSERT_EQ(answer.tuples.size(), 1u);
  EXPECT_EQ(u.TermToString(answer.tuples[0][0]), "c4");
  EXPECT_EQ(service.stats().forms_compiled, 0u);
}

TEST(QueryServiceTest, RejectsNonPreparableStrategies) {
  Workload w = MakeAncestorChain(5);
  QueryServiceOptions options;
  options.num_threads = 2;
  options.engine.strategy = Strategy::kTopDown;
  QueryService service(w.program, w.db, options);
  QueryAnswer answer = service.Answer(w.query);
  EXPECT_EQ(answer.status.code(), StatusCode::kInvalidArgument);
}

TEST(QueryServiceTest, AnswersComeBackInInputOrder) {
  Workload w = MakeAncestorChain(12);
  Universe& u = *w.universe;
  std::vector<Query> batch;
  for (int i = 11; i >= 0; --i) {
    batch.push_back(InstanceAt(w, "c" + std::to_string(i)));
  }
  QueryServiceOptions options;
  options.num_threads = 8;
  QueryService service(w.program, w.db, options);
  std::vector<QueryAnswer> answers = service.AnswerBatch(batch);
  ASSERT_EQ(answers.size(), 12u);
  // Query anc(c_i, Y) over a 12-chain has 11 - i answers; input order is
  // i = 11 .. 0, so sizes must come back strictly increasing.
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(answers[i].tuples.size(), static_cast<size_t>(i));
  }
  (void)u;
}

}  // namespace
}  // namespace magic
