#include "engine/query_service.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "workload/generators.h"

namespace magic {
namespace {

/// Every strategy PreparedQueryForm accepts, i.e. everything QueryService
/// can serve for derived-predicate queries.
const Strategy kPreparableStrategies[] = {
    Strategy::kMagic,          Strategy::kSupplementaryMagic,
    Strategy::kCounting,       Strategy::kSupplementaryCounting,
    Strategy::kCountingSemijoin, Strategy::kSupCountingSemijoin,
};

Query InstanceAt(const Workload& w, const std::string& node) {
  Query query = w.query;
  query.goal.args[0] = w.universe->Constant(node);
  return query;
}

TEST(QueryServiceTest, BatchMatchesSingleThreadedEngineForEveryStrategy) {
  for (Strategy strategy : kPreparableStrategies) {
    Workload w = MakeAncestorChain(24);

    // Many instances of one form, deliberately repeating constants so the
    // cache and the pool both see duplicates in flight.
    std::vector<QueryRequest> batch;
    for (int repeat = 0; repeat < 4; ++repeat) {
      for (int i = 0; i < 24; i += 2) {
        QueryRequest request;
        request.query = InstanceAt(w, "c" + std::to_string(i));
        batch.push_back(std::move(request));
      }
    }

    QueryServiceOptions options;
    options.num_threads = 8;
    options.engine.strategy = strategy;
    QueryService service(w.program, w.db, options);
    std::vector<QueryAnswer> answers = service.AnswerBatch(batch);
    ASSERT_EQ(answers.size(), batch.size());

    EngineOptions engine_options;
    engine_options.strategy = strategy;
    QueryEngine engine(engine_options);
    for (size_t i = 0; i < batch.size(); ++i) {
      ASSERT_TRUE(answers[i].status.ok())
          << StrategyName(strategy) << ": " << answers[i].status.ToString();
      QueryAnswer expected = engine.Run(w.program, batch[i].query, w.db);
      ASSERT_TRUE(expected.status.ok());
      EXPECT_EQ(answers[i].tuples, expected.tuples)
          << StrategyName(strategy) << " query #" << i;
    }

    QueryService::Stats stats = service.stats();
    EXPECT_EQ(stats.forms_compiled, 1u) << StrategyName(strategy);
    EXPECT_EQ(stats.form_cache_hits, batch.size() - 1)
        << StrategyName(strategy);
    EXPECT_EQ(stats.queries_served, batch.size()) << StrategyName(strategy);
  }
}

TEST(QueryServiceTest, SameGenerationBatchMatchesEngine) {
  Workload w = MakeSameGenNonlinear(6, 4);
  std::vector<QueryRequest> batch;
  for (int level = 0; level < 3; ++level) {
    for (int column = 0; column < 4; ++column) {
      QueryRequest request;
      request.query = InstanceAt(w, "n" + std::to_string(level) + "_" +
                                        std::to_string(column));
      batch.push_back(std::move(request));
    }
  }

  QueryServiceOptions options;
  options.num_threads = 8;
  QueryService service(w.program, w.db, options);
  std::vector<QueryAnswer> answers = service.AnswerBatch(batch);

  QueryEngine engine;
  for (size_t i = 0; i < batch.size(); ++i) {
    ASSERT_TRUE(answers[i].status.ok()) << answers[i].status.ToString();
    QueryAnswer expected = engine.Run(w.program, batch[i].query, w.db);
    EXPECT_EQ(answers[i].tuples, expected.tuples) << "query #" << i;
  }
}

/// The issue's hammer test: >= 8 client threads concurrently pushing
/// single queries (not batches) through one shared service and database,
/// with per-request strategy overrides so several forms compile and serve
/// interleaved. The counting strategies intern affine/integer terms during
/// evaluation, so this also exercises the concurrent TermArena.
TEST(QueryServiceTest, ConcurrentClientsShareOneServiceAndFormCache) {
  Workload w = MakeAncestorChain(20);
  Universe& u = *w.universe;

  QueryServiceOptions options;
  options.num_threads = 8;
  QueryService service(w.program, w.db, options);

  // Expected answers, computed single-threaded before any concurrency.
  // (Universe reads during serving are safe; this also pre-interns every
  // constant the clients use.)
  std::vector<Query> queries;
  for (int i = 0; i < 20; ++i) {
    queries.push_back(InstanceAt(w, "c" + std::to_string(i)));
  }
  std::vector<std::vector<std::vector<std::vector<TermId>>>> expected;
  for (Strategy strategy : kPreparableStrategies) {
    EngineOptions engine_options;
    engine_options.strategy = strategy;
    QueryEngine engine(engine_options);
    std::vector<std::vector<std::vector<TermId>>> per_query;
    for (const Query& query : queries) {
      QueryAnswer answer = engine.Run(w.program, query, w.db);
      ASSERT_TRUE(answer.status.ok());
      per_query.push_back(answer.tuples);
    }
    expected.push_back(std::move(per_query));
  }

  constexpr int kClients = 8;
  constexpr int kQueriesPerClient = 40;
  std::vector<int> failures(kClients, 0);
  {
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        for (int q = 0; q < kQueriesPerClient; ++q) {
          // Deterministic per-client mix of instances and strategies.
          size_t strategy_index = (c + q) % std::size(kPreparableStrategies);
          size_t query_index = (c * 7 + q * 3) % queries.size();
          QueryRequest request;
          request.query = queries[query_index];
          request.strategy = kPreparableStrategies[strategy_index];
          QueryAnswer answer = service.Submit(request).get();
          if (!answer.status.ok() ||
              answer.tuples != expected[strategy_index][query_index]) {
            ++failures[c];
          }
        }
      });
    }
    for (std::thread& client : clients) client.join();
  }
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(failures[c], 0) << "client " << c;
  }

  QueryService::Stats stats = service.stats();
  EXPECT_EQ(stats.queries_served,
            static_cast<size_t>(kClients) * kQueriesPerClient);
  // One compiled form per strategy, everything else cache hits.
  EXPECT_EQ(stats.forms_compiled, std::size(kPreparableStrategies));
  (void)u;
}

TEST(QueryServiceTest, BasePredicateQueriesAreDirectSelections) {
  Workload w = MakeAncestorChain(10);
  Universe& u = *w.universe;
  PredId par = *u.predicates().Find(*u.symbols().Find("par"), 2);

  Query query;
  query.goal.pred = par;
  query.goal.args = {u.Constant("c3"), u.FreshVariable("Y")};

  QueryServiceOptions options;
  options.num_threads = 2;
  QueryService service(w.program, w.db, options);
  QueryRequest request;
  request.query = query;
  QueryAnswer answer = service.Answer(request);
  ASSERT_TRUE(answer.status.ok()) << answer.status.ToString();
  ASSERT_EQ(answer.tuples.size(), 1u);
  EXPECT_EQ(u.TermToString(answer.tuples[0][0]), "c4");
  EXPECT_EQ(service.stats().forms_compiled, 0u);
}

TEST(QueryServiceTest, ServesNonRewritingStrategiesAsPreparedForms) {
  // naive/seminaive/topdown compile to plans like everything else and are
  // served under the shared lock — no exclusive fallback path exists.
  // Interleaved here with rewriting-strategy requests on the same pool.
  Workload w = MakeAncestorChain(16);
  QueryServiceOptions options;
  options.num_threads = 4;
  QueryService service(w.program, w.db, options);

  const Strategy non_rewriting[] = {Strategy::kNaiveBottomUp,
                                    Strategy::kSemiNaiveBottomUp,
                                    Strategy::kTopDown};
  std::vector<QueryRequest> batch;
  for (Strategy strategy : non_rewriting) {
    for (int i = 0; i < 8; ++i) {
      QueryRequest request;
      request.query = InstanceAt(w, "c" + std::to_string(i));
      request.strategy = strategy;
      batch.push_back(request);
      QueryRequest rewriting = request;
      rewriting.strategy = Strategy::kSupplementaryMagic;
      batch.push_back(rewriting);
    }
  }
  std::vector<QueryAnswer> answers = service.AnswerBatch(batch);
  ASSERT_EQ(answers.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    ASSERT_TRUE(answers[i].status.ok())
        << "query #" << i << ": " << answers[i].status.ToString();
    EngineOptions engine_options;
    engine_options.strategy = *batch[i].strategy;
    QueryAnswer expected =
        QueryEngine(engine_options).Run(w.program, batch[i].query, w.db);
    EXPECT_EQ(answers[i].tuples, expected.tuples)
        << StrategyName(*batch[i].strategy) << " query #" << i;
  }
  QueryService::Stats stats = service.stats();
  // One compiled form per strategy (3 non-rewriting + gsms); every request
  // resolved through the form cache — no fallback counter exists anymore.
  EXPECT_EQ(stats.forms_compiled, std::size(non_rewriting) + 1);
  EXPECT_EQ(stats.queries_served, batch.size());
}

TEST(QueryServiceTest, PreparesNonRewritingStrategyHandles) {
  // The strategies that used to be fallback-only are first-class handles:
  // Prepare succeeds, and the handle serves instances with limits/cache
  // like any rewriting form.
  Workload w = MakeAncestorChain(12);
  Universe& u = *w.universe;
  QueryServiceOptions options;
  options.num_threads = 2;
  QueryService service(w.program, w.db, options);

  for (Strategy strategy : {Strategy::kNaiveBottomUp,
                            Strategy::kSemiNaiveBottomUp,
                            Strategy::kTopDown}) {
    QueryRequest request;
    request.query = w.query;
    request.strategy = strategy;
    auto handle = service.Prepare(request);
    ASSERT_TRUE(handle.ok()) << StrategyName(strategy) << ": "
                             << handle.status().ToString();
    EXPECT_TRUE(handle->valid());
    EXPECT_EQ(handle->adornment().ToString(), "bf");
    EXPECT_EQ(handle->bound_arity(), 1u);

    QueryAnswer answer = service.Answer(*handle, {u.Constant("c3")});
    ASSERT_TRUE(answer.status.ok()) << answer.status.ToString();
    EXPECT_EQ(answer.tuples.size(), 8u);  // c4 .. c11
    EXPECT_FALSE(answer.from_cache);

    // Second instance of the same handle hits the AnswerCache.
    QueryAnswer repeat = service.Answer(*handle, {u.Constant("c3")});
    EXPECT_TRUE(repeat.from_cache);
    EXPECT_EQ(repeat.tuples, answer.tuples);

    // Row limits flow through the plan's control hook.
    QueryLimits limits;
    limits.row_limit = 2;
    QueryAnswer limited =
        service.Answer(*handle, {u.Constant("c0")}, limits);
    ASSERT_TRUE(limited.status.ok());
    EXPECT_EQ(limited.outcome, AnswerStatus::kTruncated);
    EXPECT_EQ(limited.tuples.size(), 2u);
  }
}

TEST(QueryServiceTest, PrepareRejectsBasePredicatesAndBadSip) {
  Workload w = MakeAncestorChain(5);
  Universe& u = *w.universe;
  QueryServiceOptions options;
  options.num_threads = 2;
  QueryService service(w.program, w.db, options);

  QueryRequest base;
  base.query.goal.pred = *u.predicates().Find(*u.symbols().Find("par"), 2);
  base.query.goal.args = {u.Constant("c0"), u.FreshVariable("Y")};
  EXPECT_EQ(service.Prepare(base).status().code(),
            StatusCode::kInvalidArgument);

  QueryRequest bad_sip;
  bad_sip.query = w.query;
  bad_sip.sip = "no-such-sip";
  EXPECT_FALSE(service.Prepare(bad_sip).ok());
}

TEST(QueryServiceTest, RowLimitStopsEvaluationEarly) {
  // The issue's acceptance bar: over a large recursive EDB, a row_limit=1
  // query must do strictly less evaluation work than the unlimited run,
  // not just return fewer rows.
  Workload w = MakeAncestorChain(300);
  Universe& u = *w.universe;
  QueryServiceOptions options;
  options.num_threads = 2;
  // This test measures evaluation work; a warm AnswerCache would serve the
  // repeats without evaluating and make the comparisons vacuous.
  options.cache_bytes = 0;
  QueryService service(w.program, w.db, options);

  QueryRequest exemplar;
  exemplar.query = w.query;
  auto handle = service.Prepare(exemplar);
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  EXPECT_TRUE(handle->valid());
  EXPECT_EQ(handle->bound_arity(), 1u);

  QueryAnswer unlimited = service.Answer(*handle, {u.Constant("c0")});
  ASSERT_TRUE(unlimited.status.ok()) << unlimited.status.ToString();
  EXPECT_EQ(unlimited.outcome, AnswerStatus::kOk);
  EXPECT_EQ(unlimited.tuples.size(), 299u);

  QueryLimits limits;
  limits.row_limit = 1;
  QueryAnswer limited = service.Answer(*handle, {u.Constant("c0")}, limits);
  ASSERT_TRUE(limited.status.ok()) << limited.status.ToString();
  EXPECT_EQ(limited.outcome, AnswerStatus::kTruncated);
  EXPECT_TRUE(limited.truncated());
  ASSERT_EQ(limited.tuples.size(), 1u);
  // The single tuple is a genuine answer.
  EXPECT_TRUE(std::find(unlimited.tuples.begin(), unlimited.tuples.end(),
                        limited.tuples[0]) != unlimited.tuples.end());

  // Strictly less work: fewer facts derived and fewer fixpoint rounds.
  EXPECT_LT(limited.eval_stats.new_facts, unlimited.eval_stats.new_facts);
  EXPECT_LT(limited.eval_stats.iterations, unlimited.eval_stats.iterations);
  EXPECT_LT(limited.total_facts, unlimited.total_facts);

  // A mid-sized limit is also an exact prefix size.
  limits.row_limit = 7;
  QueryAnswer seven = service.Answer(*handle, {u.Constant("c0")}, limits);
  ASSERT_TRUE(seven.status.ok());
  EXPECT_EQ(seven.tuples.size(), 7u);
  EXPECT_EQ(seven.outcome, AnswerStatus::kTruncated);

  QueryService::Stats stats = service.stats();
  ASSERT_EQ(stats.forms.size(), 1u);
  EXPECT_EQ(stats.forms[0].pred, "anc");
  EXPECT_EQ(stats.forms[0].adornment, "bf");
  EXPECT_EQ(stats.forms[0].queries, 3u);
  EXPECT_EQ(stats.forms[0].truncated, 2u);
  EXPECT_EQ(stats.forms[0].rows, 299u + 1u + 7u);
}

TEST(QueryServiceTest, DeadlineExpiryReportsDeadlineExceeded) {
  Workload w = MakeAncestorChain(64);
  QueryServiceOptions options;
  options.num_threads = 2;
  QueryService service(w.program, w.db, options);

  QueryRequest request;
  request.query = w.query;
  request.limits.deadline = std::chrono::milliseconds(0);  // already expired
  QueryAnswer answer = service.Submit(request).get();
  EXPECT_EQ(answer.outcome, AnswerStatus::kDeadlineExceeded);
  EXPECT_EQ(answer.status.code(), StatusCode::kDeadlineExceeded);
}

TEST(QueryServiceTest, InlineWarmHitHonorsTheDeadline) {
  // Regression: the inline warm-cache path used to skip the deadline
  // check, so an already-expired request came back kOk-from-cache while
  // the same request on the queued path was shed kDeadlineExceeded.
  // Cache temperature must not change the outcome a client observes.
  Workload w = MakeAncestorChain(16);
  Universe& u = *w.universe;
  QueryServiceOptions options;
  options.num_threads = 2;
  QueryService service(w.program, w.db, options);

  QueryRequest exemplar;
  exemplar.query = w.query;
  auto handle = service.Prepare(exemplar);
  ASSERT_TRUE(handle.ok());
  std::vector<TermId> seed = {u.Constant("c0")};
  ASSERT_TRUE(service.Answer(*handle, seed).status.ok());  // fill
  ASSERT_TRUE(service.Answer(*handle, seed).from_cache);   // warm

  QueryLimits expired;
  expired.deadline = std::chrono::milliseconds(0);
  QueryAnswer answer = service.Answer(*handle, seed, expired);
  EXPECT_EQ(answer.outcome, AnswerStatus::kDeadlineExceeded);
  EXPECT_EQ(answer.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_FALSE(answer.from_cache);
  EXPECT_TRUE(answer.tuples.empty());
  EXPECT_EQ(service.stats().deadline_shed, 1u);

  // A live deadline still serves warm.
  QueryLimits generous;
  generous.deadline = std::chrono::seconds(30);
  QueryAnswer warm = service.Answer(*handle, seed, generous);
  EXPECT_TRUE(warm.from_cache);
  EXPECT_EQ(warm.outcome, AnswerStatus::kOk);
}

TEST(QueryServiceTest, PresetCancellationTokenReportsCancelled) {
  Workload w = MakeAncestorChain(64);
  QueryServiceOptions options;
  options.num_threads = 2;
  QueryService service(w.program, w.db, options);

  QueryRequest request;
  request.query = w.query;
  request.limits.cancel = std::make_shared<std::atomic<bool>>(true);
  QueryAnswer answer = service.Submit(request).get();
  EXPECT_EQ(answer.outcome, AnswerStatus::kCancelled);
  EXPECT_EQ(answer.status.code(), StatusCode::kCancelled);

  // Base-predicate (direct selection) requests honor the limits too.
  Universe& u = *w.universe;
  QueryRequest base = request;
  base.query.goal.pred = *u.predicates().Find(*u.symbols().Find("par"), 2);
  base.query.goal.args = {u.Constant("c0"), u.FreshVariable("Y")};
  QueryAnswer base_answer = service.Submit(base).get();
  EXPECT_EQ(base_answer.outcome, AnswerStatus::kCancelled);
}

TEST(QueryServiceTest, CursorStreamsChunksToExhaustion) {
  Workload w = MakeAncestorChain(32);
  Universe& u = *w.universe;
  QueryServiceOptions options;
  options.num_threads = 2;
  // Derivation order is the point here; a cached serve of the repeated
  // seed would feed the cursor in sorted order instead.
  options.cache_bytes = 0;
  QueryService service(w.program, w.db, options);

  QueryRequest exemplar;
  exemplar.query = w.query;
  auto handle = service.Prepare(exemplar);
  ASSERT_TRUE(handle.ok());
  QueryAnswer expected = service.Answer(*handle, {u.Constant("c0")});
  ASSERT_TRUE(expected.status.ok());
  ASSERT_EQ(expected.tuples.size(), 31u);

  AnswerCursor cursor = service.Stream(*handle, {u.Constant("c0")});
  std::vector<std::vector<TermId>> streamed;
  std::vector<std::vector<TermId>> chunk;
  size_t chunks = 0;
  while (cursor.Next(5, &chunk)) {
    ASSERT_FALSE(chunk.empty());
    ASSERT_LE(chunk.size(), 5u);
    streamed.insert(streamed.end(), chunk.begin(), chunk.end());
    ++chunks;
  }
  EXPECT_TRUE(chunk.empty());
  EXPECT_GE(chunks, 7u);  // 31 tuples in chunks of <= 5
  // Exhausted cursors stay exhausted.
  EXPECT_FALSE(cursor.Next(5, &chunk));

  const QueryAnswer& final = cursor.Finish();
  EXPECT_TRUE(final.status.ok()) << final.status.ToString();
  EXPECT_EQ(final.outcome, AnswerStatus::kOk);
  EXPECT_TRUE(final.tuples.empty());  // streamed, not materialized

  // Derivation order is a permutation of the sorted answer set, with no
  // duplicates.
  EXPECT_EQ(streamed.size(), expected.tuples.size());
  std::vector<std::vector<TermId>> sorted = streamed;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, expected.tuples);

  // On an ancestor chain from c0, derivation order is the chain order:
  // the first streamed tuple is the first derived fact (c1), which the
  // full sorted run would only confirm after the whole fixpoint.
  EXPECT_EQ(u.TermToString(streamed[0][0]), "c1");
}

TEST(QueryServiceTest, CursorHonorsRowLimit) {
  Workload w = MakeAncestorChain(40);
  Universe& u = *w.universe;
  QueryServiceOptions options;
  options.num_threads = 2;
  QueryService service(w.program, w.db, options);

  QueryRequest exemplar;
  exemplar.query = w.query;
  auto handle = service.Prepare(exemplar);
  ASSERT_TRUE(handle.ok());

  QueryLimits limits;
  limits.row_limit = 3;
  AnswerCursor cursor = service.Stream(*handle, {u.Constant("c0")}, limits);
  std::vector<std::vector<TermId>> streamed;
  std::vector<std::vector<TermId>> chunk;
  while (cursor.Next(2, &chunk)) {
    streamed.insert(streamed.end(), chunk.begin(), chunk.end());
  }
  EXPECT_EQ(streamed.size(), 3u);
  EXPECT_EQ(cursor.Finish().outcome, AnswerStatus::kTruncated);
}

TEST(QueryServiceTest, TrySubmitRejectsWhenQueueIsFull) {
  // Deterministic overload: a counting-strategy query over cyclic data
  // diverges (paper, Section 6), so with one worker it provably occupies
  // the pool until its cancellation token fires — no timing assumptions.
  Workload w = MakeAncestorCycle(48);
  Universe& u = *w.universe;
  QueryServiceOptions options;
  options.num_threads = 1;
  options.max_pending = 2;
  QueryService service(w.program, w.db, options);

  QueryRequest divergent;
  divergent.query = w.query;
  divergent.strategy = Strategy::kCounting;
  divergent.limits.max_facts = uint64_t{1} << 60;  // never self-terminates
  divergent.limits.cancel = std::make_shared<std::atomic<bool>>(false);
  std::future<QueryAnswer> running = service.Submit(divergent);

  // A second request queues behind it: depth is now max_pending.
  QueryRequest queued;
  queued.query.goal.pred = *u.predicates().Find(*u.symbols().Find("par"), 2);
  queued.query.goal.args = {u.Constant("c0"), u.FreshVariable("Y")};
  std::future<QueryAnswer> waiting = service.Submit(queued);

  QueryAnswer rejected = service.TrySubmit(queued).get();
  EXPECT_EQ(rejected.outcome, AnswerStatus::kOverloaded);
  EXPECT_EQ(rejected.status.code(), StatusCode::kResourceExhausted);

  // Plain Submit still queues regardless of depth.
  std::future<QueryAnswer> forced = service.Submit(queued);

  divergent.limits.cancel->store(true);
  QueryAnswer cancelled = running.get();
  EXPECT_EQ(cancelled.outcome, AnswerStatus::kCancelled);
  ASSERT_TRUE(waiting.get().status.ok());
  ASSERT_TRUE(forced.get().status.ok());

  QueryService::Stats stats = service.stats();
  EXPECT_EQ(stats.overloaded, 1u);
  EXPECT_EQ(stats.queries_served, 3u);  // the rejection is not "served"

  // With the queue drained, TrySubmit admits again.
  QueryAnswer admitted = service.TrySubmit(queued).get();
  EXPECT_TRUE(admitted.status.ok());
}

TEST(QueryServiceTest, HandleReuseHammerAcrossEightThreads) {
  // The tentpole's steady-state hot path: one prepared handle shared by 8
  // client threads, mixing unlimited, row-limited, and streaming requests.
  // Must stay TSan-clean.
  Workload w = MakeAncestorChain(24);
  Universe& u = *w.universe;
  QueryServiceOptions options;
  options.num_threads = 8;
  QueryService service(w.program, w.db, options);

  QueryRequest exemplar;
  exemplar.query = w.query;
  auto prepared = service.Prepare(exemplar);
  ASSERT_TRUE(prepared.ok());
  QueryService::FormHandle handle = *prepared;

  // Expected answer counts per start node, computed single-threaded.
  std::vector<size_t> expected_rows(24);
  for (int i = 0; i < 24; ++i) {
    QueryAnswer answer =
        service.Answer(handle, {u.Constant("c" + std::to_string(i))});
    ASSERT_TRUE(answer.status.ok());
    expected_rows[i] = answer.tuples.size();
  }

  constexpr int kClients = 8;
  constexpr int kQueriesPerClient = 48;
  std::vector<int> failures(kClients, 0);
  {
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        for (int q = 0; q < kQueriesPerClient; ++q) {
          size_t node = (c * 5 + q * 3) % 24;
          std::vector<TermId> seed = {
              u.Constant("c" + std::to_string(node))};
          switch ((c + q) % 3) {
            case 0: {  // unlimited future
              QueryAnswer answer = service.Submit(handle, seed).get();
              if (!answer.status.ok() ||
                  answer.tuples.size() != expected_rows[node]) {
                ++failures[c];
              }
              break;
            }
            case 1: {  // row-limited
              QueryLimits limits;
              limits.row_limit = 2;
              QueryAnswer answer =
                  service.Answer(handle, std::move(seed), limits);
              size_t want = std::min<size_t>(2, expected_rows[node]);
              if (!answer.status.ok() || answer.tuples.size() != want) {
                ++failures[c];
              }
              break;
            }
            case 2: {  // streamed
              AnswerCursor cursor = service.Stream(handle, std::move(seed));
              size_t rows = 0;
              std::vector<std::vector<TermId>> chunk;
              while (cursor.Next(4, &chunk)) rows += chunk.size();
              if (!cursor.Finish().status.ok() ||
                  rows != expected_rows[node]) {
                ++failures[c];
              }
              break;
            }
          }
        }
      });
    }
    for (std::thread& client : clients) client.join();
  }
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(failures[c], 0) << "client " << c;
  }
  QueryService::Stats stats = service.stats();
  EXPECT_EQ(stats.forms_compiled, 1u);
  ASSERT_EQ(stats.forms.size(), 1u);
  EXPECT_EQ(stats.forms[0].queries,
            24u + static_cast<size_t>(kClients) * kQueriesPerClient);
}

TEST(QueryServiceTest, RepeatedSeedServesFromAnswerCache) {
  Workload w = MakeAncestorChain(16);
  Universe& u = *w.universe;
  QueryServiceOptions options;
  options.num_threads = 2;
  QueryService service(w.program, w.db, options);

  QueryRequest exemplar;
  exemplar.query = w.query;
  auto handle = service.Prepare(exemplar);
  ASSERT_TRUE(handle.ok());

  QueryAnswer first = service.Answer(*handle, {u.Constant("c0")});
  ASSERT_TRUE(first.status.ok());
  EXPECT_FALSE(first.from_cache);
  ASSERT_EQ(first.tuples.size(), 15u);

  QueryAnswer repeat = service.Answer(*handle, {u.Constant("c0")});
  ASSERT_TRUE(repeat.status.ok());
  EXPECT_TRUE(repeat.from_cache);
  EXPECT_EQ(repeat.outcome, AnswerStatus::kOk);
  EXPECT_EQ(repeat.tuples, first.tuples);
  // No evaluation ran for the hit, and the metrics say so.
  EXPECT_EQ(repeat.total_facts, 0u);

  // A row limit applies to the cached set too, without refilling it.
  QueryLimits limits;
  limits.row_limit = 4;
  QueryAnswer limited = service.Answer(*handle, {u.Constant("c0")}, limits);
  EXPECT_TRUE(limited.from_cache);
  EXPECT_EQ(limited.outcome, AnswerStatus::kTruncated);
  ASSERT_EQ(limited.tuples.size(), 4u);
  EXPECT_TRUE(std::equal(limited.tuples.begin(), limited.tuples.end(),
                         first.tuples.begin()));

  QueryService::Stats stats = service.stats();
  EXPECT_EQ(stats.answers_from_cache, 2u);
  EXPECT_EQ(stats.answer_cache.hits, 2u);
  EXPECT_EQ(stats.answer_cache.inserts, 1u);
  EXPECT_GT(stats.answer_cache.bytes, 0u);
  // Cached serves still count as served, per form and service-wide.
  EXPECT_EQ(stats.queries_served, 3u);
  ASSERT_EQ(stats.forms.size(), 1u);
  EXPECT_EQ(stats.forms[0].queries, 3u);
  EXPECT_EQ(stats.forms[0].rows, 15u + 15u + 4u);
}

TEST(QueryServiceTest, PostWriteQueryNeverServesStaleAnswer) {
  // The issue's invalidation bar: an EDB write between two identical
  // queries must yield the updated answer — the cache may never serve the
  // pre-write snapshot. Writes happen at quiescent points (the documented
  // contract); the post-write reads hammer from 8 threads under TSan.
  Workload w = MakeAncestorChain(8);  // c0 -> ... -> c7
  Universe& u = *w.universe;
  PredId par = *u.predicates().Find(*u.symbols().Find("par"), 2);
  QueryServiceOptions options;
  options.num_threads = 4;
  QueryService service(w.program, w.db, options);

  QueryRequest exemplar;
  exemplar.query = w.query;
  auto handle = service.Prepare(exemplar);
  ASSERT_TRUE(handle.ok());
  std::vector<TermId> seed = {u.Constant("c0")};

  ASSERT_EQ(service.Answer(*handle, seed).tuples.size(), 7u);
  QueryAnswer warm = service.Answer(*handle, seed);
  EXPECT_TRUE(warm.from_cache);  // the pre-write entry is live

  // Quiescent write: extend the chain by one edge.
  ASSERT_TRUE(w.db.AddFact(par, {u.Constant("c7"), u.Constant("c8")}).ok());

  QueryAnswer updated = service.Answer(*handle, seed);
  ASSERT_TRUE(updated.status.ok());
  EXPECT_FALSE(updated.from_cache);  // the stale entry became unreachable
  ASSERT_EQ(updated.tuples.size(), 8u);

  // Concurrent post-write reads: every thread must see the 8-row answer,
  // whether it evaluates or hits the freshly filled entry.
  std::atomic<int> stale{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 8; ++t) {
    readers.emplace_back([&] {
      for (int q = 0; q < 32; ++q) {
        QueryAnswer answer = service.Answer(*handle, seed);
        if (!answer.status.ok() || answer.tuples.size() != 8u) {
          stale.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& reader : readers) reader.join();
  EXPECT_EQ(stale.load(), 0);

  // A truncating write (Clear) invalidates too: the whole derived set is
  // gone with the base facts.
  w.db.Clear(par);
  QueryAnswer empty = service.Answer(*handle, seed);
  ASSERT_TRUE(empty.status.ok());
  EXPECT_FALSE(empty.from_cache);
  EXPECT_TRUE(empty.tuples.empty());
}

TEST(QueryServiceTest, FreeFormAnswersSubsumeBoundInstances) {
  Workload w = MakeAncestorChain(12);
  Universe& u = *w.universe;
  QueryServiceOptions options;
  options.num_threads = 2;
  QueryService service(w.program, w.db, options);

  // Fill the cache with the fully-free form's complete answer set.
  QueryRequest free_request;
  free_request.query = w.query;
  free_request.query.goal.args[0] = u.FreshVariable("X");
  auto free_handle = service.Prepare(free_request);
  ASSERT_TRUE(free_handle.ok());
  EXPECT_EQ(free_handle->bound_arity(), 0u);
  QueryAnswer all = service.Answer(*free_handle, {});
  ASSERT_TRUE(all.status.ok());
  EXPECT_FALSE(all.from_cache);

  // A bound instance of the same predicate misses its exact key but is
  // served by filtering the free set — no evaluation.
  QueryRequest bound_request;
  bound_request.query = w.query;
  auto bound_handle = service.Prepare(bound_request);
  ASSERT_TRUE(bound_handle.ok());
  QueryAnswer filtered = service.Answer(*bound_handle, {u.Constant("c3")});
  ASSERT_TRUE(filtered.status.ok());
  EXPECT_TRUE(filtered.from_cache);
  ASSERT_EQ(filtered.tuples.size(), 8u);  // c4 .. c11

  // It matches what evaluation would have produced.
  QueryEngine engine;
  QueryAnswer expected = engine.Run(w.program, InstanceAt(w, "c3"), w.db);
  ASSERT_TRUE(expected.status.ok());
  EXPECT_EQ(filtered.tuples, expected.tuples);

  // The filtered result was promoted to an exact entry: the repeat is an
  // exact hit, not a second subsumption.
  QueryAnswer repeat = service.Answer(*bound_handle, {u.Constant("c3")});
  EXPECT_TRUE(repeat.from_cache);
  EXPECT_EQ(repeat.tuples, filtered.tuples);
  QueryService::Stats stats = service.stats();
  EXPECT_EQ(stats.answers_subsumed, 1u);
  EXPECT_EQ(stats.answers_from_cache, 2u);

  // With subsumption disabled, a different bound seed evaluates instead.
  QueryServiceOptions exact_only = options;
  exact_only.cache_subsumption = false;
  QueryService strict(w.program, w.db, exact_only);
  auto strict_free = strict.Prepare(free_request);
  ASSERT_TRUE(strict_free.ok());
  ASSERT_TRUE(strict.Answer(*strict_free, {}).status.ok());
  auto strict_bound = strict.Prepare(bound_request);
  ASSERT_TRUE(strict_bound.ok());
  QueryAnswer evaluated = strict.Answer(*strict_bound, {u.Constant("c3")});
  EXPECT_FALSE(evaluated.from_cache);
  EXPECT_EQ(evaluated.tuples, expected.tuples);
}

TEST(QueryServiceTest, RepeatedVariableFormNeverSubsumes) {
  // anc(X,X) has zero bound positions, but its answer set is not
  // guaranteed to be the complete relation (a repeated variable denotes
  // the diagonal — today's engine happens to drop the repetition, but
  // subsumption must not depend on that quirk). When the mask-0 form's
  // exemplar is not genuinely fully free, bound instances must evaluate.
  Workload w = MakeAncestorChain(12);
  Universe& u = *w.universe;
  QueryServiceOptions options;
  options.num_threads = 2;
  QueryService service(w.program, w.db, options);

  QueryRequest diagonal;
  diagonal.query = w.query;
  TermId x = u.FreshVariable("X");
  diagonal.query.goal.args = {x, x};
  auto diagonal_handle = service.Prepare(diagonal);
  ASSERT_TRUE(diagonal_handle.ok());
  EXPECT_EQ(diagonal_handle->bound_arity(), 0u);
  ASSERT_TRUE(service.Answer(*diagonal_handle, {}).status.ok());  // fills

  QueryRequest bound_request;
  bound_request.query = w.query;
  auto bound_handle = service.Prepare(bound_request);
  ASSERT_TRUE(bound_handle.ok());
  QueryAnswer answer = service.Answer(*bound_handle, {u.Constant("c3")});
  ASSERT_TRUE(answer.status.ok());
  EXPECT_FALSE(answer.from_cache);  // evaluated, not filtered
  EXPECT_EQ(answer.tuples.size(), 8u);
  EXPECT_EQ(service.stats().answers_subsumed, 0u);
}

TEST(QueryServiceTest, TruncatedAnswersAreNeverCached) {
  Workload w = MakeAncestorChain(32);
  Universe& u = *w.universe;
  QueryServiceOptions options;
  options.num_threads = 2;
  QueryService service(w.program, w.db, options);

  QueryRequest exemplar;
  exemplar.query = w.query;
  auto handle = service.Prepare(exemplar);
  ASSERT_TRUE(handle.ok());
  std::vector<TermId> seed = {u.Constant("c0")};

  QueryLimits limits;
  limits.row_limit = 2;
  QueryAnswer truncated = service.Answer(*handle, seed, limits);
  EXPECT_EQ(truncated.outcome, AnswerStatus::kTruncated);

  // The partial answer set must not masquerade as the full one.
  QueryAnswer full = service.Answer(*handle, seed);
  ASSERT_TRUE(full.status.ok());
  EXPECT_FALSE(full.from_cache);
  EXPECT_EQ(full.tuples.size(), 31u);
  EXPECT_EQ(service.stats().answer_cache.inserts, 1u);  // the full run only

  // Outcome parity with the evaluated path at the boundary: a limit equal
  // to the answer count reports kTruncated cold (AnswerCollector stops at
  // >= row_limit) and must report kTruncated warm too; one past it is kOk.
  limits.row_limit = 31;
  QueryAnswer at_limit = service.Answer(*handle, seed, limits);
  EXPECT_TRUE(at_limit.from_cache);
  EXPECT_EQ(at_limit.outcome, AnswerStatus::kTruncated);
  EXPECT_EQ(at_limit.tuples.size(), 31u);
  limits.row_limit = 32;
  QueryAnswer past_limit = service.Answer(*handle, seed, limits);
  EXPECT_TRUE(past_limit.from_cache);
  EXPECT_EQ(past_limit.outcome, AnswerStatus::kOk);
}

TEST(QueryServiceTest, DisabledCacheAlwaysEvaluates) {
  Workload w = MakeAncestorChain(8);
  Universe& u = *w.universe;
  QueryServiceOptions options;
  options.num_threads = 2;
  options.cache_bytes = 0;
  QueryService service(w.program, w.db, options);

  QueryRequest exemplar;
  exemplar.query = w.query;
  auto handle = service.Prepare(exemplar);
  ASSERT_TRUE(handle.ok());
  for (int i = 0; i < 2; ++i) {
    QueryAnswer answer = service.Answer(*handle, {u.Constant("c0")});
    ASSERT_TRUE(answer.status.ok());
    EXPECT_FALSE(answer.from_cache);
    EXPECT_GT(answer.total_facts, 0u);  // evaluation really ran
  }
  QueryService::Stats stats = service.stats();
  EXPECT_EQ(stats.answers_from_cache, 0u);
  EXPECT_EQ(stats.answer_cache.hits, 0u);
  EXPECT_EQ(stats.answer_cache.inserts, 0u);
}

TEST(QueryServiceTest, StreamServesWarmHitsThroughTheCursor) {
  Workload w = MakeAncestorChain(20);
  Universe& u = *w.universe;
  QueryServiceOptions options;
  options.num_threads = 2;
  QueryService service(w.program, w.db, options);

  QueryRequest exemplar;
  exemplar.query = w.query;
  auto handle = service.Prepare(exemplar);
  ASSERT_TRUE(handle.ok());
  QueryAnswer fill = service.Answer(*handle, {u.Constant("c0")});
  ASSERT_TRUE(fill.status.ok());
  ASSERT_EQ(fill.tuples.size(), 19u);

  // The warm hit feeds the cursor inline (sorted order — the cached
  // canonical set, not a live derivation).
  AnswerCursor cursor = service.Stream(*handle, {u.Constant("c0")});
  std::vector<std::vector<TermId>> streamed;
  std::vector<std::vector<TermId>> chunk;
  while (cursor.Next(4, &chunk)) {
    streamed.insert(streamed.end(), chunk.begin(), chunk.end());
  }
  const QueryAnswer& final = cursor.Finish();
  EXPECT_TRUE(final.status.ok());
  EXPECT_TRUE(final.from_cache);
  EXPECT_EQ(streamed, fill.tuples);
}

TEST(QueryServiceTest, MixedStrategyHammerAcrossEightThreads) {
  // The issue's parallel non-rewriting bar: magic + seminaive + topdown
  // handles hammered on one shared service from 8 client threads, all
  // under the shared lock (the exclusive fallback is gone), with answer
  // equivalence against single-threaded engine runs. Must stay TSan-clean.
  Workload w = MakeAncestorChain(18);
  Universe& u = *w.universe;
  QueryServiceOptions options;
  options.num_threads = 8;
  // Force every request to evaluate: this hammer is about concurrent
  // evaluation of non-rewriting plans, not about cache hits.
  options.cache_bytes = 0;
  QueryService service(w.program, w.db, options);

  const Strategy strategies[] = {Strategy::kSupplementaryMagic,
                                 Strategy::kSemiNaiveBottomUp,
                                 Strategy::kTopDown};
  std::vector<QueryService::FormHandle> handles;
  for (Strategy strategy : strategies) {
    QueryRequest request;
    request.query = w.query;
    request.strategy = strategy;
    auto handle = service.Prepare(request);
    ASSERT_TRUE(handle.ok()) << StrategyName(strategy) << ": "
                             << handle.status().ToString();
    handles.push_back(*handle);
  }

  // Expected rows per start node, computed single-threaded (all three
  // strategies agree on the answer sets; verified per-strategy elsewhere).
  std::vector<size_t> expected_rows(18);
  for (int i = 0; i < 18; ++i) expected_rows[i] = 17 - i;

  constexpr int kClients = 8;
  constexpr int kQueriesPerClient = 24;
  std::vector<int> failures(kClients, 0);
  {
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        for (int q = 0; q < kQueriesPerClient; ++q) {
          size_t node = (c * 5 + q * 7) % 18;
          size_t which = (c + q) % std::size(strategies);
          QueryAnswer answer = service
                                   .Submit(handles[which],
                                           {u.Constant("c" +
                                                       std::to_string(node))})
                                   .get();
          if (!answer.status.ok() ||
              answer.tuples.size() != expected_rows[node]) {
            ++failures[c];
          }
        }
      });
    }
    for (std::thread& client : clients) client.join();
  }
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(failures[c], 0) << "client " << c;
  }
  QueryService::Stats stats = service.stats();
  EXPECT_EQ(stats.forms_compiled, std::size(strategies));
  EXPECT_EQ(stats.queries_served,
            static_cast<size_t>(kClients) * kQueriesPerClient);
}

TEST(QueryServiceTest, SimultaneousIdenticalMissesEvaluateOnce) {
  // Request coalescing: duplicates of an evaluating (form, seed) miss park
  // behind the leader and are served from its cache fill — exactly one
  // evaluation runs no matter how the pool interleaves.
  Workload w = MakeAncestorChain(64);
  Universe& u = *w.universe;
  QueryServiceOptions options;
  options.num_threads = 8;
  QueryService service(w.program, w.db, options);

  QueryRequest exemplar;
  exemplar.query = w.query;
  auto handle = service.Prepare(exemplar);
  ASSERT_TRUE(handle.ok());

  constexpr int kDuplicates = 16;
  std::vector<std::future<QueryAnswer>> futures;
  for (int i = 0; i < kDuplicates; ++i) {
    futures.push_back(service.Submit(*handle, {u.Constant("c0")}));
  }
  size_t evaluated = 0;
  for (std::future<QueryAnswer>& future : futures) {
    QueryAnswer answer = future.get();
    ASSERT_TRUE(answer.status.ok()) << answer.status.ToString();
    EXPECT_EQ(answer.tuples.size(), 63u);
    if (!answer.from_cache) ++evaluated;
  }
  // The leader evaluated; every duplicate — parked, queued, or late — was
  // served from the single fill.
  EXPECT_EQ(evaluated, 1u);
  QueryService::Stats stats = service.stats();
  EXPECT_EQ(stats.answer_cache.inserts, 1u);
  EXPECT_EQ(stats.answers_from_cache, kDuplicates - 1u);
  EXPECT_EQ(stats.queries_served, static_cast<size_t>(kDuplicates));

  // With coalescing disabled (and the cache off), every miss evaluates.
  QueryServiceOptions uncoalesced = options;
  uncoalesced.cache_bytes = 0;
  uncoalesced.coalesce_requests = false;
  QueryService every_time(w.program, w.db, uncoalesced);
  auto raw = every_time.Prepare(exemplar);
  ASSERT_TRUE(raw.ok());
  std::vector<std::future<QueryAnswer>> raw_futures;
  for (int i = 0; i < 4; ++i) {
    raw_futures.push_back(every_time.Submit(*raw, {u.Constant("c0")}));
  }
  for (std::future<QueryAnswer>& future : raw_futures) {
    EXPECT_FALSE(future.get().from_cache);
  }
  EXPECT_EQ(every_time.stats().coalesced, 0u);
}

TEST(QueryServiceTest, ParkedDuplicatesKeepTheirDeadlineAndAdmissionSlot) {
  // Two guarantees of the coalescing path, both deterministic here:
  //  1. a parked duplicate holds its admission slot, so max_pending
  //     backpressure counts it and TrySubmit sheds further load;
  //  2. its deadline stays anchored at its own submission — when the
  //     leader completes without a cache fill, the duplicate is shed
  //     kDeadlineExceeded instead of re-anchoring and evaluating.
  Workload w = MakeAncestorCycle(48);
  QueryServiceOptions options;
  options.num_threads = 1;  // one worker, deterministically occupied
  options.max_pending = 2;
  QueryService service(w.program, w.db, options);

  // Leader: a divergent counting query (paper, Section 6) that runs until
  // its cancellation token fires — it completes kCancelled, so it never
  // fills the AnswerCache.
  QueryRequest divergent;
  divergent.query = w.query;
  divergent.strategy = Strategy::kCounting;
  divergent.limits.max_facts = uint64_t{1} << 60;
  divergent.limits.cancel = std::make_shared<std::atomic<bool>>(false);
  std::future<QueryAnswer> leader = service.Submit(divergent);

  // Identical (form, seed) with a short deadline: parks behind the leader
  // (slot #2 of max_pending=2).
  QueryRequest duplicate = divergent;
  duplicate.limits = {};
  duplicate.limits.deadline = std::chrono::milliseconds(5);
  std::future<QueryAnswer> parked = service.Submit(duplicate);
  EXPECT_EQ(service.stats().coalesced, 1u);

  // Admission control sees the parked duplicate: a third identical
  // request finds the bounded queue full.
  QueryRequest third = divergent;
  third.limits = {};
  QueryAnswer rejected = service.TrySubmit(third).get();
  EXPECT_EQ(rejected.outcome, AnswerStatus::kOverloaded);

  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  divergent.limits.cancel->store(true);
  ASSERT_EQ(leader.get().outcome, AnswerStatus::kCancelled);

  // The leader couldn't fill, so the duplicate went around again — with
  // its original anchor, against which 50ms of park time counts: shed,
  // never evaluated.
  QueryAnswer answer = parked.get();
  EXPECT_EQ(answer.outcome, AnswerStatus::kDeadlineExceeded);
  EXPECT_EQ(answer.total_facts, 0u);
  EXPECT_EQ(answer.eval_stats.iterations, 0u);
  QueryService::Stats stats = service.stats();
  EXPECT_EQ(stats.deadline_shed, 1u);
  EXPECT_EQ(stats.overloaded, 1u);
}

TEST(QueryServiceTest, ExpiredQueuedRequestIsShedWithoutEvaluating) {
  // Deadline-aware dispatch: a request whose deadline passes while it sits
  // in the pool queue completes kDeadlineExceeded the moment a worker
  // picks it up — it never enters the fixpoint.
  Workload w = MakeAncestorCycle(48);
  Universe& u = *w.universe;
  QueryServiceOptions options;
  options.num_threads = 1;  // one worker, deterministically occupied
  QueryService service(w.program, w.db, options);

  // Occupy the only worker with a divergent counting query (paper,
  // Section 6: counting over cyclic data) until its token fires.
  QueryRequest divergent;
  divergent.query = w.query;
  divergent.strategy = Strategy::kCounting;
  divergent.limits.max_facts = uint64_t{1} << 60;
  divergent.limits.cancel = std::make_shared<std::atomic<bool>>(false);
  std::future<QueryAnswer> running = service.Submit(divergent);

  // Queue a request with a deadline that expires while it waits.
  QueryRequest doomed;
  doomed.query = InstanceAt(w, "c1");
  doomed.limits.deadline = std::chrono::milliseconds(1);
  std::future<QueryAnswer> shed = service.Submit(doomed);

  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  divergent.limits.cancel->store(true);
  ASSERT_EQ(running.get().outcome, AnswerStatus::kCancelled);

  QueryAnswer answer = shed.get();
  EXPECT_EQ(answer.outcome, AnswerStatus::kDeadlineExceeded);
  EXPECT_EQ(answer.status.code(), StatusCode::kDeadlineExceeded);
  // Never evaluated: no fixpoint ran, so the work metrics are zero.
  EXPECT_EQ(answer.total_facts, 0u);
  EXPECT_EQ(answer.eval_stats.iterations, 0u);
  QueryService::Stats stats = service.stats();
  EXPECT_EQ(stats.deadline_shed, 1u);
  (void)u;
}

TEST(QueryServiceTest, AnswersComeBackInInputOrder) {
  Workload w = MakeAncestorChain(12);
  Universe& u = *w.universe;
  std::vector<QueryRequest> batch;
  for (int i = 11; i >= 0; --i) {
    QueryRequest request;
    request.query = InstanceAt(w, "c" + std::to_string(i));
    batch.push_back(std::move(request));
  }
  QueryServiceOptions options;
  options.num_threads = 8;
  QueryService service(w.program, w.db, options);
  std::vector<QueryAnswer> answers = service.AnswerBatch(batch);
  ASSERT_EQ(answers.size(), 12u);
  // Query anc(c_i, Y) over a 12-chain has 11 - i answers; input order is
  // i = 11 .. 0, so sizes must come back strictly increasing.
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(answers[i].tuples.size(), static_cast<size_t>(i));
  }
  (void)u;
}

}  // namespace
}  // namespace magic
