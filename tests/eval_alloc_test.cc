// Proves the compiled join loop is allocation-free per row: global
// operator new is instrumented with a counter, and the fixpoint's heap
// allocation count is shown to scale with the *output* structure (relation
// storage, index buckets — roughly linear in nodes, amortized-logarithmic
// in rows) rather than with the rows scanned. Ancestor-chain closure is
// quadratic in chain length, so doubling the chain quadruples rows and
// probes; if the steady-state join allocated per row, the allocation count
// would quadruple too. The test pins the ratio well under that.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "eval/evaluator.h"
#include "workload/generators.h"

// Sanitizers interpose their own allocator machinery; the counts are still
// monotone but not comparable enough for a ratio assertion, so the strict
// checks are compiled out under ASan/TSan (the test still runs the
// workloads, which is what the sanitizers are there to watch).
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define MAGIC_ALLOC_TEST_STRICT 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define MAGIC_ALLOC_TEST_STRICT 0
#else
#define MAGIC_ALLOC_TEST_STRICT 1
#endif
#else
#define MAGIC_ALLOC_TEST_STRICT 1
#endif

namespace {

std::atomic<uint64_t> g_allocations{0};

}  // namespace

// GCC pairs the free() below with the *default* operator new at some call
// sites and warns -Wmismatched-new-delete; with both operators replaced
// malloc/free is the matched pair, so the warning is a false positive.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace magic {
namespace {

struct RunCost {
  uint64_t allocations;
  uint64_t join_probes;
  uint64_t new_facts;
};

RunCost MeasureNonlinear(int n) {
  // Workload construction (parsing, interning, EDB load) allocates freely;
  // only the evaluation itself is measured.
  Workload w = MakeNonlinearAncestorChain(n);
  const uint64_t before = g_allocations.load(std::memory_order_relaxed);
  EvalResult result = Evaluator().Run(w.program, w.db);
  const uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_TRUE(result.status.ok()) << result.status.ToString();
  return RunCost{after - before, result.stats.join_probes,
                 result.stats.new_facts};
}

TEST(EvalAllocTest, JoinLoopDoesNotAllocatePerProbedRow) {
  // Storing a new distinct fact legitimately allocates (dedup hash node,
  // bucket vector, amortized data growth) — the allocation-freedom claim
  // is about the *join loop*: probing, slot binding, and duplicate
  // derivations must not touch the heap. Nonlinear ancestor separates the
  // two scales: on a chain of n nodes the fixpoint derives ~n^2/2 facts
  // but probes ~n^3/6 candidate rows (every X<Z<Y triple), so doubling n
  // quadruples output while octupling join work. Allocation growth
  // tracking the output ratio — and staying far from the probe ratio —
  // means no allocation rides the per-row path.
  //
  // Warm once so one-time lazy initialization (locale, gtest internals,
  // first-touch statics inside the evaluator) doesn't skew the small run.
  MeasureNonlinear(8);

  RunCost small = MeasureNonlinear(32);
  RunCost large = MeasureNonlinear(64);

  // Premise check: probes grow decisively faster than facts.
  ASSERT_GT(small.join_probes, 0u);
  const double probe_ratio = static_cast<double>(large.join_probes) /
                             static_cast<double>(small.join_probes);
  const double fact_ratio = static_cast<double>(large.new_facts) /
                            static_cast<double>(small.new_facts);
  ASSERT_GE(probe_ratio, 1.5 * fact_ratio);

#if MAGIC_ALLOC_TEST_STRICT
  ASSERT_GT(small.allocations, 0u);
  const double alloc_ratio = static_cast<double>(large.allocations) /
                             static_cast<double>(small.allocations);
  // Per-probe allocation anywhere in the join loop would drag this toward
  // probe_ratio (~8); output-driven storage keeps it at fact_ratio (~4).
  EXPECT_LT(alloc_ratio, fact_ratio + 1.0)
      << "allocations scale with probed rows: " << small.allocations
      << " -> " << large.allocations << " (probes " << small.join_probes
      << " -> " << large.join_probes << ")";
  // Absolute bound: a handful of allocations per *stored* fact (dedup
  // node + bucket + index growth), regardless of how many rows were
  // scanned to derive it.
  EXPECT_LT(large.allocations, 4 * large.new_facts)
      << "more than ~4 allocations per derived fact";
#endif
}

TEST(EvalAllocTest, CompiledPathAllocatesNoMoreThanInterpreter) {
  // The compiled path exists to allocate *less* than the interpreter's
  // per-literal substitution churn; verify the direction of the gap.
  Workload w = MakeAncestorChain(96);

  const uint64_t c0 = g_allocations.load(std::memory_order_relaxed);
  EvalResult compiled = Evaluator().Run(w.program, w.db);
  [[maybe_unused]] const uint64_t compiled_allocs =
      g_allocations.load(std::memory_order_relaxed) - c0;

  const uint64_t i0 = g_allocations.load(std::memory_order_relaxed);
  EvalResult interpreted = Evaluator().RunInterpreted(w.program, w.db);
  [[maybe_unused]] const uint64_t interpreted_allocs =
      g_allocations.load(std::memory_order_relaxed) - i0;

  ASSERT_TRUE(compiled.status.ok());
  ASSERT_TRUE(interpreted.status.ok());
  EXPECT_EQ(compiled.stats.new_facts, interpreted.stats.new_facts);
#if MAGIC_ALLOC_TEST_STRICT
  EXPECT_LE(compiled_allocs, interpreted_allocs);
#endif
}

}  // namespace
}  // namespace magic
